// Package repro's root benchmark harness: one testing.B benchmark per
// experiment in DESIGN.md §4. Each benchmark regenerates its table(s) per
// iteration; run with
//
//	go test -bench=. -benchmem
//
// to reproduce every result. The tables themselves are printed by
// cmd/experiments; here we verify they regenerate and measure harness cost.
package main

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/capacity"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var tables []*metrics.Table
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables = e.Run(42)
	}
	if len(tables) == 0 {
		b.Fatal("no tables produced")
	}
}

func BenchmarkE1SkyComputingScaling(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE1cDataLocality(b *testing.B)        { benchExperiment(b, "E1c") }
func BenchmarkE2ElasticCluster(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3aBroadcastChain(b *testing.B)      { benchExperiment(b, "E3a") }
func BenchmarkE3bCoWStartup(b *testing.B)          { benchExperiment(b, "E3b") }
func BenchmarkE4Shrinker(b *testing.B)             { benchExperiment(b, "E4") }
func BenchmarkE5NetworkTransparency(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkE6PatternDetection(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE7AutonomicAdaptation(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkE8ElasticMapReduce(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9MigratableSpot(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkA1RegistryScope(b *testing.B)        { benchExperiment(b, "A1") }
func BenchmarkA2DirtyRateSweep(b *testing.B)       { benchExperiment(b, "A2") }
func BenchmarkA3ChunkSize(b *testing.B)            { benchExperiment(b, "A3") }
func BenchmarkE10SchedulerContention(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11GangPlacement(b *testing.B)       { benchExperiment(b, "E11") }
func BenchmarkE12Preemption(b *testing.B)          { benchExperiment(b, "E12") }

// BenchmarkSchedulerCycle measures federation-scheduler throughput: 1000
// queued jobs from four weighted tenants drain through four clouds on the
// synthetic backend (every iteration runs the full queue to completion,
// exercising fair-share ordering, placement scoring, and backfill).
func BenchmarkSchedulerCycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(42)
		sb := sched.NewSimBackend(k)
		for c := 0; c < 4; c++ {
			sb.AddCloud(fmt.Sprintf("cloud%d", c), 64, 1.0+0.25*float64(c), 0.08)
		}
		s := sched.New(sb, sched.Config{})
		for t := 0; t < 4; t++ {
			s.AddTenant(fmt.Sprintf("tenant%d", t), float64(t+1))
		}
		for j := 0; j < 1000; j++ {
			spec := sched.JobSpec{
				Tenant:          fmt.Sprintf("tenant%d", j%4),
				Workers:         2,
				CoresPerWorker:  2,
				EstimateSeconds: float64(60 + j%120),
			}
			if j%17 == 0 {
				spec.Workers = 16 // wide jobs force reservations + backfill
			}
			if _, err := s.Submit(spec); err != nil {
				b.Fatal(err)
			}
		}
		k.Run()
		if s.Completed() != 1000 {
			b.Fatalf("completed %d of 1000 jobs", s.Completed())
		}
	}
}

// BenchmarkSchedulerSteadyState measures per-decision latency under churn
// rather than batch drain: Poisson arrivals (kernel-RNG exponential
// inter-arrival times, deterministic per seed) at ~80% steady-state
// utilisation over four 64-core clouds, with periodic wide jobs that block
// and exercise the blocked-head watermark — the scenario where most queued
// jobs provably cannot fit and placement must be skipped, not recomputed.
// Reports ns/job across the whole run (every job is one dispatch decision
// plus its share of cycle overhead).
func BenchmarkSchedulerSteadyState(b *testing.B) {
	const jobs = 2000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(42)
		sb := sched.NewSimBackend(k)
		for c := 0; c < 4; c++ {
			sb.AddCloud(fmt.Sprintf("cloud%d", c), 64, 1.0, 0.08)
		}
		s := sched.New(sb, sched.Config{})
		for t := 0; t < 4; t++ {
			s.AddTenant(fmt.Sprintf("tenant%d", t), float64(t+1))
		}
		// Offered load: mostly 4-core jobs (mean ~105 s), every 16th 32
		// cores — ~604 core-seconds per job on average, so one arrival
		// every 3 s keeps ~201 of 256 cores busy (~80%).
		n := 0
		var arrive func()
		arrive = func() {
			spec := sched.JobSpec{
				Tenant:          fmt.Sprintf("tenant%d", n%4),
				Workers:         2,
				CoresPerWorker:  2,
				EstimateSeconds: float64(60 + n%90),
			}
			if n%16 == 0 {
				spec.Workers = 16 // 32 cores: blocks when the system is warm
			}
			if _, err := s.Submit(spec); err != nil {
				b.Fatal(err)
			}
			n++
			if n < jobs {
				k.Schedule(k.ExpJitter(3*sim.Second), arrive)
			}
		}
		k.Schedule(0, arrive)
		k.Run()
		if s.Completed() != jobs {
			b.Fatalf("completed %d of %d jobs", s.Completed(), jobs)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*jobs), "ns/job")
}

// BenchmarkSchedulerCycleParallel measures the parallel sharded core on a
// federation big enough to cross its gates: 20 clouds (the single-cloud
// scan fans across the scoring pool), 70 tenants (the fair-share pick and
// Shares aggregate by shard), and head-plan speculation with optimistic
// commit each cycle. ScoreWorkers -1 sizes the pool to GOMAXPROCS, so
// -cpu 1 runs the sequential core and -cpu N the pooled one — decisions
// are byte-identical at every setting (internal/sched's determinism oracle
// pins that), so this benchmark isolates pure orchestration cost vs
// scaling. Run with -cpu 1,4 to record both.
func BenchmarkSchedulerCycleParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(42)
		sb := sched.NewSimBackend(k)
		for c := 0; c < 20; c++ {
			sb.AddCloud(fmt.Sprintf("cloud%02d", c), 32, 1.0+0.25*float64(c%4), 0.08)
		}
		s := sched.New(sb, sched.Config{ScoreWorkers: -1})
		for t := 0; t < 70; t++ {
			s.AddTenant(fmt.Sprintf("tenant%02d", t), float64(t%4+1))
		}
		for j := 0; j < 1000; j++ {
			spec := sched.JobSpec{
				Tenant:          fmt.Sprintf("tenant%02d", j%70),
				Workers:         2,
				CoresPerWorker:  2,
				EstimateSeconds: float64(60 + j%120),
			}
			if j%17 == 0 {
				spec.Workers = 40 // 80 cores, wider than any cloud: spanning plans
			}
			if _, err := s.Submit(spec); err != nil {
				b.Fatal(err)
			}
		}
		k.Run()
		if s.Completed() != 1000 {
			b.Fatalf("completed %d of 1000 jobs", s.Completed())
		}
		s.Close()
	}
}

// BenchmarkSchedulerEvictionStorm measures the backfill- and
// preemption-heavy cycle mix the parallel phases cover: a 220-core head
// blocks behind two long holders and reserves, 160 short jobs backfill the
// slack and overrun 4x, and the scheduler reclaims them through both the
// elastic forced-preempt pass and head-driven eviction (pricing plus the
// what-if prefix fit over a ~28-candidate set). ScoreWorkers -1 sizes the
// pool to GOMAXPROCS, so -cpu 1 runs the sequential phases and -cpu N the
// pooled ones over the lock-free ledger view — decisions byte-identical
// either way (internal/sched's eviction-storm oracle pins it). Run with
// -cpu 1,4 to record both.
func BenchmarkSchedulerEvictionStorm(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(13)
		sb := sched.NewSimBackend(k)
		for c := 0; c < 20; c++ {
			sb.AddCloud(fmt.Sprintf("c%02d", c), 16, 1, 0.10)
		}
		sb.Overrun = func(j *sched.Job) float64 {
			switch j.Spec.Name {
			case "lateholder", "small":
				return 4
			}
			return 1
		}
		s := sched.New(sb, sched.Config{EnablePreemption: true, ScoreWorkers: -1})
		s.Start()
		submit := func(tenant string, spec sched.JobSpec) {
			spec.Tenant = tenant
			if _, err := s.Submit(spec); err != nil {
				b.Fatal(err)
			}
		}
		s.AddTenant("hold", 1)
		submit("hold", sched.JobSpec{Name: "holder", Workers: 72, CoresPerWorker: 2, EstimateSeconds: 600})
		submit("hold", sched.JobSpec{Name: "lateholder", Workers: 32, CoresPerWorker: 2, EstimateSeconds: 600})
		k.RunUntil(1 * sim.Second)
		s.AddTenant("head", 1)
		submit("head", sched.JobSpec{Name: "head", Workers: 110, CoresPerWorker: 2, EstimateSeconds: 300})
		k.RunUntil(2 * sim.Second)
		jobs := 3
		for t := 0; t < 40; t++ {
			name := fmt.Sprintf("s%02d", t)
			s.AddTenant(name, 1)
			for n := 0; n < 4; n++ {
				submit(name, sched.JobSpec{Name: "small", Workers: 2, CoresPerWorker: 2,
					EstimateSeconds: float64(30 + t%20)})
				jobs++
			}
		}
		k.Run()
		if s.Completed() != jobs {
			b.Fatalf("completed %d of %d jobs", s.Completed(), jobs)
		}
		if s.Preemptions() == 0 || s.ForcedPreemptions() == 0 {
			b.Fatalf("storm evicted nothing (preempt=%d forced=%d); the scenario decayed",
				s.Preemptions(), s.ForcedPreemptions())
		}
		s.Close()
	}
}

// BenchmarkKernelChurn measures event-queue operations against a deep
// backlog: 1,000,000 events pend one virtual hour out while each iteration
// schedules two near-term events, cancels one, and fires the other — the
// schedule/cancel/fire churn a million-job replay sustains. The heap keeps
// per-op cost at O(log n) of the backlog (~20 sift steps at 1M) and the
// event arena keeps it allocation-free; a linear scan anywhere in the
// queue path shows up here as microseconds, not nanoseconds.
func BenchmarkKernelChurn(b *testing.B) {
	k := sim.NewKernel(42)
	nop := func() {}
	for i := 0; i < 1_000_000; i++ {
		k.At(sim.Hour+sim.Time(i), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.At(k.Now(), nop).Cancel()
		k.At(k.Now(), nop)
		// One Step discards the cancelled event and fires the live one; the
		// backlog stays at exactly 1M pending throughout.
		k.Step()
	}
	b.StopTimer()
	if k.Pending() != 1_000_000 {
		b.Fatalf("backlog drifted to %d pending", k.Pending())
	}
}

// BenchmarkScaleReplay is the scale harness's headline number: a 100k-job
// standard-mix trace (diurnal + bursts + storms + heavy tails) generated
// once, then replayed through the scheduler on the default four-cloud
// federation with preemption on and log-normal estimate mis-calibration.
// Reports ns/job and allocs/job across the replay; BENCH_scale.json
// records the per-op values for the benchdiff gate. Run with -benchtime 1x
// (one replay is ~100M scheduling decisions' worth of work).
func BenchmarkScaleReplay(b *testing.B) {
	const jobs = 100_000
	tr := workload.Generate(workload.StandardConfig(42, jobs))
	if got := tr.Jobs(); got != jobs {
		b.Fatalf("trace holds %d jobs, want %d", got, jobs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := workload.Replay(tr, workload.ReplayConfig{
			Sched:        sched.Config{EnablePreemption: true},
			OverrunSigma: 0.5,
		})
		if err != nil {
			b.Fatal(err)
		}
		if r.Completed < jobs*9/10 {
			b.Fatalf("only %d of %d jobs completed", r.Completed, jobs)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*jobs), "ns/job")
}

// BenchmarkScaleReplay1M pushes the replay to the paper's target magnitude:
// one million jobs of the standard mix — the horizon stretches to three
// weeks so the MaxJobs cap can bind (see StandardConfig). CI runs it with
// -benchtime 1x as its own step and gates allocs/op against the
// benchmark's own BENCH_scale.json entry: per-job cost is NOT flat from
// 100k to 1M (the longer trace spends far more of its life in deep
// diurnal-peak queues, where each dispatch burns more failed placement
// attempts), so the gate pins the million-job number itself instead of
// extrapolating from the smoke. The survival floor doubles as the
// correctness assertion.
func BenchmarkScaleReplay1M(b *testing.B) {
	if os.Getenv("SCALE_1M") == "" {
		b.Skip("set SCALE_1M=1 to run the million-job replay (CI scale step)")
	}
	const jobs = 1_000_000
	tr := workload.Generate(workload.StandardConfig(42, jobs))
	if got := tr.Jobs(); got != jobs {
		b.Fatalf("trace holds %d jobs, want %d", got, jobs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := workload.Replay(tr, workload.ReplayConfig{
			Sched:        sched.Config{EnablePreemption: true},
			OverrunSigma: 0.5,
		})
		if err != nil {
			b.Fatal(err)
		}
		if r.Completed < jobs*9/10 {
			b.Fatalf("only %d of %d jobs completed", r.Completed, jobs)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*jobs), "ns/job")
}

// BenchmarkChaosReplay is the CI chaos smoke: the same 100k-job standard
// mix as BenchmarkScaleReplay with a full outage storm injected — crashes,
// partial host losses, flap episodes, transient deploy faults, WAN
// degradation — replayed with preemption on. Gated on allocs/op against
// BENCH_scale.json: the fault paths (requeue with progress credit,
// quarantine bookkeeping, launch retry) must not turn the steady-state
// allocation discipline into churn. The completion floor is the survival
// assertion — a storm may delay jobs, not lose them.
func BenchmarkChaosReplay(b *testing.B) {
	const jobs = 100_000
	tr := workload.Generate(workload.StandardConfig(42, jobs))
	storm := faults.Generate(faults.Storm(42, faults.Targets(workload.DefaultClouds())))
	tr = storm.InjectInto(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := workload.Replay(tr, workload.ReplayConfig{
			Sched:        sched.Config{EnablePreemption: true},
			OverrunSigma: 0.5,
		})
		if err != nil {
			b.Fatal(err)
		}
		if r.Completed < jobs*9/10 {
			b.Fatalf("only %d of %d jobs survived the storm", r.Completed, jobs)
		}
		if r.Outages == 0 || r.OutageRequeues == 0 {
			b.Fatalf("storm replay exercised no outage paths: %+v", r)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*jobs), "ns/job")
}

// BenchmarkGangPlacement measures the plan-based placement pipeline under a
// spanning-heavy load: 300 jobs from two tenants on four 64-core clouds
// with heterogeneous pipes, every fifth job too wide for any single cloud
// (forcing the gang path: anchor selection, greedy member extension, plan
// scoring with the shuffle term, multi-cloud reservations).
func BenchmarkGangPlacement(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(42)
		sb := sched.NewSimBackend(k)
		for c := 0; c < 4; c++ {
			sb.AddCloud(fmt.Sprintf("cloud%d", c), 64, 1.0, 0.06+0.02*float64(c))
		}
		sb.SetBandwidth("cloud0", "cloud1", 100<<20)
		sb.SetBandwidth("cloud0", "cloud2", 10<<20)
		sb.SetBandwidth("cloud0", "cloud3", 40<<20)
		s := sched.New(sb, sched.Config{})
		s.AddTenant("a", 2)
		s.AddTenant("b", 1)
		for j := 0; j < 300; j++ {
			spec := sched.JobSpec{
				Tenant:          []string{"a", "b"}[j%2],
				Workers:         8,
				CoresPerWorker:  2,
				EstimateSeconds: float64(60 + j%90),
			}
			if j%5 == 0 {
				spec.Workers = 40 // 80 cores: wider than any 64-core cloud
				spec.MR = mapreduce.Job{NumMaps: 80, NumReduces: 4, ShuffleBytesPerMapPerReduce: 1 << 20}
			}
			if _, err := s.Submit(spec); err != nil {
				b.Fatal(err)
			}
		}
		k.Run()
		if s.Completed() != 300 {
			b.Fatalf("completed %d of 300 jobs", s.Completed())
		}
		if s.SpanningDispatched() == 0 {
			b.Fatal("no spanning plans dispatched")
		}
	}
}

// BenchmarkCapacityLedger measures the unified capacity ledger under a
// federation-scale working set: 1000 concurrently live leases spread over
// 8 clouds, with the operations every scheduling cycle performs — probes
// (including the reservation-aware time-indexed path), acquisitions with
// estimated ends, future reservations, commits, and releases.
func BenchmarkCapacityLedger(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := capacity.New()
		for c := 0; c < 8; c++ {
			l.AddCloud(fmt.Sprintf("cloud%d", c), 2048)
		}
		// 64 outstanding backfill-style reservations shade the probes.
		resvs := make([]*capacity.Lease, 0, 64)
		for r := 0; r < 64; r++ {
			le, err := l.Reserve(fmt.Sprintf("cloud%d", r%8), 16, sim.Time(100+r)*sim.Second)
			if err != nil {
				b.Fatal(err)
			}
			resvs = append(resvs, le)
		}
		// 1000 concurrent held leases, probe-vetted like a grow path.
		leases := make([]*capacity.Lease, 0, 1000)
		for n := 0; n < 1000; n++ {
			cloud := fmt.Sprintf("cloud%d", n%8)
			if !l.Probe(cloud, 8, sim.Time(n)*sim.Second) {
				continue
			}
			le, err := l.AcquireUntil(cloud, 8, sim.Time(2000+n)*sim.Second)
			if err != nil {
				b.Fatal(err)
			}
			leases = append(leases, le)
		}
		if len(leases) < 1000 {
			b.Fatalf("only %d of 1000 leases admitted", len(leases))
		}
		// Half the leases commit (VMs placed), then everything drains.
		for n, le := range leases {
			if n%2 == 0 {
				if err := le.Commit(); err != nil {
					b.Fatal(err)
				}
			} else {
				le.Release()
			}
		}
		for n, le := range leases {
			if n%2 == 0 {
				l.Uncommit(le.Cloud, le.Cores)
			}
		}
		for _, le := range resvs {
			le.Release()
		}
		for c := 0; c < 8; c++ {
			if free := l.Free(fmt.Sprintf("cloud%d", c)); free != 2048 {
				b.Fatalf("cloud%d leaked: free=%d", c, free)
			}
		}
	}
}
