// Package repro's root benchmark harness: one testing.B benchmark per
// experiment in DESIGN.md §4. Each benchmark regenerates its table(s) per
// iteration; run with
//
//	go test -bench=. -benchmem
//
// to reproduce every result. The tables themselves are printed by
// cmd/experiments; here we verify they regenerate and measure harness cost.
package main

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var tables []*metrics.Table
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables = e.Run(42)
	}
	if len(tables) == 0 {
		b.Fatal("no tables produced")
	}
}

func BenchmarkE1SkyComputingScaling(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE1cDataLocality(b *testing.B)       { benchExperiment(b, "E1c") }
func BenchmarkE2ElasticCluster(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3aBroadcastChain(b *testing.B)     { benchExperiment(b, "E3a") }
func BenchmarkE3bCoWStartup(b *testing.B)         { benchExperiment(b, "E3b") }
func BenchmarkE4Shrinker(b *testing.B)            { benchExperiment(b, "E4") }
func BenchmarkE5NetworkTransparency(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6PatternDetection(b *testing.B)    { benchExperiment(b, "E6") }
func BenchmarkE7AutonomicAdaptation(b *testing.B) { benchExperiment(b, "E7") }
func BenchmarkE8ElasticMapReduce(b *testing.B)    { benchExperiment(b, "E8") }
func BenchmarkE9MigratableSpot(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkA1RegistryScope(b *testing.B)       { benchExperiment(b, "A1") }
func BenchmarkA2DirtyRateSweep(b *testing.B)      { benchExperiment(b, "A2") }
func BenchmarkA3ChunkSize(b *testing.B)           { benchExperiment(b, "A3") }
