// Package hdfs models the distributed filesystem under the paper's virtual
// Hadoop clusters (§II): files split into replicated blocks on datanodes,
// pipelined replication writes, locality-aware reads, and re-replication
// when a datanode is decommissioned (the shrink path of an elastic
// cluster). It feeds the mapreduce package's locality-aware scheduling via
// Splits.
package hdfs

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/mapreduce"
	"repro/internal/simnet"
)

// Config tunes the filesystem.
type Config struct {
	// BlockSize in bytes. Zero means 64 MiB (the Hadoop 0.20-era default).
	BlockSize int64
	// Replication factor. Zero means 3.
	Replication int
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 64 << 20
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	return c
}

// Block is one replicated chunk of a file.
type Block struct {
	ID       string
	Bytes    int64
	Replicas []*simnet.Node // datanodes currently holding the block
}

// File is a named sequence of blocks.
type File struct {
	Name   string
	Bytes  int64
	Blocks []*Block
}

// FileSystem is the namenode: namespace plus block placement.
type FileSystem struct {
	cfg   Config
	net   *simnet.Network
	nodes []*simnet.Node
	files map[string]*File
	rng   *rand.Rand
	seq   int

	// ReplicationBytes counts bytes moved by write pipelines and
	// re-replication (cluster-internal overhead traffic).
	ReplicationBytes int64
}

// New creates a filesystem over the given datanodes.
func New(net *simnet.Network, cfg Config, datanodes []*simnet.Node, seed int64) *FileSystem {
	if len(datanodes) == 0 {
		panic("hdfs: need at least one datanode")
	}
	fs := &FileSystem{
		cfg:   cfg.withDefaults(),
		net:   net,
		nodes: append([]*simnet.Node(nil), datanodes...),
		files: make(map[string]*File),
		rng:   rand.New(rand.NewSource(seed)),
	}
	sort.Slice(fs.nodes, func(i, j int) bool { return fs.nodes[i].ID < fs.nodes[j].ID })
	return fs
}

// AddDataNode registers a new datanode (elastic growth).
func (fs *FileSystem) AddDataNode(n *simnet.Node) {
	fs.nodes = append(fs.nodes, n)
	sort.Slice(fs.nodes, func(i, j int) bool { return fs.nodes[i].ID < fs.nodes[j].ID })
}

// DataNodes returns the current datanodes.
func (fs *FileSystem) DataNodes() []*simnet.Node { return append([]*simnet.Node(nil), fs.nodes...) }

// File returns a file by name, or nil.
func (fs *FileSystem) File(name string) *File { return fs.files[name] }

// placeReplicas picks r distinct datanodes for a new block: first replica
// on the writer when it is a datanode (HDFS's write-locality), the rest
// spread over remaining nodes, preferring the writer's site for the second
// replica (rack-awareness analogue: site == rack).
func (fs *FileSystem) placeReplicas(writer *simnet.Node, r int) []*simnet.Node {
	if r > len(fs.nodes) {
		r = len(fs.nodes)
	}
	var out []*simnet.Node
	used := make(map[*simnet.Node]bool)
	for _, n := range fs.nodes {
		if n == writer {
			out = append(out, n)
			used[n] = true
			break
		}
	}
	// Same-site candidates next, then everything else, shuffled
	// deterministically.
	var sameSite, other []*simnet.Node
	for _, n := range fs.nodes {
		if used[n] {
			continue
		}
		if writer != nil && n.Site == writer.Site {
			sameSite = append(sameSite, n)
		} else {
			other = append(other, n)
		}
	}
	fs.rng.Shuffle(len(sameSite), func(i, j int) { sameSite[i], sameSite[j] = sameSite[j], sameSite[i] })
	fs.rng.Shuffle(len(other), func(i, j int) { other[i], other[j] = other[j], other[i] })
	for _, n := range append(sameSite, other...) {
		if len(out) >= r {
			break
		}
		out = append(out, n)
	}
	return out
}

// Write creates a file of the given size from writer, streaming each block
// through a replication pipeline (writer -> replica1 -> replica2 ...).
// onDone fires when every block is fully replicated.
func (fs *FileSystem) Write(name string, bytes int64, writer *simnet.Node, onDone func(*File, error)) {
	if _, dup := fs.files[name]; dup {
		fs.net.K.Schedule(0, func() { onDone(nil, fmt.Errorf("hdfs: file %q exists", name)) })
		return
	}
	f := &File{Name: name, Bytes: bytes}
	nBlocks := int((bytes + fs.cfg.BlockSize - 1) / fs.cfg.BlockSize)
	if nBlocks == 0 {
		nBlocks = 1
	}
	pending := 0
	finished := false
	complete := func() {
		if pending == 0 && !finished {
			finished = true
			fs.files[name] = f
			onDone(f, nil)
		}
	}
	for i := 0; i < nBlocks; i++ {
		fs.seq++
		sz := fs.cfg.BlockSize
		if i == nBlocks-1 {
			sz = bytes - int64(i)*fs.cfg.BlockSize
			if sz <= 0 {
				sz = fs.cfg.BlockSize
			}
		}
		b := &Block{ID: fmt.Sprintf("blk-%06d", fs.seq), Bytes: sz,
			Replicas: fs.placeReplicas(writer, fs.cfg.Replication)}
		f.Blocks = append(f.Blocks, b)
		pending++
		fs.pipeline(writer, b.Replicas, sz, func() {
			pending--
			complete()
		})
	}
	fs.net.K.Schedule(0, complete)
}

// pipeline streams a block hop by hop through the replica chain.
func (fs *FileSystem) pipeline(src *simnet.Node, chain []*simnet.Node, bytes int64, onDone func()) {
	hop := 0
	prev := src
	var next func()
	next = func() {
		if hop >= len(chain) {
			onDone()
			return
		}
		dst := chain[hop]
		hop++
		if dst == prev || prev == nil {
			prev = dst
			next() // local write, no network
			return
		}
		fs.ReplicationBytes += bytes
		from := prev
		prev = dst
		fs.net.StartFlow(from, dst, bytes, "hdfs-replicate", func() { next() })
	}
	fs.net.K.Schedule(0, next) // keep completion asynchronous even for all-local chains
}

// BestReplica returns the replica closest to reader: same node, then same
// site, then any (deterministically first).
func BestReplica(b *Block, reader *simnet.Node) *simnet.Node {
	var siteLocal, any *simnet.Node
	for _, r := range b.Replicas {
		if r == reader {
			return r
		}
		if reader != nil && r.Site == reader.Site && siteLocal == nil {
			siteLocal = r
		}
		if any == nil {
			any = r
		}
	}
	if siteLocal != nil {
		return siteLocal
	}
	return any
}

// Read fetches a whole file to reader, using the best replica per block,
// with bounded parallelism. onDone receives the bytes read over the
// network (0 when everything was node-local).
func (fs *FileSystem) Read(name string, reader *simnet.Node, onDone func(networkBytes int64, err error)) {
	f := fs.files[name]
	if f == nil {
		fs.net.K.Schedule(0, func() { onDone(0, fmt.Errorf("hdfs: no such file %q", name)) })
		return
	}
	var netBytes int64
	idx := 0
	inflight := 0
	const par = 4
	var pump func()
	pump = func() {
		for inflight < par && idx < len(f.Blocks) {
			b := f.Blocks[idx]
			idx++
			rep := BestReplica(b, reader)
			if rep == reader {
				continue // local read: disk, not network
			}
			inflight++
			netBytes += b.Bytes
			fs.net.StartFlow(rep, reader, b.Bytes, "hdfs-read", func() {
				inflight--
				if inflight == 0 && idx >= len(f.Blocks) {
					onDone(netBytes, nil)
					return
				}
				pump()
			})
		}
		if inflight == 0 && idx >= len(f.Blocks) {
			fs.net.K.Schedule(0, func() { onDone(netBytes, nil) })
		}
	}
	pump()
}

// Decommission removes a datanode, re-replicating every block it held from
// a surviving replica. onDone fires when replication factors are restored
// (or as close as the remaining node count allows).
func (fs *FileSystem) Decommission(node *simnet.Node, onDone func(reReplicated int)) {
	kept := fs.nodes[:0]
	for _, n := range fs.nodes {
		if n != node {
			kept = append(kept, n)
		}
	}
	fs.nodes = kept
	pending := 0
	count := 0
	finished := false
	complete := func() {
		if pending == 0 && !finished {
			finished = true
			if onDone != nil {
				onDone(count)
			}
		}
	}
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, fname := range names {
		for _, b := range fs.files[fname].Blocks {
			hit := -1
			for i, r := range b.Replicas {
				if r == node {
					hit = i
					break
				}
			}
			if hit < 0 {
				continue
			}
			b.Replicas = append(b.Replicas[:hit], b.Replicas[hit+1:]...)
			if len(b.Replicas) == 0 {
				continue // block lost: under-replication disaster, surfaced by count staying low
			}
			// Pick a new home not already holding the block.
			holder := make(map[*simnet.Node]bool, len(b.Replicas))
			for _, r := range b.Replicas {
				holder[r] = true
			}
			var target *simnet.Node
			for _, n := range fs.nodes {
				if !holder[n] {
					target = n
					break
				}
			}
			if target == nil {
				continue
			}
			src := b.Replicas[0]
			b := b
			pending++
			count++
			fs.ReplicationBytes += b.Bytes
			fs.net.StartFlow(src, target, b.Bytes, "hdfs-rereplicate", func() {
				b.Replicas = append(b.Replicas, target)
				pending--
				complete()
			})
		}
	}
	fs.net.K.Schedule(0, complete)
}

// MapSplits converts a file's blocks into MapReduce input splits carrying
// replica locations, enabling the framework's locality-aware scheduling.
func MapSplits(f *File) []mapreduce.Split {
	out := make([]mapreduce.Split, len(f.Blocks))
	for i, b := range f.Blocks {
		out[i] = mapreduce.Split{
			Bytes:     b.Bytes,
			Preferred: append([]*simnet.Node(nil), b.Replicas...),
		}
	}
	return out
}

// LocalityFraction returns the fraction of the file's bytes with at least
// one replica on the named site — the per-block locality signal the
// federation scheduler's plan scorer consumes (a cloud holding 60% of a
// file's blocks is 0.6 local, not 0 or 1 as whole-file residency would
// claim). A nil file is 0.
func LocalityFraction(f *File, site string) float64 {
	fracs := LocalityFractions(f)
	return fracs[site]
}

// LocalityFractions returns, for every site holding replicas, the fraction
// of the file's bytes with a replica there — the value to feed
// sched.JobSpec.InputFractions. Fractions may sum to more than 1 because
// replication places the same block on several sites.
func LocalityFractions(f *File) map[string]float64 {
	if f == nil || len(f.Blocks) == 0 {
		return nil
	}
	var total int64
	bySite := make(map[string]int64)
	for _, b := range f.Blocks {
		total += b.Bytes
		seen := make(map[string]bool, len(b.Replicas))
		for _, r := range b.Replicas {
			if r == nil || seen[r.Site.Name] {
				continue
			}
			seen[r.Site.Name] = true
			bySite[r.Site.Name] += b.Bytes
		}
	}
	if total <= 0 {
		return nil
	}
	out := make(map[string]float64, len(bySite))
	for site, bytes := range bySite {
		out[site] = float64(bytes) / float64(total)
	}
	return out
}

// ReplicationFactor returns the minimum live replica count across a file's
// blocks (0 if any block is lost).
func (fs *FileSystem) ReplicationFactor(name string) int {
	f := fs.files[name]
	if f == nil || len(f.Blocks) == 0 {
		return 0
	}
	min := len(f.Blocks[0].Replicas)
	for _, b := range f.Blocks {
		if len(b.Replicas) < min {
			min = len(b.Replicas)
		}
	}
	return min
}
