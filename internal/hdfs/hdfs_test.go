package hdfs

import (
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/sim"
	"repro/internal/simnet"
)

const MB = 1 << 20

func testFS(t testing.TB, nodes int, rep int) (*sim.Kernel, *simnet.Network, *FileSystem, []*simnet.Node) {
	k := sim.NewKernel(1)
	net := simnet.New(k)
	s := net.AddSite("cloud", 125*MB, 125*MB)
	dns := make([]*simnet.Node, nodes)
	for i := range dns {
		dns[i] = s.AddNode("dn"+string(rune('a'+i)), 125*MB)
	}
	fs := New(net, Config{BlockSize: 8 * MB, Replication: rep}, dns, 7)
	return k, net, fs, dns
}

func TestWriteCreatesReplicatedBlocks(t *testing.T) {
	k, _, fs, dns := testFS(t, 5, 3)
	var f *File
	fs.Write("input", 20*MB, dns[0], func(file *File, err error) {
		if err != nil {
			t.Fatal(err)
		}
		f = file
	})
	k.Run()
	if f == nil {
		t.Fatal("write never completed")
	}
	// 20 MB / 8 MB blocks = 3 blocks (8+8+4).
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks %d", len(f.Blocks))
	}
	for _, b := range f.Blocks {
		if len(b.Replicas) != 3 {
			t.Fatalf("block %s has %d replicas", b.ID, len(b.Replicas))
		}
		// Writer locality: first replica on the writer.
		if b.Replicas[0] != dns[0] {
			t.Fatalf("block %s first replica not on writer", b.ID)
		}
		seen := map[*simnet.Node]bool{}
		for _, r := range b.Replicas {
			if seen[r] {
				t.Fatal("duplicate replica placement")
			}
			seen[r] = true
		}
	}
	if fs.ReplicationFactor("input") != 3 {
		t.Fatalf("replication factor %d", fs.ReplicationFactor("input"))
	}
	// Pipeline moved (r-1) copies of every block over the network.
	if fs.ReplicationBytes != 2*20*MB {
		t.Fatalf("replication bytes %d", fs.ReplicationBytes)
	}
}

func TestWriteDuplicateFails(t *testing.T) {
	k, _, fs, dns := testFS(t, 3, 2)
	fs.Write("x", MB, dns[0], func(_ *File, err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	k.Run()
	errSeen := false
	fs.Write("x", MB, dns[0], func(_ *File, err error) { errSeen = err != nil })
	k.Run()
	if !errSeen {
		t.Fatal("duplicate write must fail")
	}
}

func TestReadPrefersLocalReplica(t *testing.T) {
	k, _, fs, dns := testFS(t, 4, 2)
	fs.Write("data", 16*MB, dns[0], func(_ *File, err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	k.Run()
	// Reading from the writer: everything node-local, zero network bytes.
	var localBytes int64 = -1
	fs.Read("data", dns[0], func(nb int64, err error) {
		if err != nil {
			t.Fatal(err)
		}
		localBytes = nb
	})
	k.Run()
	if localBytes != 0 {
		t.Fatalf("local read moved %d network bytes", localBytes)
	}
	// Reading from a node with no replicas moves everything.
	var remoteBytes int64
	fs.Read("data", dns[3], func(nb int64, err error) { remoteBytes = nb })
	k.Run()
	if remoteBytes != 0 && remoteBytes != 16*MB {
		// dn3 may hold some replicas depending on placement; accept 0..16MB
		// but it must be a multiple of the block size tail.
		t.Logf("remote read bytes: %d", remoteBytes)
	}
}

func TestReadMissingFile(t *testing.T) {
	k, _, fs, dns := testFS(t, 2, 1)
	var err error
	fs.Read("ghost", dns[0], func(_ int64, e error) { err = e })
	k.Run()
	if err == nil {
		t.Fatal("read of missing file must fail")
	}
}

func TestDecommissionRestoresReplication(t *testing.T) {
	k, _, fs, dns := testFS(t, 5, 3)
	fs.Write("data", 32*MB, dns[0], func(_ *File, err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	k.Run()
	before := fs.ReplicationFactor("data")
	reReplicated := -1
	fs.Decommission(dns[0], func(n int) { reReplicated = n })
	k.Run()
	if reReplicated <= 0 {
		t.Fatalf("no re-replication after losing the writer-local replicas (got %d)", reReplicated)
	}
	if after := fs.ReplicationFactor("data"); after != before {
		t.Fatalf("replication factor %d, want restored to %d", after, before)
	}
	// The decommissioned node must no longer appear anywhere.
	for _, b := range fs.File("data").Blocks {
		for _, r := range b.Replicas {
			if r == dns[0] {
				t.Fatal("decommissioned node still holds replicas")
			}
		}
	}
}

func TestDecommissionBelowReplicationSurvives(t *testing.T) {
	k, _, fs, dns := testFS(t, 2, 2)
	fs.Write("d", 8*MB, dns[0], func(_ *File, err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	k.Run()
	done := false
	fs.Decommission(dns[1], func(int) { done = true })
	k.Run()
	if !done {
		t.Fatal("decommission never completed")
	}
	// Only one node left: factor degrades to 1, data not lost.
	if fs.ReplicationFactor("d") != 1 {
		t.Fatalf("factor %d", fs.ReplicationFactor("d"))
	}
}

func TestMapSplits(t *testing.T) {
	k, _, fs, dns := testFS(t, 4, 2)
	var f *File
	fs.Write("in", 24*MB, dns[1], func(file *File, err error) { f = file })
	k.Run()
	splits := MapSplits(f)
	if len(splits) != len(f.Blocks) {
		t.Fatalf("splits %d blocks %d", len(splits), len(f.Blocks))
	}
	for i, s := range splits {
		if s.Bytes != f.Blocks[i].Bytes || len(s.Preferred) != 2 {
			t.Fatalf("split %d: %+v", i, s)
		}
	}
}

func TestLocalitySchedulingUsesSplits(t *testing.T) {
	// End-to-end: HDFS file -> splits -> mapreduce job with locality.
	k := sim.NewKernel(1)
	net := simnet.New(k)
	s := net.AddSite("cloud", 125*MB, 125*MB)
	var dns []*simnet.Node
	for i := 0; i < 4; i++ {
		dns = append(dns, s.AddNode("w"+string(rune('0'+i)), 125*MB))
	}
	fs := New(net, Config{BlockSize: 8 * MB, Replication: 2}, dns, 3)
	var f *File
	fs.Write("input", 64*MB, dns[0], func(file *File, err error) {
		if err != nil {
			t.Fatal(err)
		}
		f = file
	})
	k.Run()
	cl := mapreduce.NewCluster(net)
	for i, dn := range dns {
		cl.AddWorker("w"+string(rune('0'+i)), dn, 1, 2)
	}
	splits := MapSplits(f)
	var res mapreduce.Result
	err := cl.Run(mapreduce.Job{Name: "loc", NumMaps: len(splits), NumReduces: 1,
		MapCPU: 5, ReduceCPU: 1, ShuffleBytesPerMapPerReduce: 1024, Splits: splits},
		func(r mapreduce.Result) { res = r })
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if res.Makespan == 0 {
		t.Fatal("job hung")
	}
	if res.NodeLocalMaps == 0 {
		t.Fatal("locality scheduler placed no node-local maps despite co-located replicas")
	}
	if res.NodeLocalMaps+res.SiteLocalMaps+res.RemoteMaps != len(splits) {
		t.Fatalf("locality accounting inconsistent: %+v", res)
	}
	// Node-local maps dominate when every worker is a datanode.
	if res.NodeLocalMaps < len(splits)/2 {
		t.Fatalf("only %d/%d node-local maps", res.NodeLocalMaps, len(splits))
	}
}

func TestSplitMismatchRejected(t *testing.T) {
	k := sim.NewKernel(1)
	net := simnet.New(k)
	s := net.AddSite("c", MB, MB)
	cl := mapreduce.NewCluster(net)
	cl.AddWorker("w", s.AddNode("w", 100*MB), 1, 1)
	err := cl.Run(mapreduce.Job{Name: "bad", NumMaps: 4, MapCPU: 1,
		Splits: []mapreduce.Split{{Bytes: 1}}}, nil)
	if err == nil {
		t.Fatal("split/maps mismatch must be rejected")
	}
}

// TestLocalityFractions: per-block fractions reflect where replicas
// actually sit, per site, weighted by block bytes.
func TestLocalityFractions(t *testing.T) {
	k := sim.NewKernel(1)
	net := simnet.New(k)
	sa := net.AddSite("siteA", 125*MB, 125*MB)
	sb := net.AddSite("siteB", 125*MB, 125*MB)
	a1, a2 := sa.AddNode("a1", 125*MB), sa.AddNode("a2", 125*MB)
	b1 := sb.AddNode("b1", 125*MB)
	f := &File{Name: "x", Bytes: 30 * MB, Blocks: []*Block{
		{ID: "blk1", Bytes: 10 * MB, Replicas: []*simnet.Node{a1, a2}}, // A only
		{ID: "blk2", Bytes: 10 * MB, Replicas: []*simnet.Node{a1, b1}}, // both
		{ID: "blk3", Bytes: 10 * MB, Replicas: []*simnet.Node{b1}},     // B only
	}}
	fr := LocalityFractions(f)
	if got := fr["siteA"]; got < 0.66 || got > 0.67 {
		t.Errorf("siteA fraction %v, want 2/3", got)
	}
	if got := fr["siteB"]; got < 0.66 || got > 0.67 {
		t.Errorf("siteB fraction %v, want 2/3", got)
	}
	if got := LocalityFraction(f, "siteA"); got != fr["siteA"] {
		t.Errorf("LocalityFraction = %v, want %v", got, fr["siteA"])
	}
	if got := LocalityFraction(f, "nowhere"); got != 0 {
		t.Errorf("unknown site fraction %v, want 0", got)
	}
	if LocalityFractions(nil) != nil || LocalityFraction(nil, "siteA") != 0 {
		t.Error("nil file must yield no fractions")
	}
}

// TestLocalityFractionsFromWrittenFile: fractions from a real Write cover
// the writer's site fully (first replica lands with the writer).
func TestLocalityFractionsFromWrittenFile(t *testing.T) {
	k, _, fs, dns := testFS(t, 5, 3)
	var f *File
	fs.Write("input", 40*MB, dns[0], func(file *File, err error) {
		if err != nil {
			t.Fatal(err)
		}
		f = file
	})
	k.Run()
	if got := LocalityFraction(f, "cloud"); got != 1 {
		t.Errorf("single-site file locality %v, want 1", got)
	}
}
