// Package nimbus models the Nimbus IaaS cloud toolkit as used in §II of the
// paper: a per-site cloud service exposing a common deployment interface —
// synchronous admission against the shared capacity ledger
// (internal/capacity; cores are held from the instant Deploy is called,
// not from propagation end), image propagation (pluggable strategy:
// unicast, broadcast chain, CoW), VM scheduling onto physical hosts, boot,
// and a contextualization broker that configures freshly booted clusters
// without manual intervention. It also implements a spot market (§IV's
// migratable spot instances hook into its revocation callback).
package nimbus

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/capacity"
	"repro/internal/dedup"
	"repro/internal/deploy"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vm"
)

// HostSpec describes one physical machine class.
type HostSpec struct {
	Cores    int
	MemPages int     // RAM in 4 KiB pages
	Speed    float64 // relative CPU speed (1.0 = reference core)
}

// Host is a physical machine in a cloud.
type Host struct {
	Node *simnet.Node
	Spec HostSpec

	usedCores int
	usedPages int
	vms       map[string]*vm.VM
	cached    map[string]bool // base images present on local disk
}

// FreeCores returns unallocated cores.
func (h *Host) FreeCores() int { return h.Spec.Cores - h.usedCores }

// FreePages returns unallocated memory pages.
func (h *Host) FreePages() int { return h.Spec.MemPages - h.usedPages }

// VMs returns the names of VMs on this host, sorted.
func (h *Host) VMs() []string {
	out := make([]string, 0, len(h.vms))
	for n := range h.vms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HasImage reports whether the host caches the named base image.
func (h *Host) HasImage(name string) bool { return h.cached[name] }

// Config parameterises a cloud.
type Config struct {
	Name             string
	Hosts            int
	HostSpec         HostSpec
	NICBW            float64 // host NIC, bytes/sec
	WANUp            float64 // site uplink, bytes/sec
	WANDown          float64
	PricePerCoreHour float64
	// Propagation distributes images to hosts; nil means broadcast chain.
	Propagation deploy.Strategy
	// BootDelay is guest boot time once the image is local. Zero = 10 s.
	BootDelay sim.Time
	// ContextualizeDelay is broker processing per round. Zero = 2 s.
	ContextualizeDelay sim.Time
	// Ledger is the capacity ledger this cloud's admissions debit. Nil
	// creates a private single-cloud ledger; a federation passes its shared
	// ledger so schedulers and growers see one account of truth.
	Ledger *capacity.Ledger
	// Obs is the metrics registry for admission and lifecycle counters;
	// a federation passes its shared registry. Nil disables them.
	Obs *obs.Registry
}

// Cloud is one IaaS site.
type Cloud struct {
	Name string
	Site *simnet.Site
	Net  *simnet.Network

	// Registry is the site-wide content registry Shrinker consults when
	// this cloud is a migration destination.
	Registry *dedup.Registry
	// Store caches base images at the site repository.
	Store *deploy.Store

	cfg      Config
	hosts    []*Host
	repoNode *simnet.Node
	ledger   *capacity.Ledger
	seq      int

	// failNext counts injected transient deploy failures still pending:
	// while positive, Deploy consumes one per call and fails with
	// ErrTransientDeploy before debiting anything (see FailNextDeploys).
	failNext int

	// Spot is the cloud's spot market (always present; unused unless VMs
	// are deployed with Spot: true).
	Spot *SpotMarket

	// CoreSecondsUsed accumulates billed on-demand core-time.
	CoreSecondsUsed float64
	lastAccounting  sim.Time
	runningCores    int

	m nimbusMetrics
}

// New builds a cloud as a new site on the network.
func New(net *simnet.Network, cfg Config) *Cloud {
	if cfg.Hosts <= 0 {
		panic("nimbus: cloud needs hosts")
	}
	if cfg.BootDelay == 0 {
		cfg.BootDelay = 10 * sim.Second
	}
	if cfg.ContextualizeDelay == 0 {
		cfg.ContextualizeDelay = 2 * sim.Second
	}
	if cfg.Propagation == nil {
		cfg.Propagation = deploy.Chain{}
	}
	site := net.AddSite(cfg.Name, cfg.WANUp, cfg.WANDown)
	c := &Cloud{
		Name:     cfg.Name,
		Site:     site,
		Net:      net,
		Registry: dedup.NewRegistry("site:" + cfg.Name),
		Store:    deploy.NewStore(cfg.Name),
		cfg:      cfg,
		repoNode: site.AddNode(cfg.Name+"/repo", cfg.NICBW),
	}
	for i := 0; i < cfg.Hosts; i++ {
		n := site.AddNode(fmt.Sprintf("%s/host%03d", cfg.Name, i), cfg.NICBW)
		c.hosts = append(c.hosts, &Host{
			Node:   n,
			Spec:   cfg.HostSpec,
			vms:    make(map[string]*vm.VM),
			cached: make(map[string]bool),
		})
	}
	if cfg.Ledger == nil {
		cfg.Ledger = capacity.New()
	}
	c.ledger = cfg.Ledger
	c.ledger.AddCloud(cfg.Name, cfg.Hosts*cfg.HostSpec.Cores)
	c.Spot = newSpotMarket(c, cfg.PricePerCoreHour*0.3)
	c.m = newNimbusMetrics(cfg.Obs, cfg.Name)
	return c
}

// Hosts returns the cloud's hosts.
func (c *Cloud) Hosts() []*Host { return c.hosts }

// RepoNode returns the image repository's network node.
func (c *Cloud) RepoNode() *simnet.Node { return c.repoNode }

// Price returns the on-demand price per core-hour.
func (c *Cloud) Price() float64 { return c.cfg.PricePerCoreHour }

// FreeCores returns the cloud's unallocated cores, answered by the
// capacity ledger (which host-level accounting double-enters: cores are
// held from deploy admission, committed at VM placement).
func (c *Cloud) FreeCores() int { return c.ledger.Free(c.Name) }

// TotalCores returns the cloud's core capacity.
func (c *Cloud) TotalCores() int { return c.ledger.Total(c.Name) }

// Ledger returns the capacity ledger this cloud's admissions debit.
func (c *Cloud) Ledger() *capacity.Ledger { return c.ledger }

// HostSpeed returns the relative CPU speed of the cloud's hosts.
func (c *Cloud) HostSpeed() float64 {
	if c.cfg.HostSpec.Speed <= 0 {
		return 1
	}
	return c.cfg.HostSpec.Speed
}

// PutImage seeds the site repository with a base image and indexes its
// blocks in the site registry (content-based addressing over the image
// store, as Shrinker assumes).
func (c *Cloud) PutImage(img *vm.DiskImage) {
	c.Store.Put(img)
	c.Registry.SeedFromDisk(img)
}

// accrue updates the billed core-seconds to now.
func (c *Cloud) accrue() {
	now := c.Net.K.Now()
	c.CoreSecondsUsed += float64(c.runningCores) * (now - c.lastAccounting).Seconds()
	c.lastAccounting = now
}

// Cost returns accumulated compute cost in dollars at the on-demand rate.
func (c *Cloud) Cost() float64 {
	c.accrue()
	return c.CoreSecondsUsed / 3600 * c.cfg.PricePerCoreHour
}

// ErrTransientDeploy marks a deploy failure worth retrying: the fault
// injector (FailNextDeploys) wraps it, and callers on the placement path —
// the federation's scheduler backend — re-probe and retry against alternate
// clouds with backoff instead of failing the job.
var ErrTransientDeploy = errors.New("nimbus: transient deploy failure")

// FailNextDeploys makes the next n Deploy calls on this cloud fail with
// ErrTransientDeploy before any admission debit — the deploy-fault
// injection hook the workload replay's deployfault events drive.
func (c *Cloud) FailNextDeploys(n int) { c.failNext += n }

// DeployRequest asks for a homogeneous set of VMs.
type DeployRequest struct {
	NamePrefix string
	Count      int
	Image      string // must be in the site Store
	Cores      int
	MemPages   int
	// ZeroFrac/SharedFrac/PoolSize parameterise the VMs' memory content
	// redundancy (see vm.ContentModel). Zero values get literature defaults
	// (15% zero, 40% shared).
	ZeroFrac, SharedFrac float64
	PoolSize             int
	// CoW creates disks as copy-on-write clones (near-instant when the
	// base is cached on the host).
	CoW bool
	// Spot requests revocable instances at the given bid ($/core-hour).
	Spot bool
	Bid  float64
}

func (r DeployRequest) withDefaults() DeployRequest {
	if r.ZeroFrac == 0 && r.SharedFrac == 0 {
		r.ZeroFrac, r.SharedFrac = 0.15, 0.40
	}
	if r.PoolSize == 0 {
		r.PoolSize = 4096
	}
	if r.Cores == 0 {
		r.Cores = 1
	}
	if r.MemPages == 0 {
		r.MemPages = 16384 // 64 MiB default keeps experiments fast
	}
	return r
}

// Deployment reports a completed Deploy.
type Deployment struct {
	VMs             []*vm.VM
	PlacedOn        []*Host
	PropagationTime sim.Time
	ReadyTime       sim.Time // request to all-VMs-running
	Err             error
}

// Deploy provisions req.Count VMs: admit → propagate → boot →
// contextualize → running. onDone receives the deployment (with Err set on
// failure). Admission is synchronous: host cores and pages are debited (and
// the capacity ledger charged) the instant Deploy is called, not when image
// propagation ends — so a second deploy, a migration, or an elastic grow
// arriving during the propagation window sees the truth and cannot
// double-book the cores.
func (c *Cloud) Deploy(req DeployRequest, onDone func(Deployment)) {
	req = req.withDefaults()
	k := c.Net.K
	if c.failNext > 0 {
		// Injected transient fault: fail before any host or ledger debit, so
		// the caller's retry sees the cloud exactly as it was.
		c.failNext--
		c.m.deployFaulted.Inc()
		k.Schedule(0, func() {
			onDone(Deployment{Err: fmt.Errorf("nimbus: %s deploy fault: %w", c.Name, ErrTransientDeploy)})
		})
		return
	}
	start := k.Now()
	base := c.Store.Get(req.Image)
	if base == nil {
		c.m.deployImageMissing.Inc()
		k.Schedule(0, func() {
			onDone(Deployment{Err: fmt.Errorf("nimbus: image %q not in %s repository", req.Image, c.Name)})
		})
		return
	}
	// First-fit scheduling, one host may take several VMs. Each chosen host
	// is debited immediately; a request that cannot be placed in full rolls
	// every debit back before failing.
	placement := make([]*Host, 0, req.Count)
	rollback := func() {
		for _, h := range placement {
			h.usedCores -= req.Cores
			h.usedPages -= req.MemPages
		}
	}
	for i := 0; i < req.Count; i++ {
		var chosen *Host
		for _, h := range c.hosts {
			if h.FreeCores() >= req.Cores && h.FreePages() >= req.MemPages {
				chosen = h
				break
			}
		}
		if chosen == nil {
			rollback()
			c.m.deployRejected.Inc()
			k.Schedule(0, func() {
				onDone(Deployment{Err: fmt.Errorf("nimbus: %s cannot place %d VMs (%d cores free)",
					c.Name, req.Count, c.FreeCores())})
			})
			return
		}
		chosen.usedCores += req.Cores
		chosen.usedPages += req.MemPages
		placement = append(placement, chosen)
	}
	lease, err := c.ledger.Acquire(c.Name, req.Count*req.Cores)
	if err != nil {
		// Host accounting and the ledger disagree — roll back and surface it.
		rollback()
		c.m.deployRejected.Inc()
		k.Schedule(0, func() {
			onDone(Deployment{Err: fmt.Errorf("nimbus: %s admission: %w", c.Name, err)})
		})
		return
	}
	// Which hosts still need the image?
	needSet := make(map[*Host]bool)
	for _, h := range placement {
		if !h.cached[req.Image] {
			needSet[h] = true
		}
	}
	need := make([]*simnet.Node, 0, len(needSet))
	hostsNeeding := make([]*Host, 0, len(needSet))
	for _, h := range c.hosts { // deterministic order
		if needSet[h] {
			need = append(need, h.Node)
			hostsNeeding = append(hostsNeeding, h)
		}
	}
	afterPropagation := func(propTime sim.Time) {
		dep := Deployment{PlacedOn: placement, PropagationTime: propTime}
		// Create + boot + contextualize.
		vms := make([]*vm.VM, req.Count)
		for i := 0; i < req.Count; i++ {
			c.seq++
			name := fmt.Sprintf("%s%s-%04d", req.NamePrefix, c.Name, c.seq)
			model := vm.NewContentModel(k.Rand().Int63(), req.Image, req.ZeroFrac, req.SharedFrac, req.PoolSize)
			var disk *vm.DiskImage
			if req.CoW {
				disk = vm.NewCoWImage(name+"-disk", base)
			} else {
				disk = vm.NewDiskImage(name+"-disk", base.NumBlocks(), base.BlockSize, model)
			}
			v := vm.New(name, req.Image, req.Cores, req.MemPages, model, disk)
			v.Spot = req.Spot
			v.Bid = req.Bid
			h := placement[i]
			c.bind(v, h)
			v.State = vm.StateBooting
			c.m.vmBooting.Inc()
			vms[i] = v
		}
		// Placement landed: the admission lease converts to committed cores.
		lease.Commit()
		c.m.deployPlaced.Inc()
		dep.VMs = vms
		// CoW creation is near-instant; full-copy disks take a local clone
		// pass at NIC speed (image already on host, copy base->instance).
		perVMCreate := c.Store.CowCreateLatency
		if !req.CoW {
			perVMCreate = sim.FromSeconds(float64(base.Bytes()) / c.cfg.NICBW)
		}
		k.Schedule(perVMCreate+c.cfg.BootDelay, func() {
			c.contextualize(vms, func() {
				for _, v := range vms {
					v.State = vm.StateRunning
					c.m.vmRunning.Inc()
				}
				if req.Spot {
					c.Spot.watch(vms)
				}
				dep.ReadyTime = k.Now() - start
				onDone(dep)
			})
		})
	}
	if len(need) == 0 {
		afterPropagation(0)
		return
	}
	pstart := k.Now()
	c.cfg.Propagation.Propagate(c.Net, c.repoNode, need, base.Bytes(), func(deploy.Result) {
		for _, h := range hostsNeeding {
			h.cached[req.Image] = true
		}
		afterPropagation(k.Now() - pstart)
	})
}

// bind attaches an admitted VM to its host and starts billing its cores.
// The capacity itself was debited at admission (Deploy or Adopt) — bind
// only materialises the VM and begins the on-demand meter.
func (c *Cloud) bind(v *vm.VM, h *Host) {
	c.accrue()
	h.vms[v.Name] = v
	v.HostID = h.Node.ID
	v.SiteName = c.Name
	c.runningCores += v.Cores
}

// Release frees v's resources on this cloud (termination or migration away).
func (c *Cloud) Release(v *vm.VM) {
	if c.releaseHost(v) {
		c.ledger.Uncommit(c.Name, v.Cores)
	}
}

// ReleaseLedgered frees v's host resources without touching the capacity
// ledger — the teardown half of a forced transition
// (capacity.Ledger.EvictCommitted, capacity.Ledger.Retarget) whose ledger
// side already happened in one atomic step. Using Release here instead
// would Uncommit a second time and mint capacity.
func (c *Cloud) ReleaseLedgered(v *vm.VM) {
	c.releaseHost(v)
}

// releaseHost frees v's host cores/pages and stops its billing, reporting
// whether the VM was found here.
func (c *Cloud) releaseHost(v *vm.VM) bool {
	for _, h := range c.hosts {
		if _, ok := h.vms[v.Name]; ok {
			c.accrue()
			h.usedCores -= v.Cores
			h.usedPages -= v.Mem.NumPages()
			delete(h.vms, v.Name)
			c.runningCores -= v.Cores
			return true
		}
	}
	return false
}

// hostFor returns the first host with room for the VM, or nil.
func (c *Cloud) hostFor(v *vm.VM) *Host {
	for _, h := range c.hosts {
		if h.FreeCores() >= v.Cores && h.FreePages() >= v.Mem.NumPages() {
			return h
		}
	}
	return nil
}

// CanHost reports whether some host has room for the VM — the host-level
// precheck callers run before an atomic ledger retarget.
func (c *Cloud) CanHost(v *vm.VM) bool { return c.hostFor(v) != nil }

// Adopt places an inbound migrated VM onto a host with capacity and returns
// that host (nil if the cloud is full). The caller performs the actual
// migration transfer; Adopt only does admission + bookkeeping. Admission
// and placement are one instant here, so the ledger is charged and
// committed in a single step.
func (c *Cloud) Adopt(v *vm.VM) *Host {
	h := c.hostFor(v)
	if h == nil {
		return nil
	}
	if err := c.ledger.CommitNow(c.Name, v.Cores); err != nil {
		return nil
	}
	h.usedCores += v.Cores
	h.usedPages += v.Mem.NumPages()
	c.bind(v, h)
	return h
}

// AdoptLedgered places an inbound VM whose ledger transition already
// happened (capacity.Ledger.Retarget moved its committed cores here
// atomically with the source release) — host-level placement and billing
// only. nil only if no host has room, which CanHost rules out beforehand.
func (c *Cloud) AdoptLedgered(v *vm.VM) *Host {
	h := c.hostFor(v)
	if h == nil {
		return nil
	}
	h.usedCores += v.Cores
	h.usedPages += v.Mem.NumPages()
	c.bind(v, h)
	return h
}

// HostOf returns the host running the named VM, or nil.
func (c *Cloud) HostOf(name string) *Host {
	for _, h := range c.hosts {
		if _, ok := h.vms[name]; ok {
			return h
		}
	}
	return nil
}

// Terminate stops and removes a VM.
func (c *Cloud) Terminate(v *vm.VM) {
	c.Release(v)
	v.State = vm.StateTerminated
	c.m.vmTerminated.Inc()
}

// contextualize runs the Nimbus contextualization broker exchange: every VM
// reports its identity to the broker (repo node), which assembles the
// cluster context and pushes it back — two control messages per VM plus
// broker processing, all concurrent.
func (c *Cloud) contextualize(vms []*vm.VM, onDone func()) {
	k := c.Net.K
	if len(vms) == 0 {
		k.Schedule(0, onDone)
		return
	}
	pending := len(vms)
	for _, v := range vms {
		v.State = vm.StateContextualizing
		c.m.vmContextualizing.Inc()
		h := c.HostOf(v.Name)
		c.Net.SendMessage(h.Node, c.repoNode, 2048, func() {
			pending--
			if pending == 0 {
				// Broker processes and broadcasts the assembled context.
				k.Schedule(c.cfg.ContextualizeDelay, func() {
					replies := len(vms)
					for _, v := range vms {
						h := c.HostOf(v.Name)
						c.Net.SendMessage(c.repoNode, h.Node, 4096, func() {
							replies--
							if replies == 0 {
								onDone()
							}
						})
					}
				})
			}
		})
	}
}
