package nimbus

import (
	"testing"

	"repro/internal/deploy"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vm"
)

const MB = 1 << 20

func testCloud(hosts int) (*sim.Kernel, *simnet.Network, *Cloud) {
	k := sim.NewKernel(1)
	net := simnet.New(k)
	c := New(net, Config{
		Name:             "g5k",
		Hosts:            hosts,
		HostSpec:         HostSpec{Cores: 8, MemPages: 8 * 16384, Speed: 1.0},
		NICBW:            125 * MB,
		WANUp:            125 * MB,
		WANDown:          125 * MB,
		PricePerCoreHour: 0.10,
	})
	m := vm.NewContentModel(7, "debian", 0.1, 0.5, 1024)
	c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m)) // 64 MiB image
	return k, net, c
}

func TestDeployBasic(t *testing.T) {
	k, _, c := testCloud(4)
	var dep Deployment
	c.Deploy(DeployRequest{Count: 8, Image: "debian", Cores: 2, MemPages: 4096, CoW: true},
		func(d Deployment) { dep = d })
	k.Run()
	if dep.Err != nil {
		t.Fatal(dep.Err)
	}
	if len(dep.VMs) != 8 {
		t.Fatalf("got %d VMs", len(dep.VMs))
	}
	for _, v := range dep.VMs {
		if v.State != vm.StateRunning {
			t.Fatalf("VM %s state %v", v.Name, v.State)
		}
		if v.SiteName != "g5k" || v.HostID == "" {
			t.Fatalf("VM %s not placed: site=%q host=%q", v.Name, v.SiteName, v.HostID)
		}
		if !v.Disk.IsCoW() {
			t.Fatal("requested CoW disk, got flat")
		}
	}
	// 8 VMs x 2 cores on 4 hosts x 8 cores: 16 cores used.
	if free := c.FreeCores(); free != 32-16 {
		t.Fatalf("free cores %d, want 16", free)
	}
	if dep.ReadyTime <= 0 || dep.PropagationTime <= 0 {
		t.Fatalf("timings missing: ready=%v prop=%v", dep.ReadyTime, dep.PropagationTime)
	}
}

func TestDeployUnknownImage(t *testing.T) {
	k, _, c := testCloud(2)
	var dep Deployment
	c.Deploy(DeployRequest{Count: 1, Image: "nope"}, func(d Deployment) { dep = d })
	k.Run()
	if dep.Err == nil {
		t.Fatal("deploy of unknown image must fail")
	}
}

func TestDeployOverCapacity(t *testing.T) {
	k, _, c := testCloud(1)
	var dep Deployment
	c.Deploy(DeployRequest{Count: 9, Image: "debian", Cores: 1, MemPages: 1024},
		func(d Deployment) { dep = d })
	k.Run()
	if dep.Err == nil {
		t.Fatal("over-capacity deploy must fail")
	}
	if c.FreeCores() != 8 {
		t.Fatalf("failed deploy leaked resources: free=%d", c.FreeCores())
	}
}

func TestWarmCacheSpeedsSecondDeploy(t *testing.T) {
	k, _, c := testCloud(2)
	var cold, warm Deployment
	c.Deploy(DeployRequest{Count: 2, Image: "debian", CoW: true, MemPages: 1024}, func(d Deployment) {
		cold = d
		c.Deploy(DeployRequest{Count: 2, Image: "debian", CoW: true, MemPages: 1024}, func(d2 Deployment) { warm = d2 })
	})
	k.Run()
	if cold.Err != nil || warm.Err != nil {
		t.Fatalf("errs: %v %v", cold.Err, warm.Err)
	}
	if warm.PropagationTime != 0 {
		t.Fatalf("warm deploy re-propagated: %v", warm.PropagationTime)
	}
	if warm.ReadyTime >= cold.ReadyTime {
		t.Fatalf("warm (%v) not faster than cold (%v)", warm.ReadyTime, cold.ReadyTime)
	}
}

func TestCoWFasterThanFullCopy(t *testing.T) {
	run := func(cow bool) sim.Time {
		k, _, c := testCloud(2)
		// Use a big image so the copy cost dominates.
		m := vm.NewContentModel(9, "big", 0.1, 0.5, 1024)
		c.PutImage(vm.NewDiskImage("big", 16384, 65536, m)) // 1 GiB
		var dep Deployment
		c.Deploy(DeployRequest{Count: 2, Image: "big", CoW: cow, MemPages: 1024},
			func(d Deployment) { dep = d })
		k.Run()
		if dep.Err != nil {
			t.Fatal(dep.Err)
		}
		return dep.ReadyTime
	}
	cow, full := run(true), run(false)
	if cow >= full {
		t.Fatalf("CoW deploy (%v) not faster than full copy (%v)", cow, full)
	}
}

func TestTerminateFreesResources(t *testing.T) {
	k, _, c := testCloud(1)
	var dep Deployment
	c.Deploy(DeployRequest{Count: 2, Image: "debian", Cores: 4, MemPages: 1024},
		func(d Deployment) { dep = d })
	k.Run()
	if c.FreeCores() != 0 {
		t.Fatalf("free=%d before terminate", c.FreeCores())
	}
	for _, v := range dep.VMs {
		c.Terminate(v)
	}
	if c.FreeCores() != 8 {
		t.Fatalf("free=%d after terminate", c.FreeCores())
	}
	if dep.VMs[0].State != vm.StateTerminated {
		t.Fatal("terminated VM state wrong")
	}
}

func TestAdoptAndRelease(t *testing.T) {
	k, _, c := testCloud(1)
	m := vm.NewContentModel(1, "debian", 0.1, 0.4, 100)
	v := vm.New("incoming", "debian", 2, 1024, m, nil)
	h := c.Adopt(v)
	if h == nil {
		t.Fatal("adopt failed with free capacity")
	}
	if v.SiteName != "g5k" {
		t.Fatal("adopted VM not re-sited")
	}
	if c.FreeCores() != 6 {
		t.Fatalf("free=%d after adopt", c.FreeCores())
	}
	c.Release(v)
	if c.FreeCores() != 8 {
		t.Fatalf("free=%d after release", c.FreeCores())
	}
	_ = k
}

func TestAdoptFullCloud(t *testing.T) {
	_, _, c := testCloud(1)
	m := vm.NewContentModel(1, "debian", 0.1, 0.4, 100)
	big := vm.New("big", "debian", 9, 1024, m, nil) // > 8 cores
	if c.Adopt(big) != nil {
		t.Fatal("adopt must fail when no host fits")
	}
}

func TestCostAccrues(t *testing.T) {
	k, _, c := testCloud(1)
	var dep Deployment
	c.Deploy(DeployRequest{Count: 1, Image: "debian", Cores: 8, MemPages: 1024},
		func(d Deployment) { dep = d })
	k.Run()
	readyAt := k.Now()
	k.Schedule(sim.Hour, func() {})
	k.Run()
	cost := c.Cost()
	// 8 cores for 1 hour at $0.10/core-hour = $0.80 (plus the deploy tail).
	min := 0.8
	max := 0.8 + 8*readyAt.Seconds()/3600*0.10 + 0.01
	if cost < min || cost > max {
		t.Fatalf("cost %.4f outside [%.4f, %.4f]", cost, min, max)
	}
	_ = dep
}

func TestSpotRevocationKillsByDefault(t *testing.T) {
	k, _, c := testCloud(1)
	var dep Deployment
	c.Deploy(DeployRequest{Count: 2, Image: "debian", Cores: 1, MemPages: 1024,
		Spot: true, Bid: 0.05}, func(d Deployment) { dep = d })
	k.RunUntil(5 * sim.Minute)
	if c.Spot.Watched() != 2 {
		t.Fatalf("watched %d", c.Spot.Watched())
	}
	c.Spot.ForcePrice(0.10) // above both bids
	if c.Spot.Revocations != 2 {
		t.Fatalf("revocations %d", c.Spot.Revocations)
	}
	for _, v := range dep.VMs {
		if v.State != vm.StateTerminated {
			t.Fatalf("revoked VM %s not terminated", v.Name)
		}
	}
}

func TestSpotRevokeCallbackOverride(t *testing.T) {
	k, _, c := testCloud(1)
	saved := 0
	c.Spot.OnRevoke = func(v *vm.VM) { saved++ } // "migrate" instead of kill
	var dep Deployment
	c.Deploy(DeployRequest{Count: 1, Image: "debian", Cores: 1, MemPages: 1024,
		Spot: true, Bid: 0.05}, func(d Deployment) { dep = d })
	k.RunUntil(5 * sim.Minute)
	c.Spot.ForcePrice(1.0)
	if saved != 1 {
		t.Fatalf("override not called: %d", saved)
	}
	if dep.VMs[0].State == vm.StateTerminated {
		t.Fatal("override should prevent termination")
	}
}

func TestSpotPriceProcessDeterministic(t *testing.T) {
	run := func() []float64 {
		k, _, c := testCloud(1)
		c.Spot.Start()
		var series []float64
		k.Ticker(60*sim.Second, func() { series = append(series, c.Spot.Price) })
		k.RunUntil(30 * sim.Minute)
		c.Spot.Stop()
		return series
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("series lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("spot price series nondeterministic")
		}
	}
}

func TestSpotOnDemandVMsNotWatched(t *testing.T) {
	k, _, c := testCloud(1)
	c.Deploy(DeployRequest{Count: 1, Image: "debian", Cores: 1, MemPages: 1024}, func(Deployment) {})
	k.Run()
	if c.Spot.Watched() != 0 {
		t.Fatal("on-demand VM ended up in the spot watch list")
	}
}

func TestPropagationStrategyPluggable(t *testing.T) {
	k := sim.NewKernel(1)
	net := simnet.New(k)
	c := New(net, Config{
		Name: "uni", Hosts: 4,
		HostSpec: HostSpec{Cores: 4, MemPages: 1 << 20},
		NICBW:    125 * MB, WANUp: 125 * MB, WANDown: 125 * MB,
		Propagation: deploy.Unicast{},
	})
	m := vm.NewContentModel(7, "debian", 0.1, 0.5, 1024)
	c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m))
	var dep Deployment
	c.Deploy(DeployRequest{Count: 4, Image: "debian", MemPages: 1024}, func(d Deployment) { dep = d })
	k.Run()
	if dep.Err != nil {
		t.Fatal(dep.Err)
	}
}
