package nimbus

import "repro/internal/obs"

// Cloud observability: admission outcomes and VM lifecycle transitions,
// labeled by cloud. A federation passes its shared registry through
// Config.Obs so every member cloud's families land in one exposition; a
// standalone cloud with no registry carries nil instruments (every obs
// method no-ops on nil), so uninstrumented paths pay one nil check.

// nimbusMetrics holds one cloud's label-resolved instruments — children are
// cached at New so deploy/lifecycle paths never do a registry lookup.
type nimbusMetrics struct {
	deployPlaced       *obs.Counter
	deployRejected     *obs.Counter
	deployImageMissing *obs.Counter
	deployFaulted      *obs.Counter

	vmBooting         *obs.Counter
	vmContextualizing *obs.Counter
	vmRunning         *obs.Counter
	vmTerminated      *obs.Counter
}

func newNimbusMetrics(reg *obs.Registry, cloud string) nimbusMetrics {
	if reg == nil {
		return nimbusMetrics{}
	}
	deploys := reg.CounterVec("sky_nimbus_deploys_total",
		"Deploy requests by outcome.", "cloud", "outcome")
	trans := reg.CounterVec("sky_nimbus_vm_transitions_total",
		"VM lifecycle state entries.", "cloud", "state")
	return nimbusMetrics{
		deployPlaced:       deploys.With(cloud, "placed"),
		deployRejected:     deploys.With(cloud, "rejected"),
		deployImageMissing: deploys.With(cloud, "image_missing"),
		deployFaulted:      deploys.With(cloud, "faulted"),
		vmBooting:          trans.With(cloud, "booting"),
		vmContextualizing:  trans.With(cloud, "contextualizing"),
		vmRunning:          trans.With(cloud, "running"),
		vmTerminated:       trans.With(cloud, "terminated"),
	}
}
