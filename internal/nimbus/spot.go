package nimbus

import (
	"math"

	"repro/internal/sim"
	"repro/internal/vm"
)

// SpotMarket models per-cloud spot pricing (§IV: "Amazon already introduced
// some price variability in Amazon EC2 with spot instances"). The price
// follows a seeded geometric random walk with occasional demand spikes; a
// spot VM whose bid falls below the price is revoked. The default revocation
// behaviour kills the VM; the federation layer overrides OnRevoke to
// implement migratable spot instances instead.
type SpotMarket struct {
	cloud *Cloud

	// Price is the current spot price, $/core-hour.
	Price float64
	// UpdateInterval is the tick between price moves. Default 60 s.
	UpdateInterval sim.Time
	// SpikeProb is the per-tick probability of a demand spike.
	SpikeProb float64
	// SpikeFactor multiplies the price during a spike.
	SpikeFactor float64
	// SpikeTicks is how many ticks a spike lasts.
	SpikeTicks int

	// OnRevoke is called when a watched spot VM is out-bid. The default
	// terminates the VM. Replacing it (e.g. with a migration) implements
	// §IV's migratable spot instances.
	OnRevoke func(*vm.VM)

	basePrice   float64
	spikeLeft   int
	watched     []*vm.VM
	started     bool
	Revocations int
	cancelTick  func()
}

func newSpotMarket(c *Cloud, basePrice float64) *SpotMarket {
	if basePrice <= 0 {
		basePrice = 0.01
	}
	m := &SpotMarket{
		cloud:          c,
		Price:          basePrice,
		basePrice:      basePrice,
		UpdateInterval: 60 * sim.Second,
		SpikeProb:      0.02,
		SpikeFactor:    4.0,
		SpikeTicks:     5,
	}
	m.OnRevoke = func(v *vm.VM) { c.Terminate(v) }
	return m
}

// watch begins revocation monitoring for spot VMs; the price process starts
// on first use.
func (m *SpotMarket) watch(vms []*vm.VM) {
	m.watched = append(m.watched, vms...)
	m.Start()
}

// Start launches the price process (idempotent).
func (m *SpotMarket) Start() {
	if m.started {
		return
	}
	m.started = true
	k := m.cloud.Net.K
	m.cancelTick = k.Ticker(m.UpdateInterval, m.tick)
}

// Stop halts the price process.
func (m *SpotMarket) Stop() {
	if m.cancelTick != nil {
		m.cancelTick()
		m.started = false
	}
}

// ForcePrice sets the spot price immediately and runs revocation checks —
// used by experiments that script price spikes deterministically.
func (m *SpotMarket) ForcePrice(p float64) {
	m.Price = p
	m.revokeOutbid()
}

func (m *SpotMarket) tick() {
	rng := m.cloud.Net.K.Rand()
	if m.spikeLeft > 0 {
		m.spikeLeft--
		if m.spikeLeft == 0 {
			m.Price = m.basePrice
		}
	} else if rng.Float64() < m.SpikeProb {
		m.spikeLeft = m.SpikeTicks
		m.Price = m.basePrice * m.SpikeFactor
	} else {
		// Geometric random walk, ±5% per tick, floored at 20% of base.
		m.Price *= math.Exp((rng.Float64() - 0.5) * 0.1)
		if m.Price < 0.2*m.basePrice {
			m.Price = 0.2 * m.basePrice
		}
	}
	m.revokeOutbid()
}

func (m *SpotMarket) revokeOutbid() {
	kept := m.watched[:0]
	var revoked []*vm.VM
	for _, v := range m.watched {
		if v.State == vm.StateTerminated {
			continue
		}
		if v.Bid < m.Price {
			revoked = append(revoked, v)
			continue
		}
		kept = append(kept, v)
	}
	m.watched = kept
	for _, v := range revoked {
		m.Revocations++
		m.OnRevoke(v)
	}
	// With nothing left to watch the price process idles; it restarts on
	// the next spot deployment. This also lets simulations drain to
	// completion instead of ticking forever.
	if len(m.watched) == 0 {
		m.Stop()
	}
}

// Watched returns the number of spot VMs under revocation monitoring.
func (m *SpotMarket) Watched() int { return len(m.watched) }
