package sched

import (
	"runtime"
	"sync"

	"repro/internal/sim"
)

// Parallel sharded scheduler core: optimistic-concurrency placement over
// the capacity ledger.
//
// Three pieces, all strictly opt-in via Config.ScoreWorkers (the default
// resolves to 1 and none of this machinery exists — the sequential
// scheduler runs untouched, with zero goroutines and zero locking on the
// hot path):
//
//   - Parallel plan scoring: BestScore's single-cloud scan fans contiguous
//     cloud-index ranges across a persistent worker pool, each worker
//     scoring against the immutable frozen CloudView with its own
//     placeScratch, and the range-local bests reduce in index order
//     through betterPlan. betterPlan is a strict total order (score desc,
//     price asc, rendered members lexicographic — no two distinct clouds
//     compare equal), so the reduction is partition-independent and the
//     winner is byte-identical to one sequential scan.
//
//   - Sharded tenant queues: the name-sorted tenant list is partitioned
//     into contiguous shards with per-shard scan state; the fair-share
//     pick evaluates shard-local minima in parallel and reduces them in
//     shard order with a strict less-than, which preserves the sequential
//     walk's first-of-equal-keys-by-name rule exactly. Shares' delivered
//     and running-walk aggregation shards by tenant the same way: each
//     tenant's float accumulation order is its running-list order in both
//     modes, so the sums are bit-identical.
//
//   - Optimistic commit: each cycle speculates plans for the shard head
//     jobs against the frozen view, stamped with the capacity ledger
//     generation and the working-view version. Before a speculated (or
//     memoized) plan commits, cycle() revalidates both stamps and the
//     plan's fit against the live free vector; a conflict — capacity moved
//     underneath the speculation — is counted in
//     sky_sched_parallel_conflicts_total and the job is rescored inline
//     against live state, never dropped. Dispatch admission then goes
//     through capacity.Ledger.AcquireUntilGen, which re-checks the
//     generation under the ledger's own lock, so a plan scored against a
//     stale world can never acquire cores the world no longer has.
//
// Decisions are byte-identical at every ScoreWorkers setting (see
// TestParallelDeterminism): speculation computes exactly the plan the
// sequential scan would, on the same frozen view, with the same float
// operation order — parallelism only moves the work, never the answer.

// resolveScoreWorkers maps the Config knob to a pool size: 0 and 1 mean
// the sequential core, negative means one worker per GOMAXPROCS.
func resolveScoreWorkers(n int) int {
	if n < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n == 0 {
		return 1
	}
	return n
}

// Parallelism gates: below these sizes fork-join overhead dwarfs the scan,
// so the parallel paths defer to the sequential ones (which are always
// decision-identical anyway).
const (
	// parallelCloudMin is the cloud count from which BestScore's
	// single-cloud scan fans out across the pool.
	parallelCloudMin = 16
	// shardMinTenants is the tenant count from which the fair-share pick
	// and Shares aggregation run shard-parallel. The pick pays one
	// fork-join per scan step, so the sequential walk has to be long
	// before the shards win.
	shardMinTenants = 256
	// specHeadsPerWorker sizes the speculation batch: each cycle
	// speculates at most this many head jobs per pool worker — the ones
	// with the smallest fair-share keys, i.e. the likeliest next picks.
	// Any dispatch invalidates every outstanding entry (the working free
	// vector moved), so speculating deep into the pick order only burns
	// work the commit path would throw away.
	specHeadsPerWorker = 2
	// parallelResvMin is the release-list length from which the blocked
	// head's reservation walk fans its per-instant placement probes across
	// the pool (reservePar).
	parallelResvMin = 16
	// parallelEvictMin is the victim-candidate count from which the
	// eviction pricer and the cheapest-prefix what-if fit run pool-parallel.
	parallelEvictMin = 16
	// parallelElasticMin is the running-job count from which the elastic
	// pass evaluates grow/shrink/forced-preempt candidates pool-parallel.
	parallelElasticMin = 16
	// specBackfillPerWorker sizes the backfill speculation batch: after the
	// head's reservation is held, at most this many queued candidates per
	// pool worker get a speculated (plan, backfill-verdict) pair per
	// fork-join. Any dispatch invalidates the batch (the free vector moved),
	// so deeper speculation only burns work the commit path discards.
	specBackfillPerWorker = 2
	// specBackfillPerTenant caps one tenant's share of the speculation
	// batch, so a single deep queue cannot crowd every other tenant's
	// backfill candidates out of the fan-out.
	specBackfillPerTenant = 4
)

// poolTask is one fork-join work item: fn(w, k) runs on a worker (w keys
// the worker's private placeScratch), then the pool's WaitGroup releases
// the join. The struct travels by value through the channel — dispatching
// a task allocates nothing.
type poolTask struct {
	fn func(w, k int)
	k  int
}

// scorePool is the persistent worker pool behind the parallel paths:
// lazy-started on first use, stopped by Scheduler.Close. A batch larger
// than the pool simply queues — each worker runs its tasks serially, which
// is what makes the per-worker scratch safe. run() calls never overlap
// (the kernel is single-threaded), so one WaitGroup serves every batch.
type scorePool struct {
	n       int
	tasks   chan poolTask
	quit    chan struct{}
	started bool
	wg      sync.WaitGroup
	scratch []placeScratch
}

func newScorePool(n int) *scorePool {
	return &scorePool{
		n:       n,
		tasks:   make(chan poolTask, 2*n),
		quit:    make(chan struct{}),
		scratch: make([]placeScratch, n),
	}
}

func (p *scorePool) start() {
	p.started = true
	quit := p.quit // workers hold this generation's channel; close() swaps the field
	for w := 0; w < p.n; w++ {
		go func(w int) {
			for {
				select {
				case t := <-p.tasks:
					t.fn(w, t.k)
					p.wg.Done()
				case <-quit:
					return
				}
			}
		}(w)
	}
}

// run executes fn(w, k) for k = 0..batch-1 across the pool and joins. The
// caller must not touch state the tasks read or write until run returns;
// distinct k must write to distinct locations.
func (p *scorePool) run(batch int, fn func(w, k int)) {
	if !p.started {
		p.start()
	}
	p.wg.Add(batch)
	for k := 0; k < batch; k++ {
		p.tasks <- poolTask{fn: fn, k: k}
	}
	p.wg.Wait()
}

// close stops the workers. Idempotent; a later parallel cycle restarts them.
func (p *scorePool) close() {
	if p.started {
		close(p.quit)
		p.quit = make(chan struct{})
		p.started = false
	}
}

// specEntry is one speculated head plan: the plan the sequential scan
// would compute for the job against the frozen view, stamped with the
// ledger generation and working-view version it was scored under. Backfill
// speculation (speculateBackfill) additionally stamps the reservation the
// verdict was judged against — holdReservation installs a fresh
// *reservation each time a claim is (re)computed, so pointer identity is
// the validity key — and the verdict itself.
type specEntry struct {
	plan   Plan
	gen    uint64
	ver    int
	bfOK   bool
	bfResv *reservation
}

// rebuildShards recomputes the contiguous shard bounds over the
// name-sorted tenant list and stamps each tenant with its shard index
// (Shares' running-walk partition key).
func (s *Scheduler) rebuildShards() {
	n := s.pool.n
	t := len(s.tenantList)
	if n > t {
		n = t
	}
	s.shardBounds = s.shardBounds[:0]
	for k := 0; k <= n; k++ {
		s.shardBounds = append(s.shardBounds, t*k/n)
	}
	for k := 0; k < n; k++ {
		for i := s.shardBounds[k]; i < s.shardBounds[k+1]; i++ {
			s.tenantList[i].shard, s.tenantList[i].idx = k, i
		}
	}
	s.shardsDirty = false
}

// trefsResolved reports whether every running job carries its tenant
// pointer — the key the sharded Shares walk partitions by. Jobs built
// outside Submit (tests) may lack it; those runs take the sequential path.
func (s *Scheduler) trefsResolved() bool {
	for _, j := range s.running {
		if j.State == Running && j.tref == nil {
			return false
		}
	}
	return true
}

// rawSharesSharded is Shares' delivered-plus-running aggregation fanned by
// tenant shard: worker k seeds its shard's tenants from their delivered
// aggregates, then walks the full running list in order adding elapsed
// core-seconds for jobs owned by its shard. Each tenant's float accumulation
// order is the running-list order — exactly the sequential walk's — so every
// per-tenant value is bit-identical; the merge is by tenant-unique key.
func (s *Scheduler) rawSharesSharded(now sim.Time) map[string]float64 {
	if s.shardsDirty || len(s.shardBounds) < 2 {
		s.rebuildShards()
	}
	shards := len(s.shardBounds) - 1
	vals := make([]float64, len(s.tenantList))
	s.pool.run(shards, func(_, k int) {
		for i := s.shardBounds[k]; i < s.shardBounds[k+1]; i++ {
			vals[i] = s.tenantList[i].delivered
		}
		for _, j := range s.running {
			if j.State == Running && j.tref.shard == k {
				vals[j.tref.idx] += j.runCoreSeconds(now)
			}
		}
	})
	raw := make(map[string]float64, len(s.tenantList))
	for i, t := range s.tenantList {
		raw[t.Name] = vals[i]
	}
	return raw
}

// pickTenant is the cycle scan's fair-share pick: shard-parallel when the
// tenant list is big enough to pay for the fork-join, else the sequential
// walk. Both produce the identical tenant.
func (s *Scheduler) pickTenant() *Tenant {
	if s.pool == nil || len(s.tenantList) < shardMinTenants {
		return s.nextTenant()
	}
	if s.shardsDirty || len(s.shardBounds) < 2 {
		s.rebuildShards()
	}
	shards := len(s.shardBounds) - 1
	for len(s.pickBests) < shards {
		s.pickBests = append(s.pickBests, nil)
		s.pickKeys = append(s.pickKeys, 0)
	}
	bests := s.pickBests[:shards]
	keys := s.pickKeys[:shards]
	t0 := s.m.clock()
	s.pool.run(shards, func(_, k int) {
		var best *Tenant
		var bestKey float64
		for _, t := range s.tenantList[s.shardBounds[k]:s.shardBounds[k+1]] {
			if t.scanCycle != s.cycleNum {
				t.scan, t.scanCycle = 0, s.cycleNum
			}
			if t.scan >= len(t.queue) {
				continue
			}
			key := t.usage / t.Weight
			if best == nil || key < bestKey {
				best, bestKey = t, key
			}
		}
		bests[k], keys[k] = best, bestKey
	})
	// One observation per shard scan: the batch's wall time attributed
	// evenly — per-shard clock reads from inside workers would measure
	// scheduler jitter, not scan cost.
	if dt := float64(s.m.clock()-t0) * 1e-9 / float64(shards); dt > 0 {
		for k := 0; k < shards; k++ {
			s.m.phaseShardScan.Observe(dt)
		}
	}
	// Reduce in shard order with strict less-than: identical to the
	// sequential walk's keep-first-of-equal-keys over the name-sorted list.
	var best *Tenant
	var bestKey float64
	for k := 0; k < shards; k++ {
		if bests[k] == nil {
			continue
		}
		if best == nil || keys[k] < bestKey {
			best, bestKey = bests[k], keys[k]
		}
	}
	return best
}

// speculateHeads scores a plan for each shard-head job against the frozen
// cycle view, in parallel, before the scan loop runs — the optimistic half
// of optimistic concurrency. Entries are stamped with the ledger
// generation and working-view version; cycle() revalidates both before
// commit and rescoring on conflict is inline and authoritative, so
// speculation can only ever save work, never change a decision.
func (s *Scheduler) speculateHeads(v *CloudView) {
	if s.pool == nil || !s.memoable {
		return
	}
	sc, ok := s.cfg.Placement.(scratchChooser)
	if !ok {
		return
	}
	clear(s.spec)
	// Keep only the heads with the smallest fair-share keys — the pick
	// loop's likeliest next choices. Which heads get speculated is pure
	// performance tuning: the commit path validates and rescores, so the
	// selection can never change a decision. Insertion keeps the batch
	// sorted; ties keep the earlier (name-sorted) tenant, matching pick
	// order.
	maxHeads := specHeadsPerWorker * s.pool.n
	heads := s.specHeads[:0]
	keys := s.specKeys[:0]
	for _, t := range s.tenantList {
		if len(t.queue) == 0 {
			continue
		}
		j := t.queue[0]
		if j.Spec.External() || j.Spec.InputFractions != nil || !s.canFit(j) {
			continue
		}
		key := t.usage / t.Weight
		if len(heads) == maxHeads && key >= keys[len(keys)-1] {
			continue
		}
		i := len(heads)
		if i < maxHeads {
			heads = append(heads, nil)
			keys = append(keys, 0)
		} else {
			i--
		}
		for i > 0 && key < keys[i-1] {
			heads[i], keys[i] = heads[i-1], keys[i-1]
			i--
		}
		heads[i], keys[i] = j, key
	}
	s.specHeads, s.specKeys = heads, keys
	if len(heads) < 2 {
		return // nothing worth a fork-join
	}
	gen := s.B.Ledger().Generation()
	ver := s.viewVer
	for len(s.specEntries) < len(heads) {
		s.specEntries = append(s.specEntries, specEntry{})
	}
	entries := s.specEntries[:len(heads)]
	s.pool.run(len(heads), func(w, k int) {
		j := heads[k]
		var plan Plan
		if !s.provablyEmpty(j, v) {
			// chooseWith copies the winning members out of the worker's
			// scratch before returning, so the plan is owned.
			plan = sc.chooseWith(s, j, v, &s.pool.scratch[w])
		}
		entries[k] = specEntry{plan: plan, gen: gen, ver: ver}
	})
	for k, j := range heads {
		s.spec[j] = entries[k]
	}
}

// specPlan returns the valid speculated plan for the job, if one exists:
// the entry must have been scored against the current working-view version
// (the free vector has not moved since). The ledger-generation stamp is
// revalidated separately at commit (planStale).
func (s *Scheduler) specPlan(j *Job) (Plan, uint64, bool) {
	if s.pool == nil || len(s.spec) == 0 {
		return Plan{}, 0, false
	}
	e, ok := s.spec[j]
	if !ok || e.ver != s.viewVer {
		return Plan{}, 0, false
	}
	return e.plan, e.gen, true
}

// planStale reports whether a scored plan's world moved before commit: the
// capacity ledger's generation no longer matches the scoring stamp, or the
// plan no longer fits the live working free vector. Either way the plan
// must be rescored against live state — never dropped.
func (s *Scheduler) planStale(j *Job, plan Plan, v *CloudView) bool {
	if s.B.Ledger().Generation() != s.planGen {
		return true
	}
	cpw := j.coresPerWorker()
	for _, m := range plan.Members {
		if p := v.Pos(m.Cloud); p < 0 || v.free[p] < m.Workers*cpw {
			return true
		}
	}
	return false
}

// bumpView marks a working-free-vector movement (dispatch, mid-cycle
// re-snapshot): the plan memos and every speculated plan are now stale.
func (s *Scheduler) bumpView() {
	s.invalidateMemos()
	s.viewVer++
}

// invalidateMemos drops every plan memo entry without moving the view
// version — the commit-conflict path rescores against the same frozen view.
func (s *Scheduler) invalidateMemos() {
	for i := range s.memos {
		s.memos[i].ok = false
	}
}

// reservePar is the pool-parallel backfill probe: the blocked head's
// reservation walk asks, at each estimated release instant, whether the
// placement policy can produce a plan from the capacity available by then.
// The cumulative availability vectors are built sequentially (one pass over
// the release list, identical to the sequential walk's accumulation), then
// the per-instant Choose probes — each a pure function of (job, frozen
// availability vector) — fan across the pool in instant-order blocks. The
// earliest instant with a non-empty plan wins, exactly the sequential
// walk's answer; blocks bound the work past it to one batch.
func (s *Scheduler) reservePar(j *Job, v *CloudView, releases []coreRelease, sc scratchChooser) (reservation, bool) {
	nc := len(v.Clouds)
	av := &s.resvView
	av.shareIndex(v)
	flat := s.parResvFree[:0]
	ats := s.parResvAt[:0]
	i := 0
	for i < len(releases) {
		at := releases[i].at
		for i < len(releases) && releases[i].at == at {
			if p := av.Pos(s.relCloudName(releases[i].cloudRank)); p >= 0 {
				av.free[p] += releases[i].cores
			}
			i++
		}
		flat = append(flat, av.free...)
		ats = append(ats, at)
	}
	s.parResvFree, s.parResvAt = flat, ats
	for len(s.parResvViews) < s.pool.n {
		s.parResvViews = append(s.parResvViews, CloudView{})
	}
	views := s.parResvViews[:s.pool.n]
	for w := range views {
		views[w].Clouds, views[w].pos, views[w].names = v.Clouds, v.pos, v.names
	}
	block := 2 * s.pool.n
	for len(s.parResvPlans) < block {
		s.parResvPlans = append(s.parResvPlans, Plan{})
	}
	plans := s.parResvPlans[:block]
	for start := 0; start < len(ats); start += block {
		n := len(ats) - start
		if n > block {
			n = block
		}
		s.pool.run(n, func(w, k int) {
			idx := start + k
			wv := &views[w]
			wv.free = flat[idx*nc : (idx+1)*nc]
			var plan Plan
			if !s.provablyEmpty(j, wv) {
				// chooseWith copies the winning members out of the worker's
				// scratch, so the plan is owned.
				plan = sc.chooseWith(s, j, wv, &s.pool.scratch[w])
			}
			plans[k] = plan
		})
		for k := 0; k < n; k++ {
			if !plans[k].Empty() {
				return reservation{job: j.ID, jref: j, plan: plans[k], at: ats[start+k]}, true
			}
		}
	}
	return reservation{}, false
}

// speculateBackfill scores, in parallel, a (plan, backfill-verdict) pair
// for the queued jobs the scan is about to probe against the held
// reservation — the parallel backfill scan. Each worker scores its
// candidates against the frozen view with its own placeScratch and judges
// the backfill gate through backfillFits, the pure form of backfillOK's
// arithmetic (frozen free vector + the cycle's release sums at the
// reservation instant). Entries land in the same optimistic-commit table
// the head speculation uses: the commit path revalidates the view version
// (any dispatch moved the free vector and drops the whole batch) and the
// reservation pointer before trusting a verdict, and rescoring on conflict
// is inline and authoritative — speculation can only save work, never
// change a decision. Called when the reservation is first held and again
// after each backfill dispatch, so the candidate walk between dispatches
// runs across the pool.
func (s *Scheduler) speculateBackfill(v *CloudView) {
	if s.pool == nil || !s.memoable || s.resv == nil || s.cfg.DisableBackfill {
		return
	}
	sc, ok := s.cfg.Placement.(scratchChooser)
	if !ok {
		return
	}
	now := s.K.Now()
	maxCands := specBackfillPerWorker * s.pool.n
	cands := s.bfCands[:0]
	for _, t := range s.tenantList {
		if len(cands) == maxCands {
			break
		}
		start := 0
		if t.scanCycle == s.cycleNum {
			start = t.scan
		}
		for qi := start; qi < len(t.queue) && len(cands) < maxCands; qi++ {
			j := t.queue[qi]
			if j.Spec.External() || j.Spec.InputFractions != nil || j.retryAt > now || !s.canFit(j) {
				continue
			}
			cands = append(cands, j)
			if qi-start+1 >= specBackfillPerTenant {
				break
			}
		}
	}
	s.bfCands = cands
	if len(cands) < 2 {
		return // nothing worth a fork-join
	}
	gen := s.B.Ledger().Generation()
	ver := s.viewVer
	resv := s.resv
	for len(s.specEntries) < len(cands) {
		s.specEntries = append(s.specEntries, specEntry{})
	}
	entries := s.specEntries[:len(cands)]
	s.pool.run(len(cands), func(w, k int) {
		j := cands[k]
		var plan Plan
		bfOK := false
		if !s.provablyEmpty(j, v) {
			// chooseWith copies the winning members out of the worker's
			// scratch before returning, so the plan is owned.
			plan = sc.chooseWith(s, j, v, &s.pool.scratch[w])
		}
		if !plan.Empty() {
			bfOK = s.backfillFits(j, plan, resv, v)
		}
		entries[k] = specEntry{plan: plan, gen: gen, ver: ver, bfOK: bfOK, bfResv: resv}
	})
	for k, j := range cands {
		s.spec[j] = entries[k]
	}
}

// specBackfill returns the speculated backfill verdict for the job, valid
// only when it was judged against the current reservation (pointer
// identity) and the current working-view version. The caller must already
// have consumed the entry's plan un-rescored (specPlan hit, planStale
// false) — a rescored plan is not the one the verdict was judged for.
func (s *Scheduler) specBackfill(j *Job) (ok, valid bool) {
	if s.pool == nil || len(s.spec) == 0 || s.resv == nil {
		return false, false
	}
	e, found := s.spec[j]
	if !found || e.ver != s.viewVer || e.bfResv != s.resv {
		return false, false
	}
	return e.bfOK, true
}

// victimPrefixPar is chooseVictims' pool-parallel what-if fit: the
// availability vector after evicting each price-sorted candidate prefix is
// accumulated sequentially (identical adds in identical order to the
// sequential walk), then the per-prefix Choose probes — each a pure
// function of (head, frozen availability vector) — fan across the pool in
// prefix-order blocks. The smallest prefix yielding a non-empty plan is
// the answer, exactly the sequential walk's; the plan itself is discarded
// either way (preemptFor re-chooses after the evictions re-snapshot the
// view). Returns the index of the last victim in the winning prefix, or -1
// when even evicting every candidate leaves the head unplaceable.
func (s *Scheduler) victimPrefixPar(head *Job, cand []*Job, av *CloudView, sc scratchChooser) int {
	nc := len(av.Clouds)
	flat := s.parResvFree[:0]
	for _, victim := range cand {
		cpw := victim.coresPerWorker()
		for _, m := range victim.Plan.Members {
			if p := av.Pos(m.Cloud); p >= 0 {
				av.free[p] += m.Workers * cpw
			}
		}
		flat = append(flat, av.free...)
	}
	s.parResvFree = flat
	for len(s.parResvViews) < s.pool.n {
		s.parResvViews = append(s.parResvViews, CloudView{})
	}
	views := s.parResvViews[:s.pool.n]
	for w := range views {
		views[w].Clouds, views[w].pos, views[w].names = av.Clouds, av.pos, av.names
	}
	block := 2 * s.pool.n
	for len(s.parResvPlans) < block {
		s.parResvPlans = append(s.parResvPlans, Plan{})
	}
	plans := s.parResvPlans[:block]
	for start := 0; start < len(cand); start += block {
		n := len(cand) - start
		if n > block {
			n = block
		}
		s.pool.run(n, func(w, k int) {
			idx := start + k
			wv := &views[w]
			wv.free = flat[idx*nc : (idx+1)*nc]
			var plan Plan
			if !s.provablyEmpty(head, wv) {
				// The plan is discarded; chooseWith still owns its members.
				plan = sc.chooseWith(s, head, wv, &s.pool.scratch[w])
			}
			plans[k] = plan
		})
		for k := 0; k < n; k++ {
			if !plans[k].Empty() {
				return start + k
			}
		}
	}
	return -1
}

// elasticEval is one running job's parallel elastic evaluation: the
// mutation-independent verdicts a worker can compute against frozen state,
// applied later by the sequential commit walk.
type elasticEval struct {
	skip  bool
	force bool
	// cons records that the consolidation gates passed; consTo is the
	// target the frozen ledger view produced (possibly ""). The commit
	// walk recomputes the target against the live ledger when the view
	// went stale (an earlier commit mutated capacity).
	cons   bool
	consTo string
	// Progress observed at evaluation time. Progress is a pure read on
	// every Handle implementation and no commit mutates another job's
	// handle, so the values equal what the sequential interleaved walk
	// would read at its turn.
	md, mt, rd, rt int
}

// elasticPar is elasticTick's pool-parallel body: evaluation fans out per
// running job against frozen state (the scheduler's reservation, each
// job's own record and handle, and a lock-free capacity.View for the
// consolidation probes), then mutations run on the sequential commit walk
// in submission order. Per-job verdicts are mutation-independent — no
// commit changes another job's state, handle, or plan — except the
// consolidation target's ledger reads, which the commit walk recomputes
// live exactly when the snapshot went stale (View.Current). Traces,
// prices, and grow/shrink decisions are byte-identical to the sequential
// walk's.
func (s *Scheduler) elasticPar() {
	run := s.runScratch
	now := s.K.Now()
	lv := s.B.Ledger().View()
	for len(s.elasticEvals) < len(run) {
		s.elasticEvals = append(s.elasticEvals, elasticEval{})
	}
	evals := s.elasticEvals[:len(run)]
	s.pool.run(len(run), func(_, k int) {
		j := run[k]
		e := &evals[k]
		*e = elasticEval{}
		if j.State != Running || j.handle == nil {
			e.skip = true
			return
		}
		if s.cfg.EnablePreemption && s.resv != nil && s.preemptible(j) &&
			float64(now-j.Started) > s.cfg.PreemptOverrunFactor*float64(j.estDuration) &&
			s.feedsReservation(j) {
			// The sequential walk evicts before reading Progress; mirror
			// that by not reading it here either.
			e.force = true
			return
		}
		if s.cfg.EnableConsolidation && j.Plan.Spanning() && !j.relocating {
			if _, ok := j.handle.(Relocator); ok {
				e.cons = true
				e.consTo = s.consolidationTargetOn(j, lv)
			}
		}
		e.md, e.mt, e.rd, e.rt = j.handle.Progress()
	})
	for k, j := range run {
		e := &evals[k]
		if e.skip {
			continue
		}
		if e.force {
			var price float64
			if s.tr != nil { // Shares/EntitledShares allocate; price only feeds the trace
				price = s.evictPrice(j, now, s.Shares(), s.EntitledShares())
			}
			s.m.forcedPreemptions.Inc()
			s.shields = append(s.shields, s.evict(j, s.resv.at, price, "forced_preempt")...)
			s.kick()
			continue
		}
		if e.cons {
			to := e.consTo
			if !lv.Current() {
				// An earlier commit moved capacity: the frozen answer may be
				// stale, so ask the live ledger — the sequential behaviour.
				to = s.consolidationTarget(j)
			}
			if to != "" {
				s.startConsolidation(j, j.handle.(Relocator), to)
			}
		}
		md, mt, rd, rt := e.md, e.mt, e.rd, e.rt
		if j.Spec.Deadline > 0 {
			eta := s.predictETA(j, md, mt, rd, rt)
			if eta > j.Spec.Deadline-s.cfg.DeadlineMargin &&
				(j.Spec.MaxExtraWorkers == 0 || j.deadlineGrown < j.Spec.MaxExtraWorkers) {
				j.deadlineGrown++
				s.m.growRequests.Inc()
				s.growOne(j, &j.deadlineGrown)
			}
		}
		if j.deadlineGrown > 0 && !j.shrunk && mt > 0 && md >= mt && rt > 0 {
			j.shrunk = true
			if n := j.handle.Shrink(j.deadlineGrown); n > 0 {
				s.m.shrinkRequests.Inc()
				s.resize(j, -n*j.coresPerWorker())
				s.kick()
			}
		}
	}
}

// choosePar is BestScore's pool-parallel single-cloud scan: contiguous
// cloud-index ranges fan across the workers, each reducing to a range-local
// best with its own scratch, and the locals reduce in index order — the
// same strict total order as the sequential scan, so the same winner. The
// gang path stays sequential (its greedy growth is cheap and rare).
func (b BestScore) choosePar(s *Scheduler, j *Job, v *CloudView) Plan {
	workers := j.workers()
	cpw := j.coresPerWorker()
	boost := 1.0
	if s.boostedTenant(j) {
		boost = s.cfg.PatternBoost
	}
	n := len(v.Clouds)
	parts := s.pool.n
	if parts > n {
		parts = n
	}
	for len(s.parPlans) < parts {
		s.parPlans = append(s.parPlans, Plan{})
		s.parPrices = append(s.parPrices, 0)
	}
	plans := s.parPlans[:parts]
	prices := s.parPrices[:parts]
	s.pool.run(parts, func(w, k int) {
		lo, hi := n*k/parts, n*(k+1)/parts
		p, price := scanSingleClouds(s, j, v, &s.pool.scratch[w], workers, cpw, boost, lo, hi)
		if !p.Empty() {
			// Own the members: the worker's scratch is reused by its
			// next task.
			p.Members = append([]Member(nil), p.Members...)
		}
		plans[k], prices[k] = p, price
	})
	var best Plan
	bestPrice := 0.0
	for k := 0; k < parts; k++ {
		if plans[k].Empty() {
			continue
		}
		if best.Empty() || s.place.betterPlan(plans[k], best, prices[k], bestPrice) {
			best, bestPrice = plans[k], prices[k]
		}
	}
	if !best.Empty() {
		return best
	}
	return scanGangClouds(s, j, v, &s.place, workers, cpw)
}
