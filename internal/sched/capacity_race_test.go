package sched

import (
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/sim"
)

// Regression tests for the grow-vs-reservation race (ROADMAP follow-on from
// the gang-placement PR): elastic growth used to consult free cores but not
// outstanding backfill reservations, so a deadline-chasing grow could take
// the cores a reserved gang start needed. Growth now probes the capacity
// ledger, where the scheduler's reservation lives between cycles.

// raceBackend: cloud "a" runs a 6-core holder until t=200; cloud "b" is
// filled by an elastic job that will try to grow; a wide job blocks and
// reserves all of "a" at t=200.
func raceBackend(t *testing.T) (*sim.Kernel, *SimBackend, *Scheduler, string, string) {
	t.Helper()
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("a", 8, 1, 0.10)
	b.AddCloud("b", 8, 1, 0.10)
	s := New(b, Config{ElasticInterval: 10 * sim.Second, DeadlineMargin: 10 * sim.Second})
	s.Start()
	s.AddTenant("t", 1)
	// Holder: 6 of a's 8 cores until t=200.
	submitN(t, s, "t", 1, JobSpec{Workers: 3, CoresPerWorker: 2, EstimateSeconds: 200})
	// Elastic job fills b and is doomed to miss its deadline, so every
	// elastic tick tries to grow it by one worker.
	elastic := submitN(t, s, "t", 1, JobSpec{Workers: 4, CoresPerWorker: 2,
		EstimateSeconds: 300, Deadline: 100 * sim.Second, MaxExtraWorkers: 2,
		MR: mapreduce.Job{NumMaps: 30, NumReduces: 2}})[0]
	// Wide job: needs all 8 of a's cores — blocked, reserving a at t=200.
	wide := submitN(t, s, "t", 1, JobSpec{Workers: 4, CoresPerWorker: 2, EstimateSeconds: 100})[0]
	return k, b, s, elastic, wide
}

// TestGrowDeniedByReservation: the elastic job's grow must not take a's two
// free cores — the reservation needs all 8 at t=200 — so the wide job
// starts exactly when the holder finishes, and no cloud is ever
// oversubscribed.
func TestGrowDeniedByReservation(t *testing.T) {
	k, b, s, elastic, wide := raceBackend(t)
	// Sample the physical invariant while the race window is open.
	for _, at := range []sim.Time{50 * sim.Second, 150 * sim.Second, 250 * sim.Second} {
		k.At(at, func() {
			for _, name := range []string{"a", "b"} {
				l := b.Ledger()
				if got := l.Committed(name) + l.Held(name); got > l.Total(name) {
					t.Errorf("t=%v: cloud %s oversubscribed: %d of %d cores",
						k.Now(), name, got, l.Total(name))
				}
			}
		})
	}
	k.Run()
	if s.GrowRequests() == 0 {
		t.Fatal("elastic job never attempted to grow; the race was not exercised")
	}
	ei, _ := s.Poll(elastic)
	if ei.GrewBy != 0 {
		t.Fatalf("grow took reserved cores: GrewBy=%d, want 0", ei.GrewBy)
	}
	wi, _ := s.Poll(wide)
	if wi.Started != 200*sim.Second {
		t.Fatalf("reserved gang start delayed: wide started %v, want 200s", wi.Started)
	}
}

// TestGrowSpillsWithoutReservation: the identical scenario minus the wide
// job — with no reservation on a, the same grow is admitted onto a's free
// cores. Proves the denial above is reservation-caused, not a grow
// regression.
func TestGrowSpillsWithoutReservation(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("a", 8, 1, 0.10)
	b.AddCloud("b", 8, 1, 0.10)
	s := New(b, Config{ElasticInterval: 10 * sim.Second, DeadlineMargin: 10 * sim.Second})
	s.Start()
	s.AddTenant("t", 1)
	submitN(t, s, "t", 1, JobSpec{Workers: 3, CoresPerWorker: 2, EstimateSeconds: 200})
	elastic := submitN(t, s, "t", 1, JobSpec{Workers: 4, CoresPerWorker: 2,
		EstimateSeconds: 300, Deadline: 100 * sim.Second, MaxExtraWorkers: 2,
		MR: mapreduce.Job{NumMaps: 30, NumReduces: 2}})[0]
	k.Run()
	ji, _ := s.Poll(elastic)
	if ji.GrewBy == 0 {
		t.Fatal("grow denied with no reservation outstanding")
	}
}

// TestReservationReleasedOnDispatch: once the reserved job dispatches, the
// ledger holds no stale reservation that would starve later growth.
func TestReservationReleasedOnDispatch(t *testing.T) {
	k, b, s, _, wide := raceBackend(t)
	k.Run()
	wi, _ := s.Poll(wide)
	if wi.State != Done {
		t.Fatalf("wide job state %v, want done", wi.State)
	}
	l := b.Ledger()
	for _, name := range []string{"a", "b"} {
		if r := l.Reserved(name); r != 0 {
			t.Errorf("stale reservation of %d cores on %s after quiescence", r, name)
		}
		if f := l.Free(name); f != l.Total(name) {
			t.Errorf("cores leaked on %s: free=%d of %d", name, f, l.Total(name))
		}
	}
}
