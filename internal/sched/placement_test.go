package sched

import (
	"reflect"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/sim"
)

// TestGangSpansWhenNoSingleCloudFits: a job wider than every cloud gets a
// multi-member plan, debits every member, and completes; a fitting job
// stays single-cloud.
func TestGangSpansWhenNoSingleCloudFits(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	c0 := b.AddCloud("c0", 16, 1, 0.10)
	c1 := b.AddCloud("c1", 16, 1, 0.10)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	// 12 workers x 2 cores = 24 > 16: must span.
	wide := submitN(t, s, "t", 1, JobSpec{Workers: 12, CoresPerWorker: 2, EstimateSeconds: 100,
		MR: mapreduce.Job{NumMaps: 24, NumReduces: 2, ShuffleBytesPerMapPerReduce: 1 << 20}})[0]
	k.RunUntil(1 * sim.Second)
	wi, _ := s.Poll(wide)
	if wi.State != Running {
		t.Fatalf("wide job not running: %v", wi.State)
	}
	if !wi.Plan.Spanning() || wi.Plan.Workers() != 12 {
		t.Fatalf("plan %v: want a 12-worker spanning plan", wi.Plan)
	}
	if c0.Free()+c1.Free() != 32-24 {
		t.Fatalf("free cores c0=%d c1=%d; want 8 total used by the gang", c0.Free(), c1.Free())
	}
	if s.SpanningDispatched() != 1 {
		t.Errorf("SpanningDispatched = %d, want 1", s.SpanningDispatched())
	}
	k.Run()
	wi, _ = s.Poll(wide)
	if wi.State != Done {
		t.Fatalf("wide job state %v err %v", wi.State, wi.Err)
	}
	if c0.Free() != 16 || c1.Free() != 16 {
		t.Errorf("cores leaked: c0=%d c1=%d free", c0.Free(), c1.Free())
	}
}

// TestSingleCloudPreferredWhenItFits: gang plans are a fallback, not a
// competitor — a job that fits one cloud never spans.
func TestSingleCloudPreferredWhenItFits(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 16, 1, 0.10)
	b.AddCloud("c1", 16, 1, 0.10)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	id := submitN(t, s, "t", 1, JobSpec{Workers: 8, CoresPerWorker: 2, EstimateSeconds: 100})[0]
	k.RunUntil(1 * sim.Second)
	ji, _ := s.Poll(id)
	if ji.Plan.Spanning() {
		t.Fatalf("fitting job spanned: %v", ji.Plan)
	}
}

// TestShuffleAwarePartnerChoice: when a gang must span, the shuffle cost
// term steers the second member toward the fat-pipe partner even though the
// thin-pipe one is cheaper; disabling the term flips the choice to the
// cheap cloud.
func TestShuffleAwarePartnerChoice(t *testing.T) {
	build := func(cfg Config) (*sim.Kernel, *Scheduler) {
		k := sim.NewKernel(1)
		b := NewSimBackend(k)
		b.AddCloud("anchor", 32, 1, 0.08)
		b.AddCloud("fat", 32, 1, 0.12)
		b.AddCloud("thin", 32, 1, 0.05)
		b.SetBandwidth("anchor", "fat", 100<<20)
		b.SetBandwidth("anchor", "thin", 5<<20)
		b.SetBandwidth("fat", "thin", 5<<20)
		s := New(b, cfg)
		s.AddTenant("t", 1)
		return k, s
	}
	spec := JobSpec{Workers: 24, CoresPerWorker: 2, EstimateSeconds: 100,
		InputSite: "anchor", InputBytes: 256 << 20,
		MR: mapreduce.Job{NumMaps: 48, NumReduces: 8, ShuffleBytesPerMapPerReduce: 2 << 20}}
	run := func(cfg Config) Plan {
		k, s := build(cfg)
		id := submitN(t, s, "t", 1, spec)[0]
		k.RunUntil(1 * sim.Second)
		ji, _ := s.Poll(id)
		return ji.Plan
	}
	aware := run(Config{})
	if !aware.Spanning() || aware.WorkersOn("fat") == 0 || aware.WorkersOn("thin") != 0 {
		t.Fatalf("shuffle-aware plan %v: want anchor+fat", aware)
	}
	if aware.Shuffle <= 0 {
		t.Errorf("spanning plan carries no shuffle cost: %+v", aware)
	}
	oblivious := run(Config{DisableShuffleCost: true})
	if !oblivious.Spanning() || oblivious.WorkersOn("thin") == 0 {
		t.Fatalf("bandwidth-oblivious plan %v: want the cheaper thin-pipe partner", oblivious)
	}
}

// TestPlanTieBreak: among equal-scoring single-cloud plans, lower price
// wins, then name.
func TestPlanTieBreak(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("bb", 16, 1, 0.10)
	b.AddCloud("aa", 16, 1, 0.20)
	b.AddCloud("cc", 16, 1, 0.10)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	id := submitN(t, s, "t", 1, JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 100})[0]
	k.RunUntil(1 * sim.Second)
	ji, _ := s.Poll(id)
	// All clouds score identically (no input, same headroom); bb and cc tie
	// on price 0.10 and bb wins by name.
	if ji.Cloud != "bb" {
		t.Fatalf("tie broken to %s, want bb (lowest price, then name)", ji.Cloud)
	}
}

// TestFractionalLocalityScoring: per-block input fractions shift placement
// toward the cloud holding the larger share of replicas.
func TestFractionalLocalityScoring(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("most", 16, 1, 0.20)
	b.AddCloud("some", 16, 1, 0.05)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	id := submitN(t, s, "t", 1, JobSpec{Workers: 4, CoresPerWorker: 2, EstimateSeconds: 100,
		InputSite: "most", InputBytes: 1 << 30,
		InputFractions: map[string]float64{"most": 0.75, "some": 0.25}})[0]
	k.RunUntil(1 * sim.Second)
	ji, _ := s.Poll(id)
	if ji.Cloud != "most" {
		t.Fatalf("placed on %s, want the 75%%-resident cloud despite its higher price", ji.Cloud)
	}
	if ji.Plan.Locality >= s.Config().LocalityWeight {
		t.Errorf("fractional locality %v not below the full-residency weight", ji.Plan.Locality)
	}
}

// TestRandomPlacementPlanDeterminism: the same seed yields the identical
// plan sequence, run to run, under the plan-based API.
func TestRandomPlacementPlanDeterminism(t *testing.T) {
	run := func(seed int64) []Plan {
		k := sim.NewKernel(seed)
		b := NewSimBackend(k)
		b.AddCloud("c0", 32, 1, 0.1)
		b.AddCloud("c1", 32, 1, 0.1)
		b.AddCloud("c2", 32, 1, 0.1)
		s := New(b, Config{Placement: RandomPlacement{}})
		s.AddTenant("t", 1)
		ids := submitN(t, s, "t", 12, JobSpec{Workers: 1, CoresPerWorker: 2, EstimateSeconds: 10})
		k.Run()
		out := make([]Plan, len(ids))
		for i, id := range ids {
			ji, _ := s.Poll(id)
			out[i] = ji.Plan
		}
		return out
	}
	for _, seed := range []int64{7, 42, 1234} {
		a, b := run(seed), run(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: plan sequences diverged:\n%v\n%v", seed, a, b)
		}
	}
}

// TestSingleCloudPolicyLeavesOversizedQueued: under RandomPlacement a job
// wider than every cloud is accepted but stays queued — without blocking
// jobs behind it — because only a spanning policy can ever place it.
func TestSingleCloudPolicyLeavesOversizedQueued(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 16, 1, 0.10)
	b.AddCloud("c1", 16, 1, 0.10)
	s := New(b, Config{Placement: RandomPlacement{}})
	s.AddTenant("t", 1)
	big := submitN(t, s, "t", 1, JobSpec{Workers: 12, CoresPerWorker: 2, EstimateSeconds: 100})[0]
	small := submitN(t, s, "t", 1, JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 50})[0]
	k.RunUntil(3600 * sim.Second)
	bi, _ := s.Poll(big)
	si, _ := s.Poll(small)
	if bi.State != Queued {
		t.Fatalf("oversized job state %v under single-cloud policy, want queued forever", bi.State)
	}
	if si.State != Done {
		t.Fatalf("small job state %v; the stuck head must not block it", si.State)
	}
}

// TestGangBackfillReservation: a wider-than-any-cloud job blocked behind
// running work receives a multi-cloud reservation and starts once the
// federation drains; a conflicting backfill candidate may not delay it.
func TestGangBackfillReservation(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 16, 1, 0.10)
	b.AddCloud("c1", 16, 1, 0.10)
	s := New(b, Config{})
	s.AddTenant("a", 1)
	// Fill both clouds until t=200.
	submitN(t, s, "a", 1, JobSpec{Workers: 7, CoresPerWorker: 2, EstimateSeconds: 200})
	submitN(t, s, "a", 1, JobSpec{Workers: 7, CoresPerWorker: 2, EstimateSeconds: 200})
	// The gang needs 24 cores: no single cloud ever fits it, so its
	// reservation must be a spanning vector over both clouds.
	gang := submitN(t, s, "a", 1, JobSpec{Workers: 12, CoresPerWorker: 2, EstimateSeconds: 100})[0]
	// This 2-core job fits now but would run past t=200 on reserved cores.
	long := submitN(t, s, "a", 1, JobSpec{Workers: 1, CoresPerWorker: 2, EstimateSeconds: 500})[0]
	k.Run()
	gi, _ := s.Poll(gang)
	li, _ := s.Poll(long)
	if gi.State != Done {
		t.Fatalf("gang job state %v err %v", gi.State, gi.Err)
	}
	if !gi.Plan.Spanning() {
		t.Fatalf("gang plan %v not spanning", gi.Plan)
	}
	if gi.Started != 200*sim.Second {
		t.Errorf("gang started at %v, want t=200s (the drain instant)", gi.Started)
	}
	if li.Started < gi.Started {
		t.Errorf("long job (started %v) jumped the gang reservation (%v)", li.Started, gi.Started)
	}
}

// TestElasticGrowPrefersExistingMembers: extras land on a member cloud
// while it has room, then spill to a new cloud.
func TestElasticGrowPrefersExistingMembers(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	c0 := b.AddCloud("c0", 6, 1, 0.10)
	c1 := b.AddCloud("c1", 16, 1, 0.10)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	id := submitN(t, s, "t", 1, JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 300})[0]
	k.RunUntil(1 * sim.Second)
	ji, _ := s.Poll(id)
	if ji.Cloud != "c0" {
		t.Fatalf("job on %s, want c0 (more headroom per total? c0 smaller) — plan %v", ji.Cloud, ji.Plan)
	}
	h := s.jobByID(id).handle.(*SimHandle)
	// First extra fits the member cloud (2 cores left on c0).
	h.Grow(1, nil)
	k.RunUntil(2 * sim.Second)
	if c0.Free() != 0 {
		t.Fatalf("extra not placed on member cloud: c0 free=%d", c0.Free())
	}
	// Second extra must spill to c1.
	h.Grow(1, nil)
	k.RunUntil(3 * sim.Second)
	if c1.Free() != 14 {
		t.Fatalf("spill extra not on c1: free=%d, want 14", c1.Free())
	}
	// Shrink releases newest-first: the spill comes back before the member
	// extra.
	if n := h.Shrink(1); n != 1 || c1.Free() != 16 {
		t.Fatalf("shrink released n=%d c1.free=%d, want the c1 spill back", n, c1.Free())
	}
}

// TestNegativeScorePlanStillPlaces: a spanning plan whose shuffle penalty
// pushes its score below zero is still feasible and must dispatch — only
// capacity infeasibility may reject a plan. Regression: the scorer's old
// "-1 means unfit" sentinel swallowed legitimately negative scores,
// leaving wide shuffle-heavy jobs queued forever on an idle federation.
func TestNegativeScorePlanStillPlaces(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 16, 1, 0.10)
	b.AddCloud("c1", 16, 1, 0.10)
	b.SetBandwidth("c0", "c1", 1<<20) // 1 MB/s: enormous shuffle penalty
	// Boost the penalty weight past every positive term.
	s := New(b, Config{ShuffleWeight: 4})
	s.AddTenant("t", 1)
	id := submitN(t, s, "t", 1, JobSpec{Workers: 12, CoresPerWorker: 2, EstimateSeconds: 50,
		MR: mapreduce.Job{NumMaps: 24, NumReduces: 8, ShuffleBytesPerMapPerReduce: 8 << 20}})[0]
	k.RunUntil(1 * sim.Second)
	ji, _ := s.Poll(id)
	if ji.State != Running || !ji.Plan.Spanning() {
		t.Fatalf("shuffle-heavy wide job state %v plan %v; want running under a spanning plan", ji.State, ji.Plan)
	}
	if ji.Plan.Score >= 0 {
		t.Fatalf("plan score %v: the scenario is meant to exercise a negative-score plan", ji.Plan.Score)
	}
}
