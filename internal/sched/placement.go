package sched

// PlacementPolicy chooses the cloud a job's workers are provisioned on.
// free is the cycle's working copy of free cores (the backend snapshot
// minus what this cycle already dispatched); "" means nothing fits.
type PlacementPolicy interface {
	Name() string
	Choose(s *Scheduler, j *Job, clouds []CloudInfo, free map[string]int) string
}

// Score rates one candidate cloud for a job, or -1 when the job does not
// fit. Three terms, per the federation design:
//
//   - data locality: running at the cloud that holds the job's HDFS input
//     keeps the map-input stream off the WAN;
//   - free capacity: headroom as a fraction of the cloud's size, so load
//     spreads when locality is indifferent;
//   - inter-site bandwidth: for non-local placements, the bottleneck
//     bandwidth from the input site (taken from the simnet topology),
//     soft-normalised by RefBandwidth. Tenants with a detected
//     communication-heavy traffic pattern get this term boosted, biasing
//     them toward better-connected clouds.
func (s *Scheduler) Score(j *Job, c CloudInfo, freeCores int) float64 {
	if freeCores < j.Cores() {
		return -1
	}
	score := s.cfg.CapacityWeight * float64(freeCores) / float64(c.TotalCores)
	if j.Spec.InputSite != "" {
		if c.Name == j.Spec.InputSite {
			score += s.cfg.LocalityWeight
		} else {
			w := s.cfg.BandwidthWeight
			if p := s.patternOf[j.Spec.Tenant]; p == PatternAllToAll || p == PatternRing {
				w *= s.cfg.PatternBoost
			}
			bw := s.B.Bandwidth(j.Spec.InputSite, c.Name)
			score += w * bw / (bw + s.cfg.RefBandwidth)
		}
	}
	return score
}

// BestScore is the default locality-aware policy: highest Score wins, ties
// break by lower price then name.
type BestScore struct{}

// Name implements PlacementPolicy.
func (BestScore) Name() string { return "best-score" }

// Choose implements PlacementPolicy.
func (BestScore) Choose(s *Scheduler, j *Job, clouds []CloudInfo, free map[string]int) string {
	best := ""
	bestScore, bestPrice := -1.0, 0.0
	for _, c := range clouds {
		sc := s.Score(j, c, free[c.Name])
		if sc < 0 {
			continue
		}
		if best == "" || sc > bestScore ||
			(sc == bestScore && (c.Price < bestPrice || (c.Price == bestPrice && c.Name < best))) {
			best, bestScore, bestPrice = c.Name, sc, c.Price
		}
	}
	return best
}

// RandomPlacement is the locality-oblivious baseline: a uniformly random
// cloud among those with room, drawn from the kernel RNG (deterministic per
// seed).
type RandomPlacement struct{}

// Name implements PlacementPolicy.
func (RandomPlacement) Name() string { return "random" }

// Choose implements PlacementPolicy.
func (RandomPlacement) Choose(s *Scheduler, j *Job, clouds []CloudInfo, free map[string]int) string {
	var fitting []string
	for _, c := range clouds {
		if free[c.Name] >= j.Cores() {
			fitting = append(fitting, c.Name)
		}
	}
	if len(fitting) == 0 {
		return ""
	}
	return fitting[s.K.Rand().Intn(len(fitting))]
}
