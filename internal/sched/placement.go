package sched

import (
	"bytes"
	"math"
	"sort"
	"strconv"
)

// Gang placement: a job's workers may span clouds (over the ViNe overlay)
// when no single cloud can hold them. Policies return a Plan — an ordered
// set of {cloud, workers} members plus the cost breakdown that justified
// it — instead of a single cloud name. Single-cloud plans remain the common
// case and score exactly as the pre-plan scorer did, so established results
// (E10) are preserved; spanning is attempted only when no single cloud fits.

// Member is one cloud's slice of a gang placement.
type Member struct {
	Cloud   string
	Workers int
}

// Plan is a (possibly multi-cloud) placement for one job: ordered members —
// the first is the anchor, where elastic growth is tried first — plus the
// scored cost breakdown.
type Plan struct {
	Members []Member

	// Cost breakdown (see Scheduler.ScorePlan).
	Locality float64 // fractional input residency covered by members
	Capacity float64 // cores-weighted free-capacity headroom
	Input    float64 // inter-site bandwidth term for uncovered input
	Shuffle  float64 // cross-site shuffle penalty (subtracted)
	Score    float64
}

// Empty reports whether the plan places nothing.
func (p Plan) Empty() bool { return len(p.Members) == 0 }

// Feasible reports whether the plan fits the free cores it was scored
// against. A feasible plan's Score may still be negative (a heavy shuffle
// penalty) — infeasibility is marked by a -Inf score, not by sign.
func (p Plan) Feasible() bool { return !p.Empty() && !math.IsInf(p.Score, -1) }

// Spanning reports whether the plan crosses cloud boundaries.
func (p Plan) Spanning() bool { return len(p.Members) > 1 }

// Workers returns the total workers placed.
func (p Plan) Workers() int {
	n := 0
	for _, m := range p.Members {
		n += m.Workers
	}
	return n
}

// Primary returns the anchor cloud ("" for an empty plan).
func (p Plan) Primary() string {
	if len(p.Members) == 0 {
		return ""
	}
	return p.Members[0].Cloud
}

// WorkersOn returns the workers placed on one cloud.
func (p Plan) WorkersOn(cloud string) int {
	for _, m := range p.Members {
		if m.Cloud == cloud {
			return m.Workers
		}
	}
	return 0
}

// GrowCandidates splits the cloud list into capacity.PickGrowTarget's
// inputs: the plan's member clouds in plan order, then the non-member spill
// candidates in the given order (callers pass name-sorted clouds; the order
// is load-bearing — headroom ties keep the earliest). Shared by the
// federation and simulation backends so the growth policy's inputs cannot
// drift between them.
func (p Plan) GrowCandidates(clouds []string) (members, spill []string) {
	members = make([]string, 0, len(p.Members))
	for _, m := range p.Members {
		members = append(members, m.Cloud)
	}
	for _, c := range clouds {
		if p.WorkersOn(c) == 0 {
			spill = append(spill, c)
		}
	}
	return members, spill
}

// MoveWorkers returns a copy of the plan with up to `workers` workers moved
// from one member onto another (merged into an existing member or appended
// as a new one; a fully drained member disappears). The cost-breakdown
// fields are zeroed — they described the old shape. Shared by the
// scheduler's relocation bookkeeping and the backends' own plan copies so
// the two cannot drift.
func (p Plan) MoveWorkers(from, to string, workers int) Plan {
	out := Plan{Members: make([]Member, 0, len(p.Members))}
	moved := 0
	for _, m := range p.Members {
		if m.Cloud == from {
			take := workers
			if take > m.Workers {
				take = m.Workers
			}
			m.Workers -= take
			moved = take
			if m.Workers == 0 {
				continue
			}
		}
		out.Members = append(out.Members, m)
	}
	if moved == 0 {
		return Plan{Members: append(out.Members[:0:0], p.Members...)}
	}
	for i := range out.Members {
		if out.Members[i].Cloud == to {
			out.Members[i].Workers += moved
			return out
		}
	}
	out.Members = append(out.Members, Member{Cloud: to, Workers: moved})
	return out
}

// String renders "cloud0:16+cloud1:8".
func (p Plan) String() string {
	if p.Empty() {
		return "<none>"
	}
	return string(appendPlanString(nil, p.Members))
}

// appendPlanString renders the member list in Plan.String's form into dst —
// the allocation-free path behind the deterministic plan tie-break.
func appendPlanString(dst []byte, members []Member) []byte {
	for i, m := range members {
		if i > 0 {
			dst = append(dst, '+')
		}
		dst = append(dst, m.Cloud...)
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, int64(m.Workers), 10)
	}
	return dst
}

// SingleCloudPlan wraps one cloud and worker count as a Plan (no scoring).
func SingleCloudPlan(cloud string, workers int) Plan {
	return Plan{Members: []Member{{Cloud: cloud, Workers: workers}}}
}

// PlacementPolicy chooses the placement plan for a job's workers. The view
// carries the cycle's cloud snapshot and its working free-core vector (the
// backend snapshot minus what this cycle already dispatched); an empty plan
// means nothing fits. The returned plan must own its Members slice — it
// outlives the call (job records, reservations).
type PlacementPolicy interface {
	Name() string
	Choose(s *Scheduler, j *Job, v *CloudView) Plan
}

// fitProver is the optional policy extension behind the exact fit precheck:
// ProvablyUnplaceable must return true only when Choose would certainly
// return an empty plan for j against v — a cheap arithmetic proof, no
// scoring. The scheduler uses it to skip Choose entirely on the hot blocked
// paths (the cycle's backfill scan over jobs that cannot fit, and every
// non-viable instant of the reservation walk), where growPlan's greedy
// extension dominated the cycle profile. Soundness is what matters:
// a false negative just means Choose runs and discovers emptiness itself,
// so decisions are identical with or without the precheck.
type fitProver interface {
	ProvablyUnplaceable(j *Job, v *CloudView) bool
}

// placeScratch holds the buffers one placement evaluation scores plans in.
// The scheduler owns one for its sequential cycles; the parallel scoring
// pool gives each worker its own copy, so concurrent Choose evaluations
// over the shared read-only view never touch shared scratch.
type placeScratch struct {
	oneMember   [1]Member
	bestMembers []Member
	growMembers []Member
	growCand    []Member
	growBest    []Member
	// View-position slices parallel to growMembers/growCand/growBest, so
	// growPlan's inner loop scores without name→position lookups.
	growIdxs    []int
	growCandIdx []int
	growBestIdx []int
	nameScratch []string
	strA, strB  []byte // betterPlan tie-break rendering
	memberSlab  []Member
}

// persistMembers copies a scratch-backed member list into the scratch's
// append-only slab so the returned plan survives scratch reuse without a
// per-plan allocation. Slices are three-index capped: an append to a
// returned plan copies out instead of clobbering the next plan's members.
// Chunks are never reused, so escaping plans stay valid forever; the slab
// belongs to exactly one worker, so there is no sharing to synchronize.
func (ps *placeScratch) persistMembers(m []Member) []Member {
	if len(m) == 0 {
		return nil
	}
	if cap(ps.memberSlab)-len(ps.memberSlab) < len(m) {
		n := 256
		if len(m) > n {
			n = len(m)
		}
		ps.memberSlab = make([]Member, 0, n)
	}
	n := len(ps.memberSlab)
	ps.memberSlab = append(ps.memberSlab, m...)
	return ps.memberSlab[n : n+len(m) : n+len(m)]
}

// scratchChooser is the policy extension the parallel scoring pool needs:
// a Choose that runs entirely in caller-supplied scratch. Policies without
// it (or without PureChoose purity) are never speculated — their Choose
// runs on the scheduler goroutine with the scheduler's own scratch.
type scratchChooser interface {
	chooseWith(s *Scheduler, j *Job, v *CloudView, ps *placeScratch) Plan
}

// planMemoSlots sizes the plan memo table: one entry per distinct job shape
// scored against the current frozen view, evicted round-robin. Mixed
// workloads alternate between a handful of shapes within one backfill scan
// (and across sealed cycles — see viewSeal), so a single entry thrashed.
const planMemoSlots = 4

// planMemo is one entry of the frozen-view placement memo: between two
// dispatches the working free vector is frozen, and for a pure policy
// Choose is a function of the view plus the handful of job-spec fields
// scoring reads (worker shape, input locality, shuffle volume, tenant
// pattern boost). A blocked cycle's backfill scan walks hundreds of
// same-shaped queued jobs against one unchanged view — under the memo the
// first of each shape pays for Choose and the rest match and reuse the
// plan, byte for byte the same decision. Any view mutation (a dispatch's
// take, a mid-cycle re-snapshot) invalidates the whole table; a cycle start
// invalidates it unless the world is provably unchanged (viewSeal). Jobs
// with per-block locality maps (InputFractions) bypass it, as does any
// policy without PureChoose.
type planMemo struct {
	ok            bool
	workers, cpw  int
	inputSite     string
	maps, reduces int
	shufBytes     int64
	boosted       bool
	members       []Member
	plan          Plan // breakdown + score; Members held separately

	// Backfill-gate verdict parts for the memoized plan, computed lazily on
	// the first backfillOK against it and reusable while the memo instance
	// lives: the reservation and the release sums are fixed for the whole
	// cycle, and the working free vector is fixed between dispatches —
	// exactly the memo's own validity window.
	bfValid  bool
	bfShared bool // memo plan shares a cloud with the reservation
	bfCapOK  bool // shared clouds keep the reserved cores with this slice taken
	// Plan-shape estimate parts (see planEstimateSeconds): everything in the
	// cost model except the job's own base estimate and input byte count,
	// which are the only per-job inputs across jobs with the same memo key.
	estValid     bool
	estSpeed     float64 // slowest member speed
	estUncovered float64 // input fraction no member holds
	estMinBW     float64 // thinnest input-site link among members
	estShuffle   float64 // cross-site shuffle seconds (0 when not spanning)
}

// boostedTenant reports whether the job's tenant has a boost-worthy
// detected pattern (all-to-all or ring): resolved through the tenant
// pointer cached on the job at Submit, with a map fallback for jobs built
// outside Submit (tests).
func (s *Scheduler) boostedTenant(j *Job) bool {
	if j.tref != nil {
		return j.tref.boosted
	}
	pt := s.patternOf[j.Spec.Tenant]
	return pt == PatternAllToAll || pt == PatternRing
}

// memoLookup returns the memo entry holding this job shape's plan, or nil.
func (s *Scheduler) memoLookup(j *Job, boosted bool) *planMemo {
	for i := range s.memos {
		if s.memos[i].matches(j, boosted) {
			return &s.memos[i]
		}
	}
	return nil
}

// choosePlan is the cycle scan's Choose entry point: a memo hit returns the
// cached plan (fresh member copy, same breakdown), a miss delegates to the
// policy and records the answer in a round-robin slot for the rest of the
// frozen-view window.
func (s *Scheduler) choosePlan(j *Job, v *CloudView) Plan {
	if !s.memoable || j.Spec.InputFractions != nil {
		return s.cfg.Placement.Choose(s, j, v)
	}
	boosted := s.boostedTenant(j)
	if m := s.memoLookup(j, boosted); m != nil {
		s.m.planMemoHits.Inc()
		p := m.plan
		if len(m.members) > 0 {
			p.Members = append([]Member(nil), m.members...)
		}
		return p
	}
	p := s.cfg.Placement.Choose(s, j, v)
	m := &s.memos[s.memoNext]
	s.memoNext = (s.memoNext + 1) % planMemoSlots
	m.ok = true
	m.workers, m.cpw = j.workers(), j.coresPerWorker()
	m.inputSite = j.Spec.InputSite
	m.boosted = boosted
	m.maps, m.reduces = j.Spec.MR.NumMaps, j.Spec.MR.NumReduces
	m.shufBytes = j.Spec.MR.ShuffleBytesPerMapPerReduce
	m.members = append(m.members[:0], p.Members...)
	m.plan = p
	m.plan.Members = nil
	m.bfValid, m.estValid = false, false
	return p
}

// matches reports whether the memo holds the plan for this job's shape.
func (m *planMemo) matches(j *Job, boosted bool) bool {
	return m.ok && m.workers == j.workers() && m.cpw == j.coresPerWorker() &&
		m.inputSite == j.Spec.InputSite && m.boosted == boosted &&
		m.maps == j.Spec.MR.NumMaps && m.reduces == j.Spec.MR.NumReduces &&
		m.shufBytes == j.Spec.MR.ShuffleBytesPerMapPerReduce
}

// estParts fills the memo's plan-shape estimate parts — the planEstimate-
// Seconds cost model minus the two per-job inputs (base estimate, input
// byte count). Loops and float expressions mirror planEstimateSeconds
// exactly so assembled estimates stay bit-identical.
func (s *Scheduler) estParts(m *planMemo, v *CloudView) {
	m.estSpeed = 1.0
	for i, mm := range m.members {
		if p := v.Pos(mm.Cloud); p >= 0 && v.Clouds[p].Speed > 0 {
			if c := v.Clouds[p]; i == 0 || c.Speed < m.estSpeed {
				m.estSpeed = c.Speed
			}
		}
	}
	m.estUncovered, m.estMinBW = 0, 0
	if m.inputSite != "" {
		covered := 0.0
		for _, mm := range m.members {
			if mm.Cloud == m.inputSite {
				covered += 1
			}
		}
		if covered > 1 {
			covered = 1
		}
		if uncovered := 1 - covered; uncovered > 0 {
			m.estUncovered = uncovered
			for _, mm := range m.members {
				if mm.Cloud == m.inputSite {
					continue
				}
				bw := s.B.Bandwidth(m.inputSite, mm.Cloud)
				if bw <= 0 {
					continue
				}
				if m.estMinBW == 0 || bw < m.estMinBW {
					m.estMinBW = bw
				}
			}
		}
	}
	m.estShuffle = 0
	if len(m.members) > 1 {
		j := Job{Spec: JobSpec{CoresPerWorker: m.cpw}}
		j.Spec.MR.NumMaps, j.Spec.MR.NumReduces = m.maps, m.reduces
		j.Spec.MR.ShuffleBytesPerMapPerReduce = m.shufBytes
		m.estShuffle = crossShuffleSeconds(s.B, &j, m.members)
	}
	m.estValid = true
}

// estimateAtMemo assembles the runtime estimate for job j under the
// memoized plan from the cached shape parts: bit-identical to
// planEstimateSeconds on the same plan and view.
func (s *Scheduler) estimateAtMemo(j *Job, m *planMemo, v *CloudView) float64 {
	if !m.estValid {
		s.estParts(m, v)
	}
	est := j.estimate() / m.estSpeed
	if j.Spec.InputSite != "" && j.Spec.InputBytes > 0 && m.estUncovered > 0 && m.estMinBW > 0 {
		est += m.estUncovered * float64(j.Spec.InputBytes) / m.estMinBW
	}
	if m.estShuffle != 0 {
		est += m.estShuffle
	}
	return est
}

// inputFraction returns the fraction of the job's input bytes resident on
// one cloud: the explicit per-block map (hdfs.LocalityFractions) when set,
// else 1 on the whole-file InputSite. Allocation-free — the scoring hot
// path asks per member.
func (j *Job) inputFraction(cloud string) float64 {
	if j.Spec.InputFractions != nil {
		return j.Spec.InputFractions[cloud]
	}
	if cloud != "" && cloud == j.Spec.InputSite {
		return 1
	}
	return 0
}

// ScorePlan rates a candidate plan for a job, returning the plan with its
// cost breakdown filled in; a plan that does not fit the given free cores
// comes back infeasible (Score = -Inf; check Plan.Feasible, not the sign —
// a feasible shuffle-heavy plan can legitimately score below zero). Four
// terms, per the federation design:
//
//   - fractional data locality: the fraction of the job's input bytes with
//     a replica on some member cloud (from hdfs.File block replica maps via
//     JobSpec.InputFractions; whole-file InputSite counts as fraction 1) —
//     input covered by a member stays off the WAN;
//   - free capacity: cores-weighted headroom across members, so load
//     spreads when locality is indifferent;
//   - inter-site input bandwidth: the uncovered input fraction streams over
//     the bottleneck link from the input site, soft-normalised by
//     RefBandwidth. Tenants with a detected communication-heavy traffic
//     pattern get this term boosted, biasing them toward better-connected
//     clouds;
//   - cross-site shuffle cost (spanning plans only): the job's map-output
//     volume crossing cloud boundaries (all-to-all during the shuffle
//     phase: fraction 1 - Σ shareᵢ²) over the bottleneck bandwidth between
//     members, normalised by RefShuffleSeconds and boosted by detected
//     patterns — this is what makes a fat-pipe partner beat a cheap
//     thin-pipe one.
//
// Single-member plans have zero shuffle cost and score identically to the
// pre-plan single-cloud scorer.
//
// This is the compatibility wrapper over an ad-hoc (clouds, free) pair; the
// scheduler's cycles call scorePlan with the per-cycle CloudView instead.
func (s *Scheduler) ScorePlan(j *Job, members []Member, clouds []CloudInfo, free map[string]int) Plan {
	v := viewOf(clouds, free)
	return s.scorePlan(j, members, &v)
}

// scorePlan is ScorePlan over the cycle's indexed view: no per-call map
// builds, every cloud lookup a single index hit. The returned plan's
// Members field aliases the caller's slice.
func (s *Scheduler) scorePlan(j *Job, members []Member, v *CloudView) Plan {
	var buf [8]int
	idxs := buf[:0]
	if len(members) > len(buf) {
		idxs = make([]int, 0, len(members))
	}
	for _, m := range members {
		idxs = append(idxs, v.Pos(m.Cloud))
	}
	return s.scorePlanIdx(j, members, idxs, v)
}

// scorePlanIdx is scorePlan when the caller already holds each member's view
// position (idxs[k] = members[k]'s position, -1 for unknown): identical
// arithmetic in identical order with the name→position lookups elided, so
// scores stay bit-identical. growPlan's inner loop lives here — it evaluates
// the same candidate clouds it just indexed over.
func (s *Scheduler) scorePlanIdx(j *Job, members []Member, idxs []int, v *CloudView) Plan {
	p := Plan{Members: members, Score: math.Inf(-1)}
	if len(members) == 0 {
		return p
	}
	cpw := j.coresPerWorker()
	totalCores := 0
	for k, m := range members {
		i := idxs[k]
		if i < 0 || m.Workers <= 0 || v.free[i] < m.Workers*cpw || v.Clouds[i].TotalCores <= 0 {
			return p
		}
		totalCores += m.Workers * cpw
	}
	boost := 1.0
	if s.boostedTenant(j) {
		boost = s.cfg.PatternBoost
	}
	for k, m := range members {
		i := idxs[k]
		share := float64(m.Workers*cpw) / float64(totalCores)
		p.Capacity += s.cfg.CapacityWeight * share * float64(v.free[i]) / float64(v.Clouds[i].TotalCores)
		p.Locality += j.inputFraction(m.Cloud)
	}
	if p.Locality > 1 {
		p.Locality = 1
	}
	uncovered := 1 - p.Locality
	p.Locality *= s.cfg.LocalityWeight
	if j.Spec.InputSite != "" && uncovered > 0 {
		// The uncovered input streams from the input site; each member pays
		// its cores-weighted share of the bandwidth term.
		for _, m := range members {
			share := float64(m.Workers*cpw) / float64(totalCores)
			if m.Cloud == j.Spec.InputSite {
				continue
			}
			bw := s.B.Bandwidth(j.Spec.InputSite, m.Cloud)
			p.Input += s.cfg.BandwidthWeight * boost * uncovered * share * bw / (bw + s.cfg.RefBandwidth)
		}
	}
	if len(members) > 1 && !s.cfg.DisableShuffleCost {
		if secs := crossShuffleSeconds(s.B, j, members); secs > 0 {
			p.Shuffle = s.cfg.ShuffleWeight * boost * secs / (secs + s.cfg.RefShuffleSeconds)
		}
	}
	p.Score = p.Locality + p.Capacity + p.Input - p.Shuffle
	return p
}

// crossShuffleSeconds estimates the time a plan spends moving map output
// across cloud boundaries: with workers split share₁..shareₙ and shuffle
// traffic all-to-all, the fraction 1 - Σ shareᵢ² of the job's map-output
// volume crosses sites, through the bottleneck link between members. One
// model shared by plan scoring (ScorePlan) and runtime estimation
// (planEstimateSeconds), so reservations agree with the scores that made
// them.
func crossShuffleSeconds(b Backend, j *Job, members []Member) float64 {
	volume := float64(j.Spec.MR.NumMaps) * float64(j.Spec.MR.NumReduces) *
		float64(j.Spec.MR.ShuffleBytesPerMapPerReduce)
	cpw := j.coresPerWorker()
	totalCores := 0
	for _, m := range members {
		totalCores += m.Workers * cpw
	}
	if volume <= 0 || totalCores <= 0 {
		return 0
	}
	crossFrac := 1.0
	for _, m := range members {
		share := float64(m.Workers*cpw) / float64(totalCores)
		crossFrac -= share * share
	}
	if crossFrac <= 0 {
		return 0
	}
	minBW := 0.0
	for i, a := range members {
		for _, m := range members[i+1:] {
			bw := b.Bandwidth(a.Cloud, m.Cloud)
			if bw <= 0 {
				continue
			}
			if minBW == 0 || bw < minBW {
				minBW = bw
			}
		}
	}
	if minBW <= 0 {
		return 0
	}
	return volume * crossFrac / minBW
}

// planPrice returns the per-core-hour cost of the plan (the tie-breaker:
// cheaper capacity wins among equal scores). One index hit per member
// instead of the former members × clouds scan.
func planPrice(members []Member, v *CloudView, cpw int) float64 {
	price := 0.0
	for _, m := range members {
		if i := v.Pos(m.Cloud); i >= 0 {
			price += float64(m.Workers*cpw) * v.Clouds[i].Price
		}
	}
	return price
}

// planPriceIdx is planPrice with the member positions supplied — same sum,
// same order, no lookups.
func planPriceIdx(members []Member, idxs []int, v *CloudView, cpw int) float64 {
	price := 0.0
	for k, m := range members {
		if i := idxs[k]; i >= 0 {
			price += float64(m.Workers*cpw) * v.Clouds[i].Price
		}
	}
	return price
}

// betterPlan reports whether candidate a beats b: higher score, then lower
// price, then lexicographic member rendering for determinism. The rendering
// comparison goes through the evaluation's byte scratch — byte-equal to
// a.String() < b.String() without building the strings. The three-level
// comparison is a total order over distinct plans, which is what makes the
// parallel scoring pool's min-reduction independent of how candidates were
// partitioned across workers.
func (ps *placeScratch) betterPlan(a, b Plan, aPrice, bPrice float64) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if aPrice != bPrice {
		return aPrice < bPrice
	}
	ps.strA = appendPlanString(ps.strA[:0], a.Members)
	ps.strB = appendPlanString(ps.strB[:0], b.Members)
	return bytes.Compare(ps.strA, ps.strB) < 0
}

// BestScore is the default locality- and shuffle-aware policy. It prefers
// the best-scoring single cloud with room for the whole gang (ties break by
// lower price then name — identical to the pre-plan policy); only when no
// single cloud fits does it assemble a spanning plan: from every viable
// anchor it greedily adds the member that maximises the plan score (which
// penalises thin inter-member pipes through the shuffle term) until the
// worker demand is covered, then keeps the best complete candidate.
type BestScore struct{}

// Name implements PlacementPolicy.
func (BestScore) Name() string { return "best-score" }

// PureChoose marks BestScore's Choose as a pure function of (job, view):
// the blocked head's reservation recompute cache may reuse its answers.
func (BestScore) PureChoose() bool { return true }

// ProvablyUnplaceable implements fitProver: placing `workers` whole workers
// of cpw cores each — on one cloud or spanning — requires Σ⌊free/cpw⌋ ≥
// workers across clouds, and conversely growPlan succeeds whenever the slot
// sum covers the demand (each greedy step takes a cloud's whole ⌊free/cpw⌋,
// and a constructed plan is always feasible against the free cores it was
// built from). So the slot sum decides emptiness exactly, in one pass over
// the free vector.
func (BestScore) ProvablyUnplaceable(j *Job, v *CloudView) bool {
	cpw := j.coresPerWorker()
	slots := 0
	for _, f := range v.free {
		if f > 0 {
			slots += f / cpw
		}
	}
	return slots < j.workers()
}

// Choose implements PlacementPolicy. Candidate plans are scored in
// scheduler-owned scratch buffers; only the winning plan's members are
// copied out, so a Choose that places nothing allocates nothing. With a
// scoring pool and enough clouds the single-cloud scan fans out across the
// workers (choosePar) — same decisions, byte for byte.
func (b BestScore) Choose(s *Scheduler, j *Job, v *CloudView) Plan {
	if s.pool != nil && len(v.Clouds) >= parallelCloudMin {
		return b.choosePar(s, j, v)
	}
	return b.chooseWith(s, j, v, &s.place)
}

// chooseWith is Choose running in caller-supplied scratch — the entry point
// the parallel scoring pool uses with per-worker buffers. It reads the
// scheduler only through immutable-within-the-evaluation state (cfg,
// patternOf, the backend's bandwidth topology).
func (BestScore) chooseWith(s *Scheduler, j *Job, v *CloudView, ps *placeScratch) Plan {
	workers := j.workers()
	cpw := j.coresPerWorker()
	boost := 1.0
	if s.boostedTenant(j) {
		boost = s.cfg.PatternBoost
	}
	best, _ := scanSingleClouds(s, j, v, ps, workers, cpw, boost, 0, len(v.Clouds))
	if !best.Empty() {
		best.Members = ps.persistMembers(best.Members)
		return best
	}
	return scanGangClouds(s, j, v, ps, workers, cpw)
}

// scanGangClouds is the spanning fallback when no single cloud fits: grow a
// plan from each viable anchor and keep the best complete candidate. Shared
// by the sequential scan and the parallel scorer's fallback (gang growth is
// rare and greedy-sequential by nature, so it is never itself fanned out).
func scanGangClouds(s *Scheduler, j *Job, v *CloudView, ps *placeScratch, workers, cpw int) Plan {
	var best Plan
	bestPrice := 0.0
	for i := range v.Clouds {
		if v.free[i] < cpw {
			continue
		}
		p, ok := s.growPlan(j, v.Clouds[i].Name, i, workers, cpw, v, ps)
		if !ok {
			continue
		}
		price := planPrice(p.Members, v, cpw)
		if best.Empty() || ps.betterPlan(p, best, price, bestPrice) {
			ps.bestMembers = append(ps.bestMembers[:0], p.Members...)
			p.Members = ps.bestMembers
			best, bestPrice = p, price
		}
	}
	if !best.Empty() {
		best.Members = append([]Member(nil), best.Members...)
	}
	return best
}

// scanSingleClouds scores the single-cloud candidates over the cloud index
// range [lo, hi) and returns the range's best plan and its price — the
// common-case fast path, scored index-first: the four scorePlan terms
// specialised to one member whose cores-weighted share is exactly 1, so no
// name→position lookups and no shuffle term. Float operation order matches
// scorePlan term for term (share = 1 multiplications are exact), keeping
// scores bit-identical to the general path. betterPlan is a strict total
// order over distinct clouds (members tie-break), so range-local bests
// reduced in index order equal one sequential scan — the property the
// parallel scorer relies on.
func scanSingleClouds(s *Scheduler, j *Job, v *CloudView, ps *placeScratch, workers, cpw int, boost float64, lo, hi int) (Plan, float64) {
	var best Plan
	bestPrice := 0.0
	for i := lo; i < hi; i++ {
		if v.free[i] < workers*cpw || v.Clouds[i].TotalCores <= 0 {
			continue
		}
		name := v.Clouds[i].Name
		var p Plan
		p.Capacity = s.cfg.CapacityWeight * float64(v.free[i]) / float64(v.Clouds[i].TotalCores)
		p.Locality = j.inputFraction(name)
		if p.Locality > 1 {
			p.Locality = 1
		}
		uncovered := 1 - p.Locality
		p.Locality *= s.cfg.LocalityWeight
		if j.Spec.InputSite != "" && uncovered > 0 && name != j.Spec.InputSite {
			bw := s.B.Bandwidth(j.Spec.InputSite, name)
			p.Input = s.cfg.BandwidthWeight * boost * uncovered * bw / (bw + s.cfg.RefBandwidth)
		}
		p.Score = p.Locality + p.Capacity + p.Input
		price := float64(workers*cpw) * v.Clouds[i].Price
		ps.oneMember[0] = Member{Cloud: name, Workers: workers}
		p.Members = ps.oneMember[:]
		if best.Empty() || ps.betterPlan(p, best, price, bestPrice) {
			ps.bestMembers = append(ps.bestMembers[:0], p.Members...)
			p.Members = ps.bestMembers
			best, bestPrice = p, price
		}
	}
	return best, bestPrice
}

// planHas reports whether the member list already uses the cloud (replaces
// the former per-call `used` map; member lists are short).
func planHas(members []Member, cloud string) bool {
	for _, m := range members {
		if m.Cloud == cloud {
			return true
		}
	}
	return false
}

// planHasIdx is planHas over view positions — positions and names are in
// bijection within one view, so the verdicts agree.
func planHasIdx(idxs []int, i int) bool {
	for _, x := range idxs {
		if x == i {
			return true
		}
	}
	return false
}

// growPlan assembles a spanning plan anchored at the given cloud: the
// anchor takes as many workers as it can host, then members are appended
// greedily — each step adds the cloud that maximises the partial plan's
// score — until the demand is met. ok is false when even all clouds
// together cannot host the gang. The returned plan's Members alias the
// evaluation's scratch, valid only until the next growPlan call with the
// same scratch — callers copy what they keep.
func (s *Scheduler) growPlan(j *Job, anchor string, anchorIdx, workers, cpw int, v *CloudView, ps *placeScratch) (Plan, bool) {
	take := func(idx, remaining int) int {
		n := v.free[idx] / cpw
		if n > remaining {
			n = remaining
		}
		return n
	}
	members := append(ps.growMembers[:0], Member{Cloud: anchor, Workers: take(anchorIdx, workers)})
	idxs := append(ps.growIdxs[:0], anchorIdx)
	remaining := workers - members[0].Workers
	for remaining > 0 {
		var bestExt Plan
		bestPrice := 0.0
		bestTake := 0
		// The member prefix is loop-invariant: copy it into the candidate
		// buffers once per round and rewrite only the tail slot per cloud.
		cand := append(append(ps.growCand[:0], members...), Member{})
		ps.growCand = cand[:0]
		candIdx := append(append(ps.growCandIdx[:0], idxs...), -1)
		ps.growCandIdx = candIdx[:0]
		for i := range v.Clouds {
			if planHasIdx(candIdx[:len(candIdx)-1], i) {
				continue
			}
			n := take(i, remaining)
			if n <= 0 {
				continue
			}
			cand[len(cand)-1] = Member{Cloud: v.Clouds[i].Name, Workers: n}
			candIdx[len(candIdx)-1] = i
			p := s.scorePlanIdx(j, cand, candIdx, v)
			if !p.Feasible() {
				continue
			}
			price := planPriceIdx(cand, candIdx, v, cpw)
			if bestExt.Empty() || ps.betterPlan(p, bestExt, price, bestPrice) {
				ps.growBest = append(ps.growBest[:0], cand...)
				ps.growBestIdx = append(ps.growBestIdx[:0], candIdx...)
				p.Members = ps.growBest
				bestExt, bestPrice, bestTake = p, price, n
			}
		}
		if bestExt.Empty() {
			return Plan{}, false
		}
		members = append(members[:0], bestExt.Members...)
		idxs = append(idxs[:0], ps.growBestIdx...)
		remaining -= bestTake
	}
	ps.growMembers = members
	ps.growIdxs = idxs
	return s.scorePlanIdx(j, members, idxs, v), true
}

// RandomPlacement is the locality-oblivious, single-cloud baseline: a
// uniformly random cloud among those with room for the whole gang, drawn
// from the kernel RNG (deterministic per seed: the same seed yields the
// same plan sequence). It never spans, so jobs wider than every single
// cloud stay queued — the E11 contrast case.
type RandomPlacement struct{}

// Name implements PlacementPolicy.
func (RandomPlacement) Name() string { return "random" }

// SingleCloudOnly tells the scheduler this policy never spans, enabling the
// per-cloud blocked-job watermark (frees on clouds smaller than the gang
// can never wake a job queued under it).
func (RandomPlacement) SingleCloudOnly() bool { return true }

// ProvablyUnplaceable implements fitProver: the policy only ever picks a
// single cloud with room for the whole gang, and when no cloud qualifies
// Choose returns empty before drawing from the kernel RNG — so skipping the
// call preserves the RNG stream exactly.
func (RandomPlacement) ProvablyUnplaceable(j *Job, v *CloudView) bool {
	need := j.Cores()
	for _, f := range v.free {
		if f >= need {
			return false
		}
	}
	return true
}

// Choose implements PlacementPolicy.
func (RandomPlacement) Choose(s *Scheduler, j *Job, v *CloudView) Plan {
	fitting := s.place.nameScratch[:0]
	for i := range v.Clouds {
		if v.free[i] >= j.Cores() {
			fitting = append(fitting, v.Clouds[i].Name)
		}
	}
	s.place.nameScratch = fitting
	if len(fitting) == 0 {
		return Plan{}
	}
	sort.Strings(fitting)
	return SingleCloudPlan(fitting[s.K.Rand().Intn(len(fitting))], j.workers())
}
