package sched

import "repro/internal/sim"

// The elastic policy hook: a periodic pass over running jobs that requests
// cluster grow/shrink through the backend handle (core.Federation performs
// the actual provisioning). Growth chases deadlines the way the emr service
// does, but federation-wide and fair-share-aware; shrink returns elastic
// extras to the pool once the map phase drains, so backfilled and queued
// jobs see the capacity. Grow requests are not guaranteed: the backend
// probes the capacity ledger, where outstanding backfill reservations live
// between cycles, and denies growth that would take cores a reserved gang
// start needs (growOne rolls the counters back on denial).

// elasticTick evaluates every running job once, in submission order (the
// order the former all-jobs scan produced). The running list is copied to
// scratch first so backend callbacks that complete a job mid-pass cannot
// disturb the iteration.
func (s *Scheduler) elasticTick() {
	t0 := s.m.clock()
	defer func() {
		if d := s.m.clock() - t0; d > 0 {
			s.m.phaseElastic.Observe(float64(d) * 1e-9)
		}
	}()
	// Reservation aging is clock-driven: a quiet system (no completions, no
	// submissions) runs no cycles, so a slipping reservation would never be
	// audited. The elastic ticker doubles as that audit clock.
	if s.cfg.maxSlips() > 0 && s.resv != nil {
		s.kick()
	}
	s.runScratch = append(s.runScratch[:0], s.running...)
	// Pool-parallel path: evaluation fans out per running job, mutations
	// stay on a sequential commit walk in the same order — byte-identical
	// decisions (see elasticPar).
	if s.pool != nil && len(s.runScratch) >= parallelElasticMin {
		s.elasticPar()
		return
	}
	for _, j := range s.runScratch {
		if j.State != Running || j.handle == nil {
			continue
		}
		// Forced-preempt path: the voluntary shrink below hands back only
		// elastic extras; a backfilled job that overran its estimate badly
		// enough while the head's reservation waits gets the whole gang
		// reclaimed through the same eviction machinery as head-driven
		// preemption. The shields it mints persist until the next cycle so
		// an interleaved grow cannot take the freed cores first. Scoped to
		// overrunners actually in the reservation's way: evicting a gang on
		// clouds the reserved plan never touches frees nothing the head can
		// use, so such jobs run on (see feedsReservation).
		if s.cfg.EnablePreemption && s.resv != nil && s.preemptible(j) &&
			float64(s.K.Now()-j.Started) > s.cfg.PreemptOverrunFactor*float64(j.estDuration) &&
			s.feedsReservation(j) {
			var price float64
			if s.tr != nil { // Shares/EntitledShares allocate; price only feeds the trace
				price = s.evictPrice(j, s.K.Now(), s.Shares(), s.EntitledShares())
			}
			s.m.forcedPreemptions.Inc()
			s.shields = append(s.shields, s.evict(j, s.resv.at, price, "forced_preempt")...)
			s.kick()
			continue
		}
		// Consolidation pass: a spanning gang whose whole worker set now
		// fits one of its member clouds migrates onto it (see relocate.go).
		if s.cfg.EnableConsolidation && j.Plan.Spanning() && !j.relocating {
			if rel, ok := j.handle.(Relocator); ok {
				if to := s.consolidationTarget(j); to != "" {
					s.startConsolidation(j, rel, to)
				}
			}
		}
		md, mt, rd, rt := j.handle.Progress()
		if j.Spec.Deadline > 0 {
			eta := s.predictETA(j, md, mt, rd, rt)
			if eta > j.Spec.Deadline-s.cfg.DeadlineMargin &&
				(j.Spec.MaxExtraWorkers == 0 || j.deadlineGrown < j.Spec.MaxExtraWorkers) {
				j.deadlineGrown++
				s.m.growRequests.Inc()
				s.growOne(j, &j.deadlineGrown)
			}
		}
		// Map phase drained: deadline-chasing extras are idle relative to
		// the reduce tail — hand them back. Spot replacements stay: they
		// restore the job's entitled size, not surplus.
		if j.deadlineGrown > 0 && !j.shrunk && mt > 0 && md >= mt && rt > 0 {
			j.shrunk = true
			if n := j.handle.Shrink(j.deadlineGrown); n > 0 {
				s.m.shrinkRequests.Inc()
				s.resize(j, -n*j.coresPerWorker())
				s.kick()
			}
		}
	}
}

// feedsReservation reports whether the running job holds cores on any cloud
// the blocked head's reserved plan needs — the scope of the forced-preempt
// pass. True with no reserved plan recorded (a conservative reservation
// without a concrete plan could start anywhere, so every overrunner is in
// scope, the pre-scoping behaviour).
func (s *Scheduler) feedsReservation(j *Job) bool {
	if s.resv == nil {
		return false
	}
	if s.resv.plan.Empty() {
		return true
	}
	for _, m := range j.Plan.Members {
		if s.resv.plan.WorkersOn(m.Cloud) > 0 {
			return true
		}
	}
	return false
}

// growOne requests one extra on-demand worker, rolling the given counter
// (and the public total) back if the backend cannot provision it; on
// success the delivered-capacity ledger records the size change.
func (s *Scheduler) growOne(j *Job, counter *int) {
	j.GrewBy++
	h := j.handle
	h.Grow(1, func(err error) {
		if err != nil {
			j.GrewBy--
			*counter--
			return
		}
		if j.State == Running {
			s.resize(j, j.coresPerWorker())
		}
	})
}

// predictETA projects completion from observed progress (elapsed divided by
// the completed-task fraction), falling back to the dispatch estimate while
// nothing has finished.
func (s *Scheduler) predictETA(j *Job, md, mt, rd, rt int) sim.Time {
	done, total := md+rd, mt+rt
	if total <= 0 || done <= 0 {
		return j.Started + j.estDuration
	}
	elapsed := s.K.Now() - j.Started
	return j.Started + sim.Time(float64(elapsed)*float64(total)/float64(done))
}
