package sched

import (
	"fmt"
	"sort"

	"repro/internal/mapreduce"
	"repro/internal/sim"
)

// SimBackend is a lightweight synthetic Backend for unit tests and
// benchmarks: clouds are bare core counters, a launched job completes after
// its estimate (scaled by cloud speed, plus streaming time for non-local
// input), and grow/shrink only move the core ledger. It exercises every
// scheduler code path without the nimbus/migration stack underneath.
type SimBackend struct {
	k      *sim.Kernel
	clouds []*SimCloud
	bw     map[[2]string]float64

	// DefaultBandwidth is returned for unset site pairs. Zero means
	// 100 MB/s.
	DefaultBandwidth float64

	// Launches counts Launch calls.
	Launches int
}

// SimCloud is one synthetic cloud.
type SimCloud struct {
	Name  string
	Total int
	Speed float64
	Price float64

	used int
}

// Free returns currently unallocated cores.
func (c *SimCloud) Free() int { return c.Total - c.used }

// NewSimBackend returns an empty synthetic backend on the kernel.
func NewSimBackend(k *sim.Kernel) *SimBackend {
	return &SimBackend{k: k, bw: make(map[[2]string]float64)}
}

// AddCloud registers a synthetic cloud.
func (b *SimBackend) AddCloud(name string, cores int, speed, price float64) *SimCloud {
	if speed <= 0 {
		speed = 1
	}
	c := &SimCloud{Name: name, Total: cores, Speed: speed, Price: price}
	b.clouds = append(b.clouds, c)
	sort.Slice(b.clouds, func(i, j int) bool { return b.clouds[i].Name < b.clouds[j].Name })
	return c
}

// SetBandwidth sets the symmetric inter-site bandwidth in bytes/sec.
func (b *SimBackend) SetBandwidth(a, c string, bw float64) {
	b.bw[[2]string{a, c}] = bw
	b.bw[[2]string{c, a}] = bw
}

// Cloud returns a synthetic cloud by name, or nil.
func (b *SimBackend) Cloud(name string) *SimCloud {
	for _, c := range b.clouds {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Kernel implements Backend.
func (b *SimBackend) Kernel() *sim.Kernel { return b.k }

// Clouds implements Backend.
func (b *SimBackend) Clouds() []CloudInfo {
	out := make([]CloudInfo, 0, len(b.clouds))
	for _, c := range b.clouds {
		out = append(out, CloudInfo{
			Name: c.Name, FreeCores: c.Free(), TotalCores: c.Total,
			Speed: c.Speed, Price: c.Price,
		})
	}
	return out
}

// Bandwidth implements Backend.
func (b *SimBackend) Bandwidth(a, c string) float64 {
	if bw, ok := b.bw[[2]string{a, c}]; ok {
		return bw
	}
	if b.DefaultBandwidth > 0 {
		return b.DefaultBandwidth
	}
	return 100 << 20
}

// SimHandle is the synthetic job handle; exported so tests can assert on
// grow/shrink traffic.
type SimHandle struct {
	b     *SimBackend
	j     *Job
	cloud *SimCloud

	started  sim.Time
	duration sim.Time
	extra    int
	finished bool

	GrowCalls   int
	ShrinkCalls int
}

// Grow implements Handle: extra workers take cores immediately (error when
// the cloud is full) and are released with the job.
func (h *SimHandle) Grow(n int, onDone func(error)) {
	h.GrowCalls++
	per := h.j.Spec.CoresPerWorker
	if per <= 0 {
		per = 1
	}
	need := n * per
	var err error
	if h.cloud.Free() >= need {
		h.cloud.used += need
		h.extra += need
	} else {
		err = fmt.Errorf("sched: %s full", h.cloud.Name)
	}
	if onDone != nil {
		h.b.k.Schedule(0, func() { onDone(err) })
	}
}

// Shrink implements Handle: releases elastic extras only.
func (h *SimHandle) Shrink(n int) int {
	h.ShrinkCalls++
	per := h.j.Spec.CoresPerWorker
	if per <= 0 {
		per = 1
	}
	give := n * per
	if give > h.extra {
		give = h.extra
	}
	h.extra -= give
	h.cloud.used -= give
	return give / per
}

// Progress implements Handle with a two-phase linear model: maps complete
// over the first 70% of the runtime, reduces over the tail (so the elastic
// shrink path sees a drained map phase before completion).
func (h *SimHandle) Progress() (int, int, int, int) {
	mt := h.j.Spec.MR.NumMaps
	if mt <= 0 {
		mt = 100
	}
	rt := h.j.Spec.MR.NumReduces
	frac := 1.0
	if h.duration > 0 {
		frac = float64(h.b.k.Now()-h.started) / float64(h.duration)
	}
	if frac > 1 {
		frac = 1
	}
	const mapPhase = 0.7
	mfrac := frac / mapPhase
	if mfrac > 1 {
		mfrac = 1
	}
	md := int(mfrac * float64(mt))
	rd := 0
	if frac > mapPhase {
		rd = int((frac - mapPhase) / (1 - mapPhase) * float64(rt))
	}
	return md, mt, rd, rt
}

// Launch implements Backend.
func (b *SimBackend) Launch(j *Job, cloud string, onDone func(Outcome)) (Handle, error) {
	c := b.Cloud(cloud)
	if c == nil {
		return nil, fmt.Errorf("sched: unknown cloud %q", cloud)
	}
	need := j.Cores()
	if c.Free() < need {
		return nil, fmt.Errorf("sched: %s has %d free cores, job needs %d", cloud, c.Free(), need)
	}
	b.Launches++
	c.used += need
	secs := j.estimate() / c.Speed
	if j.Spec.InputSite != "" && j.Spec.InputSite != cloud && j.Spec.InputBytes > 0 {
		secs += float64(j.Spec.InputBytes) / b.Bandwidth(j.Spec.InputSite, cloud)
	}
	h := &SimHandle{b: b, j: j, cloud: c, started: b.k.Now(), duration: sim.FromSeconds(secs)}
	b.k.Schedule(h.duration, func() {
		if h.finished {
			return
		}
		h.finished = true
		c.used -= need + h.extra
		h.extra = 0
		onDone(Outcome{Result: mapreduce.Result{Job: j.Spec.Name, Makespan: h.duration}})
	})
	return h, nil
}
