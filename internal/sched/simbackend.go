package sched

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/capacity"
	"repro/internal/mapreduce"
	"repro/internal/sim"
)

// SimBackend is a lightweight synthetic Backend for unit tests and
// benchmarks: clouds are bare capacity-ledger accounts, a launched job
// completes after its estimate (scaled by the plan's slowest member, plus
// streaming time for uncovered input and cross-site shuffle time for
// spanning plans), and grow/shrink only move ledger leases. It exercises
// every scheduler code path — including gang placement and
// reservation-aware growth — without the nimbus/migration stack
// underneath. All core accounting flows through the same internal/capacity
// ledger the federation backend uses: running jobs hold leases with
// estimated ends, so probes at future instants see their hand-back.
type SimBackend struct {
	k      *sim.Kernel
	ledger *capacity.Ledger
	clouds []*SimCloud
	bw     map[[2]string]float64

	// DefaultBandwidth is returned for unset site pairs. Zero means
	// 100 MB/s.
	DefaultBandwidth float64

	// Overrun optionally scales a launched job's actual runtime relative to
	// its plan-level estimate (nil or <=0 returns: estimates are exact).
	// The job's ledger lease keeps its *estimated* end — exactly the
	// optimistic-estimate situation a real federation produces, where
	// releases go overdue, reservations slip, and preemption earns its
	// keep.
	Overrun func(j *Job) float64

	// Launches counts Launch calls.
	Launches int

	// failNext maps cloud -> remaining injected transient launch failures:
	// while positive, a Launch whose plan touches the cloud consumes one
	// strike and fails with ErrTransientLaunch (see FailNextLaunches).
	failNext map[string]int

	// Launch-time estimate view, rebuilt only when the cloud set changes:
	// planEstimateSeconds reads nothing but static attributes (name, speed)
	// from it, so the free cores it carries are allowed to go stale.
	view        CloudView
	snapScratch []CloudInfo
	viewClouds  int // cloud count the view was built against
}

// SimCloud is one synthetic cloud. Resize mid-run with SetTotal (tests
// shrink clouds under queued jobs). The ledger account is the only record
// of capacity — there is no shadow total to desync.
type SimCloud struct {
	Name  string
	Speed float64
	Price float64

	b *SimBackend
}

// Total returns the cloud's capacity, straight from the ledger account.
func (c *SimCloud) Total() int { return c.b.ledger.Total(c.Name) }

// SetTotal resizes the cloud's ledger account.
func (c *SimCloud) SetTotal(cores int) { c.b.ledger.SetTotal(c.Name, cores) }

// Free returns currently unallocated cores.
func (c *SimCloud) Free() int { return c.b.ledger.Free(c.Name) }

// NewSimBackend returns an empty synthetic backend on the kernel.
func NewSimBackend(k *sim.Kernel) *SimBackend {
	return &SimBackend{k: k, ledger: capacity.New(), bw: make(map[[2]string]float64)}
}

// AddCloud registers a synthetic cloud.
func (b *SimBackend) AddCloud(name string, cores int, speed, price float64) *SimCloud {
	if speed <= 0 {
		speed = 1
	}
	c := &SimCloud{Name: name, Speed: speed, Price: price, b: b}
	b.clouds = append(b.clouds, c)
	sort.Slice(b.clouds, func(i, j int) bool { return b.clouds[i].Name < b.clouds[j].Name })
	b.ledger.AddCloud(name, cores)
	return c
}

// SetBandwidth sets the symmetric inter-site bandwidth in bytes/sec.
func (b *SimBackend) SetBandwidth(a, c string, bw float64) {
	b.bw[[2]string{a, c}] = bw
	b.bw[[2]string{c, a}] = bw
}

// UseLogNormalOverrun installs a log-normal estimate-error model: each
// launched job's actual runtime is its estimate × exp(mu + sigma·N(0,1)).
// With mu=0 the median job matches its estimate while the right tail
// overruns — the optimistic-estimate regime that makes releases go overdue
// and reservations slip. The generator is seeded once from the kernel's RNG
// and then draws from its own stream, so enabling it shifts the kernel
// stream by exactly one draw and same-seed runs stay bit-identical.
func (b *SimBackend) UseLogNormalOverrun(mu, sigma float64) {
	rng := rand.New(rand.NewSource(b.k.Rand().Int63()))
	b.Overrun = func(*Job) float64 {
		return math.Exp(mu + sigma*rng.NormFloat64())
	}
}

// FailCloud crashes a synthetic cloud: the ledger's outage transition closes
// every lease and committed core there in one generation-bumped step and
// refuses new admissions until RestoreCloud. Returns the cores lost. The
// caller (replay driver, test) follows up with a Notify(EventCloudFailed) so
// the scheduler requeues the affected gangs — the ledger transition must come
// first, which is why the backend does not notify itself.
func (b *SimBackend) FailCloud(name string) (int, error) {
	return b.ledger.FailCloud(name)
}

// RestoreCloud ends a synthetic cloud's outage.
func (b *SimBackend) RestoreCloud(name string) error {
	return b.ledger.RestoreCloud(name)
}

// FailNextLaunches makes the next n Launch calls whose plan touches the
// cloud fail with ErrTransientLaunch before acquiring anything — the
// injected deploy fault that fuels the scheduler's retry/backoff path.
func (b *SimBackend) FailNextLaunches(cloud string, n int) {
	if b.failNext == nil {
		b.failNext = make(map[string]int)
	}
	b.failNext[cloud] += n
}

// Cloud returns a synthetic cloud by name, or nil.
func (b *SimBackend) Cloud(name string) *SimCloud {
	for _, c := range b.clouds {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Kernel implements Backend.
func (b *SimBackend) Kernel() *sim.Kernel { return b.k }

// Ledger implements Backend.
func (b *SimBackend) Ledger() *capacity.Ledger { return b.ledger }

// Clouds implements Backend.
func (b *SimBackend) Clouds() []CloudInfo {
	return b.AppendClouds(make([]CloudInfo, 0, len(b.clouds)))
}

// AppendClouds implements the scheduler's allocation-free snapshot path.
// The free/total reads come from the ledger's bulk walk — one lock
// round-trip per snapshot instead of two per cloud. b.clouds and the ledger
// keep name-sorted cloud sets populated in pairs by AddCloud, so the two
// walk in lockstep.
func (b *SimBackend) AppendClouds(dst []CloudInfo) []CloudInfo {
	i := 0
	b.ledger.FreeTotals(func(name string, free, total int) {
		for i < len(b.clouds) && b.clouds[i].Name != name {
			i++
		}
		if i == len(b.clouds) {
			return
		}
		c := b.clouds[i]
		dst = append(dst, CloudInfo{
			Name: name, FreeCores: free, TotalCores: total,
			Speed: c.Speed, Price: c.Price,
		})
	})
	return dst
}

// Bandwidth implements Backend.
func (b *SimBackend) Bandwidth(a, c string) float64 {
	if bw, ok := b.bw[[2]string{a, c}]; ok {
		return bw
	}
	if b.DefaultBandwidth > 0 {
		return b.DefaultBandwidth
	}
	return 100 << 20
}

// SimHandle is the synthetic job handle; exported so tests can assert on
// grow/shrink traffic.
type SimHandle struct {
	b    *SimBackend
	j    *Job
	plan Plan
	// base holds the plan's member-cloud leases (estimated ends at the
	// job's ETA); extras lists elastic-growth leases in grow order (shrink
	// releases from the end). baseBuf inlines base's storage for the
	// common narrow plan so Launch allocates no lease slice.
	base     []*capacity.Lease
	baseBuf  [4]*capacity.Lease
	extras   []*capacity.Lease
	started  sim.Time
	duration sim.Time
	finished bool
	onDone   func(*Job, Outcome)

	GrowCalls   int
	ShrinkCalls int
}

// Grow implements Handle: each extra worker takes cores immediately,
// preferring the plan's member clouds in order and only then spilling onto
// a new cloud (chosen by most probe-able headroom, then name) — the gang
// extends in place before gaining a member. Every candidate is vetted with
// a ledger Probe, so growth is denied cores an outstanding backfill
// reservation will need, even when they are free right now. Errors when no
// cloud passes the probe.
func (h *SimHandle) Grow(n int, onDone func(error)) {
	h.GrowCalls++
	per := h.j.coresPerWorker()
	var err error
	var added []*capacity.Lease
	for i := 0; i < n; i++ {
		cloud := h.growTarget(per)
		if cloud == "" {
			err = fmt.Errorf("sched: no cloud can host another worker")
			break
		}
		le, aerr := h.b.ledger.Acquire(cloud, per)
		if aerr != nil {
			err = aerr
			break
		}
		added = append(added, le)
	}
	if err != nil { // all-or-nothing, as before
		for _, le := range added {
			le.Release()
		}
	} else {
		h.extras = append(h.extras, added...)
	}
	if onDone != nil {
		h.b.k.Schedule(0, func() { onDone(err) })
	}
}

// growTarget picks the cloud for one extra worker via the ledger's shared
// grow-target policy (the same one the federation backend uses): members
// first in plan order, then the non-member with the most
// reservation-aware headroom, every candidate Probe-vetted. alloc is nil
// because Grow acquires each worker's lease before picking the next.
func (h *SimHandle) growTarget(per int) string {
	names := make([]string, 0, len(h.b.clouds))
	for _, c := range h.b.clouds { // sorted by name
		names = append(names, c.Name)
	}
	members, spill := h.plan.GrowCandidates(names)
	return h.b.ledger.PickGrowTarget(members, spill, per, h.b.k.Now(), nil)
}

// Preemptible implements Preemptor: a synthetic job can always be torn
// down while it runs (capacity is plain ledger leases).
func (h *SimHandle) Preemptible() bool { return !h.finished }

// Preempt implements Preemptor: every lease the job holds converts to a
// beneficiary reservation at `at` through the ledger's atomic eviction
// transition, and the scheduled completion is disarmed — the job delivers
// no Outcome (the scheduler requeues it instead).
func (h *SimHandle) Preempt(at sim.Time) []*capacity.Lease {
	if h.finished {
		return nil
	}
	h.finished = true
	var shields []*capacity.Lease
	for _, le := range h.base {
		if sh, _ := h.b.ledger.Evict(le, at); sh != nil {
			shields = append(shields, sh)
		}
	}
	for _, le := range h.extras {
		if sh, _ := h.b.ledger.Evict(le, at); sh != nil {
			shields = append(shields, sh)
		}
	}
	h.extras = nil
	return shields
}

// Relocate implements Relocator: the job's base leases on `from` retarget
// to `to` through the ledger's atomic move (estimated ends carry over), and
// the handle's plan copy follows — mirroring what the federation backend
// does with live VM migration, so sched-layer consolidation tests need no
// nimbus/migration stack underneath.
func (h *SimHandle) Relocate(from, to string, workers int, onDone func(error)) {
	per := h.j.coresPerWorker()
	cores := workers * per
	var err error
	var moved []*capacity.Lease
	for i := 0; i < len(h.base) && cores > 0 && err == nil; i++ {
		le := h.base[i]
		if !le.Active() || le.Cloud != from {
			continue
		}
		take := cores
		if take > le.Cores {
			take = le.Cores
		}
		var nl *capacity.Lease
		nl, err = le.Retarget(to, take)
		if err != nil {
			break
		}
		moved = append(moved, nl)
		cores -= take
	}
	if err == nil && cores > 0 {
		err = fmt.Errorf("sched: job holds fewer than %d workers on %s", workers, from)
	}
	if err != nil {
		// All-or-nothing: a half-moved gang would leave the plan lying
		// about where its leases live — retarget the moved slices back.
		for _, nl := range moved {
			if back, rerr := nl.Retarget(from, nl.Cores); rerr == nil {
				h.base = append(h.base, back)
			} else {
				h.base = append(h.base, nl) // unreachable: the cores just left
			}
		}
	} else {
		h.base = append(h.base, moved...)
		h.plan = h.plan.MoveWorkers(from, to, workers)
	}
	if onDone != nil {
		h.b.k.Schedule(0, func() { onDone(err) })
	}
}

// Shrink implements Handle: releases elastic extras only, newest first.
func (h *SimHandle) Shrink(n int) int {
	h.ShrinkCalls++
	given := 0
	for given < n && len(h.extras) > 0 {
		le := h.extras[len(h.extras)-1]
		h.extras = h.extras[:len(h.extras)-1]
		le.Release()
		given++
	}
	return given
}

// Progress implements Handle with a two-phase linear model: maps complete
// over the first 70% of the runtime, reduces over the tail (so the elastic
// shrink path sees a drained map phase before completion).
func (h *SimHandle) Progress() (int, int, int, int) {
	mt := h.j.Spec.MR.NumMaps
	if mt <= 0 {
		mt = 100
	}
	rt := h.j.Spec.MR.NumReduces
	frac := 1.0
	if h.duration > 0 {
		frac = float64(h.b.k.Now()-h.started) / float64(h.duration)
	}
	if frac > 1 {
		frac = 1
	}
	const mapPhase = 0.7
	mfrac := frac / mapPhase
	if mfrac > 1 {
		mfrac = 1
	}
	md := int(mfrac * float64(mt))
	rd := 0
	if frac > mapPhase {
		rd = int((frac - mapPhase) / (1 - mapPhase) * float64(rt))
	}
	return md, mt, rd, rt
}

// rollback releases the base leases acquired so far by a failing Launch.
func (h *SimHandle) rollback() {
	for _, prev := range h.base {
		prev.Release()
	}
}

// Launch implements Backend: acquire a lease on every member cloud
// (estimated end at the job's ETA, so future probes see the hand-back),
// run for the plan-level estimate (slowest member speed + uncovered-input
// streaming + cross-site shuffle), release everything at completion.
func (b *SimBackend) Launch(j *Job, plan Plan, onDone func(*Job, Outcome)) (Handle, error) {
	if len(b.failNext) > 0 {
		for _, m := range plan.Members {
			if b.failNext[m.Cloud] > 0 {
				b.failNext[m.Cloud]--
				if b.failNext[m.Cloud] == 0 {
					delete(b.failNext, m.Cloud)
				}
				return nil, fmt.Errorf("sched: deploy fault on %s: %w", m.Cloud, ErrTransientLaunch)
			}
		}
	}
	per := j.coresPerWorker()
	if b.viewClouds != len(b.clouds) {
		b.snapScratch = b.AppendClouds(b.snapScratch[:0])
		b.view.Reset(b.snapScratch)
		b.viewClouds = len(b.clouds)
	}
	secs := planEstimateSeconds(b, j, plan, &b.view)
	h := &SimHandle{b: b, j: j, plan: plan, started: b.k.Now(), duration: sim.FromSeconds(secs)}
	if n := len(plan.Members); n <= len(h.baseBuf) {
		h.base = h.baseBuf[:0]
	} else {
		h.base = make([]*capacity.Lease, 0, n)
	}
	eta := h.started + h.duration // the estimate, even when the run overruns
	if b.Overrun != nil {
		if f := b.Overrun(j); f > 0 {
			h.duration = sim.FromSeconds(secs * f)
		}
	}
	for _, m := range plan.Members {
		if b.Cloud(m.Cloud) == nil {
			h.rollback()
			return nil, fmt.Errorf("sched: unknown cloud %q", m.Cloud)
		}
		need := m.Workers * per
		le, err := b.ledger.AcquireUntil(m.Cloud, need, eta)
		if err != nil {
			h.rollback()
			return nil, fmt.Errorf("sched: %s has %d free cores, plan slice needs %d",
				m.Cloud, b.ledger.Free(m.Cloud), need)
		}
		h.base = append(h.base, le)
	}
	b.Launches++
	h.onDone = onDone
	b.k.ScheduleCall(h.duration, h)
	return h, nil
}

// Fire implements sim.Callee: the run's scheduled completion. Release every
// lease and deliver the outcome. Scheduling the handle itself avoids the
// per-launch completion closure the hot path used to allocate.
func (h *SimHandle) Fire() {
	if h.finished {
		return
	}
	h.finished = true
	for _, le := range h.base {
		le.Release()
	}
	for _, le := range h.extras {
		le.Release()
	}
	h.extras = nil
	h.onDone(h.j, Outcome{Result: mapreduce.Result{Job: h.j.Spec.Name, Makespan: h.duration}})
}
