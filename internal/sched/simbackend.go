package sched

import (
	"fmt"
	"sort"

	"repro/internal/mapreduce"
	"repro/internal/sim"
)

// SimBackend is a lightweight synthetic Backend for unit tests and
// benchmarks: clouds are bare core counters, a launched job completes after
// its estimate (scaled by the plan's slowest member, plus streaming time
// for uncovered input and cross-site shuffle time for spanning plans), and
// grow/shrink only move the core ledger. It exercises every scheduler code
// path — including gang placement — without the nimbus/migration stack
// underneath.
type SimBackend struct {
	k      *sim.Kernel
	clouds []*SimCloud
	bw     map[[2]string]float64

	// DefaultBandwidth is returned for unset site pairs. Zero means
	// 100 MB/s.
	DefaultBandwidth float64

	// Launches counts Launch calls.
	Launches int
}

// SimCloud is one synthetic cloud.
type SimCloud struct {
	Name  string
	Total int
	Speed float64
	Price float64

	used int
}

// Free returns currently unallocated cores.
func (c *SimCloud) Free() int { return c.Total - c.used }

// NewSimBackend returns an empty synthetic backend on the kernel.
func NewSimBackend(k *sim.Kernel) *SimBackend {
	return &SimBackend{k: k, bw: make(map[[2]string]float64)}
}

// AddCloud registers a synthetic cloud.
func (b *SimBackend) AddCloud(name string, cores int, speed, price float64) *SimCloud {
	if speed <= 0 {
		speed = 1
	}
	c := &SimCloud{Name: name, Total: cores, Speed: speed, Price: price}
	b.clouds = append(b.clouds, c)
	sort.Slice(b.clouds, func(i, j int) bool { return b.clouds[i].Name < b.clouds[j].Name })
	return c
}

// SetBandwidth sets the symmetric inter-site bandwidth in bytes/sec.
func (b *SimBackend) SetBandwidth(a, c string, bw float64) {
	b.bw[[2]string{a, c}] = bw
	b.bw[[2]string{c, a}] = bw
}

// Cloud returns a synthetic cloud by name, or nil.
func (b *SimBackend) Cloud(name string) *SimCloud {
	for _, c := range b.clouds {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Kernel implements Backend.
func (b *SimBackend) Kernel() *sim.Kernel { return b.k }

// Clouds implements Backend.
func (b *SimBackend) Clouds() []CloudInfo {
	out := make([]CloudInfo, 0, len(b.clouds))
	for _, c := range b.clouds {
		out = append(out, CloudInfo{
			Name: c.Name, FreeCores: c.Free(), TotalCores: c.Total,
			Speed: c.Speed, Price: c.Price,
		})
	}
	return out
}

// Bandwidth implements Backend.
func (b *SimBackend) Bandwidth(a, c string) float64 {
	if bw, ok := b.bw[[2]string{a, c}]; ok {
		return bw
	}
	if b.DefaultBandwidth > 0 {
		return b.DefaultBandwidth
	}
	return 100 << 20
}

// SimHandle is the synthetic job handle; exported so tests can assert on
// grow/shrink traffic.
type SimHandle struct {
	b    *SimBackend
	j    *Job
	plan Plan
	// base holds the plan's debited cores per member cloud; extraOn lists
	// the clouds hosting elastic extras, one entry per extra worker, in
	// grow order (shrink releases from the end).
	base     map[*SimCloud]int
	extraOn  []*SimCloud
	started  sim.Time
	duration sim.Time
	finished bool

	GrowCalls   int
	ShrinkCalls int
}

// Grow implements Handle: each extra worker takes cores immediately,
// preferring the plan's member clouds in order and only then spilling onto
// a new cloud (chosen by most free cores, then name) — the gang extends in
// place before gaining a member. Errors when no cloud has room.
func (h *SimHandle) Grow(n int, onDone func(error)) {
	h.GrowCalls++
	per := h.j.coresPerWorker()
	var err error
	placed := 0
	for i := 0; i < n; i++ {
		c := h.growTarget(per)
		if c == nil {
			err = fmt.Errorf("sched: no cloud can host another worker")
			break
		}
		c.used += per
		h.extraOn = append(h.extraOn, c)
		placed++
	}
	if err != nil { // all-or-nothing, as before
		for ; placed > 0; placed-- {
			c := h.extraOn[len(h.extraOn)-1]
			h.extraOn = h.extraOn[:len(h.extraOn)-1]
			c.used -= per
		}
	}
	if onDone != nil {
		h.b.k.Schedule(0, func() { onDone(err) })
	}
}

// growTarget picks the cloud for one extra worker: members first (plan
// order), then the non-member with the most free cores (ties by name).
func (h *SimHandle) growTarget(per int) *SimCloud {
	for _, m := range h.plan.Members {
		if c := h.b.Cloud(m.Cloud); c != nil && c.Free() >= per {
			return c
		}
	}
	var best *SimCloud
	for _, c := range h.b.clouds {
		if h.plan.WorkersOn(c.Name) > 0 || c.Free() < per {
			continue
		}
		if best == nil || c.Free() > best.Free() || (c.Free() == best.Free() && c.Name < best.Name) {
			best = c
		}
	}
	return best
}

// Shrink implements Handle: releases elastic extras only, newest first.
func (h *SimHandle) Shrink(n int) int {
	h.ShrinkCalls++
	per := h.j.coresPerWorker()
	given := 0
	for given < n && len(h.extraOn) > 0 {
		c := h.extraOn[len(h.extraOn)-1]
		h.extraOn = h.extraOn[:len(h.extraOn)-1]
		c.used -= per
		given++
	}
	return given
}

// Progress implements Handle with a two-phase linear model: maps complete
// over the first 70% of the runtime, reduces over the tail (so the elastic
// shrink path sees a drained map phase before completion).
func (h *SimHandle) Progress() (int, int, int, int) {
	mt := h.j.Spec.MR.NumMaps
	if mt <= 0 {
		mt = 100
	}
	rt := h.j.Spec.MR.NumReduces
	frac := 1.0
	if h.duration > 0 {
		frac = float64(h.b.k.Now()-h.started) / float64(h.duration)
	}
	if frac > 1 {
		frac = 1
	}
	const mapPhase = 0.7
	mfrac := frac / mapPhase
	if mfrac > 1 {
		mfrac = 1
	}
	md := int(mfrac * float64(mt))
	rd := 0
	if frac > mapPhase {
		rd = int((frac - mapPhase) / (1 - mapPhase) * float64(rt))
	}
	return md, mt, rd, rt
}

// Launch implements Backend: debit every member cloud, run for the
// plan-level estimate (slowest member speed + uncovered-input streaming +
// cross-site shuffle), release everything at completion.
func (b *SimBackend) Launch(j *Job, plan Plan, onDone func(Outcome)) (Handle, error) {
	per := j.coresPerWorker()
	base := make(map[*SimCloud]int, len(plan.Members))
	for _, m := range plan.Members {
		c := b.Cloud(m.Cloud)
		if c == nil {
			return nil, fmt.Errorf("sched: unknown cloud %q", m.Cloud)
		}
		need := m.Workers * per
		if c.Free() < need {
			return nil, fmt.Errorf("sched: %s has %d free cores, plan slice needs %d", m.Cloud, c.Free(), need)
		}
		base[c] += need
	}
	b.Launches++
	for c, need := range base {
		c.used += need
	}
	secs := planEstimateSeconds(b, j, plan, b.Clouds())
	h := &SimHandle{b: b, j: j, plan: plan, base: base, started: b.k.Now(), duration: sim.FromSeconds(secs)}
	b.k.Schedule(h.duration, func() {
		if h.finished {
			return
		}
		h.finished = true
		for c, need := range h.base {
			c.used -= need
		}
		for _, c := range h.extraOn {
			c.used -= per
		}
		h.extraOn = nil
		onDone(Outcome{Result: mapreduce.Result{Job: j.Spec.Name, Makespan: h.duration}})
	})
	return h, nil
}
