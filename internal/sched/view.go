package sched

// CloudView is the scheduler's per-cycle indexed view of backend capacity:
// the cloud snapshot in backend order, a name→position index, and the
// working free-core vector the cycle decrements as it dispatches. One view
// is built per scheduling cycle and shared by every placement score, price
// lookup, and runtime estimate in that cycle — before it existed, ScorePlan
// rebuilt a name→info map per candidate plan and planPrice /
// planEstimateSeconds ran O(members × clouds) nested scans.
//
// The scheduler owns its views and reuses their storage across cycles; the
// name index is rebuilt only when the cloud list changes shape.
type CloudView struct {
	// Clouds is the backend capacity snapshot, in backend order. FreeCores
	// is the snapshot value; the live working vector is behind Free/FreeAt
	// and moves as the cycle dispatches.
	Clouds []CloudInfo

	free  []int
	pos   map[string]int
	names []string // index cache key: pos is valid for exactly these names
}

// Reset points the view at a fresh snapshot and reloads the working free
// vector from it. The name index is reused when the cloud names are
// unchanged (the common case).
func (v *CloudView) Reset(snap []CloudInfo) {
	v.Clouds = snap
	v.free = v.free[:0]
	same := len(v.names) == len(snap)
	for i, c := range snap {
		v.free = append(v.free, c.FreeCores)
		if same && v.names[i] != c.Name {
			same = false
		}
	}
	if same {
		return
	}
	v.names = v.names[:0]
	if v.pos == nil {
		v.pos = make(map[string]int, len(snap))
	} else {
		clear(v.pos)
	}
	for i, c := range snap {
		v.names = append(v.names, c.Name)
		v.pos[c.Name] = i
	}
}

// shareIndex makes v an alias of src's snapshot and name index with its own
// copy of the working free vector — reserve() probes hypothetical future
// availability without disturbing the cycle's vector.
func (v *CloudView) shareIndex(src *CloudView) {
	v.Clouds, v.pos, v.names = src.Clouds, src.pos, src.names
	v.free = append(v.free[:0], src.free...)
}

// posSmallMax is the federation size up to which Pos scans the name slice
// instead of hashing into the map: snapshot names alias the same string
// headers cycle after cycle, so the scan usually resolves on pointer-equal
// comparisons and beats the hash for small cloud counts.
const posSmallMax = 8

// Pos returns the cloud's position in Clouds, or -1 when unknown.
func (v *CloudView) Pos(name string) int {
	if len(v.names) <= posSmallMax {
		for i, n := range v.names {
			if n == name {
				return i
			}
		}
		return -1
	}
	if i, ok := v.pos[name]; ok {
		return i
	}
	return -1
}

// Free returns the working free cores for a cloud (0 when unknown).
func (v *CloudView) Free(name string) int {
	if i := v.Pos(name); i >= 0 {
		return v.free[i]
	}
	return 0
}

// FreeAt returns the working free cores for the cloud at position i.
func (v *CloudView) FreeAt(i int) int { return v.free[i] }

// take decrements the working free vector for a dispatched plan slice.
func (v *CloudView) take(name string, cores int) {
	if i := v.Pos(name); i >= 0 {
		v.free[i] -= cores
	}
}

// viewOf wraps an ad-hoc (clouds, free-map) pair as a CloudView — the
// compatibility path for the exported ScorePlan signature tests use;
// the scheduler's own cycles build views with Reset instead.
func viewOf(clouds []CloudInfo, free map[string]int) CloudView {
	var v CloudView
	v.Reset(clouds)
	for i, c := range clouds {
		v.free[i] = free[c.Name]
	}
	return v
}
