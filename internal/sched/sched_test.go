package sched

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/netmon"
	"repro/internal/sim"
)

// saturatedBackend: one cloud, 8 cores — room for exactly two 4-core jobs.
func saturatedBackend(k *sim.Kernel) *SimBackend {
	b := NewSimBackend(k)
	b.AddCloud("c0", 8, 1, 0.10)
	return b
}

func submitN(t *testing.T, s *Scheduler, tenant string, n int, spec JobSpec) []string {
	t.Helper()
	spec.Tenant = tenant
	ids := make([]string, n)
	for i := range ids {
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %s: %v", tenant, err)
		}
		ids[i] = id
	}
	return ids
}

// TestFairShareOrdering checks weighted arbitration: under saturation a
// weight-3 tenant receives ~3x the core-seconds of a weight-1 tenant, and
// delivered shares converge within 10% of entitlement.
func TestFairShareOrdering(t *testing.T) {
	k := sim.NewKernel(1)
	b := saturatedBackend(k)
	s := New(b, Config{})
	s.AddTenant("gold", 3)
	s.AddTenant("silver", 1)
	spec := JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 100}
	submitN(t, s, "gold", 40, spec)
	submitN(t, s, "silver", 40, spec)
	// Run while both tenants still have backlog, then measure.
	k.RunUntil(1500 * sim.Second)
	if s.TenantQueueLen("gold") == 0 || s.TenantQueueLen("silver") == 0 {
		t.Fatal("backlog drained; shares not measured under contention")
	}
	shares := s.Shares()
	entitled := s.EntitledShares()
	for _, tenant := range []string{"gold", "silver"} {
		rel := math.Abs(shares[tenant]-entitled[tenant]) / entitled[tenant]
		if rel > 0.10 {
			t.Errorf("%s share %.3f vs entitled %.3f (relative error %.1f%%)",
				tenant, shares[tenant], entitled[tenant], rel*100)
		}
	}
}

// TestFairShareDispatchOrder: with equal usage, the neediest (per weight)
// tenant is served first and charging interleaves dispatches 3:1.
func TestFairShareDispatchOrder(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 16, 1, 0.10) // four 4-core jobs at once
	s := New(b, Config{})
	s.AddTenant("gold", 3)
	s.AddTenant("silver", 1)
	spec := JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 100}
	gold := submitN(t, s, "gold", 4, spec)
	silver := submitN(t, s, "silver", 4, spec)
	k.RunUntil(1 * sim.Second)
	running := func(ids []string) int {
		n := 0
		for _, id := range ids {
			if ji, _ := s.Poll(id); ji.State == Running {
				n++
			}
		}
		return n
	}
	if g, sv := running(gold), running(silver); g != 3 || sv != 1 {
		t.Fatalf("first wave: gold=%d silver=%d running, want 3/1", g, sv)
	}
}

// TestBackfill: a blocked wide job reserves future capacity; a short narrow
// job slides past it without delaying the reserved start.
func TestBackfill(t *testing.T) {
	k := sim.NewKernel(1)
	b := saturatedBackend(k)
	s := New(b, Config{})
	s.AddTenant("a", 1)
	// Occupy 6 of 8 cores until t=200.
	hold := submitN(t, s, "a", 1, JobSpec{Workers: 3, CoresPerWorker: 2, EstimateSeconds: 200})[0]
	// Head job needs 8 cores: blocked until the holder finishes.
	wide := submitN(t, s, "a", 1, JobSpec{Workers: 4, CoresPerWorker: 2, EstimateSeconds: 100})[0]
	// Short 2-core job fits the leftover cores and finishes well before
	// t=200: backfill-eligible.
	short := submitN(t, s, "a", 1, JobSpec{Workers: 1, CoresPerWorker: 2, EstimateSeconds: 50})[0]
	k.Run()
	hi, _ := s.Poll(hold)
	wi, _ := s.Poll(wide)
	si, _ := s.Poll(short)
	if si.Started >= wi.Started {
		t.Fatalf("short job did not backfill: short started %v, wide %v", si.Started, wi.Started)
	}
	if !si.Backfilled {
		t.Error("short job not flagged as backfilled")
	}
	if wi.Started != hi.Finished {
		t.Errorf("wide job delayed: started %v, holder finished %v", wi.Started, hi.Finished)
	}
	if s.Backfills() != 1 {
		t.Errorf("Backfills = %d, want 1", s.Backfills())
	}
}

// TestBackfillRespectsReservation: a backfill candidate that would still
// hold the reserved cores at the reservation time must wait.
func TestBackfillRespectsReservation(t *testing.T) {
	k := sim.NewKernel(1)
	b := saturatedBackend(k)
	s := New(b, Config{})
	s.AddTenant("a", 1)
	submitN(t, s, "a", 1, JobSpec{Workers: 3, CoresPerWorker: 2, EstimateSeconds: 200})
	wide := submitN(t, s, "a", 1, JobSpec{Workers: 4, CoresPerWorker: 2, EstimateSeconds: 100})[0]
	// Long 2-core job: fits now but would still run at t=200 on the only
	// cloud, delaying the reservation — must not start before the wide job.
	long := submitN(t, s, "a", 1, JobSpec{Workers: 1, CoresPerWorker: 2, EstimateSeconds: 500})[0]
	k.Run()
	wi, _ := s.Poll(wide)
	li, _ := s.Poll(long)
	if li.Started < wi.Started {
		t.Fatalf("long job jumped the reservation: long %v, wide %v", li.Started, wi.Started)
	}
}

// TestBackfillDisabled: strict FIFO keeps the short job behind the blocked
// head.
func TestBackfillDisabled(t *testing.T) {
	k := sim.NewKernel(1)
	b := saturatedBackend(k)
	s := New(b, Config{DisableBackfill: true})
	s.AddTenant("a", 1)
	submitN(t, s, "a", 1, JobSpec{Workers: 3, CoresPerWorker: 2, EstimateSeconds: 200})
	wide := submitN(t, s, "a", 1, JobSpec{Workers: 4, CoresPerWorker: 2, EstimateSeconds: 100})[0]
	short := submitN(t, s, "a", 1, JobSpec{Workers: 1, CoresPerWorker: 2, EstimateSeconds: 50})[0]
	k.Run()
	wi, _ := s.Poll(wide)
	si, _ := s.Poll(short)
	if si.Started < wi.Started {
		t.Fatalf("backfill disabled but short (%v) passed wide (%v)", si.Started, wi.Started)
	}
	if s.Backfills() != 0 {
		t.Errorf("Backfills = %d, want 0", s.Backfills())
	}
}

// TestLocalityScoring: placement prefers the input-holding cloud, then the
// better-connected one once the local cloud is full.
func TestLocalityScoring(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("data", 4, 1, 0.10)
	b.AddCloud("far", 64, 1, 0.05)  // cheap, roomy, thin pipe
	b.AddCloud("near", 64, 1, 0.20) // pricey, roomy, fat pipe
	b.SetBandwidth("data", "far", 10<<20)
	b.SetBandwidth("data", "near", 100<<20)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	spec := JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 100,
		InputSite: "data", InputBytes: 1 << 30}
	first := submitN(t, s, "t", 1, spec)[0]
	second := submitN(t, s, "t", 1, spec)[0]
	k.RunUntil(1 * sim.Second)
	fi, _ := s.Poll(first)
	si, _ := s.Poll(second)
	if fi.Cloud != "data" {
		t.Errorf("first job placed on %s, want the data-holding cloud", fi.Cloud)
	}
	if si.Cloud != "near" {
		t.Errorf("spill job placed on %s, want the better-connected cloud", si.Cloud)
	}
	// Remote execution pays the streaming time: the spill job must finish
	// later than the local one.
	k.Run()
	fi, _ = s.Poll(first)
	si, _ = s.Poll(second)
	if si.Finished <= fi.Finished {
		t.Errorf("remote job finished at %v, local at %v; want remote slower", si.Finished, fi.Finished)
	}
}

// TestScoreRejectsOverCapacity: a plan that overcommits a cloud scores
// negative.
func TestScoreRejectsOverCapacity(t *testing.T) {
	k := sim.NewKernel(1)
	b := saturatedBackend(k)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	j := &Job{Spec: JobSpec{Tenant: "t", Workers: 8, CoresPerWorker: 2}}
	clouds := s.B.Clouds()
	free := map[string]int{"c0": 8}
	p := s.ScorePlan(j, []Member{{Cloud: "c0", Workers: 8}}, clouds, free)
	if p.Score >= 0 {
		t.Fatalf("ScorePlan = %v for a 16-core plan slice on 8 free cores, want < 0", p.Score)
	}
}

// TestSpotRevocationMidJob: a revocation event on a running job triggers
// on-demand replacement growth and the job still completes.
func TestSpotRevocationMidJob(t *testing.T) {
	k := sim.NewKernel(1)
	b := saturatedBackend(k)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	id := submitN(t, s, "t", 1, JobSpec{Workers: 2, CoresPerWorker: 2,
		EstimateSeconds: 300, Spot: true, Bid: 0.05})[0]
	k.Schedule(100*sim.Second, func() {
		s.Notify(Event{Kind: EventSpotRevoked, Job: id, Cloud: "c0"})
	})
	k.Run()
	ji, _ := s.Poll(id)
	if ji.State != Done {
		t.Fatalf("job state %v after revocation, want done", ji.State)
	}
	if ji.Revocations != 1 {
		t.Errorf("Revocations = %d, want 1", ji.Revocations)
	}
	if s.SpotReplacements() != 1 || ji.GrewBy != 1 {
		t.Errorf("replacement not requested: SpotReplacements=%d GrewBy=%d", s.SpotReplacements(), ji.GrewBy)
	}
}

// TestSpotReplacementDisabled: the event is recorded but no growth happens.
func TestSpotReplacementDisabled(t *testing.T) {
	k := sim.NewKernel(1)
	b := saturatedBackend(k)
	s := New(b, Config{DisableSpotReplacement: true})
	s.AddTenant("t", 1)
	id := submitN(t, s, "t", 1, JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 300})[0]
	k.Schedule(100*sim.Second, func() {
		s.Notify(Event{Kind: EventSpotRevoked, Job: id, Cloud: "c0"})
	})
	k.Run()
	if s.SpotRevocations() != 1 || s.SpotReplacements() != 0 {
		t.Fatalf("revocations=%d replacements=%d, want 1/0", s.SpotRevocations(), s.SpotReplacements())
	}
}

// TestDeadlineGrowth: a job predicted late grows through the elastic hook.
func TestDeadlineGrowth(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 16, 1, 0.10)
	s := New(b, Config{ElasticInterval: 10 * sim.Second, DeadlineMargin: 10 * sim.Second})
	s.Start()
	s.AddTenant("t", 1)
	id := submitN(t, s, "t", 1, JobSpec{Workers: 2, CoresPerWorker: 2,
		EstimateSeconds: 300, Deadline: 100 * sim.Second, MaxExtraWorkers: 2,
		MR: mapreduce.Job{NumMaps: 30, NumReduces: 2}})[0]
	k.Run()
	ji, _ := s.Poll(id)
	if s.GrowRequests() == 0 || ji.GrewBy == 0 {
		t.Fatalf("no elastic growth for a late job: GrowRequests=%d GrewBy=%d", s.GrowRequests(), ji.GrewBy)
	}
	if ji.GrewBy > 2 {
		t.Errorf("GrewBy=%d exceeds MaxExtraWorkers=2", ji.GrewBy)
	}
	if s.ShrinkRequests() == 0 {
		t.Errorf("elastic extras never shrunk after the map phase")
	}
	s.Stop()
}

// TestExternalJobsArbitrated: gate-admitted jobs queue under the tenant's
// share and run in fair order.
func TestExternalJobsArbitrated(t *testing.T) {
	k := sim.NewKernel(1)
	b := saturatedBackend(k)
	s := New(b, Config{})
	s.AddTenant("emr", 1)
	ran := false
	_, err := s.Submit(JobSpec{Tenant: "emr", Name: "deadline-job", Workers: 4,
		CoresPerWorker: 1, EstimateSeconds: 50,
		Run: func(done func(error)) {
			ran = true
			k.Schedule(50*sim.Second, func() { done(nil) })
		}})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !ran {
		t.Fatal("external job never ran")
	}
	if s.DeliveredCoreSeconds("emr") != 4*50 {
		t.Errorf("external job delivered %.0f core-seconds, want 200", s.DeliveredCoreSeconds("emr"))
	}
}

// TestBackfillCountsStreamingTime: a remote-input backfill candidate whose
// streaming time pushes it past the reservation must not jump the queue,
// even though its CPU estimate alone would fit.
func TestBackfillCountsStreamingTime(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 8, 1, 0.10)
	b.AddCloud("data", 2, 1, 0.10) // holds input; too small to run jobs
	b.SetBandwidth("data", "c0", 10<<20)
	s := New(b, Config{})
	s.AddTenant("a", 1)
	submitN(t, s, "a", 1, JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 200})
	wide := submitN(t, s, "a", 1, JobSpec{Workers: 4, CoresPerWorker: 2, EstimateSeconds: 100})[0]
	// 4 cores fit c0's leftover now (and not the 2-core data cloud). The
	// CPU estimate of 100 s would finish before the t=200 reservation, but
	// streaming 2 GiB at 10 MB/s adds ~205 s: true finish ~t=305, so the
	// job would hold reserved cores past the reservation.
	streamy := submitN(t, s, "a", 1, JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 100,
		InputSite: "data", InputBytes: 2 << 30})[0]
	k.Run()
	wi, _ := s.Poll(wide)
	si, _ := s.Poll(streamy)
	if si.Started < wi.Started {
		t.Fatalf("streaming job jumped the reservation: streamy %v, wide %v", si.Started, wi.Started)
	}
}

// TestExternalJobErrorRecorded: an external job that reports an error ends
// Failed, not Done.
func TestExternalJobErrorRecorded(t *testing.T) {
	k := sim.NewKernel(1)
	b := saturatedBackend(k)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	id, err := s.Submit(JobSpec{Tenant: "t", Workers: 1, EstimateSeconds: 10,
		Run: func(done func(error)) { done(fmt.Errorf("boom")) }})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	ji, _ := s.Poll(id)
	if ji.State != Failed || ji.Err == nil {
		t.Fatalf("external error not recorded: state=%v err=%v", ji.State, ji.Err)
	}
	if s.Completed() != 0 || s.Failures() != 1 {
		t.Errorf("stats: completed=%d failures=%d, want 0/1", s.Completed(), s.Failures())
	}
}

// TestSpotReplacementsSurviveMapDrainShrink: only deadline-chasing extras
// are handed back after the map phase; spot replacements stay.
func TestSpotReplacementsSurviveMapDrainShrink(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 32, 1, 0.10)
	s := New(b, Config{ElasticInterval: 10 * sim.Second, DeadlineMargin: 10 * sim.Second})
	s.Start()
	s.AddTenant("t", 1)
	id := submitN(t, s, "t", 1, JobSpec{Workers: 2, CoresPerWorker: 2,
		EstimateSeconds: 300, Deadline: 100 * sim.Second, MaxExtraWorkers: 1,
		MR: mapreduce.Job{NumMaps: 30, NumReduces: 2}})[0]
	k.Schedule(50*sim.Second, func() {
		s.Notify(Event{Kind: EventSpotRevoked, Job: id, Cloud: "c0"})
	})
	k.Run()
	ji, _ := s.Poll(id)
	if s.SpotReplacements() != 1 {
		t.Fatalf("SpotReplacements=%d, want 1", s.SpotReplacements())
	}
	if s.ShrinkRequests() == 0 {
		t.Fatal("deadline extras never shrunk")
	}
	// GrewBy = 1 deadline + 1 replacement; only the deadline extra may be
	// handed back.
	if ji.GrewBy != 2 {
		t.Fatalf("GrewBy=%d, want 2 (1 deadline + 1 replacement)", ji.GrewBy)
	}
	s.Stop()
}

// TestWaitNeverNegative: a job failed while still queued reports the time
// it actually spent waiting, not a negative duration.
func TestWaitNeverNegative(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	c := b.AddCloud("c0", 8, 1, 0.10)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	submitN(t, s, "t", 1, JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 50})
	var id string
	k.Schedule(100*sim.Second, func() {
		// Shrink the cloud below the job's demand after submit, so the
		// next cycle fails it in the queue.
		var err error
		id, err = s.Submit(JobSpec{Tenant: "t", Workers: 4, CoresPerWorker: 2, EstimateSeconds: 50})
		if err != nil {
			t.Error(err)
		}
		c.SetTotal(4)
	})
	k.Run()
	ji, ok := s.Poll(id)
	if !ok || ji.State != Failed {
		t.Fatalf("job not failed in queue: %+v", ji)
	}
	if ji.Wait < 0 {
		t.Fatalf("negative wait: %v", ji.Wait)
	}
}

// TestSubmitRejectsImpossibleJob: demand beyond every cloud fails fast.
func TestSubmitRejectsImpossibleJob(t *testing.T) {
	k := sim.NewKernel(1)
	b := saturatedBackend(k)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	if _, err := s.Submit(JobSpec{Tenant: "t", Workers: 16, CoresPerWorker: 2}); err == nil {
		t.Fatal("16x2-core job accepted on an 8-core federation")
	}
}

// TestRandomPlacementDeterministic: same seed, same choices.
func TestRandomPlacementDeterministic(t *testing.T) {
	run := func() []string {
		k := sim.NewKernel(7)
		b := NewSimBackend(k)
		b.AddCloud("c0", 32, 1, 0.1)
		b.AddCloud("c1", 32, 1, 0.1)
		s := New(b, Config{Placement: RandomPlacement{}})
		s.AddTenant("t", 1)
		ids := submitN(t, s, "t", 8, JobSpec{Workers: 1, CoresPerWorker: 2, EstimateSeconds: 10})
		k.Run()
		out := make([]string, len(ids))
		for i, id := range ids {
			ji, _ := s.Poll(id)
			out[i] = ji.Cloud
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement diverged at job %d: %v vs %v", i, a, b)
		}
	}
}

// TestClassifyMatrix covers the pattern taxonomy.
func TestClassifyMatrix(t *testing.T) {
	ring := netmon.Matrix{}
	for i := 0; i < 4; i++ {
		ring.Add(string(rune('a'+i)), string(rune('a'+(i+1)%4)), 100)
	}
	if p := ClassifyMatrix(ring); p != PatternRing {
		t.Errorf("ring classified as %s", p)
	}
	all := netmon.Matrix{}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				all.Add(string(rune('a'+i)), string(rune('a'+j)), 100)
			}
		}
	}
	if p := ClassifyMatrix(all); p != PatternAllToAll {
		t.Errorf("all-to-all classified as %s", p)
	}
	hub := netmon.Matrix{}
	for i := 1; i < 6; i++ {
		hub.Add("m", string(rune('a'+i)), 100)
		hub.Add(string(rune('a'+i)), "m", 100)
	}
	if p := ClassifyMatrix(hub); p != PatternMasterWorker {
		t.Errorf("master-worker classified as %s", p)
	}
	if p := ClassifyMatrix(netmon.Matrix{}); p != PatternSparse {
		t.Errorf("empty classified as %s", p)
	}
}

// TestPatternBiasesPlacement: an all-to-all tenant's bandwidth term gets
// boosted, flipping a marginal placement toward the better-connected cloud.
func TestPatternBiasesPlacement(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("data", 2, 1, 0.10) // too small for the job: always remote
	b.AddCloud("big", 64, 1, 0.05)
	b.AddCloud("fat", 32, 1, 0.20)
	b.SetBandwidth("data", "big", 5<<20)
	b.SetBandwidth("data", "fat", 120<<20)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	j := &Job{Spec: JobSpec{Tenant: "t", Workers: 2, CoresPerWorker: 2,
		InputSite: "data", InputBytes: 1 << 30}}
	score := func(name string) float64 {
		clouds := s.B.Clouds()
		free := make(map[string]int)
		for _, c := range clouds {
			free[c.Name] = c.FreeCores
		}
		return s.ScorePlan(j, []Member{{Cloud: name, Workers: 2}}, clouds, free).Score
	}
	beforeBig, beforeFat := score("big"), score("fat")
	s.Notify(Event{Kind: EventPatternDetected, Tenant: "t", Pattern: PatternAllToAll})
	afterBig, afterFat := score("big"), score("fat")
	if s.PatternOf("t") != PatternAllToAll {
		t.Fatal("pattern not recorded")
	}
	if afterFat-afterBig <= beforeFat-beforeBig {
		t.Errorf("pattern boost did not widen the bandwidth advantage: before %.3f, after %.3f",
			beforeFat-beforeBig, afterFat-afterBig)
	}
}
