package sched

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

// Scheduler-driven migration: running gangs are no longer pinned to the
// plan that dispatched them. The elastic pass watches every running
// spanning job and, once one of its member clouds could host the whole
// gang (a co-tenant finished, a cloud grew), live-migrates the other
// members' workers onto it — the autonomic consolidation proposal applied
// to a *running* scheduler job. The backend performs the actual moves
// (core's fedBackend live-migrates the worker VMs over the federation
// machinery and retargets their committed cores through the capacity
// ledger; SimBackend retargets its ledger leases), and reports back so the
// job's plan, its release-list entries, and the anchor cloud follow.

// Relocator is the optional Handle extension backends implement to support
// consolidation: Relocate moves `workers` of the job's workers from one
// member cloud to another while the job keeps running, then calls onDone.
// On success the backend has already moved its own capacity accounting
// (ledger lease or committed-core retarget); the scheduler rewrites the
// job's plan when the callback reports nil.
type Relocator interface {
	Relocate(from, to string, workers int, onDone func(error))
}

// capacityReader is the read surface consolidation targeting needs; both
// the live *capacity.Ledger and its immutable *capacity.View satisfy it
// with bit-identical answers against the same ledger state, which is what
// lets the parallel elastic pass probe a lock-free snapshot (see
// elasticPar) and the commit path fall back to the live ledger only when
// the snapshot went stale.
type capacityReader interface {
	Free(cloud string) int
	Probe(cloud string, cores int, at sim.Time) bool
}

// consolidationTarget returns the member cloud that could host the job's
// whole gang right now, or "". Candidates must have physical room for
// every worker arriving from the other members AND pass a ledger probe, so
// consolidation never takes cores an outstanding backfill reservation
// needs. Among several viable members the one already holding the most
// workers wins (fewest moves), ties keeping plan order.
func (s *Scheduler) consolidationTarget(j *Job) string {
	return s.consolidationTargetOn(j, s.B.Ledger())
}

// consolidationTargetOn is consolidationTarget against any capacity read
// surface — the live ledger or a frozen view.
func (s *Scheduler) consolidationTargetOn(j *Job, l capacityReader) string {
	now := s.K.Now()
	cpw := j.coresPerWorker()
	total := j.Plan.Workers()
	best, bestWorkers := "", 0
	for _, m := range j.Plan.Members {
		arriving := (total - m.Workers) * cpw
		if arriving <= 0 {
			continue
		}
		if l.Free(m.Cloud) >= arriving && l.Probe(m.Cloud, arriving, now) && m.Workers > bestWorkers {
			best, bestWorkers = m.Cloud, m.Workers
		}
	}
	return best
}

// startConsolidation issues one Relocate per non-target member and rewrites
// the plan as each move completes. The job's relocating flag keeps the
// elastic pass from stacking a second consolidation on an in-flight one.
func (s *Scheduler) startConsolidation(j *Job, rel Relocator, to string) {
	j.relocating = true
	s.m.consolidationRequests.Inc()
	if s.tr != nil {
		s.trace(obs.TraceEvent{Kind: "consolidate", Tenant: j.Spec.Tenant, Job: j.ID,
			To: to, Workers: j.Plan.Workers(), Plan: j.Plan.String()})
	}
	type move struct {
		from    string
		workers int
	}
	var moves []move
	for _, m := range j.Plan.Members {
		if m.Cloud != to {
			moves = append(moves, move{m.Cloud, m.Workers})
		}
	}
	pending := len(moves)
	failed := false
	for _, mv := range moves {
		mv := mv
		rel.Relocate(mv.from, to, mv.workers, func(err error) {
			if err == nil && j.State == Running {
				s.jobRelocated(j, mv.from, to, mv.workers)
			} else if err != nil {
				failed = true
			}
			pending--
			if pending == 0 {
				j.relocating = false
				if !failed && j.State == Running {
					s.m.consolidations.Inc()
				}
			}
		})
	}
}

// JobRelocated tells the scheduler a backend moved `workers` of a running
// job's workers between clouds outside a scheduler-initiated consolidation
// (an autonomic relocation Action executed by the federation): the plan,
// the anchor, and the pending-release entries follow. Unknown or
// non-running jobs are ignored.
func (s *Scheduler) JobRelocated(id, from, to string, workers int) {
	j := s.jobByID(id)
	if j == nil || j.State != Running {
		return
	}
	s.jobRelocated(j, from, to, workers)
}

// jobRelocated applies one completed worker move to the job's record: the
// plan members are rewritten, the anchor follows, and the job's pending
// release entries move with the plan (same instants, new clouds) so future
// reservations walk the truth.
func (s *Scheduler) jobRelocated(j *Job, from, to string, workers int) {
	if s.tr != nil {
		s.trace(obs.TraceEvent{Kind: "relocate", Tenant: j.Spec.Tenant, Job: j.ID,
			From: from, To: to, Workers: workers})
	}
	s.removeReleases(j)
	j.Plan = j.Plan.MoveWorkers(from, to, workers)
	j.Cloud = j.Plan.Primary()
	s.insertReleases(j)
	s.kick()
}
