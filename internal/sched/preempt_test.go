package sched

import (
	"testing"

	"repro/internal/sim"
)

// Tests for revocable placement: spot-priced preemption, reservation aging,
// the reservation recompute cache, consolidation of running spanning gangs,
// and the per-cloud blocked-job watermark.

// liarBackend returns a backend where jobs named "liar" run `factor` times
// their estimate — the optimistic-estimate workload that makes reservations
// slip (their ledger leases keep the estimated end, as in a real
// federation).
func liarBackend(k *sim.Kernel, cores int, factor float64) *SimBackend {
	b := NewSimBackend(k)
	b.AddCloud("c0", cores, 1, 0.10)
	b.Overrun = func(j *Job) float64 {
		if j.Spec.Name == "liar" {
			return factor
		}
		return 1
	}
	return b
}

// preemptScenario builds the canonical blocked-head-behind-a-liar setup:
// A (8 of 16 cores, exact 100 s), head H (16 cores, blocked, reserved at
// t=100), and backfill B ("liar": estimates 80 s, actually runs 320 s).
// Without preemption H cannot start before B's true completion at t≈320.
func preemptScenario(t *testing.T, cfg Config) (*sim.Kernel, *Scheduler, string, string) {
	t.Helper()
	k := sim.NewKernel(1)
	b := liarBackend(k, 16, 4)
	s := New(b, cfg)
	s.Start()
	s.AddTenant("t", 1)
	submitN(t, s, "t", 1, JobSpec{Name: "hold", Workers: 4, CoresPerWorker: 2, EstimateSeconds: 100})
	head := submitN(t, s, "t", 1, JobSpec{Name: "head", Workers: 8, CoresPerWorker: 2, EstimateSeconds: 50})[0]
	liar := submitN(t, s, "t", 1, JobSpec{Name: "liar", Workers: 4, CoresPerWorker: 2, EstimateSeconds: 80})[0]
	return k, s, head, liar
}

// TestPreemptionLetsHeadStart: once the head's reservation has slipped
// MaxSlips times (the liar's release keeps not happening), the liar is
// evicted, the head starts on its cores, and the liar requeues and still
// completes — with the eviction recorded on both sides.
func TestPreemptionLetsHeadStart(t *testing.T) {
	k, s, head, liar := preemptScenario(t, Config{EnablePreemption: true})
	k.Run()
	hi, _ := s.Poll(head)
	li, _ := s.Poll(liar)
	if hi.State != Done || li.State != Done {
		t.Fatalf("states: head=%v liar=%v, want both done", hi.State, li.State)
	}
	// Without preemption the head waits for the liar's true completion at
	// t≈320 (see TestPreemptionDisabledHeadWaits); with it, eviction fires
	// a few elastic-driven cycles after the t=100 slip onset.
	if hi.Started >= 200*sim.Second {
		t.Errorf("head started at %v — preemption never fired", hi.Started)
	}
	if s.Preemptions() != 1 || li.Preemptions != 1 {
		t.Errorf("Preemptions: scheduler=%d job=%d, want 1/1", s.Preemptions(), li.Preemptions)
	}
	if s.ReservationAgings() == 0 {
		t.Error("preemption fired without a reservation-aging trigger")
	}
	// The liar was requeued, not failed: it redispatched after the head.
	if li.Started <= hi.Started {
		t.Errorf("evicted job's final start %v not after the head's %v", li.Started, hi.Started)
	}
}

// TestPreemptionDisabledHeadWaits: the contrast run — with the default-off
// flag the head waits for the liar's true completion, exactly the
// pre-preemption scheduler.
func TestPreemptionDisabledHeadWaits(t *testing.T) {
	k, s, head, liar := preemptScenario(t, Config{})
	k.Run()
	hi, _ := s.Poll(head)
	li, _ := s.Poll(liar)
	if s.Preemptions() != 0 || li.Preemptions != 0 {
		t.Fatalf("preemption fired while disabled: scheduler=%d job=%d", s.Preemptions(), li.Preemptions)
	}
	if hi.Started < li.Finished {
		t.Errorf("head started at %v before the liar finished at %v without preemption",
			hi.Started, li.Finished)
	}
}

// TestPreemptionProgressCredit: the evicted liar's second dispatch charges
// and estimates only its remaining work — its requeued run is shorter than
// a from-scratch run would be.
func TestPreemptionProgressCredit(t *testing.T) {
	k, s, _, liar := preemptScenario(t, Config{EnablePreemption: true})
	k.Run()
	li, _ := s.Poll(liar)
	if li.State != Done || li.Preemptions != 1 {
		t.Fatalf("liar state=%v preemptions=%d", li.State, li.Preemptions)
	}
	j := s.jobByID(liar)
	if j.creditFrac <= 0 {
		t.Fatal("evicted job carries no progress credit")
	}
	// Second run: estimate (80 s) discounted by the credit, overrun 4x.
	wantMax := sim.FromSeconds(80 * (1 - j.creditFrac) * 4)
	if got := li.Finished - li.Started; got > wantMax+sim.Second {
		t.Errorf("requeued run took %v, want <= %v (progress credit lost)", got, wantMax)
	}
}

// TestPreemptionKeepsQueuePosition: the evicted job re-enters its tenant's
// queue in submission order — a job submitted after it cannot leapfrog it
// once capacity frees up (the no-starvation half of the satellite).
func TestPreemptionKeepsQueuePosition(t *testing.T) {
	k := sim.NewKernel(1)
	b := liarBackend(k, 16, 4)
	s := New(b, Config{EnablePreemption: true})
	s.Start()
	s.AddTenant("t", 1)
	submitN(t, s, "t", 1, JobSpec{Name: "hold", Workers: 4, CoresPerWorker: 2, EstimateSeconds: 100})
	head := submitN(t, s, "t", 1, JobSpec{Name: "head", Workers: 8, CoresPerWorker: 2, EstimateSeconds: 50})[0]
	liar := submitN(t, s, "t", 1, JobSpec{Name: "liar", Workers: 4, CoresPerWorker: 2, EstimateSeconds: 80})[0]
	// Submitted after the liar; needs the whole cloud, so it cannot share a
	// dispatch instant with it.
	late := submitN(t, s, "t", 1, JobSpec{Name: "late", Workers: 8, CoresPerWorker: 2, EstimateSeconds: 30})[0]
	k.Run()
	hi, _ := s.Poll(head)
	li, _ := s.Poll(liar)
	lt, _ := s.Poll(late)
	if li.State != Done || lt.State != Done {
		t.Fatalf("states: liar=%v late=%v", li.State, lt.State)
	}
	if li.Preemptions == 0 {
		t.Fatal("liar never evicted; scenario broken")
	}
	if li.Started <= hi.Started {
		t.Fatalf("liar restarted at %v, not after the head's start %v", li.Started, hi.Started)
	}
	if lt.Started <= li.Started {
		t.Errorf("job submitted after the victim started at %v, before the victim's restart %v "+
			"(queue position credit lost)", lt.Started, li.Started)
	}
	if li.Preemptions > s.Config().MaxPreemptions {
		t.Errorf("job evicted %d times, cap is %d", li.Preemptions, s.Config().MaxPreemptions)
	}
}

// TestReservationAgingDropsHold: with aging configured but preemption off,
// a slipping reservation's ledger hold is dropped (and re-established) so a
// misestimated gang cannot shade elastic growth forever — and the head
// still starts exactly at the liar's true completion (aging must not relax
// backfill gating).
func TestReservationAgingDropsHold(t *testing.T) {
	k, s, head, liar := preemptScenario(t, Config{ReservationMaxSlips: 2})
	k.Run()
	if s.ReservationAgings() == 0 {
		t.Fatal("reservation never aged out")
	}
	if s.Preemptions() != 0 {
		t.Fatal("aging without preemption evicted a job")
	}
	hi, _ := s.Poll(head)
	li, _ := s.Poll(liar)
	if hi.Started != li.Finished {
		t.Errorf("head started at %v, want the liar's true completion %v", hi.Started, li.Finished)
	}
}

// TestForcedPreemptOverrun: the elastic forced-preempt path — head-driven
// aging disabled — reclaims a backfilled job once it has run past
// PreemptOverrunFactor x its estimate while a reservation waits.
func TestForcedPreemptOverrun(t *testing.T) {
	k, s, head, liar := preemptScenario(t, Config{
		EnablePreemption:    true,
		ReservationMaxSlips: -1, // no head-driven eviction
	})
	k.Run()
	if s.ForcedPreemptions() != 1 {
		t.Fatalf("ForcedPreemptions = %d, want 1", s.ForcedPreemptions())
	}
	hi, _ := s.Poll(head)
	li, _ := s.Poll(liar)
	if hi.State != Done || li.State != Done {
		t.Fatalf("states: head=%v liar=%v", hi.State, li.State)
	}
	// The liar started at t=0 with an 80 s estimate: the overrun bound
	// (2x) passes at t=160, and the next elastic tick evicts it.
	if hi.Started < 160*sim.Second || hi.Started > 200*sim.Second {
		t.Errorf("head started at %v, want shortly after the t=160 overrun bound", hi.Started)
	}
}

// TestConsolidationMergesSpanningGang: a gang that spanned two clouds only
// because both were partially busy migrates onto one member once the
// co-tenants finish — the plan, the anchor, and the release entries follow.
func TestConsolidationMergesSpanningGang(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 32, 1, 0.10)
	b.AddCloud("c1", 32, 1, 0.10)
	s := New(b, Config{EnableConsolidation: true})
	s.Start()
	s.AddTenant("t", 1)
	submitN(t, s, "t", 1, JobSpec{Name: "f0", Workers: 8, CoresPerWorker: 2, EstimateSeconds: 50})
	submitN(t, s, "t", 1, JobSpec{Name: "f1", Workers: 8, CoresPerWorker: 2, EstimateSeconds: 50})
	// 24 single-core workers: neither cloud's 16 free cores fit, so it
	// spans c0:16 + c1:8.
	gang := submitN(t, s, "t", 1, JobSpec{Name: "gang", Workers: 24, CoresPerWorker: 1, EstimateSeconds: 300})[0]
	k.RunUntil(1 * sim.Second)
	gi, _ := s.Poll(gang)
	if !gi.Plan.Spanning() {
		t.Fatalf("gang did not span: %v", gi.Plan)
	}
	k.Run()
	gi, _ = s.Poll(gang)
	if gi.State != Done {
		t.Fatalf("gang state %v", gi.State)
	}
	if s.Consolidations() != 1 {
		t.Fatalf("Consolidations = %d, want 1", s.Consolidations())
	}
	if gi.Plan.Spanning() || gi.Plan.Primary() != "c0" || gi.Plan.Workers() != 24 {
		t.Errorf("gang plan after consolidation = %v, want all 24 workers on c0", gi.Plan)
	}
	// The ledger followed the move: nothing leaked on either cloud.
	if f0, f1 := b.ledger.Free("c0"), b.ledger.Free("c1"); f0 != 32 || f1 != 32 {
		t.Errorf("leaked cores after consolidated run: c0 free=%d c1 free=%d", f0, f1)
	}
}

// TestConsolidationRespectsReservation: a member cloud with room is NOT a
// consolidation target when an outstanding backfill reservation needs its
// cores — the ledger probe gates the move.
func TestConsolidationRespectsReservation(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 32, 1, 0.10)
	b.AddCloud("c1", 32, 1, 0.10)
	s := New(b, Config{EnableConsolidation: true})
	s.Start()
	s.AddTenant("t", 1)
	submitN(t, s, "t", 1, JobSpec{Name: "f0", Workers: 8, CoresPerWorker: 2, EstimateSeconds: 50})
	submitN(t, s, "t", 1, JobSpec{Name: "f1", Workers: 8, CoresPerWorker: 2, EstimateSeconds: 400})
	gang := submitN(t, s, "t", 1, JobSpec{Name: "gang", Workers: 24, CoresPerWorker: 1, EstimateSeconds: 300})[0]
	// Blocked wide job: its reservation claims c0's cores the moment f0
	// frees them, so the gang must not consolidate into them.
	submitN(t, s, "t", 1, JobSpec{Name: "wide", Workers: 16, CoresPerWorker: 2, EstimateSeconds: 50})
	k.RunUntil(280 * sim.Second) // f0 done, gang mid-run, wide reserved
	gi, _ := s.Poll(gang)
	if !gi.Plan.Spanning() {
		t.Fatalf("gang plan = %v, want still spanning (reserved cores untouchable)", gi.Plan)
	}
	k.Run()
	if s.Completed() != 4 {
		t.Fatalf("completed %d of 4", s.Completed())
	}
}

// TestResvCacheHits: cycles whose free vector and release list are
// unchanged reuse the cached head reservation — and the cached decisions
// are the ones the recompute produced (the backfill test's exact-start
// property still holds).
func TestResvCacheHits(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 8, 1, 0.10)
	s := New(b, Config{})
	s.AddTenant("a", 1)
	hold := submitN(t, s, "a", 1, JobSpec{Workers: 3, CoresPerWorker: 2, EstimateSeconds: 200})[0]
	wide := submitN(t, s, "a", 1, JobSpec{Workers: 4, CoresPerWorker: 2, EstimateSeconds: 100})[0]
	// A stream of too-big-to-backfill submissions: each kicks a cycle in
	// which nothing changed for the blocked head — the reserve() walk must
	// be skipped, not recomputed.
	for i := 0; i < 8; i++ {
		k.At(sim.Time(10+i)*sim.Second, func() {
			submitN(t, s, "a", 1, JobSpec{Workers: 4, CoresPerWorker: 2, EstimateSeconds: 300})
		})
	}
	k.Run()
	if s.ResvCacheHits() == 0 {
		t.Fatal("unchanged cycles never hit the reservation cache")
	}
	hi, _ := s.Poll(hold)
	wi, _ := s.Poll(wide)
	if wi.Started != hi.Finished {
		t.Errorf("wide started at %v, want the holder's finish %v (cache corrupted the reservation)",
			wi.Started, hi.Finished)
	}
}

// TestPerCloudWatermark: under a single-cloud-only policy, frees on a cloud
// too small to ever host the job do not wake it (placement skipped), and
// the job still dispatches exactly when the eligible cloud frees up.
func TestPerCloudWatermark(t *testing.T) {
	k := sim.NewKernel(3)
	b := NewSimBackend(k)
	b.AddCloud("big", 16, 1, 0.10)
	b.AddCloud("small", 4, 1, 0.10)
	s := New(b, Config{Placement: RandomPlacement{}})
	s.AddTenant("t", 1)
	// Fill both clouds; small churns with short jobs, big frees at t=500.
	bigHold := submitN(t, s, "t", 1, JobSpec{Workers: 8, CoresPerWorker: 2, EstimateSeconds: 500})[0]
	for i := 0; i < 6; i++ {
		k.At(sim.Time(i*40)*sim.Second, func() {
			submitN(t, s, "t", 1, JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 30})
		})
	}
	// 8 cores: only "big" can ever host it under a single-cloud policy.
	blocked := submitN(t, s, "t", 1, JobSpec{Workers: 4, CoresPerWorker: 2, EstimateSeconds: 50})[0]
	k.At(300*sim.Second, func() {
		j := s.jobByID(blocked)
		if !j.unfit || !j.unfitPerCloud {
			t.Errorf("blocked job not per-cloud marked: unfit=%v perCloud=%v", j.unfit, j.unfitPerCloud)
			return
		}
		if len(j.unfitMarks) != 1 || j.unfitMarks[0].cloud != "big" {
			t.Errorf("unfit marks = %+v, want exactly {big}", j.unfitMarks)
		}
		if s.freedBy["small"] == 0 {
			t.Error("small's churn produced no per-cloud frees; scenario broken")
		}
		if s.canFit(j) {
			t.Error("frees on the ineligible small cloud woke the blocked job")
		}
	})
	k.Run()
	hi, _ := s.Poll(bigHold)
	bi, _ := s.Poll(blocked)
	if bi.State != Done {
		t.Fatalf("blocked job state %v", bi.State)
	}
	if bi.Started != hi.Finished {
		t.Errorf("blocked job started at %v, want big's release %v (per-cloud watermark stranded it)",
			bi.Started, hi.Finished)
	}
}
