package sched

import (
	"fmt"
	"sort"
	"strconv"
	"testing"

	"repro/internal/sim"
)

// Tests for the incremental scheduler core: the active/archive job split,
// the maintained release list, and the blocked-head watermark.

// TestArchiveVisibility: finished jobs move to the archive but stay fully
// visible through Poll and Jobs(), in submission order, alongside active
// ones.
func TestArchiveVisibility(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 8, 1, 0.10)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	var ids []string
	for i := 0; i < 3; i++ {
		// 8 cores each: jobs run strictly one at a time.
		id, err := s.Submit(JobSpec{Tenant: "t", Name: fmt.Sprintf("j%d", i),
			Workers: 4, CoresPerWorker: 2, EstimateSeconds: 100})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	k.RunUntil(150 * sim.Second) // first finished, second running, third queued
	wantStates := []State{Done, Running, Queued}
	for i, id := range ids {
		ji, ok := s.Poll(id)
		if !ok {
			t.Fatalf("job %s (state %v expected) invisible to Poll", id, wantStates[i])
		}
		if ji.State != wantStates[i] {
			t.Errorf("job %s state = %v, want %v", id, ji.State, wantStates[i])
		}
	}
	if got := s.Jobs(); len(got) != 3 || got[0] != ids[0] || got[1] != ids[1] || got[2] != ids[2] {
		t.Errorf("Jobs() = %v, want %v in submission order", got, ids)
	}
	k.Run()
	for _, id := range ids {
		ji, ok := s.Poll(id)
		if !ok || ji.State != Done {
			t.Errorf("archived job %s: ok=%v state=%v, want visible and done", id, ok, ji.State)
		}
		if ji.Finished == 0 || ji.Result.Job == "" {
			t.Errorf("archived job %s lost its outcome: finished=%v result=%q", id, ji.Finished, ji.Result.Job)
		}
	}
	if s.Completed() != 3 || len(s.Jobs()) != 3 {
		t.Errorf("completed=%d jobs=%d, want 3/3", s.Completed(), len(s.Jobs()))
	}
}

// TestSharesAcrossArchive: delivered shares integrate finished (archived)
// work from the per-tenant aggregates and live work from the running list —
// the split must not change what Shares reports.
func TestSharesAcrossArchive(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 8, 1, 0.10)
	s := New(b, Config{})
	s.AddTenant("a", 1)
	s.AddTenant("b", 1)
	if _, err := s.Submit(JobSpec{Tenant: "a", Workers: 2, CoresPerWorker: 2, EstimateSeconds: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Tenant: "b", Workers: 2, CoresPerWorker: 2, EstimateSeconds: 400}); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(200 * sim.Second)
	// a: finished, 4 cores x 100 s = 400 core-s (archived).
	// b: running, 4 cores x 200 s elapsed = 800 core-s.
	shares := s.Shares()
	if got, want := shares["a"], 400.0/1200.0; !closeTo(got, want) {
		t.Errorf("share[a] = %v, want %v (archived work undercounted?)", got, want)
	}
	if got, want := shares["b"], 800.0/1200.0; !closeTo(got, want) {
		t.Errorf("share[b] = %v, want %v (running work undercounted?)", got, want)
	}
	if got := s.DeliveredCoreSeconds("a"); !closeTo(got, 400) {
		t.Errorf("DeliveredCoreSeconds(a) = %v, want 400", got)
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// TestWatermarkExactDemand: a completion that frees exactly the blocked
// job's demand must dispatch it at that instant — the watermark may skip
// placement only while the job provably cannot fit.
func TestWatermarkExactDemand(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 16, 1, 0.10)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	short, err := s.Submit(JobSpec{Tenant: "t", Workers: 4, CoresPerWorker: 2, EstimateSeconds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Tenant: "t", Workers: 4, CoresPerWorker: 2, EstimateSeconds: 300}); err != nil {
		t.Fatal(err)
	}
	// Blocked: needs the 8 cores the short job holds, freed exactly at t=100.
	blocked, err := s.Submit(JobSpec{Tenant: "t", Workers: 4, CoresPerWorker: 2, EstimateSeconds: 50})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	si, _ := s.Poll(short)
	bi, _ := s.Poll(blocked)
	if bi.State != Done {
		t.Fatalf("blocked job state = %v, want done", bi.State)
	}
	if bi.Started != si.Finished {
		t.Errorf("blocked job started at %v, want the short job's completion %v (watermark stranded it)",
			bi.Started, si.Finished)
	}
}

// TestWatermarkAccumulatesFrees: a wide blocked job must dispatch once
// several small completions have cumulatively freed its demand, even though
// each individual completion frees less than it needs (the skip condition
// integrates gains; it never compares against a single completion).
func TestWatermarkAccumulatesFrees(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 16, 1, 0.10)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	// Four 4-core jobs finishing at 100/200/300/400 s.
	var ids []string
	for i := 1; i <= 4; i++ {
		id, err := s.Submit(JobSpec{Tenant: "t", Workers: 2, CoresPerWorker: 2,
			EstimateSeconds: float64(100 * i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Wide job: 12 cores — needs the first three completions (4+4+4).
	wide, err := s.Submit(JobSpec{Tenant: "t", Workers: 6, CoresPerWorker: 2, EstimateSeconds: 50})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	third, _ := s.Poll(ids[2])
	wi, _ := s.Poll(wide)
	if wi.State != Done {
		t.Fatalf("wide job state = %v, want done", wi.State)
	}
	if wi.Started != third.Finished {
		t.Errorf("wide job started at %v, want the third completion %v", wi.Started, third.Finished)
	}
}

// oracleReleases is the original rebuild-and-sort pendingReleases
// definition, kept as the oracle the maintained release list is checked
// against.
func oracleReleases(s *Scheduler) []coreRelease {
	now := s.K.Now()
	var out []coreRelease
	for _, j := range s.running {
		if j.State != Running || j.Spec.External() {
			continue
		}
		eta := j.Started + j.estDuration
		if eta <= now {
			eta = now + sim.Second
		}
		cpw := j.coresPerWorker()
		for _, m := range j.Plan.Members {
			// cloudRankFor is idempotent here: every cloud a running job
			// occupies is already in the rank table via insertReleases.
			out = append(out, coreRelease{at: eta, cores: m.Workers * cpw,
				cloudRank: s.cloudRankFor(m.Cloud), jobKey: relJobKey(j.seq)})
		}
	}
	sort.Slice(out, func(i, k int) bool { return releaseLess(out[i], out[k]) })
	return out
}

func sameReleases(a, b []coreRelease) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReleaseListMatchesRebuild: under churn (staggered arrivals, spanning
// jobs, completions) the maintained sorted release list snapshot must equal
// the full rebuild at every checkpoint.
func TestReleaseListMatchesRebuild(t *testing.T) {
	k := sim.NewKernel(7)
	b := NewSimBackend(k)
	for c := 0; c < 3; c++ {
		b.AddCloud(fmt.Sprintf("c%d", c), 16, 1.0+0.5*float64(c), 0.10)
	}
	s := New(b, Config{})
	s.AddTenant("a", 2)
	s.AddTenant("b", 1)
	for i := 0; i < 30; i++ {
		i := i
		k.At(sim.Time(i)*13*sim.Second, func() {
			spec := JobSpec{Tenant: []string{"a", "b"}[i%2], Workers: 2 + i%4,
				CoresPerWorker: 2, EstimateSeconds: float64(40 + 17*(i%5))}
			if i%6 == 0 {
				spec.Workers = 12 // 24 cores: wider than any 16-core cloud, spans
			}
			if _, err := s.Submit(spec); err != nil {
				t.Fatal(err)
			}
		})
	}
	checks := 0
	for at := sim.Time(20) * sim.Second; at < 600*sim.Second; at += 37 * sim.Second {
		k.At(at, func() {
			got := append([]coreRelease(nil), s.snapshotReleases()...)
			want := oracleReleases(s)
			if !sameReleases(got, want) {
				t.Errorf("at %v: snapshot %v != rebuild %v", s.K.Now(), got, want)
			}
			checks++
		})
	}
	k.Run()
	if checks == 0 || s.Completed() != 30 {
		t.Fatalf("checks=%d completed=%d, want >0 and 30", checks, s.Completed())
	}
}

// TestSnapshotReleasesOverdueMerge: entries whose estimate has blown remap
// to now+1s and interleave with genuine entries exactly as the old
// rebuild-and-sort produced — including the (job, cloud) tie-break inside
// the remap instant.
func TestSnapshotReleasesOverdueMerge(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 64, 1, 0.10)
	b.AddCloud("c1", 64, 1, 0.10)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	mk := func(id string, started, est sim.Time, members ...Member) *Job {
		seq, err := strconv.Atoi(id[1:])
		if err != nil {
			t.Fatalf("test job id %q must be J<seq>", id)
		}
		j := &Job{ID: id, seq: seq, Spec: JobSpec{Tenant: "t", Workers: 1}, State: Running,
			Started: started, estDuration: est, dispatched: true,
			Plan: Plan{Members: members}}
		s.active[id] = j
		s.addRunning(j)
		s.insertReleases(j)
		return j
	}
	// Advance the clock to t=100s so earlier ETAs are overdue.
	k.At(100*sim.Second, func() {})
	k.Run()
	// Overdue: J10 (eta 50s, spanning) and J7 (eta 80s) remap to 101s —
	// and must come back sorted J10 before J7 (string order), interleaved
	// with J3's genuine 101s entry and after J2's genuine 100.5s one.
	mk("J10", 0, 50*sim.Second, Member{Cloud: "c1", Workers: 2}, Member{Cloud: "c0", Workers: 1})
	mk("J7", 0, 80*sim.Second, Member{Cloud: "c0", Workers: 3})
	mk("J2", 0, 100*sim.Second+500*sim.Millisecond, Member{Cloud: "c0", Workers: 4})
	mk("J3", 0, 101*sim.Second, Member{Cloud: "c1", Workers: 5})
	mk("J9", 0, 200*sim.Second, Member{Cloud: "c0", Workers: 6})
	got := append([]coreRelease(nil), s.snapshotReleases()...)
	want := oracleReleases(s)
	if !sameReleases(got, want) {
		t.Fatalf("overdue merge:\n got %v\nwant %v", got, want)
	}
	// Sanity on the expected shape itself: J2 first, then the 101s group
	// ordered J10, J10, J3, J7 by (job, cloud)… i.e. string order.
	if got[0].jobKey != relJobKey(2) || got[len(got)-1].jobKey != relJobKey(9) {
		t.Fatalf("unexpected envelope: %v", got)
	}
}

// TestReleaseSnapshotRefreshAfterFailedReserve: when the head job's
// reservation attempt fails (policy can never place it) and a later job
// dispatches in the same cycle, the NEXT blocked job's reserve() must see
// the dispatched job's release — a stale snapshot would hand it a
// wrong-cloud reservation and let a long backfill job slip in front of it.
func TestReleaseSnapshotRefreshAfterFailedReserve(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 10, 1, 0.10)
	b.AddCloud("c1", 12, 1, 0.10)
	s := New(b, Config{Placement: RandomPlacement{}})
	s.AddTenant("t", 1)
	submit := func(workers int, est float64) string {
		id, err := s.Submit(JobSpec{Tenant: "t", Workers: workers, CoresPerWorker: 1, EstimateSeconds: est})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	submit(12, 1000) // R: fills c1 (only cloud with 12 free) until t=1000
	w := submit(16, 50)
	// W: wider than any single cloud — Random never places it, its
	// reservation attempt fails every cycle, and it stays queued.
	a := submit(8, 100)  // A: fits only c0 (leaves 2 free), releases at t=100
	bl := submit(10, 50) // B: blocked; must reserve c0 at A's release
	c := submit(2, 5000) // C: fits c0's spare 2 — would delay B's reserved start
	k.Run()
	if wi, _ := s.Poll(w); wi.State != Queued {
		t.Fatalf("wide job state = %v, want queued forever under the single-cloud policy", wi.State)
	}
	ai, _ := s.Poll(a)
	bi, _ := s.Poll(bl)
	ci, _ := s.Poll(c)
	if bi.Started != ai.Finished {
		t.Errorf("blocked job started at %v, want %v (A's release; stale reservation let something delay it)",
			bi.Started, ai.Finished)
	}
	if ci.Started < bi.Started {
		t.Errorf("long backfill job started at %v, before the reserved job's start %v — the cycle's "+
			"release snapshot missed A's dispatch and reserved the wrong cloud", ci.Started, bi.Started)
	}
}

// TestFitsFederationCacheInvalidation: the cached federation-wide gang
// slots must follow cloud resizes — a job that no longer fits is rejected,
// and added capacity admits wider jobs.
func TestFitsFederationCacheInvalidation(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	c := b.AddCloud("c0", 16, 1, 0.10)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	if _, err := s.Submit(JobSpec{Tenant: "t", Workers: 16, CoresPerWorker: 1, EstimateSeconds: 10}); err != nil {
		t.Fatalf("16-core job rejected on a 16-core federation: %v", err)
	}
	c.SetTotal(8)
	if _, err := s.Submit(JobSpec{Tenant: "t", Workers: 16, CoresPerWorker: 1, EstimateSeconds: 10}); err == nil {
		t.Fatal("16-core job admitted after the federation shrank to 8 cores (stale slot cache)")
	}
	c.SetTotal(64)
	if _, err := s.Submit(JobSpec{Tenant: "t", Workers: 40, CoresPerWorker: 1, EstimateSeconds: 10}); err != nil {
		t.Fatalf("40-core job rejected after growth to 64 cores (stale slot cache): %v", err)
	}
}
