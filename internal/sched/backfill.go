package sched

import (
	"sort"

	"repro/internal/sim"
)

// EASY backfilling: when the next entitled job cannot be placed, it gets a
// reservation — the earliest time enough cores free up on some cloud, taken
// from running jobs' estimated completions — and later queue entries may
// start now only if they cannot delay that reserved start: either they run
// on a different cloud, finish (by estimate) before the reservation, or
// leave the reserved cores intact at the reservation time.

// reservation is the blocked head job's future claim.
type reservation struct {
	job   string
	cloud string
	at    sim.Time
	need  int
}

// coreRelease is one running job's estimated hand-back of cores.
type coreRelease struct {
	at    sim.Time
	cores int
	cloud string
	job   string
}

// pendingReleases lists running jobs' estimated completions, ordered by
// time then job ID for determinism. Overdue jobs are assumed to finish one
// second from now (the standard EASY treatment of blown estimates).
// Computed once per scheduling cycle — reservation and backfill checks
// share the snapshot.
func (s *Scheduler) pendingReleases() []coreRelease {
	now := s.K.Now()
	var out []coreRelease
	for id, j := range s.jobs {
		if j.State != Running || j.Spec.External() {
			continue
		}
		eta := j.Started + j.estDuration
		if eta <= now {
			eta = now + sim.Second
		}
		out = append(out, coreRelease{at: eta, cores: j.Cores(), cloud: j.Cloud, job: id})
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].at != out[k].at {
			return out[i].at < out[k].at
		}
		return out[i].job < out[k].job
	})
	return out
}

// reserve computes the blocked job's earliest feasible start: per cloud,
// walk estimated releases until free + released covers the demand; keep the
// earliest such instant across clouds. ok is false when even a fully
// drained federation cannot fit the job.
func (s *Scheduler) reserve(j *Job, free map[string]int, releases []coreRelease) (reservation, bool) {
	best := reservation{job: j.ID, need: j.Cores()}
	found := false
	for _, c := range s.B.Clouds() {
		avail := free[c.Name]
		if c.TotalCores < j.Cores() {
			continue
		}
		var at sim.Time
		ok := avail >= j.Cores()
		if !ok {
			for _, r := range releases {
				if r.cloud != c.Name {
					continue
				}
				avail += r.cores
				if avail >= j.Cores() {
					at, ok = r.at, true
					break
				}
			}
		}
		if !ok {
			continue
		}
		if !found || at < best.at || (at == best.at && c.Name < best.cloud) {
			best.cloud, best.at = c.Name, at
			found = true
		}
	}
	return best, found
}

// availableAt returns the cores free on a cloud at time t, assuming running
// jobs release at their estimates.
func availableAt(cloud string, t sim.Time, free map[string]int, releases []coreRelease) int {
	avail := free[cloud]
	for _, r := range releases {
		if r.cloud == cloud && r.at <= t {
			avail += r.cores
		}
	}
	return avail
}

// backfillOK reports whether starting job b on cloud now cannot delay the
// reservation.
func (s *Scheduler) backfillOK(b *Job, cloud string, resv *reservation, free map[string]int, releases []coreRelease) bool {
	if cloud != resv.cloud {
		return true
	}
	speed := 1.0
	for _, c := range s.B.Clouds() {
		if c.Name == cloud && c.Speed > 0 {
			speed = c.Speed
			break
		}
	}
	finish := s.K.Now() + sim.FromSeconds(s.estimateAt(b, cloud, speed))
	if finish <= resv.at {
		return true
	}
	// Still running at the reservation: the reserved cloud must retain
	// enough cores with b's demand subtracted.
	return availableAt(cloud, resv.at, free, releases)-b.Cores() >= resv.need
}
