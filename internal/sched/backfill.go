package sched

import (
	"sort"
	"strconv"

	"repro/internal/capacity"
	"repro/internal/sim"
)

// EASY backfilling, gang-aware: when the next entitled job cannot be
// placed, it gets a reservation — the earliest instant at which the
// placement policy can produce a plan for it, given running jobs' estimated
// completions. The reservation is itself a plan (a multi-cloud capacity
// vector, not a single cloud), and later queue entries may start now only
// if they cannot delay that reserved start: either their plan shares no
// cloud with the reservation, they finish (by estimate) before it, or they
// leave every reserved member's cores intact at the reservation time.
//
// The reservation is not a cycle-local artifact: holdReservation registers
// it as future leases in the backend's capacity ledger, where it persists
// between scheduling cycles. Anything probing the ledger for indefinite
// capacity — a deadline-chasing grow, a spot replacement — sees the claim
// and is denied the reserved cores, closing the grow-vs-reservation race.
// Each cycle drops and recomputes it against fresh runtime estimates.

// reservation is the blocked head job's future claim.
type reservation struct {
	job  string
	jref *Job // the job record, cached so backfillOK skips the map lookup
	plan Plan
	at   sim.Time
	// leases are the claim's per-member-cloud entries in the backend's
	// capacity ledger, live until the next cycle recomputes the reservation
	// or the job dispatches. shaded records whether the claim took leases
	// (false once reservation aging fires) — the adoption key that lets an
	// identical recompute inherit the previous cycle's live leases.
	leases []*capacity.Lease
	shaded bool
}

// membersEqual reports whether two plans place identically.
func membersEqual(a, b []Member) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// holdReservation registers the blocked head job's future claim in the
// capacity ledger (one lease per member cloud) and makes it the
// scheduler's current reservation, replacing any previous one. With shade
// false (reservation aging fired) the claim still gates backfill this cycle
// but takes no ledger leases, so elastic growth stops being shaded by a
// start estimate that keeps slipping.
func (s *Scheduler) holdReservation(r *reservation, cpw int, shade bool) {
	if pr := s.prevResv; pr != nil && pr.job == r.job && pr.at == r.at &&
		pr.shaded == shade && (!shade || len(pr.leases) == len(r.plan.Members)) &&
		membersEqual(pr.plan.Members, r.plan.Members) {
		// Identical claim to the one the previous cycle held: adopt its
		// live ledger leases. Reserve/Release never move the ledger
		// generation or the free vector, so the only observable difference
		// from a release-and-re-reserve round trip is the op count.
		r.leases, r.shaded = pr.leases, pr.shaded
		pr.leases = nil
		s.prevResv = nil
		s.resv = r
		s.m.resvHoldReuses.Inc()
		s.clearBackfillMemos()
		return
	}
	s.releasePrevResv()
	s.dropReservation()
	if shade {
		l := s.B.Ledger()
		r.leases, s.leaseSpare = s.leaseSpare[:0], nil
		for _, m := range r.plan.Members {
			le, err := l.Reserve(m.Cloud, m.Workers*cpw, r.at)
			if err != nil {
				continue // unknown cloud: the snapshot and ledger disagree; skip
			}
			r.leases = append(r.leases, le)
		}
	}
	r.shaded = shade
	s.resv = r
	s.clearBackfillMemos()
}

// clearBackfillMemos drops the cached backfill verdict parts on every memo
// entry: they were computed against a reservation this cycle just replaced.
// Under the cross-cycle seal a memo entry outlives the reservation that its
// bf parts were judged against — the head job can change without moving the
// sealed view (a bare Submit moves neither frees nor epochs) — so the parts
// reset whenever a reservation is (re)established.
func (s *Scheduler) clearBackfillMemos() {
	for i := range s.memos {
		s.memos[i].bfValid = false
	}
}

// trackSlips advances the reservation-aging state for the freshly
// (re)computed head reservation and reports whether aging fired: the same
// job's reserved start moved later Config.maxSlips consecutive times. A
// recompute that holds or improves the start — including a cache hit, which
// proves the inputs were unchanged — breaks the consecutive chain.
func (s *Scheduler) trackSlips(r *reservation, hit bool) bool {
	max := s.cfg.maxSlips()
	if max <= 0 {
		return false
	}
	if r.job != s.agingJob {
		s.agingJob, s.agingAt, s.agingSlips = r.job, r.at, 0
		return false
	}
	if hit || r.at <= s.agingAt {
		s.agingAt, s.agingSlips = r.at, 0
		return false
	}
	s.agingAt = r.at
	s.agingSlips++
	if s.agingSlips < max {
		return false
	}
	s.agingSlips = 0 // aging fired: start a fresh observation window
	s.m.reservationAgings.Inc()
	return true
}

// dropReservation releases the current reservation's ledger leases.
func (s *Scheduler) dropReservation() {
	if s.resv == nil {
		return
	}
	for _, le := range s.resv.leases {
		le.Release()
	}
	s.reclaimLeaseBuf(s.resv.leases)
	s.resv = nil
}

// reclaimLeaseBuf retires a dead reservation's lease slice so the next
// holdReservation reuses its backing array. The slice's leases must already
// be released: the entries are overwritten, never re-read.
func (s *Scheduler) reclaimLeaseBuf(buf []*capacity.Lease) {
	if cap(buf) > cap(s.leaseSpare) {
		s.leaseSpare = buf[:0]
	}
}

// resvCache is the blocked head's reservation recompute cache. reserve()
// is a pure function of the job, the cycle's working free vector, the
// release snapshot, and the placement policy's inputs — so a cycle in
// which none of those moved can reuse the previous answer instead of
// walking every release instant through the policy again. Validity is
// keyed on the job ID, the release-list epoch (bumped by every insert,
// remove, and pattern event), the ledger generation, and a byte-compare of
// the free vector; it never engages while any release entry is overdue
// (the overdue remap folds the current time into the snapshot) or for
// policies that draw randomness (see cacheablePolicy).
type resvCache struct {
	ok   bool
	job  string
	ver  uint64
	gen  uint64
	free []int
	sums []int // relSumAtResv at the reservation instant
	plan Plan
	at   sim.Time
}

// cacheablePolicy marks placement policies whose Choose is a pure function
// of (job, view) — no RNG draws, no mutable internal state. Only these let
// the reservation recompute cache engage (skipping a RandomPlacement walk
// would desynchronize the kernel RNG stream).
type cacheablePolicy interface{ PureChoose() bool }

// cachedReserve returns the head job's reservation, reusing the cached one
// when provably unchanged and otherwise recomputing it from a fresh release
// snapshot (taken lazily into *releases). On a hit the per-cloud release
// sums at the reservation instant are restored from the cache too, so the
// backfill checks downstream see exactly the state a recompute would have
// produced.
func (s *Scheduler) cachedReserve(j *Job, v *CloudView, releases *[]coreRelease, have *bool) (reservation, bool, bool) {
	if s.resvCacheValid(j, v) {
		s.m.resvCacheHits.Inc()
		s.relSumAtResv = append(s.relSumAtResv[:0], s.rcache.sums...)
		return reservation{job: j.ID, jref: j, plan: s.rcache.plan, at: s.rcache.at}, true, true
	}
	// (Re)take the release snapshot lazily: a dispatch since the last
	// snapshot (possible when an earlier reservation attempt failed) adds a
	// release the next reserve() walk must see — exactly the old
	// rebuild-per-blocked-job behavior, minus the rebuilds whose inputs
	// could not have changed.
	if !*have || s.relSnapDirty {
		*releases = s.snapshotReleases()
		*have, s.relSnapDirty = true, false
	}
	r, ok := s.reserve(j, v, *releases)
	return r, ok, false
}

// resvCacheValid reports whether the cached reservation may stand in for a
// recompute this cycle.
func (s *Scheduler) resvCacheValid(j *Job, v *CloudView) bool {
	rc := &s.rcache
	if !rc.ok || rc.job != j.ID || rc.ver != s.resvEpoch || rc.gen != s.B.Ledger().Generation() {
		return false
	}
	if cp, ok := s.cfg.Placement.(cacheablePolicy); !ok || !cp.PureChoose() {
		return false
	}
	if len(s.releases) > 0 && s.releases[0].at <= s.K.Now() {
		return false // overdue entries remap to now+1s: time-dependent
	}
	if len(rc.free) != len(v.free) {
		return false
	}
	for i, f := range v.free {
		if rc.free[i] != f {
			return false
		}
	}
	return true
}

// cacheReservation records a freshly computed reservation (and the cycle's
// release sums at its instant) for reuse by unchanged cycles.
func (s *Scheduler) cacheReservation(j *Job, v *CloudView, r *reservation) {
	rc := &s.rcache
	rc.ok = true
	rc.job = j.ID
	rc.ver = s.resvEpoch
	rc.gen = s.B.Ledger().Generation()
	rc.free = append(rc.free[:0], v.free...)
	rc.sums = append(rc.sums[:0], s.relSumAtResv...)
	rc.plan = r.plan
	rc.at = r.at
}

// coreRelease is one running job's estimated hand-back of cores on one
// member cloud (a spanning job contributes one release per member).
type coreRelease struct {
	at    sim.Time
	cores int
	// cloudRank indexes the scheduler's sorted cloud-name table
	// (s.relClouds); jobKey packs the job ID's digits so uint64 order
	// equals ID-string order (see relJobKey). Both stand in for the
	// strings the entry used to carry: a pointer-free entry makes every
	// release-list insert, remove, and snapshot copy a plain memmove with
	// no write barriers and leaves the GC nothing to scan in the list —
	// the largest single barrier source on the steady-state hot path.
	cloudRank int32
	jobKey    uint64
}

// relJobKeyMax bounds the job sequence numbers relJobKey can order: eight
// decimal digits fill the uint64 left-aligned.
const relJobKeyMax = 100_000_000

// relJobKey maps a job sequence number to a key whose uint64 order equals
// the lexicographic order of the job's ID string. IDs are "J" + decimal
// digits, so comparing IDs is comparing digit strings; left-aligning the
// digit bytes in a big-endian word reproduces that order exactly (padding
// bytes are 0x00 < '0', so a prefix sorts before its extensions, and equal
// lengths compare digit-by-digit).
func relJobKey(seq int) uint64 {
	if seq >= relJobKeyMax {
		// 100M jobs in one scheduler instance is far outside the design
		// envelope (the archive alone would be tens of GB); fail loud
		// rather than silently misorder the release list.
		panic("sched: job sequence exceeds release-key capacity")
	}
	var buf [8]byte
	n := len(strconv.AppendInt(buf[:0], int64(seq), 10))
	key := uint64(0)
	for i := 0; i < n; i++ {
		key |= uint64(buf[i]) << (8 * (7 - i))
	}
	return key
}

// releaseLess is the canonical release order: time, then job ID, then cloud
// for determinism — both the maintained list and the per-cycle snapshot use
// it. jobKey and cloudRank compare exactly like the strings they encode.
func releaseLess(a, b coreRelease) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.jobKey != b.jobKey {
		return a.jobKey < b.jobKey
	}
	return a.cloudRank < b.cloudRank
}

// cloudRankFor returns the cloud's position in the sorted rank table,
// inserting it on first sight. An insert shifts the ranks of every name
// after it, so all live release entries — the maintained list and both
// snapshot buffers (cycle-local snapshots alias them) — are remapped in
// the same step.
func (s *Scheduler) cloudRankFor(name string) int32 {
	i := sort.SearchStrings(s.relClouds, name)
	if i < len(s.relClouds) && s.relClouds[i] == name {
		return int32(i)
	}
	s.relClouds = append(s.relClouds, "")
	copy(s.relClouds[i+1:], s.relClouds[i:])
	s.relClouds[i] = name
	for _, rel := range [][]coreRelease{s.releases, s.relScratch, s.overScratch} {
		for k := range rel {
			if rel[k].cloudRank >= int32(i) {
				rel[k].cloudRank++
			}
		}
	}
	return int32(i)
}

// relCloudName resolves a release entry's cloud name from its rank.
func (s *Scheduler) relCloudName(rank int32) string { return s.relClouds[rank] }

// insertReleases adds one entry per plan member at the job's estimated
// completion, keeping s.releases sorted — the maintained counterpart of the
// former rebuild-and-sort-per-blocked-cycle pendingReleases scan over every
// job ever submitted. External jobs contribute nothing (their capacity is
// caller-owned and never returns to the pool).
func (s *Scheduler) insertReleases(j *Job) {
	if j.Spec.External() {
		return
	}
	eta := j.Started + j.estDuration
	cpw := j.coresPerWorker()
	key := relJobKey(j.seq)
	for _, m := range j.Plan.Members {
		e := coreRelease{at: eta, cores: m.Workers * cpw, cloudRank: s.cloudRankFor(m.Cloud), jobKey: key}
		i := sort.Search(len(s.releases), func(k int) bool { return releaseLess(e, s.releases[k]) })
		s.releases = append(s.releases, coreRelease{})
		copy(s.releases[i+1:], s.releases[i:])
		s.releases[i] = e
	}
	s.relSnapDirty = true
	s.resvEpoch++
}

// removeReleases drops the job's entries (contiguous: they share eta and
// job ID) when it completes.
func (s *Scheduler) removeReleases(j *Job) {
	eta := j.Started + j.estDuration
	key := relJobKey(j.seq)
	probe := coreRelease{at: eta, jobKey: key, cloudRank: -1}
	i := sort.Search(len(s.releases), func(k int) bool { return !releaseLess(s.releases[k], probe) })
	n := i
	for n < len(s.releases) && s.releases[n].at == eta && s.releases[n].jobKey == key {
		n++
	}
	if n > i {
		s.releases = append(s.releases[:i], s.releases[n:]...)
		s.resvEpoch++
	}
}

// snapshotReleases returns this cycle's release view with the standard EASY
// overdue remap: entries at or before now are assumed to release one second
// from now. The maintained list is already sorted; only the overdue prefix
// needs reordering — it is remapped to now+1s, re-sorted by (job, cloud),
// and merged with any entries genuinely estimated at that instant,
// reproducing exactly the order the full rebuild used to produce. The
// result lives in scheduler scratch, valid for the current cycle.
func (s *Scheduler) snapshotReleases() []coreRelease {
	now := s.K.Now()
	rel := s.releases
	k := sort.Search(len(rel), func(i int) bool { return rel[i].at > now })
	if k == 0 {
		// Nothing overdue: the maintained order is the answer — but copy it
		// out, because backfill dispatches later this cycle insert into
		// s.releases in place while the snapshot may still be read (a later
		// blocked job after a failed reservation).
		s.relScratch = append(s.relScratch[:0], rel...)
		return s.relScratch
	}
	remap := now + sim.Second
	over := append(s.overScratch[:0], rel[:k]...)
	s.overScratch = over
	for i := range over {
		over[i].at = remap
	}
	sort.Slice(over, func(i, j int) bool { return releaseLess(over[i], over[j]) })
	out := s.relScratch[:0]
	// Entries strictly between now and the remap instant keep their spot…
	rest := rel[k:]
	for len(rest) > 0 && rest[0].at < remap {
		out = append(out, rest[0])
		rest = rest[1:]
	}
	// …then the remapped overdue entries merge with genuine remap-instant
	// entries, then the tail follows unchanged.
	for len(over) > 0 && len(rest) > 0 && rest[0].at == remap {
		if releaseLess(rest[0], over[0]) {
			out = append(out, rest[0])
			rest = rest[1:]
		} else {
			out = append(out, over[0])
			over = over[1:]
		}
	}
	out = append(out, over...)
	out = append(out, rest...)
	s.relScratch = out
	return out
}

// reserve computes the blocked job's earliest feasible start: walk the
// estimated release instants in order and, at each, ask the placement
// policy whether a plan exists with the capacity available by then. The
// first instant that yields a plan becomes the reservation. ok is false
// when even a fully drained federation yields no plan (either capacity
// shrank below the gang, or a single-cloud policy faces a spanning-only
// job).
func (s *Scheduler) reserve(j *Job, v *CloudView, releases []coreRelease) (reservation, bool) {
	if s.pool != nil && s.memoable && len(releases) >= parallelResvMin {
		if sc, ok := s.cfg.Placement.(scratchChooser); ok {
			return s.reservePar(j, v, releases, sc)
		}
	}
	av := &s.resvView
	av.shareIndex(v)
	i := 0
	for i < len(releases) {
		at := releases[i].at
		for i < len(releases) && releases[i].at == at {
			if p := av.Pos(s.relCloudName(releases[i].cloudRank)); p >= 0 {
				av.free[p] += releases[i].cores
			}
			i++
		}
		// Instants whose accumulated frees provably still cannot host the
		// gang skip the policy walk: the precheck is one pass over the free
		// vector, so a long release list costs O(instants × clouds) until
		// the first genuinely viable instant, not O(instants × Choose).
		if s.provablyEmpty(j, av) {
			continue
		}
		if plan := s.cfg.Placement.Choose(s, j, av); !plan.Empty() {
			return reservation{job: j.ID, jref: j, plan: plan, at: at}, true
		}
	}
	return reservation{}, false
}

// sumReleasesAt fills the per-cloud release totals at the reservation
// instant (s.relSumAtResv, indexed like the view) once per cycle, so every
// backfill check reads them O(members) instead of rescanning the release
// list per candidate.
func (s *Scheduler) sumReleasesAt(v *CloudView, releases []coreRelease, at sim.Time) {
	s.relSumAtResv = s.relSumAtResv[:0]
	for range v.Clouds {
		s.relSumAtResv = append(s.relSumAtResv, 0)
	}
	for _, r := range releases {
		if r.at > at {
			break // sorted by time: nothing later counts
		}
		if p := v.Pos(s.relCloudName(r.cloudRank)); p >= 0 {
			s.relSumAtResv[p] += r.cores
		}
	}
}

// backfillOK reports whether starting job b under plan now cannot delay the
// reservation.
func (s *Scheduler) backfillOK(b *Job, plan Plan, resv *reservation, v *CloudView) bool {
	// Memo fast path: the cycle scan hands over the plan choosePlan just
	// returned, so when a memo entry still matches b's shape the plan IS the
	// memoized one, and the share/capacity verdicts — fixed while the memo
	// instance lives — are computed once per shape instead of per candidate.
	if s.memoable && b.Spec.InputFractions == nil {
		if m := s.memoLookup(b, s.boostedTenant(b)); m != nil {
			return s.backfillOKMemo(b, m, resv, v)
		}
	}
	return s.backfillFits(b, plan, resv, v)
}

// backfillFits is backfillOK's arithmetic without the memo machinery: a
// pure function of the job, the plan, the reservation, the frozen view,
// and the cycle's per-cloud release sums at the reservation instant
// (s.relSumAtResv, fixed while the reservation stands). Touching no
// mutable scheduler state, it is the form the parallel backfill scan's
// workers judge candidates with (speculateBackfill); the verdict equals
// backfillOKMemo's — !shared ∨ finish≤resv.at ∨ capOK — by construction.
func (s *Scheduler) backfillFits(b *Job, plan Plan, resv *reservation, v *CloudView) bool {
	shared := false
	for _, m := range plan.Members {
		if resv.plan.WorkersOn(m.Cloud) > 0 {
			shared = true
			break
		}
	}
	if !shared {
		return true
	}
	finish := s.K.Now() + sim.FromSeconds(s.estimateAt(b, plan, v))
	if finish <= resv.at {
		return true
	}
	// Still running at the reservation: every shared member cloud must
	// retain enough cores with b's slice subtracted. Available-at-resv is
	// the live working free plus the precomputed release sum.
	bcpw := b.coresPerWorker()
	rcpw := 1
	if resv.jref != nil {
		rcpw = resv.jref.coresPerWorker()
	}
	for _, m := range plan.Members {
		need := resv.plan.WorkersOn(m.Cloud) * rcpw
		if need == 0 {
			continue
		}
		p := v.Pos(m.Cloud)
		if p < 0 {
			return false
		}
		if v.free[p]+s.relSumAtResv[p]-m.Workers*bcpw < need {
			return false
		}
	}
	return true
}

// backfillOKMemo is backfillOK against the memoized plan: the shared-cloud
// and capacity verdicts depend only on the plan shape, the reservation
// (fixed per cycle), and the working free vector (fixed between dispatches,
// the memo's own validity window), so they are cached on the memo; only the
// per-job finish check recomputes, from the cached estimate parts. The
// boolean result is exactly backfillOK's: !shared ∨ finish≤resv.at ∨ capOK.
func (s *Scheduler) backfillOKMemo(b *Job, m *planMemo, resv *reservation, v *CloudView) bool {
	if !m.bfValid {
		m.bfShared, m.bfCapOK = false, false
		for _, mm := range m.members {
			if resv.plan.WorkersOn(mm.Cloud) > 0 {
				m.bfShared = true
				break
			}
		}
		if m.bfShared {
			rcpw := 1
			if resv.jref != nil {
				rcpw = resv.jref.coresPerWorker()
			}
			m.bfCapOK = true
			for _, mm := range m.members {
				need := resv.plan.WorkersOn(mm.Cloud) * rcpw
				if need == 0 {
					continue
				}
				p := v.Pos(mm.Cloud)
				if p < 0 || v.free[p]+s.relSumAtResv[p]-mm.Workers*m.cpw < need {
					m.bfCapOK = false
					break
				}
			}
		}
		m.bfValid = true
	}
	if !m.bfShared || m.bfCapOK {
		return true
	}
	finish := s.K.Now() + sim.FromSeconds(s.estimateAtMemo(b, m, v))
	return finish <= resv.at
}
