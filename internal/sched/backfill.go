package sched

import (
	"sort"

	"repro/internal/capacity"
	"repro/internal/sim"
)

// EASY backfilling, gang-aware: when the next entitled job cannot be
// placed, it gets a reservation — the earliest instant at which the
// placement policy can produce a plan for it, given running jobs' estimated
// completions. The reservation is itself a plan (a multi-cloud capacity
// vector, not a single cloud), and later queue entries may start now only
// if they cannot delay that reserved start: either their plan shares no
// cloud with the reservation, they finish (by estimate) before it, or they
// leave every reserved member's cores intact at the reservation time.
//
// The reservation is not a cycle-local artifact: holdReservation registers
// it as future leases in the backend's capacity ledger, where it persists
// between scheduling cycles. Anything probing the ledger for indefinite
// capacity — a deadline-chasing grow, a spot replacement — sees the claim
// and is denied the reserved cores, closing the grow-vs-reservation race.
// Each cycle drops and recomputes it against fresh runtime estimates.

// reservation is the blocked head job's future claim.
type reservation struct {
	job  string
	plan Plan
	at   sim.Time
	// leases are the claim's per-member-cloud entries in the backend's
	// capacity ledger, live until the next cycle recomputes the reservation
	// or the job dispatches.
	leases []*capacity.Lease
}

// holdReservation registers the blocked head job's future claim in the
// capacity ledger (one lease per member cloud) and makes it the
// scheduler's current reservation, replacing any previous one.
func (s *Scheduler) holdReservation(r *reservation, cpw int) {
	s.dropReservation()
	l := s.B.Ledger()
	for _, m := range r.plan.Members {
		le, err := l.Reserve(m.Cloud, m.Workers*cpw, r.at)
		if err != nil {
			continue // unknown cloud: the snapshot and ledger disagree; skip
		}
		r.leases = append(r.leases, le)
	}
	s.resv = r
}

// dropReservation releases the current reservation's ledger leases.
func (s *Scheduler) dropReservation() {
	if s.resv == nil {
		return
	}
	for _, le := range s.resv.leases {
		le.Release()
	}
	s.resv = nil
}

// coreRelease is one running job's estimated hand-back of cores on one
// member cloud (a spanning job contributes one release per member).
type coreRelease struct {
	at    sim.Time
	cores int
	cloud string
	job   string
}

// pendingReleases lists running jobs' estimated completions, ordered by
// time then job ID for determinism. Overdue jobs are assumed to finish one
// second from now (the standard EASY treatment of blown estimates).
// Computed once per scheduling cycle — reservation and backfill checks
// share the snapshot.
func (s *Scheduler) pendingReleases() []coreRelease {
	now := s.K.Now()
	var out []coreRelease
	for id, j := range s.jobs {
		if j.State != Running || j.Spec.External() {
			continue
		}
		eta := j.Started + j.estDuration
		if eta <= now {
			eta = now + sim.Second
		}
		cpw := j.coresPerWorker()
		for _, m := range j.Plan.Members {
			out = append(out, coreRelease{at: eta, cores: m.Workers * cpw, cloud: m.Cloud, job: id})
		}
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].at != out[k].at {
			return out[i].at < out[k].at
		}
		if out[i].job != out[k].job {
			return out[i].job < out[k].job
		}
		return out[i].cloud < out[k].cloud
	})
	return out
}

// reserve computes the blocked job's earliest feasible start: walk the
// estimated release instants in order and, at each, ask the placement
// policy whether a plan exists with the capacity available by then. The
// first instant that yields a plan becomes the reservation. ok is false
// when even a fully drained federation yields no plan (either capacity
// shrank below the gang, or a single-cloud policy faces a spanning-only
// job).
func (s *Scheduler) reserve(j *Job, free map[string]int, releases []coreRelease, snap []CloudInfo) (reservation, bool) {
	avail := make(map[string]int, len(free))
	for name, n := range free {
		avail[name] = n
	}
	i := 0
	for i < len(releases) {
		at := releases[i].at
		for i < len(releases) && releases[i].at == at {
			avail[releases[i].cloud] += releases[i].cores
			i++
		}
		if plan := s.cfg.Placement.Choose(s, j, snap, avail); !plan.Empty() {
			return reservation{job: j.ID, plan: plan, at: at}, true
		}
	}
	return reservation{}, false
}

// availableAt returns the cores free on a cloud at time t, assuming running
// jobs release at their estimates.
func availableAt(cloud string, t sim.Time, free map[string]int, releases []coreRelease) int {
	avail := free[cloud]
	for _, r := range releases {
		if r.cloud == cloud && r.at <= t {
			avail += r.cores
		}
	}
	return avail
}

// backfillOK reports whether starting job b under plan now cannot delay the
// reservation.
func (s *Scheduler) backfillOK(b *Job, plan Plan, resv *reservation, free map[string]int, releases []coreRelease, snap []CloudInfo) bool {
	shared := false
	for _, m := range plan.Members {
		if resv.plan.WorkersOn(m.Cloud) > 0 {
			shared = true
			break
		}
	}
	if !shared {
		return true
	}
	finish := s.K.Now() + sim.FromSeconds(s.estimateAt(b, plan, snap))
	if finish <= resv.at {
		return true
	}
	// Still running at the reservation: every shared member cloud must
	// retain enough cores with b's slice subtracted.
	bcpw := b.coresPerWorker()
	rcpw := 1
	if rj := s.jobs[resv.job]; rj != nil {
		rcpw = rj.coresPerWorker()
	}
	for _, m := range plan.Members {
		need := resv.plan.WorkersOn(m.Cloud) * rcpw
		if need == 0 {
			continue
		}
		if availableAt(m.Cloud, resv.at, free, releases)-m.Workers*bcpw < need {
			return false
		}
	}
	return true
}
