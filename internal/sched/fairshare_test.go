package sched

import (
	"testing"

	"repro/internal/sim"
)

// firstWave returns how many of ids are among the first `width` jobs
// dispatched at or after t0 (by start time order across both slices).
func firstWave(s *Scheduler, ids []string, t0 sim.Time, cutoff sim.Time) int {
	n := 0
	for _, id := range ids {
		if ji, _ := s.Poll(id); ji.State != Queued && ji.Started >= t0 && ji.Started < cutoff {
			n++
		}
	}
	return n
}

// fairShareDecayScenario: tenant "active" works alone, then both tenants
// submit a backlog after a long gap. Returns how many of each tenant's jobs
// started in the first scheduling wave after the gap.
func fairShareDecayScenario(t *testing.T, cfg Config) (activeFirst, returningFirst int) {
	t.Helper()
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 8, 1, 0.10) // two 4-core jobs at a time
	s := New(b, cfg)
	s.AddTenant("active", 1)
	s.AddTenant("returning", 1)
	// Phase 1: the active tenant runs 20 jobs alone (2000 core-seconds);
	// the returning tenant is idle the whole time.
	spec := JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 100}
	submitN(t, s, "active", 20, spec)
	// Phase 2: after a long idle gap both tenants submit a backlog at once.
	const gap = 10000 * sim.Second
	var active, returning []string
	k.Schedule(gap, func() {
		active = submitN(t, s, "active", 8, spec)
		returning = submitN(t, s, "returning", 8, spec)
	})
	k.RunUntil(gap + 250*sim.Second) // three waves of two 100-second slots
	cutoff := gap + 250*sim.Second
	return firstWave(s, active, gap, cutoff), firstWave(s, returning, gap, cutoff)
}

// TestFairShareDecayRehabilitatesReturningTenant: without decay the
// returning tenant's banked zero usage lets it monopolize the cycles after
// its return; with a half-life much shorter than the idle gap both tenants
// are served evenly from the first post-gap wave.
func TestFairShareDecayRehabilitatesReturningTenant(t *testing.T) {
	// Baseline (cumulative usage): the returning tenant must win every slot
	// until it catches up 2000 core-seconds — the starvation the ROADMAP
	// flags. Three waves of two slots: active gets none.
	a0, r0 := fairShareDecayScenario(t, Config{})
	if a0 != 0 || r0 != 6 {
		t.Fatalf("no-decay baseline: active=%d returning=%d of first 6 starts, want 0/6 (monopoly)", a0, r0)
	}
	// With a 500 s half-life the 10000 s gap decays the active tenant's
	// usage by 2^-20: both start near parity and the waves interleave.
	a1, r1 := fairShareDecayScenario(t, Config{UsageHalfLife: 500 * sim.Second})
	if a1 != 3 || r1 != 3 {
		t.Fatalf("decay: active=%d returning=%d of first 6 starts, want 3/3 (parity)", a1, r1)
	}
}

// TestDecayIsHalfLifeExact: usage halves per half-life interval.
func TestDecayIsHalfLifeExact(t *testing.T) {
	k := sim.NewKernel(1)
	b := saturatedBackend(k)
	s := New(b, Config{UsageHalfLife: 100 * sim.Second})
	tn := s.AddTenant("t", 1)
	tn.usage = 800
	tn.usageAt = 0
	k.RunUntil(300 * sim.Second)
	s.decay(tn)
	if tn.usage < 99.9 || tn.usage > 100.1 {
		t.Fatalf("usage after 3 half-lives = %v, want ~100", tn.usage)
	}
}

// TestSharesAccountResizeEvents: a job that loses a worker mid-run is
// credited for the cores it actually held over time — 4 cores for the first
// half, 2 for the second — not its nominal size for the whole runtime.
func TestSharesAccountResizeEvents(t *testing.T) {
	k := sim.NewKernel(1)
	b := saturatedBackend(k)
	s := New(b, Config{DisableSpotReplacement: true})
	s.AddTenant("t", 1)
	id := submitN(t, s, "t", 1, JobSpec{Workers: 2, CoresPerWorker: 2,
		EstimateSeconds: 300, Spot: true, Bid: 0.05})[0]
	k.Schedule(150*sim.Second, func() {
		s.Notify(Event{Kind: EventSpotRevoked, Job: id, Cloud: "c0"})
	})
	k.Run()
	// 4 cores x 150 s + 2 cores x 150 s = 900 core-seconds; the old
	// accounting would have mis-attributed 4 x 300 = 1200.
	if got := s.DeliveredCoreSeconds("t"); got != 900 {
		t.Fatalf("delivered %v core-seconds, want 900 (resize-aware)", got)
	}
}

// TestSharesAccountGrowth: elastic growth is credited only from the moment
// the extra capacity arrived.
func TestSharesAccountGrowth(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("c0", 16, 1, 0.10)
	s := New(b, Config{})
	s.AddTenant("t", 1)
	id := submitN(t, s, "t", 1, JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 200})[0]
	k.Schedule(100*sim.Second, func() {
		j := s.jobByID(id)
		s.m.growRequests.Inc()
		s.growOne(j, &j.deadlineGrown)
	})
	k.Run()
	// 4 cores x 100 s + 6 cores x 100 s = 1000 core-seconds.
	if got := s.DeliveredCoreSeconds("t"); got != 1000 {
		t.Fatalf("delivered %v core-seconds, want 1000 (growth credited from arrival)", got)
	}
}

// TestDecayTrueUpDoesNotBankNegativeUsage: under decay, completing a job
// whose charge has already decayed inside usage must not drive usage
// permanently negative (which would make the tenant win every future
// cycle). Regression: trueUp used to subtract the full undecayed charge.
func TestDecayTrueUpDoesNotBankNegativeUsage(t *testing.T) {
	k := sim.NewKernel(1)
	b := saturatedBackend(k)
	s := New(b, Config{UsageHalfLife: 100 * sim.Second})
	s.AddTenant("t", 1)
	// A 1000 s job: its dispatch charge decays by 2^-10 before completion.
	submitN(t, s, "t", 1, JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 1000})
	k.Run()
	tn := s.tenants["t"]
	s.decay(tn)
	if tn.usage < 0 {
		t.Fatalf("usage went negative after true-up under decay: %v", tn.usage)
	}
	if tn.usage == 0 {
		t.Fatal("usage zero: the completed work left no recent-usage signal at all")
	}
}
