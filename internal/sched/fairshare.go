package sched

import (
	"sort"

	"repro/internal/sim"
)

// Tenant is one share-holder in the federation: a weighted queue of jobs
// plus the usage accounting that drives arbitration.
type Tenant struct {
	Name   string
	Weight float64

	queue []*Job
	// usage is charged core-seconds: an estimate is charged at dispatch
	// (so one tenant cannot capture the whole federation within a single
	// cycle) and trued up to actual duration at completion.
	usage float64
	// delivered is actual core-seconds of finished work, the quantity
	// Shares reports.
	delivered float64
}

// AddTenant registers a tenant with the given weight (replacing the weight
// if the tenant exists). Weight <= 0 is treated as 1.
func (s *Scheduler) AddTenant(name string, weight float64) *Tenant {
	if weight <= 0 {
		weight = 1
	}
	t := s.tenants[name]
	if t == nil {
		t = &Tenant{Name: name}
		s.tenants[name] = t
	}
	t.Weight = weight
	return t
}

// Tenants returns tenant names, sorted.
func (s *Scheduler) Tenants() []string {
	out := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TenantQueueLen returns the number of queued jobs for one tenant.
func (s *Scheduler) TenantQueueLen(name string) int {
	if t := s.tenants[name]; t != nil {
		return len(t.queue)
	}
	return 0
}

// nextTenant picks the tenant with the lowest usage-per-weight among those
// with an unexamined queued job (idx tracks this cycle's scan position).
// Ties break by name for determinism.
func (s *Scheduler) nextTenant(idx map[string]int) *Tenant {
	var best *Tenant
	var bestKey float64
	for name, t := range s.tenants {
		if idx[name] >= len(t.queue) {
			continue
		}
		key := t.usage / t.Weight
		if best == nil || key < bestKey || (key == bestKey && name < best.Name) {
			best, bestKey = t, key
		}
	}
	return best
}

// charge books the dispatch-time estimate against the tenant's share.
// Elastic growth (deadline chasing, spot replacement) is deliberately not
// charged: replacement capacity restores the job's entitlement, and
// deadline growth is the tenant trading cloud cost for time — it is billed
// by the cloud, not by the share.
func (s *Scheduler) charge(t *Tenant, j *Job, estSeconds float64) {
	j.charged = float64(j.Cores()) * estSeconds
	t.usage += j.charged
}

// trueUp replaces the dispatch estimate with the actual core-seconds.
func (s *Scheduler) trueUp(t *Tenant, j *Job, now sim.Time) {
	actual := float64(j.Cores()) * (now - j.Started).Seconds()
	t.usage += actual - j.charged
	t.delivered += actual
}

// Shares returns each tenant's fraction of delivered core-seconds
// (including running jobs' elapsed time), the quantity that converges to
// the configured weights under saturation.
func (s *Scheduler) Shares() map[string]float64 {
	now := s.K.Now()
	raw := make(map[string]float64, len(s.tenants))
	for name, t := range s.tenants {
		raw[name] = t.delivered
	}
	for _, j := range s.jobs {
		if j.State == Running {
			raw[j.Spec.Tenant] += float64(j.Cores()) * (now - j.Started).Seconds()
		}
	}
	var total float64
	for _, v := range raw {
		total += v
	}
	out := make(map[string]float64, len(raw))
	for name, v := range raw {
		if total > 0 {
			out[name] = v / total
		} else {
			out[name] = 0
		}
	}
	return out
}

// EntitledShares returns the weight-proportional target shares.
func (s *Scheduler) EntitledShares() map[string]float64 {
	var total float64
	for _, t := range s.tenants {
		total += t.Weight
	}
	out := make(map[string]float64, len(s.tenants))
	for name, t := range s.tenants {
		if total > 0 {
			out[name] = t.Weight / total
		}
	}
	return out
}

// DeliveredCoreSeconds returns a tenant's finished core-seconds.
func (s *Scheduler) DeliveredCoreSeconds(name string) float64 {
	if t := s.tenants[name]; t != nil {
		return t.delivered
	}
	return 0
}
