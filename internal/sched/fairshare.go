package sched

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// Tenant is one share-holder in the federation: a weighted queue of jobs
// plus the usage accounting that drives arbitration.
type Tenant struct {
	Name   string
	Weight float64

	queue []*Job
	// usage is charged core-seconds: an estimate is charged at dispatch
	// (so one tenant cannot capture the whole federation within a single
	// cycle) and trued up to actual duration at completion. With
	// Config.UsageHalfLife set it decays exponentially (see decay), so the
	// arbiter weighs recent consumption, not all of history.
	usage float64
	// usageAt is the instant usage was last decayed to.
	usageAt sim.Time
	// delivered is actual core-seconds of finished work, the quantity
	// Shares reports.
	delivered float64
	// scan is this cycle's queue scan position (the former per-cycle idx
	// map); scanCycle tells stale positions from a previous cycle apart.
	scan      int
	scanCycle int
	// boosted mirrors "patternOf[name] is all-to-all or ring" — the only
	// question placement scoring asks of the pattern map, kept here so the
	// per-candidate scoring loops skip the string map lookup.
	boosted bool
	// shard and idx are the tenant's partition and position in the
	// name-sorted tenant list under the parallel core's sharding (stamped by
	// rebuildShards; meaningless while shardsDirty).
	shard, idx int
}

// decay brings the tenant's charged usage forward to now under the
// configured half-life: usage halves every UsageHalfLife of wall time, so a
// tenant idle for several half-lives returns near parity instead of with a
// banked deficit that would let it monopolize the next cycles.
func (s *Scheduler) decay(t *Tenant) {
	now := s.K.Now()
	hl := s.cfg.UsageHalfLife
	if hl > 0 && now > t.usageAt && t.usage != 0 {
		// Decay magnitude regardless of sign, so a (transient) negative
		// balance also relaxes toward parity instead of freezing.
		t.usage *= math.Exp2(-float64(now-t.usageAt) / float64(hl))
	}
	t.usageAt = now
}

// AddTenant registers a tenant with the given weight (replacing the weight
// if the tenant exists). Weight <= 0 is treated as 1.
func (s *Scheduler) AddTenant(name string, weight float64) *Tenant {
	if weight <= 0 {
		weight = 1
	}
	t := s.tenants[name]
	if t == nil {
		t = &Tenant{Name: name}
		if pt := s.patternOf[name]; pt == PatternAllToAll || pt == PatternRing {
			t.boosted = true // a detection can precede the tenant's first job
		}
		s.tenants[name] = t
		// Keep the scan list name-sorted: nextTenant's in-order walk is what
		// makes equal fair-share keys break ties by name.
		i := sort.Search(len(s.tenantList), func(k int) bool { return s.tenantList[k].Name > name })
		s.tenantList = append(s.tenantList, nil)
		copy(s.tenantList[i+1:], s.tenantList[i:])
		s.tenantList[i] = t
		s.shardsDirty = true // the shard partition must cover the new tenant
	}
	t.Weight = weight
	return t
}

// Tenants returns tenant names, sorted.
func (s *Scheduler) Tenants() []string {
	out := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TenantQueueLen returns the number of queued jobs for one tenant.
func (s *Scheduler) TenantQueueLen(name string) int {
	if t := s.tenants[name]; t != nil {
		return len(t.queue)
	}
	return 0
}

// nextTenant picks the tenant with the lowest usage-per-weight among those
// with an unexamined queued job (each tenant's scan field tracks this
// cycle's position). The walk is over the name-sorted tenant list — no map
// iteration — and keeps the first of equal keys, which is exactly the
// former break-ties-by-name rule.
// Usage is decayed once per cycle (decayTenants) rather than per call:
// virtual time does not advance inside a cycle, so re-decaying on every
// scan step of the same cycle is a no-op by construction.
func (s *Scheduler) nextTenant() *Tenant {
	var best *Tenant
	var bestKey float64
	for _, t := range s.tenantList {
		if t.scanCycle != s.cycleNum {
			t.scan, t.scanCycle = 0, s.cycleNum
		}
		if t.scan >= len(t.queue) {
			continue
		}
		key := t.usage / t.Weight
		if best == nil || key < bestKey {
			best, bestKey = t, key
		}
	}
	return best
}

// decayTenants brings every tenant's usage forward to the cycle's instant,
// so the scan loop's arbitration keys are decay-consistent without a decay
// call per nextTenant step.
func (s *Scheduler) decayTenants() {
	for _, t := range s.tenantList {
		s.decay(t)
	}
}

// charge books the dispatch-time estimate against the tenant's share.
// Elastic growth (deadline chasing, spot replacement) is deliberately not
// charged: replacement capacity restores the job's entitlement, and
// deadline growth is the tenant trading cloud cost for time — it is billed
// by the cloud, not by the share.
func (s *Scheduler) charge(t *Tenant, j *Job, estSeconds float64) {
	s.decay(t)
	j.charged = float64(j.Cores()) * estSeconds
	t.usage += j.charged
}

// trueUp replaces the dispatch estimate with the actual core-seconds the
// job held over time: the per-resize ledger (runCoreSeconds) accounts
// grow/shrink at the size the job had when the time elapsed, instead of
// retroactively applying the final size to the whole runtime. Under decay
// the charge has itself decayed inside t.usage since dispatch, so the
// amount backed out is the charge's decayed remainder — subtracting the
// full original would drive usage permanently negative.
func (s *Scheduler) trueUp(t *Tenant, j *Job, now sim.Time) {
	s.decay(t)
	charged := j.charged
	if hl := s.cfg.UsageHalfLife; hl > 0 && now > j.Started {
		charged *= math.Exp2(-float64(now-j.Started) / float64(hl))
	}
	actual := j.runCoreSeconds(now)
	t.usage += actual - charged
	t.delivered += actual
}

// Shares returns each tenant's fraction of delivered core-seconds
// (including running jobs' elapsed time at the sizes they actually held),
// the quantity that converges to the configured weights under saturation.
// Finished work is read from the per-tenant delivered aggregates and live
// work from the running list — no walk over archived history.
func (s *Scheduler) Shares() map[string]float64 {
	now := s.K.Now()
	var raw map[string]float64
	if s.pool != nil && len(s.tenantList) >= shardMinTenants && s.trefsResolved() {
		raw = s.rawSharesSharded(now)
	} else {
		raw = make(map[string]float64, len(s.tenants))
		for name, t := range s.tenants {
			raw[name] = t.delivered
		}
		for _, j := range s.running {
			if j.State == Running {
				raw[j.Spec.Tenant] += j.runCoreSeconds(now)
			}
		}
	}
	// Sum in name-sorted tenant order, not map iteration order: the total
	// feeds eviction prices (traced, and a sort key for victim selection),
	// where a last-ulp wobble from a randomized accumulation order shows up
	// as run-to-run nondeterminism.
	var total float64
	for _, t := range s.tenantList {
		total += raw[t.Name]
	}
	out := make(map[string]float64, len(raw))
	for name, v := range raw {
		if total > 0 {
			out[name] = v / total
		} else {
			out[name] = 0
		}
	}
	return out
}

// EntitledShares returns the weight-proportional target shares.
func (s *Scheduler) EntitledShares() map[string]float64 {
	var total float64
	for _, t := range s.tenants {
		total += t.Weight
	}
	out := make(map[string]float64, len(s.tenants))
	for name, t := range s.tenants {
		if total > 0 {
			out[name] = t.Weight / total
		}
	}
	return out
}

// DeliveredCoreSeconds returns a tenant's finished core-seconds.
func (s *Scheduler) DeliveredCoreSeconds(name string) float64 {
	if t := s.tenants[name]; t != nil {
		return t.delivered
	}
	return 0
}
