package sched

import (
	"testing"

	"repro/internal/capacity"
	"repro/internal/sim"
)

// Tests for the degraded-mode scheduling paths: outage requeue with
// progress credit, flap quarantine and readmission, transient launch
// retry/backoff, and the kill-and-recover contract (journal replay rebuilds
// the live ledger byte for byte and the resumed run completes every job).

// failAt schedules a full outage and its restore on the kernel: the ledger
// transition first, then the scheduler notification — the ordering every
// backend follows.
func failAt(t *testing.T, k *sim.Kernel, b *SimBackend, s *Scheduler, cloud string, at, dur sim.Time) {
	t.Helper()
	k.At(at, func() {
		if _, err := b.FailCloud(cloud); err != nil {
			t.Errorf("fail %s: %v", cloud, err)
		}
		s.Notify(Event{Kind: EventCloudFailed, Cloud: cloud})
	})
	k.At(at+dur, func() {
		if err := b.RestoreCloud(cloud); err != nil {
			t.Errorf("restore %s: %v", cloud, err)
		}
		s.Notify(Event{Kind: EventCloudRestored, Cloud: cloud})
	})
}

// TestOutageRequeueAndRecovery: a full crash tears the cloud's running gangs
// down through the preemption machinery, requeues them with progress credit
// — without charging the jobs a preemption — and the restored cloud runs
// them to completion.
func TestOutageRequeueAndRecovery(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("a", 16, 1, 0.10)
	s := New(b, Config{})
	defer s.Close()
	s.Start()
	ids := submitN(t, s, "t1", 2, JobSpec{Workers: 4, CoresPerWorker: 1, EstimateSeconds: 100})
	failAt(t, k, b, s, "a", 50*sim.Second, 150*sim.Second)
	k.RunUntil(60 * sim.Second)
	if !s.CloudDown("a") {
		t.Fatal("cloud not marked down after the outage event")
	}
	if got := s.OutageRequeues(); got != 2 {
		t.Fatalf("OutageRequeues=%d, want 2 (both running gangs lived on a)", got)
	}
	for _, id := range ids {
		ji, _ := s.Poll(id)
		if ji.State != Queued {
			t.Fatalf("job %s state=%v mid-outage, want Queued (requeued, not failed)", id, ji.State)
		}
	}
	k.Run()
	if s.Outages() != 1 || s.Restores() != 1 {
		t.Fatalf("outages=%d restores=%d, want 1/1", s.Outages(), s.Restores())
	}
	if s.CloudDown("a") {
		t.Fatal("cloud still marked down after restore")
	}
	for _, id := range ids {
		ji, _ := s.Poll(id)
		if ji.State != Done {
			t.Fatalf("job %s state=%v after restore, want Done", id, ji.State)
		}
		// An outage is not the job's fault: its preemption budget is intact.
		if ji.Preemptions != 0 {
			t.Fatalf("job %s charged %d preemptions for an outage", id, ji.Preemptions)
		}
		// Requeued at t=50 with 50/100 of the work done: the credited rerun
		// finishes well before a from-scratch one would (200+100).
		if ji.Finished >= 290*sim.Second {
			t.Fatalf("job %s finished at %v; progress credit not applied", id, ji.Finished)
		}
	}
	if s.Preemptions() != 0 {
		t.Fatalf("scheduler counted %d preemptions for outage requeues", s.Preemptions())
	}
}

// TestNaiveFaultModeZeroCredit: the E14 baseline requeues outage victims
// with no progress credit — their reruns start from scratch.
func TestNaiveFaultModeZeroCredit(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("a", 16, 1, 0.10)
	s := New(b, Config{NaiveFaultMode: true})
	defer s.Close()
	s.Start()
	ids := submitN(t, s, "t1", 1, JobSpec{Workers: 4, CoresPerWorker: 1, EstimateSeconds: 100})
	failAt(t, k, b, s, "a", 50*sim.Second, 150*sim.Second)
	k.Run()
	ji, _ := s.Poll(ids[0])
	if ji.State != Done {
		t.Fatalf("job state=%v, want Done", ji.State)
	}
	// Redispatched at t=200 with zero credit: the full 100 s run again.
	if ji.Finished < 295*sim.Second {
		t.Fatalf("job finished at %v; naive mode should have discarded progress", ji.Finished)
	}
}

// TestFlappingCloudQuarantined: a cloud that crashes twice inside the flap
// window is quarantined at its second restore — hidden from placement until
// the jittered backoff lapses — and then readmitted with a clean slate.
func TestFlappingCloudQuarantined(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("a", 16, 1, 0.10)
	b.AddCloud("b", 16, 1, 0.08)
	s := New(b, Config{})
	defer s.Close()
	s.Start()
	// Two crash/restore cycles on b inside the 10-minute flap window.
	failAt(t, k, b, s, "b", 10*sim.Second, 20*sim.Second)
	failAt(t, k, b, s, "b", 60*sim.Second, 20*sim.Second)
	k.RunUntil(90 * sim.Second)
	if s.Quarantines() != 1 {
		t.Fatalf("Quarantines=%d, want 1 (second restore crossed the flap threshold)", s.Quarantines())
	}
	if !s.Quarantined("b") {
		t.Fatal("flapping cloud not quarantined after its second restore")
	}
	// A job submitted now must land on a: b is healthy in the ledger but
	// hidden from the cycle snapshot.
	ids := submitN(t, s, "t1", 1, JobSpec{Workers: 2, CoresPerWorker: 1, EstimateSeconds: 30})
	k.RunUntil(95 * sim.Second)
	ji, _ := s.Poll(ids[0])
	if ji.State != Running || ji.Cloud != "a" {
		t.Fatalf("job state=%v cloud=%q under quarantine, want Running on a", ji.State, ji.Cloud)
	}
	// Base quarantine is 60 s, jittered to at most 90 s: by t=180 the
	// pruned readmission has fired (the lapse schedules its own kick).
	k.RunUntil(180 * sim.Second)
	if s.Quarantined("b") {
		t.Fatal("quarantine did not lapse")
	}
	if s.Readmissions() != 1 {
		t.Fatalf("Readmissions=%d, want 1", s.Readmissions())
	}
	k.Run()
}

// TestTransientLaunchRetry: a launch failing with ErrTransientLaunch is
// requeued behind a jittered backoff and retried, bounded by LaunchRetries;
// within the budget the job completes, past it the job fails.
func TestTransientLaunchRetry(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("a", 16, 1, 0.10)
	s := New(b, Config{})
	defer s.Close()
	s.Start()
	b.FailNextLaunches("a", 2)
	ids := submitN(t, s, "t1", 1, JobSpec{Workers: 2, CoresPerWorker: 1, EstimateSeconds: 30})
	k.Run()
	ji, _ := s.Poll(ids[0])
	if ji.State != Done {
		t.Fatalf("job state=%v after transient faults, want Done", ji.State)
	}
	if got := s.LaunchRetries(); got != 2 {
		t.Fatalf("LaunchRetries=%d, want 2", got)
	}
	// The retries are backoff-delayed, not same-instant churn.
	if ji.Started == 0 {
		t.Fatal("job started at t=0 despite two faulted launches")
	}
}

func TestTransientLaunchRetriesExhausted(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("a", 16, 1, 0.10)
	s := New(b, Config{})
	defer s.Close()
	s.Start()
	b.FailNextLaunches("a", 10)
	ids := submitN(t, s, "t1", 1, JobSpec{Workers: 2, CoresPerWorker: 1, EstimateSeconds: 30})
	k.Run()
	ji, _ := s.Poll(ids[0])
	if ji.State != Failed {
		t.Fatalf("job state=%v with faults past the retry budget, want Failed", ji.State)
	}
	if got := s.LaunchRetries(); got != 3 {
		t.Fatalf("LaunchRetries=%d, want the default budget of 3", got)
	}
}

// TestKillAndRecover is the crash-recovery acceptance test: mid-flight —
// running gangs, queued jobs, an outage in the books — the ledger journal's
// replay must rebuild the live capacity state byte for byte, and the run,
// resumed on the live ledger, must complete every job.
func TestKillAndRecover(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	jrn := capacity.NewJournal()
	b.Ledger().Journal(jrn) // before AddCloud: the journal must see every transition
	b.AddCloud("a", 8, 1, 0.10)
	b.AddCloud("b", 8, 1, 0.08)
	s := New(b, Config{})
	defer s.Close()
	s.Start()
	var ids []string
	ids = append(ids, submitN(t, s, "t1", 4, JobSpec{Workers: 4, CoresPerWorker: 1, EstimateSeconds: 100})...)
	ids = append(ids, submitN(t, s, "t2", 4, JobSpec{Workers: 6, CoresPerWorker: 1, EstimateSeconds: 80})...)
	failAt(t, k, b, s, "b", 40*sim.Second, 100*sim.Second)

	checkpoint := func(at sim.Time) {
		k.At(at, func() {
			rl, err := capacity.Replay(jrn.Recs())
			if err != nil {
				t.Errorf("t=%v: journal replay: %v", at, err)
				return
			}
			live, rec := string(b.Ledger().Snapshot()), string(rl.Snapshot())
			if live != rec {
				t.Errorf("t=%v: recovered ledger diverges from live:\nlive:\n%s\nrecovered:\n%s",
					at, live, rec)
			}
		})
	}
	checkpoint(30 * sim.Second)  // steady state: running + queued
	checkpoint(60 * sim.Second)  // mid-outage: evictions journaled
	checkpoint(200 * sim.Second) // post-restore

	k.Run()
	for _, id := range ids {
		ji, _ := s.Poll(id)
		if ji.State != Done {
			t.Fatalf("job %s state=%v after recovery checkpoints, want Done", id, ji.State)
		}
	}
	// Final equivalence once the run has drained.
	rl, err := capacity.Replay(jrn.Recs())
	if err != nil {
		t.Fatal(err)
	}
	if live, rec := string(b.Ledger().Snapshot()), string(rl.Snapshot()); live != rec {
		t.Fatalf("drained ledger diverges from journal replay:\nlive:\n%s\nrecovered:\n%s", live, rec)
	}
}
