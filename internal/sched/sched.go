// Package sched is a federation-wide elastic job scheduler: the layer that
// decides which tenant's job runs where and when across the sky-computing
// federation's clouds (§II). It combines
//
//   - multi-tenant job queues with weighted fair-share arbitration
//     (fairshare.go): tenants are served in order of charged usage divided
//     by weight, so delivered core-seconds converge to configured weights
//     under contention;
//   - locality-aware placement (placement.go): candidate clouds are scored
//     by HDFS data locality, free capacity, and inter-site bandwidth taken
//     from the simnet topology;
//   - EASY backfilling (backfill.go): when the next entitled job cannot fit,
//     it receives a reservation computed from running jobs' estimated
//     completions, and smaller jobs may slide past it as long as they do not
//     delay the reserved start;
//   - an elastic policy hook (elastic.go): running jobs that slip past their
//     deadline grow through the backend (core.Federation cluster growth),
//     shrink their extras once the map phase drains, and spot-revocation and
//     pattern-detection events from the nimbus and autonomic layers feed
//     back into replacement capacity and placement bias (events.go).
//
// The scheduler is deliberately backend-agnostic: core.Federation implements
// Backend for real federated execution (per-job virtual clusters running
// MapReduce), and SimBackend provides a lightweight synthetic backend for
// tests and benchmarks.
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"

	"repro/internal/capacity"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/sim"
)

// State is a job's lifecycle position.
type State int

// Job states.
const (
	Queued State = iota
	Running
	Done
	Failed
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	}
	return "failed"
}

// JobSpec describes a job submitted to the scheduler.
type JobSpec struct {
	Tenant string
	Name   string
	// MR is the MapReduce payload executed by the backend.
	MR mapreduce.Job
	// Workers is the number of VMs to provision for the job.
	Workers int
	// CoresPerWorker sizes each VM (zero means 1).
	CoresPerWorker int
	// InputSite names the cloud holding the job's HDFS input ("" = none);
	// placement scores clouds by locality to it, and non-local runs stream
	// InputBytes over the inter-site links.
	InputSite  string
	InputBytes int64
	// InputFractions optionally refines InputSite with per-block locality:
	// for each cloud, the fraction of the input's bytes with a replica
	// there (hdfs.LocalityFractions). Fractions may overlap (replication);
	// nil falls back to {InputSite: 1}.
	InputFractions map[string]float64
	// Deadline is an absolute completion target (0 = none). Late jobs grow
	// through the elastic hook.
	Deadline sim.Time
	// MaxExtraWorkers bounds elastic growth (0 = unbounded, as in emr).
	MaxExtraWorkers int
	// Spot provisions revocable spot workers at Bid.
	Spot bool
	Bid  float64
	// EstimateSeconds is the runtime estimate on speed-1 hardware used for
	// backfill reservations and fair-share charging. Zero derives it from
	// the MR payload.
	EstimateSeconds float64
	// Run, when set, makes this an external job: the scheduler arbitrates
	// its start under the tenant's share (charging Workers*CoresPerWorker
	// cores) but execution happens on capacity the caller already owns —
	// the path emr deadline jobs take through the gate. Run must invoke
	// done exactly once, with the execution error or nil.
	Run func(done func(error))
}

// External reports whether the job executes outside scheduler-provisioned
// capacity.
func (s JobSpec) External() bool { return s.Run != nil }

// Outcome reports a finished job.
type Outcome struct {
	Result mapreduce.Result
	Err    error
}

// Job is the scheduler's record of one submission.
type Job struct {
	ID   string
	Spec JobSpec

	State State
	// Cloud is the plan's anchor cloud (kept for the common single-cloud
	// case; Plan carries the full gang placement).
	Cloud     string
	Plan      Plan
	Submitted sim.Time
	Started   sim.Time
	Finished  sim.Time
	// Backfilled marks a job that slid past a blocked reservation.
	Backfilled bool
	// GrewBy counts elastic workers added (deadline growth + spot
	// replacements).
	GrewBy int
	// Revocations counts spot workers lost mid-job.
	Revocations int
	// Preemptions counts forced evictions this job suffered (each one
	// requeued it with queue position and progress credit preserved).
	Preemptions int
	Outcome     Outcome

	seq int
	// tref is the owning tenant, resolved once at Submit so hot placement
	// paths read the tenant's pattern-boost flag without a map lookup.
	tref        *Tenant
	handle      Handle
	charged     float64  // core-seconds charged at dispatch (estimate)
	estDuration sim.Time // estimate at the chosen plan's speed
	dispatched  bool
	// Blocked-head watermark record: when placement fails, unfitSlots is
	// the whole-worker slot count available at that instant and unfitFreed
	// the scheduler's cumulative freed-core clock. Until enough cores free
	// up to possibly close the gap, later cycles skip re-running placement
	// for this job (see Scheduler.canFit). Under a single-cloud-only policy
	// the record is per-cloud instead (unfitMarks): one {slots, freed-clock}
	// entry per cloud that could ever host the gang, so frees on clouds the
	// job can never use do not wake it.
	unfit         bool
	unfitSlots    int
	unfitFreed    int64
	unfitPerCloud bool
	unfitGen      uint64
	unfitMarks    []unfitMark
	// Delivered-capacity integration: coresNow is the core count the job
	// holds right now; accrued is core-seconds banked at resize events
	// (grow/shrink/revocation), so Shares attributes elapsed time at the
	// size the job actually held, not its final size.
	coresNow int
	resizeAt sim.Time
	accrued  float64
	// deadlineGrown counts only deadline-chasing extras — the shrinkable
	// part of GrewBy (spot replacements restore the job's entitled size
	// and are kept; they are tracked in spotReplaced).
	deadlineGrown int
	spotReplaced  int
	shrunk        bool
	// creditFrac is the fraction of the job's original work already
	// executed before an eviction: a requeued victim's next dispatch
	// estimates, charges, and reserves only the remaining work.
	creditFrac float64
	// relocating guards one in-flight consolidation migration per job.
	relocating bool
	// outageRequeuedAt stamps the instant an outage tore this job off a
	// failed cloud; the next dispatch observes the gap as its recovery time.
	// retryAt holds the job in the queue until a transient launch failure's
	// backoff lapses; launchRetries counts that dispatch's retry attempts.
	outageRequeuedAt sim.Time
	retryAt          sim.Time
	launchRetries    int
}

// unfitMark is one cloud's entry in a single-cloud job's watermark record:
// the whole-worker slots it offered at the failed placement and the value
// of that cloud's freed-core clock at that instant.
type unfitMark struct {
	cloud string
	slots int
	freed int64
}

// coresPerWorker returns the normalised per-worker core count.
func (j *Job) coresPerWorker() int {
	if j.Spec.CoresPerWorker <= 0 {
		return 1
	}
	return j.Spec.CoresPerWorker
}

// workers returns the normalised worker count.
func (j *Job) workers() int {
	if j.Spec.Workers <= 0 {
		return 1
	}
	return j.Spec.Workers
}

// Cores returns the job's core demand (workers x cores each).
func (j *Job) Cores() int { return j.workers() * j.coresPerWorker() }

// resize banks the core-seconds accrued at the current size and applies a
// delta (elastic growth, shrink, or spot revocation) — the resize-event
// ledger behind Shares.
func (s *Scheduler) resize(j *Job, deltaCores int) {
	now := s.K.Now()
	j.accrued += float64(j.coresNow) * (now - j.resizeAt).Seconds()
	j.coresNow += deltaCores
	if j.coresNow < 0 {
		j.coresNow = 0
	}
	j.resizeAt = now
}

// runCoreSeconds returns the core-seconds the job has actually held up to
// now, accounting every resize at the instant it happened.
func (j *Job) runCoreSeconds(now sim.Time) float64 {
	if !j.dispatched {
		return 0
	}
	return j.accrued + float64(j.coresNow)*(now-j.resizeAt).Seconds()
}

// Wait returns how long the job queued: up to now while queued, up to the
// start for dispatched jobs, and up to the failure instant for jobs that
// died in the queue.
func (j *Job) Wait(now sim.Time) sim.Time {
	switch {
	case j.State == Queued:
		return now - j.Submitted
	case j.dispatched:
		return j.Started - j.Submitted
	default: // failed without ever starting
		return j.Finished - j.Submitted
	}
}

// estimate returns the speed-1 runtime estimate in seconds, excluding any
// input-streaming penalty (see Scheduler.estimateAt). A preempted job
// carries progress credit: only the uncredited remainder of the original
// work is estimated (and charged, and reserved) on its next dispatch.
func (j *Job) estimate() float64 {
	est := j.Spec.EstimateSeconds
	if est <= 0 {
		work := j.Spec.MR.SerialWork()
		if work <= 0 {
			work = 1
		}
		est = work / float64(j.Cores())
	}
	if j.creditFrac > 0 {
		est *= 1 - j.creditFrac
	}
	return est
}

// estimateAt returns the runtime estimate in seconds for running under the
// given plan, including the time to stream uncovered input over the
// inter-site links and, for spanning plans, the cross-site shuffle time —
// backfill reservations would otherwise systematically undershoot
// remote-input and spanning jobs' runtimes. Shared with SimBackend so the
// synthetic backend's runtimes agree with the reservations made against
// them.
func (s *Scheduler) estimateAt(j *Job, plan Plan, v *CloudView) float64 {
	return planEstimateSeconds(s.B, j, plan, v)
}

// planEstimateSeconds is the plan-level cost model: base estimate at the
// slowest member's speed, plus WAN streaming of the input fraction no
// member holds, plus the cross-site shuffle bottleneck time. Only static
// cloud attributes (name, speed) are read from the view — never the working
// free vector — so backends may pass a view whose free cores are stale.
func planEstimateSeconds(b Backend, j *Job, plan Plan, v *CloudView) float64 {
	speed := 1.0
	for i, m := range plan.Members {
		if p := v.Pos(m.Cloud); p >= 0 && v.Clouds[p].Speed > 0 {
			if c := v.Clouds[p]; i == 0 || c.Speed < speed {
				speed = c.Speed
			}
		}
	}
	est := j.estimate() / speed
	// Input streaming: the fraction of input resident on no member crosses
	// the WAN through the thinnest input-site link among the members.
	if j.Spec.InputSite != "" && j.Spec.InputBytes > 0 {
		covered := 0.0
		for _, m := range plan.Members {
			covered += j.inputFraction(m.Cloud)
		}
		if covered > 1 {
			covered = 1
		}
		if uncovered := 1 - covered; uncovered > 0 {
			minBW := 0.0
			for _, m := range plan.Members {
				if m.Cloud == j.Spec.InputSite {
					continue
				}
				bw := b.Bandwidth(j.Spec.InputSite, m.Cloud)
				if bw <= 0 {
					continue
				}
				if minBW == 0 || bw < minBW {
					minBW = bw
				}
			}
			if minBW > 0 {
				est += uncovered * float64(j.Spec.InputBytes) / minBW
			}
		}
	}
	if plan.Spanning() {
		est += crossShuffleSeconds(b, j, plan.Members)
	}
	return est
}

// JobInfo is the poll-API view of a job.
type JobInfo struct {
	ID, Tenant, Name, Cloud string
	// Plan is the full gang placement (Cloud is its anchor).
	Plan        Plan
	State       State
	Submitted   sim.Time
	Started     sim.Time
	Finished    sim.Time
	Wait        sim.Time
	Backfilled  bool
	GrewBy      int
	Revocations int
	Preemptions int
	Result      mapreduce.Result
	Err         error
}

// CloudInfo is the backend's capacity snapshot for one cloud.
type CloudInfo struct {
	Name       string
	FreeCores  int
	TotalCores int
	Speed      float64
	Price      float64
}

// Backend executes scheduler decisions. core.Federation implements it for
// real federated execution; SimBackend for tests.
type Backend interface {
	Kernel() *sim.Kernel
	// Ledger exposes the backend's capacity ledger — the shared account of
	// committed cores, in-flight admissions, and future reservations. The
	// scheduler registers its backfill reservation here so the backend's
	// elastic-growth paths (which Probe the ledger) cannot race a reserved
	// gang start.
	Ledger() *capacity.Ledger
	// Clouds snapshots current capacity (free cores must account for
	// in-flight provisioning the backend has committed to).
	Clouds() []CloudInfo
	// Bandwidth returns the bottleneck inter-site bandwidth in bytes/sec
	// between two clouds (used by the placement score).
	Bandwidth(a, b string) float64
	// Launch provisions the job's workers per the plan (one virtual
	// cluster spanning every member cloud), runs the payload, releases the
	// workers, and reports the outcome. onDone receives the job back so
	// one callback value serves every launch (the scheduler passes the
	// same pre-bound function each time instead of allocating a per-job
	// closure). The returned handle drives elastic grow/shrink while the
	// job runs.
	Launch(j *Job, plan Plan, onDone func(*Job, Outcome)) (Handle, error)
}

// cloudAppender is the allocation-free variant of Backend.Clouds: backends
// that implement it let the scheduler reuse one snapshot buffer across
// cycles instead of allocating a fresh slice per cycle. Both in-repo
// backends (SimBackend, core's fedBackend) do.
type cloudAppender interface {
	AppendClouds(dst []CloudInfo) []CloudInfo
}

// snapshotClouds fills the scheduler's snapshot scratch from the backend.
func (s *Scheduler) snapshotClouds() []CloudInfo {
	if ca, ok := s.B.(cloudAppender); ok {
		s.snapScratch = ca.AppendClouds(s.snapScratch[:0])
		return s.snapScratch
	}
	return s.B.Clouds()
}

// Handle controls one running job's capacity.
type Handle interface {
	// Grow adds n on-demand workers (elastic growth or spot replacement).
	Grow(n int, onDone func(error))
	// Shrink releases up to n workers, returning how many were removed.
	Shrink(n int) int
	// Progress mirrors mapreduce.Cluster.Progress for the job.
	Progress() (mapsDone, mapsTotal, reducesDone, reducesTotal int)
}

// Config tunes the scheduler.
type Config struct {
	// Placement policy; nil means BestScore (locality-aware).
	Placement PlacementPolicy
	// LocalityWeight scores running at the cloud holding the job's input.
	// Zero means 1.0.
	LocalityWeight float64
	// CapacityWeight scores free-capacity headroom. Zero means 0.25.
	CapacityWeight float64
	// BandwidthWeight scores the link from the input site for non-local
	// placements. Zero means 0.5.
	BandwidthWeight float64
	// RefBandwidth normalises the bandwidth term (bw/(bw+ref)). Zero means
	// 125 MB/s (a GbE NIC).
	RefBandwidth float64
	// PatternBoost multiplies the bandwidth term for tenants with a
	// detected communication-heavy pattern. Zero means 2.0.
	PatternBoost float64
	// ShuffleWeight scores the cross-site shuffle penalty of spanning
	// plans. Zero means 1.0.
	ShuffleWeight float64
	// RefShuffleSeconds normalises the shuffle penalty
	// (secs/(secs+ref)). Zero means 30 s.
	RefShuffleSeconds float64
	// DisableShuffleCost drops the cross-site shuffle term from plan
	// scoring — the bandwidth-oblivious spanning baseline (E11).
	DisableShuffleCost bool
	// UsageHalfLife exponentially decays tenants' charged usage, so a
	// long-idle tenant cannot bank an unbounded deficit and starve others
	// on return. Zero disables decay (cumulative usage, as before).
	UsageHalfLife sim.Time
	// DisableBackfill falls back to strict FIFO-within-fair-share: nothing
	// may pass a blocked job.
	DisableBackfill bool
	// ElasticInterval is the elastic policy evaluation period. Zero means
	// 15 s.
	ElasticInterval sim.Time
	// DeadlineMargin is slack subtracted from deadlines when deciding to
	// grow. Zero means 30 s.
	DeadlineMargin sim.Time
	// DisableSpotReplacement stops the scheduler from growing an on-demand
	// replacement when a spot worker is revoked mid-job.
	DisableSpotReplacement bool
	// EnablePreemption makes placement revocable: when the blocked head
	// job's reservation has slipped ReservationMaxSlips consecutive times,
	// the cheapest set of backfilled jobs (priced by remaining work x the
	// victim tenant's share deficit) is evicted, requeued with queue
	// position and progress credit preserved, and the head starts on the
	// freed cores. Off by default: with it off every dispatch decision is
	// final, exactly the pre-preemption scheduler.
	EnablePreemption bool
	// ReservationMaxSlips is the reservation-aging bound: after N
	// consecutive recomputes each moved the reserved start later, the
	// reservation's ledger hold is dropped for a cycle (a misestimated gang
	// cannot shade elastic growth forever) and, with EnablePreemption, the
	// eviction pass fires. Zero means 3 when EnablePreemption is set and
	// disabled otherwise; negative disables aging outright.
	ReservationMaxSlips int
	// PreemptOverrunFactor is the elastic pass's forced-preempt bound: a
	// running backfilled job whose elapsed time exceeds factor x its
	// dispatch estimate while a reservation is waiting is evicted outright
	// (the voluntary shrink path only returns elastic extras; this one
	// reclaims the whole gang through the same eviction machinery). Zero
	// means 2.0. Only active with EnablePreemption.
	PreemptOverrunFactor float64
	// MaxPreemptions bounds how many times one job may be evicted, so
	// repeated preemption cannot starve a victim. Zero means 3.
	MaxPreemptions int
	// EnableConsolidation turns on the elastic consolidation pass: a
	// running spanning gang whose whole worker set fits on one of its
	// member clouds is live-migrated onto it (backends exposing Relocator),
	// cutting its cross-site shuffle to zero. Off by default.
	EnableConsolidation bool
	// NaiveFaultMode is the E14 baseline: outage victims requeue with zero
	// progress credit and restored clouds are never quarantined, however
	// often they flap. Off by default (degraded-mode handling: credit
	// preserved, flappers quarantined).
	NaiveFaultMode bool
	// FlapThreshold is how many failures within FlapWindow mark a cloud as
	// flapping; its next restore is then quarantined. Zero means 2.
	FlapThreshold int
	// FlapWindow is the failure-streak window for flap detection. Zero
	// means 10 minutes.
	FlapWindow sim.Time
	// FaultQuarantineBase is the first quarantine's nominal length; it
	// doubles per failure past the threshold. Zero means 60 s.
	FaultQuarantineBase sim.Time
	// FaultQuarantineMax caps the quarantine (and launch-retry) backoff.
	// Zero means 15 minutes.
	FaultQuarantineMax sim.Time
	// LaunchRetries bounds how many times one job's transiently failed
	// launches (ErrTransientLaunch) are retried before the job fails. Zero
	// means 3; negative disables retries.
	LaunchRetries int
	// RetryBackoffBase is the first launch retry's nominal delay; it
	// doubles per attempt. Zero means 5 s.
	RetryBackoffBase sim.Time
	// Obs is the metrics registry the scheduler's counters, gauges, and
	// phase histograms register in — a federation passes its shared registry
	// so every layer's families render from one /metrics endpoint. Nil
	// creates a private registry (the scheduler always runs instrumented;
	// read it back with Scheduler.Obs).
	Obs *obs.Registry
	// Trace records scheduler decisions (dispatch, reservation, watermark
	// block/wake, preemption with victim pricing, consolidation) into the
	// given tracer. Nil disables tracing.
	Trace *obs.Tracer
	// ScoreWorkers sizes the plan-scoring / shard-scan worker pool. 0 or 1
	// runs the sequential core — no goroutines, no synchronization on the
	// hot path, exactly the pre-parallel scheduler. N > 1 spins up N
	// workers that fan candidate scoring and the tenant-shard scan out over
	// the frozen cycle view; negative resolves to GOMAXPROCS. Placement
	// decisions are byte-identical at every setting (see nextTenant,
	// scanSingleClouds, and the optimistic-commit validation in cycle).
	ScoreWorkers int
}

func (c Config) withDefaults() Config {
	if c.Placement == nil {
		c.Placement = BestScore{}
	}
	if c.LocalityWeight == 0 {
		c.LocalityWeight = 1.0
	}
	if c.CapacityWeight == 0 {
		c.CapacityWeight = 0.25
	}
	if c.BandwidthWeight == 0 {
		c.BandwidthWeight = 0.5
	}
	if c.RefBandwidth == 0 {
		c.RefBandwidth = 125 << 20
	}
	if c.PatternBoost == 0 {
		c.PatternBoost = 2.0
	}
	if c.ShuffleWeight == 0 {
		c.ShuffleWeight = 1.0
	}
	if c.RefShuffleSeconds == 0 {
		c.RefShuffleSeconds = 30
	}
	if c.ElasticInterval == 0 {
		c.ElasticInterval = 15 * sim.Second
	}
	if c.DeadlineMargin == 0 {
		c.DeadlineMargin = 30 * sim.Second
	}
	if c.PreemptOverrunFactor == 0 {
		c.PreemptOverrunFactor = 2.0
	}
	if c.MaxPreemptions == 0 {
		c.MaxPreemptions = 3
	}
	if c.FlapThreshold == 0 {
		c.FlapThreshold = 2
	}
	if c.FlapWindow == 0 {
		c.FlapWindow = 10 * sim.Minute
	}
	if c.FaultQuarantineBase == 0 {
		c.FaultQuarantineBase = 60 * sim.Second
	}
	if c.FaultQuarantineMax == 0 {
		c.FaultQuarantineMax = 15 * sim.Minute
	}
	if c.LaunchRetries == 0 {
		c.LaunchRetries = 3
	} else if c.LaunchRetries < 0 {
		c.LaunchRetries = 0
	}
	if c.RetryBackoffBase == 0 {
		c.RetryBackoffBase = 5 * sim.Second
	}
	return c
}

// maxSlips returns the effective reservation-aging bound (0 = aging off).
func (c Config) maxSlips() int {
	switch {
	case c.ReservationMaxSlips > 0:
		return c.ReservationMaxSlips
	case c.ReservationMaxSlips == 0 && c.EnablePreemption:
		return 3
	default:
		return 0
	}
}

// Scheduler is the federation-wide arbiter.
//
// Its state is indexed for incremental cycles: jobs split into an active
// set and a finished archive (so no hot path ever walks history), running
// jobs keep a submission-ordered list and a maintained sorted release list,
// and per-cycle structures (cloud view, release snapshot, placement member
// buffers) reuse scheduler-owned scratch. Per-cycle cost is proportional to
// active work — queued plus running jobs times candidate clouds — not to
// every job ever submitted.
type Scheduler struct {
	K   *sim.Kernel
	B   Backend
	cfg Config

	tenants    map[string]*Tenant
	tenantList []*Tenant // name-sorted; nextTenant scans this, not the map
	seq        int

	// active holds queued and running jobs; archive holds finished ones
	// (done or failed). order lists every job ever in submission order —
	// the Jobs() view — and running lists running jobs in submission order
	// (the elastic pass and Shares iterate it instead of scanning history).
	active  map[string]*Job
	archive map[string]*Job
	order   []*Job
	running []*Job
	nQueued int

	// resv is the blocked head job's future claim, held as first-class
	// leases in the backend's capacity ledger between cycles (see
	// backfill.go). Each cycle refreshes it against current estimates.
	// prevResv is the previous cycle's claim, detached (leases still live)
	// at cycle start: when this cycle recomputes an identical claim,
	// holdReservation adopts the live leases instead of paying a ledger
	// release-and-re-reserve round trip per blocked cycle; anything not
	// adopted is released at cycle end.
	resv     *reservation
	prevResv *reservation

	// Reservation aging: agingJob/agingAt/agingSlips track how many
	// consecutive recomputes moved the same head job's reserved start later.
	// At Config.maxSlips the reservation's ledger hold is dropped for the
	// cycle and, with preemption on, the eviction pass fires (preempt.go).
	agingJob   string
	agingAt    sim.Time
	agingSlips int

	// rcache is the blocked head's reservation recompute cache: keyed on
	// the job, the release-list epoch, the ledger generation, and the
	// cycle's working free vector, a cycle in which none of those moved
	// reuses the previous reservation instead of walking reserve() again.
	// resvEpoch bumps on every release insert/remove and pattern event.
	rcache    resvCache
	resvEpoch uint64

	// shields are beneficiary reservations minted by ledger evictions
	// (capacity.Ledger.Evict) that outlive their cycle — the elastic
	// forced-preempt path holds them so a grow between cycles cannot take
	// the freed cores before the reserved head sees them. Released at the
	// next cycle start.
	shields []*capacity.Lease

	// releases is the maintained pending-release list: one entry per
	// running job's plan member, sorted by (eta, job, cloud). dispatch
	// inserts and complete removes, so blocked cycles snapshot it instead
	// of rebuilding it from a full job scan (see backfill.go).
	// relSnapDirty marks a mid-cycle insert, telling the cycle its release
	// snapshot is stale.
	releases     []coreRelease
	relClouds    []string // sorted cloud-name table backing coreRelease.cloudRank
	relSnapDirty bool

	// Blocked-head watermark: freedCum is a cumulative clock of free-core
	// gains observed at cycle starts (completions, shrinks, revocations,
	// resizes — measured as snapshot-vs-previous-cycle-end, so capacity
	// added behind the scheduler's back counts too); prevFreeNames/Vals are
	// the previous cycle's end-of-cycle free vector it diffs against, kept
	// as parallel slices in first-seen cloud order (view order in practice,
	// so the per-cycle diff and save run on index matches instead of map
	// hashes). freedBy is the same clock kept per cloud, so
	// single-cloud-only policies can ignore frees on clouds their jobs can
	// never use (see canFit).
	freedCum      int64
	prevFreeNames []string
	prevFreeVals  []int
	freedBy       map[string]int64

	// singleCloud records that the placement policy never spans (optional
	// SingleCloudOnly interface), enabling the per-cloud watermark marks.
	singleCloud bool

	// Per-cycle scratch, reused across cycles.
	view         CloudView
	resvView     CloudView // reserve()'s what-if copy of the view
	evictView    CloudView // preemption's what-if copy (freed victim cores)
	evictCand    []*Job    // preemption victim-candidate scratch
	evictPrev    []int     // pre-eviction free vector (watermark credit)
	snapScratch  []CloudInfo
	relScratch   []coreRelease // snapshotReleases output buffer
	overScratch  []coreRelease // snapshotReleases overdue-remap buffer
	runScratch   []*Job        // elasticTick iteration copy
	relSumAtResv []int         // per-cloud release sum at resv.at (backfill)
	idBuf        []byte        // Submit's job-ID formatting buffer
	jobArena     []Job         // current Job allocation chunk (see Submit)
	doneCB       func(*Job, Outcome)
	leaseSpare   []*capacity.Lease // retired reservation-lease backing array, reused by holdReservation

	// place is the sequential cycle's placement scratch (see
	// BestScore.chooseWith / growPlan); the parallel scoring pool's workers
	// carry their own placeScratch copies instead.
	place placeScratch

	// prover is the placement policy's fit precheck when it offers one
	// (optional fitProver interface): a cheap arithmetic proof that Choose
	// would return empty, letting the blocked paths skip scoring outright.
	prover fitProver

	// memos is the plan memo table (see planMemo): one entry per recently
	// scored job shape, evicted round-robin, all invalidated whenever the
	// working free vector moves. memoable gates it on placement-policy
	// purity. seal extends memo lifetime across cycles: when a new cycle's
	// world (cloud snapshot, free vector, ledger generation, release epoch)
	// is byte-identical to the previous cycle's end state, the view bump is
	// skipped and every memo entry survives — unchanged views never rescore.
	memos    [planMemoSlots]planMemo
	memoNext int
	memoable bool
	seal     viewSeal

	// Parallel sharded core (see parallel.go). pool is nil when
	// Config.ScoreWorkers resolves to 1 — the sequential scheduler, with
	// zero parallel overhead. planGen stamps the ledger generation under
	// which the pending plan was scored; viewVer counts working-free-vector
	// movements (dispatches, mid-cycle re-snapshots) so speculated plans
	// can be validated before commit. shardBounds partitions the
	// name-sorted tenant list into contiguous shards; spec holds the
	// cycle's speculated head plans.
	pool        *scorePool
	planGen     uint64
	viewVer     int
	shardBounds []int
	shardsDirty bool
	spec        map[*Job]specEntry
	// Parallel-path scratch, reused across cycles: the shard pick's
	// per-shard results, the speculation batch, and choosePar's per-range
	// results. All are written only between fork and join (or on the kernel
	// thread), never concurrently with another use.
	pickBests   []*Tenant
	pickKeys    []float64
	specHeads   []*Job
	specKeys    []float64
	specEntries []specEntry
	parPlans    []Plan
	parPrices   []float64
	// Parallel backfill-probe scratch (reservePar): the flat per-instant
	// availability matrix, the instant list, per-worker probe views, and the
	// per-block plan results. evictPrices is the parallel eviction pricer's
	// index-aligned output buffer.
	parResvFree  []int
	parResvAt    []sim.Time
	parResvViews []CloudView
	parResvPlans []Plan
	evictPrices  []float64
	// Parallel backfill-scan and elastic-pass scratch (speculateBackfill /
	// elasticPar): candidate list and per-job eval records, reused across
	// cycles like the buffers above.
	bfCands      []*Job
	elasticEvals []elasticEval

	// extMu serializes external drivers (Sync): goroutines outside the
	// kernel thread submit and poll through it under -race stress.
	extMu sync.Mutex

	// fitsFederation cache: federation-wide per-cloud totals keyed on the
	// capacity ledger's generation, so Submit stops snapshotting
	// B.Clouds() per call (invalidated on cloud add/resize).
	slotsGen    uint64
	slotsTotals []int
	slotsOK     bool

	// Fault state (faults.go), allocated lazily on the first fault event so
	// fault-free runs carry only nil pointers: downClouds tracks outages in
	// progress, quarUntil readmission quarantines, failStreak/lastFail the
	// per-cloud flap history. faultRNG is the jitter stream for quarantine
	// and retry backoff, seeded from the kernel RNG at first use — zero
	// kernel draws when faults never fire.
	downClouds map[string]bool
	quarUntil  map[string]sim.Time
	failStreak map[string]int
	lastFail   map[string]sim.Time
	faultRNG   *rand.Rand

	cyclePending  bool
	cycleFn       func() // s.cycle as a value, built once (kick is hot)
	kickFn        func() // s.kick as a value (fault paths schedule it)
	elasticOn     bool
	cancelElastic func()
	patternOf     map[string]string // tenant -> detected pattern

	// cycleNum is the kernel-thread-local cycle count (the tenant scan and
	// requeue machinery compare against it); the public view is the atomic
	// sky_sched_cycles_total counter behind Scheduler.Cycles.
	cycleNum int

	// m holds the registry instruments behind the stat accessor methods
	// (Cycles, Dispatched, …) — atomic counters, so examples and tests can
	// read them while the kernel runs in another goroutine. tr is the
	// optional decision tracer (see obs.go).
	m  schedMetrics
	tr *obs.Tracer
}

// New builds a scheduler over the backend. Call Start to enable the elastic
// policy loop; submission and dispatch work without it.
func New(b Backend, cfg Config) *Scheduler {
	s := &Scheduler{
		K:         b.Kernel(),
		B:         b,
		cfg:       cfg.withDefaults(),
		tenants:   make(map[string]*Tenant),
		active:    make(map[string]*Job),
		archive:   make(map[string]*Job),
		freedBy:   make(map[string]int64),
		patternOf: make(map[string]string),
		m:         newSchedMetrics(cfg.Obs, resolveScoreWorkers(cfg.ScoreWorkers)),
		tr:        cfg.Trace,
	}
	s.cycleFn = s.cycle
	s.kickFn = s.kick
	// One completion callback for every launch: dispatch hands this to
	// Backend.Launch instead of closing over each job.
	s.doneCB = func(j *Job, out Outcome) { s.complete(j, out) }
	if sc, ok := s.cfg.Placement.(interface{ SingleCloudOnly() bool }); ok {
		s.singleCloud = sc.SingleCloudOnly()
	}
	if fp, ok := s.cfg.Placement.(fitProver); ok {
		s.prover = fp
	}
	if cp, ok := s.cfg.Placement.(cacheablePolicy); ok && cp.PureChoose() {
		s.memoable = true
	}
	if n := resolveScoreWorkers(s.cfg.ScoreWorkers); n > 1 {
		s.pool = newScorePool(n)
		s.spec = make(map[*Job]specEntry)
		s.m.scoreWorkers.SetInt(int64(n))
	} else {
		s.m.scoreWorkers.SetInt(1)
	}
	return s
}

// Close stops the parallel scoring pool's workers (a no-op in sequential
// mode). The scheduler remains usable afterwards — the next parallel cycle
// would restart the pool — but callers that own a Scheduler with
// ScoreWorkers > 1 should Close it when done so idle goroutines do not
// outlive it.
func (s *Scheduler) Close() {
	if s.pool != nil {
		s.pool.close()
	}
}

// Sync runs fn under the scheduler's external-driver mutex. The scheduler's
// own kernel-thread pipeline needs no locking; Sync exists for drivers that
// call Submit/Poll/stat accessors from multiple goroutines — serialize every
// such access through it and the race detector stays quiet without putting
// a lock on the hot path.
func (s *Scheduler) Sync(fn func()) {
	s.extMu.Lock()
	defer s.extMu.Unlock()
	fn()
}

// provablyEmpty reports whether the policy's fit precheck proves Choose
// would return an empty plan against v — false when the policy offers none.
func (s *Scheduler) provablyEmpty(j *Job, v *CloudView) bool {
	return s.prover != nil && s.prover.ProvablyUnplaceable(j, v)
}

// jobByID looks a job up in the active set, then the archive.
func (s *Scheduler) jobByID(id string) *Job {
	if j := s.active[id]; j != nil {
		return j
	}
	return s.archive[id]
}

// Config returns the effective (defaulted) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Start enables the elastic policy loop. The underlying ticker runs only
// while jobs are active, so an idle scheduler does not keep the simulation
// alive.
func (s *Scheduler) Start() {
	s.elasticOn = true
	s.ensureElastic()
}

// Stop disables the elastic loop.
func (s *Scheduler) Stop() {
	s.elasticOn = false
	if s.cancelElastic != nil {
		s.cancelElastic()
		s.cancelElastic = nil
	}
}

// ensureElastic arms the ticker when elastic is enabled and work exists.
func (s *Scheduler) ensureElastic() {
	if !s.elasticOn || s.cancelElastic != nil || !s.hasActiveJobs() {
		return
	}
	s.cancelElastic = s.K.Ticker(s.cfg.ElasticInterval, func() {
		s.elasticTick()
		if !s.hasActiveJobs() {
			s.cancelElastic()
			s.cancelElastic = nil
		}
	})
}

// hasActiveJobs reports whether any job is queued or running — O(1) from
// the active-set counters, no job scan.
func (s *Scheduler) hasActiveJobs() bool {
	return s.nQueued > 0 || len(s.running) > 0
}

// Submit queues a job and returns its ID. Unknown tenants are created with
// weight 1.
func (s *Scheduler) Submit(spec JobSpec) (string, error) {
	if spec.Tenant == "" {
		return "", fmt.Errorf("sched: job needs a tenant")
	}
	t := s.tenants[spec.Tenant]
	if t == nil {
		t = s.AddTenant(spec.Tenant, 1)
	}
	s.seq++
	s.idBuf = strconv.AppendInt(append(s.idBuf[:0], 'J'), int64(s.seq), 10)
	// Jobs are carved from an arena chunk: one allocation per 128 jobs
	// instead of one each. A chunk is never appended past its capacity, so
	// &chunk[i] stays stable for the job's lifetime.
	if len(s.jobArena) == cap(s.jobArena) {
		s.jobArena = make([]Job, 0, 128)
	}
	s.jobArena = append(s.jobArena, Job{
		ID:        string(s.idBuf),
		seq:       s.seq,
		tref:      t,
		Spec:      spec,
		State:     Queued,
		Submitted: s.K.Now(),
	})
	j := &s.jobArena[len(s.jobArena)-1]
	if !spec.External() {
		if fits, have := s.fitsFederation(j); !fits {
			s.jobArena = s.jobArena[:len(s.jobArena)-1]
			return "", fmt.Errorf("sched: job needs %d cores; the whole federation can gang at most %d", j.Cores(), have)
		}
	}
	s.active[j.ID] = j
	s.order = append(s.order, j)
	s.nQueued++
	s.m.queuedJobs.SetInt(int64(s.nQueued))
	t.queue = append(t.queue, j)
	s.ensureElastic()
	s.kick()
	return j.ID, nil
}

// fitsFederation checks the job's demand against the federation-wide gang
// capacity: whole workers per cloud, summed across clouds (a spanning plan
// can use them all). Jobs wider than any single cloud are accepted — under
// a single-cloud policy they simply stay queued. The per-cloud totals are
// cached keyed on the capacity ledger's generation (every cloud add or
// resize bumps it), so per-submission checks stop snapshotting B.Clouds().
func (s *Scheduler) fitsFederation(j *Job) (bool, int) {
	if gen := s.B.Ledger().Generation(); !s.slotsOK || gen != s.slotsGen {
		// Own snapshot call, not snapshotClouds: a refresh can be triggered
		// mid-cycle (reserve failure) and must not clobber the snapshot
		// buffer the cycle's view aliases.
		s.slotsTotals = s.slotsTotals[:0]
		for _, c := range s.B.Clouds() {
			s.slotsTotals = append(s.slotsTotals, c.TotalCores)
		}
		s.slotsGen, s.slotsOK = gen, true
	}
	cpw := j.coresPerWorker()
	slots := 0
	for _, total := range s.slotsTotals {
		slots += total / cpw
	}
	return slots >= j.workers(), slots * cpw
}

// Poll returns the current view of a job, whether active or archived.
func (s *Scheduler) Poll(id string) (JobInfo, bool) {
	j := s.jobByID(id)
	if j == nil {
		return JobInfo{}, false
	}
	return JobInfo{
		ID: j.ID, Tenant: j.Spec.Tenant, Name: j.Spec.Name, Cloud: j.Cloud,
		Plan:  j.Plan,
		State: j.State, Submitted: j.Submitted, Started: j.Started,
		Finished: j.Finished, Wait: j.Wait(s.K.Now()),
		Backfilled: j.Backfilled, GrewBy: j.GrewBy, Revocations: j.Revocations,
		Preemptions: j.Preemptions,
		Result:      j.Outcome.Result, Err: j.Outcome.Err,
	}, true
}

// Jobs returns all job IDs (finished ones included), in submission order —
// read off the append-only order list, no scan-and-sort.
func (s *Scheduler) Jobs() []string {
	out := make([]string, len(s.order))
	for i, j := range s.order {
		out[i] = j.ID
	}
	return out
}

// QueueLen returns the total number of queued jobs.
func (s *Scheduler) QueueLen() int { return s.nQueued }

// kick schedules one coalesced scheduling cycle at the current instant.
func (s *Scheduler) kick() {
	if s.cyclePending {
		return
	}
	s.cyclePending = true
	s.K.Schedule(0, s.cycleFn)
}

// cycle is the scheduling pass: serve tenants in fair-share order, place and
// dispatch what fits, reserve for the first blocked job, and backfill behind
// it. The reservation computed here outlives the cycle as ledger leases
// (holdReservation), so elastic growth probing the ledger between cycles
// cannot take the reserved cores; each cycle drops and recomputes it
// against fresh estimates.
//
// The pass runs over the per-cycle CloudView (one indexed snapshot shared
// by every score, price, and estimate) and the maintained release list;
// jobs recorded as unplaceable skip placement entirely until enough cores
// have been freed to possibly fit them (the blocked-head watermark).
func (s *Scheduler) cycle() {
	s.cyclePending = false
	s.cycleNum++
	s.m.cycles.Inc()
	t0 := s.m.clock()
	var resvNanos, preemptNanos int64
	// Detach (not release) the previous cycle's reservation: when this
	// cycle recomputes an identical claim — the blocked steady state —
	// holdReservation adopts the live ledger leases instead of paying a
	// release-and-re-reserve round trip. Whatever is not adopted is
	// released at cycle end (post-cycle ledger state is identical either
	// way; reservations never block the holder's own acquire).
	s.prevResv, s.resv = s.resv, nil
	s.dropShields()
	v := &s.view
	snap := s.snapshotClouds()
	if len(s.quarUntil) > 0 {
		// Readmit lapsed quarantines, hide the rest from every decision this
		// cycle makes. Free when no cloud is quarantined (nil-map len check).
		snap = s.pruneQuarantine(snap)
	}
	v.Reset(snap)
	if s.sealMatches(v) {
		// The world this cycle sees is byte-identical to the one the
		// previous cycle left: every plan memo entry is still the answer
		// Choose would compute, so the view version stays put.
		s.m.viewSeals.Inc()
	} else {
		s.bumpView()
	}
	s.decayTenants()
	s.observeFrees(v)
	s.speculateHeads(v)
	var releases []coreRelease // running-job ETA snapshot, built on first block
	haveReleases := false
	for {
		t := s.pickTenant()
		if t == nil {
			break
		}
		j := t.queue[t.scan]
		if j.retryAt > s.K.Now() {
			// Transient-launch backoff in progress: leave the job queued (a
			// kick is already scheduled for when the backoff lapses) and let
			// the queue behind it proceed.
			t.scan++
			continue
		}
		if j.Spec.External() {
			s.dispatchExternal(t, j)
			continue
		}
		var plan Plan
		specOK := false // plan consumed from speculation, no inline rescore
		if s.canFit(j) {
			if j.unfit && s.tr != nil {
				// The watermark opened: enough cores freed since the block
				// record to possibly fit the job again.
				s.trace(obs.TraceEvent{Kind: "wake", Tenant: t.Name, Job: j.ID,
					Workers: j.workers(), Cores: j.Cores()})
			}
			if !s.provablyEmpty(j, v) {
				if p, gen, ok := s.specPlan(j); ok {
					// Optimistic commit: the speculated plan was scored
					// against this frozen view (version stamp matched); it
					// commits only if the capacity world it was scored under
					// still holds. A conflict — the ledger generation moved,
					// or the plan no longer fits the live free vector — is
					// counted and the job rescored inline against live state,
					// never dropped.
					plan, s.planGen = p, gen
					if s.planStale(j, plan, v) {
						s.m.parallelConflicts.Inc()
						s.invalidateMemos()
						plan = s.choosePlan(j, v)
					} else {
						specOK = true
					}
				} else {
					plan = s.choosePlan(j, v)
					if s.pool != nil {
						s.planGen = s.B.Ledger().Generation()
					}
				}
			}
			if plan.Empty() {
				s.markUnfit(j, v)
				if s.tr != nil {
					s.trace(obs.TraceEvent{Kind: "block", Tenant: t.Name, Job: j.ID,
						Workers: j.workers(), Cores: j.Cores()})
				}
			}
		}
		if !plan.Empty() {
			if s.resv != nil {
				// Backfill gate: the parallel scan's speculated verdict is
				// reusable only when the plan itself was consumed un-rescored
				// (specOK) and the verdict's world — free vector and the exact
				// reservation — is unchanged; otherwise judge live.
				bfOK, have := false, false
				if specOK {
					bfOK, have = s.specBackfill(j)
				}
				if !have {
					bfOK = s.backfillOK(j, plan, s.resv, v)
				}
				if !bfOK {
					t.scan++
					continue
				}
			}
			s.dispatch(t, j, plan, s.resv != nil, v)
			cpw := j.coresPerWorker()
			for _, m := range plan.Members {
				v.take(m.Cloud, m.Workers*cpw)
			}
			s.bumpView() // the working free vector moved
			// A backfill landed: every outstanding speculation is stale (the
			// free vector moved), so refill the pipeline for the candidates
			// still queued behind this one.
			s.speculateBackfill(v)
			continue
		}
		if s.resv == nil {
			tr0 := s.m.clock()
			r, ok, hit := s.cachedReserve(j, v, &releases, &haveReleases)
			resvNanos += s.m.clock() - tr0
			if !ok {
				if fits, _ := s.fitsFederation(j); !fits {
					// Even with every running job drained the demand never
					// fits (capacity shrank since submit) — fail it.
					s.failQueued(t, j, fmt.Errorf("sched: no plan can ever fit %d cores", j.Cores()))
					continue
				}
				// The federation could host the gang but the policy will
				// never place it (e.g. a single-cloud policy facing a
				// wider-than-any-cloud job): leave it queued without
				// blocking the jobs behind it.
				t.scan++
				continue
			}
			aged := s.trackSlips(&r, hit)
			if aged && s.cfg.EnablePreemption {
				tp0 := s.m.clock()
				out := s.preemptFor(t, j, v)
				preemptNanos += s.m.clock() - tp0
				switch out {
				case preemptDispatched:
					// The head dispatched on evicted cores; the view was
					// re-snapshotted and the release snapshot invalidated.
					// Serve the next tenant.
					continue
				case preemptEvictedOnly:
					// Victims are gone but the head still has no plan: the
					// reservation computed above walks their phantom release
					// entries. Recompute it against the post-eviction state
					// (the requeues dirtied the release snapshot and bumped
					// the epoch, so this is a genuine re-walk).
					tr0 = s.m.clock()
					if r2, ok2, _ := s.cachedReserve(j, v, &releases, &haveReleases); ok2 {
						r, hit = r2, false
					}
					resvNanos += s.m.clock() - tr0
				}
			}
			// An aged reservation is held for backfill gating but without
			// its ledger leases this cycle — the drop-and-refail step that
			// stops a misestimated gang from shading elastic growth forever.
			s.holdReservation(&r, j.coresPerWorker(), !aged)
			if !hit {
				s.sumReleasesAt(v, releases, r.at)
				s.cacheReservation(j, v, &r)
				if s.tr != nil {
					s.trace(obs.TraceEvent{Kind: "reserve", Tenant: t.Name, Job: j.ID,
						Workers: j.workers(), Cores: j.Cores(),
						Start: int64(r.at), Plan: r.plan.String()})
				}
			}
			if s.cfg.DisableBackfill {
				break
			}
			// Reservation in place: fan the backfill candidate walk out over
			// the pool before the sequential consumer reaches them.
			s.speculateBackfill(v)
		}
		t.scan++
	}
	s.releasePrevResv()
	s.saveEndFrees(v)
	s.sealRecord(v)
	s.m.observePhases(s.m.clock()-t0, resvNanos, preemptNanos)
}

// viewSeal is the end-of-cycle world record behind the cross-cycle memo
// seal: the exact cloud snapshot (names, totals, speeds, prices), the
// working free vector, the capacity ledger generation, and the release
// epoch the previous cycle ended under. A new cycle whose fresh snapshot
// matches all of it proves every input a pure placement policy reads is
// unchanged, so memoized plans survive the cycle boundary.
type viewSeal struct {
	ok     bool
	gen    uint64
	epoch  uint64
	clouds []CloudInfo
	free   []int
}

// sealMatches reports whether the fresh cycle view is byte-identical to the
// sealed end state of the previous cycle — the condition under which
// skipping the cycle-start view bump is sound. Mirrors resvCacheValid's
// overdue-release guard: once a release entry is overdue, downstream
// snapshots fold the current time in and stop being pure view functions.
func (s *Scheduler) sealMatches(v *CloudView) bool {
	if !s.memoable || !s.seal.ok {
		return false
	}
	if s.seal.gen != s.B.Ledger().Generation() || s.seal.epoch != s.resvEpoch {
		return false
	}
	if len(s.releases) > 0 && s.releases[0].at <= s.K.Now() {
		return false
	}
	if len(s.seal.clouds) != len(v.Clouds) {
		return false
	}
	for i, c := range v.Clouds {
		if s.seal.clouds[i] != c || s.seal.free[i] != v.free[i] {
			return false
		}
	}
	return true
}

// sealRecord captures the end-of-cycle world for sealMatches.
func (s *Scheduler) sealRecord(v *CloudView) {
	if !s.memoable {
		return
	}
	s.seal.ok = true
	s.seal.gen = s.B.Ledger().Generation()
	s.seal.epoch = s.resvEpoch
	s.seal.clouds = append(s.seal.clouds[:0], v.Clouds...)
	s.seal.free = append(s.seal.free[:0], v.free...)
}

// releasePrevResv releases a detached previous-cycle reservation that no
// holdReservation adopted this cycle (the head dispatched, changed, or
// moved its claim).
func (s *Scheduler) releasePrevResv() {
	if s.prevResv == nil {
		return
	}
	for _, le := range s.prevResv.leases {
		le.Release()
	}
	s.reclaimLeaseBuf(s.prevResv.leases)
	s.prevResv = nil
}

// dropShields releases eviction shields carried over from the previous
// cycle (the forced-preempt path mints them; the freed cores are now
// visible in this cycle's snapshot, so the reserved head can claim them).
func (s *Scheduler) dropShields() {
	for _, le := range s.shields {
		le.Release()
	}
	s.shields = s.shields[:0]
}

// observeFrees advances the watermark clock by the free cores gained since
// the previous cycle's end — completions, elastic shrinks, revocations, and
// capacity added behind the scheduler's back all surface here as
// snapshot-vs-saved-vector gains.
func (s *Scheduler) observeFrees(v *CloudView) {
	for i, c := range v.Clouds {
		prev := 0
		if i < len(s.prevFreeNames) && s.prevFreeNames[i] == c.Name {
			prev = s.prevFreeVals[i]
		} else if j := s.prevFreeIdx(c.Name); j >= 0 {
			prev = s.prevFreeVals[j]
		}
		if d := v.free[i] - prev; d > 0 {
			s.freedCum += int64(d)
			s.freedBy[c.Name] += int64(d)
		}
	}
}

// prevFreeIdx finds a cloud's slot in the saved free vector (-1 when the
// cloud has never appeared in a snapshot). Linear: federations are small
// and the caller's index fast path already covers the steady state.
func (s *Scheduler) prevFreeIdx(name string) int {
	for i, n := range s.prevFreeNames {
		if n == name {
			return i
		}
	}
	return -1
}

// saveEndFrees records the end-of-cycle free vector the next cycle diffs
// against. Slots for clouds that left the snapshot are kept, matching the
// old map semantics: a cloud that reappears diffs against its last known
// value, not zero.
func (s *Scheduler) saveEndFrees(v *CloudView) {
	for i, c := range v.Clouds {
		switch {
		case i < len(s.prevFreeNames) && s.prevFreeNames[i] == c.Name:
			s.prevFreeVals[i] = v.free[i]
		default:
			if j := s.prevFreeIdx(c.Name); j >= 0 {
				s.prevFreeVals[j] = v.free[i]
			} else {
				s.prevFreeNames = append(s.prevFreeNames, c.Name)
				s.prevFreeVals = append(s.prevFreeVals, v.free[i])
			}
		}
	}
}

// canFit reports whether the job could possibly be placed now. A job with
// an unfit record is skipped until the freed-core clock has advanced enough
// to close its slot gap: placing workers whole workers of cpw cores each
// requires Σ⌊free/cpw⌋ ≥ workers across clouds under ANY policy, free cores
// only shrink within a cycle, and every freed core adds at most one slot —
// so unfitSlots + freedSince < workers proves placement would fail without
// running it. Sound, never stale: capacity appearing from outside the
// scheduler's own bookkeeping still advances the clock via observeFrees.
//
// Under a single-cloud-only policy the record is per-cloud: the job wakes
// only when some cloud that could ever host the whole gang (total ≥ demand)
// has freed enough since its mark — frees on clouds the policy can never
// choose for it are ignored, so a flurry of small completions elsewhere
// does not re-run placement for a job they cannot help. A ledger generation
// bump (cloud added, resized, or a forced transition) voids the marks.
func (s *Scheduler) canFit(j *Job) bool {
	if !j.unfit {
		return true
	}
	if j.unfitPerCloud {
		if j.unfitGen != s.B.Ledger().Generation() {
			return true
		}
		for _, m := range j.unfitMarks {
			if m.slots+int(s.freedBy[m.cloud]-m.freed) >= j.workers() {
				return true
			}
		}
		return false
	}
	return j.unfitSlots+int(s.freedCum-j.unfitFreed) >= j.workers()
}

// markUnfit records the failed placement's slot availability for canFit —
// federation-wide for spanning-capable policies, per-eligible-cloud for
// single-cloud-only ones.
func (s *Scheduler) markUnfit(j *Job, v *CloudView) {
	cpw := j.coresPerWorker()
	slots := 0
	for _, f := range v.free {
		if f > 0 {
			slots += f / cpw
		}
	}
	j.unfit, j.unfitSlots, j.unfitFreed = true, slots, s.freedCum
	j.unfitPerCloud = s.singleCloud
	if !s.singleCloud {
		return
	}
	j.unfitGen = s.B.Ledger().Generation()
	j.unfitMarks = j.unfitMarks[:0]
	need := j.Cores()
	for i, c := range v.Clouds {
		if c.TotalCores < need {
			continue // can never host the gang: its frees are noise
		}
		sl := 0
		if v.free[i] > 0 {
			sl = v.free[i] / cpw
		}
		j.unfitMarks = append(j.unfitMarks, unfitMark{cloud: c.Name, slots: sl, freed: s.freedBy[c.Name]})
	}
}

// dispatch starts a placed job through the backend.
func (s *Scheduler) dispatch(t *Tenant, j *Job, plan Plan, backfilled bool, v *CloudView) {
	s.popQueued(t, j)
	now := s.K.Now()
	est := s.estimateAt(j, plan, v)
	j.State = Running
	j.Plan = plan
	j.Cloud = plan.Primary()
	j.Started = now
	j.dispatched = true
	j.Backfilled = backfilled
	j.estDuration = sim.FromSeconds(est)
	j.coresNow = j.Cores()
	j.resizeAt = now
	j.unfit = false
	s.charge(t, j, est)
	s.m.dispatched.Inc()
	if backfilled {
		s.m.backfills.Inc()
	}
	if plan.Spanning() {
		s.m.spanningDispatched.Inc()
	}
	if s.tr != nil {
		kind := "dispatch"
		if backfilled {
			kind = "dispatch_backfill"
		}
		s.trace(obs.TraceEvent{Kind: kind, Tenant: t.Name, Job: j.ID,
			Cloud: j.Cloud, Workers: j.workers(), Cores: j.Cores(), Plan: plan.String()})
	}
	s.addRunning(j)
	s.insertReleases(j)
	h, err := s.B.Launch(j, plan, s.doneCB)
	if err != nil {
		if errors.Is(err, ErrTransientLaunch) && j.launchRetries < s.cfg.LaunchRetries {
			// A deploy-path failure the backend believes is transient:
			// requeue (undoing this dispatch's charge and release entries)
			// and hold the job behind a jittered backoff. The next attempt
			// re-places from scratch, so a cloud still dropping deploys can
			// lose the job to an alternate candidate.
			j.launchRetries++
			s.m.launchRetries.Inc()
			d := s.retryBackoff(j.launchRetries)
			if s.tr != nil {
				s.trace(obs.TraceEvent{Kind: "requeue", Tenant: t.Name, Job: j.ID,
					Cloud: j.Cloud, Workers: j.workers(), Cores: j.Cores(),
					Start: int64(s.K.Now() + d)})
			}
			s.requeue(j, 0)
			j.retryAt = s.K.Now() + d
			s.K.Schedule(d, s.kickFn)
			return
		}
		s.complete(j, Outcome{Err: err})
		return
	}
	j.handle = h
	j.launchRetries = 0
	if j.outageRequeuedAt > 0 {
		// The gang an outage tore down is running again: the gap is the
		// scheduler's recovery time for this job.
		s.m.recoverySeconds.Observe((now - j.outageRequeuedAt).Seconds())
		j.outageRequeuedAt = 0
	}
}

// dispatchExternal starts an external (gate-admitted) job: fair-share
// ordering applies, capacity accounting is the caller's (no release-list
// entries — external capacity never returns to the pool).
func (s *Scheduler) dispatchExternal(t *Tenant, j *Job) {
	s.popQueued(t, j)
	j.State = Running
	j.Started = s.K.Now()
	j.dispatched = true
	j.coresNow = j.Cores()
	j.resizeAt = j.Started
	j.estDuration = sim.FromSeconds(j.estimate())
	s.charge(t, j, j.estimate())
	s.m.dispatched.Inc()
	if s.tr != nil {
		s.trace(obs.TraceEvent{Kind: "dispatch", Tenant: t.Name, Job: j.ID,
			Workers: j.workers(), Cores: j.Cores()})
	}
	s.addRunning(j)
	run := j.Spec.Run
	s.K.Schedule(0, func() { run(func(err error) { s.complete(j, Outcome{Err: err}) }) })
}

// popQueued removes j (at the tenant's scan position) from the queue.
func (s *Scheduler) popQueued(t *Tenant, j *Job) {
	i := t.scan
	if i >= len(t.queue) || t.queue[i] != j {
		panic("sched: queue index out of sync")
	}
	t.queue = append(t.queue[:i], t.queue[i+1:]...)
	s.nQueued--
	s.m.queuedJobs.SetInt(int64(s.nQueued))
}

// addRunning inserts the job into the submission-ordered running list.
// Dispatch order is not submission order (backfill), so insert sorted.
func (s *Scheduler) addRunning(j *Job) {
	i := sort.Search(len(s.running), func(k int) bool { return s.running[k].seq > j.seq })
	s.running = append(s.running, nil)
	copy(s.running[i+1:], s.running[i:])
	s.running[i] = j
	s.m.runningJobs.SetInt(int64(len(s.running)))
}

// dropRunning removes the job from the running list.
func (s *Scheduler) dropRunning(j *Job) {
	i := sort.Search(len(s.running), func(k int) bool { return s.running[k].seq >= j.seq })
	if i < len(s.running) && s.running[i] == j {
		copy(s.running[i:], s.running[i+1:])
		s.running = s.running[:len(s.running)-1]
		s.m.runningJobs.SetInt(int64(len(s.running)))
	}
}

// complete finalises a job: true-up the fair-share charge, move it from the
// active set to the archive, and trigger the next cycle for the freed
// capacity.
func (s *Scheduler) complete(j *Job, out Outcome) {
	if j.State != Running {
		return
	}
	t := s.tenants[j.Spec.Tenant]
	now := s.K.Now()
	j.Finished = now
	j.Outcome = out
	j.handle = nil
	s.trueUp(t, j, now)
	s.removeReleases(j)
	s.dropRunning(j)
	s.toArchive(j)
	if out.Err != nil {
		j.State = Failed
		s.m.failures.Inc()
	} else {
		j.State = Done
		s.m.completed.Inc()
	}
	s.kick()
}

// toArchive moves a finishing job from the active set to the archive.
func (s *Scheduler) toArchive(j *Job) {
	delete(s.active, j.ID)
	s.archive[j.ID] = j
}

// failQueued fails a job still in the queue.
func (s *Scheduler) failQueued(t *Tenant, j *Job, err error) {
	s.popQueued(t, j)
	j.State = Failed
	j.Finished = s.K.Now()
	j.Outcome = Outcome{Err: err}
	s.toArchive(j)
	s.m.failures.Inc()
}
