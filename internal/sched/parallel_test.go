package sched

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/capacity"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Tests for the parallel sharded scheduler core: the determinism oracle
// (decisions byte-identical at every ScoreWorkers setting), the sharded
// fair-share aggregates, optimistic-commit conflict injection, external
// -race stress through Sync, and the scoped forced-preemption regression.

// parallelWorkload drives one seeded federation big enough to cross every
// parallel gate — 20 clouds (≥ parallelCloudMin fans the single-cloud scan)
// and 300 tenants (≥ shardMinTenants shards the fair-share pick and Shares)
// — with wide jobs that block, reserve, backfill, and preempt. With storm
// set, a deterministic outage storm rides along: two full crashes, a flap
// episode deep enough to quarantine, and a transient deploy-fault burst —
// the degraded-mode paths must stay byte-deterministic too. Returns the
// decision trace bytes and the final shares.
func parallelWorkload(t *testing.T, workers int, storm bool) ([]byte, map[string]float64) {
	t.Helper()
	k := sim.NewKernel(7)
	b := NewSimBackend(k)
	for c := 0; c < 20; c++ {
		b.AddCloud(fmt.Sprintf("c%02d", c), 16, 1.0+0.05*float64(c%5), 0.08+0.01*float64(c%7))
	}
	b.UseLogNormalOverrun(0, 0.4)
	tr := obs.NewTracer(1 << 16)
	var buf bytes.Buffer
	tr.SetSink(&buf)
	s := New(b, Config{
		EnablePreemption:    true,
		EnableConsolidation: true,
		UsageHalfLife:       600 * sim.Second,
		Trace:               tr,
		ScoreWorkers:        workers,
	})
	defer s.Close()
	s.Start()
	if storm {
		outage := func(at sim.Time, cloud string, dur sim.Time) {
			k.At(at, func() {
				if _, err := b.FailCloud(cloud); err != nil {
					t.Errorf("fail %s: %v", cloud, err)
				}
				s.Notify(Event{Kind: EventCloudFailed, Cloud: cloud})
			})
			k.At(at+dur, func() {
				if err := b.RestoreCloud(cloud); err != nil {
					t.Errorf("restore %s: %v", cloud, err)
				}
				s.Notify(Event{Kind: EventCloudRestored, Cloud: cloud})
			})
		}
		outage(600*sim.Second, "c03", 600*sim.Second)
		outage(2000*sim.Second, "c07", 500*sim.Second)
		// Flap c05 three times inside the flap window: the restore past the
		// threshold quarantines it behind jittered backoff.
		outage(3000*sim.Second, "c05", 40*sim.Second)
		outage(3080*sim.Second, "c05", 40*sim.Second)
		outage(3160*sim.Second, "c05", 40*sim.Second)
		// Deploy-fault bursts: the next launches touching c02 fail
		// transiently and exercise the retry/backoff path. Three strikes at
		// most per burst — within one job's retry budget even if a single
		// job eats the whole burst.
		k.At(500*sim.Second, func() { b.FailNextLaunches("c02", 3) })
		k.At(4000*sim.Second, func() { b.FailNextLaunches("c02", 3) })
	}
	for ti := 0; ti < 300; ti++ {
		name := fmt.Sprintf("t%03d", ti)
		s.AddTenant(name, 1+float64(ti%3))
		w := 2
		var deadline sim.Time
		maxExtra := 0
		switch ti % 9 {
		case 5:
			w = 24 // wider than any cloud: spanning plans, blocks, reservations
		case 2:
			w = 6 // spans under fragmentation yet fits one cloud: consolidation bait
		case 7:
			// An unreachable deadline: the elastic pass grows the gang to the
			// cap, then shrinks it when the map phase drains.
			deadline = sim.Time(100+ti) * sim.Second
			maxExtra = 2
		}
		submitN(t, s, name, 2, JobSpec{
			Workers: w, CoresPerWorker: 2,
			EstimateSeconds: float64(40 + ti%60),
			Deadline:        deadline,
			MaxExtraWorkers: maxExtra,
		})
	}
	k.RunUntil(60000 * sim.Second)
	if got := s.Completed(); got != 600 {
		t.Fatalf("ScoreWorkers=%d: completed %d of 600 jobs", workers, got)
	}
	if tr.Len() == 0 {
		t.Fatal("run emitted no trace events")
	}
	return buf.Bytes(), s.Shares()
}

// tracePricesAndStarts pulls the decisions the parallel phases could most
// plausibly perturb out of a decision trace: every eviction price (preempt
// and forced_preempt events — the parallel pricer's floats) and every
// reserved start instant (reserve events — the parallel backfill probe's
// instants), in emission order.
func tracePricesAndStarts(t *testing.T, trace []byte) ([]float64, []int64) {
	t.Helper()
	var prices []float64
	var starts []int64
	for _, line := range bytes.Split(trace, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev struct {
			Kind  string  `json:"kind"`
			Price float64 `json:"price"`
			Start int64   `json:"start"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
		switch ev.Kind {
		case "preempt", "forced_preempt":
			prices = append(prices, ev.Price)
		case "reserve":
			starts = append(starts, ev.Start)
		}
	}
	return prices, starts
}

// TestParallelDeterminism is the oracle the whole parallel core answers to:
// the same seeded workload at ScoreWorkers 1 (sequential), 2, and 8 emits
// byte-identical decision traces and bit-identical delivered shares. Run
// under -cpu 1,2,8 in CI so the pool is exercised both starved and spread.
func TestParallelDeterminism(t *testing.T) {
	seqTrace, seqShares := parallelWorkload(t, 1, false)
	if !bytes.Contains(seqTrace, []byte(`"kind":"dispatch"`)) {
		t.Fatal("trace has no dispatch events; workload exercised nothing")
	}
	// The phases parallelized over the ledger-view read path must all have
	// fired, or the oracle below proves nothing about them.
	seqPrices, seqStarts := tracePricesAndStarts(t, seqTrace)
	if len(seqPrices) == 0 || len(seqStarts) == 0 {
		t.Fatalf("workload produced %d eviction prices and %d reservations; both must be exercised",
			len(seqPrices), len(seqStarts))
	}
	for _, workers := range []int{2, 8} {
		trace, shares := parallelWorkload(t, workers, false)
		// Bit-identical eviction prices and reserved backfill starts: the
		// parallel pricer and the parallel backfill probe move work across
		// workers, never answers. (Implied by the byte compare below, but
		// asserted separately so a divergence names the decision that moved.)
		prices, starts := tracePricesAndStarts(t, trace)
		for i, want := range seqPrices {
			if i >= len(prices) || prices[i] != want {
				t.Fatalf("ScoreWorkers=%d: eviction price #%d diverges from sequential", workers, i)
			}
		}
		for i, want := range seqStarts {
			if i >= len(starts) || starts[i] != want {
				t.Fatalf("ScoreWorkers=%d: reservation start #%d diverges from sequential", workers, i)
			}
		}
		if len(prices) != len(seqPrices) || len(starts) != len(seqStarts) {
			t.Fatalf("ScoreWorkers=%d: %d prices/%d starts vs sequential %d/%d",
				workers, len(prices), len(starts), len(seqPrices), len(seqStarts))
		}
		if !bytes.Equal(seqTrace, trace) {
			i := 0
			for i < len(trace) && i < len(seqTrace) && trace[i] == seqTrace[i] {
				i++
			}
			t.Fatalf("ScoreWorkers=%d trace diverges from sequential at byte %d (lengths %d vs %d)",
				workers, i, len(trace), len(seqTrace))
		}
		if len(shares) != len(seqShares) {
			t.Fatalf("ScoreWorkers=%d: %d share entries vs %d sequential", workers, len(shares), len(seqShares))
		}
		// Bit-identical, not merely close: the raw aggregates accumulate in
		// running-list order and the normalizing total sums in name-sorted
		// tenant order under both modes.
		for name, want := range seqShares {
			if got := shares[name]; got != want {
				t.Fatalf("ScoreWorkers=%d: share[%s] = %v, sequential %v",
					workers, name, got, want)
			}
		}
	}
}

// TestParallelDeterminismUnderOutageStorm re-runs the oracle with the fault
// storm riding along: outage requeues, quarantine jitter, and launch-retry
// backoff all draw from kernel-ordered state, so the decision trace —
// outage, requeue, and restore events included — must stay byte-identical
// at ScoreWorkers 1, 2, and 8.
func TestParallelDeterminismUnderOutageStorm(t *testing.T) {
	seqTrace, seqShares := parallelWorkload(t, 1, true)
	for _, kind := range []string{`"kind":"outage"`, `"kind":"requeue"`, `"kind":"restore"`} {
		if !bytes.Contains(seqTrace, []byte(kind)) {
			t.Fatalf("storm trace has no %s events; the fault paths did not fire", kind)
		}
	}
	for _, workers := range []int{2, 8} {
		trace, shares := parallelWorkload(t, workers, true)
		if !bytes.Equal(seqTrace, trace) {
			i := 0
			for i < len(trace) && i < len(seqTrace) && trace[i] == seqTrace[i] {
				i++
			}
			t.Fatalf("ScoreWorkers=%d storm trace diverges from sequential at byte %d (lengths %d vs %d)",
				workers, i, len(trace), len(seqTrace))
		}
		for name, want := range seqShares {
			if got := shares[name]; got != want {
				t.Fatalf("ScoreWorkers=%d: share[%s] = %v, sequential %v", workers, name, got, want)
			}
		}
	}
}

// evictionStormWorkload drives the eviction machinery across the parallel
// prefix-fit gate: two holders pin 208 of 320 cores, a 160-core head blocks
// behind them and reserves, and a swarm of short jobs backfills the slack.
// The second holder and every backfilled small overrun their estimates, so
// the head's reserved start slips recompute after recompute until the
// reservation ages out and chooseVictims prices — and what-if prefix-fits —
// a candidate list far wider than parallelEvictMin. Returns the decision
// trace and the eviction count.
func evictionStormWorkload(tb testing.TB, workers int) ([]byte, int) {
	k := sim.NewKernel(13)
	b := NewSimBackend(k)
	for c := 0; c < 20; c++ {
		b.AddCloud(fmt.Sprintf("c%02d", c), 16, 1, 0.10)
	}
	b.Overrun = func(j *Job) float64 {
		switch j.Spec.Name {
		case "lateholder", "small":
			return 4 // overdue releases: the reserved start slips every recompute
		}
		return 1
	}
	tr := obs.NewTracer(1 << 16)
	var buf bytes.Buffer
	tr.SetSink(&buf)
	s := New(b, Config{EnablePreemption: true, Trace: tr, ScoreWorkers: workers})
	defer s.Close()
	s.Start()
	sub := func(tenant string, spec JobSpec) {
		spec.Tenant = tenant
		if _, err := s.Submit(spec); err != nil {
			tb.Fatalf("submit %s: %v", tenant, err)
		}
	}
	// Staged arrival, or the head would grab the idle federation at t=0: the
	// holders dispatch first (208 of 320 cores), the head arrives at t=1 and
	// blocks behind them with a reservation at the honest holder's ~600 s
	// release, and the smalls arrive at t=2 to backfill the remaining slack
	// under that far-future reservation.
	s.AddTenant("hold", 1)
	sub("hold", JobSpec{Name: "holder", Workers: 72, CoresPerWorker: 2, EstimateSeconds: 600})
	sub("hold", JobSpec{Name: "lateholder", Workers: 32, CoresPerWorker: 2, EstimateSeconds: 600})
	k.RunUntil(1 * sim.Second)
	s.AddTenant("head", 1)
	// 220 cores — more than the two holders' 208 — so the reserved plan must
	// also claim slack on the smalls' clouds: overrunning smalls feed the
	// reservation and the forced-preempt pass reclaims them at elastic ticks.
	sub("head", JobSpec{Name: "head", Workers: 110, CoresPerWorker: 2, EstimateSeconds: 300})
	k.RunUntil(2 * sim.Second)
	total := 3
	for ti := 0; ti < 40; ti++ {
		name := fmt.Sprintf("s%02d", ti)
		s.AddTenant(name, 1)
		for n := 0; n < 4; n++ {
			sub(name, JobSpec{Name: "small", Workers: 2, CoresPerWorker: 2,
				EstimateSeconds: float64(30 + ti%20)})
			total++
		}
	}
	k.RunUntil(40000 * sim.Second)
	if got := s.Completed(); got != total {
		tb.Fatalf("ScoreWorkers=%d: completed %d of %d jobs", workers, got, total)
	}
	return buf.Bytes(), s.Preemptions()
}

// TestParallelEvictionStormDeterminism pins the parallel eviction pricer and
// the parallel what-if prefix fit at a candidate scale the main oracle's
// workload does not reach: evictions actually fire, and the decision trace —
// victim sets, prices, and the head's post-eviction dispatch included — is
// byte-identical at ScoreWorkers 1, 2, and 8.
func TestParallelEvictionStormDeterminism(t *testing.T) {
	seqTrace, seqEvictions := evictionStormWorkload(t, 1)
	if seqEvictions == 0 || !bytes.Contains(seqTrace, []byte(`"kind":"preempt"`)) {
		t.Fatal("storm produced no evictions; the prefix-fit path was not exercised")
	}
	if !bytes.Contains(seqTrace, []byte(`"kind":"forced_preempt"`)) {
		t.Fatal("storm produced no forced preemptions; the parallel elastic force path was not exercised")
	}
	for _, workers := range []int{2, 8} {
		trace, evictions := evictionStormWorkload(t, workers)
		if evictions != seqEvictions {
			t.Fatalf("ScoreWorkers=%d: %d evictions vs %d sequential", workers, evictions, seqEvictions)
		}
		if !bytes.Equal(seqTrace, trace) {
			i := 0
			for i < len(trace) && i < len(seqTrace) && trace[i] == seqTrace[i] {
				i++
			}
			t.Fatalf("ScoreWorkers=%d storm trace diverges from sequential at byte %d (lengths %d vs %d)",
				workers, i, len(trace), len(seqTrace))
		}
	}
}

// TestShardedSharesMatchSequential pins the sharded Shares aggregation
// against the sequential walk on the same live scheduler state: per-tenant
// values must be bit-identical (each tenant's accumulation order is the
// running-list order under both).
func TestShardedSharesMatchSequential(t *testing.T) {
	k := sim.NewKernel(3)
	b := NewSimBackend(k)
	for c := 0; c < 4; c++ {
		b.AddCloud(fmt.Sprintf("c%d", c), 32, 1, 0.10)
	}
	s := New(b, Config{ScoreWorkers: 4})
	defer s.Close()
	for ti := 0; ti < 70; ti++ {
		name := fmt.Sprintf("t%02d", ti)
		s.AddTenant(name, 1+float64(ti%4))
		submitN(t, s, name, 2, JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: float64(50 + ti)})
	}
	k.RunUntil(400 * sim.Second) // mid-drain: finished AND running work
	if len(s.running) == 0 || s.Completed() == 0 {
		t.Fatalf("want both running and completed jobs mid-drain; running=%d completed=%d",
			len(s.running), s.Completed())
	}
	now := k.Now()
	sharded := s.rawSharesSharded(now)
	seq := make(map[string]float64, len(s.tenants))
	for name, tn := range s.tenants {
		seq[name] = tn.delivered
	}
	for _, j := range s.running {
		if j.State == Running {
			seq[j.Spec.Tenant] += j.runCoreSeconds(now)
		}
	}
	if len(sharded) != len(seq) {
		t.Fatalf("sharded has %d entries, sequential %d", len(sharded), len(seq))
	}
	for name, want := range seq {
		if got := sharded[name]; got != want {
			t.Errorf("raw[%s] = %v sharded vs %v sequential (must be bit-identical)", name, got, want)
		}
	}
}

// genBumpPolicy wraps BestScore and, once armed, bumps the capacity ledger's
// generation from inside the first speculative scoring call — the
// capacity-moved-under-the-speculation scenario the optimistic commit must
// catch. The bump flips a cloud's total away and back, so real capacity is
// unchanged and every job must still complete: conflicts rescore, never drop.
type genBumpPolicy struct {
	BestScore
	led   *capacity.Ledger
	cloud string
	total int
	armed atomic.Bool
	fired atomic.Bool
}

func (p *genBumpPolicy) chooseWith(s *Scheduler, j *Job, v *CloudView, ps *placeScratch) Plan {
	if p.armed.Load() && p.fired.CompareAndSwap(false, true) {
		p.led.SetTotal(p.cloud, p.total+1)
		p.led.SetTotal(p.cloud, p.total)
	}
	return p.BestScore.chooseWith(s, j, v, ps)
}

// TestOptimisticCommitConflictRescores injects a ledger-generation bump
// during head speculation and asserts the commit path counts the conflict
// and rescores the affected jobs instead of dropping them: the conflict
// counter moves AND every job completes.
func TestOptimisticCommitConflictRescores(t *testing.T) {
	k := sim.NewKernel(5)
	b := NewSimBackend(k)
	for c := 0; c < 4; c++ {
		b.AddCloud(fmt.Sprintf("c%d", c), 16, 1, 0.10)
	}
	pol := &genBumpPolicy{led: b.Ledger(), cloud: "c0", total: 16}
	s := New(b, Config{Placement: pol, ScoreWorkers: 4})
	defer s.Close()
	for ti := 0; ti < 4; ti++ {
		s.AddTenant(fmt.Sprintf("t%d", ti), 1)
	}
	for j := 0; j < 40; j++ {
		submitN(t, s, fmt.Sprintf("t%d", j%4), 1,
			JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: float64(30 + j%50)})
	}
	pol.armed.Store(true)
	k.Run()
	if !pol.fired.Load() {
		t.Fatal("the generation bump never fired; speculation was not exercised")
	}
	if got := s.ParallelConflicts(); got < 1 {
		t.Fatalf("ParallelConflicts = %d, want >= 1 after a mid-speculation generation bump", got)
	}
	if got := s.Completed(); got != 40 {
		t.Fatalf("completed %d of 40 jobs — a conflicted plan was dropped, not rescored", got)
	}
	if s.Failures() != 0 {
		t.Fatalf("failures = %d, want 0", s.Failures())
	}
}

// TestParallelExternalDriverRace is the -race stress for the parallel core:
// the kernel steps and all external Submit/Poll/Shares traffic serialize
// through Sync while the scoring pool's workers run inside the cycles, and
// raw stat reads (atomic counters) hammer from another goroutine. Any
// missing synchronization in the pool fork-join, the shard scan, or the
// speculation batch surfaces here under -race.
func TestParallelExternalDriverRace(t *testing.T) {
	k := sim.NewKernel(9)
	b := NewSimBackend(k)
	for c := 0; c < 20; c++ {
		b.AddCloud(fmt.Sprintf("c%02d", c), 16, 1, 0.10)
	}
	s := New(b, Config{ScoreWorkers: 4})
	defer s.Close()
	var ids []string
	s.Sync(func() {
		for ti := 0; ti < 300; ti++ { // ≥ shardMinTenants: races the shard paths too
			name := fmt.Sprintf("t%03d", ti)
			s.AddTenant(name, 1)
			ids = append(ids, submitN(t, s, name, 2,
				JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: float64(30 + ti%40)})...)
		}
	})
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // external driver: polls and share reads, serialized via Sync
		defer wg.Done()
		i := 0
		for !stop.Load() {
			s.Sync(func() {
				s.Poll(ids[i%len(ids)])
				s.Shares()
			})
			i++
		}
	}()
	go func() { // atomic stat reads need no Sync
		defer wg.Done()
		sink := 0
		for !stop.Load() {
			sink += s.Cycles() + s.Dispatched() + s.Completed() + s.ParallelConflicts() +
				s.ScoreWorkerCount()
		}
		_ = sink
	}()
	for at := sim.Time(0); at < 4000*sim.Second; at += 50 * sim.Second {
		end := at + 50*sim.Second
		s.Sync(func() { k.RunUntil(end) })
	}
	stop.Store(true)
	wg.Wait()
	if got := s.Completed(); got != 600 {
		t.Fatalf("completed %d of 600 jobs", got)
	}
}

// TestForcedPreemptionScopedToReservationClouds is the regression for the
// scoped forced-preempt pass: an overrunning backfilled job whose gang runs
// entirely on clouds the blocked head's reserved plan never touches must NOT
// be evicted — reclaiming it frees nothing the head can use. Cloud "a" (16
// cores) is held until t=100 and is the only cloud that can host the head
// (single-cloud policy, "b" has 8 cores); the overrunner fills "b" and blows
// through its 20 s estimate 20x. Before scoping it was evicted around t=40;
// now it runs to completion while the head starts exactly at t=100.
func TestForcedPreemptionScopedToReservationClouds(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewSimBackend(k)
	b.AddCloud("a", 16, 1, 0.10)
	b.AddCloud("b", 8, 1, 0.10)
	b.Overrun = func(j *Job) float64 {
		if j.Spec.Name == "liar" {
			return 20
		}
		return 1
	}
	s := New(b, Config{
		Placement:           RandomPlacement{}, // single-cloud: the head fits only on "a"
		EnablePreemption:    true,
		ReservationMaxSlips: -1, // no head-driven eviction; only the forced path
	})
	s.Start()
	s.AddTenant("t", 1)
	submitN(t, s, "t", 1, JobSpec{Name: "hold", Workers: 8, CoresPerWorker: 2, EstimateSeconds: 100})
	head := submitN(t, s, "t", 1, JobSpec{Name: "head", Workers: 8, CoresPerWorker: 2, EstimateSeconds: 50})[0]
	liar := submitN(t, s, "t", 1, JobSpec{Name: "liar", Workers: 4, CoresPerWorker: 2, EstimateSeconds: 20})[0]
	k.Run()
	hi, _ := s.Poll(head)
	li, _ := s.Poll(liar)
	if hi.State != Done || li.State != Done {
		t.Fatalf("states: head=%v liar=%v, want both done", hi.State, li.State)
	}
	if li.Cloud != "b" || hi.Cloud != "a" {
		t.Fatalf("placements: head=%s liar=%s, want a/b — scenario broken", hi.Cloud, li.Cloud)
	}
	if s.ForcedPreemptions() != 0 || li.Preemptions != 0 {
		t.Errorf("forced preemption fired (sched=%d job=%d) for an overrunner outside the reservation's clouds",
			s.ForcedPreemptions(), li.Preemptions)
	}
	// The liar ran its full 20x overrun on "b" undisturbed...
	if got := li.Finished - li.Started; got < 390*sim.Second {
		t.Errorf("liar ran %v, want ~400 s uninterrupted", got)
	}
	// ...and the head started the moment "a"'s holder released it.
	if hi.Started != 100*sim.Second {
		t.Errorf("head started at %v, want exactly t=100 s", hi.Started)
	}
}
