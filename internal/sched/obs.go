package sched

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// The scheduler's observability plumbing: the former block of plain public
// int stats lives on registry counters now (atomic, so the elastic loop
// goroutine and stat readers no longer race), the queue and running-set
// sizes are gauges, and each cycle's wall-clock cost is split into phase
// histograms. Decision tracing (dispatch, reserve, block/wake, preemption,
// consolidation) goes through the optional obs.Tracer in Config.Trace —
// every emission site is guarded by a nil check so untraced runs pay
// nothing, and events carry only virtual-time state so same-seed runs
// produce byte-identical traces.

// phaseBuckets are the per-cycle phase timing bounds in seconds: cycles run
// microseconds to tens of milliseconds, so the grid is log-spaced from 1 µs
// to 1 s.
var phaseBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}

// recoveryBuckets grade outage recovery times (requeue to redispatch) in
// virtual seconds: sub-minute recoveries are the degraded-mode goal, the
// tail rides out quarantines.
var recoveryBuckets = []float64{1, 5, 15, 60, 300, 900, 3600}

// schedMetrics holds the scheduler's registry instruments, resolved once at
// New so hot-path increments are single atomic ops with no registry lookup.
type schedMetrics struct {
	reg *obs.Registry

	cycles                *obs.Counter
	dispatched            *obs.Counter
	spanningDispatched    *obs.Counter
	backfills             *obs.Counter
	completed             *obs.Counter
	failures              *obs.Counter
	growRequests          *obs.Counter
	shrinkRequests        *obs.Counter
	spotRevocations       *obs.Counter
	spotReplacements      *obs.Counter
	patternEvents         *obs.Counter
	preemptions           *obs.Counter
	forcedPreemptions     *obs.Counter
	reservationAgings     *obs.Counter
	consolidationRequests *obs.Counter
	consolidations        *obs.Counter
	resvCacheHits         *obs.Counter
	planMemoHits          *obs.Counter
	parallelConflicts     *obs.Counter
	viewSeals             *obs.Counter
	resvHoldReuses        *obs.Counter

	outages        *obs.Counter
	restores       *obs.Counter
	outageRequeues *obs.Counter
	quarantines    *obs.Counter
	readmissions   *obs.Counter
	launchRetries  *obs.Counter

	queuedJobs   *obs.Gauge
	runningJobs  *obs.Gauge
	scoreWorkers *obs.Gauge

	recoverySeconds *obs.Histogram

	phasePlacement  *obs.Histogram
	phaseBackfill   *obs.Histogram
	phasePreemption *obs.Histogram
	phaseElastic    *obs.Histogram
	phaseShardScan  *obs.Histogram

	// clock samples monotonic wall time in nanoseconds for the phase
	// histograms — the only non-virtual time in the scheduler, which is why
	// phase timings never appear in traces or experiment tables. Swappable
	// for deterministic tests.
	clock func() int64
}

// newSchedMetrics registers the scheduler's instruments in reg (a private
// registry when nil, so the scheduler always runs instrumented — the
// benchdiff gate measures the real hot path).
func newSchedMetrics(reg *obs.Registry, workers int) schedMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	// The workers label pins each phase series to the resolved pool size, so
	// scrapes can tell a phase-speedup regression (same workers, slower
	// phase) from a worker-count change.
	phase := reg.HistogramVec("sky_sched_phase_seconds",
		"Wall-clock time per scheduling phase per cycle.", phaseBuckets, "phase", "workers")
	w := strconv.Itoa(workers)
	// Monotonic clock: observePhases only ever differences samples, and
	// time.Since's monotonic fast path costs roughly half a wall-clock read
	// — the clock is sampled several times per cycle, so it shows up.
	base := time.Now()
	return schedMetrics{
		reg:                   reg,
		cycles:                reg.Counter("sky_sched_cycles_total", "Scheduling cycles run."),
		dispatched:            reg.Counter("sky_sched_dispatched_total", "Jobs dispatched."),
		spanningDispatched:    reg.Counter("sky_sched_spanning_dispatched_total", "Dispatched jobs whose plan spans clouds."),
		backfills:             reg.Counter("sky_sched_backfills_total", "Dispatches that slid past a blocked reservation."),
		completed:             reg.Counter("sky_sched_completed_total", "Jobs completed."),
		failures:              reg.Counter("sky_sched_failures_total", "Jobs failed."),
		growRequests:          reg.Counter("sky_sched_grow_requests_total", "Elastic deadline-chasing grow requests."),
		shrinkRequests:        reg.Counter("sky_sched_shrink_requests_total", "Elastic shrink requests."),
		spotRevocations:       reg.Counter("sky_sched_spot_revocations_total", "Spot workers revoked mid-job."),
		spotReplacements:      reg.Counter("sky_sched_spot_replacements_total", "On-demand replacements grown for revoked spot workers."),
		patternEvents:         reg.Counter("sky_sched_pattern_events_total", "Communication-pattern detections delivered."),
		preemptions:           reg.Counter("sky_sched_preemptions_total", "Jobs evicted by preemption."),
		forcedPreemptions:     reg.Counter("sky_sched_forced_preemptions_total", "Elastic overrun evictions among preemptions."),
		reservationAgings:     reg.Counter("sky_sched_reservation_agings_total", "Cycles where a slipping reservation's ledger hold was dropped."),
		consolidationRequests: reg.Counter("sky_sched_consolidation_requests_total", "Consolidation migrations issued."),
		consolidations:        reg.Counter("sky_sched_consolidations_total", "Consolidations completed (plan rewritten)."),
		resvCacheHits:         reg.Counter("sky_sched_resv_cache_hits_total", "Blocked-head cycles served from the reservation cache."),
		planMemoHits:          reg.Counter("sky_sched_plan_memo_hits_total", "Cycle-scan placements served from the within-cycle plan memo."),
		parallelConflicts:     reg.Counter("sky_sched_parallel_conflicts_total", "Speculated plans invalidated by capacity movement and rescored before commit."),
		viewSeals:             reg.Counter("sky_sched_view_seals_total", "Cycle starts whose world matched the previous cycle's sealed end state (plan memos carried over)."),
		resvHoldReuses:        reg.Counter("sky_sched_resv_hold_reuses_total", "Blocked cycles whose recomputed reservation adopted the previous cycle's live ledger leases."),
		outages:               reg.Counter("sky_faults_outages_total", "Cloud outage events delivered to the scheduler."),
		restores:              reg.Counter("sky_faults_restores_total", "Cloud restore events delivered to the scheduler."),
		outageRequeues:        reg.Counter("sky_faults_outage_requeues_total", "Running gangs requeued off failed clouds."),
		quarantines:           reg.Counter("sky_faults_quarantines_total", "Flapping clouds quarantined at restore."),
		readmissions:          reg.Counter("sky_faults_readmissions_total", "Quarantined clouds readmitted to placement."),
		launchRetries:         reg.Counter("sky_faults_launch_retries_total", "Transient launch failures requeued for retry."),
		recoverySeconds:       reg.Histogram("sky_faults_recovery_seconds", "Virtual seconds from outage requeue to redispatch.", recoveryBuckets),
		queuedJobs:            reg.Gauge("sky_sched_queued_jobs", "Jobs currently queued."),
		runningJobs:           reg.Gauge("sky_sched_running_jobs", "Jobs currently running."),
		scoreWorkers:          reg.Gauge("sky_sched_score_workers", "Resolved plan-scoring worker pool size (1 = sequential core)."),
		phasePlacement:        phase.With("placement", w),
		phaseBackfill:         phase.With("backfill", w),
		phasePreemption:       phase.With("preemption", w),
		phaseElastic:          phase.With("elastic", w),
		phaseShardScan:        phase.With("shard_scan", w),
		clock:                 func() int64 { return int64(time.Since(base)) },
	}
}

// observePhases books one cycle's wall-clock nanoseconds: reserve and
// preemption time are accumulated at their call sites, placement is the
// remainder of the cycle.
func (m *schedMetrics) observePhases(total, resv, preempt int64) {
	if placement := total - resv - preempt; placement > 0 {
		m.phasePlacement.Observe(float64(placement) * 1e-9)
	}
	if resv > 0 {
		m.phaseBackfill.Observe(float64(resv) * 1e-9)
	}
	if preempt > 0 {
		m.phasePreemption.Observe(float64(preempt) * 1e-9)
	}
}

// Obs returns the scheduler's metrics registry (never nil: a private one is
// created when Config.Obs was unset).
func (s *Scheduler) Obs() *obs.Registry { return s.m.reg }

// Tracer returns the decision tracer (nil when tracing is off).
func (s *Scheduler) Tracer() *obs.Tracer { return s.tr }

// trace stamps the deterministic envelope (cycle number, virtual time) on
// an event and emits it. Call sites guard with s.tr != nil so untraced runs
// never build the event.
func (s *Scheduler) trace(ev obs.TraceEvent) {
	ev.Cycle = int64(s.cycleNum)
	ev.At = int64(s.K.Now())
	s.tr.Emit(ev)
}

// Stat accessors: the former public int fields, now atomic counter reads —
// safe to call from any goroutine while the scheduler runs.

// Cycles returns the number of scheduling cycles run.
func (s *Scheduler) Cycles() int { return int(s.m.cycles.Value()) }

// Dispatched returns the number of jobs dispatched.
func (s *Scheduler) Dispatched() int { return int(s.m.dispatched.Value()) }

// SpanningDispatched returns the number of dispatched jobs with spanning plans.
func (s *Scheduler) SpanningDispatched() int { return int(s.m.spanningDispatched.Value()) }

// Backfills returns the number of dispatches that slid past a reservation.
func (s *Scheduler) Backfills() int { return int(s.m.backfills.Value()) }

// Completed returns the number of jobs that finished successfully.
func (s *Scheduler) Completed() int { return int(s.m.completed.Value()) }

// Failures returns the number of jobs that failed.
func (s *Scheduler) Failures() int { return int(s.m.failures.Value()) }

// GrowRequests returns the number of elastic grow requests.
func (s *Scheduler) GrowRequests() int { return int(s.m.growRequests.Value()) }

// ShrinkRequests returns the number of elastic shrink requests.
func (s *Scheduler) ShrinkRequests() int { return int(s.m.shrinkRequests.Value()) }

// SpotRevocations returns the number of spot workers revoked mid-job.
func (s *Scheduler) SpotRevocations() int { return int(s.m.spotRevocations.Value()) }

// SpotReplacements returns the number of on-demand spot replacements grown.
func (s *Scheduler) SpotReplacements() int { return int(s.m.spotReplacements.Value()) }

// PatternEvents returns the number of pattern detections delivered.
func (s *Scheduler) PatternEvents() int { return int(s.m.patternEvents.Value()) }

// Preemptions returns the number of evicted jobs (head-driven and forced).
func (s *Scheduler) Preemptions() int { return int(s.m.preemptions.Value()) }

// ForcedPreemptions returns the elastic overrun evictions among preemptions.
func (s *Scheduler) ForcedPreemptions() int { return int(s.m.forcedPreemptions.Value()) }

// ReservationAgings returns the cycles where a slipping reservation's ledger
// hold was dropped.
func (s *Scheduler) ReservationAgings() int { return int(s.m.reservationAgings.Value()) }

// ConsolidationRequests returns the consolidation migrations issued.
func (s *Scheduler) ConsolidationRequests() int { return int(s.m.consolidationRequests.Value()) }

// Consolidations returns the consolidations that completed.
func (s *Scheduler) Consolidations() int { return int(s.m.consolidations.Value()) }

// ResvCacheHits returns the blocked-head cycles served from the reservation
// cache.
func (s *Scheduler) ResvCacheHits() int { return int(s.m.resvCacheHits.Value()) }

// PlanMemoHits returns the cycle-scan placements served from the
// within-cycle plan memo.
func (s *Scheduler) PlanMemoHits() int { return int(s.m.planMemoHits.Value()) }

// ParallelConflicts returns the speculated plans invalidated by capacity
// movement (ledger generation or working-view change) and rescored before
// commit. Always zero in the sequential core.
func (s *Scheduler) ParallelConflicts() int { return int(s.m.parallelConflicts.Value()) }

// ViewSeals returns the cycle starts whose world matched the previous
// cycle's sealed end state (plan memos carried across the boundary).
func (s *Scheduler) ViewSeals() int { return int(s.m.viewSeals.Value()) }

// ResvHoldReuses returns the blocked cycles whose recomputed reservation
// adopted the previous cycle's live ledger leases instead of re-reserving.
func (s *Scheduler) ResvHoldReuses() int { return int(s.m.resvHoldReuses.Value()) }

// ScoreWorkerCount returns the resolved scoring-pool size (1 = sequential).
func (s *Scheduler) ScoreWorkerCount() int { return int(s.m.scoreWorkers.Value()) }

// Outages returns the cloud outage events delivered to the scheduler.
func (s *Scheduler) Outages() int { return int(s.m.outages.Value()) }

// Restores returns the cloud restore events delivered to the scheduler.
func (s *Scheduler) Restores() int { return int(s.m.restores.Value()) }

// OutageRequeues returns the running gangs requeued off failed clouds.
func (s *Scheduler) OutageRequeues() int { return int(s.m.outageRequeues.Value()) }

// Quarantines returns the flapping clouds quarantined at restore.
func (s *Scheduler) Quarantines() int { return int(s.m.quarantines.Value()) }

// Readmissions returns the quarantined clouds readmitted to placement.
func (s *Scheduler) Readmissions() int { return int(s.m.readmissions.Value()) }

// LaunchRetries returns the transient launch failures requeued for retry.
func (s *Scheduler) LaunchRetries() int { return int(s.m.launchRetries.Value()) }
