package sched

import (
	"errors"
	"math/rand"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Degraded-mode scheduling: the scheduler's half of the fault-tolerance
// story. The capacity ledger's FailCloud transition already evicted the dead
// cloud's leases and zeroed its committed cores in one generation-bumped
// step; what remains is policy — which running gangs to requeue and with how
// much progress credit, what to do with a head reservation now claiming a
// dead cloud, and when a cloud that keeps crashing should be quarantined
// behind a jittered exponential backoff instead of being trusted the moment
// it reports healthy.
//
// Everything here is pay-for-what-you-use: a run with no fault events
// allocates no fault state, draws nothing from the kernel RNG (the jitter
// RNG is seeded lazily on the first fault), and adds only a nil-map length
// check to the cycle path — the benchmark gates hold with the hooks in
// place.
//
// Determinism: fault events arrive on the kernel thread in virtual-time
// order, victims are requeued in submission order (s.running's invariant),
// and all randomness (quarantine and retry jitter) draws from the lazily
// seeded fault RNG in that same order — so same-seed fault-injected runs
// are byte-identical at every ScoreWorkers setting.

// ErrTransientLaunch marks a launch failure worth retrying: backends wrap
// deploy-path errors they believe are transient (an injected deploy fault, a
// timed-out propagation) with it, and the scheduler requeues the job for a
// bounded number of jittered-backoff retries instead of failing it.
var ErrTransientLaunch = errors.New("sched: transient launch failure")

// ensureFaultState allocates the fault-tracking maps on first use.
func (s *Scheduler) ensureFaultState() {
	if s.downClouds == nil {
		s.downClouds = make(map[string]bool)
		s.quarUntil = make(map[string]sim.Time)
		s.failStreak = make(map[string]int)
		s.lastFail = make(map[string]sim.Time)
	}
}

// faultRand returns the fault-path jitter RNG, seeding it from the kernel
// RNG on first use — a fault-free run never perturbs the kernel stream, so
// every experiment table with faults disabled stays byte-identical to the
// pre-fault scheduler's.
func (s *Scheduler) faultRand() *rand.Rand {
	if s.faultRNG == nil {
		s.faultRNG = rand.New(rand.NewSource(s.K.Rand().Int63()))
	}
	return s.faultRNG
}

// cloudFailed handles EventCloudFailed: record the outage (and its place in
// the cloud's flap history), requeue every running gang with workers on the
// dead cloud, and drop a head reservation that claims it. The ledger
// transition (FailCloud) has already happened — the backend performs it
// before notifying, so the evicted leases are closed by the time Preempt
// walks them.
func (s *Scheduler) cloudFailed(cloud string) {
	s.ensureFaultState()
	if s.downClouds[cloud] {
		return // idempotent, like the ledger transition underneath
	}
	now := s.K.Now()
	s.downClouds[cloud] = true
	s.m.outages.Inc()
	if last, ok := s.lastFail[cloud]; ok && now-last <= s.cfg.FlapWindow {
		s.failStreak[cloud]++
	} else {
		s.failStreak[cloud] = 1
	}
	s.lastFail[cloud] = now
	if s.tr != nil {
		s.trace(obs.TraceEvent{Kind: "outage", Cloud: cloud})
	}
	s.requeueOn(cloud, now)
	s.dropResvOn(cloud)
	// The capacity world changed out from under every cached decision.
	s.resvEpoch++
	s.invalidateMemos()
	s.kick()
}

// cloudRestored handles EventCloudRestored: clear the down mark and — when
// the cloud's recent failure streak crosses the flap threshold — quarantine
// it behind a jittered exponential backoff before the placement path may
// trust it again. Naive mode (the E14 baseline) readmits immediately,
// so flapping clouds get jobs placed straight back onto them.
func (s *Scheduler) cloudRestored(cloud string) {
	s.ensureFaultState()
	now := s.K.Now()
	if s.downClouds[cloud] {
		delete(s.downClouds, cloud)
		s.m.restores.Inc()
		if s.tr != nil {
			s.trace(obs.TraceEvent{Kind: "restore", Cloud: cloud})
		}
		if !s.cfg.NaiveFaultMode && s.failStreak[cloud] >= s.cfg.FlapThreshold {
			d := s.quarBackoff(cloud)
			s.quarUntil[cloud] = now + d
			s.m.quarantines.Inc()
			// Wake a cycle when the quarantine lapses; pruneQuarantine readmits.
			s.K.Schedule(d, s.kickFn)
		}
	}
	// A restore for a cloud the scheduler never marked down (a partial
	// outage ending, say) still means capacity returned: invalidate and
	// recheck the queue either way.
	s.resvEpoch++
	s.invalidateMemos()
	s.kick()
}

// quarBackoff computes the cloud's quarantine: base doubled per failure past
// the flap threshold, capped, then jittered to [0.5, 1.5) of the nominal so
// synchronized flappers do not readmit in lockstep.
func (s *Scheduler) quarBackoff(cloud string) sim.Time {
	d := s.cfg.FaultQuarantineBase
	for n := s.failStreak[cloud] - s.cfg.FlapThreshold; n > 0 && d < s.cfg.FaultQuarantineMax; n-- {
		d *= 2
	}
	if d > s.cfg.FaultQuarantineMax {
		d = s.cfg.FaultQuarantineMax
	}
	return sim.Time(float64(d) * (0.5 + s.faultRand().Float64()))
}

// requeueOn tears down and requeues every running gang with workers on the
// failed cloud, in submission order. Each victim's dead-cloud leases are
// already closed (FailCloud evicted them), so Preempt's eviction transition
// no-ops there; leases on surviving member clouds convert to shields that
// are released immediately — the survivors' cores return to the pool for
// the requeued queue to re-place. Progress credit follows the preemption
// machinery (the executed fraction discounts the next dispatch's estimate,
// charge, and reservation) unless NaiveFaultMode zeroes it.
func (s *Scheduler) requeueOn(cloud string, now sim.Time) {
	victims := s.runScratch[:0]
	for _, j := range s.running {
		if j.Spec.External() || j.handle == nil || j.relocating {
			continue
		}
		if j.Plan.WorkersOn(cloud) == 0 {
			continue
		}
		p, ok := j.handle.(Preemptor)
		if !ok || !p.Preemptible() {
			continue
		}
		victims = append(victims, j)
	}
	s.runScratch = victims
	for _, j := range victims {
		credit := 0.0
		if !s.cfg.NaiveFaultMode {
			if md, mt, rd, rt := j.handle.Progress(); mt+rt > 0 {
				credit = float64(md+rd) / float64(mt+rt)
			}
		}
		if s.tr != nil {
			s.trace(obs.TraceEvent{Kind: "requeue", Tenant: j.Spec.Tenant, Job: j.ID,
				Cloud: cloud, Workers: j.workers(), Cores: j.coresNow, Plan: j.Plan.String()})
		}
		for _, sh := range j.handle.(Preemptor).Preempt(now) {
			sh.Release()
		}
		s.m.outageRequeues.Inc()
		s.requeue(j, credit)
		j.outageRequeuedAt = now
	}
}

// dropResvOn releases the head reservation when its plan claims the failed
// cloud: the dead-cloud leases are already closed, the surviving members'
// holds are returned, and the next cycle recomputes the claim against the
// shrunken federation (remapping it off the failed cloud).
func (s *Scheduler) dropResvOn(cloud string) {
	if s.resv == nil || s.resv.plan.WorkersOn(cloud) == 0 {
		return
	}
	s.dropReservation()
	s.agingJob, s.agingSlips = "", 0
}

// pruneQuarantine readmits clouds whose quarantine has lapsed and filters
// the still-quarantined ones out of the cycle snapshot, so no placement,
// reservation, or backfill decision can touch them. Down clouds stay in the
// snapshot — the ledger reports them at zero free cores, which the policies
// already refuse — but quarantined clouds are healthy in the ledger and must
// be hidden here. Called only when the quarantine set is non-empty.
func (s *Scheduler) pruneQuarantine(snap []CloudInfo) []CloudInfo {
	now := s.K.Now()
	for name, until := range s.quarUntil {
		if now >= until {
			delete(s.quarUntil, name)
			s.failStreak[name] = 0 // served its sentence: clean slate
			delete(s.lastFail, name)
			s.m.readmissions.Inc()
		}
	}
	if len(s.quarUntil) == 0 {
		return snap
	}
	out := snap[:0]
	for _, c := range snap {
		if _, q := s.quarUntil[c.Name]; !q {
			out = append(out, c)
		}
	}
	return out
}

// retryBackoff computes the delay before a transiently failed launch is
// retried: base doubled per attempt, capped at the quarantine ceiling,
// jittered to [0.5, 1.5) of nominal.
func (s *Scheduler) retryBackoff(attempt int) sim.Time {
	d := s.cfg.RetryBackoffBase
	for n := attempt - 1; n > 0 && d < s.cfg.FaultQuarantineMax; n-- {
		d *= 2
	}
	if d > s.cfg.FaultQuarantineMax {
		d = s.cfg.FaultQuarantineMax
	}
	return sim.Time(float64(d) * (0.5 + s.faultRand().Float64()))
}

// CloudDown reports whether the scheduler currently considers the cloud
// failed (between its outage and restore events).
func (s *Scheduler) CloudDown(cloud string) bool { return s.downClouds[cloud] }

// Quarantined reports whether the cloud is readmission-quarantined right now.
func (s *Scheduler) Quarantined(cloud string) bool {
	until, ok := s.quarUntil[cloud]
	return ok && s.K.Now() < until
}
