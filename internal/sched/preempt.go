package sched

import (
	"sort"

	"repro/internal/capacity"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Spot-priced preemption: placement decisions become revocable. When the
// blocked head job's reservation has aged out (its reserved start slipped
// Config.maxSlips consecutive recomputes — the signature of backfilled jobs
// overrunning the estimates that let them slide past the head), the
// scheduler evicts the cheapest set of backfilled jobs whose cores let the
// head start now, instead of waiting for releases that keep not happening.
//
// Eviction price is remaining work × tenant share deficit: a victim with
// most of its run still ahead wastes little completed work, and a victim
// whose tenant is over its entitled share owes the capacity anyway. Victims
// requeue with their queue position (submission order within the tenant
// queue) and progress credit (the executed fraction discounts their next
// estimate and charge) preserved, and a per-job preemption cap keeps
// repeated eviction from starving anyone.
//
// The capacity side is a first-class ledger transition, not a release +
// acquire race: each victim lease converts to a beneficiary reservation
// (capacity.Ledger.Evict) in one step, so nothing can probe the freed cores
// away between the eviction and the head's dispatch.

// Preemptor is the optional Handle extension backends implement to support
// eviction: Preempt tears the job's workers down immediately — without
// delivering an Outcome — and returns the shield leases minted by the
// ledger eviction transitions (Reserved at `at` for the beneficiary). The
// scheduler releases the shields once the beneficiary has its capacity.
type Preemptor interface {
	// Preemptible reports whether the job can be torn down right now (a
	// cluster still provisioning cannot free its cores synchronously).
	Preemptible() bool
	Preempt(at sim.Time) []*capacity.Lease
}

// preemptible reports whether a running job is an eviction candidate: only
// backfilled jobs (they slid past the blocked head; evicting an in-order
// dispatch would break fair ordering), on capacity the scheduler manages,
// under the per-job preemption cap, not mid-relocation (tearing down a
// half-migrated gang would split its accounting across two clouds), with a
// backend that can tear them down.
func (s *Scheduler) preemptible(j *Job) bool {
	if j.State != Running || !j.Backfilled || j.Spec.External() || j.handle == nil || j.relocating {
		return false
	}
	if j.Preemptions >= s.cfg.MaxPreemptions {
		return false
	}
	p, ok := j.handle.(Preemptor)
	return ok && p.Preemptible()
}

// evictPrice prices evicting j now: estimated remaining core-seconds scaled
// by the victim tenant's share deficit. deficit = entitled − delivered, so
// an underserved tenant's jobs are expensive (they are owed capacity) and
// an overserved tenant's cheap. The factor is floored so price stays
// ordered by remaining work even at extreme surpluses.
func (s *Scheduler) evictPrice(j *Job, now sim.Time, shares, entitled map[string]float64) float64 {
	remaining := (j.Started + j.estDuration - now).Seconds()
	if remaining < 0 {
		remaining = 0
	}
	work := remaining * float64(j.coresNow)
	factor := 1 + (entitled[j.Spec.Tenant] - shares[j.Spec.Tenant])
	if factor < 0.1 {
		factor = 0.1
	}
	return work * factor
}

// chooseVictims picks the cheapest set of backfilled jobs whose freed cores
// give the head job a plan right now: candidates are sorted by eviction
// price and added to a what-if view one at a time until the placement
// policy produces a plan. nil when even evicting every candidate leaves the
// head unplaceable (the eviction would be pure waste, so none happens).
func (s *Scheduler) chooseVictims(head *Job, v *CloudView) ([]*Job, map[*Job]float64) {
	cand := s.evictCand[:0]
	for _, j := range s.running {
		if j != head && s.preemptible(j) {
			cand = append(cand, j)
		}
	}
	s.evictCand = cand
	if len(cand) == 0 {
		return nil, nil
	}
	now := s.K.Now()
	shares, entitled := s.Shares(), s.EntitledShares()
	prices := make(map[*Job]float64, len(cand))
	if s.pool != nil && len(cand) >= parallelEvictMin {
		// Pool-parallel pricing: each candidate's price is pure arithmetic
		// over its own record and the two read-only share maps, written to
		// an index-aligned slot — order-independent, so the fan-out cannot
		// perturb the sort below.
		for len(s.evictPrices) < len(cand) {
			s.evictPrices = append(s.evictPrices, 0)
		}
		pr := s.evictPrices[:len(cand)]
		s.pool.run(len(cand), func(_, k int) {
			pr[k] = s.evictPrice(cand[k], now, shares, entitled)
		})
		for i, j := range cand {
			prices[j] = pr[i]
		}
	} else {
		for _, j := range cand {
			prices[j] = s.evictPrice(j, now, shares, entitled)
		}
	}
	sort.Slice(cand, func(i, k int) bool {
		if prices[cand[i]] != prices[cand[k]] {
			return prices[cand[i]] < prices[cand[k]]
		}
		return cand[i].seq < cand[k].seq // determinism
	})
	av := &s.evictView
	av.shareIndex(v)
	// Pool-parallel prefix fit: the what-if availability after each prefix of
	// the price-sorted candidate list is accumulated sequentially (identical
	// adds, identical order), then the per-prefix placement probes fan out
	// over the workers. The winner is the FIRST prefix index with a plan —
	// the same index the sequential walk below stops at — and the probe plans
	// are discarded (preemptFor re-chooses after eviction), so only that
	// index matters. Gated like every speculative path on a pure
	// scratch-scoring policy; RandomPlacement keeps the sequential loop and
	// its RNG draw order.
	if s.pool != nil && len(cand) >= parallelEvictMin && s.memoable {
		if sc, ok := s.cfg.Placement.(scratchChooser); ok {
			if k := s.victimPrefixPar(head, cand, av, sc); k >= 0 {
				return cand[:k+1], prices
			}
			return nil, nil
		}
	}
	for n, victim := range cand {
		// Only the victim's base plan is credited to the what-if view: the
		// scheduler does not know which clouds host its elastic extras, and
		// under-crediting is the safe direction — at worst one more victim
		// than strictly necessary is evicted, never a head that cannot
		// actually start.
		cpw := victim.coresPerWorker()
		for _, m := range victim.Plan.Members {
			if p := av.Pos(m.Cloud); p >= 0 {
				av.free[p] += m.Workers * cpw
			}
		}
		if s.provablyEmpty(head, av) {
			continue
		}
		if plan := s.cfg.Placement.Choose(s, head, av); !plan.Empty() {
			return cand[:n+1], prices
		}
	}
	return nil, nil
}

// preemptOutcome reports what the eviction pass did.
type preemptOutcome int

const (
	// preemptNone: no viable victim set — nothing was touched.
	preemptNone preemptOutcome = iota
	// preemptDispatched: victims evicted, head dispatched on their cores.
	preemptDispatched
	// preemptEvictedOnly: victims were evicted and requeued but the head
	// still found no plan (a backend freed fewer cores than the victims'
	// recorded plans promised — e.g. unreplaced spot revocations). The
	// caller must not reuse a reservation computed before the evictions:
	// its release walk includes the victims' phantom entries.
	preemptEvictedOnly
)

// preemptFor runs the eviction pass for the blocked head job at the front
// of tenant t's queue. On preemptDispatched the victims are torn down and
// requeued and the head runs on their cores; the caller's cycle continues
// with a re-snapshotted view. preemptNone leaves everything as it was (no
// victim is evicted unless the head provably starts).
func (s *Scheduler) preemptFor(t *Tenant, head *Job, v *CloudView) preemptOutcome {
	victims, prices := s.chooseVictims(head, v)
	if victims == nil {
		return preemptNone
	}
	now := s.K.Now()
	var shields []*capacity.Lease
	for _, victim := range victims {
		shields = append(shields, s.evict(victim, now, prices[victim], "preempt")...)
	}
	// Backend teardown freed the cores synchronously (admission is
	// synchronous since the unified ledger): re-snapshot and place the head.
	// The mid-cycle frees must advance the watermark clocks here —
	// observeFrees only diffs at cycle starts, and whatever the head does
	// not consume would otherwise never wake other unfit-marked jobs.
	s.evictPrev = append(s.evictPrev[:0], v.free...)
	v.Reset(s.snapshotClouds())
	s.bumpView() // mid-cycle re-snapshot: the memo's view is gone
	for i, c := range v.Clouds {
		if i < len(s.evictPrev) {
			if d := v.free[i] - s.evictPrev[i]; d > 0 {
				s.freedCum += int64(d)
				s.freedBy[c.Name] += int64(d)
			}
		}
	}
	plan := s.cfg.Placement.Choose(s, head, v)
	if plan.Empty() {
		// Cannot happen while the what-if view mirrors backend frees; if a
		// backend ever under-frees, the victims stay requeued (they will
		// redispatch) and the head keeps waiting on a fresh reservation.
		for _, le := range shields {
			le.Release()
		}
		return preemptEvictedOnly
	}
	s.dispatch(t, head, plan, false, v)
	cpw := head.coresPerWorker()
	for _, m := range plan.Members {
		v.take(m.Cloud, m.Workers*cpw)
	}
	s.bumpView()
	for _, le := range shields {
		le.Release()
	}
	s.agingJob, s.agingSlips = "", 0
	return preemptDispatched
}

// evict tears one victim down and requeues it: progress credit is computed
// from the handle's last observed progress, the tenant's accounts are
// trued up to the work actually delivered, and the job re-enters its
// tenant's queue at its submission-order position. price is the victim's
// eviction price (for the decision trace); kind names the path that chose
// it ("preempt" for head-driven, "forced_preempt" for elastic overrun).
func (s *Scheduler) evict(victim *Job, at sim.Time, price float64, kind string) []*capacity.Lease {
	var credit float64
	if md, mt, rd, rt := victim.handle.Progress(); mt+rt > 0 {
		credit = float64(md+rd) / float64(mt+rt)
	}
	if s.tr != nil {
		s.trace(obs.TraceEvent{Kind: kind, Tenant: victim.Spec.Tenant, Job: victim.ID,
			Cloud: victim.Cloud, Workers: victim.workers(), Cores: victim.coresNow,
			Price: price, Plan: victim.Plan.String()})
	}
	shields := victim.handle.(Preemptor).Preempt(at)
	s.m.preemptions.Inc()
	victim.Preemptions++
	s.requeue(victim, credit)
	return shields
}

// requeue moves a just-evicted job from running back to queued, preserving
// queue position credit (it re-enters the tenant queue in submission order,
// ahead of everything submitted after it) and progress credit (the executed
// fraction of the original work discounts the next dispatch's estimate).
func (s *Scheduler) requeue(j *Job, progressFrac float64) {
	t := s.tenants[j.Spec.Tenant]
	now := s.K.Now()
	// Bank the work actually delivered and back out the unused remainder of
	// the dispatch-time charge — the same true-up a completion performs.
	s.trueUp(t, j, now)
	s.removeReleases(j)
	s.dropRunning(j)
	s.relSnapDirty = true
	// Progress credit compounds across evictions: the last dispatch ran
	// (1 − creditFrac) of the original work, of which progressFrac finished.
	if progressFrac > 0 {
		j.creditFrac += progressFrac * (1 - j.creditFrac)
		if j.creditFrac > 0.95 {
			j.creditFrac = 0.95 // keep the re-estimate strictly positive
		}
	}
	j.State = Queued
	j.handle = nil
	j.dispatched = false
	j.Backfilled = false
	j.Plan = Plan{}
	j.Cloud = ""
	j.coresNow, j.accrued, j.charged = 0, 0, 0
	j.deadlineGrown, j.spotReplaced, j.shrunk = 0, 0, false
	j.relocating = false
	j.unfit = false
	// Submission-order insert: everything the victim originally preceded,
	// it still precedes.
	i := sort.Search(len(t.queue), func(k int) bool { return t.queue[k].seq > j.seq })
	t.queue = append(t.queue, nil)
	copy(t.queue[i+1:], t.queue[i:])
	t.queue[i] = j
	// Keep this cycle's scan position pointing at the same next-unexamined
	// entry (and the head job it is about to dispatch).
	if t.scanCycle == s.cycleNum && i <= t.scan {
		t.scan++
	}
	s.nQueued++
	s.m.queuedJobs.SetInt(int64(s.nQueued))
}
