package sched

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestStatsReadableDuringRun is the -race regression for the scheduler
// stats: every accessor must be safe to read from another goroutine while
// the kernel is dispatching, preempting, and completing jobs. Before the
// stats moved onto atomic registry counters this was a data race.
func TestStatsReadableDuringRun(t *testing.T) {
	k := sim.NewKernel(11)
	b := NewSimBackend(k)
	b.AddCloud("c0", 16, 1, 0.10)
	b.AddCloud("c1", 16, 1, 0.12)
	s := New(b, Config{EnablePreemption: true})
	s.Start()
	s.AddTenant("gold", 3)
	s.AddTenant("silver", 1)
	spec := JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 50}
	submitN(t, s, "gold", 30, spec)
	submitN(t, s, "silver", 30, spec)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sink := 0
		for !stop.Load() {
			sink += s.Cycles() + s.Dispatched() + s.Backfills() + s.Completed() +
				s.Failures() + s.GrowRequests() + s.ShrinkRequests() +
				s.SpotRevocations() + s.SpotReplacements() + s.PatternEvents() +
				s.Preemptions() + s.ForcedPreemptions() + s.ReservationAgings() +
				s.ConsolidationRequests() + s.Consolidations() + s.ResvCacheHits() +
				s.SpanningDispatched()
		}
		_ = sink
	}()
	k.RunUntil(2000 * sim.Second)
	stop.Store(true)
	wg.Wait()

	if s.Completed() == 0 {
		t.Fatal("no jobs completed; the run exercised nothing")
	}
	if s.Dispatched() < s.Completed() {
		t.Errorf("Dispatched=%d < Completed=%d", s.Dispatched(), s.Completed())
	}
}

// tracedRun drives one seeded contention run with tracing and streams the
// JSONL into a buffer. Two calls with the same seed must produce identical
// bytes: every traced field derives from virtual time and kernel-seeded
// randomness only.
func tracedRun(t *testing.T, seed int64) []byte {
	t.Helper()
	k := sim.NewKernel(seed)
	b := NewSimBackend(k)
	b.AddCloud("c0", 16, 1, 0.10)
	b.AddCloud("c1", 16, 1, 0.12)
	b.UseLogNormalOverrun(0, 0.4)
	tr := obs.NewTracer(1 << 14)
	var buf bytes.Buffer
	tr.SetSink(&buf)
	s := New(b, Config{EnablePreemption: true, Trace: tr})
	s.Start()
	s.AddTenant("gold", 3)
	s.AddTenant("silver", 1)
	for i := 0; i < 20; i++ {
		w := 2
		if i%4 == 3 {
			w = 6 // wide jobs block and force backfills + preemption pressure
		}
		submitN(t, s, "gold", 1, JobSpec{Workers: w, CoresPerWorker: 2, EstimateSeconds: 80})
		submitN(t, s, "silver", 1, JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 60})
	}
	k.RunUntil(3000 * sim.Second)
	if tr.Len() == 0 {
		t.Fatal("run emitted no trace events")
	}
	return buf.Bytes()
}

// TestTraceByteIdenticalAcrossRuns: two identical seeded runs emit
// byte-identical decision traces. This is the property that makes traces
// diffable across commits — any wall-clock or map-order leak breaks it.
func TestTraceByteIdenticalAcrossRuns(t *testing.T) {
	a := tracedRun(t, 7)
	c := tracedRun(t, 7)
	if !bytes.Equal(a, c) {
		t.Fatalf("same-seed traces differ (%d vs %d bytes)", len(a), len(c))
	}
	if other := tracedRun(t, 8); bytes.Equal(a, other) {
		t.Error("different seeds produced identical traces; trace is not exercising randomness")
	}
	if !bytes.Contains(a, []byte(`"kind":"dispatch"`)) {
		t.Error("trace has no dispatch events")
	}
}

// TestUseLogNormalOverrun: the kernel-seeded estimate-error model draws one
// seed from the kernel stream, so the same kernel seed reproduces the same
// multiplier sequence, and sigma>0 actually varies across jobs.
func TestUseLogNormalOverrun(t *testing.T) {
	draw := func(seed int64) []float64 {
		k := sim.NewKernel(seed)
		b := NewSimBackend(k)
		b.UseLogNormalOverrun(0, 0.5)
		out := make([]float64, 50)
		for i := range out {
			out[i] = b.Overrun(nil)
		}
		return out
	}
	a, c := draw(3), draw(3)
	varies := false
	for i := range a {
		if a[i] <= 0 {
			t.Fatalf("multiplier %d = %v, want > 0", i, a[i])
		}
		if a[i] != c[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], c[i])
		}
		if a[i] != a[0] {
			varies = true
		}
	}
	if !varies {
		t.Error("sigma=0.5 produced a constant multiplier")
	}
	if other := draw(4); other[0] == a[0] {
		t.Error("different kernel seeds produced the same first draw")
	}
}

// TestPhaseProfiling: with a fake monotonic clock, every scheduling cycle
// lands observations in the placement phase histogram, and the histogram is
// reachable through the public registry.
func TestPhaseProfiling(t *testing.T) {
	k := sim.NewKernel(5)
	b := saturatedBackend(k)
	s := New(b, Config{})
	var ticks int64
	s.m.clock = func() int64 { ticks += 1e6; return ticks } // 1 ms per reading
	s.AddTenant("t", 1)
	submitN(t, s, "t", 4, JobSpec{Workers: 2, CoresPerWorker: 2, EstimateSeconds: 30})
	k.RunUntil(300 * sim.Second)
	if s.Completed() != 4 {
		t.Fatalf("completed %d jobs, want 4", s.Completed())
	}
	n := s.Obs().Value("sky_sched_phase_seconds", "placement", "1")
	if n < float64(s.Cycles()) {
		t.Errorf("placement phase observed %v times over %d cycles", n, s.Cycles())
	}
}
