package sched

import "repro/internal/netmon"

// Events are the scheduler's inbound signal path from the rest of the
// stack: the nimbus spot market (revocations, forwarded by the federation's
// scheduler-aware revocation wiring) and the §III-C monitoring pipeline
// (traffic patterns classified from netmon matrices).

// EventKind discriminates Event.
type EventKind int

// Event kinds.
const (
	// EventSpotRevoked reports a spot worker lost mid-job. The scheduler
	// replaces it with on-demand capacity unless DisableSpotReplacement.
	EventSpotRevoked EventKind = iota
	// EventPatternDetected reports a tenant's classified communication
	// pattern; communication-heavy patterns bias future placement toward
	// better-connected clouds.
	EventPatternDetected
	// EventCloudFailed reports a cloud outage. The backend must have run the
	// ledger's FailCloud transition first; the scheduler then requeues
	// running gangs with workers there (progress credit preserved), remaps
	// any head reservation claiming the cloud, and records the failure in
	// the cloud's flap history (see faults.go).
	EventCloudFailed
	// EventCloudRestored reports the outage's end. Clouds past the flap
	// threshold are quarantined behind a jittered exponential backoff
	// before placement may trust them again.
	EventCloudRestored
)

// Event is one notification.
type Event struct {
	Kind    EventKind
	Job     string // spot: affected job ID
	Cloud   string // spot: cloud that revoked; fault: cloud that failed/restored
	Tenant  string // pattern: whose traffic
	Pattern string // pattern: one of the Pattern* constants
}

// Classified traffic patterns.
const (
	PatternAllToAll     = "all-to-all"
	PatternRing         = "ring"
	PatternMasterWorker = "master-worker"
	PatternSparse       = "sparse"
)

// Notify delivers an event to the scheduler.
func (s *Scheduler) Notify(ev Event) {
	switch ev.Kind {
	case EventSpotRevoked:
		j := s.jobByID(ev.Job)
		if j == nil {
			return
		}
		j.Revocations++
		s.m.spotRevocations.Inc()
		if j.State == Running {
			// The worker is gone: the delivered-capacity ledger shrinks at
			// this instant (a replacement, if any, re-grows it on arrival).
			s.resize(j, -j.coresPerWorker())
		}
		if j.State == Running && j.handle != nil && !s.cfg.DisableSpotReplacement {
			j.spotReplaced++
			s.m.spotReplacements.Inc()
			s.growOne(j, &j.spotReplaced)
		}
		// Revocation freed cores on the source cloud.
		s.kick()
	case EventPatternDetected:
		if ev.Tenant != "" && ev.Pattern != "" {
			s.patternOf[ev.Tenant] = ev.Pattern
			if t := s.tenants[ev.Tenant]; t != nil {
				t.boosted = ev.Pattern == PatternAllToAll || ev.Pattern == PatternRing
			}
			s.m.patternEvents.Inc()
			// Pattern boosts feed placement scoring, which the cached head
			// reservation baked in — invalidate it.
			s.resvEpoch++
		}
	case EventCloudFailed:
		s.cloudFailed(ev.Cloud)
	case EventCloudRestored:
		s.cloudRestored(ev.Cloud)
	}
}

// PatternOf returns the tenant's last detected pattern ("" if none).
func (s *Scheduler) PatternOf(tenant string) string { return s.patternOf[tenant] }

// ClassifyMatrix names the communication structure of an observed traffic
// matrix (the netmon detector's output): all-to-all when most ordered pairs
// exchange bytes, ring when every endpoint has exactly one successor,
// master-worker when one endpoint touches almost every edge, else sparse.
func ClassifyMatrix(m netmon.Matrix) string {
	nodes := make(map[string]bool)
	outDeg := make(map[string]int)
	inDeg := make(map[string]int)
	touch := make(map[string]int)
	edges := 0
	for e, b := range m {
		if b <= 0 || e[0] == e[1] {
			continue
		}
		edges++
		nodes[e[0]], nodes[e[1]] = true, true
		outDeg[e[0]]++
		inDeg[e[1]]++
		touch[e[0]]++
		touch[e[1]]++
	}
	n := len(nodes)
	if n < 2 || edges == 0 {
		return PatternSparse
	}
	if float64(edges) >= 0.6*float64(n*(n-1)) {
		return PatternAllToAll
	}
	if edges == n {
		ring := true
		for node := range nodes {
			if outDeg[node] != 1 || inDeg[node] != 1 {
				ring = false
				break
			}
		}
		if ring {
			return PatternRing
		}
	}
	for node := range nodes {
		if float64(touch[node]) >= 0.8*float64(edges) {
			return PatternMasterWorker
		}
	}
	return PatternSparse
}
