// Package sim provides a deterministic discrete-event simulation kernel.
//
// All substrates in this repository (network, clouds, migration, MapReduce)
// are built on this kernel. Time is virtual: an int64 count of microseconds
// since the start of the simulation. Events are callbacks ordered by
// (time, sequence number), so two events scheduled for the same instant fire
// in scheduling order, which makes every run with the same seed bit-for-bit
// reproducible.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in microseconds.
type Time int64

// Duration constants, expressed in Time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Seconds converts a virtual time (or duration) to float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts float64 seconds to a virtual duration.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String renders the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Callee is a pre-bound event target for AtCall/ScheduleCall. Storing an
// existing pointer behind the interface is allocation-free, where wrapping
// the same call in a func() closure costs one heap object per schedule —
// the difference matters on per-job hot paths under million-event replays.
type Callee interface{ Fire() }

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	callee    Callee
	cancelled bool
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.cancelled }

// eventHeap is a 4-ary min-heap ordered by (at, seq). Because seq is unique,
// that order is strict and total, so pop order is exactly sorted order — the
// heap's internal layout (arity, sift strategy) cannot affect which event
// fires next. That freedom is spent on speed: concrete types instead of
// container/heap's interface dispatch, a 4-ary layout for half the levels of
// a binary heap, and hole-based sifting that moves each displaced element
// once instead of swapping pairs.
type eventHeap []*Event

// before reports whether a fires strictly before b.
func eventBefore(a, b *Event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func (h *eventHeap) push(e *Event) {
	hh := append(*h, nil)
	i := len(hh) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventBefore(e, hh[p]) {
			break
		}
		hh[i] = hh[p]
		i = p
	}
	hh[i] = e
	*h = hh
}

func (h *eventHeap) pop() *Event {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	last := hh[n]
	hh[n] = nil // release the arena-chunk reference
	hh = hh[:n]
	*h = hh
	if n == 0 {
		return top
	}
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m, me := c, hh[c]
		for j := c + 1; j < end; j++ {
			if eventBefore(hh[j], me) {
				m, me = j, hh[j]
			}
		}
		if !eventBefore(me, last) {
			break
		}
		hh[i] = me
		i = m
	}
	hh[i] = last
	return top
}

// Kernel is the discrete-event scheduler. It is not safe for concurrent use:
// the simulation model is single-threaded by design for determinism.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	stopped bool
	fired   uint64
	// arena is the event allocation block: At carves Events out of it in
	// chunks instead of one heap object per schedule, which was the single
	// largest allocation source under million-event replays. Events are
	// never recycled (a fired chunk slot stays dead), so a held *Event
	// stays valid to Cancel forever.
	arena []Event
}

// eventArenaSize is the chunk size At allocates Events in. A chunk is
// retained until every event carved from it is unreachable, so the size
// trades allocation count against worst-case stranded memory per chunk.
const eventArenaSize = 256

// NewKernel returns a kernel with virtual time 0 and a deterministic RNG
// seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. All model code must
// draw randomness from here (or from sources derived from it) so runs are
// reproducible.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Pending returns the number of events currently scheduled.
func (k *Kernel) Pending() int { return len(k.events) }

// Fired returns the total number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Schedule runs fn after delay units of virtual time. A negative delay is
// treated as zero (fire "now", after already-queued events for this instant).
func (k *Kernel) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return k.At(k.now+delay, fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped to now.
func (k *Kernel) At(t Time, fn func()) *Event {
	e := k.newEvent(t)
	e.fn = fn
	k.events.push(e)
	return e
}

// AtCall is At for a pre-bound target: c.Fire() runs at absolute time t.
func (k *Kernel) AtCall(t Time, c Callee) *Event {
	e := k.newEvent(t)
	e.callee = c
	k.events.push(e)
	return e
}

// ScheduleCall is Schedule for a pre-bound target: c.Fire() runs after
// delay units of virtual time.
func (k *Kernel) ScheduleCall(delay Time, c Callee) *Event {
	if delay < 0 {
		delay = 0
	}
	return k.AtCall(k.now+delay, c)
}

// newEvent carves the next arena slot and stamps its time and sequence.
func (k *Kernel) newEvent(t Time) *Event {
	if t < k.now {
		t = k.now
	}
	k.seq++
	if len(k.arena) == 0 {
		k.arena = make([]Event, eventArenaSize)
	}
	e := &k.arena[0]
	k.arena = k.arena[1:]
	e.at, e.seq = t, k.seq
	return e
}

// Step fires the next event, if any, advancing virtual time to it.
// It returns false when the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.events) > 0 {
		e := k.events.pop()
		if e.cancelled {
			e.fn, e.callee = nil, nil
			continue
		}
		k.now = e.at
		k.fired++
		fn, c := e.fn, e.callee
		// Drop the callback references before firing: the arena chunk
		// holding this event may outlive it, and pinning every fired
		// closure until the chunk drains would defeat the arena.
		e.fn, e.callee = nil, nil
		if c != nil {
			c.Fire()
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t
// (if the simulation had not already advanced past it).
func (k *Kernel) RunUntil(t Time) {
	k.stopped = false
	for !k.stopped {
		if len(k.events) == 0 {
			break
		}
		// Peek at the earliest event without popping.
		if k.events[0].at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// Stop makes the current Run/RunUntil return after the in-flight event.
func (k *Kernel) Stop() { k.stopped = true }

// Ticker invokes fn every period until the returned cancel function is
// called. The first invocation happens after one period.
func (k *Kernel) Ticker(period Time, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			k.Schedule(period, tick)
		}
	}
	k.Schedule(period, tick)
	return func() { stopped = true }
}

// ExpJitter returns a duration drawn from an exponential distribution with
// the given mean, useful for arrival processes.
func (k *Kernel) ExpJitter(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	return Time(k.rng.ExpFloat64() * float64(mean))
}

// UniformJitter returns a duration uniformly distributed in [0, max).
func (k *Kernel) UniformJitter(max Time) Time {
	if max <= 0 {
		return 0
	}
	return Time(k.rng.Int63n(int64(max)))
}
