// Package sim provides a deterministic discrete-event simulation kernel.
//
// All substrates in this repository (network, clouds, migration, MapReduce)
// are built on this kernel. Time is virtual: an int64 count of microseconds
// since the start of the simulation. Events are callbacks ordered by
// (time, sequence number), so two events scheduled for the same instant fire
// in scheduling order, which makes every run with the same seed bit-for-bit
// reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in microseconds.
type Time int64

// Duration constants, expressed in Time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Seconds converts a virtual time (or duration) to float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts float64 seconds to a virtual duration.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String renders the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index; -1 once popped or cancelled
	cancelled bool
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is the discrete-event scheduler. It is not safe for concurrent use:
// the simulation model is single-threaded by design for determinism.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	stopped bool
	fired   uint64
}

// NewKernel returns a kernel with virtual time 0 and a deterministic RNG
// seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. All model code must
// draw randomness from here (or from sources derived from it) so runs are
// reproducible.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Pending returns the number of events currently scheduled.
func (k *Kernel) Pending() int { return len(k.events) }

// Fired returns the total number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Schedule runs fn after delay units of virtual time. A negative delay is
// treated as zero (fire "now", after already-queued events for this instant).
func (k *Kernel) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return k.At(k.now+delay, fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped to now.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		t = k.now
	}
	k.seq++
	e := &Event{at: t, seq: k.seq, fn: fn}
	heap.Push(&k.events, e)
	return e
}

// Step fires the next event, if any, advancing virtual time to it.
// It returns false when the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(*Event)
		if e.cancelled {
			continue
		}
		k.now = e.at
		k.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t
// (if the simulation had not already advanced past it).
func (k *Kernel) RunUntil(t Time) {
	k.stopped = false
	for !k.stopped {
		if len(k.events) == 0 {
			break
		}
		// Peek at the earliest event without popping.
		if k.events[0].at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// Stop makes the current Run/RunUntil return after the in-flight event.
func (k *Kernel) Stop() { k.stopped = true }

// Ticker invokes fn every period until the returned cancel function is
// called. The first invocation happens after one period.
func (k *Kernel) Ticker(period Time, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			k.Schedule(period, tick)
		}
	}
	k.Schedule(period, tick)
	return func() { stopped = true }
}

// ExpJitter returns a duration drawn from an exponential distribution with
// the given mean, useful for arrival processes.
func (k *Kernel) ExpJitter(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	return Time(k.rng.ExpFloat64() * float64(mean))
}

// UniformJitter returns a duration uniformly distributed in [0, max).
func (k *Kernel) UniformJitter(max Time) Time {
	if max <= 0 {
		return 0
	}
	return Time(k.rng.Int63n(int64(max)))
}
