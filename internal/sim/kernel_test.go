package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.Schedule(3*Second, func() { order = append(order, 3) })
	k.Schedule(1*Second, func() { order = append(order, 1) })
	k.Schedule(2*Second, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if k.Now() != 3*Second {
		t.Fatalf("clock = %v, want 3s", k.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(Second, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.Schedule(Second, func() { fired = true })
	e.Cancel()
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() should report true")
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	var times []Time
	k.Schedule(Second, func() {
		times = append(times, k.Now())
		k.Schedule(Second, func() {
			times = append(times, k.Now())
		})
	})
	k.Run()
	if len(times) != 2 || times[0] != Second || times[1] != 2*Second {
		t.Fatalf("nested scheduling wrong: %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.Ticker(Second, func() { count++ })
	k.RunUntil(5*Second + 500*Millisecond)
	if count != 5 {
		t.Fatalf("ticker fired %d times, want 5", count)
	}
	if k.Now() != 5*Second+500*Millisecond {
		t.Fatalf("clock = %v after RunUntil", k.Now())
	}
	// Continue: ticker must still be alive.
	k.RunUntil(10 * Second)
	if count != 10 {
		t.Fatalf("ticker fired %d times after resume, want 10", count)
	}
}

func TestTickerCancel(t *testing.T) {
	k := NewKernel(1)
	count := 0
	var cancel func()
	cancel = k.Ticker(Second, func() {
		count++
		if count == 3 {
			cancel()
		}
	})
	k.RunUntil(100 * Second)
	if count != 3 {
		t.Fatalf("cancelled ticker kept firing: %d", count)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.Ticker(Second, func() {
		count++
		if count == 2 {
			k.Stop()
		}
	})
	k.Run()
	if count != 2 {
		t.Fatalf("Stop did not halt Run: count=%d", count)
	}
}

func TestPastEventClamped(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(10*Second, func() {
		e := k.At(Second, func() {}) // in the past
		if e.At() != 10*Second {
			t.Errorf("past event scheduled at %v, want clamp to now", e.At())
		}
	})
	k.Run()
}

func TestNegativeDelayClamped(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.Schedule(-5*Second, func() { fired = true })
	k.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if k.Now() != 0 {
		t.Fatalf("clock moved backwards or forwards: %v", k.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		k := NewKernel(42)
		var fires []Time
		for i := 0; i < 100; i++ {
			k.Schedule(k.ExpJitter(Second), func() { fires = append(fires, k.Now()) })
		}
		k.Run()
		return fires
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different event counts across identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatalf("Seconds() = %v", (2 * Second).Seconds())
	}
	if (1500 * Millisecond).String() != "1.500000s" {
		t.Fatalf("String() = %q", (1500 * Millisecond).String())
	}
}

// Property: the kernel clock is monotonically non-decreasing across any
// sequence of scheduled delays.
func TestPropMonotonicClock(t *testing.T) {
	f := func(delays []int16) bool {
		k := NewKernel(7)
		last := Time(-1)
		ok := true
		for _, d := range delays {
			k.Schedule(Time(d)*Millisecond, func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every non-cancelled event fires exactly once.
func TestPropAllEventsFire(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel(9)
		fired := 0
		for _, d := range delays {
			k.Schedule(Time(d)*Millisecond, func() { fired++ })
		}
		k.Run()
		return fired == len(delays) && k.Fired() == uint64(len(delays))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformJitterBounds(t *testing.T) {
	k := NewKernel(3)
	for i := 0; i < 1000; i++ {
		j := k.UniformJitter(Second)
		if j < 0 || j >= Second {
			t.Fatalf("jitter out of bounds: %v", j)
		}
	}
	if k.UniformJitter(0) != 0 || k.ExpJitter(0) != 0 {
		t.Fatal("zero-max jitter should be zero")
	}
}
