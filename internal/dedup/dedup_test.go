package dedup

import (
	"testing"
	"testing/quick"

	"repro/internal/vm"
)

func TestLookupRegister(t *testing.T) {
	r := NewRegistry("site:test")
	c := vm.ContentID(42)
	if r.Lookup(c) {
		t.Fatal("empty registry reported a hit")
	}
	r.Register(c)
	if !r.Lookup(c) {
		t.Fatal("registered content not found")
	}
	if r.Hits != 1 || r.Misses != 1 || r.Registrations != 1 {
		t.Fatalf("counters hits=%d misses=%d regs=%d", r.Hits, r.Misses, r.Registrations)
	}
	// Duplicate registration is idempotent.
	r.Register(c)
	if r.Registrations != 1 || r.Len() != 1 {
		t.Fatal("duplicate Register changed state")
	}
}

func TestContainsDoesNotCount(t *testing.T) {
	r := NewRegistry("s")
	r.Register(7)
	_ = r.Contains(7)
	_ = r.Contains(8)
	if r.Hits != 0 || r.Misses != 0 {
		t.Fatal("Contains must not touch counters")
	}
}

func TestSeedFromMemory(t *testing.T) {
	m := vm.NewContentModel(1, "img", 0.2, 0.6, 100)
	mem := vm.NewMemory(1000, m)
	r := NewRegistry("s")
	r.SeedFromMemory(mem)
	for i := 0; i < mem.NumPages(); i++ {
		if !r.Contains(mem.Page(i)) {
			t.Fatalf("page %d missing after seed", i)
		}
	}
	// Registry should be much smaller than page count: zero page + pool.
	if r.Len() >= 1000 {
		t.Fatalf("no dedup in seeded registry: %d entries", r.Len())
	}
}

func TestSeedFromDisk(t *testing.T) {
	m := vm.NewContentModel(1, "img", 0, 0.9, 50)
	d := vm.NewDiskImage("base", 500, 4096, m)
	r := NewRegistry("s")
	r.SeedFromDisk(d)
	for i := 0; i < d.NumBlocks(); i++ {
		if !r.Contains(d.Read(i)) {
			t.Fatalf("block %d missing after seed", i)
		}
	}
}

func TestHitRate(t *testing.T) {
	r := NewRegistry("s")
	if r.HitRate() != 0 {
		t.Fatal("empty registry hit rate should be 0")
	}
	r.Register(1)
	r.Lookup(1)
	r.Lookup(2)
	r.Lookup(1)
	if hr := r.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate %.3f, want 2/3", hr)
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry("s")
	r.Register(1)
	r.Lookup(1)
	r.Reset()
	if r.Len() != 0 || r.Hits != 0 || r.Misses != 0 || r.Registrations != 0 {
		t.Fatal("Reset incomplete")
	}
}

// Property: after registering any set, every member is a hit and Len equals
// the number of distinct elements.
func TestPropRegistryComplete(t *testing.T) {
	f := func(ids []uint32) bool {
		r := NewRegistry("p")
		distinct := make(map[vm.ContentID]bool)
		for _, id := range ids {
			c := vm.ContentID(id)
			r.Register(c)
			distinct[c] = true
		}
		for c := range distinct {
			if !r.Contains(c) {
				return false
			}
		}
		return r.Len() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
