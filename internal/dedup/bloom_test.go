package dedup

import (
	"testing"
	"testing/quick"

	"repro/internal/vm"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(1000, 0.01)
	for i := 1; i <= 1000; i++ {
		b.Add(vm.ContentID(i * 7919))
	}
	for i := 1; i <= 1000; i++ {
		if !b.MayContain(vm.ContentID(i * 7919)) {
			t.Fatalf("false negative for %d", i*7919)
		}
	}
	if b.Len() != 1000 {
		t.Fatalf("Len %d", b.Len())
	}
}

func TestBloomFalsePositiveRateReasonable(t *testing.T) {
	b := NewBloom(10000, 0.01)
	for i := 1; i <= 10000; i++ {
		b.Add(vm.ContentID(i))
	}
	fp := 0
	const probes = 20000
	for i := 1; i <= probes; i++ {
		if b.MayContain(vm.ContentID(1_000_000 + i*13)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Fatalf("false-positive rate %.4f too high for 1%% target", rate)
	}
}

func TestBloomDegenerateParams(t *testing.T) {
	b := NewBloom(0, 2.0) // clamped
	b.Add(5)
	if !b.MayContain(5) {
		t.Fatal("clamped filter lost an element")
	}
}

func TestBloomRegistryCounters(t *testing.T) {
	br := NewBloomRegistry(NewRegistry("s"), 1000, 0.01)
	br.Register(42)
	if !br.Lookup(42) {
		t.Fatal("registered content missed")
	}
	// Many absent lookups: most should be saved by the filter.
	for i := 1; i <= 1000; i++ {
		if br.Lookup(vm.ContentID(1_000_000 + i)) {
			t.Fatal("phantom hit")
		}
	}
	if br.Saved == 0 {
		t.Fatal("filter never rejected locally")
	}
	if br.Saved+br.FalsePositives != 1000 {
		t.Fatalf("saved %d + fp %d != 1000", br.Saved, br.FalsePositives)
	}
	// Registry miss counter must reflect every absent lookup.
	if br.Reg.Misses != 1000 {
		t.Fatalf("registry misses %d", br.Reg.Misses)
	}
}

// Property: anything added is always MayContain (no false negatives),
// regardless of the insertion set.
func TestPropBloomComplete(t *testing.T) {
	f := func(ids []uint32) bool {
		b := NewBloom(len(ids)+1, 0.02)
		for _, id := range ids {
			b.Add(vm.ContentID(id))
		}
		for _, id := range ids {
			if !b.MayContain(vm.ContentID(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
