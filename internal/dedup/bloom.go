package dedup

import "repro/internal/vm"

// Bloom is a Bloom filter over content IDs: the memory-bounded membership
// index a production Shrinker registry front-ends its lookups with (the
// research report discusses hash-registry memory as the scalability
// limit; a Bloom filter answers "definitely absent" locally without a
// round trip to the distributed store).
//
// False positives make the migrator skip a page body it actually needed —
// the destination then fetches it on fault. FalsePositiveCost in
// BloomRegistry accounts for that.
type Bloom struct {
	bits   []uint64
	nBits  uint64
	hashes int
	n      int
}

// NewBloom sizes a filter for capacity items at roughly the given
// false-positive rate using the standard m/n, k formulas, bounded to
// sensible ranges.
func NewBloom(capacity int, fpRate float64) *Bloom {
	if capacity < 1 {
		capacity = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	// m = -n ln p / (ln 2)^2, k = m/n ln 2.
	m := int(float64(capacity) * 1.44 * log2Reciprocal(fpRate))
	if m < 64 {
		m = 64
	}
	k := int(0.693*float64(m)/float64(capacity) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	words := (m + 63) / 64
	return &Bloom{bits: make([]uint64, words), nBits: uint64(words) * 64, hashes: k}
}

// log2Reciprocal returns log2(1/p) computed without math imports beyond
// integer ops (p in (0,1)).
func log2Reciprocal(p float64) float64 {
	// Simple iterative log2 via frexp-like halving; precision is ample for
	// sizing a filter.
	inv := 1 / p
	l := 0.0
	for inv >= 2 {
		inv /= 2
		l++
	}
	// Linear interpolation on the remaining fraction.
	l += inv - 1
	return l
}

// mix expands a content ID into the i-th hash value (splitmix-style).
func mix(c vm.ContentID, i int) uint64 {
	x := uint64(c) + uint64(i)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Add inserts a content ID.
func (b *Bloom) Add(c vm.ContentID) {
	for i := 0; i < b.hashes; i++ {
		bit := mix(c, i) % b.nBits
		b.bits[bit/64] |= 1 << (bit % 64)
	}
	b.n++
}

// MayContain reports whether c might be present (false = definitely not).
func (b *Bloom) MayContain(c vm.ContentID) bool {
	for i := 0; i < b.hashes; i++ {
		bit := mix(c, i) % b.nBits
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Len returns the number of inserted items.
func (b *Bloom) Len() int { return b.n }

// BloomRegistry fronts a Registry with a Bloom filter, counting how often
// the filter's false positives would have cost an extra page fetch.
type BloomRegistry struct {
	Reg   *Registry
	Bloom *Bloom

	// FalsePositives counts lookups the filter passed but the registry
	// missed (each costs one destination-side page fault in Shrinker).
	FalsePositives int64
	// Saved counts lookups the filter rejected locally (no round trip).
	Saved int64
}

// NewBloomRegistry wraps reg with a filter sized for capacity entries.
func NewBloomRegistry(reg *Registry, capacity int, fpRate float64) *BloomRegistry {
	return &BloomRegistry{Reg: reg, Bloom: NewBloom(capacity, fpRate)}
}

// Lookup consults the filter first; only filter-positive lookups reach the
// backing registry.
func (br *BloomRegistry) Lookup(c vm.ContentID) bool {
	if !br.Bloom.MayContain(c) {
		br.Saved++
		br.Reg.Misses++
		return false
	}
	hit := br.Reg.Lookup(c)
	if !hit {
		br.FalsePositives++
	}
	return hit
}

// Register records content in both the registry and the filter.
func (br *BloomRegistry) Register(c vm.ContentID) {
	br.Reg.Register(c)
	br.Bloom.Add(c)
}
