// Package dedup implements the content-based addressing substrate Shrinker
// relies on: a registry of content hashes present at a destination site,
// with hit/miss accounting.
//
// In the real system the registry is a distributed service backed by the
// destination hypervisors' memory and disk contents; hashes are SHA-1 and
// assumed collision-free. Here content identity is the vm.ContentID, so
// "hashing" is exact by construction — the same assumption, made explicit.
package dedup

import (
	"repro/internal/vm"
)

// Registry tracks which page/block contents are already present within a
// scope (one node, or a whole site for Shrinker's distributed registry).
type Registry struct {
	Scope string

	known map[vm.ContentID]struct{}

	// Counters for experiment reporting.
	Hits          int64
	Misses        int64
	Registrations int64
}

// NewRegistry returns an empty registry with a scope label ("site:X" or
// "node:Y") used in reports.
func NewRegistry(scope string) *Registry {
	return &Registry{Scope: scope, known: make(map[vm.ContentID]struct{})}
}

// Len returns the number of distinct contents registered.
func (r *Registry) Len() int { return len(r.known) }

// Lookup reports whether content c is present, updating hit/miss counters.
func (r *Registry) Lookup(c vm.ContentID) bool {
	if _, ok := r.known[c]; ok {
		r.Hits++
		return true
	}
	r.Misses++
	return false
}

// Contains reports presence without touching the counters (for seeding and
// invariant checks).
func (r *Registry) Contains(c vm.ContentID) bool {
	_, ok := r.known[c]
	return ok
}

// Register records content c as present.
func (r *Registry) Register(c vm.ContentID) {
	if _, ok := r.known[c]; !ok {
		r.known[c] = struct{}{}
		r.Registrations++
	}
}

// SeedFromMemory registers every page of a memory image — used to model VMs
// already running at the destination site whose pages the registry indexes.
func (r *Registry) SeedFromMemory(m *vm.Memory) {
	for i := 0; i < m.NumPages(); i++ {
		r.Register(m.Page(i))
	}
}

// SeedFromDisk registers every block of a disk image (e.g. the base image
// cached at the destination's repository).
func (r *Registry) SeedFromDisk(d *vm.DiskImage) {
	for i := 0; i < d.NumBlocks(); i++ {
		r.Register(d.Read(i))
	}
}

// Reset clears contents and counters.
func (r *Registry) Reset() {
	r.known = make(map[vm.ContentID]struct{})
	r.Hits, r.Misses, r.Registrations = 0, 0, 0
}

// HitRate returns Hits / (Hits + Misses), or 0 with no lookups.
func (r *Registry) HitRate() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(total)
}
