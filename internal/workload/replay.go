package workload

import (
	"fmt"
	"sort"

	"repro/internal/sched"
	"repro/internal/sim"
)

// CloudSpec is one synthetic cloud in the replay federation.
type CloudSpec struct {
	Name  string
	Cores int
	Speed float64
	Price float64
}

// DefaultClouds is the replay federation used when ReplayConfig.Clouds is
// empty: four 64-core clouds with mild speed and price spread — wide
// enough that heavy-tailed gangs span, small enough that a diurnal peak
// saturates it.
func DefaultClouds() []CloudSpec {
	return []CloudSpec{
		{Name: "cloud0", Cores: 64, Speed: 1.0, Price: 0.08},
		{Name: "cloud1", Cores: 64, Speed: 1.0, Price: 0.10},
		{Name: "cloud2", Cores: 64, Speed: 1.2, Price: 0.12},
		{Name: "cloud3", Cores: 64, Speed: 0.8, Price: 0.06},
	}
}

// ReplayConfig drives one replay.
type ReplayConfig struct {
	// Clouds is the federation (nil = DefaultClouds).
	Clouds []CloudSpec
	// Sched carries the policy knobs under test (preemption, aging,
	// consolidation, backfill, ScoreWorkers...).
	Sched sched.Config
	// OverrunSigma > 0 installs SimBackend.UseLogNormalOverrun(OverrunMu,
	// OverrunSigma): estimates stay exact at the median while the right
	// tail overruns — the seeded mis-estimation regime.
	OverrunMu, OverrunSigma float64
	// KernelSeed seeds the replay kernel (0 = the trace's header seed).
	KernelSeed int64
	// OnFinish, if set, runs after the kernel drains, before metrics are
	// reduced — the hook skyctl and tests use to snapshot the scheduler's
	// registry.
	OnFinish func(*sched.Scheduler, *sched.SimBackend)
}

// Result is one survival-table row: the replay reduced to the metrics a
// policy is judged by.
type Result struct {
	Jobs       int // submit events streamed
	Completed  int
	Failed     int
	Unfinished int // still queued/running when the kernel drained (never placeable)

	MeanWaitSeconds float64
	P50WaitSeconds  float64
	P99WaitSeconds  float64
	MaxWaitSeconds  float64
	MakespanSeconds float64 // last completion's finish time

	Backfills       int
	Preemptions     int
	SpotRevocations int
	Consolidations  int

	// Fault-tolerance columns, all zero for a fault-free trace.
	Outages        int // outage events replayed (full crashes reaching the scheduler)
	OutageRequeues int // running gangs torn down and requeued by outages
	Quarantines    int // flapping clouds placed behind readmission backoff
	LaunchRetries  int // transiently failed launches retried with backoff

	// ShareErrorMax is the largest |delivered − entitled| share across
	// tenants at drain time: how far the policy let fairness drift.
	ShareErrorMax float64
}

// String renders the result as a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("jobs=%d done=%d wait(p50/p99)=%.1fs/%.1fs makespan=%.0fs preempt=%d shareErr=%.3f",
		r.Jobs, r.Completed, r.P50WaitSeconds, r.P99WaitSeconds,
		r.MakespanSeconds, r.Preemptions, r.ShareErrorMax)
}

// Replay streams the trace through a scheduler on a fresh SimBackend and
// reduces the run. Events are chain-injected — one pending injector event
// at a time — so the kernel's queue stays proportional to in-flight jobs,
// not trace length. Deterministic: same trace + config → identical Result.
func Replay(tr *Trace, cfg ReplayConfig) (Result, error) {
	clouds := cfg.Clouds
	if len(clouds) == 0 {
		clouds = DefaultClouds()
	}
	seed := cfg.KernelSeed
	if seed == 0 {
		seed = tr.Header.Seed
	}
	k := sim.NewKernel(seed)
	b := sched.NewSimBackend(k)
	for _, c := range clouds {
		b.AddCloud(c.Name, c.Cores, c.Speed, c.Price)
	}
	if cfg.OverrunSigma > 0 {
		b.UseLogNormalOverrun(cfg.OverrunMu, cfg.OverrunSigma)
	}
	s := sched.New(b, cfg.Sched)
	for _, t := range tr.Header.Tenants {
		s.AddTenant(t.Name, t.Weight)
	}

	var res Result
	ids := make([]string, 0, len(tr.Events))
	// spotLive tracks submitted spot jobs for revocation storms, compacted
	// lazily as storms walk it (submission order = deterministic strike
	// order).
	var spotLive []string
	var submitErr error
	// Fault-episode state, allocated only when the trace carries faults:
	// partialLost remembers how many cores each partially-down cloud lost (so
	// its restore knows the base to return to), baseBW caches a degraded
	// link's pre-fault bandwidth.
	var partialLost map[string]int
	var baseBW map[[2]string]float64
	var inject func(i int)
	process := func(ev *Event) {
		switch ev.Kind {
		case KindSubmit:
			id, err := s.Submit(sched.JobSpec{
				Tenant:          ev.Tenant,
				Name:            ev.Name,
				Workers:         ev.Workers,
				CoresPerWorker:  ev.Cores,
				EstimateSeconds: ev.EstimateSeconds,
				Spot:            ev.Spot,
				Bid:             ev.Bid,
			})
			if err != nil {
				if submitErr == nil {
					submitErr = fmt.Errorf("workload: submit %s: %w", ev.Name, err)
				}
				return
			}
			res.Jobs++
			ids = append(ids, id)
			if ev.Spot {
				spotLive = append(spotLive, id)
			}
		case KindRevoke:
			struck := 0
			live := spotLive[:0]
			for _, id := range spotLive {
				ji, ok := s.Poll(id)
				if !ok || ji.State == sched.Done || ji.State == sched.Failed {
					continue // drop finished jobs from the live list
				}
				live = append(live, id)
				if ji.State != sched.Running {
					continue
				}
				if ev.Strikes > 0 && struck >= ev.Strikes {
					continue
				}
				onCloud := false
				for _, m := range ji.Plan.Members {
					if m.Cloud == ev.Cloud {
						onCloud = true
						break
					}
				}
				if onCloud {
					s.Notify(sched.Event{Kind: sched.EventSpotRevoked, Job: id, Cloud: ev.Cloud})
					struck++
				}
			}
			spotLive = live
		case KindOutage:
			if ev.Partial > 0 {
				// Partial host loss: capacity shrinks, survivors keep
				// running. Track the loss so the restore knows the base.
				c := b.Cloud(ev.Cloud)
				if c == nil {
					if submitErr == nil {
						submitErr = fmt.Errorf("workload: outage on unknown cloud %q", ev.Cloud)
					}
					return
				}
				if partialLost == nil {
					partialLost = make(map[string]int)
				}
				total := c.Total()
				lost := ev.Partial
				if lost >= total {
					lost = total - 1 // a full crash is spelled Partial == 0
				}
				if lost <= 0 || partialLost[ev.Cloud] > 0 {
					return // malformed or overlapping episode: skip
				}
				partialLost[ev.Cloud] = lost
				c.SetTotal(total - lost)
				return
			}
			// Full crash: the ledger transition first (leases close,
			// committed cores zero), then the scheduler requeues the gangs
			// that lived there.
			if _, err := b.FailCloud(ev.Cloud); err != nil {
				if submitErr == nil {
					submitErr = fmt.Errorf("workload: outage: %w", err)
				}
				return
			}
			s.Notify(sched.Event{Kind: sched.EventCloudFailed, Cloud: ev.Cloud})
		case KindRestore:
			if lost := partialLost[ev.Cloud]; lost > 0 {
				delete(partialLost, ev.Cloud)
				c := b.Cloud(ev.Cloud)
				c.SetTotal(c.Total() + lost)
				// Not a ledger restore, but capacity returned: poke the
				// scheduler so queued jobs recheck.
				s.Notify(sched.Event{Kind: sched.EventCloudRestored, Cloud: ev.Cloud})
				return
			}
			if err := b.RestoreCloud(ev.Cloud); err != nil {
				if submitErr == nil {
					submitErr = fmt.Errorf("workload: restore: %w", err)
				}
				return
			}
			s.Notify(sched.Event{Kind: sched.EventCloudRestored, Cloud: ev.Cloud})
		case KindDegrade:
			if baseBW == nil {
				baseBW = make(map[[2]string]float64)
			}
			key := [2]string{ev.Cloud, ev.Peer}
			if ev.Factor >= 1 {
				// Factor 1 ends the episode: the link returns to its
				// pre-degradation bandwidth.
				if base, ok := baseBW[key]; ok {
					b.SetBandwidth(ev.Cloud, ev.Peer, base)
					delete(baseBW, key)
				}
				return
			}
			base, ok := baseBW[key]
			if !ok {
				base = b.Bandwidth(ev.Cloud, ev.Peer)
				baseBW[key] = base
			}
			b.SetBandwidth(ev.Cloud, ev.Peer, base*ev.Factor)
		case KindDeployFault:
			strikes := ev.Strikes
			if strikes <= 0 {
				strikes = 1
			}
			b.FailNextLaunches(ev.Cloud, strikes)
		}
	}
	inject = func(i int) {
		// Drain every event stamped at this instant in one callback, then
		// re-arm for the next timestamp.
		at := tr.Events[i].At
		for i < len(tr.Events) && tr.Events[i].At == at {
			process(&tr.Events[i])
			i++
		}
		if i < len(tr.Events) {
			next := i
			k.At(sim.Time(tr.Events[next].At), func() { inject(next) })
		}
	}
	if len(tr.Events) > 0 {
		first := 0
		k.At(sim.Time(tr.Events[first].At), func() { inject(first) })
	}
	k.Run()
	if submitErr != nil {
		return Result{}, submitErr
	}
	if cfg.OnFinish != nil {
		cfg.OnFinish(s, b)
	}

	waits := make([]float64, 0, len(ids))
	for _, id := range ids {
		ji, ok := s.Poll(id)
		if !ok {
			continue
		}
		switch ji.State {
		case sched.Done:
			res.Completed++
			waits = append(waits, (ji.Started - ji.Submitted).Seconds())
			if fin := ji.Finished.Seconds(); fin > res.MakespanSeconds {
				res.MakespanSeconds = fin
			}
		case sched.Failed:
			res.Failed++
		default:
			res.Unfinished++
		}
	}
	if len(waits) > 0 {
		sort.Float64s(waits)
		var sum float64
		for _, w := range waits {
			sum += w
		}
		res.MeanWaitSeconds = sum / float64(len(waits))
		res.P50WaitSeconds = percentile(waits, 0.50)
		res.P99WaitSeconds = percentile(waits, 0.99)
		res.MaxWaitSeconds = waits[len(waits)-1]
	}
	res.Backfills = s.Backfills()
	res.Preemptions = s.Preemptions()
	res.SpotRevocations = s.SpotRevocations()
	res.Consolidations = s.Consolidations()
	res.Outages = s.Outages()
	res.OutageRequeues = s.OutageRequeues()
	res.Quarantines = s.Quarantines()
	res.LaunchRetries = s.LaunchRetries()
	shares, entitled := s.Shares(), s.EntitledShares()
	for _, t := range tr.Header.Tenants {
		if err := shares[t.Name] - entitled[t.Name]; err > res.ShareErrorMax {
			res.ShareErrorMax = err
		} else if -err > res.ShareErrorMax {
			res.ShareErrorMax = -err
		}
	}
	return res, nil
}

// percentile returns the nearest-rank percentile of sorted values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
