package workload

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
)

// schedCfg is the policy bundle the tests replay under: everything on, so
// the replay exercises backfill, preemption, and consolidation paths.
func schedCfg(preempt bool) sched.Config {
	return sched.Config{
		EnablePreemption:    preempt,
		EnableConsolidation: preempt,
	}
}

// TestThinningRate checks the sampler's statistical sanity: with a flat
// rate curve the thinning generator is a plain Poisson process, so the
// empirical count over 24 h must sit within 5 sigma of base·hours at a
// fixed seed.
func TestThinningRate(t *testing.T) {
	const perHour, hours = 1000.0, 24.0
	tr := Generate(Config{
		Seed:    7,
		Horizon: sim.Time(hours * float64(sim.Hour)),
		Tenants: []TenantProfile{{Name: "t", BaseRatePerHour: perHour}},
	})
	want := perHour * hours
	got := float64(tr.Jobs())
	if tol := 5 * math.Sqrt(want); math.Abs(got-want) > tol {
		t.Fatalf("flat-rate thinning: %v jobs, want %v +/- %v", got, want, tol)
	}
}

// TestThinningDiurnal checks the inhomogeneous part: with full diurnal
// amplitude the 6 h window around the peak must collect several times the
// arrivals of the 6 h window around the trough.
func TestThinningDiurnal(t *testing.T) {
	const peak = 12.0
	tr := Generate(Config{
		Seed:    11,
		Horizon: 24 * sim.Hour,
		Tenants: []TenantProfile{{
			Name: "t", BaseRatePerHour: 600,
			DiurnalAmplitude: 1, PeakHour: peak,
		}},
	})
	var atPeak, atTrough int
	for _, ev := range tr.Events {
		h := sim.Time(ev.At).Seconds() / 3600
		switch {
		case math.Abs(h-peak) <= 3:
			atPeak++
		case h <= 3 || h >= 21: // trough at hour 0/24
			atTrough++
		}
	}
	// Exact rate ratio of the windows is ~12.7; demand a loose 4x so the
	// test pins the shape, not the sample noise.
	if atPeak < 4*atTrough || atTrough == 0 {
		t.Fatalf("diurnal thinning: peak window %d vs trough window %d, want >= 4x", atPeak, atTrough)
	}
}

// TestTraceRoundTrip: generate → save → load must reproduce the trace
// exactly, the re-save must be byte-identical, and replaying the loaded
// copy must produce the generated copy's metrics.
func TestTraceRoundTrip(t *testing.T) {
	tr := Generate(StandardConfig(3, 2000))
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	saved := append([]byte(nil), buf.Bytes()...)
	tr2, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(tr, tr2) {
		t.Fatalf("loaded trace differs from generated")
	}
	var buf2 bytes.Buffer
	if err := tr2.Save(&buf2); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	if !bytes.Equal(saved, buf2.Bytes()) {
		t.Fatalf("re-saved trace is not byte-identical (%d vs %d bytes)", len(saved), buf2.Len())
	}
	cfg := ReplayConfig{OverrunSigma: 0.5, Sched: schedCfg(true)}
	r1, err := Replay(tr, cfg)
	if err != nil {
		t.Fatalf("replay generated: %v", err)
	}
	r2, err := Replay(tr2, cfg)
	if err != nil {
		t.Fatalf("replay loaded: %v", err)
	}
	if r1 != r2 {
		t.Fatalf("replay of loaded trace diverged:\n generated: %v\n loaded:    %v", r1, r2)
	}
	if r1.Completed == 0 || r1.Jobs != tr.Jobs() {
		t.Fatalf("replay did no work: %+v", r1)
	}
}

// TestReplayDeterminism100k: two same-seed 100k-job replays must produce
// identical metric snapshots — the Result struct and the scheduler's
// decision counters.
func TestReplayDeterminism100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-job replay in -short mode")
	}
	tr := Generate(StandardConfig(42, 100_000))
	if got := tr.Jobs(); got != 100_000 {
		t.Fatalf("standard trace capped at %d jobs, want 100000", got)
	}
	run := func() (Result, [2]int) {
		var counters [2]int
		r, err := Replay(tr, ReplayConfig{
			OverrunSigma: 0.5,
			Sched:        schedCfg(true),
			OnFinish: func(s *sched.Scheduler, _ *sched.SimBackend) {
				counters[0], counters[1] = s.Cycles(), s.Dispatched()
			},
		})
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		return r, counters
	}
	r1, c1 := run()
	r2, c2 := run()
	if r1 != r2 || c1 != c2 {
		t.Fatalf("same-seed replays diverged:\n run1: %v %v\n run2: %v %v", r1, c1, r2, c2)
	}
	if r1.Completed < 90_000 {
		t.Fatalf("only %d of 100000 jobs completed: %v", r1.Completed, r1)
	}
}

// TestLoadRejectsBadInput covers the validation paths.
func TestLoadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad version":   `{"version":9,"seed":1,"tenants":[]}`,
		"bad kind":      "{\"version\":1,\"seed\":1,\"tenants\":[]}\n{\"at\":0,\"kind\":\"x\"}",
		"no tenant":     "{\"version\":1,\"seed\":1,\"tenants\":[]}\n{\"at\":0,\"kind\":\"submit\",\"workers\":1}",
		"out of order":  "{\"version\":1,\"seed\":1,\"tenants\":[]}\n{\"at\":5,\"kind\":\"revoke\",\"cloud\":\"c\"}\n{\"at\":4,\"kind\":\"revoke\",\"cloud\":\"c\"}",
		"revoke cloud?": "{\"version\":1,\"seed\":1,\"tenants\":[]}\n{\"at\":0,\"kind\":\"revoke\"}",
	}
	for name, in := range cases {
		if _, err := Load(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("%s: Load accepted invalid input", name)
		}
	}
}
