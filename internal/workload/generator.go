package workload

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// The generator runs each tenant's arrival process as an
// inhomogeneous-Poisson stream on a private sim.Kernel, using Lewis-Shedler
// thinning: candidate arrivals fire at the tenant's peak rate λmax and each
// is accepted with probability λ(t)/λmax, where
//
//	λ(t) = base · (1 + A·cos(2π·(hour(t) − peak)/24)) · burst(t)
//
// — a diurnal curve peaking at PeakHour, multiplied by BurstFactor while a
// burst episode (its own Poisson process) is open. All randomness draws
// from the kernel's seeded RNG inside kernel callbacks, so the interleaving
// of tenants, bursts, and storms is fixed by (time, schedule order) and the
// emitted trace is a pure function of Config.

// TenantProfile shapes one tenant's arrival curve and job-size
// distributions. Zero values take the documented defaults, so a profile
// needs only Name and BaseRatePerHour to be useful.
type TenantProfile struct {
	Name   string
	Weight float64 // fair-share weight (0 = 1)

	// Arrival curve.
	BaseRatePerHour  float64 // mean submissions/hour at the diurnal midline
	DiurnalAmplitude float64 // A in [0,1]: 0 = flat, 1 = rate swings 0..2x base
	PeakHour         float64 // hour of virtual day the rate peaks (0 = midnight)

	// Burst episodes: a Poisson process at BurstRatePerHour opens episodes
	// whose lengths are exponential with mean BurstMeanMinutes (0 = 10);
	// while one is open the arrival rate is multiplied by BurstFactor
	// (<= 1 disables bursts).
	BurstRatePerHour float64
	BurstFactor      float64
	BurstMeanMinutes float64

	// Job width: log-normal worker count, exp(N(WorkersLogMean,
	// WorkersLogSigma)), rounded and clamped to [1, MaxWorkers] (0 = 32).
	// Sigma 0 with mean 0 degenerates to single-worker jobs.
	WorkersLogMean  float64
	WorkersLogSigma float64
	MaxWorkers      int
	CoresPerWorker  int // 0 = 1

	// Job length: Pareto(MinSeconds, ParetoAlpha) runtime estimates,
	// truncated at MaxSeconds. Defaults: 30 s scale, tail index 1.8,
	// 4 h cap. Alpha near 1 makes the tail heavy enough that a handful of
	// jobs carry most of the core-seconds.
	MinSeconds  float64
	ParetoAlpha float64
	MaxSeconds  float64

	// SpotFraction of submissions request revocable spot workers at SpotBid
	// (0 bid = 0.05).
	SpotFraction float64
	SpotBid      float64
}

// StormProfile shapes correlated spot-revocation storms: a Poisson process
// at RatePerHour; each storm strikes one cloud drawn uniformly from Clouds
// and revokes one worker from up to MaxStrikes running spot jobs placed
// there (0 = every one). Zero RatePerHour or empty Clouds disables storms.
type StormProfile struct {
	RatePerHour float64
	Clouds      []string
	MaxStrikes  int
}

// Config drives Generate.
type Config struct {
	Seed        int64
	Description string

	// Horizon bounds virtual arrival time (0 = 24 h). MaxJobs additionally
	// caps total submissions (0 = horizon only) — generation stops at
	// whichever comes first.
	Horizon sim.Time
	MaxJobs int

	Tenants []TenantProfile
	Storms  StormProfile
}

func (p TenantProfile) withDefaults() TenantProfile {
	if p.Weight <= 0 {
		p.Weight = 1
	}
	if p.DiurnalAmplitude < 0 {
		p.DiurnalAmplitude = 0
	}
	if p.DiurnalAmplitude > 1 {
		p.DiurnalAmplitude = 1
	}
	if p.BurstFactor < 1 {
		p.BurstFactor = 1
	}
	if p.BurstMeanMinutes <= 0 {
		p.BurstMeanMinutes = 10
	}
	if p.MaxWorkers <= 0 {
		p.MaxWorkers = 32
	}
	if p.CoresPerWorker <= 0 {
		p.CoresPerWorker = 1
	}
	if p.MinSeconds <= 0 {
		p.MinSeconds = 30
	}
	if p.ParetoAlpha <= 0 {
		p.ParetoAlpha = 1.8
	}
	if p.MaxSeconds <= 0 {
		p.MaxSeconds = 4 * 3600
	}
	if p.SpotBid <= 0 {
		p.SpotBid = 0.05
	}
	return p
}

// Generate runs the arrival processes to the horizon and returns the
// time-ordered trace. Panics on an empty tenant set or a tenant without a
// positive base rate — a generator config bug, not an input file.
func Generate(cfg Config) *Trace {
	if len(cfg.Tenants) == 0 {
		panic("workload: Generate needs at least one tenant profile")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 24 * sim.Hour
	}
	k := sim.NewKernel(cfg.Seed)
	rng := k.Rand()
	tr := &Trace{Header: Header{
		Version:     TraceVersion,
		Seed:        cfg.Seed,
		Description: cfg.Description,
	}}
	// Exponential inter-arrival for a per-hour rate, in sim.Time units.
	expGap := func(perHour float64) sim.Time {
		return sim.Time(rng.ExpFloat64() / perHour * float64(sim.Hour))
	}
	submits := 0
	for ti := range cfg.Tenants {
		p := cfg.Tenants[ti].withDefaults()
		if p.Name == "" || p.BaseRatePerHour <= 0 {
			panic(fmt.Sprintf("workload: tenant %d needs Name and BaseRatePerHour", ti))
		}
		tr.Header.Tenants = append(tr.Header.Tenants, Tenant{Name: p.Name, Weight: p.Weight})
		lambdaMax := p.BaseRatePerHour * (1 + p.DiurnalAmplitude) * p.BurstFactor
		burstUntil := sim.Time(-1)
		jobSeq := 0
		// Candidate stream at λmax, thinned to λ(t).
		var candidate func()
		candidate = func() {
			now := k.Now()
			if now > cfg.Horizon || (cfg.MaxJobs > 0 && submits >= cfg.MaxJobs) {
				return
			}
			hour := now.Seconds() / 3600
			rate := p.BaseRatePerHour *
				(1 + p.DiurnalAmplitude*math.Cos(2*math.Pi*(hour-p.PeakHour)/24))
			if now < burstUntil {
				rate *= p.BurstFactor
			}
			if rng.Float64()*lambdaMax < rate {
				jobSeq++
				workers := 1
				if p.WorkersLogSigma > 0 || p.WorkersLogMean > 0 {
					w := math.Exp(p.WorkersLogMean + p.WorkersLogSigma*rng.NormFloat64())
					workers = int(math.Round(w))
				}
				if workers < 1 {
					workers = 1
				}
				if workers > p.MaxWorkers {
					workers = p.MaxWorkers
				}
				// Pareto via inverse CDF: xm·u^(-1/α), truncated.
				est := p.MinSeconds * math.Pow(1-rng.Float64(), -1/p.ParetoAlpha)
				if est > p.MaxSeconds {
					est = p.MaxSeconds
				}
				spot := p.SpotFraction > 0 && rng.Float64() < p.SpotFraction
				ev := Event{
					At:              int64(now),
					Kind:            KindSubmit,
					Tenant:          p.Name,
					Name:            fmt.Sprintf("%s-%d", p.Name, jobSeq),
					Workers:         workers,
					Cores:           p.CoresPerWorker,
					EstimateSeconds: math.Round(est*10) / 10,
				}
				if spot {
					ev.Spot, ev.Bid = true, p.SpotBid
				}
				tr.Events = append(tr.Events, ev)
				submits++
			}
			k.Schedule(expGap(lambdaMax), candidate)
		}
		k.Schedule(expGap(lambdaMax), candidate)
		if p.BurstFactor > 1 && p.BurstRatePerHour > 0 {
			var episode func()
			episode = func() {
				if k.Now() > cfg.Horizon {
					return
				}
				burstUntil = k.Now() +
					sim.Time(rng.ExpFloat64()*p.BurstMeanMinutes*float64(sim.Minute))
				k.Schedule(expGap(p.BurstRatePerHour), episode)
			}
			k.Schedule(expGap(p.BurstRatePerHour), episode)
		}
	}
	if cfg.Storms.RatePerHour > 0 && len(cfg.Storms.Clouds) > 0 {
		st := cfg.Storms
		var storm func()
		storm = func() {
			now := k.Now()
			if now > cfg.Horizon {
				return
			}
			tr.Events = append(tr.Events, Event{
				At:      int64(now),
				Kind:    KindRevoke,
				Cloud:   st.Clouds[rng.Intn(len(st.Clouds))],
				Strikes: st.MaxStrikes,
			})
			k.Schedule(expGap(st.RatePerHour), storm)
		}
		k.Schedule(expGap(st.RatePerHour), storm)
	}
	k.Run()
	// Kernel firing order is (time, seq), so events are already sorted.
	return tr
}
