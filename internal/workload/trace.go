// Package workload is the scale harness: a seeded, deterministic trace
// generator (inhomogeneous-Poisson diurnal arrivals via thinning,
// heavy-tailed job sizes, per-tenant burst episodes, correlated spot
// revocation storms) and a replay driver that streams a trace — generated
// or loaded from disk — through the federation scheduler on a SimBackend
// and reduces the run to a survival row: wait percentiles, makespan,
// preemptions, fair-share error. Same seed, same trace, same metrics —
// byte for byte — so million-job replays are comparable across policy
// knobs and across commits.
package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Event kinds.
const (
	// KindSubmit queues one job at Event.At.
	KindSubmit = "submit"
	// KindRevoke is a spot-revocation storm striking Event.Cloud at
	// Event.At: running spot jobs with a plan slice there lose one worker
	// each, oldest submission first, up to Strikes jobs (0 = every one).
	KindRevoke = "revoke"

	// Fault episode kinds (see internal/faults for the generator).

	// KindOutage takes Event.Cloud down at Event.At. Partial > 0 is a
	// partial host loss — the cloud's capacity shrinks by that many cores
	// but survivors keep running; Partial == 0 is a full crash — every
	// lease and committed core on the cloud is evicted (ledger FailCloud)
	// and the scheduler requeues gangs with members there.
	KindOutage = "outage"
	// KindRestore returns Event.Cloud to full capacity, ending its outage.
	KindRestore = "restore"
	// KindDegrade multiplies the WAN link Event.Cloud <-> Event.Peer to
	// Factor x its base bandwidth (Factor 1 restores it). Degradation is a
	// rerouting trigger, not an error: future placements and consolidations
	// just price the slower link.
	KindDegrade = "degrade"
	// KindDeployFault makes the next Strikes launch attempts touching
	// Event.Cloud fail transiently (min 1) — the retry/backoff path's fuel.
	KindDeployFault = "deployfault"
)

// TraceVersion is the schema version written by Save and required by Load.
const TraceVersion = 1

// Tenant is one tenant's identity and fair-share weight, declared up front
// so a replay registers the full share denominator before the first job.
type Tenant struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

// Header is the trace's first JSONL line: schema version, the generator
// seed (doubles as the default replay kernel seed), and the tenant set.
type Header struct {
	Version     int      `json:"version"`
	Seed        int64    `json:"seed"`
	Description string   `json:"description,omitempty"`
	Tenants     []Tenant `json:"tenants"`
}

// Event is one trace line. At is absolute virtual time in microseconds
// (sim.Time units); events are stored in non-decreasing At order.
type Event struct {
	At   int64  `json:"at"`
	Kind string `json:"kind"`

	// Submit fields.
	Tenant          string  `json:"tenant,omitempty"`
	Name            string  `json:"name,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	Cores           int     `json:"cores,omitempty"` // per worker
	EstimateSeconds float64 `json:"est,omitempty"`
	Spot            bool    `json:"spot,omitempty"`
	Bid             float64 `json:"bid,omitempty"`

	// Revoke and fault fields.
	Cloud   string `json:"cloud,omitempty"`
	Strikes int    `json:"strikes,omitempty"`

	// Fault fields (outage/degrade episodes).
	Partial int     `json:"partial,omitempty"` // outage: cores lost (0 = full crash)
	Peer    string  `json:"peer,omitempty"`    // degrade: the link's far end
	Factor  float64 `json:"factor,omitempty"`  // degrade: bandwidth multiplier
}

// Trace is a replayable workload: header plus time-ordered events.
type Trace struct {
	Header Header
	Events []Event
}

// Jobs counts the trace's submit events.
func (tr *Trace) Jobs() int {
	n := 0
	for i := range tr.Events {
		if tr.Events[i].Kind == KindSubmit {
			n++
		}
	}
	return n
}

// Save writes the trace as JSONL: the header line, then one line per
// event. Field order is fixed by the struct definitions, so saving a
// loaded trace reproduces the input byte for byte.
func (tr *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	h := tr.Header
	h.Version = TraceVersion
	if err := enc.Encode(h); err != nil {
		return err
	}
	for i := range tr.Events {
		if err := enc.Encode(tr.Events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFile writes the trace to path.
func (tr *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a JSONL trace and validates it: known version, known event
// kinds, submit events with a tenant and positive workers, non-decreasing
// timestamps (the replay driver streams events in file order).
func Load(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("workload: empty trace")
	}
	tr := &Trace{}
	if err := json.Unmarshal(sc.Bytes(), &tr.Header); err != nil {
		return nil, fmt.Errorf("workload: bad header: %w", err)
	}
	if tr.Header.Version != TraceVersion {
		return nil, fmt.Errorf("workload: trace version %d, want %d", tr.Header.Version, TraceVersion)
	}
	line := 1
	var last int64
	for sc.Scan() {
		line++
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		switch ev.Kind {
		case KindSubmit:
			if ev.Tenant == "" || ev.Workers <= 0 {
				return nil, fmt.Errorf("workload: line %d: submit needs tenant and workers", line)
			}
		case KindRevoke:
			if ev.Cloud == "" {
				return nil, fmt.Errorf("workload: line %d: revoke needs cloud", line)
			}
		case KindOutage, KindRestore, KindDeployFault:
			if ev.Cloud == "" {
				return nil, fmt.Errorf("workload: line %d: %s needs cloud", line, ev.Kind)
			}
		case KindDegrade:
			if ev.Cloud == "" || ev.Peer == "" || ev.Factor <= 0 {
				return nil, fmt.Errorf("workload: line %d: degrade needs cloud, peer, and factor", line)
			}
		default:
			return nil, fmt.Errorf("workload: line %d: unknown kind %q", line, ev.Kind)
		}
		if ev.At < last {
			return nil, fmt.Errorf("workload: line %d: timestamps out of order", line)
		}
		last = ev.At
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// LoadFile reads a trace from path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
