package workload

import "repro/internal/sim"

// StandardConfig is the scale harness's reference workload over the
// DefaultClouds federation: four tenants with staggered diurnal peaks and
// unequal weights, log-normal gang widths, Pareto runtimes, burst episodes
// on the two batch tenants, and revocation storms sweeping the spot-heavy
// tenant's clouds. Midline load is ~60% of the 256-core federation and the
// diurnal peaks push past 85%, so queues build, backfill and reservations
// engage, and the heavy tail decides who waits. maxJobs caps the trace;
// the horizon starts at one week (~350k arrivals) and extends in whole
// weeks until the cap can bind, so million-job traces are just more weeks
// of the same mix. Generation stops exactly at maxJobs either way.
func StandardConfig(seed int64, maxJobs int) Config {
	// Conservative floor on what one week of the mix yields; keeps the
	// horizon at exactly one week for every trace up to CI's 100k smoke.
	const weeklyYield = 350_000
	weeks := sim.Time(1)
	if maxJobs > weeklyYield {
		weeks = sim.Time((maxJobs + weeklyYield - 1) / weeklyYield)
	}
	return Config{
		Seed:        seed,
		Description: "standard scale-harness mix: 4 tenants, diurnal + bursts + storms",
		Horizon:     weeks * 7 * 24 * sim.Hour,
		MaxJobs:     maxJobs,
		Tenants: []TenantProfile{
			{
				// Interactive analytics: many small jobs, sharp daytime peak.
				Name: "ana", Weight: 3, BaseRatePerHour: 900,
				DiurnalAmplitude: 0.6, PeakHour: 14,
				WorkersLogMean: 0.7, WorkersLogSigma: 0.6, MaxWorkers: 16,
				MinSeconds: 20, ParetoAlpha: 2.2, MaxSeconds: 1200,
			},
			{
				// Batch ETL: fewer, wider, longer jobs peaking overnight,
				// with bursty resubmission episodes.
				Name: "etl", Weight: 2, BaseRatePerHour: 450,
				DiurnalAmplitude: 0.5, PeakHour: 2,
				WorkersLogMean: 1.4, WorkersLogSigma: 0.7, MaxWorkers: 48,
				MinSeconds: 45, ParetoAlpha: 1.6, MaxSeconds: 7200,
				BurstRatePerHour: 0.5, BurstFactor: 3, BurstMeanMinutes: 15,
			},
			{
				// Science gangs: rare, very wide, heavy tail — the jobs that
				// block heads and force spanning plans.
				Name: "sci", Weight: 1, BaseRatePerHour: 120,
				DiurnalAmplitude: 0.3, PeakHour: 9,
				WorkersLogMean: 2.3, WorkersLogSigma: 0.6, MaxWorkers: 96,
				MinSeconds: 120, ParetoAlpha: 1.4, MaxSeconds: 14400,
				BurstRatePerHour: 0.25, BurstFactor: 4, BurstMeanMinutes: 20,
			},
			{
				// Spot scavenger: cheap revocable fill, struck by storms.
				Name: "spot", Weight: 1, BaseRatePerHour: 500,
				DiurnalAmplitude: 0.2, PeakHour: 20,
				WorkersLogMean: 1.0, WorkersLogSigma: 0.5, MaxWorkers: 24,
				MinSeconds: 30, ParetoAlpha: 1.8, MaxSeconds: 3600,
				SpotFraction: 0.8, SpotBid: 0.05,
			},
		},
		Storms: StormProfile{
			RatePerHour: 1.5,
			Clouds:      []string{"cloud0", "cloud1", "cloud2", "cloud3"},
			MaxStrikes:  8,
		},
	}
}
