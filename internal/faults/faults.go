// Package faults is the failure-injection engine: a kernel-driven, seeded
// generator of fault schedules — cloud outages (full crash, partial host
// loss, flapping), transient deploy failures, and WAN-link degradation —
// emitted as first-class workload trace events, so a fault schedule replays
// through the same JSONL pipeline as the jobs it torments. Fault arrivals
// are modeled exactly the way internal/workload models job arrivals:
// inhomogeneous-Poisson processes on a private sim.Kernel, thinned against a
// diurnal rate curve, every draw taken from the kernel's seeded RNG inside
// kernel callbacks. Same Config → byte-identical schedule; injected into a
// trace and replayed at any ScoreWorkers → byte-identical outcomes.
package faults

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Target is one cloud the engine may strike. Cores is the cloud's capacity,
// used to size partial host losses.
type Target struct {
	Name  string
	Cores int
}

// Config drives Generate. Zero rates disable the corresponding process.
type Config struct {
	Seed    int64
	Horizon sim.Time // virtual span faults may arrive in (0 = 24 h)
	Clouds  []Target

	// Outages: a Poisson process at OutageRatePerHour striking one cloud
	// uniformly; the cloud stays down for an exponential duration with mean
	// OutageMeanMinutes (0 = 15). PartialFraction of outages are partial
	// host losses — the cloud loses a uniform fraction of up to
	// PartialMaxFraction (0 = 0.5) of its cores instead of crashing.
	OutageRatePerHour  float64
	OutageMeanMinutes  float64
	PartialFraction    float64
	PartialMaxFraction float64

	// Flaps: a Poisson process at FlapRatePerHour opening flap episodes —
	// FlapCycles (0 = 4) quick full-crash/restore cycles on one cloud, with
	// exponential down/up times of mean FlapDownSeconds (0 = 45) and
	// FlapUpSeconds (0 = 30). Flapping is what the scheduler's quarantine
	// policy exists to absorb.
	FlapRatePerHour float64
	FlapCycles      int
	FlapDownSeconds float64
	FlapUpSeconds   float64

	// Transient deploy failures: a Poisson process at DeployFaultRatePerHour
	// arming DeployFaultStrikes (0 = 3) failures on one cloud — the next
	// launches touching it fail transiently and exercise the retry path.
	DeployFaultRatePerHour float64
	DeployFaultStrikes     int

	// WAN degradation: a Poisson process at DegradeRatePerHour degrading one
	// directed cloud pair to DegradeFactor (0 = 0.25) of its base bandwidth
	// for an exponential duration with mean DegradeMeanMinutes (0 = 30).
	DegradeRatePerHour float64
	DegradeMeanMinutes float64
	DegradeFactor      float64

	// Diurnal modulation of every arrival process, matching the workload
	// generator's curve: rate(t) = base·(1 + A·cos(2π·(hour(t)−peak)/24)).
	DiurnalAmplitude float64
	PeakHour         float64
}

func (c Config) withDefaults() Config {
	if c.Horizon <= 0 {
		c.Horizon = 24 * sim.Hour
	}
	if c.OutageMeanMinutes <= 0 {
		c.OutageMeanMinutes = 15
	}
	if c.PartialMaxFraction <= 0 || c.PartialMaxFraction > 1 {
		c.PartialMaxFraction = 0.5
	}
	if c.FlapCycles <= 0 {
		c.FlapCycles = 4
	}
	if c.FlapDownSeconds <= 0 {
		c.FlapDownSeconds = 45
	}
	if c.FlapUpSeconds <= 0 {
		c.FlapUpSeconds = 30
	}
	if c.DeployFaultStrikes <= 0 {
		c.DeployFaultStrikes = 3
	}
	if c.DegradeMeanMinutes <= 0 {
		c.DegradeMeanMinutes = 30
	}
	if c.DegradeFactor <= 0 || c.DegradeFactor >= 1 {
		c.DegradeFactor = 0.25
	}
	if c.DiurnalAmplitude < 0 {
		c.DiurnalAmplitude = 0
	}
	if c.DiurnalAmplitude > 1 {
		c.DiurnalAmplitude = 1
	}
	return c
}

// Storm is the outage-storm preset the chaos smoke and E13/E14 use: full
// and partial outages arriving through the whole horizon, a few flap
// episodes (quarantine fuel), transient deploy faults, and WAN degradation.
func Storm(seed int64, clouds []Target) Config {
	return Config{
		Seed:                   seed,
		Clouds:                 clouds,
		OutageRatePerHour:      1.0,
		PartialFraction:        0.3,
		FlapRatePerHour:        0.15,
		DeployFaultRatePerHour: 0.5,
		DegradeRatePerHour:     0.5,
		DiurnalAmplitude:       0.3,
		PeakHour:               14,
	}
}

// Schedule is a generated fault schedule: time-ordered workload trace
// events, ready to inject into a job trace or save standalone.
type Schedule struct {
	Seed   int64
	Events []workload.Event
}

// Generate runs the fault arrival processes to the horizon and returns the
// time-ordered schedule. Panics on an empty cloud set with any nonzero
// rate — a config bug, not an input file.
func Generate(cfg Config) *Schedule {
	cfg = cfg.withDefaults()
	anyRate := cfg.OutageRatePerHour > 0 || cfg.FlapRatePerHour > 0 ||
		cfg.DeployFaultRatePerHour > 0 || cfg.DegradeRatePerHour > 0
	if anyRate && len(cfg.Clouds) == 0 {
		panic("faults: Generate needs clouds")
	}
	k := sim.NewKernel(cfg.Seed)
	rng := k.Rand()
	sch := &Schedule{Seed: cfg.Seed}
	expGap := func(perHour float64) sim.Time {
		return sim.Time(rng.ExpFloat64() / perHour * float64(sim.Hour))
	}
	// accept thins a candidate arrival against the diurnal curve; with zero
	// amplitude every candidate passes.
	accept := func(base, lambdaMax float64) bool {
		if cfg.DiurnalAmplitude == 0 {
			return true
		}
		hour := k.Now().Seconds() / 3600
		rate := base * (1 + cfg.DiurnalAmplitude*math.Cos(2*math.Pi*(hour-cfg.PeakHour)/24))
		return rng.Float64()*lambdaMax < rate
	}
	// downUntil serializes outages per cloud: a strike on a cloud that is
	// already down (or flapping) is skipped, so every outage event has
	// exactly one matching restore.
	downUntil := make(map[string]sim.Time)
	pick := func() Target { return cfg.Clouds[rng.Intn(len(cfg.Clouds))] }
	emit := func(ev workload.Event) {
		ev.At = int64(k.Now())
		sch.Events = append(sch.Events, ev)
	}

	if cfg.OutageRatePerHour > 0 {
		lambdaMax := cfg.OutageRatePerHour * (1 + cfg.DiurnalAmplitude)
		var strike func()
		strike = func() {
			now := k.Now()
			if now > cfg.Horizon {
				return
			}
			if accept(cfg.OutageRatePerHour, lambdaMax) {
				c := pick()
				if now >= downUntil[c.Name] {
					dur := sim.Time(rng.ExpFloat64() * cfg.OutageMeanMinutes * float64(sim.Minute))
					if dur < sim.Second {
						dur = sim.Second
					}
					downUntil[c.Name] = now + dur
					ev := workload.Event{Kind: workload.KindOutage, Cloud: c.Name}
					if cfg.PartialFraction > 0 && rng.Float64() < cfg.PartialFraction {
						lost := int(rng.Float64() * cfg.PartialMaxFraction * float64(c.Cores))
						if lost < 1 {
							lost = 1
						}
						ev.Partial = lost
					}
					emit(ev)
					k.Schedule(dur, func() {
						emit(workload.Event{Kind: workload.KindRestore, Cloud: c.Name})
					})
				}
			}
			k.Schedule(expGap(lambdaMax), strike)
		}
		k.Schedule(expGap(lambdaMax), strike)
	}

	if cfg.FlapRatePerHour > 0 {
		lambdaMax := cfg.FlapRatePerHour * (1 + cfg.DiurnalAmplitude)
		var episode func()
		episode = func() {
			now := k.Now()
			if now > cfg.Horizon {
				return
			}
			if accept(cfg.FlapRatePerHour, lambdaMax) {
				c := pick()
				if now >= downUntil[c.Name] {
					// One flap cycle: crash, restore after a short down time,
					// re-crash after a short up time — FlapCycles times.
					cycles := cfg.FlapCycles
					var cycle func()
					cycle = func() {
						emit(workload.Event{Kind: workload.KindOutage, Cloud: c.Name})
						down := sim.Time(rng.ExpFloat64() * cfg.FlapDownSeconds * float64(sim.Second))
						if down < sim.Second {
							down = sim.Second
						}
						k.Schedule(down, func() {
							emit(workload.Event{Kind: workload.KindRestore, Cloud: c.Name})
							cycles--
							if cycles > 0 {
								up := sim.Time(rng.ExpFloat64() * cfg.FlapUpSeconds * float64(sim.Second))
								if up < sim.Second {
									up = sim.Second
								}
								downUntil[c.Name] = k.Now() + up + sim.Hour // hold the slot through the next cycle
								k.Schedule(up, cycle)
							} else {
								downUntil[c.Name] = k.Now()
							}
						})
					}
					downUntil[c.Name] = now + sim.Hour // reserve the cloud for the episode
					cycle()
				}
			}
			k.Schedule(expGap(lambdaMax), episode)
		}
		k.Schedule(expGap(lambdaMax), episode)
	}

	if cfg.DeployFaultRatePerHour > 0 {
		lambdaMax := cfg.DeployFaultRatePerHour * (1 + cfg.DiurnalAmplitude)
		var arm func()
		arm = func() {
			if k.Now() > cfg.Horizon {
				return
			}
			if accept(cfg.DeployFaultRatePerHour, lambdaMax) {
				emit(workload.Event{
					Kind:    workload.KindDeployFault,
					Cloud:   pick().Name,
					Strikes: cfg.DeployFaultStrikes,
				})
			}
			k.Schedule(expGap(lambdaMax), arm)
		}
		k.Schedule(expGap(lambdaMax), arm)
	}

	if cfg.DegradeRatePerHour > 0 && len(cfg.Clouds) > 1 {
		lambdaMax := cfg.DegradeRatePerHour * (1 + cfg.DiurnalAmplitude)
		var degrade func()
		degrade = func() {
			if k.Now() > cfg.Horizon {
				return
			}
			if accept(cfg.DegradeRatePerHour, lambdaMax) {
				a := pick()
				b := pick()
				for b.Name == a.Name {
					b = pick()
				}
				emit(workload.Event{
					Kind: workload.KindDegrade, Cloud: a.Name, Peer: b.Name,
					Factor: cfg.DegradeFactor,
				})
				dur := sim.Time(rng.ExpFloat64() * cfg.DegradeMeanMinutes * float64(sim.Minute))
				if dur < sim.Second {
					dur = sim.Second
				}
				k.Schedule(dur, func() {
					emit(workload.Event{
						Kind: workload.KindDegrade, Cloud: a.Name, Peer: b.Name,
						Factor: 1,
					})
				})
			}
			k.Schedule(expGap(lambdaMax), degrade)
		}
		k.Schedule(expGap(lambdaMax), degrade)
	}

	k.Run()
	// Kernel firing order is (time, seq), so events are already sorted.
	return sch
}

// Targets adapts replay cloud specs to fault targets.
func Targets(clouds []workload.CloudSpec) []Target {
	ts := make([]Target, len(clouds))
	for i, c := range clouds {
		ts[i] = Target{Name: c.Name, Cores: c.Cores}
	}
	return ts
}

// InjectInto merges the schedule into a job trace, returning a new trace
// with the same header and the union of both event streams in time order
// (job events first on ties, so a submit and an outage at the same instant
// replay submit-first, deterministically).
func (s *Schedule) InjectInto(tr *workload.Trace) *workload.Trace {
	out := &workload.Trace{Header: tr.Header}
	out.Events = make([]workload.Event, 0, len(tr.Events)+len(s.Events))
	i, j := 0, 0
	for i < len(tr.Events) && j < len(s.Events) {
		if tr.Events[i].At <= s.Events[j].At {
			out.Events = append(out.Events, tr.Events[i])
			i++
		} else {
			out.Events = append(out.Events, s.Events[j])
			j++
		}
	}
	out.Events = append(out.Events, tr.Events[i:]...)
	out.Events = append(out.Events, s.Events[j:]...)
	return out
}

// SaveFile writes the schedule standalone as a JSONL trace whose events are
// all fault episodes (loadable with LoadFile or replayed after InjectInto).
func (s *Schedule) SaveFile(path string) error {
	tr := &workload.Trace{Header: workload.Header{
		Seed:        s.Seed,
		Description: "fault schedule",
	}}
	tr.Events = s.Events
	return tr.SaveFile(path)
}

// LoadFile reads a standalone fault schedule written by SaveFile, rejecting
// files that carry job events.
func LoadFile(path string) (*Schedule, error) {
	tr, err := workload.LoadFile(path)
	if err != nil {
		return nil, err
	}
	for i := range tr.Events {
		switch tr.Events[i].Kind {
		case workload.KindOutage, workload.KindRestore, workload.KindDegrade,
			workload.KindDeployFault, workload.KindRevoke:
		default:
			return nil, fmt.Errorf("faults: %s: line %d is a %q event, not a fault",
				path, i+2, tr.Events[i].Kind)
		}
	}
	return &Schedule{Seed: tr.Header.Seed, Events: tr.Events}, nil
}
