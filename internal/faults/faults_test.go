package faults

import (
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func stormClouds() []Target {
	return []Target{
		{Name: "cloud0", Cores: 64},
		{Name: "cloud1", Cores: 64},
		{Name: "cloud2", Cores: 64},
	}
}

// TestGenerateDeterministic: same config, byte-identical schedule.
func TestGenerateDeterministic(t *testing.T) {
	cfg := Storm(42, stormClouds())
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Events) == 0 {
		t.Fatal("storm generated no events")
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("runs generated %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	c := Generate(Storm(43, stormClouds()))
	if len(c.Events) == len(a.Events) {
		same := true
		for i := range c.Events {
			if c.Events[i] != a.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds generated identical schedules")
		}
	}
}

// TestOutageRestorePairing: every outage has exactly one later restore on
// the same cloud before that cloud's next outage, and events are
// time-ordered — the invariant the replay driver's episode tracking needs.
func TestOutageRestorePairing(t *testing.T) {
	s := Generate(Storm(7, stormClouds()))
	down := map[string]bool{}
	var last int64
	outages, restores := 0, 0
	for i, ev := range s.Events {
		if ev.At < last {
			t.Fatalf("event %d at %d before predecessor at %d", i, ev.At, last)
		}
		last = ev.At
		switch ev.Kind {
		case workload.KindOutage:
			if down[ev.Cloud] {
				t.Fatalf("event %d: outage on %s while already down", i, ev.Cloud)
			}
			down[ev.Cloud] = true
			outages++
		case workload.KindRestore:
			if !down[ev.Cloud] {
				t.Fatalf("event %d: restore on %s while not down", i, ev.Cloud)
			}
			down[ev.Cloud] = false
			restores++
		case workload.KindDeployFault:
			if ev.Strikes <= 0 {
				t.Fatalf("event %d: deploy fault with %d strikes", i, ev.Strikes)
			}
		case workload.KindDegrade:
			if ev.Peer == "" || ev.Peer == ev.Cloud || ev.Factor <= 0 {
				t.Fatalf("event %d: malformed degrade %+v", i, ev)
			}
		default:
			t.Fatalf("event %d: unexpected kind %q", i, ev.Kind)
		}
	}
	if outages == 0 {
		t.Fatal("storm generated no outages")
	}
	if outages != restores {
		t.Fatalf("%d outages but %d restores", outages, restores)
	}
}

// TestInjectIntoOrdering: the merged trace is time-ordered with job events
// first on ties, and carries the union of both streams.
func TestInjectIntoOrdering(t *testing.T) {
	jobs := &workload.Trace{
		Header: workload.Header{Seed: 1, Tenants: []workload.Tenant{{Name: "t1", Weight: 1}}},
		Events: []workload.Event{
			{At: 0, Kind: workload.KindSubmit, Tenant: "t1", Name: "j0", Workers: 1, Cores: 1, EstimateSeconds: 10},
			{At: 1000, Kind: workload.KindSubmit, Tenant: "t1", Name: "j1", Workers: 1, Cores: 1, EstimateSeconds: 10},
		},
	}
	sch := &Schedule{Seed: 2, Events: []workload.Event{
		{At: 500, Kind: workload.KindOutage, Cloud: "cloud0"},
		{At: 1000, Kind: workload.KindRestore, Cloud: "cloud0"},
	}}
	out := sch.InjectInto(jobs)
	if len(out.Events) != 4 {
		t.Fatalf("merged %d events, want 4", len(out.Events))
	}
	kinds := []string{out.Events[0].Kind, out.Events[1].Kind, out.Events[2].Kind, out.Events[3].Kind}
	want := []string{workload.KindSubmit, workload.KindOutage, workload.KindSubmit, workload.KindRestore}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("merged order %v, want %v (job events first on ties)", kinds, want)
		}
	}
	var orig int64
	for _, ev := range out.Events {
		if ev.At < orig {
			t.Fatal("merged trace not time-ordered")
		}
		orig = ev.At
	}
}

// TestSaveLoadRoundTrip: a standalone schedule survives the JSONL round
// trip byte for byte, and LoadFile rejects traces carrying job events.
func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "storm.jsonl")
	s := Generate(Storm(11, stormClouds()))
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Seed != s.Seed || len(loaded.Events) != len(s.Events) {
		t.Fatalf("loaded seed=%d n=%d, want seed=%d n=%d",
			loaded.Seed, len(loaded.Events), s.Seed, len(s.Events))
	}
	for i := range s.Events {
		if loaded.Events[i] != s.Events[i] {
			t.Fatalf("event %d changed in round trip: %+v vs %+v", i, loaded.Events[i], s.Events[i])
		}
	}

	bad := &workload.Trace{Header: workload.Header{Seed: 1}}
	bad.Events = []workload.Event{{At: 0, Kind: workload.KindSubmit, Tenant: "t", Name: "j", Workers: 1, Cores: 1, EstimateSeconds: 1}}
	badPath := filepath.Join(dir, "jobs.jsonl")
	if err := bad.SaveFile(badPath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(badPath); err == nil {
		t.Fatal("LoadFile accepted a trace with job events")
	}
}

// TestFaultInjectedReplayDeterminism: a job trace with a storm injected
// replays to identical Results — fault columns included — at ScoreWorkers
// 1, 2, and 8, and the injected round survives a JSONL round trip. The
// million-job variant of this check is the CI chaos smoke.
func TestFaultInjectedReplayDeterminism(t *testing.T) {
	clouds := make([]workload.CloudSpec, 8)
	for i := range clouds {
		clouds[i] = workload.CloudSpec{
			Name: string(rune('a' + i)), Cores: 48,
			Speed: 1.0 + 0.05*float64(i%3), Price: 0.06 + 0.01*float64(i%4),
		}
	}
	jobs := workload.Generate(workload.StandardConfig(42, 5000))
	storm := Generate(Storm(42, Targets(clouds)))
	tr := storm.InjectInto(jobs)

	// The injected trace must survive the JSONL round trip unchanged —
	// fault fields are first-class schema.
	dir := t.TempDir()
	path := filepath.Join(dir, "mixed.jsonl")
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := workload.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Events) != len(tr.Events) {
		t.Fatalf("round trip changed event count: %d vs %d", len(loaded.Events), len(tr.Events))
	}

	run := func(workers int) workload.Result {
		cfg := workload.ReplayConfig{Clouds: clouds, OverrunSigma: 0.4}
		cfg.Sched.EnablePreemption = true
		cfg.Sched.ScoreWorkers = workers
		r, err := workload.Replay(loaded, cfg)
		if err != nil {
			t.Fatalf("replay (ScoreWorkers=%d): %v", workers, err)
		}
		return r
	}
	seq := run(1)
	if seq.Outages == 0 || seq.OutageRequeues == 0 {
		t.Fatalf("storm replay exercised no outage paths: %+v", seq)
	}
	if seq.Completed == 0 {
		t.Fatalf("nothing completed under the storm: %+v", seq)
	}
	for _, workers := range []int{2, 8} {
		if r := run(workers); r != seq {
			t.Fatalf("ScoreWorkers=%d diverged:\n seq: %+v\n got: %+v", workers, seq, r)
		}
	}
}

// TestHorizonBound: no event is stamped past the configured horizon plus
// the longest episode tail (restores may trail the last in-horizon strike).
func TestHorizonBound(t *testing.T) {
	cfg := Storm(5, stormClouds())
	cfg.Horizon = 2 * sim.Hour
	s := Generate(cfg)
	var strikes int
	for _, ev := range s.Events {
		if ev.Kind == workload.KindOutage && ev.At > int64(cfg.Horizon) {
			t.Fatalf("outage at %d past the %d horizon", ev.At, int64(cfg.Horizon))
		}
		strikes++
	}
	if strikes == 0 {
		t.Fatal("2-hour storm generated nothing")
	}
}
