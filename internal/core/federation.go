// Package core is the paper's unifying layer: a sky-computing federation of
// Nimbus-style clouds behind one provisioning interface (§II), virtual
// clusters spanning clouds over a ViNe overlay, live migration at the cloud
// API level with a secure inter-cloud handshake (§IV), migratable spot
// instances (§IV), and the autonomic adaptation loop that ties the
// communication-pattern detector to migration decisions (§III-C).
package core

import (
	"fmt"
	"sort"

	"repro/internal/autonomic"
	"repro/internal/capacity"
	"repro/internal/dedup"
	"repro/internal/migration"
	"repro/internal/netmon"
	"repro/internal/nimbus"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/secure"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vine"
	"repro/internal/vm"
)

// Federation is a set of clouds joined by a WAN and a virtual network
// overlay, managed through one API.
type Federation struct {
	K       *sim.Kernel
	Net     *simnet.Network
	Overlay *vine.Overlay

	clouds map[string]*nimbus.Cloud
	vms    map[string]*managedVM
	vipSeq int

	// ledger is the federation-wide capacity ledger: every member cloud's
	// admissions, the scheduler's backfill reservations, and elastic-growth
	// probes share these accounts (see internal/capacity).
	ledger *capacity.Ledger

	monitor *netmon.Monitor
	engine  *autonomic.Engine

	// sched is the federation-wide job scheduler (see EnableScheduler).
	sched        *sched.Scheduler
	schedBackend *fedBackend

	// Auth is the federation certificate authority; Broker establishes the
	// §IV mutually authenticated channels between hypervisors before any
	// migration traffic flows.
	Auth   *secure.Authority
	Broker *secure.Broker
	creds  map[string]secure.Credential

	// UseShrinker enables content-based-addressing dedup (against the
	// destination cloud's site registry) for every federation migration.
	UseShrinker bool

	// Obs is the federation-wide metrics registry: the capacity ledger,
	// every member cloud, and the scheduler (unless Config.Obs overrides)
	// register their instruments here, so one scrape covers the whole stack.
	Obs *obs.Registry

	// Stats.
	Migrations     int
	MigrationBytes int64
	SpotMigrations int
	SpotKills      int

	m coreMetrics
}

type managedVM struct {
	vm    *vm.VM
	cloud *nimbus.Cloud
}

// NewFederation creates a federation with a fresh kernel and network.
func NewFederation(seed int64) *Federation {
	k := sim.NewKernel(seed)
	net := simnet.New(k)
	auth := secure.NewAuthority(seed ^ 0x5ec)
	reg := obs.NewRegistry()
	f := &Federation{
		K:           k,
		Net:         net,
		Overlay:     vine.New(net),
		clouds:      make(map[string]*nimbus.Cloud),
		vms:         make(map[string]*managedVM),
		ledger:      capacity.New(),
		Auth:        auth,
		Broker:      secure.NewBroker(net, auth, secure.Config{}),
		creds:       make(map[string]secure.Credential),
		UseShrinker: true,
		Obs:         reg,
		m:           newCoreMetrics(reg),
	}
	f.ledger.Instrument(reg)
	return f
}

// AddCloud creates a cloud in the federation, installs its ViNe router,
// and issues its membership credential. The cloud admits against the
// federation-wide capacity ledger.
func (f *Federation) AddCloud(cfg nimbus.Config) *nimbus.Cloud {
	cfg.Ledger = f.ledger
	if cfg.Obs == nil {
		cfg.Obs = f.Obs
	}
	c := nimbus.New(f.Net, cfg)
	f.clouds[cfg.Name] = c
	vr := c.Site.AddNode(cfg.Name+"/vine-router", 1<<30)
	f.Overlay.AddRouter(vr)
	f.creds[cfg.Name] = f.Auth.Issue(cfg.Name)
	return c
}

// RevokeCloud invalidates a cloud's credential and cached secure sessions:
// it can no longer take part in migrations (§IV's "without intrusion in the
// destination cloud" — a compromised or expelled member is cut off).
func (f *Federation) RevokeCloud(name string) {
	f.Auth.Revoke(name)
	f.Broker.Invalidate(name)
	delete(f.creds, name)
}

// Cloud returns a cloud by name, or nil.
func (f *Federation) Cloud(name string) *nimbus.Cloud { return f.clouds[name] }

// CapacityLedger returns the federation-wide capacity ledger.
func (f *Federation) CapacityLedger() *capacity.Ledger { return f.ledger }

// Clouds returns the clouds sorted by name.
func (f *Federation) Clouds() []*nimbus.Cloud {
	out := make([]*nimbus.Cloud, 0, len(f.clouds))
	for _, c := range f.clouds {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetWANLatency sets the one-way latency between two clouds.
func (f *Federation) SetWANLatency(a, b string, lat sim.Time) {
	f.Net.SetSiteLatency(a, b, lat)
}

// PriceOf returns a cloud's current price signal: the live spot price when
// the market is running, else the on-demand rate.
func (f *Federation) PriceOf(cloud string) float64 {
	c := f.clouds[cloud]
	if c == nil {
		return 0
	}
	if c.Spot != nil && c.Spot.Watched() > 0 {
		return c.Spot.Price
	}
	return c.Price()
}

// VM returns a managed VM by name, or nil.
func (f *Federation) VM(name string) *vm.VM {
	if m, ok := f.vms[name]; ok {
		return m.vm
	}
	return nil
}

// CloudOf returns the cloud currently hosting the named VM, or nil.
func (f *Federation) CloudOf(name string) *nimbus.Cloud {
	if m, ok := f.vms[name]; ok {
		return m.cloud
	}
	return nil
}

// VMNames returns all managed VM names, sorted.
func (f *Federation) VMNames() []string {
	out := make([]string, 0, len(f.vms))
	for n := range f.vms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// adoptVMs registers freshly deployed VMs with the federation: overlay
// virtual IPs and placement tracking.
func (f *Federation) adoptVMs(c *nimbus.Cloud, vms []*vm.VM) {
	for _, v := range vms {
		f.vipSeq++
		v.VirtualIP = fmt.Sprintf("10.128.%d.%d", f.vipSeq/256, f.vipSeq%256)
		h := c.HostOf(v.Name)
		f.Overlay.RegisterVM(v.VirtualIP, h.Node)
		f.vms[v.Name] = &managedVM{vm: v, cloud: c}
	}
}

// releaseVM removes a VM from federation management (termination).
func (f *Federation) releaseVM(v *vm.VM) {
	if m, ok := f.vms[v.Name]; ok {
		m.cloud.Terminate(v)
		f.Overlay.Unregister(v.VirtualIP)
		delete(f.vms, v.Name)
	}
}

// releaseVMLedgered removes a VM whose ledger transition already happened
// (a preemption ran Ledger.EvictCommitted first): host accounting, overlay,
// and federation tracking only — no second Uncommit.
func (f *Federation) releaseVMLedgered(v *vm.VM) {
	if m, ok := f.vms[v.Name]; ok {
		m.cloud.ReleaseLedgered(v)
		v.State = vm.StateTerminated
		f.Overlay.Unregister(v.VirtualIP)
		delete(f.vms, v.Name)
	}
}

// unwindRetarget returns an admitted-but-unmigrated VM to its source cloud
// after its destination host accounting was already released: the committed
// cores retarget back and the VM re-places on a source host. Either step
// can fail if capacity moved during the async handshake window — then the
// cores are returned to the pool (never left stranded committed on a cloud
// with nothing to Uncommit them) and the VM stays host-less, exactly the
// ghost the pre-Retarget rollback produced in the same squeeze.
func (f *Federation) unwindRetarget(src, dst *nimbus.Cloud, v *vm.VM) {
	if err := f.ledger.Retarget(dst.Name, src.Name, v.Cores); err != nil {
		f.ledger.Uncommit(dst.Name, v.Cores)
		src.Adopt(v) // best-effort re-admission through normal commit
		return
	}
	if src.AdoptLedgered(v) == nil {
		f.ledger.Uncommit(src.Name, v.Cores)
	}
}

// MigrateOptions tunes a federation-level migration.
type MigrateOptions struct {
	// Live selects pre-copy live migration (true) or suspend/resume.
	Live bool
	// WithDisk transfers the disk image (no shared storage across clouds).
	WithDisk bool
	// Reconfigure runs the ViNe route update at completion.
	Reconfigure bool
}

// DefaultMigrate is live migration with disk and overlay reconfiguration —
// the full mechanism the thesis assembles.
func DefaultMigrate() MigrateOptions {
	return MigrateOptions{Live: true, WithDisk: true, Reconfigure: true}
}

// MigrateVM live-migrates a VM to another cloud through the cloud API
// (§IV: "adding support for live migration at the cloud API level"),
// including the secure inter-cloud handshake, Shrinker dedup against the
// destination's registry (when UseShrinker), and overlay reconfiguration.
func (f *Federation) MigrateVM(name, dstCloud string, opts MigrateOptions, onDone func(migration.Result, error)) {
	finish := func(r migration.Result, err error) {
		if onDone != nil {
			onDone(r, err)
		}
	}
	m, ok := f.vms[name]
	if !ok {
		f.K.Schedule(0, func() { finish(migration.Result{}, fmt.Errorf("core: unknown VM %q", name)) })
		return
	}
	dst, ok := f.clouds[dstCloud]
	if !ok {
		f.K.Schedule(0, func() { finish(migration.Result{}, fmt.Errorf("core: unknown cloud %q", dstCloud)) })
		return
	}
	src := m.cloud
	if src == dst {
		f.K.Schedule(0, func() { finish(migration.Result{}, fmt.Errorf("core: VM %q already at %s", name, dstCloud)) })
		return
	}
	srcHost := src.HostOf(name)
	if srcHost == nil {
		f.K.Schedule(0, func() { finish(migration.Result{}, fmt.Errorf("core: VM %q has no host at %s", name, src.Name)) })
		return
	}
	// Admission at the destination before moving bytes: one atomic ledger
	// transition (the VM's committed cores retarget src→dst), then host
	// bookkeeping through the ledger-skipping paths. A failed admission
	// touches nothing, and no instant exists between the source release and
	// the destination commit for a concurrent deploy to take the cores —
	// the release+acquire race the ledger's Retarget exists to close.
	v := m.vm
	if !dst.CanHost(v) {
		f.K.Schedule(0, func() { finish(migration.Result{}, fmt.Errorf("core: cloud %s cannot host %s", dstCloud, name)) })
		return
	}
	if err := f.ledger.Retarget(src.Name, dst.Name, v.Cores); err != nil {
		f.K.Schedule(0, func() {
			finish(migration.Result{}, fmt.Errorf("core: cloud %s cannot host %s: %v", dstCloud, name, err))
		})
		return
	}
	src.ReleaseLedgered(v)
	dstHost := dst.AdoptLedgered(v)
	if dstHost == nil { // unreachable after CanHost; defensive roll back
		f.unwindRetarget(src, dst, v)
		f.K.Schedule(0, func() { finish(migration.Result{}, fmt.Errorf("core: cloud %s cannot host %s", dstCloud, name)) })
		return
	}
	var reg *dedup.Registry
	if f.UseShrinker {
		reg = dst.Registry
	}
	mopts := migration.Options{
		Registry:    reg,
		MigrateDisk: opts.WithDisk,
		DedupDisk:   opts.WithDisk && f.UseShrinker,
	}
	migStart := f.K.Now()
	run := func() {
		done := func(r migration.Result) {
			m.cloud = dst
			f.Migrations++
			f.MigrationBytes += r.WireBytes
			f.m.migrations.Inc()
			f.m.migrationBytes.Add(r.WireBytes)
			f.m.migrationSeconds.Observe((f.K.Now() - migStart).Seconds())
			if opts.Reconfigure {
				f.Overlay.VMMoved(v.VirtualIP, dstHost.Node, true, nil)
			} else {
				f.Overlay.VMMoved(v.VirtualIP, dstHost.Node, false, nil)
			}
			finish(r, nil)
		}
		if opts.Live {
			migration.Live(f.Net, v, srcHost.Node, dstHost.Node, mopts, done)
		} else {
			migration.SuspendResume(f.Net, v, srcHost.Node, dstHost.Node, mopts, done)
		}
	}
	// §IV secure handshake: mutual authentication between the hypervisors
	// before any VM state crosses the cloud boundary. Rejected credentials
	// abort the migration and roll back the destination reservation.
	f.Broker.Establish(srcHost.Node, dstHost.Node, f.creds[src.Name], f.creds[dst.Name],
		func(_ *secure.Channel, err error) {
			if err != nil {
				dst.ReleaseLedgered(v)
				f.unwindRetarget(src, dst, v)
				finish(migration.Result{}, err)
				return
			}
			run()
		})
}

// MigrateSet migrates several VMs to dstCloud with the given concurrency,
// sharing the destination registry so inter-VM duplicates cross the WAN
// once (Shrinker's virtual-cluster scenario).
func (f *Federation) MigrateSet(names []string, dstCloud string, opts MigrateOptions,
	concurrency int, onDone func([]migration.Result, error)) {
	if concurrency < 1 {
		concurrency = 1
	}
	results := make([]migration.Result, 0, len(names))
	var firstErr error
	idx, inflight := 0, 0
	var pump func()
	pump = func() {
		for inflight < concurrency && idx < len(names) {
			name := names[idx]
			idx++
			inflight++
			f.MigrateVM(name, dstCloud, opts, func(r migration.Result, err error) {
				inflight--
				if err != nil && firstErr == nil {
					firstErr = err
				} else if err == nil {
					results = append(results, r)
				}
				if idx == len(names) && inflight == 0 {
					if onDone != nil {
						onDone(results, firstErr)
					}
					return
				}
				pump()
			})
		}
	}
	if len(names) == 0 {
		f.K.Schedule(0, func() {
			if onDone != nil {
				onDone(nil, nil)
			}
		})
		return
	}
	pump()
}

// EnableMigratableSpot replaces a cloud's spot revocation behaviour: instead
// of killing an out-bid VM, the federation migrates it to the cheapest other
// cloud with capacity (§IV's "migratable spot instances which, instead of
// being killed when their resource allocation is canceled, are allowed to
// migrate to a different cloud"). Falls back to termination when no cloud
// can host it.
func (f *Federation) EnableMigratableSpot(cloud string) {
	c := f.clouds[cloud]
	if c == nil {
		panic("core: unknown cloud " + cloud)
	}
	c.Spot.OnRevoke = func(v *vm.VM) {
		target := ""
		best := -1.0
		for _, other := range f.Clouds() {
			if other == c || other.FreeCores() < v.Cores {
				continue
			}
			p := f.PriceOf(other.Name)
			if best < 0 || p < best {
				best, target = p, other.Name
			}
		}
		if target == "" {
			f.SpotKills++
			f.m.spotKills.Inc()
			f.releaseVM(v)
			return
		}
		f.SpotMigrations++
		f.m.spotMigrations.Inc()
		f.MigrateVM(v.Name, target, DefaultMigrate(), nil)
	}
}

// AttachMonitor installs the passive traffic monitor used by the autonomic
// loop (tagPrefix selects the application traffic, e.g. "shuffle:").
func (f *Federation) AttachMonitor(sampleRate float64, tagPrefix string) *netmon.Monitor {
	f.monitor = netmon.New(f.Net, sampleRate, f.K.Rand().Int63(), tagPrefix)
	return f.monitor
}

// Snapshot builds the autonomic monitoring state from live federation data.
func (f *Federation) Snapshot() *autonomic.State {
	s := &autonomic.State{
		Now:       f.K.Now(),
		Price:     make(map[string]float64),
		FreeCores: make(map[string]int),
		VMSite:    make(autonomic.Assignment),
		VMCores:   make(map[string]int),
		Traffic:   make(netmon.Matrix),
	}
	for _, c := range f.Clouds() {
		s.Sites = append(s.Sites, c.Name)
		s.Price[c.Name] = f.PriceOf(c.Name)
		s.FreeCores[c.Name] = c.FreeCores()
	}
	nodeToVM := make(map[string]string)
	for name, m := range f.vms {
		s.VMSite[name] = m.cloud.Name
		s.VMCores[name] = m.vm.Cores
		if h := m.cloud.HostOf(name); h != nil {
			nodeToVM[h.Node.ID] = name
		}
	}
	if f.monitor != nil {
		for e, b := range f.monitor.Matrix() {
			srcVM, ok1 := nodeToVM[e[0]]
			dstVM, ok2 := nodeToVM[e[1]]
			if ok1 && ok2 {
				s.Traffic.Add(srcVM, dstVM, b)
			}
		}
	}
	return s
}

// EnableAutonomic starts the adaptation engine with the given policies,
// executing proposed relocations as federation migrations.
func (f *Federation) EnableAutonomic(interval sim.Time, policies ...autonomic.Policy) *autonomic.Engine {
	f.engine = autonomic.NewEngine(f.K, f.Snapshot, f.executeAction, policies...)
	f.engine.Start(interval)
	return f.engine
}

// executeAction performs one autonomic relocation Action. A VM owned by a
// running scheduler job no longer migrates blind: it routes through the
// scheduler-aware relocation path, which live-migrates the worker, rebinds
// its MapReduce task placement at the new site, and rewrites the job's
// plan and pending-release entries — so an autonomic consolidation
// proposal now adapts *running* gangs, not just future placement. Other
// VMs migrate directly, as before.
func (f *Federation) executeAction(a autonomic.Action) bool {
	m, ok := f.vms[a.VM]
	if !ok || m.cloud.Name != a.From {
		return false
	}
	dst := f.clouds[a.To]
	if dst == nil || dst.FreeCores() < m.vm.Cores {
		return false
	}
	if b := f.schedBackend; b != nil {
		if lj := b.owner[a.VM]; lj != nil && lj.vc != nil {
			b.relocateWorkers(lj, a.From, a.To, []string{a.VM}, true, nil)
			return true
		}
	}
	f.MigrateVM(a.VM, a.To, DefaultMigrate(), nil)
	return true
}

// Engine returns the running autonomic engine (nil before EnableAutonomic).
func (f *Federation) Engine() *autonomic.Engine { return f.engine }
