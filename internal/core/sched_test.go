package core

import (
	"fmt"
	"testing"

	"repro/internal/emr"
	"repro/internal/mapreduce"
	"repro/internal/nimbus"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/vm"
)

// schedFederation builds a federation with n identical clouds seeded with a
// "debian" image, plus the scheduler.
func schedFederation(t *testing.T, seed int64, n, hostsPer int, cfg sched.Config) (*Federation, *sched.Scheduler) {
	t.Helper()
	f := NewFederation(seed)
	for i := 0; i < n; i++ {
		name := []string{"cloud0", "cloud1", "cloud2", "cloud3"}[i]
		c := f.AddCloud(nimbus.Config{
			Name: name, Hosts: hostsPer,
			HostSpec: nimbus.HostSpec{Cores: 4, MemPages: 64 * 8192, Speed: 1.0},
			NICBW:    125 << 20, WANUp: 60 << 20, WANDown: 60 << 20,
			PricePerCoreHour: 0.08,
		})
		m := vm.NewContentModel(seed+int64(i)*13, "debian", 0.1, 0.5, 1024)
		c.PutImage(vm.NewDiskImage("debian", 256, 65536, m))
	}
	s := f.EnableScheduler(SchedulerOptions{Sched: cfg})
	return f, s
}

// TestFederationSchedulerRunsJobs: two tenants' jobs run on real virtual
// clusters across two clouds and complete.
func TestFederationSchedulerRunsJobs(t *testing.T) {
	f, s := schedFederation(t, 11, 2, 2, sched.Config{})
	s.AddTenant("a", 1)
	s.AddTenant("b", 1)
	var ids []string
	for i := 0; i < 4; i++ {
		tenant := "a"
		if i%2 == 1 {
			tenant = "b"
		}
		id, err := s.Submit(sched.JobSpec{
			Tenant: tenant, Name: "job", Workers: 2, CoresPerWorker: 2,
			MR: mapreduce.Job{Name: "blast", NumMaps: 8, NumReduces: 1, MapCPU: 10, ReduceCPU: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	f.K.Run()
	clouds := map[string]bool{}
	for _, id := range ids {
		ji, ok := s.Poll(id)
		if !ok || ji.State != sched.Done {
			t.Fatalf("job %s state %v err %v", id, ji.State, ji.Err)
		}
		if ji.Result.MapsExecuted < 8 {
			t.Errorf("job %s executed %d maps", id, ji.Result.MapsExecuted)
		}
		clouds[ji.Cloud] = true
	}
	if len(clouds) < 2 {
		t.Errorf("all jobs landed on one cloud: %v", clouds)
	}
	// All per-job clusters torn down: no managed VMs remain.
	if n := len(f.VMNames()); n != 0 {
		t.Errorf("%d VMs leaked after jobs finished", n)
	}
}

// TestFederationSchedulerGangSpansClouds: a job wider than any single
// cloud runs as one virtual cluster spanning both clouds over the overlay,
// pays real cross-site shuffle traffic, and tears down cleanly.
func TestFederationSchedulerGangSpansClouds(t *testing.T) {
	f, s := schedFederation(t, 17, 2, 2, sched.Config{})
	s.AddTenant("a", 1)
	// 2 clouds x 2 hosts x 4 cores = 8 cores each; 6 workers x 2 cores = 12
	// cores needs both.
	id, err := s.Submit(sched.JobSpec{
		Tenant: "a", Name: "wide", Workers: 6, CoresPerWorker: 2,
		MR: mapreduce.Job{Name: "sort", NumMaps: 12, NumReduces: 2, MapCPU: 5,
			ReduceCPU: 2, ShuffleBytesPerMapPerReduce: 4 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.K.Run()
	ji, _ := s.Poll(id)
	if ji.State != sched.Done {
		t.Fatalf("wide job state %v err %v", ji.State, ji.Err)
	}
	if !ji.Plan.Spanning() || ji.Plan.Workers() != 6 {
		t.Fatalf("plan %v: want a 6-worker plan spanning both clouds", ji.Plan)
	}
	if s.SpanningDispatched() != 1 {
		t.Errorf("SpanningDispatched = %d, want 1", s.SpanningDispatched())
	}
	// The gang's shuffle really crossed the WAN.
	if ji.Result.CrossSiteShuffleBytes == 0 {
		t.Error("spanning job recorded no cross-site shuffle bytes")
	}
	if f.Net.TotalWANBytes() == 0 {
		t.Error("no WAN traffic despite a spanning cluster")
	}
	if n := len(f.VMNames()); n != 0 {
		t.Errorf("%d VMs leaked after the spanning job finished", n)
	}
}

// TestFederationSchedulerSpotRevocation: a price spike revokes a running
// job's spot workers; the scheduler replaces them on-demand and the job
// still completes with its work preserved.
func TestFederationSchedulerSpotRevocation(t *testing.T) {
	f, s := schedFederation(t, 23, 2, 2, sched.Config{
		ElasticInterval: 10 * sim.Second,
	})
	f.WireSchedulerSpot("cloud0")
	f.WireSchedulerSpot("cloud1")
	s.AddTenant("a", 1)
	id, err := s.Submit(sched.JobSpec{
		Tenant: "a", Name: "spotty", Workers: 2, CoresPerWorker: 2,
		Spot: true, Bid: 0.05,
		MR: mapreduce.Job{Name: "blast", NumMaps: 32, NumReduces: 1, MapCPU: 30, ReduceCPU: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.K.Schedule(120*sim.Second, func() {
		f.Cloud("cloud0").Spot.ForcePrice(1.0)
		f.Cloud("cloud1").Spot.ForcePrice(1.0)
	})
	f.K.Run()
	ji, _ := s.Poll(id)
	if ji.State != sched.Done {
		t.Fatalf("job state %v err %v", ji.State, ji.Err)
	}
	if ji.Revocations == 0 {
		t.Fatal("no revocations observed; spike did not hit the job")
	}
	if s.SpotReplacements() == 0 {
		t.Error("scheduler requested no replacement capacity")
	}
	if ji.Result.MapsExecuted < 32 {
		t.Errorf("job finished with %d map executions, want >= 32", ji.Result.MapsExecuted)
	}
}

// TestEMRGateRoutesThroughScheduler: an emr deadline job with a gate queues
// under the tenant's share and still completes with a report.
func TestEMRGateRoutesThroughScheduler(t *testing.T) {
	f, s := schedFederation(t, 31, 2, 2, sched.Config{})
	var vc *VirtualCluster
	f.CreateCluster("emr", ClusterSpec{
		Image: "debian", Cores: 2, MemPages: 8192, CoW: true,
		Distribution: map[string]int{"cloud0": 2},
	}, func(c *VirtualCluster, err error) {
		if err != nil {
			t.Fatal(err)
		}
		vc = c
	})
	f.K.Run()
	svc := emr.New(EMRAdapter{VC: vc}, emr.SelectCheapest)
	svc.Gate = f.EMRGate("analytics")
	var rep emr.Report
	gotReport := false
	err := svc.Submit(emr.JobSpec{
		Job:      mapreduce.Job{Name: "gated", NumMaps: 8, NumReduces: 1, MapCPU: 5, ReduceCPU: 1},
		Deadline: 2 * sim.Hour,
	}, func(r emr.Report) {
		rep = r
		gotReport = true
	})
	if err != nil {
		t.Fatal(err)
	}
	f.K.Run()
	if !gotReport {
		t.Fatal("no report from gated job")
	}
	if rep.Err != nil {
		t.Fatalf("gated job failed: %v", rep.Err)
	}
	if !rep.MetDeadline {
		t.Error("gated job missed a 2-hour deadline")
	}
	if s.Dispatched() == 0 || s.DeliveredCoreSeconds("analytics") <= 0 {
		t.Errorf("job did not flow through the scheduler: dispatched=%d delivered=%.0f",
			s.Dispatched(), s.DeliveredCoreSeconds("analytics"))
	}
}

// TestEMRGateSerializesJobs: two gated deadline jobs on one service run
// back-to-back instead of the second hard-failing on the busy cluster.
func TestEMRGateSerializesJobs(t *testing.T) {
	f, _ := schedFederation(t, 37, 2, 2, sched.Config{})
	var vc *VirtualCluster
	f.CreateCluster("emr", ClusterSpec{
		Image: "debian", Cores: 2, MemPages: 8192, CoW: true,
		Distribution: map[string]int{"cloud0": 2},
	}, func(c *VirtualCluster, err error) {
		if err != nil {
			t.Fatal(err)
		}
		vc = c
	})
	f.K.Run()
	svc := emr.New(EMRAdapter{VC: vc}, emr.SelectCheapest)
	svc.Gate = f.EMRGate("analytics")
	var reports []emr.Report
	for i := 0; i < 2; i++ {
		err := svc.Submit(emr.JobSpec{
			Job:      mapreduce.Job{Name: fmt.Sprintf("gated-%d", i), NumMaps: 8, NumReduces: 1, MapCPU: 5, ReduceCPU: 1},
			Deadline: 2 * sim.Hour,
		}, func(r emr.Report) { reports = append(reports, r) })
		if err != nil {
			t.Fatal(err)
		}
	}
	f.K.Run()
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for _, r := range reports {
		if r.Err != nil {
			t.Fatalf("gated job %s failed: %v", r.Job, r.Err)
		}
		if !r.MetDeadline {
			t.Errorf("gated job %s missed its deadline", r.Job)
		}
	}
}

// TestNotifySchedulerPatterns: shuffle traffic observed by the passive
// monitor is classified and fed back as a pattern event for the tenant.
func TestNotifySchedulerPatterns(t *testing.T) {
	f, s := schedFederation(t, 41, 2, 2, sched.Config{})
	f.AttachMonitor(1.0, "shuffle:")
	s.AddTenant("a", 1)
	id, err := s.Submit(sched.JobSpec{
		Tenant: "a", Name: "sorty", Workers: 4, CoresPerWorker: 2,
		MR: mapreduce.Job{Name: "sort", NumMaps: 16, NumReduces: 4, MapCPU: 4,
			ReduceCPU: 30, ShuffleBytesPerMapPerReduce: 16 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Classify periodically while the job runs (the ticker would keep the
	// simulation alive, so drive Step manually until the job settles).
	cancel := f.K.Ticker(5*sim.Second, func() { f.NotifySchedulerPatterns() })
	for {
		ji, _ := s.Poll(id)
		if ji.State != sched.Running && ji.State != sched.Queued {
			break
		}
		if !f.K.Step() {
			break
		}
	}
	cancel()
	if ji, _ := s.Poll(id); ji.State != sched.Done {
		t.Fatalf("job state %v", ji.State)
	}
	if s.PatternEvents() == 0 {
		t.Fatal("no pattern events reached the scheduler")
	}
	if p := s.PatternOf("a"); p == "" {
		t.Error("tenant pattern not recorded")
	}
}

// TestFederationDeployFaultRetried: a transient deploy fault on the chosen
// cloud fails the gang's CreateCluster; the backend tears the partial gang
// down, backs off, re-probes the plan, and the retried launch completes the
// job — the scheduler never sees an error.
func TestFederationDeployFaultRetried(t *testing.T) {
	f, s := schedFederation(t, 29, 2, 2, sched.Config{})
	s.AddTenant("a", 1)
	// Arm one strike on each cloud: whichever the placement picks, the
	// first deploy faults.
	f.Cloud("cloud0").FailNextDeploys(1)
	f.Cloud("cloud1").FailNextDeploys(1)
	id, err := s.Submit(sched.JobSpec{
		Tenant: "a", Name: "bumpy", Workers: 2, CoresPerWorker: 2,
		MR: mapreduce.Job{Name: "blast", NumMaps: 4, NumReduces: 1, MapCPU: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.K.Run()
	ji, _ := s.Poll(id)
	if ji.State != sched.Done {
		t.Fatalf("job state %v err %v, want Done despite the deploy fault", ji.State, ji.Err)
	}
	if got := int(f.m.launchRetries.Value()); got < 1 {
		t.Fatalf("core launch retries = %d, want >= 1", got)
	}
	if n := len(f.VMNames()); n != 0 {
		t.Errorf("%d VMs leaked after the retried launch", n)
	}
}

// TestFederationDeployFaultsExhausted: faults past the retry budget fail
// the job with the transient error surfaced, and no cluster debris remains.
func TestFederationDeployFaultsExhausted(t *testing.T) {
	f, s := schedFederation(t, 31, 2, 2, sched.Config{})
	s.AddTenant("a", 1)
	f.Cloud("cloud0").FailNextDeploys(10)
	f.Cloud("cloud1").FailNextDeploys(10)
	id, err := s.Submit(sched.JobSpec{
		Tenant: "a", Name: "doomed", Workers: 2, CoresPerWorker: 2,
		MR: mapreduce.Job{Name: "blast", NumMaps: 4, NumReduces: 1, MapCPU: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.K.Run()
	ji, _ := s.Poll(id)
	if ji.State != sched.Failed {
		t.Fatalf("job state %v, want Failed once retries are exhausted", ji.State)
	}
	if n := len(f.VMNames()); n != 0 {
		t.Errorf("%d VMs leaked after the failed launch", n)
	}
}
