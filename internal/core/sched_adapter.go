package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/capacity"
	"repro/internal/emr"
	"repro/internal/mapreduce"
	"repro/internal/migration"
	"repro/internal/netmon"
	"repro/internal/nimbus"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vm"
)

// This file wires the federation-wide job scheduler (internal/sched) into
// the federation: each dispatched job gets its own virtual cluster on the
// chosen cloud, elastic grow/shrink goes through the cluster layer, spot
// revocations are routed back to the scheduler as events, and emr deadline
// jobs can be gated through the scheduler's fair-share queues instead of
// launching directly.

// SchedulerOptions configures EnableScheduler.
type SchedulerOptions struct {
	// Image is the base image for job workers; it must be in every member
	// cloud's store. Empty means "debian".
	Image string
	// MemPagesPerWorker sizes worker VMs. Zero means 8192 (32 MiB), which
	// keeps simulations fast.
	MemPagesPerWorker int
	// SuspendResumeMigration makes scheduler-driven relocations (the
	// consolidation pass, autonomic Actions on scheduler jobs) use the
	// suspend/resume transfer instead of live pre-copy — cheaper on the
	// WAN, at the price of downtime for the moved workers.
	SuspendResumeMigration bool
	// Sched tunes the scheduler itself.
	Sched sched.Config
}

// fedBackend implements sched.Backend over the federation. It keeps no
// capacity arithmetic of its own: nimbus admits deployments synchronously
// against the federation-wide ledger (cores held from the instant Launch
// calls Deploy), and the scheduler's backfill reservations live in the same
// ledger, so there is no dispatch-to-placement window to paper over.
type fedBackend struct {
	f   *Federation
	s   *sched.Scheduler
	opt SchedulerOptions

	// owner maps live worker VM names to their scheduler job, for spot
	// revocation dispatch and traffic attribution.
	owner map[string]*launchedJob

	// retryRNG jitters launch/grow retry backoff; seeded lazily from the
	// kernel RNG on the first transient deploy failure, so fault-free runs
	// never perturb the kernel stream.
	retryRNG *rand.Rand
}

// launchedJob tracks one dispatched job's execution state.
type launchedJob struct {
	id     string
	tenant string
	// plan is the gang placement: one spanning virtual cluster whose
	// workers are distributed over the member clouds and contextualize
	// over the ViNe overlay.
	plan sched.Plan
	cpw  int
	vc   *VirtualCluster
	// extras lists the clouds hosting elastically grown workers, one entry
	// per worker in grow order; Shrink releases from the end.
	extras []string
	// preempted marks a job torn down by the scheduler's eviction pass: its
	// cluster is gone and any straggling completion must be dropped.
	preempted bool
	// relocations counts in-flight worker migrations; while nonzero the job
	// is not preemptible (the VMs' ledger cores are already retargeted to
	// the destination while CloudOf still answers the source — an eviction
	// in that window would split the accounting across two clouds).
	relocations int
}

// EnableScheduler creates the federation-wide job scheduler and starts its
// elastic policy loop. Submit jobs with Scheduler().Submit and track them
// with Scheduler().Poll.
func (f *Federation) EnableScheduler(opt SchedulerOptions) *sched.Scheduler {
	if f.sched != nil {
		return f.sched
	}
	if opt.Image == "" {
		opt.Image = "debian"
	}
	if opt.MemPagesPerWorker <= 0 {
		opt.MemPagesPerWorker = 8192
	}
	if opt.Sched.Obs == nil {
		opt.Sched.Obs = f.Obs
	}
	b := &fedBackend{
		f:     f,
		opt:   opt,
		owner: make(map[string]*launchedJob),
	}
	f.sched = sched.New(b, opt.Sched)
	f.schedBackend = b
	b.s = f.sched
	f.sched.Start()
	return f.sched
}

// Scheduler returns the federation scheduler (nil before EnableScheduler).
func (f *Federation) Scheduler() *sched.Scheduler { return f.sched }

// Kernel implements sched.Backend.
func (b *fedBackend) Kernel() *sim.Kernel { return b.f.K }

// Ledger implements sched.Backend: the federation-wide capacity ledger.
func (b *fedBackend) Ledger() *capacity.Ledger { return b.f.ledger }

// Clouds implements sched.Backend: live capacity straight from the ledger
// (nimbus holds cores from deploy admission, so in-flight provisioning is
// already accounted).
func (b *fedBackend) Clouds() []sched.CloudInfo {
	return b.AppendClouds(make([]sched.CloudInfo, 0, len(b.f.clouds)))
}

// AppendClouds implements the scheduler's allocation-free snapshot path —
// the per-cycle and per-submission capacity reads reuse one buffer instead
// of allocating a slice per call.
func (b *fedBackend) AppendClouds(dst []sched.CloudInfo) []sched.CloudInfo {
	for _, c := range b.f.Clouds() {
		dst = append(dst, sched.CloudInfo{
			Name:       c.Name,
			FreeCores:  c.FreeCores(),
			TotalCores: c.TotalCores(),
			Speed:      c.HostSpeed(),
			Price:      b.f.PriceOf(c.Name),
		})
	}
	return dst
}

// Bandwidth implements sched.Backend: the bottleneck of source uplink and
// destination downlink, straight from the simnet topology.
func (b *fedBackend) Bandwidth(a, c string) float64 {
	sa, sc := b.f.Net.Site(a), b.f.Net.Site(c)
	if sa == nil || sc == nil {
		return 0
	}
	if sa.Up.Capacity < sc.Down.Capacity {
		return sa.Up.Capacity
	}
	return sc.Down.Capacity
}

// fedHandle implements sched.Handle over the job's virtual cluster.
type fedHandle struct {
	b  *fedBackend
	lj *launchedJob
}

// Grow implements sched.Handle: on-demand workers (firm capacity — this is
// the spot-replacement and deadline-chasing path). Targets come from the
// ledger's shared grow policy via planGrow: member clouds in plan order
// first, then the non-member with the most reservation-aware headroom,
// every candidate Probe-vetted — so growth is denied cores an outstanding
// backfill reservation will need, even when they are free right now.
// All-or-nothing, matching SimHandle.Grow: when a multi-cloud grow partially
// fails, exactly the workers that did deploy are terminated (busy base
// workers are untouched) before the error is reported — the scheduler rolls
// its GrewBy credit back on error, so a kept worker would be one it never
// accounts for (or shrinks).
func (h *fedHandle) Grow(n int, onDone func(error)) {
	h.growAttempt(n, 0, onDone)
}

// growAttempt runs one all-or-nothing grow pass. A transient deploy fault
// rolls the pass back (exactly the workers that did deploy are terminated)
// and schedules a fresh attempt after a jittered backoff — planGrow re-runs
// then, so a cloud that lost capacity or failed during the wait drops out
// of the retried allocation. Attempts are bounded by the scheduler's
// LaunchRetries; non-transient errors and exhausted bounds report to onDone
// as before, and the scheduler rolls its GrewBy credit back.
func (h *fedHandle) growAttempt(n, attempt int, onDone func(error)) {
	if h.lj.vc == nil {
		if onDone != nil {
			h.b.f.K.Schedule(0, func() { onDone(fmt.Errorf("core: job cluster not up yet")) })
		}
		return
	}
	alloc, ok := h.planGrow(n)
	if !ok {
		if onDone != nil {
			h.b.f.K.Schedule(0, func() { onDone(fmt.Errorf("core: no clouds can host %d more workers", n)) })
		}
		return
	}
	clouds := make([]string, 0, len(alloc))
	for c := range alloc {
		clouds = append(clouds, c)
	}
	sort.Strings(clouds)
	pending := len(clouds)
	var firstErr error
	var addedVMs, addedClouds []string
	for _, cloud := range clouds {
		cloud, cnt := cloud, alloc[cloud]
		h.lj.vc.grow(cloud, cnt, false, 0, func(vms []string, err error) {
			if err == nil {
				addedVMs = append(addedVMs, vms...)
				for range vms {
					addedClouds = append(addedClouds, cloud)
				}
			} else if firstErr == nil {
				firstErr = err
			}
			pending--
			if pending > 0 {
				return
			}
			if firstErr != nil {
				for _, name := range addedVMs {
					h.lj.vc.removeWorker(name)
				}
				if errors.Is(firstErr, nimbus.ErrTransientDeploy) && attempt < h.b.retryBudget() && !h.lj.preempted {
					h.b.f.m.launchRetries.Inc()
					err := firstErr
					h.b.f.K.Schedule(h.b.retryDelay(attempt+1), func() {
						if h.lj.preempted || h.lj.vc == nil {
							if onDone != nil {
								onDone(err)
							}
							return
						}
						h.growAttempt(n, attempt+1, onDone)
					})
					return
				}
			} else {
				h.lj.extras = append(h.lj.extras, addedClouds...)
				h.b.adopt(h.lj)
			}
			if onDone != nil {
				onDone(firstErr)
			}
		})
	}
}

// planGrow assigns n extra workers to clouds, worker by worker through the
// ledger's shared grow-target policy: plan members in order first, then
// the non-member with the most reservation-aware headroom — so a
// multi-worker grow can spread across clouds instead of demanding one
// cloud fit it all, and is denied cores an outstanding backfill
// reservation will need at its future start (growth can no longer race a
// reserved gang start). ok is false when the federation cannot host all n.
func (h *fedHandle) planGrow(n int) (map[string]int, bool) {
	l := h.b.f.ledger
	now := h.b.f.K.Now()
	names := make([]string, 0, len(h.b.f.clouds))
	for _, c := range h.b.f.Clouds() { // sorted by name
		names = append(names, c.Name)
	}
	members, spill := h.lj.plan.GrowCandidates(names)
	cores := make(map[string]int, 1)
	alloc := make(map[string]int, 1)
	for i := 0; i < n; i++ {
		cloud := l.PickGrowTarget(members, spill, h.lj.cpw, now, cores)
		if cloud == "" {
			return nil, false
		}
		cores[cloud] += h.lj.cpw
		alloc[cloud]++
	}
	return alloc, true
}

// Shrink implements sched.Handle: elastic extras come back newest-first.
func (h *fedHandle) Shrink(n int) int {
	if h.lj.vc == nil {
		return 0
	}
	removed := 0
	for removed < n && len(h.lj.extras) > 0 {
		cloud := h.lj.extras[len(h.lj.extras)-1]
		if h.lj.vc.Shrink(cloud, 1) == 0 {
			break
		}
		h.lj.extras = h.lj.extras[:len(h.lj.extras)-1]
		removed++
	}
	return removed
}

// Progress implements sched.Handle.
func (h *fedHandle) Progress() (int, int, int, int) {
	if h.lj.vc == nil {
		return 0, 0, 0, 0
	}
	return h.lj.vc.MapReduce().Progress()
}

// Preemptible implements sched.Preemptor: a job whose cluster is still
// provisioning cannot free its cores synchronously, and one with a worker
// migration in flight has its capacity split across clouds — neither is a
// victim candidate.
func (h *fedHandle) Preemptible() bool {
	return h.lj.vc != nil && !h.lj.preempted && h.lj.relocations == 0
}

// Preempt implements sched.Preemptor: the gang's committed cores convert
// per cloud into beneficiary shield reservations through the ledger's
// atomic eviction transition, then the worker VMs tear down through the
// ledger-skipping release (their ledger side already moved). No Outcome is
// delivered — the scheduler requeues the job.
func (h *fedHandle) Preempt(at sim.Time) []*capacity.Lease {
	lj := h.lj
	if lj.vc == nil || lj.preempted {
		return nil
	}
	lj.preempted = true
	f := h.b.f
	byCloud := make(map[string]int)
	vms := lj.vc.VMs()
	for _, v := range vms {
		if c := f.CloudOf(v.Name); c != nil {
			byCloud[c.Name] += v.Cores
		}
	}
	clouds := make([]string, 0, len(byCloud))
	for c := range byCloud {
		clouds = append(clouds, c)
	}
	sort.Strings(clouds)
	var shields []*capacity.Lease
	for _, cloud := range clouds {
		if sh, err := f.ledger.EvictCommitted(cloud, byCloud[cloud], at); err == nil {
			shields = append(shields, sh)
		}
	}
	h.b.release(lj)
	lj.vc.evictAll()
	return shields
}

// Relocate implements sched.Relocator: `workers` of the job's workers on
// `from` live-migrate to `to` (or suspend/resume, per SchedulerOptions),
// with the secure handshake, the atomic committed-core retarget, overlay
// reconfiguration, and MapReduce rebinding per VM; the backend's own plan
// copy and extras bookkeeping follow on success.
func (h *fedHandle) Relocate(from, to string, workers int, onDone func(error)) {
	lj := h.lj
	if lj.vc == nil {
		h.b.f.K.Schedule(0, func() { onDone(fmt.Errorf("core: job cluster not up yet")) })
		return
	}
	names := lj.vc.VMsAt(from)
	if len(names) < workers {
		h.b.f.K.Schedule(0, func() {
			onDone(fmt.Errorf("core: job has %d workers on %s, relocate wants %d", len(names), from, workers))
		})
		return
	}
	// notify=false: the scheduler initiated this move and rewrites the
	// job's plan in its own completion callback.
	h.b.relocateWorkers(lj, from, to, names[:workers], false, onDone)
}

// relocateWorkers migrates the named worker VMs of one scheduler job and
// reconciles every record that tracks where the gang lives: the launched
// job's plan copy, its extras list, the owner map, and the scheduler's
// plan and release entries via JobRelocated. A partially failed batch is
// reconciled for exactly the workers that DID move (their ledger cores and
// MapReduce bindings are already at the destination) — the error still
// propagates, but no record is left describing the old placement. The
// scheduler is notified for backend-initiated moves (notify, e.g.
// autonomic Actions) and for partial scheduler-initiated ones (whose own
// completion callback skips the plan rewrite on error).
func (b *fedBackend) relocateWorkers(lj *launchedJob, from, to string, names []string, notify bool, onDone func(error)) {
	opts := DefaultMigrate()
	if b.opt.SuspendResumeMigration {
		opts.Live = false
	}
	lj.relocations++
	lj.vc.MigrateWorkersOpts(names, to, opts, 2, func(rs []migration.Result, err error) {
		lj.relocations--
		// MigrateSet reports one Result per VM that completed the move.
		if moved := len(rs); moved > 0 && !lj.preempted {
			// Base-plan workers move the plan; any remainder must have been
			// elastic extras, whose cloud labels follow instead.
			baseMoved := lj.plan.WorkersOn(from)
			if baseMoved > moved {
				baseMoved = moved
			}
			lj.plan = lj.plan.MoveWorkers(from, to, baseMoved)
			for n := moved - baseMoved; n > 0; n-- {
				for k, c := range lj.extras {
					if c == from {
						lj.extras[k] = to
						break
					}
				}
			}
			b.adopt(lj)
			if baseMoved > 0 && (notify || err != nil) {
				b.s.JobRelocated(lj.id, from, to, baseMoved)
			}
		}
		if onDone != nil {
			onDone(err)
		}
	})
}

// adopt (re)registers every live VM of the job as owned, so revocations and
// traffic attribution find it.
func (b *fedBackend) adopt(lj *launchedJob) {
	for _, v := range lj.vc.VMs() {
		b.owner[v.Name] = lj
	}
}

// release drops ownership of the job's VMs.
func (b *fedBackend) release(lj *launchedJob) {
	for name, o := range b.owner {
		if o == lj {
			delete(b.owner, name)
		}
	}
}

// Launch implements sched.Backend: provision one per-job virtual cluster
// spanning every plan member (the gang contextualizes over the ViNe
// overlay), run the MapReduce payload (streaming input from the job's data
// site when non-local), then tear the cluster down. Capacity needs no
// shepherding here: nimbus admits each member deployment synchronously
// against the federation ledger, so the cores are held from this call
// onward.
//
// Deploy failures surface asynchronously (CreateCluster's callback), so the
// scheduler's synchronous ErrTransientLaunch requeue never fires for this
// backend; transient faults are retried here instead — bounded attempts
// with jittered backoff, each preceded by a remapPlan pass that re-Probes
// every member and moves slices the ledger can no longer host onto the
// alternate cloud with the most headroom. A failed CreateCluster tears its
// partial gang down before reporting, so every retry starts from a clean
// ledger.
func (b *fedBackend) Launch(j *sched.Job, plan sched.Plan, onDone func(*sched.Job, sched.Outcome)) (sched.Handle, error) {
	cores := j.Spec.CoresPerWorker
	if cores <= 0 {
		cores = 1
	}
	lj := &launchedJob{id: j.ID, tenant: j.Spec.Tenant, plan: plan, cpw: cores}
	attempt := 0
	var tryLaunch func()
	tryLaunch = func() {
		dist := make(map[string]int, len(lj.plan.Members))
		for _, m := range lj.plan.Members {
			dist[m.Cloud] = m.Workers
		}
		b.f.CreateCluster("sched-"+j.ID, ClusterSpec{
			Image:        b.opt.Image,
			Cores:        cores,
			MemPages:     b.opt.MemPagesPerWorker,
			CoW:          true,
			Spot:         j.Spec.Spot,
			Bid:          j.Spec.Bid,
			Distribution: dist,
		}, func(vc *VirtualCluster, err error) {
			if err != nil {
				if errors.Is(err, nimbus.ErrTransientDeploy) && attempt < b.retryBudget() && !lj.preempted {
					attempt++
					b.f.m.launchRetries.Inc()
					b.remapPlan(lj)
					b.f.K.Schedule(b.retryDelay(attempt), func() {
						if lj.preempted {
							onDone(j, sched.Outcome{Err: err})
							return
						}
						tryLaunch()
					})
					return
				}
				onDone(j, sched.Outcome{Err: err})
				return
			}
			lj.vc = vc
			b.adopt(lj)
			mr := j.Spec.MR
			if mr.Splits == nil && j.Spec.InputSite != "" && j.Spec.InputBytes > 0 && mr.NumMaps > 0 {
				mr.Splits = b.inputSplits(j.Spec.InputSite, mr.NumMaps, j.Spec.InputBytes)
			}
			finish := func(out sched.Outcome) {
				b.release(lj)
				vc.Terminate()
				onDone(j, out)
			}
			if err := vc.RunJob(mr, func(res mapreduce.Result) {
				finish(sched.Outcome{Result: res})
			}); err != nil {
				finish(sched.Outcome{Err: err})
			}
		})
	}
	tryLaunch()
	return &fedHandle{b: b, lj: lj}, nil
}

// remapPlan re-Probes every member of a retrying launch's plan and moves
// slices the ledger can no longer host (the cloud failed during the backoff,
// or its cores were taken) onto the non-member cloud with the most
// reservation-aware headroom. The scheduler's plan and release entries
// follow via JobRelocated, so the retried deploy and the scheduler agree on
// where the gang will live. A slice with no viable alternate keeps its
// placement — the retry simply fails again, and the attempt bound converts
// that into a terminal error.
func (b *fedBackend) remapPlan(lj *launchedJob) {
	l := b.f.ledger
	now := b.f.K.Now()
	names := make([]string, 0, len(b.f.clouds))
	for _, c := range b.f.Clouds() { // sorted by name
		names = append(names, c.Name)
	}
	members := append(lj.plan.Members[:0:0], lj.plan.Members...)
	for _, m := range members {
		need := m.Workers * lj.cpw
		if l.Probe(m.Cloud, need, now) {
			continue
		}
		best, bestRoom := "", 0
		for _, cand := range names {
			if cand == m.Cloud || lj.plan.WorkersOn(cand) > 0 {
				continue
			}
			if room := l.Headroom(cand, now); room >= need && room > bestRoom {
				best, bestRoom = cand, room
			}
		}
		if best == "" {
			continue
		}
		lj.plan = lj.plan.MoveWorkers(m.Cloud, best, m.Workers)
		b.s.JobRelocated(lj.id, m.Cloud, best, m.Workers)
	}
}

// retryBudget is the bounded retry count for transient deploy faults; zero
// when no scheduler is attached (direct cluster tests drive the backend
// without one), so the retry paths stay dormant there.
func (b *fedBackend) retryBudget() int {
	if b.s == nil {
		return 0
	}
	return b.s.Config().LaunchRetries
}

// retryDelay is the jittered exponential backoff before launch/grow attempt
// `attempt` (1-based): the scheduler's RetryBackoffBase doubled per prior
// attempt, capped at FaultQuarantineMax, jittered ×[0.5,1.5) so a burst of
// same-cycle failures does not retry in lockstep.
func (b *fedBackend) retryDelay(attempt int) sim.Time {
	cfg := b.s.Config()
	d := cfg.RetryBackoffBase
	for n := attempt - 1; n > 0 && d < cfg.FaultQuarantineMax; n-- {
		d *= 2
	}
	if d > cfg.FaultQuarantineMax {
		d = cfg.FaultQuarantineMax
	}
	if b.retryRNG == nil {
		b.retryRNG = rand.New(rand.NewSource(b.f.K.Rand().Int63()))
	}
	return sim.Time(float64(d) * (0.5 + b.retryRNG.Float64()))
}

// inputSplits binds each map task to the data-holding cloud's repository
// node: site-local runs stream over the LAN, remote runs over the WAN —
// the HDFS-locality signal the placement score optimises for.
func (b *fedBackend) inputSplits(site string, nMaps int, bytes int64) []mapreduce.Split {
	c := b.f.Cloud(site)
	if c == nil {
		return nil
	}
	per := bytes / int64(nMaps)
	splits := make([]mapreduce.Split, nMaps)
	for i := range splits {
		splits[i] = mapreduce.Split{Bytes: per, Preferred: []*simnet.Node{c.RepoNode()}}
	}
	return splits
}

// WireSchedulerSpot installs scheduler-aware spot revocation on a cloud: a
// revoked worker belonging to a scheduler job is removed from that job's
// cluster and the scheduler is notified (which, by default, grows an
// on-demand replacement — §IV's revocation resilience, scheduler-wide).
// Non-scheduler VMs fall back to the classic kill.
func (f *Federation) WireSchedulerSpot(cloud string) {
	if f.schedBackend == nil {
		panic("core: EnableScheduler before WireSchedulerSpot")
	}
	c := f.clouds[cloud]
	if c == nil {
		panic("core: unknown cloud " + cloud)
	}
	b := f.schedBackend
	c.Spot.OnRevoke = func(v *vm.VM) {
		f.SpotKills++
		f.m.spotKills.Inc()
		if lj := b.owner[v.Name]; lj != nil && lj.vc != nil {
			lj.vc.mr.RemoveWorker(v.Name)
			delete(b.owner, v.Name)
			f.releaseVM(v)
			b.s.Notify(sched.Event{Kind: sched.EventSpotRevoked, Job: lj.id, Cloud: cloud})
			return
		}
		f.releaseVM(v)
	}
}

// NotifySchedulerPatterns classifies each tenant's observed traffic (from
// the attached netmon monitor) and forwards pattern events to the
// scheduler — the §III-C monitoring pipeline feeding placement bias.
// Returns the per-tenant patterns notified.
func (f *Federation) NotifySchedulerPatterns() map[string]string {
	if f.schedBackend == nil || f.monitor == nil {
		return nil
	}
	b := f.schedBackend
	nodeTenant := make(map[string]string)
	for name, lj := range b.owner {
		if c := f.CloudOf(name); c != nil {
			if h := c.HostOf(name); h != nil {
				nodeTenant[h.Node.ID] = lj.tenant
			}
		}
	}
	perTenant := make(map[string]netmon.Matrix)
	for e, bytes := range f.monitor.Matrix() {
		ts, td := nodeTenant[e[0]], nodeTenant[e[1]]
		if ts == "" || ts != td {
			continue
		}
		m := perTenant[ts]
		if m == nil {
			m = make(netmon.Matrix)
			perTenant[ts] = m
		}
		m.Add(e[0], e[1], bytes)
	}
	out := make(map[string]string, len(perTenant))
	for tenant, m := range perTenant {
		p := sched.ClassifyMatrix(m)
		out[tenant] = p
		b.s.Notify(sched.Event{Kind: sched.EventPatternDetected, Tenant: tenant, Pattern: p})
	}
	return out
}

// EMRGate adapts the scheduler into an emr.Gate: deadline jobs submitted to
// an emr.Service with this gate queue under the tenant's fair share instead
// of launching directly on their cluster.
func (f *Federation) EMRGate(tenant string) emr.Gate {
	if f.sched == nil {
		panic("core: EnableScheduler before EMRGate")
	}
	return emrGate{s: f.sched, tenant: tenant}
}

type emrGate struct {
	s      *sched.Scheduler
	tenant string
}

// Admit implements emr.Gate.
func (g emrGate) Admit(tenant, name string, cores int, estimate sim.Time, run func(release func(error))) {
	if tenant == "" {
		tenant = g.tenant
	}
	if cores <= 0 {
		cores = 1
	}
	_, err := g.s.Submit(sched.JobSpec{
		Tenant:          tenant,
		Name:            name,
		Workers:         cores,
		CoresPerWorker:  1,
		EstimateSeconds: estimate.Seconds(),
		Run:             run,
	})
	if err != nil {
		// External jobs occupy caller-owned capacity; an unschedulable
		// spec can only mean a missing tenant, which Submit auto-creates —
		// run immediately rather than losing the job.
		run(func(error) {})
	}
}
