package core

import (
	"strings"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/nimbus"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/vm"
)

// TestPartialClusterFailureReleasesCapacity: a spanning cluster whose
// second member cannot deploy (image missing there) must tear down the
// member that did deploy — no stranded VMs, no cores left committed in the
// ledger.
func TestPartialClusterFailureReleasesCapacity(t *testing.T) {
	f := NewFederation(5)
	for _, name := range []string{"cloud0", "cloud1"} {
		f.AddCloud(nimbus.Config{
			Name: name, Hosts: 2,
			HostSpec: nimbus.HostSpec{Cores: 4, MemPages: 64 * 8192, Speed: 1.0},
			NICBW:    125 << 20, WANUp: 60 << 20, WANDown: 60 << 20,
			PricePerCoreHour: 0.08,
		})
	}
	// The image exists only on cloud0: cloud1's member deploy must fail.
	m := vm.NewContentModel(5, "debian", 0.1, 0.5, 1024)
	f.Cloud("cloud0").PutImage(vm.NewDiskImage("debian", 256, 65536, m))
	var gotErr error
	done := false
	f.CreateCluster("gang", ClusterSpec{
		Image: "debian", Cores: 2, MemPages: 4096, CoW: true,
		Distribution: map[string]int{"cloud0": 2, "cloud1": 2},
	}, func(vc *VirtualCluster, err error) {
		done, gotErr = true, err
		if vc != nil {
			t.Error("partial cluster returned non-nil")
		}
	})
	f.K.Run()
	if !done || gotErr == nil {
		t.Fatalf("cluster creation did not fail: done=%v err=%v", done, gotErr)
	}
	if n := len(f.VMNames()); n != 0 {
		t.Errorf("%d VMs stranded after partial failure", n)
	}
	l := f.CapacityLedger()
	for _, c := range f.Clouds() {
		if free := c.FreeCores(); free != c.TotalCores() {
			t.Errorf("%s: free=%d of %d after partial failure", c.Name, free, c.TotalCores())
		}
		if l.Held(c.Name) != 0 || l.Committed(c.Name) != 0 {
			t.Errorf("%s: held=%d committed=%d after partial failure",
				c.Name, l.Held(c.Name), l.Committed(c.Name))
		}
	}
}

// TestFedGrowAllOrNothing: a multi-cloud grow whose spill member fails to
// deploy (image missing there) must roll the successful member back before
// reporting the error — the scheduler reverses its GrewBy credit on error,
// so a kept worker would be one it never accounts for or shrinks.
func TestFedGrowAllOrNothing(t *testing.T) {
	f := NewFederation(7)
	for _, name := range []string{"cloud0", "cloud1"} {
		f.AddCloud(nimbus.Config{
			Name: name, Hosts: 2,
			HostSpec: nimbus.HostSpec{Cores: 4, MemPages: 64 * 8192, Speed: 1.0},
			NICBW:    125 << 20, WANUp: 60 << 20, WANDown: 60 << 20,
			PricePerCoreHour: 0.08,
		})
	}
	// The image exists only on cloud0: the grow's spill onto cloud1 fails.
	m := vm.NewContentModel(5, "debian", 0.1, 0.5, 1024)
	f.Cloud("cloud0").PutImage(vm.NewDiskImage("debian", 256, 65536, m))
	spec := ClusterSpec{Image: "debian", Cores: 2, MemPages: 4096, CoW: true}
	var vcJob *VirtualCluster
	jobSpec := spec
	jobSpec.Distribution = map[string]int{"cloud0": 1}
	f.CreateCluster("job", jobSpec, func(vc *VirtualCluster, err error) {
		if err != nil {
			t.Errorf("job cluster: %v", err)
		}
		vcJob = vc
	})
	// Filler leaves cloud0 exactly one 2-core worker of room, so a 2-worker
	// grow must split: one worker extends in place, one spills onto cloud1.
	fillSpec := spec
	fillSpec.Distribution = map[string]int{"cloud0": 2}
	f.CreateCluster("filler", fillSpec, func(_ *VirtualCluster, err error) {
		if err != nil {
			t.Errorf("filler cluster: %v", err)
		}
	})
	f.K.Run()
	b := &fedBackend{f: f, opt: SchedulerOptions{Image: "debian", MemPagesPerWorker: 4096},
		owner: make(map[string]*launchedJob)}
	lj := &launchedJob{id: "j1", tenant: "t", cpw: 2, vc: vcJob,
		plan: sched.Plan{Members: []sched.Member{{Cloud: "cloud0", Workers: 1}}}}
	h := &fedHandle{b: b, lj: lj}
	var gotErr error
	called := 0
	h.Grow(2, func(err error) { called++; gotErr = err })
	f.K.Run()
	if called != 1 {
		t.Fatalf("onDone called %d times, want exactly 1", called)
	}
	if gotErr == nil {
		t.Fatal("partial grow reported success")
	}
	if len(lj.extras) != 0 {
		t.Errorf("partial grow kept %d extras", len(lj.extras))
	}
	if n := vcJob.Size(); n != 1 {
		t.Errorf("job cluster has %d workers after rolled-back grow, want 1", n)
	}
	// The rollback must terminate exactly the grown VM (named with the
	// "-g<seq>-" grow prefix), never a busy base worker.
	for _, v := range vcJob.VMs() {
		if strings.Contains(v.Name, "-g") {
			t.Errorf("rollback kept grown worker %s and removed a base worker", v.Name)
		}
	}
	l := f.CapacityLedger()
	if free := f.Cloud("cloud0").FreeCores(); free != 2 {
		t.Errorf("cloud0 free=%d after rollback, want 2", free)
	}
	if free := f.Cloud("cloud1").FreeCores(); free != 8 {
		t.Errorf("cloud1 free=%d after rollback, want 8", free)
	}
	for _, name := range []string{"cloud0", "cloud1"} {
		if held := l.Held(name); held != 0 {
			t.Errorf("%s: %d cores still held after rollback", name, held)
		}
	}
}

// TestFedGrowDeniedByReservation: the federation-level half of the
// grow-vs-reservation regression. A deadline-doomed job fills cloud0 and
// tries to grow every elastic tick; cloud1 holds a backfill-style
// reservation in the federation capacity ledger. planGrow must refuse to
// spill onto the reserved cloud while the reservation stands, admit the
// grow once it is released, and the nimbus host accounting must agree with
// the ledger throughout (the double-entry invariant).
func TestFedGrowDeniedByReservation(t *testing.T) {
	f, s := schedFederation(t, 3, 2, 2, sched.Config{}) // 2 clouds x 8 cores
	s.AddTenant("t", 1)
	id, err := s.Submit(sched.JobSpec{
		Tenant: "t", Name: "late", Workers: 4, CoresPerWorker: 2,
		Deadline: 60 * sim.Second, MaxExtraWorkers: 2,
		MR: mapreduce.Job{Name: "late", NumMaps: 32, NumReduces: 1, MapCPU: 150, ReduceCPU: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	l := f.CapacityLedger()
	resv, err := l.Reserve("cloud1", 8, 800*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkConsistent := func() {
		t.Helper()
		for _, c := range f.Clouds() {
			used := 0
			for _, h := range c.Hosts() {
				used += h.Spec.Cores - h.FreeCores()
			}
			if ledgerUsed := l.Committed(c.Name) + l.Held(c.Name); used != ledgerUsed {
				t.Errorf("t=%v: %s host accounting says %d cores used, ledger says %d",
					f.K.Now(), c.Name, used, ledgerUsed)
			}
			if l.Committed(c.Name)+l.Held(c.Name) > l.Total(c.Name) {
				t.Errorf("t=%v: %s oversubscribed", f.K.Now(), c.Name)
			}
		}
	}
	f.K.At(440*sim.Second, func() {
		checkConsistent()
		ji, _ := s.Poll(id)
		if ji.State != sched.Running {
			t.Fatalf("job state %v at t=440, want running", ji.State)
		}
		if ji.GrewBy != 0 {
			t.Errorf("grow spilled onto the reserved cloud: GrewBy=%d at t=440", ji.GrewBy)
		}
		if s.GrowRequests() == 0 {
			t.Error("no grow was ever attempted; the race was not exercised")
		}
	})
	f.K.At(450*sim.Second, func() { resv.Release() })
	f.K.At(600*sim.Second, checkConsistent)
	f.K.Run()
	ji, _ := s.Poll(id)
	if ji.State != sched.Done {
		t.Fatalf("job state %v, want done (err=%v)", ji.State, ji.Err)
	}
	if ji.GrewBy == 0 {
		t.Fatal("grow still denied after the reservation was released")
	}
	checkConsistent()
	for _, c := range f.Clouds() {
		if free := c.FreeCores(); free != c.TotalCores() {
			t.Errorf("cores leaked on %s: free=%d of %d", c.Name, free, c.TotalCores())
		}
	}
}
