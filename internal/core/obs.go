package core

import "repro/internal/obs"

// Federation observability: one registry spans the whole stack. The
// federation creates it, instruments the shared capacity ledger against it,
// hands it to every nimbus cloud at AddCloud, and passes it to the
// scheduler at EnableScheduler — so a single scrape covers sky_sched_*,
// sky_capacity_*, sky_core_* and sky_nimbus_* families. The public stat
// ints (Migrations, SpotKills, ...) stay as cheap programmatic accessors;
// the registry copies are the scrape-facing view.

// migrationBuckets bound sky_core_migration_seconds in virtual seconds:
// WAN live migrations run tenths of a second (LAN-ish links) to minutes
// (large dirty sets over thin links).
var migrationBuckets = []float64{0.1, 0.5, 1, 2, 5, 10, 30, 60, 120}

// coreMetrics holds the federation's registry instruments.
type coreMetrics struct {
	migrations       *obs.Counter
	migrationBytes   *obs.Counter
	migrationSeconds *obs.Histogram
	spotMigrations   *obs.Counter
	spotKills        *obs.Counter
	launchRetries    *obs.Counter
}

func newCoreMetrics(reg *obs.Registry) coreMetrics {
	return coreMetrics{
		migrations:     reg.Counter("sky_core_migrations_total", "Completed inter-cloud VM migrations."),
		migrationBytes: reg.Counter("sky_core_migration_bytes_total", "Wire bytes moved by migrations."),
		migrationSeconds: reg.Histogram("sky_core_migration_seconds",
			"Virtual duration of completed migrations.", migrationBuckets),
		spotMigrations: reg.Counter("sky_core_spot_migrations_total", "Out-bid spot VMs migrated instead of killed."),
		spotKills:      reg.Counter("sky_core_spot_kills_total", "Out-bid spot VMs terminated."),
		launchRetries:  reg.Counter("sky_core_launch_retries_total", "Transient deploy failures retried on the scheduler launch/grow path."),
	}
}
