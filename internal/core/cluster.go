package core

import (
	"fmt"
	"sort"

	"repro/internal/mapreduce"
	"repro/internal/migration"
	"repro/internal/nimbus"
	"repro/internal/vm"
)

// ClusterSpec describes a virtual cluster spanning clouds.
type ClusterSpec struct {
	Image    string
	Cores    int
	MemPages int
	CoW      bool
	Spot     bool
	Bid      float64
	// Slots is MapReduce task slots per VM (default: Cores).
	Slots int
	// Distribution maps cloud name to VM count — the sky-computing spread.
	Distribution map[string]int
}

// VirtualCluster is a set of VMs across clouds acting as one Hadoop-style
// cluster over the ViNe overlay.
type VirtualCluster struct {
	Name string

	f    *Federation
	mr   *mapreduce.Cluster
	vms  []*vm.VM
	spec ClusterSpec
	seq  int
}

// CreateCluster provisions a virtual cluster per spec: parallel deployments
// on every member cloud, overlay registration, and MapReduce worker setup.
func (f *Federation) CreateCluster(name string, spec ClusterSpec, onDone func(*VirtualCluster, error)) {
	if spec.Slots == 0 {
		spec.Slots = spec.Cores
	}
	vc := &VirtualCluster{Name: name, f: f, mr: mapreduce.NewCluster(f.Net), spec: spec}
	clouds := make([]string, 0, len(spec.Distribution))
	for c := range spec.Distribution {
		clouds = append(clouds, c)
	}
	sort.Strings(clouds)
	pending := len(clouds)
	var firstErr error
	if pending == 0 {
		f.K.Schedule(0, func() { onDone(nil, fmt.Errorf("core: empty cluster distribution")) })
		return
	}
	done := false
	complete := func() {
		// The run-once guard matters when several members fail through the
		// scheduled path (e.g. two unknown clouds): each failure schedules a
		// complete, and all of them fire after pending hits zero.
		if pending != 0 || done {
			return
		}
		done = true
		if firstErr != nil {
			// Members that did deploy are torn down before the error is
			// reported, so a partial gang cannot strand running VMs or
			// leave their cores committed in the capacity ledger.
			vc.Terminate()
			onDone(nil, firstErr)
			return
		}
		onDone(vc, nil)
	}
	for _, cloudName := range clouds {
		cloud := f.clouds[cloudName]
		n := spec.Distribution[cloudName]
		if cloud == nil {
			pending--
			if firstErr == nil {
				firstErr = fmt.Errorf("core: unknown cloud %q", cloudName)
			}
			f.K.Schedule(0, complete)
			continue
		}
		cloud.Deploy(nimbus.DeployRequest{
			NamePrefix: name + "-",
			Count:      n,
			Image:      spec.Image,
			Cores:      spec.Cores,
			MemPages:   spec.MemPages,
			CoW:        spec.CoW,
			Spot:       spec.Spot,
			Bid:        spec.Bid,
		}, func(dep nimbus.Deployment) {
			pending--
			if dep.Err != nil {
				if firstErr == nil {
					firstErr = dep.Err
				}
			} else {
				vc.enroll(cloud, dep.VMs)
			}
			complete()
		})
	}
}

// enroll registers deployed VMs into the federation and the MapReduce layer.
func (vc *VirtualCluster) enroll(cloud *nimbus.Cloud, vms []*vm.VM) {
	vc.f.adoptVMs(cloud, vms)
	for _, v := range vms {
		h := cloud.HostOf(v.Name)
		vc.mr.AddWorker(v.Name, h.Node, cloud.HostSpeed(), vc.spec.Slots)
		vc.vms = append(vc.vms, v)
	}
}

// MapReduce exposes the cluster's execution framework.
func (vc *VirtualCluster) MapReduce() *mapreduce.Cluster { return vc.mr }

// VMs returns the cluster's live VMs.
func (vc *VirtualCluster) VMs() []*vm.VM {
	out := make([]*vm.VM, 0, len(vc.vms))
	for _, v := range vc.vms {
		if v.State != vm.StateTerminated {
			out = append(out, v)
		}
	}
	return out
}

// VMsAt returns the cluster's VM names on the given cloud, sorted.
func (vc *VirtualCluster) VMsAt(cloud string) []string {
	var out []string
	for _, v := range vc.VMs() {
		if c := vc.f.CloudOf(v.Name); c != nil && c.Name == cloud {
			out = append(out, v.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns the number of live VMs.
func (vc *VirtualCluster) Size() int { return len(vc.VMs()) }

// RunJob executes a MapReduce job on the cluster.
func (vc *VirtualCluster) RunJob(job mapreduce.Job, onDone func(mapreduce.Result)) error {
	return vc.mr.Run(job, onDone)
}

// Grow adds n VMs on the named cloud and enrolls them as workers — the
// dynamic cluster-size adjustment of §II. New VMs inherit the cluster
// spec's pricing model (spot or on-demand).
func (vc *VirtualCluster) Grow(cloud string, n int, onDone func(error)) {
	vc.grow(cloud, n, vc.spec.Spot, vc.spec.Bid, func(_ []string, err error) { onDone(err) })
}

// GrowOnDemand adds n on-demand (non-revocable) VMs regardless of the
// cluster spec — how a user replaces lost spot capacity with firm capacity.
func (vc *VirtualCluster) GrowOnDemand(cloud string, n int, onDone func(error)) {
	vc.grow(cloud, n, false, 0, func(_ []string, err error) { onDone(err) })
}

// grow reports the names of the VMs it enrolled so multi-cloud growers can
// roll back exactly those workers on partial failure, leaving busy base
// workers untouched.
func (vc *VirtualCluster) grow(cloud string, n int, spot bool, bid float64, onDone func([]string, error)) {
	c := vc.f.clouds[cloud]
	if c == nil {
		vc.f.K.Schedule(0, func() { onDone(nil, fmt.Errorf("core: unknown cloud %q", cloud)) })
		return
	}
	vc.seq++
	c.Deploy(nimbus.DeployRequest{
		NamePrefix: fmt.Sprintf("%s-g%d-", vc.Name, vc.seq),
		Count:      n,
		Image:      vc.spec.Image,
		Cores:      vc.spec.Cores,
		MemPages:   vc.spec.MemPages,
		CoW:        vc.spec.CoW,
		Spot:       spot,
		Bid:        bid,
	}, func(dep nimbus.Deployment) {
		if dep.Err != nil {
			onDone(nil, dep.Err)
			return
		}
		vc.enroll(c, dep.VMs)
		names := make([]string, len(dep.VMs))
		for i, v := range dep.VMs {
			names[i] = v.Name
		}
		onDone(names, nil)
	})
}

// Shrink removes up to n workers from the named cloud (releasing their VMs)
// and returns how many were removed. Running tasks are requeued by the
// MapReduce layer.
func (vc *VirtualCluster) Shrink(cloud string, n int) int {
	names := vc.VMsAt(cloud)
	removed := 0
	for _, name := range names {
		if removed >= n {
			break
		}
		vc.removeWorker(name)
		removed++
	}
	return removed
}

// removeWorker drops one named worker from the cluster, requeueing its
// tasks and releasing its VM.
func (vc *VirtualCluster) removeWorker(name string) {
	vc.mr.RemoveWorker(name)
	vc.f.releaseVM(vc.f.VM(name))
}

// MigrateWorkers live-migrates cluster members to dstCloud while the
// cluster keeps computing (the §III-C scenario: relocating subsets of a
// virtual cluster). Worker node bindings are updated at completion so
// future shuffle traffic uses the new location.
func (vc *VirtualCluster) MigrateWorkers(names []string, dstCloud string, concurrency int,
	onDone func([]migration.Result, error)) {
	vc.MigrateWorkersOpts(names, dstCloud, DefaultMigrate(), concurrency, onDone)
}

// MigrateWorkersOpts is MigrateWorkers with explicit migration options —
// the scheduler's consolidation path selects live pre-copy or
// suspend/resume by policy here. Each VM still goes through the secure
// inter-cloud handshake, the atomic committed-core retarget, and overlay
// reconfiguration (MigrateVM), with the shared destination registry
// deduplicating inter-VM content across the set.
func (vc *VirtualCluster) MigrateWorkersOpts(names []string, dstCloud string, opts MigrateOptions,
	concurrency int, onDone func([]migration.Result, error)) {
	vc.f.MigrateSet(names, dstCloud, opts, concurrency, func(rs []migration.Result, err error) {
		dst := vc.f.clouds[dstCloud]
		if dst != nil {
			for _, name := range names {
				if h := dst.HostOf(name); h != nil {
					vc.mr.MoveWorker(name, h.Node)
				}
			}
		}
		if onDone != nil {
			onDone(rs, err)
		}
	})
}

// evictAll tears every live VM down through the ledger-skipping release:
// the preemption's Ledger.EvictCommitted already moved the committed cores
// into the beneficiary's shield reservations, so the normal Terminate path
// would Uncommit a second time.
func (vc *VirtualCluster) evictAll() {
	for _, v := range vc.VMs() {
		vc.mr.RemoveWorker(v.Name)
		vc.f.releaseVMLedgered(v)
	}
}

// WireSpotKill installs the classic spot behaviour on a cloud, integrated
// with this cluster: a revoked VM is killed and its worker removed (losing
// its in-progress and unfetched map work) — the baseline §IV's migratable
// spot instances improve on.
func (vc *VirtualCluster) WireSpotKill(cloud string) {
	c := vc.f.clouds[cloud]
	if c == nil {
		panic("core: unknown cloud " + cloud)
	}
	c.Spot.OnRevoke = func(v *vm.VM) {
		vc.f.SpotKills++
		vc.mr.RemoveWorker(v.Name)
		vc.f.releaseVM(v)
	}
}

// WireSpotMigration installs §IV's migratable-spot behaviour integrated with
// this cluster: a revoked VM live-migrates to the cheapest other cloud with
// capacity and its worker is rebound there, so the job keeps its work.
// Falls back to kill when no cloud can host the VM.
func (vc *VirtualCluster) WireSpotMigration(cloud string) {
	c := vc.f.clouds[cloud]
	if c == nil {
		panic("core: unknown cloud " + cloud)
	}
	c.Spot.OnRevoke = func(v *vm.VM) {
		target := ""
		best := -1.0
		for _, other := range vc.f.Clouds() {
			if other == c || other.FreeCores() < v.Cores {
				continue
			}
			p := vc.f.PriceOf(other.Name)
			if best < 0 || p < best {
				best, target = p, other.Name
			}
		}
		if target == "" {
			vc.f.SpotKills++
			vc.mr.RemoveWorker(v.Name)
			vc.f.releaseVM(v)
			return
		}
		vc.f.SpotMigrations++
		vc.f.MigrateVM(v.Name, target, DefaultMigrate(), func(_ migration.Result, err error) {
			if err != nil {
				return
			}
			if h := vc.f.clouds[target].HostOf(v.Name); h != nil {
				vc.mr.MoveWorker(v.Name, h.Node)
			}
		})
	}
}

// TerminateVM kills one VM by name, releasing its resources and overlay
// address.
func (f *Federation) TerminateVM(name string) {
	if v := f.VM(name); v != nil {
		f.releaseVM(v)
	}
}

// Terminate releases every VM in the cluster.
func (vc *VirtualCluster) Terminate() {
	for _, v := range vc.VMs() {
		vc.mr.RemoveWorker(v.Name)
		vc.f.releaseVM(v)
	}
}
