package core

import (
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/migration"
	"repro/internal/sim"
)

// Churn and failure-injection tests: the federation must keep its
// bookkeeping consistent while clusters grow, shrink, and migrate
// concurrently with a running job — the "dynamic nature of distributed
// clouds" the thesis is about, exercised adversarially.

func TestJobSurvivesRandomChurn(t *testing.T) {
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"g5k": 4, "futuregrid": 2})
	var res mapreduce.Result
	if err := vc.RunJob(mapreduce.BlastJob(96), func(r mapreduce.Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	// Inject churn on a schedule derived from the seeded kernel RNG:
	// growth, shrink, and a cross-cloud migration, all mid-job.
	f.K.Schedule(20*sim.Second, func() {
		vc.Grow("futuregrid", 3, func(err error) {
			if err != nil {
				t.Errorf("grow failed: %v", err)
			}
		})
	})
	f.K.Schedule(60*sim.Second, func() { vc.Shrink("g5k", 2) })
	f.K.Schedule(90*sim.Second, func() {
		names := vc.VMsAt("g5k")
		if len(names) > 0 {
			vc.MigrateWorkers(names[:1], "futuregrid", 1, nil)
		}
	})
	f.K.Schedule(150*sim.Second, func() {
		vc.Grow("g5k", 2, func(error) {})
	})
	f.K.Run()
	if res.Makespan == 0 {
		t.Fatal("job did not survive churn")
	}
	if res.MapsExecuted < 96 {
		t.Fatalf("maps executed %d < 96", res.MapsExecuted)
	}
	// Resource accounting must balance: free cores + used cores == total.
	for _, c := range f.Clouds() {
		used := 0
		for _, h := range c.Hosts() {
			used += h.Spec.Cores - h.FreeCores()
		}
		if c.FreeCores()+used != c.TotalCores() {
			t.Fatalf("cloud %s core accounting broken: free=%d used=%d total=%d",
				c.Name, c.FreeCores(), used, c.TotalCores())
		}
	}
	// Every live VM must resolve in the overlay and on exactly one cloud.
	for _, v := range vc.VMs() {
		if f.Overlay.Lookup(v.VirtualIP) == nil {
			t.Fatalf("VM %s lost its overlay address", v.Name)
		}
		hosts := 0
		for _, c := range f.Clouds() {
			if c.HostOf(v.Name) != nil {
				hosts++
			}
		}
		if hosts != 1 {
			t.Fatalf("VM %s placed on %d clouds", v.Name, hosts)
		}
	}
}

func TestRepeatedMigrationPingPong(t *testing.T) {
	// Migrating the same VM back and forth must converge every time and
	// keep registries and the overlay coherent.
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"g5k": 1})
	name := vc.VMsAt("g5k")[0]
	hops := []string{"futuregrid", "g5k", "futuregrid", "g5k"}
	var step func(idx int)
	step = func(idx int) {
		if idx >= len(hops) {
			return
		}
		f.MigrateVM(name, hops[idx], DefaultMigrate(), func(_ migration.Result, err error) {
			if err != nil {
				t.Errorf("hop %d failed: %v", idx, err)
				return
			}
			step(idx + 1)
		})
	}
	step(0)
	f.K.Run()
	if got := f.CloudOf(name).Name; got != "g5k" {
		t.Fatalf("ping-pong ended at %s, want g5k", got)
	}
	if f.Migrations != 4 {
		t.Fatalf("migrations %d, want 4", f.Migrations)
	}
	v := f.VM(name)
	if f.Overlay.RouteStale("futuregrid", v.VirtualIP) || f.Overlay.RouteStale("g5k", v.VirtualIP) {
		t.Fatal("overlay stale after ping-pong")
	}
}

func TestShrinkEverythingThenGrow(t *testing.T) {
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"g5k": 3})
	if n := vc.Shrink("g5k", 3); n != 3 {
		t.Fatalf("shrunk %d", n)
	}
	if vc.Size() != 0 {
		t.Fatalf("size %d after full shrink", vc.Size())
	}
	var err error
	vc.Grow("futuregrid", 2, func(e error) { err = e })
	f.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if vc.Size() != 2 {
		t.Fatalf("size %d after regrow", vc.Size())
	}
	// The revived cluster must run jobs.
	var res mapreduce.Result
	if err := vc.RunJob(mapreduce.BlastJob(8), func(r mapreduce.Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	f.K.Run()
	if res.MapsExecuted != 8 {
		t.Fatalf("revived cluster executed %d maps", res.MapsExecuted)
	}
}
