package core
