package core

import (
	"testing"

	"repro/internal/autonomic"
	"repro/internal/mapreduce"
	"repro/internal/migration"
	"repro/internal/nimbus"
	"repro/internal/sim"
	"repro/internal/vine"
	"repro/internal/vm"
)

const MB = 1 << 20

func cloudCfg(name string, hosts int, price float64) nimbus.Config {
	return nimbus.Config{
		Name:             name,
		Hosts:            hosts,
		HostSpec:         nimbus.HostSpec{Cores: 8, MemPages: 64 * 16384, Speed: 1.0},
		NICBW:            125 * MB,
		WANUp:            125 * MB,
		WANDown:          125 * MB,
		PricePerCoreHour: price,
	}
}

// fed builds a two-cloud federation with the debian image on both sides.
func fed(t testing.TB) *Federation {
	f := NewFederation(1)
	g5k := f.AddCloud(cloudCfg("g5k", 8, 0.08))
	fg := f.AddCloud(cloudCfg("futuregrid", 8, 0.12))
	f.SetWANLatency("g5k", "futuregrid", 60*sim.Millisecond)
	m := vm.NewContentModel(11, "debian", 0.1, 0.5, 2048)
	img := vm.NewDiskImage("debian", 1024, 65536, m)
	g5k.PutImage(img)
	m2 := vm.NewContentModel(12, "debian", 0.1, 0.5, 2048)
	fg.PutImage(vm.NewDiskImage("debian", 1024, 65536, m2))
	return f
}

func makeCluster(t *testing.T, f *Federation, dist map[string]int) *VirtualCluster {
	t.Helper()
	var vc *VirtualCluster
	var err error
	f.CreateCluster("vc", ClusterSpec{
		Image: "debian", Cores: 2, MemPages: 8192, CoW: true,
		Distribution: dist,
	}, func(c *VirtualCluster, e error) { vc, err = c, e })
	f.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	return vc
}

func TestCreateClusterSpansClouds(t *testing.T) {
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"g5k": 4, "futuregrid": 4})
	if vc.Size() != 8 {
		t.Fatalf("cluster size %d", vc.Size())
	}
	if len(vc.VMsAt("g5k")) != 4 || len(vc.VMsAt("futuregrid")) != 4 {
		t.Fatalf("spread wrong: %v / %v", vc.VMsAt("g5k"), vc.VMsAt("futuregrid"))
	}
	for _, v := range vc.VMs() {
		if v.VirtualIP == "" {
			t.Fatalf("VM %s has no overlay address", v.Name)
		}
		if f.Overlay.Lookup(v.VirtualIP) == nil {
			t.Fatalf("VM %s not in overlay", v.Name)
		}
	}
}

func TestCreateClusterErrors(t *testing.T) {
	f := fed(t)
	var err error
	f.CreateCluster("x", ClusterSpec{Image: "debian", Distribution: map[string]int{"nope": 2}},
		func(_ *VirtualCluster, e error) { err = e })
	f.K.Run()
	if err == nil {
		t.Fatal("unknown cloud must fail")
	}
	f.CreateCluster("y", ClusterSpec{Image: "debian"}, func(_ *VirtualCluster, e error) { err = e })
	f.K.Run()
	if err == nil {
		t.Fatal("empty distribution must fail")
	}
}

// TestCreateClusterSingleCompletion: multiple members failing through the
// scheduled path (two unknown clouds) must report exactly one completion —
// each failure schedules complete(), and all of them fire after pending
// reaches zero.
func TestCreateClusterSingleCompletion(t *testing.T) {
	f := fed(t)
	calls := 0
	f.CreateCluster("x", ClusterSpec{Image: "debian",
		Distribution: map[string]int{"ghost1": 1, "ghost2": 1}},
		func(_ *VirtualCluster, e error) {
			calls++
			if e == nil {
				t.Error("unknown clouds must fail")
			}
		})
	f.K.Run()
	if calls != 1 {
		t.Fatalf("onDone called %d times, want exactly 1", calls)
	}
}

func TestCrossCloudMapReduce(t *testing.T) {
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"g5k": 3, "futuregrid": 3})
	var res mapreduce.Result
	if err := vc.RunJob(mapreduce.BlastJob(24), func(r mapreduce.Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	f.K.Run()
	if res.Makespan == 0 {
		t.Fatal("cross-cloud job never finished")
	}
	if res.MapsExecuted != 24 {
		t.Fatalf("maps %d", res.MapsExecuted)
	}
}

func TestGrowShrink(t *testing.T) {
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"g5k": 2})
	var gerr error
	vc.Grow("futuregrid", 3, func(e error) { gerr = e })
	f.K.Run()
	if gerr != nil {
		t.Fatal(gerr)
	}
	if vc.Size() != 5 {
		t.Fatalf("size after grow %d", vc.Size())
	}
	if n := vc.Shrink("futuregrid", 2); n != 2 {
		t.Fatalf("shrunk %d", n)
	}
	if vc.Size() != 3 {
		t.Fatalf("size after shrink %d", vc.Size())
	}
	// Shrunk VMs are terminated and out of the overlay.
	if got := len(vc.VMsAt("futuregrid")); got != 1 {
		t.Fatalf("futuregrid VMs left %d", got)
	}
}

func TestMigrateVMCloudAPI(t *testing.T) {
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"g5k": 2})
	name := vc.VMsAt("g5k")[0]
	var res migration.Result
	var err error
	f.MigrateVM(name, "futuregrid", DefaultMigrate(), func(r migration.Result, e error) { res, err = r, e })
	f.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if f.CloudOf(name).Name != "futuregrid" {
		t.Fatalf("VM still at %s", f.CloudOf(name).Name)
	}
	if res.Method != "shrinker" {
		t.Fatalf("federation default should use Shrinker, got %s", res.Method)
	}
	if res.BlocksSent == 0 && res.BlocksDeduped == 0 {
		t.Fatal("disk was not migrated")
	}
	v := f.VM(name)
	if v.State != vm.StateRunning {
		t.Fatalf("state %v", v.State)
	}
	// Overlay must have been reconfigured: route fresh everywhere.
	if f.Overlay.RouteStale("g5k", v.VirtualIP) {
		t.Fatal("overlay stale after cloud-API migration")
	}
	if f.Migrations != 1 || f.MigrationBytes == 0 {
		t.Fatalf("stats migrations=%d bytes=%d", f.Migrations, f.MigrationBytes)
	}
}

func TestMigrateVMDedupUsesDestinationRegistry(t *testing.T) {
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"g5k": 2})
	names := vc.VMsAt("g5k")
	var r1, r2 migration.Result
	f.MigrateVM(names[0], "futuregrid", DefaultMigrate(), func(r migration.Result, e error) {
		r1 = r
		f.MigrateVM(names[1], "futuregrid", DefaultMigrate(), func(r migration.Result, e error) { r2 = r })
	})
	f.K.Run()
	if r2.WireBytes >= r1.WireBytes {
		t.Fatalf("second migration (%d) not cheaper than first (%d): registry not shared",
			r2.WireBytes, r1.WireBytes)
	}
	// Both should already benefit from the destination's seeded image blocks.
	if r1.BlocksDeduped == 0 {
		t.Fatal("disk blocks found no duplicates despite identical base image at destination")
	}
}

func TestMigrateVMErrors(t *testing.T) {
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"g5k": 1})
	name := vc.VMsAt("g5k")[0]
	var err error
	f.MigrateVM("ghost", "futuregrid", DefaultMigrate(), func(_ migration.Result, e error) { err = e })
	f.K.Run()
	if err == nil {
		t.Fatal("unknown VM must fail")
	}
	f.MigrateVM(name, "ghost-cloud", DefaultMigrate(), func(_ migration.Result, e error) { err = e })
	f.K.Run()
	if err == nil {
		t.Fatal("unknown cloud must fail")
	}
	f.MigrateVM(name, "g5k", DefaultMigrate(), func(_ migration.Result, e error) { err = e })
	f.K.Run()
	if err == nil {
		t.Fatal("same-cloud migration must fail")
	}
}

func TestMigrateSetSharesRegistry(t *testing.T) {
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"g5k": 4})
	names := vc.VMsAt("g5k")
	var results []migration.Result
	f.MigrateSet(names, "futuregrid", DefaultMigrate(), 2,
		func(rs []migration.Result, err error) { results = rs })
	f.K.Run()
	if len(results) != 4 {
		t.Fatalf("results %d", len(results))
	}
	var raw, wire int64
	for _, r := range results {
		raw += r.RawBytes
		wire += r.WireBytes
	}
	saving := 1 - float64(wire)/float64(raw)
	if saving < 0.3 {
		t.Fatalf("cluster migration saving %.1f%% below 30%%", saving*100)
	}
}

func TestConnectionSurvivesFederationMigration(t *testing.T) {
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"g5k": 1, "futuregrid": 1})
	a := f.VM(vc.VMsAt("g5k")[0])
	b := f.VM(vc.VMsAt("futuregrid")[0])
	conn := vine.NewConnection(f.Overlay, a.VirtualIP, b.VirtualIP, 30*sim.Second, 500*sim.Millisecond)
	f.K.Schedule(5*sim.Second, func() {
		f.MigrateVM(a.Name, "futuregrid", DefaultMigrate(), nil)
	})
	f.K.RunUntil(2 * sim.Minute)
	conn.Close()
	if conn.Broken {
		t.Fatalf("connection did not survive federation migration: %v", conn)
	}
}

func TestMigratableSpotMigratesInsteadOfKilling(t *testing.T) {
	f := fed(t)
	g5k := f.Cloud("g5k")
	var vc *VirtualCluster
	f.CreateCluster("spot", ClusterSpec{
		Image: "debian", Cores: 2, MemPages: 4096, CoW: true,
		Spot: true, Bid: 0.05,
		Distribution: map[string]int{"g5k": 2},
	}, func(c *VirtualCluster, e error) {
		if e != nil {
			t.Fatal(e)
		}
		vc = c
	})
	f.EnableMigratableSpot("g5k")
	f.K.RunUntil(2 * sim.Minute)
	// Price spike above the bid revokes both VMs -> migration, not death.
	g5k.Spot.ForcePrice(0.50)
	f.K.RunUntil(10 * sim.Minute)
	if f.SpotMigrations != 2 {
		t.Fatalf("spot migrations %d, want 2 (kills=%d)", f.SpotMigrations, f.SpotKills)
	}
	for _, v := range vc.VMs() {
		if v.State == vm.StateTerminated {
			t.Fatalf("spot VM %s was killed", v.Name)
		}
		if f.CloudOf(v.Name).Name != "futuregrid" {
			t.Fatalf("spot VM %s not relocated (at %s)", v.Name, f.CloudOf(v.Name).Name)
		}
	}
}

func TestMigratableSpotFallsBackToKill(t *testing.T) {
	f := NewFederation(1)
	g5k := f.AddCloud(cloudCfg("g5k", 2, 0.08))
	m := vm.NewContentModel(11, "debian", 0.1, 0.5, 2048)
	g5k.PutImage(vm.NewDiskImage("debian", 256, 65536, m))
	// Single cloud: nowhere to migrate.
	f.CreateCluster("spot", ClusterSpec{
		Image: "debian", Cores: 1, MemPages: 1024, CoW: true,
		Spot: true, Bid: 0.01, Distribution: map[string]int{"g5k": 1},
	}, func(_ *VirtualCluster, e error) {
		if e != nil {
			t.Fatal(e)
		}
	})
	f.EnableMigratableSpot("g5k")
	f.K.RunUntil(time30)
	g5k.Spot.ForcePrice(0.50)
	f.K.RunUntil(2 * time30)
	if f.SpotKills != 1 || f.SpotMigrations != 0 {
		t.Fatalf("kills=%d migrations=%d", f.SpotKills, f.SpotMigrations)
	}
}

const time30 = 30 * sim.Second

func TestAutonomicCostAdaptation(t *testing.T) {
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"futuregrid": 3}) // expensive cloud
	f.EnableAutonomic(time30, autonomic.CostPolicy{Threshold: 0.2})
	f.K.RunUntil(20 * sim.Minute)
	f.Engine().Stop()
	f.K.Run()
	// g5k is 33% cheaper: all 3 VMs should have moved there.
	for _, v := range vc.VMs() {
		if f.CloudOf(v.Name).Name != "g5k" {
			t.Fatalf("VM %s not relocated to the cheap cloud", v.Name)
		}
	}
	if f.Engine().Executed < 3 {
		t.Fatalf("engine executed %d", f.Engine().Executed)
	}
}

func TestSnapshotReflectsFederation(t *testing.T) {
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"g5k": 2, "futuregrid": 1})
	s := f.Snapshot()
	if len(s.Sites) != 2 {
		t.Fatalf("sites %v", s.Sites)
	}
	if len(s.VMSite) != 3 {
		t.Fatalf("vm sites %v", s.VMSite)
	}
	for _, name := range vc.VMsAt("g5k") {
		if s.VMSite[name] != "g5k" {
			t.Fatalf("snapshot placement wrong for %s", name)
		}
	}
	if s.Price["g5k"] != 0.08 || s.Price["futuregrid"] != 0.12 {
		t.Fatalf("prices %v", s.Price)
	}
}

func TestMigrateWorkersKeepsJobRunning(t *testing.T) {
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"g5k": 4})
	var res mapreduce.Result
	if err := vc.RunJob(mapreduce.BlastJob(48), func(r mapreduce.Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	f.K.Schedule(30*sim.Second, func() {
		names := vc.VMsAt("g5k")[:2]
		vc.MigrateWorkers(names, "futuregrid", 2, nil)
	})
	f.K.Run()
	if res.Makespan == 0 {
		t.Fatal("job did not survive worker migration")
	}
	if res.MapsExecuted != 48 {
		t.Fatalf("maps executed %d: live migration should not lose work", res.MapsExecuted)
	}
	if len(vc.VMsAt("futuregrid")) != 2 {
		t.Fatalf("workers not relocated: %v", vc.VMsAt("futuregrid"))
	}
}

func TestTerminateCluster(t *testing.T) {
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"g5k": 3})
	vc.Terminate()
	if vc.Size() != 0 {
		t.Fatalf("size after terminate %d", vc.Size())
	}
	if f.Cloud("g5k").FreeCores() != 64 {
		t.Fatalf("resources leaked: %d", f.Cloud("g5k").FreeCores())
	}
}

func TestMigrationRejectedAfterRevocation(t *testing.T) {
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"g5k": 1})
	name := vc.VMsAt("g5k")[0]
	f.RevokeCloud("futuregrid")
	var err error
	f.MigrateVM(name, "futuregrid", DefaultMigrate(), func(_ migration.Result, e error) { err = e })
	f.K.Run()
	if err == nil {
		t.Fatal("migration to a revoked cloud must be rejected")
	}
	// The VM must still be intact at the source after rollback.
	if f.CloudOf(name).Name != "g5k" {
		t.Fatalf("VM displaced to %s by failed migration", f.CloudOf(name).Name)
	}
	if f.Cloud("g5k").HostOf(name) == nil {
		t.Fatal("rollback lost the source reservation")
	}
	if f.Broker.Rejections == 0 {
		t.Fatal("broker did not record the rejection")
	}
}

func TestSecureSessionResumedAcrossMigrations(t *testing.T) {
	f := fed(t)
	vc := makeCluster(t, f, map[string]int{"g5k": 2})
	names := vc.VMsAt("g5k")
	f.MigrateVM(names[0], "futuregrid", DefaultMigrate(), func(_ migration.Result, e error) {
		if e != nil {
			t.Fatal(e)
		}
		f.MigrateVM(names[1], "futuregrid", DefaultMigrate(), nil)
	})
	f.K.Run()
	if f.Broker.Handshakes != 1 || f.Broker.Resumptions != 1 {
		t.Fatalf("handshakes=%d resumptions=%d, want 1/1",
			f.Broker.Handshakes, f.Broker.Resumptions)
	}
}
