package core

import (
	"testing"

	"repro/internal/autonomic"
	"repro/internal/mapreduce"
	"repro/internal/nimbus"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Tests for revocable placement on the real federation stack: preemption
// tears down live virtual clusters through the ledger's eviction
// transition, consolidation live-migrates a spanning gang's workers onto
// one cloud, and autonomic Actions on scheduler-owned VMs rewrite the
// job's plan.

// bigCloudFederation builds n clouds of 4 x 8-core hosts (32 cores each)
// with a seeded image and the scheduler enabled.
func bigCloudFederation(t *testing.T, seed int64, n int, cfg sched.Config) (*Federation, *sched.Scheduler) {
	t.Helper()
	f := NewFederation(seed)
	for i := 0; i < n; i++ {
		name := []string{"cloud0", "cloud1", "cloud2"}[i]
		c := f.AddCloud(nimbus.Config{
			Name: name, Hosts: 4,
			HostSpec: nimbus.HostSpec{Cores: 8, MemPages: 64 * 8192, Speed: 1.0},
			NICBW:    125 << 20, WANUp: 60 << 20, WANDown: 60 << 20,
			PricePerCoreHour: 0.08,
		})
		m := vm.NewContentModel(seed+int64(i)*13, "debian", 0.1, 0.5, 1024)
		c.PutImage(vm.NewDiskImage("debian", 256, 65536, m))
	}
	s := f.EnableScheduler(SchedulerOptions{Sched: cfg})
	return f, s
}

// TestFederationPreemption: a backfilled job with an optimistic estimate
// keeps the blocked head's reservation slipping; the eviction pass tears
// its cluster down (committed cores → shield reservation, VMs through the
// ledgered release), the head's gang starts, and the victim requeues and
// still completes. The ledger and hosts balance at the end.
func TestFederationPreemption(t *testing.T) {
	f := NewFederation(31)
	c := f.AddCloud(nimbus.Config{
		Name: "c0", Hosts: 4,
		HostSpec: nimbus.HostSpec{Cores: 4, MemPages: 64 * 8192, Speed: 1.0},
		NICBW:    125 << 20, WANUp: 60 << 20, WANDown: 60 << 20,
		PricePerCoreHour: 0.08,
	})
	c.PutImage(vm.NewDiskImage("debian", 256, 65536, vm.NewContentModel(31, "debian", 0.1, 0.5, 1024)))
	s := f.EnableScheduler(SchedulerOptions{Sched: sched.Config{EnablePreemption: true}})
	s.AddTenant("t", 1)
	submit := func(name string, workers int, est float64, mr mapreduce.Job) string {
		id, err := s.Submit(sched.JobSpec{Tenant: "t", Name: name, Workers: workers,
			CoresPerWorker: 2, EstimateSeconds: est, MR: mr})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	// hold: 8 of 16 cores, roughly honest estimate (~60 s of map work).
	submit("hold", 4, 60, mapreduce.Job{Name: "hold", NumMaps: 8, NumReduces: 1, MapCPU: 50, ReduceCPU: 1})
	// head: the whole cloud; blocked behind hold + liar.
	head := submit("head", 8, 30, mapreduce.Job{Name: "head", NumMaps: 8, NumReduces: 1, MapCPU: 25, ReduceCPU: 1})
	// liar: estimates 50 s (so it backfills under the ~60 s reservation)
	// but carries ~200 s of map work.
	liar := submit("liar", 4, 50, mapreduce.Job{Name: "liar", NumMaps: 16, NumReduces: 1, MapCPU: 100, ReduceCPU: 1})
	f.K.Run()
	hi, _ := s.Poll(head)
	li, _ := s.Poll(liar)
	if hi.State != sched.Done || li.State != sched.Done {
		t.Fatalf("states: head=%v (err %v) liar=%v (err %v)", hi.State, hi.Err, li.State, li.Err)
	}
	if s.Preemptions() != 1 || li.Preemptions != 1 {
		t.Fatalf("Preemptions: scheduler=%d liar=%d, want 1/1", s.Preemptions(), li.Preemptions)
	}
	// Without preemption the head cannot start before the liar's true
	// completion (~230 s); with it, eviction fires a few slips after t≈75.
	if hi.Started >= 150*sim.Second {
		t.Errorf("head started at %v — preemption never freed the liar's cores", hi.Started)
	}
	if li.Started <= hi.Started {
		t.Errorf("evicted liar restarted at %v, not after the head's %v", li.Started, hi.Started)
	}
	if n := len(f.VMNames()); n != 0 {
		t.Errorf("%d VMs leaked", n)
	}
	if free := c.FreeCores(); free != 16 {
		t.Errorf("c0 free=%d after drain, want 16 (eviction unbalanced the ledger)", free)
	}
	if got := f.CapacityLedger().Evictions; got == 0 {
		t.Error("no ledger eviction transition recorded")
	}
}

// TestFederationConsolidation: a gang spanning two clouds (because both
// were partially busy) live-migrates onto one member when the co-tenant
// finishes — the workers move over the WAN, the MapReduce bindings and the
// scheduler plan follow, and the shuffle then pays zero cross-site bytes.
func TestFederationConsolidation(t *testing.T) {
	run := func(consolidate bool) (sched.JobInfo, *Federation, *sched.Scheduler) {
		f, s := bigCloudFederation(t, 37, 2, sched.Config{EnableConsolidation: consolidate})
		s.AddTenant("t", 1)
		mrFill := mapreduce.Job{Name: "fill", NumMaps: 16, NumReduces: 1, MapCPU: 40, ReduceCPU: 1}
		for _, n := range []string{"f0", "f1"} {
			if _, err := s.Submit(sched.JobSpec{Tenant: "t", Name: n, Workers: 8,
				CoresPerWorker: 2, EstimateSeconds: 45, MR: mrFill}); err != nil {
				t.Fatal(err)
			}
		}
		// 24 single-core workers: neither cloud's 16 free cores fit → spans.
		gang, err := s.Submit(sched.JobSpec{Tenant: "t", Name: "gang", Workers: 24,
			CoresPerWorker: 1, EstimateSeconds: 260,
			MR: mapreduce.Job{Name: "gang", NumMaps: 48, NumReduces: 4, MapCPU: 120,
				ReduceCPU: 2, ShuffleBytesPerMapPerReduce: 1 << 20}})
		if err != nil {
			t.Fatal(err)
		}
		f.K.Run()
		ji, _ := s.Poll(gang)
		return ji, f, s
	}

	ji, f, s := run(true)
	if ji.State != sched.Done {
		t.Fatalf("gang state %v err %v", ji.State, ji.Err)
	}
	if s.Consolidations() != 1 {
		t.Fatalf("Consolidations = %d, want 1", s.Consolidations())
	}
	if ji.Plan.Spanning() || ji.Plan.Workers() != 24 {
		t.Fatalf("gang plan after consolidation = %v, want 24 workers on one cloud", ji.Plan)
	}
	if ji.Result.CrossSiteShuffleBytes != 0 {
		t.Errorf("consolidated gang still paid %d cross-site shuffle bytes", ji.Result.CrossSiteShuffleBytes)
	}
	if f.Migrations == 0 {
		t.Error("no live migrations recorded for the consolidation")
	}
	if n := len(f.VMNames()); n != 0 {
		t.Errorf("%d VMs leaked", n)
	}
	for _, c := range f.Clouds() {
		if c.FreeCores() != c.TotalCores() {
			t.Errorf("%s free=%d total=%d after drain", c.Name, c.FreeCores(), c.TotalCores())
		}
	}
	if f.CapacityLedger().Retargets == 0 {
		t.Error("no ledger retarget transitions recorded")
	}

	// Contrast: without consolidation the same gang pays real WAN shuffle.
	jiOff, _, _ := run(false)
	if jiOff.Result.CrossSiteShuffleBytes == 0 {
		t.Error("un-consolidated spanning gang paid no cross-site shuffle; scenario broken")
	}
}

// TestAutonomicActionRelocatesSchedulerWorker: an autonomic relocation
// Action whose VM belongs to a running scheduler job routes through the
// plan-aware path — the worker migrates, and the scheduler's plan shows
// the new member.
func TestAutonomicActionRelocatesSchedulerWorker(t *testing.T) {
	f, s := bigCloudFederation(t, 41, 2, sched.Config{})
	s.AddTenant("t", 1)
	id, err := s.Submit(sched.JobSpec{Tenant: "t", Name: "steady", Workers: 2,
		CoresPerWorker: 2, EstimateSeconds: 200,
		MR: mapreduce.Job{Name: "steady", NumMaps: 8, NumReduces: 1, MapCPU: 100, ReduceCPU: 1}})
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	f.K.At(40*sim.Second, func() {
		for _, name := range f.VMNames() {
			if c := f.CloudOf(name); c != nil && c.Name == "cloud0" {
				if !f.executeAction(autonomic.Action{VM: name, From: "cloud0", To: "cloud1", Reason: "test"}) {
					t.Error("executeAction rejected a movable scheduler worker")
				}
				moved = true
				return
			}
		}
		t.Error("no scheduler VM found on cloud0")
	})
	f.K.Run()
	if !moved {
		return
	}
	ji, _ := s.Poll(id)
	if ji.State != sched.Done {
		t.Fatalf("job state %v err %v", ji.State, ji.Err)
	}
	if ji.Plan.WorkersOn("cloud1") != 1 || ji.Plan.WorkersOn("cloud0") != 1 {
		t.Errorf("plan %v after autonomic relocation, want 1 worker on each cloud", ji.Plan)
	}
	if f.Migrations != 1 {
		t.Errorf("Migrations = %d, want 1", f.Migrations)
	}
}
