package core

import (
	"repro/internal/emr"
	"repro/internal/mapreduce"
	"repro/internal/sim"
)

// EMRAdapter exposes a VirtualCluster as an emr.Provider, letting the
// Elastic MapReduce service provision workers through the federation.
type EMRAdapter struct {
	VC *VirtualCluster
}

var _ emr.Provider = EMRAdapter{}

// Clouds implements emr.Provider.
func (a EMRAdapter) Clouds() []emr.CloudInfo {
	out := make([]emr.CloudInfo, 0, len(a.VC.f.clouds))
	for _, c := range a.VC.f.Clouds() {
		out = append(out, emr.CloudInfo{
			Name:      c.Name,
			Price:     a.VC.f.PriceOf(c.Name),
			Speed:     c.HostSpeed(),
			FreeCores: c.FreeCores(),
		})
	}
	return out
}

// Grow implements emr.Provider.
func (a EMRAdapter) Grow(cloud string, n int, onDone func(error)) {
	a.VC.Grow(cloud, n, onDone)
}

// Shrink implements emr.Provider.
func (a EMRAdapter) Shrink(cloud string, n int) int { return a.VC.Shrink(cloud, n) }

// Cluster implements emr.Provider.
func (a EMRAdapter) Cluster() *mapreduce.Cluster { return a.VC.mr }

// Kernel implements emr.Provider.
func (a EMRAdapter) Kernel() *sim.Kernel { return a.VC.f.K }

// WorkerCapacity implements emr.Provider: aggregate slot-speed over the
// cluster's live VMs.
func (a EMRAdapter) WorkerCapacity() float64 {
	speed := make(map[string]float64)
	for _, c := range a.VC.f.Clouds() {
		speed[c.Name] = c.HostSpeed()
	}
	var total float64
	for _, v := range a.VC.VMs() {
		s := 1.0
		if c := a.VC.f.CloudOf(v.Name); c != nil {
			s = speed[c.Name]
		}
		total += float64(a.VC.spec.Slots) * s
	}
	return total
}
