// Package vm models virtual machines at the granularity live migration
// cares about: memory pages with content identities, dirty-page tracking,
// disk images with copy-on-write layers, and synthetic workloads that dirty
// pages at configurable rates.
//
// Page contents are modelled as 64-bit content IDs rather than real bytes.
// Two pages are duplicates iff their IDs are equal; hashing a page is the
// identity function on its ID. This mirrors the paper's assumption that a
// cryptographic hash is collision-free, and makes the duplication ratio an
// explicit, sweepable parameter (see ContentModel).
package vm

import (
	"fmt"
	"math/rand"
)

// PageSize is the simulated memory page size in bytes (x86 4 KiB).
const PageSize = 4096

// HashSize is the on-wire size of one content hash plus framing, in bytes.
// Shrinker uses SHA-1 (20 bytes); we add 12 bytes of protocol overhead
// (page index + flags), matching the research-report prototype.
const HashSize = 32

// ContentID identifies the content of a page or disk block. Equal IDs mean
// byte-identical content.
type ContentID uint64

// ZeroPage is the content ID of an all-zero page. Freshly booted VMs have
// most of their memory zeroed.
const ZeroPage ContentID = 0

// ContentModel generates page contents with controlled redundancy.
// Pages are drawn from three populations:
//
//   - zero pages (fraction ZeroFrac),
//   - a shared pool of PoolSize distinct contents common to every VM built
//     from the same base image (fraction SharedFrac) — kernel text, shared
//     libraries, buffer-cache copies of the same files,
//   - unique contents never repeated (the remainder).
//
// The literature the paper leans on (Gupta et al. OSDI'08, Milós et al.
// USENIX'09) reports 20–60 % inter-VM redundancy for same-OS VMs; SharedFrac
// expresses exactly that knob.
type ContentModel struct {
	ZeroFrac   float64
	SharedFrac float64
	PoolSize   int
	imageBase  uint64 // distinguishes pools of different base images
	salt       uint64 // per-instance salt: unique pages never collide across VMs
	nextUnique uint64
	rng        *rand.Rand
}

// NewContentModel returns a generator for VMs instantiated from the named
// base image. VMs sharing an image name share the pool; different images
// have disjoint pools.
func NewContentModel(seed int64, image string, zeroFrac, sharedFrac float64, poolSize int) *ContentModel {
	if zeroFrac < 0 || sharedFrac < 0 || zeroFrac+sharedFrac > 1 {
		panic("vm: invalid content model fractions")
	}
	if poolSize <= 0 {
		poolSize = 1
	}
	var base uint64 = 14695981039346656037 // FNV offset basis
	for _, c := range image {
		base ^= uint64(c)
		base *= 1099511628211
	}
	rng := rand.New(rand.NewSource(seed))
	return &ContentModel{
		ZeroFrac:   zeroFrac,
		SharedFrac: sharedFrac,
		PoolSize:   poolSize,
		imageBase:  (base | 1) &^ (1 << 63), // nonzero, and bit 63 reserved to tag unique pages
		salt:       uint64(rng.Int63()),
		nextUnique: 1,
		rng:        rng,
	}
}

// Next draws one page content.
func (m *ContentModel) Next() ContentID {
	r := m.rng.Float64()
	switch {
	case r < m.ZeroFrac:
		return ZeroPage
	case r < m.ZeroFrac+m.SharedFrac:
		// Shared pool entry: deterministic function of image and index.
		idx := uint64(m.rng.Intn(m.PoolSize))
		return ContentID(m.imageBase ^ (idx+1)<<20)
	default:
		return m.FreshUnique()
	}
}

// FreshUnique returns content guaranteed not to repeat, used for pages
// rewritten with new data. The per-instance salt keeps different VMs'
// unique pages distinct (only zero and shared-pool pages are duplicates
// across VMs, as in the measurements the paper cites).
func (m *ContentModel) FreshUnique() ContentID {
	m.nextUnique++
	return ContentID((m.salt^m.nextUnique<<1)&^(1<<63) ^ m.imageBase | 1<<63)
}

// PoolEntry returns the i-th shared-pool content, used by workloads that
// rewrite pages back to common values (e.g. buffer cache churn).
func (m *ContentModel) PoolEntry(i int) ContentID {
	i %= m.PoolSize
	return ContentID(m.imageBase ^ (uint64(i)+1)<<20)
}

// Memory is a VM's RAM: a flat array of page contents plus a dirty bitmap
// relative to the last Snapshot call (the migration round boundary).
type Memory struct {
	pages  []ContentID
	dirty  []bool
	nDirty int
}

// NewMemory allocates n pages, filling them from the content model.
func NewMemory(n int, m *ContentModel) *Memory {
	mem := &Memory{pages: make([]ContentID, n), dirty: make([]bool, n)}
	for i := range mem.pages {
		mem.pages[i] = m.Next()
	}
	return mem
}

// NumPages returns the page count.
func (mem *Memory) NumPages() int { return len(mem.pages) }

// Bytes returns the memory size in bytes.
func (mem *Memory) Bytes() int64 { return int64(len(mem.pages)) * PageSize }

// Page returns the content of page i.
func (mem *Memory) Page(i int) ContentID { return mem.pages[i] }

// Write sets page i to content c and marks it dirty.
func (mem *Memory) Write(i int, c ContentID) {
	mem.pages[i] = c
	if !mem.dirty[i] {
		mem.dirty[i] = true
		mem.nDirty++
	}
}

// DirtyCount returns the number of pages dirtied since the last ClearDirty.
func (mem *Memory) DirtyCount() int { return mem.nDirty }

// DirtyPages returns the indices of dirty pages in ascending order.
func (mem *Memory) DirtyPages() []int {
	out := make([]int, 0, mem.nDirty)
	for i, d := range mem.dirty {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// ClearDirty resets the dirty bitmap (start of a migration round).
func (mem *Memory) ClearDirty() {
	for i := range mem.dirty {
		mem.dirty[i] = false
	}
	mem.nDirty = 0
}

// Clone returns a deep copy (used when a VM restarts from a checkpoint).
func (mem *Memory) Clone() *Memory {
	c := &Memory{
		pages: append([]ContentID(nil), mem.pages...),
		dirty: make([]bool, len(mem.pages)),
	}
	return c
}

// DiskImage is a block device image. Blocks carry content IDs like memory
// pages. A CoW image holds only blocks that differ from its base.
type DiskImage struct {
	Name      string
	BlockSize int64
	blocks    []ContentID
	base      *DiskImage
	overlay   map[int]ContentID // CoW overlay when base != nil
}

// NewDiskImage builds a flat (non-CoW) image of n blocks.
func NewDiskImage(name string, n int, blockSize int64, m *ContentModel) *DiskImage {
	d := &DiskImage{Name: name, BlockSize: blockSize, blocks: make([]ContentID, n)}
	for i := range d.blocks {
		d.blocks[i] = m.Next()
	}
	return d
}

// NewCoWImage builds a copy-on-write image backed by base. It starts empty:
// reads fall through to the base, writes populate the overlay.
func NewCoWImage(name string, base *DiskImage) *DiskImage {
	if base == nil {
		panic("vm: CoW image requires a base")
	}
	return &DiskImage{
		Name:      name,
		BlockSize: base.BlockSize,
		base:      base,
		overlay:   make(map[int]ContentID),
	}
}

// IsCoW reports whether the image is a copy-on-write overlay.
func (d *DiskImage) IsCoW() bool { return d.base != nil }

// Base returns the backing image (nil for flat images).
func (d *DiskImage) Base() *DiskImage { return d.base }

// NumBlocks returns the logical block count.
func (d *DiskImage) NumBlocks() int {
	if d.base != nil {
		return d.base.NumBlocks()
	}
	return len(d.blocks)
}

// Bytes returns the logical size in bytes.
func (d *DiskImage) Bytes() int64 { return int64(d.NumBlocks()) * d.BlockSize }

// OverlayBlocks returns how many blocks the CoW overlay holds (0 for flat).
func (d *DiskImage) OverlayBlocks() int { return len(d.overlay) }

// OverlayBytes returns the physical size of the CoW overlay.
func (d *DiskImage) OverlayBytes() int64 { return int64(len(d.overlay)) * d.BlockSize }

// Read returns the content of block i.
func (d *DiskImage) Read(i int) ContentID {
	if d.base != nil {
		if c, ok := d.overlay[i]; ok {
			return c
		}
		return d.base.Read(i)
	}
	return d.blocks[i]
}

// WriteBlock sets block i to content c (populating the overlay on CoW images).
func (d *DiskImage) WriteBlock(i int, c ContentID) {
	if d.base != nil {
		d.overlay[i] = c
		return
	}
	d.blocks[i] = c
}

// State is a VM lifecycle state.
type State int

// VM lifecycle states.
const (
	StatePending State = iota
	StatePropagating
	StateBooting
	StateContextualizing
	StateRunning
	StatePaused
	StateMigrating
	StateTerminated
)

var stateNames = [...]string{
	"pending", "propagating", "booting", "contextualizing",
	"running", "paused", "migrating", "terminated",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// VM is a virtual machine instance.
type VM struct {
	Name  string
	Image string
	Cores int
	Mem   *Memory
	Disk  *DiskImage
	State State
	Spot  bool    // true for spot (revocable) instances
	Bid   float64 // spot bid, $/core-hour
	// VirtualIP is assigned by the vine overlay; stable across migrations.
	VirtualIP string
	// HostID and SiteName track current placement; maintained by the cloud.
	HostID   string
	SiteName string

	workload *Workload
}

// New creates a VM with memPages of RAM drawn from the content model and an
// optional disk.
func New(name, image string, cores, memPages int, m *ContentModel, disk *DiskImage) *VM {
	return &VM{
		Name:  name,
		Image: image,
		Cores: cores,
		Mem:   NewMemory(memPages, m),
		Disk:  disk,
		State: StatePending,
	}
}

// MemBytes returns RAM size in bytes.
func (v *VM) MemBytes() int64 { return v.Mem.Bytes() }
