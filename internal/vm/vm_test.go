package vm

import (
	"testing"
	"testing/quick"
)

func TestContentModelFractions(t *testing.T) {
	m := NewContentModel(1, "debian", 0.3, 0.4, 1000)
	const n = 100000
	zero, shared, unique := 0, 0, 0
	seen := make(map[ContentID]int)
	for i := 0; i < n; i++ {
		c := m.Next()
		seen[c]++
		switch {
		case c == ZeroPage:
			zero++
		case c&(1<<63) != 0:
			unique++
		default:
			shared++
		}
	}
	frac := func(x int) float64 { return float64(x) / n }
	if f := frac(zero); f < 0.28 || f > 0.32 {
		t.Fatalf("zero fraction %.3f, want ~0.30", f)
	}
	if f := frac(shared); f < 0.38 || f > 0.42 {
		t.Fatalf("shared fraction %.3f, want ~0.40", f)
	}
	if f := frac(unique); f < 0.28 || f > 0.32 {
		t.Fatalf("unique fraction %.3f, want ~0.30", f)
	}
}

func TestContentModelUniquePagesNeverRepeat(t *testing.T) {
	m := NewContentModel(1, "img", 0, 0, 1)
	seen := make(map[ContentID]bool)
	for i := 0; i < 10000; i++ {
		c := m.Next()
		if seen[c] {
			t.Fatalf("unique content repeated: %d", c)
		}
		seen[c] = true
	}
}

func TestContentModelSharedAcrossVMs(t *testing.T) {
	// Two models with the same image share the pool; different images don't.
	a := NewContentModel(1, "debian", 0, 1, 64)
	b := NewContentModel(2, "debian", 0, 1, 64)
	c := NewContentModel(3, "centos", 0, 1, 64)
	poolA := make(map[ContentID]bool)
	for i := 0; i < 1000; i++ {
		poolA[a.Next()] = true
	}
	hitsB, hitsC := 0, 0
	for i := 0; i < 1000; i++ {
		if poolA[b.Next()] {
			hitsB++
		}
		if poolA[c.Next()] {
			hitsC++
		}
	}
	if hitsB < 900 {
		t.Fatalf("same-image VMs share only %d/1000 pages", hitsB)
	}
	if hitsC != 0 {
		t.Fatalf("different-image VMs share %d pages, want 0", hitsC)
	}
}

func TestMemoryDirtyTracking(t *testing.T) {
	m := NewContentModel(1, "img", 0, 0.5, 100)
	mem := NewMemory(100, m)
	if mem.DirtyCount() != 0 {
		t.Fatal("fresh memory should be clean")
	}
	mem.Write(5, m.FreshUnique())
	mem.Write(5, m.FreshUnique()) // same page twice
	mem.Write(7, m.FreshUnique())
	if mem.DirtyCount() != 2 {
		t.Fatalf("dirty count %d, want 2", mem.DirtyCount())
	}
	pages := mem.DirtyPages()
	if len(pages) != 2 || pages[0] != 5 || pages[1] != 7 {
		t.Fatalf("dirty pages %v", pages)
	}
	mem.ClearDirty()
	if mem.DirtyCount() != 0 || len(mem.DirtyPages()) != 0 {
		t.Fatal("ClearDirty did not reset")
	}
}

func TestMemoryClone(t *testing.T) {
	m := NewContentModel(1, "img", 0, 0, 1)
	mem := NewMemory(10, m)
	c := mem.Clone()
	orig := mem.Page(0)
	mem.Write(0, m.FreshUnique())
	if c.Page(0) != orig {
		t.Fatal("clone aliases original")
	}
	if c.DirtyCount() != 0 {
		t.Fatal("clone should start clean")
	}
}

func TestDiskCoWSemantics(t *testing.T) {
	m := NewContentModel(1, "img", 0, 0, 1)
	base := NewDiskImage("base", 100, 65536, m)
	cow := NewCoWImage("vm0-disk", base)
	if !cow.IsCoW() || cow.NumBlocks() != 100 || cow.OverlayBlocks() != 0 {
		t.Fatal("fresh CoW image wrong shape")
	}
	// Reads fall through.
	if cow.Read(3) != base.Read(3) {
		t.Fatal("CoW read did not fall through to base")
	}
	// Writes populate the overlay without touching the base.
	before := base.Read(3)
	newC := m.FreshUnique()
	cow.WriteBlock(3, newC)
	if cow.Read(3) != newC {
		t.Fatal("CoW write not visible")
	}
	if base.Read(3) != before {
		t.Fatal("CoW write leaked into base")
	}
	if cow.OverlayBlocks() != 1 || cow.OverlayBytes() != 65536 {
		t.Fatalf("overlay accounting: %d blocks", cow.OverlayBlocks())
	}
}

func TestVMConstruction(t *testing.T) {
	m := NewContentModel(1, "debian", 0.2, 0.4, 100)
	disk := NewDiskImage("debian", 10, 65536, m)
	v := New("vm0", "debian", 2, 1024, m, disk)
	if v.MemBytes() != 1024*PageSize {
		t.Fatalf("mem bytes %d", v.MemBytes())
	}
	if v.State != StatePending {
		t.Fatalf("initial state %v", v.State)
	}
	if v.State.String() != "pending" {
		t.Fatalf("state string %q", v.State.String())
	}
}

func TestWorkloadDirtyRate(t *testing.T) {
	m := NewContentModel(1, "img", 0, 0.3, 100)
	mem := NewMemory(50000, m)
	w := NewWorkload("test", 1000, 1.0, 0, 0, m, 42) // uniform, 1000 writes/s
	writes := w.ApplyDirtying(mem, 2.0)
	if writes != 2000 {
		t.Fatalf("writes %d, want 2000", writes)
	}
	// With 2000 uniform writes over 50000 pages, nearly all distinct.
	if d := mem.DirtyCount(); d < 1900 || d > 2000 {
		t.Fatalf("distinct dirty pages %d", d)
	}
}

func TestWorkloadLocalityBoundsDirtySet(t *testing.T) {
	m := NewContentModel(1, "img", 0, 0.3, 100)
	mem := NewMemory(10000, m)
	// All writes in a 100-page hot set.
	w := NewWorkload("hot", 100000, 0.01, 1.0, 0, m, 42)
	w.ApplyDirtying(mem, 1.0)
	if d := mem.DirtyCount(); d > 100 {
		t.Fatalf("dirty set %d escaped 100-page hot set", d)
	}
}

func TestWorkloadFractionalCarry(t *testing.T) {
	m := NewContentModel(1, "img", 0, 0, 1)
	mem := NewMemory(1000, m)
	w := NewWorkload("slow", 1, 1, 0, 0, m, 1) // 1 write/s
	total := 0
	for i := 0; i < 10; i++ {
		total += w.ApplyDirtying(mem, 0.25) // quarter-second spans
	}
	// 10 * 0.25s at 1/s = 2.5 writes; carry must avoid losing them all.
	if total != 2 {
		t.Fatalf("carried writes %d, want 2", total)
	}
}

func TestWorkloadPresets(t *testing.T) {
	m := NewContentModel(1, "img", 0.1, 0.4, 1000)
	for _, w := range []*Workload{IdleWorkload(m, 1), WebServerWorkload(m, 2), KernelBuildWorkload(m, 3)} {
		if w.RatePagesPerSec <= 0 || w.HotFrac <= 0 || w.HotFrac > 1 {
			t.Fatalf("preset %s has invalid parameters", w.Name)
		}
	}
	if IdleWorkload(m, 1).RatePagesPerSec >= KernelBuildWorkload(m, 1).RatePagesPerSec {
		t.Fatal("idle should dirty slower than kernel build")
	}
}

// Property: ApplyDirtying never dirties more distinct pages than write ops
// or memory size.
func TestPropDirtyBounded(t *testing.T) {
	f := func(rate uint16, span uint8) bool {
		m := NewContentModel(1, "img", 0, 0.5, 50)
		mem := NewMemory(500, m)
		w := NewWorkload("p", float64(rate), 0.5, 0.8, 0.5, m, 7)
		sec := float64(span) / 10
		writes := w.ApplyDirtying(mem, sec)
		d := mem.DirtyCount()
		return d <= writes+1 && d <= mem.NumPages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: CoW overlay size never exceeds number of distinct blocks written.
func TestPropCoWOverlayBounded(t *testing.T) {
	f := func(writes []uint8) bool {
		m := NewContentModel(1, "img", 0, 0, 1)
		base := NewDiskImage("b", 256, 4096, m)
		cow := NewCoWImage("c", base)
		distinct := make(map[int]bool)
		for _, wblk := range writes {
			cow.WriteBlock(int(wblk), m.FreshUnique())
			distinct[int(wblk)] = true
		}
		return cow.OverlayBlocks() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
