package vm

import "math/rand"

// Workload dirties a VM's memory at a configurable rate with temporal
// locality, emulating the guest applications whose behaviour determines
// live-migration convergence. The migration engine advances workloads in
// discrete spans: ApplyDirtying(mem, seconds) performs the writes the guest
// would have issued during that span.
type Workload struct {
	// Name identifies the preset for reports.
	Name string
	// RatePagesPerSec is the page-write rate (writes, not distinct pages).
	RatePagesPerSec float64
	// HotFrac is the fraction of memory receiving HotBias of the writes.
	HotFrac float64
	// HotBias is the probability a write lands in the hot set.
	HotBias float64
	// RewriteShared is the probability a dirtied page is rewritten with a
	// shared-pool value (e.g. buffer cache re-reading common files) rather
	// than fresh unique data. High values keep pages dedupable after
	// dirtying; low values defeat deduplication.
	RewriteShared float64

	model *ContentModel
	rng   *rand.Rand
	carry float64 // fractional writes carried between spans
}

// NewWorkload builds a workload bound to a content model and RNG seed.
func NewWorkload(name string, rate, hotFrac, hotBias, rewriteShared float64, model *ContentModel, seed int64) *Workload {
	if hotFrac <= 0 {
		hotFrac = 1
	}
	if hotFrac > 1 {
		hotFrac = 1
	}
	return &Workload{
		Name:            name,
		RatePagesPerSec: rate,
		HotFrac:         hotFrac,
		HotBias:         hotBias,
		RewriteShared:   rewriteShared,
		model:           model,
		rng:             rand.New(rand.NewSource(seed)),
	}
}

// Workload presets used by the Shrinker experiments. Rates are in 4 KiB page
// writes per second and follow the qualitative profiles of the workloads the
// Shrinker research report evaluates.
const (
	idleRate        = 50    // background daemons only
	webServerRate   = 2500  // moderate churn, strong locality
	kernelBuildRate = 12000 // compiler churn, weak locality
)

// IdleWorkload models a mostly idle server.
func IdleWorkload(model *ContentModel, seed int64) *Workload {
	return NewWorkload("idle", idleRate, 0.05, 0.9, 0.5, model, seed)
}

// WebServerWorkload models a loaded web/app server: high locality, buffer
// cache keeps many pages dedupable.
func WebServerWorkload(model *ContentModel, seed int64) *Workload {
	return NewWorkload("webserver", webServerRate, 0.15, 0.9, 0.4, model, seed)
}

// KernelBuildWorkload models a compilation job: fast, mostly unique writes.
func KernelBuildWorkload(model *ContentModel, seed int64) *Workload {
	return NewWorkload("kernelbuild", kernelBuildRate, 0.4, 0.7, 0.1, model, seed)
}

// Attach binds the workload to a VM so migration engines can find it.
func (v *VM) Attach(w *Workload) { v.workload = w }

// Workload returns the attached workload (nil if none).
func (v *VM) Workload() *Workload { return v.workload }

// ApplyDirtying performs the writes the guest would issue during a span of
// the given length (in seconds) against mem. It returns the number of write
// operations performed. Distinct-dirty-page counts emerge from sampling:
// repeated writes to a hot page dirty it once per migration round.
func (w *Workload) ApplyDirtying(mem *Memory, seconds float64) int {
	if seconds <= 0 || w.RatePagesPerSec <= 0 {
		return 0
	}
	exact := w.RatePagesPerSec*seconds + w.carry
	writes := int(exact)
	w.carry = exact - float64(writes)
	n := mem.NumPages()
	if n == 0 {
		return 0
	}
	hotN := int(float64(n) * w.HotFrac)
	if hotN < 1 {
		hotN = 1
	}
	// Cap the sampling work: beyond ~4x memory size the distinct-page set
	// saturates, so extra samples change nothing measurable.
	sampled := writes
	if max := 4 * n; sampled > max {
		sampled = max
	}
	for i := 0; i < sampled; i++ {
		var page int
		if w.rng.Float64() < w.HotBias {
			page = w.rng.Intn(hotN)
		} else {
			page = w.rng.Intn(n)
		}
		var c ContentID
		if w.rng.Float64() < w.RewriteShared {
			c = w.model.PoolEntry(w.rng.Intn(w.model.PoolSize))
		} else {
			c = w.model.FreshUnique()
		}
		mem.Write(page, c)
	}
	return writes
}
