package vine

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

const MB = 1 << 20

// federation builds two sites with a VR and one worker node each.
func federation() (*sim.Kernel, *simnet.Network, *Overlay, *simnet.Node, *simnet.Node) {
	k := sim.NewKernel(1)
	net := simnet.New(k)
	a := net.AddSite("alpha", 125*MB, 125*MB)
	b := net.AddSite("beta", 125*MB, 125*MB)
	net.SetSiteLatency("alpha", "beta", 50*sim.Millisecond)
	o := New(net)
	o.AddRouter(a.AddNode("vr-alpha", 1<<30))
	o.AddRouter(b.AddNode("vr-beta", 1<<30))
	na := a.AddNode("host-a", 1<<30)
	nb := b.AddNode("host-b", 1<<30)
	return k, net, o, na, nb
}

func TestRegisterAndSendCrossSite(t *testing.T) {
	k, _, o, na, nb := federation()
	o.RegisterVM("10.0.0.1", na)
	o.RegisterVM("10.0.0.2", nb)
	delivered := false
	o.Send("10.0.0.1", "10.0.0.2", 1024, func(ok bool) { delivered = ok })
	k.Run()
	if !delivered {
		t.Fatal("cross-site overlay send failed")
	}
	if o.DeliveredPackets != 1 || o.DroppedPackets != 0 {
		t.Fatalf("counters delivered=%d dropped=%d", o.DeliveredPackets, o.DroppedPackets)
	}
}

func TestSameSiteBypassesVR(t *testing.T) {
	k, net, o, na, _ := federation()
	nc := net.Site("alpha").AddNode("host-c", 1<<30)
	o.RegisterVM("10.0.0.1", na)
	o.RegisterVM("10.0.0.3", nc)
	var doneAt sim.Time
	o.Send("10.0.0.1", "10.0.0.3", 64, func(ok bool) { doneAt = k.Now() })
	k.Run()
	// Direct LAN: ~100 µs, not the 50 ms WAN tunnel.
	if doneAt > sim.Millisecond {
		t.Fatalf("same-site traffic took %v; went through the WAN?", doneAt)
	}
}

func TestSendToUnknownVIPFails(t *testing.T) {
	k, _, o, na, _ := federation()
	o.RegisterVM("10.0.0.1", na)
	ok := true
	o.Send("10.0.0.1", "10.9.9.9", 64, func(r bool) { ok = r })
	k.Run()
	if ok {
		t.Fatal("send to unknown VIP should fail")
	}
}

func TestMigrationWithoutReconfigBlackholes(t *testing.T) {
	k, net, o, na, nb := federation()
	o.RegisterVM("10.0.0.1", na)
	o.RegisterVM("10.0.0.2", nb)
	// Move VM .2 to alpha without reconfiguration.
	nb2 := net.Site("alpha").AddNode("host-a2", 1<<30)
	o.VMMoved("10.0.0.2", nb2, false, nil)
	if !o.RouteStale("beta", "10.0.0.2") {
		t.Fatal("route should be stale after unreconfigured move")
	}
	delivered := true
	o.Send("10.0.0.1", "10.0.0.2", 64, func(ok bool) { delivered = ok })
	k.Run()
	if delivered {
		t.Fatal("stale route should drop the packet")
	}
}

func TestMigrationWithReconfigConverges(t *testing.T) {
	k, net, o, na, nb := federation()
	o.RegisterVM("10.0.0.1", na)
	o.RegisterVM("10.0.0.2", nb)
	nb2 := net.Site("alpha").AddNode("host-a2", 1<<30)
	var lat sim.Time
	o.VMMoved("10.0.0.2", nb2, true, func(l sim.Time) { lat = l })
	k.Run()
	if o.RouteStale("beta", "10.0.0.2") || o.RouteStale("alpha", "10.0.0.2") {
		t.Fatal("routes still stale after reconfiguration")
	}
	// Detection 100 ms + one WAN control message ~50 ms.
	if lat < 100*sim.Millisecond || lat > 500*sim.Millisecond {
		t.Fatalf("reconfiguration latency %v out of range", lat)
	}
	if o.Reconfigs != 1 {
		t.Fatalf("reconfigs %d", o.Reconfigs)
	}
}

func TestConnectionSurvivesReconfiguredMigration(t *testing.T) {
	k, net, o, na, nb := federation()
	o.RegisterVM("10.0.0.1", na)
	o.RegisterVM("10.0.0.2", nb)
	conn := NewConnection(o, "10.0.0.1", "10.0.0.2", 10*sim.Second, 200*sim.Millisecond)
	// Migrate at t=5s with reconfiguration (outage ~150 ms << 10 s timeout).
	k.Schedule(5*sim.Second, func() {
		nb2 := net.Site("alpha").AddNode("host-a2", 1<<30)
		o.VMMoved("10.0.0.2", nb2, true, nil)
	})
	k.RunUntil(20 * sim.Second)
	conn.Close()
	if conn.Broken {
		t.Fatalf("connection broke despite reconfiguration: %v", conn)
	}
	if conn.ProbesSent == 0 {
		t.Fatal("no probes sent")
	}
}

func TestConnectionBreaksWithoutReconfig(t *testing.T) {
	k, net, o, na, nb := federation()
	o.RegisterVM("10.0.0.1", na)
	o.RegisterVM("10.0.0.2", nb)
	conn := NewConnection(o, "10.0.0.1", "10.0.0.2", 5*sim.Second, 200*sim.Millisecond)
	k.Schedule(2*sim.Second, func() {
		nb2 := net.Site("alpha").AddNode("host-a2", 1<<30)
		o.VMMoved("10.0.0.2", nb2, false, nil)
	})
	k.RunUntil(30 * sim.Second)
	if !conn.Broken {
		t.Fatalf("connection survived an unreconfigured cross-site move: %v", conn)
	}
	if conn.BrokenAt < 7*sim.Second { // 2s move + 5s timeout
		t.Fatalf("connection broke too early: %v", conn.BrokenAt)
	}
}

func TestConnectionBreaksIfReconfigSlowerThanTimeout(t *testing.T) {
	k, net, o, na, nb := federation()
	o.DetectionDelay = 8 * sim.Second // pathologically slow detection
	o.RegisterVM("10.0.0.1", na)
	o.RegisterVM("10.0.0.2", nb)
	conn := NewConnection(o, "10.0.0.1", "10.0.0.2", 2*sim.Second, 100*sim.Millisecond)
	k.Schedule(sim.Second, func() {
		nb2 := net.Site("alpha").AddNode("host-a2", 1<<30)
		o.VMMoved("10.0.0.2", nb2, true, nil)
	})
	k.RunUntil(30 * sim.Second)
	if !conn.Broken {
		t.Fatal("connection should lose the reconfig-vs-timeout race")
	}
}

func TestNewRouterLearnsExistingVMs(t *testing.T) {
	k, net, o, na, _ := federation()
	o.RegisterVM("10.0.0.1", na)
	g := net.AddSite("gamma", 125*MB, 125*MB)
	o.AddRouter(g.AddNode("vr-gamma", 1<<30))
	ng := g.Node("vr-gamma")
	_ = ng
	if o.RouteStale("gamma", "10.0.0.1") {
		t.Fatal("new VR did not learn existing VMs")
	}
	_ = k
}

func TestUnregister(t *testing.T) {
	k, _, o, na, _ := federation()
	o.RegisterVM("10.0.0.1", na)
	o.Unregister("10.0.0.1")
	if o.Lookup("10.0.0.1") != nil {
		t.Fatal("unregistered VIP still resolves")
	}
	ok := true
	o.Send("10.0.0.1", "10.0.0.1", 64, func(r bool) { ok = r })
	k.Run()
	if ok {
		t.Fatal("send from unregistered VIP should fail")
	}
}

func TestMaxOutageTracked(t *testing.T) {
	k, net, o, na, nb := federation()
	o.RegisterVM("10.0.0.1", na)
	o.RegisterVM("10.0.0.2", nb)
	conn := NewConnection(o, "10.0.0.1", "10.0.0.2", 60*sim.Second, 100*sim.Millisecond)
	k.Schedule(2*sim.Second, func() {
		nb2 := net.Site("alpha").AddNode("host-a2", 1<<30)
		o.VMMoved("10.0.0.2", nb2, true, nil)
	})
	k.RunUntil(10 * sim.Second)
	conn.Close()
	if conn.Broken {
		t.Fatal("unexpected break")
	}
	// The outage window (~150 ms reconfig) must be visible in MaxOutage.
	if conn.MaxOutage < 150*sim.Millisecond {
		t.Fatalf("MaxOutage %v did not capture the blackhole window", conn.MaxOutage)
	}
}
