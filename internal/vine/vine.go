// Package vine models the ViNe virtual network overlay (Tsugawa & Fortes,
// IPDPS'06) extended with the migration-transparency mechanisms of §III-B:
// every site runs a ViNe router (VR); VMs get stable virtual IPs; all-to-all
// connectivity crosses NAT/firewall boundaries through VR tunnels; and when
// a VM migrates, the overlay detects it (gratuitous-ARP analogue) and
// propagates a route update to every VR so open connections survive.
package vine

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// Router is a site's ViNe router: the tunnel endpoint holding a routing
// table from virtual IP to the site currently hosting it.
type Router struct {
	Site  *simnet.Site
	Node  *simnet.Node
	table map[string]string // virtual IP -> site name
}

// Overlay is the federation-wide virtual network.
type Overlay struct {
	net     *simnet.Network
	routers map[string]*Router      // site name -> VR
	hosts   map[string]*simnet.Node // virtual IP -> physical node (truth)

	// DetectionDelay models how long the destination VR takes to notice a
	// migrated VM (gratuitous ARP processing). Default 100 ms.
	DetectionDelay sim.Time
	// ReconfigMsgBytes is the size of one route-update control message.
	ReconfigMsgBytes int64

	// Stats.
	Reconfigs        int
	LastReconfigTime sim.Time // time from migration to last VR updated
	DroppedPackets   int64
	DeliveredPackets int64
}

// New returns an empty overlay over the given network.
func New(net *simnet.Network) *Overlay {
	return &Overlay{
		net:              net,
		routers:          make(map[string]*Router),
		hosts:            make(map[string]*simnet.Node),
		DetectionDelay:   100 * sim.Millisecond,
		ReconfigMsgBytes: 512,
	}
}

// AddRouter installs a VR for the site on the given node. Every site hosting
// overlay VMs needs one.
func (o *Overlay) AddRouter(node *simnet.Node) *Router {
	site := node.Site
	if _, dup := o.routers[site.Name]; dup {
		panic("vine: site already has a router: " + site.Name)
	}
	r := &Router{Site: site, Node: node, table: make(map[string]string)}
	o.routers[site.Name] = r
	// A new VR learns the current global network descriptor.
	for vip, n := range o.hosts {
		r.table[vip] = n.Site.Name
	}
	return r
}

// Routers returns the VRs sorted by site name.
func (o *Overlay) Routers() []*Router {
	out := make([]*Router, 0, len(o.routers))
	for _, r := range o.routers {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site.Name < out[j].Site.Name })
	return out
}

// RegisterVM assigns a virtual IP to a VM on node and announces it to all
// VRs (initial contextualization, assumed synchronous as in ViNe's
// deployment phase).
func (o *Overlay) RegisterVM(vip string, node *simnet.Node) {
	if _, dup := o.hosts[vip]; dup {
		panic("vine: duplicate virtual IP " + vip)
	}
	if _, ok := o.routers[node.Site.Name]; !ok {
		panic("vine: site " + node.Site.Name + " has no ViNe router")
	}
	o.hosts[vip] = node
	for _, r := range o.routers {
		r.table[vip] = node.Site.Name
	}
}

// Unregister removes a virtual IP (VM terminated).
func (o *Overlay) Unregister(vip string) {
	delete(o.hosts, vip)
	for _, r := range o.routers {
		delete(r.table, vip)
	}
}

// Lookup returns the node currently hosting the virtual IP, or nil.
func (o *Overlay) Lookup(vip string) *simnet.Node { return o.hosts[vip] }

// RouteStale reports whether the named site's VR holds a stale route for
// vip (i.e. packets from that site would currently blackhole).
func (o *Overlay) RouteStale(site, vip string) bool {
	r, ok := o.routers[site]
	if !ok {
		return true
	}
	actual, ok := o.hosts[vip]
	if !ok {
		return true
	}
	return r.table[vip] != actual.Site.Name
}

// Send routes a packet of the given size from one virtual IP to another.
// Delivery follows the *source VR's* routing table: if the table is stale
// (the destination migrated and the update has not arrived), the packet is
// tunnelled to the old site and dropped there. onResult receives delivery
// success. Same-site traffic bypasses the VR as in ViNe (direct LAN path).
func (o *Overlay) Send(srcVIP, dstVIP string, bytes int64, onResult func(ok bool)) {
	src, ok1 := o.hosts[srcVIP]
	dst, ok2 := o.hosts[dstVIP]
	if !ok1 || !ok2 {
		o.DroppedPackets++
		if onResult != nil {
			o.net.K.Schedule(0, func() { onResult(false) })
		}
		return
	}
	srcVR := o.routers[src.Site.Name]
	routedSite := srcVR.table[dstVIP]
	if routedSite == dst.Site.Name && src.Site == dst.Site {
		// Route is fresh and local: direct LAN path, no tunnel.
		o.DeliveredPackets++
		o.net.SendMessage(src, dst, bytes, func() {
			if onResult != nil {
				onResult(true)
			}
		})
		return
	}
	if routedSite != dst.Site.Name {
		// Stale route: packet crosses the WAN to the old site and dies.
		o.DroppedPackets++
		o.net.SendMessage(src, srcVR.Node, bytes, func() {
			if onResult != nil {
				onResult(false)
			}
		})
		return
	}
	// src -> srcVR -> dstVR -> dst, through the tunnel.
	dstVR := o.routers[dst.Site.Name]
	o.DeliveredPackets++
	o.net.SendMessage(src, srcVR.Node, bytes, func() {
		o.net.SendMessage(srcVR.Node, dstVR.Node, bytes, func() {
			o.net.SendMessage(dstVR.Node, dst, bytes, func() {
				if onResult != nil {
					onResult(true)
				}
			})
		})
	})
}

// VMMoved informs the overlay that a VM's data plane now lives on newNode
// (called at migration completion). If reconfigure is true the §III-B
// mechanism runs: after DetectionDelay the destination VR detects the VM
// (gratuitous ARP), updates its own table, and pushes route updates to every
// other VR; onReconfigured (optional) receives the time from VMMoved until
// the last VR converges. If reconfigure is false the tables stay stale —
// the state of the art before this work — and cross-site traffic to the VM
// blackholes indefinitely.
func (o *Overlay) VMMoved(vip string, newNode *simnet.Node, reconfigure bool, onReconfigured func(latency sim.Time)) {
	if _, ok := o.routers[newNode.Site.Name]; !ok {
		panic("vine: destination site " + newNode.Site.Name + " has no ViNe router")
	}
	o.hosts[vip] = newNode
	if !reconfigure {
		return
	}
	start := o.net.K.Now()
	newSite := newNode.Site.Name
	dstVR := o.routers[newSite]
	o.net.K.Schedule(o.DetectionDelay, func() {
		dstVR.table[vip] = newSite
		pending := 0
		for _, r := range o.Routers() {
			if r == dstVR {
				continue
			}
			pending++
			r := r
			o.net.SendMessage(dstVR.Node, r.Node, o.ReconfigMsgBytes, func() {
				r.table[vip] = newSite
				pending--
				if pending == 0 {
					o.Reconfigs++
					o.LastReconfigTime = o.net.K.Now() - start
					if onReconfigured != nil {
						onReconfigured(o.LastReconfigTime)
					}
				}
			})
		}
		if pending == 0 { // single-site overlay
			o.Reconfigs++
			o.LastReconfigTime = o.net.K.Now() - start
			if onReconfigured != nil {
				onReconfigured(o.LastReconfigTime)
			}
		}
	})
}

// Connection models a long-lived transport connection (TCP) between two
// virtual IPs, health-checked by probes. It survives a migration iff the
// blackhole window stays below Timeout — exactly the race §III-B's
// reconfiguration wins and the no-overlay baseline loses.
type Connection struct {
	A, B          string
	Timeout       sim.Time
	ProbeInterval sim.Time

	overlay *Overlay
	lastOK  sim.Time
	stopped bool
	stop    func()

	Broken     bool
	BrokenAt   sim.Time
	ProbesSent int
	ProbesLost int
	// MaxOutage is the longest observed gap between successful probes.
	MaxOutage sim.Time
}

// NewConnection creates and starts a probed connection. Defaults: 30 s
// timeout (application-level TCP abort typical for the paper's services),
// 500 ms probe interval.
func NewConnection(o *Overlay, a, b string, timeout, probeInterval sim.Time) *Connection {
	if timeout <= 0 {
		timeout = 30 * sim.Second
	}
	if probeInterval <= 0 {
		probeInterval = 500 * sim.Millisecond
	}
	c := &Connection{A: a, B: b, Timeout: timeout, ProbeInterval: probeInterval,
		overlay: o, lastOK: o.net.K.Now()}
	c.stop = o.net.K.Ticker(probeInterval, c.probe)
	return c
}

func (c *Connection) probe() {
	if c.Broken || c.stopped {
		return
	}
	c.ProbesSent++
	k := c.overlay.net.K
	c.overlay.Send(c.A, c.B, 64, func(ok bool) {
		if c.Broken || c.stopped {
			return
		}
		now := k.Now()
		if ok {
			if gap := now - c.lastOK; gap > c.MaxOutage {
				c.MaxOutage = gap
			}
			c.lastOK = now
			return
		}
		c.ProbesLost++
		if now-c.lastOK > c.Timeout {
			c.Broken = true
			c.BrokenAt = now
			c.stop()
		}
	})
}

// Close stops probing (application finished normally).
func (c *Connection) Close() {
	c.stopped = true
	c.stop()
}

func (c *Connection) String() string {
	state := "established"
	if c.Broken {
		state = fmt.Sprintf("broken@%v", c.BrokenAt)
	}
	return fmt.Sprintf("%s<->%s %s probes=%d lost=%d", c.A, c.B, state, c.ProbesSent, c.ProbesLost)
}
