package deploy

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vm"
)

const MB = 1 << 20

// lanCluster builds one site with a repo node and n hosts, all 125 MB/s NICs.
func lanCluster(n int) (*sim.Kernel, *simnet.Network, *simnet.Node, []*simnet.Node) {
	k := sim.NewKernel(1)
	net := simnet.New(k)
	s := net.AddSite("cloud", 125*MB, 125*MB)
	repo := s.AddNode("repo", 125*MB)
	hosts := make([]*simnet.Node, n)
	for i := range hosts {
		hosts[i] = s.AddNode(nodeName(i), 125*MB)
	}
	return k, net, repo, hosts
}

func nodeName(i int) string { return "host" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestUnicastSingleTarget(t *testing.T) {
	k, net, repo, hosts := lanCluster(1)
	var res Result
	Unicast{}.Propagate(net, repo, hosts, 125*MB, func(r Result) { res = r })
	k.Run()
	// 125 MB at 125 MB/s = 1 s.
	if e := res.Elapsed().Seconds(); e < 0.99 || e > 1.02 {
		t.Fatalf("unicast to 1 host took %.3fs, want ~1s", e)
	}
}

func TestUnicastScalesLinearly(t *testing.T) {
	elapsed := func(n int) float64 {
		k, net, repo, hosts := lanCluster(n)
		var res Result
		Unicast{}.Propagate(net, repo, hosts, 125*MB, func(r Result) { res = r })
		k.Run()
		return res.Elapsed().Seconds()
	}
	e1, e4, e8 := elapsed(1), elapsed(4), elapsed(8)
	// Repo NIC is the bottleneck: time grows linearly with target count.
	if e4 < 3.8*e1 || e4 > 4.2*e1 {
		t.Fatalf("unicast x4 = %.2fs vs x1 = %.2fs, want ~4x", e4, e1)
	}
	if e8 < 7.6*e1 || e8 > 8.4*e1 {
		t.Fatalf("unicast x8 = %.2fs vs x1 = %.2fs, want ~8x", e8, e1)
	}
}

func TestChainNearlyFlatInTargets(t *testing.T) {
	elapsed := func(n int) float64 {
		k, net, repo, hosts := lanCluster(n)
		var res Result
		Chain{ChunkBytes: 8 * MB}.Propagate(net, repo, hosts, 128*MB, func(r Result) { res = r })
		k.Run()
		if res.Targets != n {
			t.Fatalf("result target count %d != %d", res.Targets, n)
		}
		return res.Elapsed().Seconds()
	}
	e1, e16 := elapsed(1), elapsed(16)
	// Chain: ~S/bw + (n-1)*chunk/bw. For 128MB/125MBps + 15*8MB/125MBps
	// that is ~1.02 + 0.96 ≈ 2x single, while unicast x16 would be 16x.
	if e16 > 2.5*e1 {
		t.Fatalf("chain x16 = %.2fs vs x1 = %.2fs; pipeline broken", e16, e1)
	}
}

func TestChainBeatsUnicastAtScale(t *testing.T) {
	const n = 32
	run := func(s Strategy) float64 {
		k, net, repo, hosts := lanCluster(n)
		var res Result
		s.Propagate(net, repo, hosts, 256*MB, func(r Result) { res = r })
		k.Run()
		return res.Elapsed().Seconds()
	}
	uni := run(Unicast{})
	chain := run(Chain{ChunkBytes: 16 * MB})
	if chain >= uni/4 {
		t.Fatalf("chain (%.1fs) should beat unicast (%.1fs) by >4x at 32 hosts", chain, uni)
	}
}

func TestChainAllTargetsComplete(t *testing.T) {
	k, net, repo, hosts := lanCluster(5)
	var res Result
	Chain{ChunkBytes: 4 * MB}.Propagate(net, repo, hosts, 10*MB, func(r Result) { res = r })
	k.Run()
	for i, tt := range res.PerTarget {
		if tt == 0 {
			t.Fatalf("target %d never completed", i)
		}
		if i > 0 && tt < res.PerTarget[i-1] {
			t.Fatalf("chain target %d finished before its upstream", i)
		}
	}
	if res.AllDone != res.PerTarget[len(res.PerTarget)-1] {
		t.Fatal("AllDone != last target completion")
	}
}

func TestChainUnevenLastChunk(t *testing.T) {
	k, net, repo, hosts := lanCluster(2)
	var res Result
	// 10 MB with 4 MB chunks: chunks of 4,4,2.
	Chain{ChunkBytes: 4 * MB}.Propagate(net, repo, hosts, 10*MB, func(r Result) { res = r })
	k.Run()
	if res.AllDone == 0 {
		t.Fatal("chain with uneven chunks never finished")
	}
	if res.BytesMoved != 20*MB {
		t.Fatalf("bytes moved %d, want 20 MB", res.BytesMoved)
	}
}

func TestPropagateZeroTargets(t *testing.T) {
	k, net, repo, _ := lanCluster(1)
	doneU, doneC := false, false
	Unicast{}.Propagate(net, repo, nil, MB, func(Result) { doneU = true })
	Chain{}.Propagate(net, repo, nil, MB, func(Result) { doneC = true })
	k.Run()
	if !doneU || !doneC {
		t.Fatal("zero-target propagation must still call onDone")
	}
}

func TestStoreCoWClone(t *testing.T) {
	st := NewStore("cloud")
	m := vm.NewContentModel(1, "debian", 0, 0.5, 100)
	base := vm.NewDiskImage("debian", 1000, 65536, m)
	st.Put(base)
	if !st.Has("debian") || st.Get("debian") != base {
		t.Fatal("store lost the base image")
	}
	c, err := st.Clone("debian", "vm0-disk")
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsCoW() || c.Base() != base {
		t.Fatal("clone is not CoW over the cached base")
	}
	if _, err := st.Clone("missing", "x"); err == nil {
		t.Fatal("clone of uncached base must fail")
	}
	if imgs := st.Images(); len(imgs) != 1 || imgs[0] != "debian" {
		t.Fatalf("Images() = %v", imgs)
	}
}

func TestChainDeterministic(t *testing.T) {
	run := func() sim.Time {
		k, net, repo, hosts := lanCluster(8)
		var res Result
		Chain{ChunkBytes: 2 * MB}.Propagate(net, repo, hosts, 32*MB, func(r Result) { res = r })
		k.Run()
		return res.AllDone
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("chain nondeterministic: %v vs %v", a, b)
	}
}
