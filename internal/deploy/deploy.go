// Package deploy implements the VM image deployment mechanisms from §II of
// the paper: a Kastafior-style broadcast chain for pushing image data to
// many hosts, a naive unicast baseline, and a copy-on-write image store
// giving near-instant VM creation once the base image is cached.
package deploy

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vm"
)

// Result reports one propagation run.
type Result struct {
	Strategy   string
	Targets    int
	ImageBytes int64
	Start      sim.Time
	AllDone    sim.Time   // when the last target holds the full image
	PerTarget  []sim.Time // completion time per target, same order as input
	BytesMoved int64      // total bytes placed on the network
}

// Elapsed returns the wall-clock (virtual) propagation time.
func (r Result) Elapsed() sim.Time { return r.AllDone - r.Start }

// Strategy distributes an image from a repository node to target hosts.
type Strategy interface {
	Name() string
	// Propagate starts the distribution and calls onDone with the result
	// when every target holds the image.
	Propagate(net *simnet.Network, repo *simnet.Node, targets []*simnet.Node, imageBytes int64, onDone func(Result))
}

// Unicast is the baseline: the repository streams the full image to every
// target concurrently, so the repository NIC divides among the targets.
type Unicast struct{}

// Name implements Strategy.
func (Unicast) Name() string { return "unicast" }

// Propagate implements Strategy.
func (Unicast) Propagate(net *simnet.Network, repo *simnet.Node, targets []*simnet.Node, imageBytes int64, onDone func(Result)) {
	res := Result{
		Strategy:   "unicast",
		Targets:    len(targets),
		ImageBytes: imageBytes,
		Start:      net.K.Now(),
		PerTarget:  make([]sim.Time, len(targets)),
		BytesMoved: imageBytes * int64(len(targets)),
	}
	if len(targets) == 0 {
		net.K.Schedule(0, func() { res.AllDone = net.K.Now(); onDone(res) })
		return
	}
	remaining := len(targets)
	for i, tgt := range targets {
		i := i
		net.StartFlow(repo, tgt, imageBytes, "image-unicast", func() {
			res.PerTarget[i] = net.K.Now()
			remaining--
			if remaining == 0 {
				res.AllDone = net.K.Now()
				onDone(res)
			}
		})
	}
}

// Chain is the Kastafior-style broadcast chain: hosts form a pipeline
// repo -> h0 -> h1 -> ... -> hN. The image is cut into chunks; each host
// forwards a chunk downstream as soon as it has fully received it. In steady
// state every hop carries one chunk concurrently, so total time approaches
// image/bandwidth + (N-1) * chunk/bandwidth instead of N * image/bandwidth.
type Chain struct {
	// ChunkBytes is the pipeline granularity. Zero means 32 MiB, the value
	// the TeraGrid'10 deployment used.
	ChunkBytes int64
	// PerChunkOverhead is the fixed per-chunk per-hop protocol cost
	// (acknowledgement round + write barrier). Zero means 5 ms. This is
	// what makes very small chunks counterproductive (ablation A3).
	PerChunkOverhead sim.Time
}

// Name implements Strategy.
func (c Chain) Name() string { return "chain" }

// Propagate implements Strategy.
func (c Chain) Propagate(net *simnet.Network, repo *simnet.Node, targets []*simnet.Node, imageBytes int64, onDone func(Result)) {
	chunk := c.ChunkBytes
	if chunk <= 0 {
		chunk = 32 << 20
	}
	overhead := c.PerChunkOverhead
	if overhead == 0 {
		overhead = 5 * sim.Millisecond
	}
	res := Result{
		Strategy:   "chain",
		Targets:    len(targets),
		ImageBytes: imageBytes,
		Start:      net.K.Now(),
		PerTarget:  make([]sim.Time, len(targets)),
		BytesMoved: imageBytes * int64(len(targets)),
	}
	if len(targets) == 0 {
		net.K.Schedule(0, func() { res.AllDone = net.K.Now(); onDone(res) })
		return
	}
	nChunks := int((imageBytes + chunk - 1) / chunk)
	lastChunkBytes := imageBytes - int64(nChunks-1)*chunk
	chunkSize := func(i int) int64 {
		if i == nChunks-1 {
			return lastChunkBytes
		}
		return chunk
	}
	// nodes[0] = repo, nodes[1..] = targets in given order.
	nodes := append([]*simnet.Node{repo}, targets...)
	// have[h] = number of consecutive chunks fully received by nodes[h].
	have := make([]int, len(nodes))
	have[0] = nChunks
	// sending[h] = true while hop h (nodes[h] -> nodes[h+1]) has a flow.
	sending := make([]bool, len(nodes))
	remaining := len(targets)

	var pump func(h int)
	chunkLanded := func(h, next int) {
		sending[h] = false
		have[h+1] = next + 1
		if have[h+1] == nChunks {
			res.PerTarget[h] = net.K.Now()
			remaining--
			if remaining == 0 {
				res.AllDone = net.K.Now()
				onDone(res)
				return
			}
		}
		pump(h)     // keep this hop busy
		pump(h + 1) // downstream may now proceed
	}
	pump = func(h int) {
		// Hop h forwards from nodes[h] to nodes[h+1].
		if h+1 >= len(nodes) || sending[h] {
			return
		}
		next := have[h+1]
		if next >= have[h] || next >= nChunks {
			return
		}
		sending[h] = true
		net.StartFlow(nodes[h], nodes[h+1], chunkSize(next), "image-chain", func() {
			// Per-chunk acknowledgement/write barrier before the chunk is
			// forwardable.
			net.K.Schedule(overhead, func() { chunkLanded(h, next) })
		})
	}
	pump(0)
}

// ImageMeta describes an image stored in a Store.
type ImageMeta struct {
	Name  string
	Bytes int64
}

// Store is a per-site image repository with a cache of base images,
// supporting the copy-on-write creation path: if the base image is cached,
// creating a VM disk costs only CowMetadataBytes of transfer and
// CowCreateLatency of time.
type Store struct {
	Site   string
	images map[string]*vm.DiskImage
	// CowMetadataBytes is the backing-file metadata copied per CoW clone.
	CowMetadataBytes int64
	// CowCreateLatency is the local qcow2-style creation latency.
	CowCreateLatency sim.Time
}

// NewStore returns a store with defaults matching the prototype:
// 1 MiB of metadata per clone, 200 ms creation latency.
func NewStore(site string) *Store {
	return &Store{
		Site:             site,
		images:           make(map[string]*vm.DiskImage),
		CowMetadataBytes: 1 << 20,
		CowCreateLatency: 200 * sim.Millisecond,
	}
}

// Put caches a base image.
func (s *Store) Put(img *vm.DiskImage) { s.images[img.Name] = img }

// Has reports whether the named base image is cached.
func (s *Store) Has(name string) bool { _, ok := s.images[name]; return ok }

// Get returns a cached base image, or nil.
func (s *Store) Get(name string) *vm.DiskImage { return s.images[name] }

// Images returns cached image names, sorted.
func (s *Store) Images() []string {
	out := make([]string, 0, len(s.images))
	for n := range s.images {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone creates a CoW overlay of the named base image. It returns an error
// if the base is not cached (the caller must propagate it first).
func (s *Store) Clone(base, cloneName string) (*vm.DiskImage, error) {
	b, ok := s.images[base]
	if !ok {
		return nil, fmt.Errorf("deploy: base image %q not cached at site %s", base, s.Site)
	}
	return vm.NewCoWImage(cloneName, b), nil
}
