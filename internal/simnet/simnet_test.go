package simnet

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

const (
	MB = 1 << 20
	GB = 1 << 30
)

// twoSiteNet builds two sites with one node each: 1 GB/s NICs, WAN 125 MB/s
// (a 1 Gb/s interconnect), 50 ms one-way latency.
func twoSiteNet(t testing.TB) (*sim.Kernel, *Network, *Node, *Node) {
	t.Helper()
	k := sim.NewKernel(1)
	n := New(k)
	a := n.AddSite("siteA", 125*MB, 125*MB)
	b := n.AddSite("siteB", 125*MB, 125*MB)
	n.SetSiteLatency("siteA", "siteB", 50*sim.Millisecond)
	na := a.AddNode("a0", 1*GB)
	nb := b.AddNode("b0", 1*GB)
	return k, n, na, nb
}

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %.6f want %.6f (tol %.6f)", msg, got, want, tol)
	}
}

func TestSingleFlowWANTime(t *testing.T) {
	k, n, a, b := twoSiteNet(t)
	var doneAt sim.Time
	n.StartFlow(a, b, 125*MB, "bulk", func() { doneAt = k.Now() })
	k.Run()
	// 125 MB over a 125 MB/s bottleneck = 1 s, plus 50 ms latency.
	approx(t, doneAt.Seconds(), 1.05, 0.001, "WAN flow completion")
	if n.WANBytes("siteA", "siteB") != 125*MB {
		t.Fatalf("WAN accounting: %d", n.WANBytes("siteA", "siteB"))
	}
}

func TestLANFlowUsesNICBandwidth(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	s := n.AddSite("s", 125*MB, 125*MB)
	a := s.AddNode("a", 1*GB)
	b := s.AddNode("b", 1*GB)
	var doneAt sim.Time
	n.StartFlow(a, b, 1*GB, "local", func() { doneAt = k.Now() })
	k.Run()
	// 1 GB at 1 GB/s NIC = 1 s + 100 µs LAN latency; WAN must be untouched.
	approx(t, doneAt.Seconds(), 1.0001, 0.001, "LAN flow completion")
	if n.TotalWANBytes() != 0 {
		t.Fatal("LAN flow was billed to the WAN")
	}
}

func TestFairShareTwoFlows(t *testing.T) {
	k, n, a, b := twoSiteNet(t)
	var t1, t2 sim.Time
	n.StartFlow(a, b, 125*MB, "f1", func() { t1 = k.Now() })
	n.StartFlow(a, b, 125*MB, "f2", func() { t2 = k.Now() })
	k.Run()
	// Two equal flows share the 125 MB/s WAN: each runs at 62.5 MB/s,
	// finishing together at ~2 s (+latency).
	approx(t, t1.Seconds(), 2.05, 0.01, "flow 1")
	approx(t, t2.Seconds(), 2.05, 0.01, "flow 2")
}

func TestFairShareRampUp(t *testing.T) {
	k, n, a, b := twoSiteNet(t)
	var t1 sim.Time
	// Flow 1 alone for 0.5 s (62.5 MB done), then flow 2 joins and they
	// split: flow 1's remaining 62.5 MB takes 1 s more.
	n.StartFlow(a, b, 125*MB, "f1", func() { t1 = k.Now() })
	k.Schedule(500*sim.Millisecond, func() {
		n.StartFlow(a, b, 250*MB, "f2", nil)
	})
	k.Run()
	approx(t, t1.Seconds(), 1.55, 0.01, "flow 1 with mid-life contention")
}

func TestFlowReleaseSpeedsUpRemaining(t *testing.T) {
	k, n, a, b := twoSiteNet(t)
	var tSmall, tBig sim.Time
	n.StartFlow(a, b, 62500*1024, "small", func() { tSmall = k.Now() }) // 61.04 MB
	n.StartFlow(a, b, 125*MB, "big", func() { tBig = k.Now() })
	k.Run()
	if tSmall >= tBig {
		t.Fatalf("small flow (%v) should finish before big flow (%v)", tSmall, tBig)
	}
	// Big flow total: shares until small done, then full rate.
	// small = 64e6-ish bytes at 65.5 MB/s... just sanity-check ordering and
	// that big finishes sooner than a pure half-rate run (2 s).
	if tBig.Seconds() >= 2.05 {
		t.Fatalf("big flow never sped up after small flow finished: %v", tBig)
	}
}

func TestNICBottleneckOnLAN(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	s := n.AddSite("s", 1*GB, 1*GB)
	src := s.AddNode("src", 100*MB) // slow NIC
	dst := s.AddNode("dst", 1*GB)
	var done sim.Time
	n.StartFlow(src, dst, 100*MB, "x", func() { done = k.Now() })
	k.Run()
	approx(t, done.Seconds(), 1.0001, 0.001, "NIC-bound flow")
}

func TestZeroByteFlow(t *testing.T) {
	k, n, a, b := twoSiteNet(t)
	var done sim.Time
	n.StartFlow(a, b, 0, "z", func() { done = k.Now() })
	k.Run()
	approx(t, done.Seconds(), 0.05, 0.0001, "zero-byte flow = latency only")
}

func TestCancelAccountsPartialBytes(t *testing.T) {
	k, n, a, b := twoSiteNet(t)
	f := n.StartFlow(a, b, 125*MB, "bulk", func() { t.Fatal("cancelled flow ran onDone") })
	k.Schedule(500*sim.Millisecond, func() { f.Cancel() })
	k.Run()
	carried := n.WANBytes("siteA", "siteB")
	// Half the flow: ~62.5 MB.
	if carried < 62*MB || carried > 63*MB {
		t.Fatalf("partial accounting: %d bytes", carried)
	}
	if n.ActiveFlows() != 0 {
		t.Fatal("cancelled flow still active")
	}
}

func TestSendMessageLatency(t *testing.T) {
	k, n, a, b := twoSiteNet(t)
	var done sim.Time
	n.SendMessage(a, b, 1024, func() { done = k.Now() })
	k.Run()
	// 50 ms + 1 KiB / 125 MB/s ≈ 50.008 ms.
	approx(t, done.Seconds(), 0.050008, 0.0001, "control message")
}

func TestObserver(t *testing.T) {
	k, n, a, b := twoSiteNet(t)
	var events []FlowEvent
	n.Observe(func(ev FlowEvent) { events = append(events, ev) })
	n.StartFlow(a, b, MB, "tagged", nil)
	k.Run()
	if len(events) != 2 {
		t.Fatalf("want start+end events, got %d", len(events))
	}
	if !events[0].Start || events[0].Bytes != MB || events[0].Tag != "tagged" {
		t.Fatalf("bad start event: %+v", events[0])
	}
	if events[1].Start || events[1].Bytes != MB {
		t.Fatalf("bad end event: %+v", events[1])
	}
}

func TestCrossTrafficIndependentSites(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	a := n.AddSite("a", 125*MB, 125*MB)
	b := n.AddSite("b", 125*MB, 125*MB)
	c := n.AddSite("c", 125*MB, 125*MB)
	na := a.AddNode("na", 1*GB)
	nb := b.AddNode("nb", 1*GB)
	nc := c.AddNode("nc", 1*GB)
	var tab, tac sim.Time
	// a->b and c->a: share only a's uplink? No - different directions.
	// a->b uses a.Up and b.Down; c->a uses c.Up and a.Down. Independent.
	n.StartFlow(na, nb, 125*MB, "ab", func() { tab = k.Now() })
	n.StartFlow(nc, na, 125*MB, "ca", func() { tac = k.Now() })
	k.Run()
	approx(t, tab.Seconds(), 1.05, 0.01, "a->b unaffected by c->a")
	approx(t, tac.Seconds(), 1.05, 0.01, "c->a unaffected by a->b")
}

func TestSharedUplinkContention(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	a := n.AddSite("a", 125*MB, 125*MB)
	b := n.AddSite("b", 125*MB, 125*MB)
	c := n.AddSite("c", 125*MB, 125*MB)
	a0 := a.AddNode("a0", 1*GB)
	a1 := a.AddNode("a1", 1*GB)
	nb := b.AddNode("nb", 1*GB)
	nc := c.AddNode("nc", 1*GB)
	var t1, t2 sim.Time
	// Both flows leave site a: they share a's 125 MB/s uplink.
	n.StartFlow(a0, nb, 125*MB, "f1", func() { t1 = k.Now() })
	n.StartFlow(a1, nc, 125*MB, "f2", func() { t2 = k.Now() })
	k.Run()
	approx(t, t1.Seconds(), 2.05, 0.01, "uplink-shared flow 1")
	approx(t, t2.Seconds(), 2.05, 0.01, "uplink-shared flow 2")
}

func TestWANCost(t *testing.T) {
	k, n, a, b := twoSiteNet(t)
	n.CostPerWANByte = 1e-9 // $1/GB
	n.StartFlow(a, b, GB, "paid", nil)
	k.Run()
	approx(t, n.WANCost(), float64(GB)*1e-9, 0.001, "WAN cost accounting")
}

// Property: total bytes accounted on a site's uplink never exceeds
// capacity * elapsed time (conservation / no free bandwidth).
func TestPropNoFreeBandwidth(t *testing.T) {
	f := func(sizes []uint32) bool {
		k := sim.NewKernel(11)
		n := New(k)
		a := n.AddSite("a", 10*MB, 10*MB)
		b := n.AddSite("b", 10*MB, 10*MB)
		na := a.AddNode("na", 100*MB)
		nb := b.AddNode("nb", 100*MB)
		if len(sizes) > 20 {
			sizes = sizes[:20]
		}
		for _, s := range sizes {
			n.StartFlow(na, nb, int64(s%(8*MB))+1, "p", nil)
		}
		k.Run()
		elapsed := k.Now().Seconds()
		carried := float64(a.Up.Bytes)
		// Allow 1% slack for the final-latency tail.
		return carried <= 10*MB*elapsed*1.01+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: every started flow eventually completes and total WAN bytes
// equals the sum of flow sizes.
func TestPropAllFlowsComplete(t *testing.T) {
	f := func(sizes []uint16) bool {
		k := sim.NewKernel(13)
		n := New(k)
		a := n.AddSite("a", MB, MB)
		b := n.AddSite("b", MB, MB)
		na := a.AddNode("na", 10*MB)
		nb := b.AddNode("nb", 10*MB)
		if len(sizes) > 30 {
			sizes = sizes[:30]
		}
		var want int64
		completed := 0
		for _, s := range sizes {
			sz := int64(s) + 1
			want += sz
			n.StartFlow(na, nb, sz, "p", func() { completed++ })
		}
		k.Run()
		return completed == len(sizes) && n.WANBytes("a", "b") == want && n.ActiveFlows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicCompletionOrder(t *testing.T) {
	run := func() []string {
		k := sim.NewKernel(5)
		n := New(k)
		a := n.AddSite("a", 10*MB, 10*MB)
		b := n.AddSite("b", 10*MB, 10*MB)
		na := a.AddNode("na", 100*MB)
		nb := b.AddNode("nb", 100*MB)
		var order []string
		for _, tag := range []string{"x", "y", "z", "w"} {
			tag := tag
			n.StartFlow(na, nb, 5*MB, tag, func() { order = append(order, tag) })
		}
		k.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic completion order: %v vs %v", a, b)
		}
	}
}

func TestLoopbackFlow(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	s := n.AddSite("s", MB, MB)
	a := s.AddNode("a", 100*MB)
	var done sim.Time
	n.StartFlow(a, a, 100*MB, "loop", func() { done = k.Now() })
	k.Run()
	approx(t, done.Seconds(), 1.0001, 0.01, "loopback at NIC speed")
	if n.TotalWANBytes() != 0 {
		t.Fatal("loopback billed to WAN")
	}
}
