// Package simnet is a flow-level network simulator built on the sim kernel.
//
// The topology models a set of sites (clouds) connected by a wide-area
// network. Each node has a NIC of finite bandwidth; each site has a WAN
// uplink and downlink shared by all cross-site traffic. Bulk transfers are
// flows: their instantaneous rates follow max-min fair sharing over every
// link on their path, recomputed whenever a flow starts or finishes. Control
// traffic uses SendMessage, which models propagation latency plus
// uncontended serialisation delay.
//
// The simulator accounts bytes per link and per site pair, which is how the
// WAN-billing numbers in the paper's Shrinker and autonomic-adaptation
// experiments are produced.
package simnet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Link is a unidirectional capacity-constrained resource.
type Link struct {
	Name     string
	Capacity float64 // bytes per second
	Bytes    int64   // total bytes carried to completion

	flows map[*Flow]struct{}
}

func newLink(name string, capacity float64) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("simnet: link %s has non-positive capacity", name))
	}
	return &Link{Name: name, Capacity: capacity, flows: make(map[*Flow]struct{})}
}

// Utilization returns the fraction of capacity currently allocated.
func (l *Link) Utilization() float64 {
	var sum float64
	for f := range l.flows {
		sum += f.rate
	}
	return sum / l.Capacity
}

// ActiveFlows returns the number of flows currently traversing the link.
func (l *Link) ActiveFlows() int { return len(l.flows) }

// Site is a cloud location: a LAN of nodes behind a WAN uplink/downlink.
type Site struct {
	Name    string
	Up      *Link // WAN egress shared by all cross-site flows leaving the site
	Down    *Link // WAN ingress
	LANLat  sim.Time
	nodes   map[string]*Node
	network *Network
}

// Nodes returns the site's nodes sorted by ID (deterministic order).
func (s *Site) Nodes() []*Node {
	out := make([]*Node, 0, len(s.nodes))
	for _, n := range s.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Node is an endpoint (a physical host or a service) with a NIC.
type Node struct {
	ID   string
	Site *Site
	Out  *Link // NIC egress
	In   *Link // NIC ingress
}

// FlowEvent describes a flow starting or finishing, for observers
// (the netmon package's hypervisor-level packet capture hooks into this).
type FlowEvent struct {
	Start    bool
	Src, Dst *Node
	Bytes    int64 // requested size (Start) or bytes actually carried (end)
	Tag      string
	At       sim.Time
}

// Flow is an in-progress bulk transfer.
type Flow struct {
	Src, Dst *Node
	Tag      string

	total      int64
	remaining  float64
	rate       float64 // bytes/sec, set by the fair-share computation
	last       sim.Time
	latency    sim.Time
	links      []*Link
	done       func()
	completion *sim.Event
	network    *Network
	finished   bool
}

// Remaining returns the bytes not yet transferred.
func (f *Flow) Remaining() int64 { return int64(math.Ceil(f.remaining)) }

// Rate returns the current fair-share rate in bytes/sec.
func (f *Flow) Rate() float64 { return f.rate }

// Network is the simulated internetwork.
type Network struct {
	K *sim.Kernel

	sites     map[string]*Site
	siteLat   map[[2]string]sim.Time
	defWANLat sim.Time

	active    map[*Flow]struct{}
	wanBytes  map[[2]string]int64 // src site -> dst site, completed bytes
	observers []func(FlowEvent)

	// CostPerWANByte lets experiments attach a dollar cost to WAN traffic,
	// mirroring cloud egress billing. Zero disables cost accounting.
	CostPerWANByte float64
	wanCost        float64
}

// New returns an empty network on the given kernel with a default inter-site
// latency of 50 ms (a transatlantic RTT/2, matching the paper's
// Grid'5000–FutureGrid setting).
func New(k *sim.Kernel) *Network {
	return &Network{
		K:         k,
		sites:     make(map[string]*Site),
		siteLat:   make(map[[2]string]sim.Time),
		defWANLat: 50 * sim.Millisecond,
		active:    make(map[*Flow]struct{}),
		wanBytes:  make(map[[2]string]int64),
	}
}

// AddSite creates a site with the given WAN uplink/downlink capacities in
// bytes/sec and a default LAN one-way latency of 100µs.
func (n *Network) AddSite(name string, wanUp, wanDown float64) *Site {
	if _, dup := n.sites[name]; dup {
		panic("simnet: duplicate site " + name)
	}
	s := &Site{
		Name:    name,
		Up:      newLink(name+"/wan-up", wanUp),
		Down:    newLink(name+"/wan-down", wanDown),
		LANLat:  100 * sim.Microsecond,
		nodes:   make(map[string]*Node),
		network: n,
	}
	n.sites[name] = s
	return s
}

// Site returns a site by name, or nil.
func (n *Network) Site(name string) *Site { return n.sites[name] }

// Sites returns all sites sorted by name.
func (n *Network) Sites() []*Site {
	out := make([]*Site, 0, len(n.sites))
	for _, s := range n.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetSiteLatency sets the one-way latency between two sites (both directions).
func (n *Network) SetSiteLatency(a, b string, lat sim.Time) {
	n.siteLat[[2]string{a, b}] = lat
	n.siteLat[[2]string{b, a}] = lat
}

// SetDefaultWANLatency sets the latency used for site pairs without an
// explicit SetSiteLatency entry.
func (n *Network) SetDefaultWANLatency(lat sim.Time) { n.defWANLat = lat }

// AddNode creates a node on the site with a NIC of nicBW bytes/sec.
func (s *Site) AddNode(id string, nicBW float64) *Node {
	if _, dup := s.nodes[id]; dup {
		panic("simnet: duplicate node " + id + " on site " + s.Name)
	}
	node := &Node{
		ID:   id,
		Site: s,
		Out:  newLink(id+"/out", nicBW),
		In:   newLink(id+"/in", nicBW),
	}
	s.nodes[id] = node
	return node
}

// Node returns a node by ID on the site, or nil.
func (s *Site) Node(id string) *Node { return s.nodes[id] }

// Observe registers a callback invoked on every flow start and completion.
func (n *Network) Observe(fn func(FlowEvent)) { n.observers = append(n.observers, fn) }

func (n *Network) emit(ev FlowEvent) {
	for _, o := range n.observers {
		o(ev)
	}
}

// PathLatency returns the one-way latency between two nodes.
func (n *Network) PathLatency(src, dst *Node) sim.Time {
	if src.Site == dst.Site {
		return src.Site.LANLat
	}
	if lat, ok := n.siteLat[[2]string{src.Site.Name, dst.Site.Name}]; ok {
		return lat
	}
	return n.defWANLat
}

func (n *Network) path(src, dst *Node) []*Link {
	if src == dst {
		return []*Link{src.Out} // loopback: NIC-bound local copy
	}
	if src.Site == dst.Site {
		return []*Link{src.Out, dst.In}
	}
	return []*Link{src.Out, src.Site.Up, dst.Site.Down, dst.In}
}

// BottleneckBW returns the minimum capacity along the path, ignoring
// contention. Used for sizing control-message serialisation delay.
func (n *Network) BottleneckBW(src, dst *Node) float64 {
	min := math.Inf(1)
	for _, l := range n.path(src, dst) {
		if l.Capacity < min {
			min = l.Capacity
		}
	}
	return min
}

// SendMessage delivers a control message of the given size after propagation
// latency plus uncontended serialisation delay, then invokes fn. Control
// messages are deliberately not subject to fair sharing: the real systems
// send them over separate low-volume TCP connections whose impact on bulk
// transfers is negligible.
func (n *Network) SendMessage(src, dst *Node, bytes int64, fn func()) {
	delay := n.PathLatency(src, dst) + sim.FromSeconds(float64(bytes)/n.BottleneckBW(src, dst))
	if src.Site != dst.Site {
		n.accountWAN(src.Site.Name, dst.Site.Name, bytes)
	}
	n.K.Schedule(delay, fn)
}

// StartFlow begins a bulk transfer of bytes from src to dst. onDone runs when
// the last byte arrives (transfer completion plus one-way latency). Zero-byte
// flows complete after latency alone.
func (n *Network) StartFlow(src, dst *Node, bytes int64, tag string, onDone func()) *Flow {
	if bytes < 0 {
		panic("simnet: negative flow size")
	}
	f := &Flow{
		Src: src, Dst: dst, Tag: tag,
		total:     bytes,
		remaining: float64(bytes),
		last:      n.K.Now(),
		latency:   n.PathLatency(src, dst),
		links:     n.path(src, dst),
		done:      onDone,
		network:   n,
	}
	n.emit(FlowEvent{Start: true, Src: src, Dst: dst, Bytes: bytes, Tag: tag, At: n.K.Now()})
	if bytes == 0 {
		f.finished = true
		n.K.Schedule(f.latency, func() {
			n.emit(FlowEvent{Src: src, Dst: dst, Bytes: 0, Tag: tag, At: n.K.Now()})
			if onDone != nil {
				onDone()
			}
		})
		return f
	}
	n.advanceAll()
	n.active[f] = struct{}{}
	for _, l := range f.links {
		l.flows[f] = struct{}{}
	}
	n.recomputeAndReschedule()
	return f
}

// Cancel aborts an in-flight flow; bytes already carried stay accounted.
// onDone is not invoked. Cancelling a finished flow is a no-op.
func (f *Flow) Cancel() {
	if f.finished {
		return
	}
	n := f.network
	n.advanceAll()
	f.finish(false)
	n.recomputeAndReschedule()
}

// finish removes the flow from the network and accounts its carried bytes.
// advanceAll must have been called by the caller.
func (f *Flow) finish(completed bool) {
	n := f.network
	f.finished = true
	if f.completion != nil {
		f.completion.Cancel()
		f.completion = nil
	}
	delete(n.active, f)
	carried := f.total - f.Remaining()
	if completed {
		carried = f.total
	}
	for _, l := range f.links {
		delete(l.flows, f)
		l.Bytes += carried
	}
	if f.Src.Site != f.Dst.Site {
		n.accountWAN(f.Src.Site.Name, f.Dst.Site.Name, carried)
	}
	n.emit(FlowEvent{Src: f.Src, Dst: f.Dst, Bytes: carried, Tag: f.Tag, At: n.K.Now()})
	if completed && f.done != nil {
		done := f.done
		n.K.Schedule(f.latency, done)
	}
}

func (n *Network) accountWAN(src, dst string, bytes int64) {
	n.wanBytes[[2]string{src, dst}] += bytes
	n.wanCost += float64(bytes) * n.CostPerWANByte
}

// WANBytes returns completed bytes sent from site a to site b.
func (n *Network) WANBytes(a, b string) int64 { return n.wanBytes[[2]string{a, b}] }

// TotalWANBytes returns completed bytes over all site pairs.
func (n *Network) TotalWANBytes() int64 {
	var sum int64
	for _, v := range n.wanBytes {
		sum += v
	}
	return sum
}

// WANCost returns the accumulated WAN billing cost.
func (n *Network) WANCost() float64 { return n.wanCost }

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.active) }

// advanceAll progresses every active flow's remaining bytes to the current
// virtual time at its last computed rate.
func (n *Network) advanceAll() {
	now := n.K.Now()
	for f := range n.active {
		dt := (now - f.last).Seconds()
		if dt > 0 {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.last = now
	}
}

// recomputeAndReschedule runs max-min fair sharing over all active flows and
// reschedules each flow's completion event.
func (n *Network) recomputeAndReschedule() {
	if len(n.active) == 0 {
		return
	}
	// Max-min water filling. Iteratively find the most contended link,
	// freeze its flows at the fair share, and remove their demand.
	type linkState struct {
		rem      float64
		unfrozen int
	}
	states := make(map[*Link]*linkState)
	for f := range n.active {
		for _, l := range f.links {
			if _, ok := states[l]; !ok {
				states[l] = &linkState{rem: l.Capacity}
			}
		}
	}
	for f := range n.active {
		f.rate = -1 // unfrozen marker
		for _, l := range f.links {
			states[l].unfrozen++
		}
	}
	frozen := 0
	for frozen < len(n.active) {
		// Find bottleneck link: minimal fair share among links with
		// unfrozen flows.
		var bottleneck *Link
		share := math.Inf(1)
		for l, st := range states {
			if st.unfrozen == 0 {
				continue
			}
			s := st.rem / float64(st.unfrozen)
			if s < share || (s == share && (bottleneck == nil || l.Name < bottleneck.Name)) {
				share, bottleneck = s, l
			}
		}
		if bottleneck == nil {
			break
		}
		if share < 0 {
			share = 0
		}
		for f := range bottleneck.flows {
			if f.rate >= 0 {
				continue
			}
			f.rate = share
			for _, l := range f.links {
				st := states[l]
				st.rem -= share
				if st.rem < 0 {
					st.rem = 0
				}
				st.unfrozen--
			}
			frozen++
		}
	}
	// Reschedule completions deterministically (sorted for reproducibility).
	flows := make([]*Flow, 0, len(n.active))
	for f := range n.active {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Src.ID != flows[j].Src.ID {
			return flows[i].Src.ID < flows[j].Src.ID
		}
		if flows[i].Dst.ID != flows[j].Dst.ID {
			return flows[i].Dst.ID < flows[j].Dst.ID
		}
		return flows[i].Tag < flows[j].Tag
	})
	for _, f := range flows {
		if f.completion != nil {
			f.completion.Cancel()
			f.completion = nil
		}
		if f.rate <= 0 {
			// Starved flow: no capacity. It stays active and will be
			// rescheduled when contention changes.
			continue
		}
		eta := sim.FromSeconds(f.remaining / f.rate)
		if eta < 0 {
			eta = 0
		}
		f := f
		f.completion = n.K.Schedule(eta, func() {
			n.advanceAll()
			f.finish(true)
			n.recomputeAndReschedule()
		})
	}
}
