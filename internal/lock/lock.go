// Package lock provides drop-in replacements for sync.Mutex and
// sync.RWMutex that count how often callers actually had to wait. The
// fast path is one TryLock plus one atomic add — cheap enough for the
// capacity ledger's per-operation guard — and the counters can be exported
// through an obs.Registry as the `sky_lock_*` families, so lock contention
// on shared structures (the ledger under a parallel scheduler, the
// scheduler's external API surface) is observable instead of guessed at.
//
// The shape follows the instrumented-lock pattern from the spiderpool
// exemplar cited in ROADMAP: embed the sync primitive, count the slow
// path, keep zero-value usability.
package lock

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// counters is the shared bookkeeping of Mutex and RWMutex. The obs
// instruments are nil until Instrument is called; obs methods are nil-safe
// so uninstrumented locks pay only the local atomics.
type counters struct {
	acquisitions atomic.Int64
	contentions  atomic.Int64
	acqC         *obs.Counter
	contC        *obs.Counter
}

func (c *counters) acquired() {
	c.acquisitions.Add(1)
	c.acqC.Inc()
}

func (c *counters) contended() {
	c.contentions.Add(1)
	c.contC.Inc()
}

func (c *counters) instrument(reg *obs.Registry, name string) {
	if reg == nil {
		return
	}
	c.acqC = reg.CounterVec("sky_lock_acquisitions_total",
		"Lock acquisitions by instrumented lock.", "lock").With(name)
	c.contC = reg.CounterVec("sky_lock_contentions_total",
		"Lock acquisitions that had to wait, by instrumented lock.", "lock").With(name)
}

// Mutex is a sync.Mutex that counts acquisitions and contended
// acquisitions (those whose initial TryLock failed). The zero value is
// ready to use.
type Mutex struct {
	mu sync.Mutex
	c  counters
}

// Lock locks m, counting whether it had to wait.
func (m *Mutex) Lock() {
	if !m.mu.TryLock() {
		m.c.contended()
		m.mu.Lock()
	}
	m.c.acquired()
}

// TryLock attempts the lock without blocking.
func (m *Mutex) TryLock() bool {
	if !m.mu.TryLock() {
		return false
	}
	m.c.acquired()
	return true
}

// Unlock unlocks m.
func (m *Mutex) Unlock() { m.mu.Unlock() }

// Acquisitions returns how many times the lock was taken.
func (m *Mutex) Acquisitions() int64 { return m.c.acquisitions.Load() }

// Contentions returns how many acquisitions had to wait.
func (m *Mutex) Contentions() int64 { return m.c.contentions.Load() }

// Instrument exports the lock's counters through reg as
// sky_lock_acquisitions_total{lock=name} and
// sky_lock_contentions_total{lock=name}.
func (m *Mutex) Instrument(reg *obs.Registry, name string) { m.c.instrument(reg, name) }

// RWMutex is a sync.RWMutex with the same acquisition/contention
// accounting as Mutex, for both the write and the read side. The zero
// value is ready to use.
type RWMutex struct {
	mu sync.RWMutex
	c  counters
}

// Lock takes the write lock, counting whether it had to wait.
func (m *RWMutex) Lock() {
	if !m.mu.TryLock() {
		m.c.contended()
		m.mu.Lock()
	}
	m.c.acquired()
}

// TryLock attempts the write lock without blocking.
func (m *RWMutex) TryLock() bool {
	if !m.mu.TryLock() {
		return false
	}
	m.c.acquired()
	return true
}

// Unlock releases the write lock.
func (m *RWMutex) Unlock() { m.mu.Unlock() }

// RLock takes a read lock, counting whether it had to wait.
func (m *RWMutex) RLock() {
	if !m.mu.TryRLock() {
		m.c.contended()
		m.mu.RLock()
	}
	m.c.acquired()
}

// TryRLock attempts a read lock without blocking.
func (m *RWMutex) TryRLock() bool {
	if !m.mu.TryRLock() {
		return false
	}
	m.c.acquired()
	return true
}

// RUnlock releases a read lock.
func (m *RWMutex) RUnlock() { m.mu.RUnlock() }

// RLocker returns a sync.Locker backed by RLock/RUnlock.
func (m *RWMutex) RLocker() sync.Locker { return rlocker{m} }

type rlocker struct{ m *RWMutex }

func (r rlocker) Lock()   { r.m.RLock() }
func (r rlocker) Unlock() { r.m.RUnlock() }

// Acquisitions returns how many times either side of the lock was taken.
func (m *RWMutex) Acquisitions() int64 { return m.c.acquisitions.Load() }

// Contentions returns how many acquisitions (read or write) had to wait.
func (m *RWMutex) Contentions() int64 { return m.c.contentions.Load() }

// Instrument exports the lock's counters through reg under the given lock
// label.
func (m *RWMutex) Instrument(reg *obs.Registry, name string) { m.c.instrument(reg, name) }
