package lock

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestMutexCounts(t *testing.T) {
	var m Mutex
	m.Lock()
	if !func() bool { ok := m.TryLock(); return !ok }() {
		t.Fatal("TryLock succeeded on a held mutex")
	}
	m.Unlock()
	m.Lock()
	m.Unlock()
	if got := m.Acquisitions(); got != 2 {
		t.Fatalf("acquisitions = %d, want 2", got)
	}
	if got := m.Contentions(); got != 0 {
		t.Fatalf("contentions = %d, want 0", got)
	}
}

func TestMutexContentionCounted(t *testing.T) {
	var m Mutex
	reg := obs.NewRegistry()
	m.Instrument(reg, "test")
	m.Lock()
	done := make(chan struct{})
	go func() {
		m.Lock() // must wait: counted as contended
		m.Unlock()
		close(done)
	}()
	// Wait until the goroutine is blocked on the lock, then release.
	for m.Contentions() == 0 {
	}
	m.Unlock()
	<-done
	if got := m.Contentions(); got != 1 {
		t.Fatalf("contentions = %d, want 1", got)
	}
	if got := reg.Value("sky_lock_contentions_total", "test"); got != 1 {
		t.Fatalf("sky_lock_contentions_total{lock=test} = %v, want 1", got)
	}
	if got := reg.Value("sky_lock_acquisitions_total", "test"); got != 2 {
		t.Fatalf("sky_lock_acquisitions_total{lock=test} = %v, want 2", got)
	}
}

func TestRWMutexConcurrent(t *testing.T) {
	var m RWMutex
	m.Instrument(obs.NewRegistry(), "rw")
	var wg sync.WaitGroup
	shared := 0
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				m.Lock()
				shared++
				m.Unlock()
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				m.RLock()
				_ = shared
				m.RUnlock()
			}
		}()
	}
	wg.Wait()
	if shared != 8*200 {
		t.Fatalf("shared = %d, want %d", shared, 8*200)
	}
	if m.Acquisitions() < int64(8*400) {
		t.Fatalf("acquisitions = %d, want >= %d", m.Acquisitions(), 8*400)
	}
}

func TestRWMutexTryRLock(t *testing.T) {
	var m RWMutex
	m.Lock()
	if m.TryRLock() {
		t.Fatal("TryRLock succeeded under a write lock")
	}
	m.Unlock()
	if !m.TryRLock() {
		t.Fatal("TryRLock failed on a free lock")
	}
	m.RUnlock()
	l := m.RLocker()
	l.Lock()
	l.Unlock()
}
