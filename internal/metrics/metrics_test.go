package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesStats(t *testing.T) {
	s := Series{4, 2, 8, 6}
	if s.Mean() != 5 {
		t.Fatalf("mean %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Fatalf("min/max %v %v", s.Min(), s.Max())
	}
	if d := s.Stddev(); d < 2.23 || d > 2.24 {
		t.Fatalf("stddev %v", d)
	}
	if p := s.Percentile(50); p != 4 {
		t.Fatalf("p50 %v", p)
	}
	if p := s.Percentile(100); p != 8 {
		t.Fatalf("p100 %v", p)
	}
	if p := s.Percentile(0); p != 2 {
		t.Fatalf("p0 %v", p)
	}
}

func TestEmptySeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty series stats should be zero")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T1", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	out := tb.String()
	if !strings.Contains(out, "T1") || !strings.Contains(out, "alpha") ||
		!strings.Contains(out, "2.50") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("M", "a", "b")
	tb.AddRow("x", "y")
	md := tb.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| x | y |") ||
		!strings.Contains(md, "| --- | --- |") {
		t.Fatalf("markdown:\n%s", md)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Fatalf("ragged row lost: %s", out)
	}
}

func TestFormatters(t *testing.T) {
	if FmtBytes(3<<20) != "3.0 MiB" {
		t.Fatalf("FmtBytes: %s", FmtBytes(3<<20))
	}
	if FmtPct(0.375) != "37.5%" {
		t.Fatalf("FmtPct: %s", FmtPct(0.375))
	}
}

// Property: Min <= Percentile(p) <= Max for any series and p.
func TestPropPercentileBounds(t *testing.T) {
	f := func(vals []float64, p uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if v != v { // NaN breaks ordering; skip
				return true
			}
		}
		s := Series(vals)
		pct := s.Percentile(float64(p % 101))
		return pct >= s.Min() && pct <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
