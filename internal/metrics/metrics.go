// Package metrics provides the small statistics and table-rendering
// helpers the experiment harness uses to print paper-style result tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is an ordered collection of float64 samples.
type Series []float64

// Mean returns the arithmetic mean (0 for empty series).
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Min returns the smallest sample (0 for empty series).
func (s Series) Min() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample (0 for empty series).
func (s Series) Max() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Stddev returns the population standard deviation.
func (s Series) Stddev() float64 {
	if len(s) < 2 {
		return 0
	}
	mean := s.Mean()
	var acc float64
	for _, v := range s {
		d := v - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(s)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy.
func (s Series) Percentile(p float64) float64 {
	if len(s) == 0 {
		return 0
	}
	c := append(Series(nil), s...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(c)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c[rank]
}

// Table renders fixed-width ASCII tables, the harness' output format.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v, floats with 2 decimals.
func (t *Table) AddRowf(cells ...any) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			s[i] = fmt.Sprintf("%.2f", v)
		case float32:
			s[i] = fmt.Sprintf("%.2f", v)
		default:
			s[i] = fmt.Sprintf("%v", c)
		}
	}
	t.AddRow(s...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown (used to generate
// EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}

// FmtBytes renders a byte count in MiB with 1 decimal.
func FmtBytes(b int64) string { return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20)) }

// FmtPct renders a fraction as a percentage.
func FmtPct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
