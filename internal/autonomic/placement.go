// Package autonomic implements §III-C's adaptation layer: policies that
// decide when to relocate VMs between clouds (price, availability, deadline
// pressure) and a communication-aware placement algorithm that keeps
// chatty VMs co-located to limit traffic crossing cloud boundaries — the
// two reasons the paper gives being WAN latency and inter-cloud billing.
package autonomic

import (
	"sort"

	"repro/internal/netmon"
)

// Assignment maps VM name to site name.
type Assignment map[string]string

// CutBytes returns the traffic crossing site boundaries under an
// assignment — the objective communication-aware placement minimises.
func CutBytes(a Assignment, traffic netmon.Matrix) int64 {
	var cut int64
	for e, b := range traffic {
		sa, oka := a[e[0]]
		sb, okb := a[e[1]]
		if oka && okb && sa != sb {
			cut += b
		}
	}
	return cut
}

// PlaceRoundRobin is the communication-oblivious baseline: VMs are spread
// over sites in order, respecting capacity.
func PlaceRoundRobin(vms []string, sites []string, capacity map[string]int) Assignment {
	out := make(Assignment, len(vms))
	left := make(map[string]int, len(capacity))
	for s, c := range capacity {
		left[s] = c
	}
	si := 0
	for _, v := range vms {
		placed := false
		for try := 0; try < len(sites); try++ {
			s := sites[(si+try)%len(sites)]
			if left[s] > 0 {
				out[v] = s
				left[s]--
				si = (si + try + 1) % len(sites)
				placed = true
				break
			}
		}
		if !placed {
			break // out of capacity; partial assignment
		}
	}
	return out
}

// PlaceCommunicationAware greedily partitions VMs across sites to minimise
// cross-site traffic: VMs are considered in order of decreasing total
// traffic; each goes to the site where it has the most affinity (bytes
// exchanged with VMs already placed there), subject to capacity. fixed
// entries pin VMs to sites (e.g. VMs that cannot migrate).
func PlaceCommunicationAware(vms []string, traffic netmon.Matrix, sites []string,
	capacity map[string]int, fixed Assignment) Assignment {

	out := make(Assignment, len(vms))
	left := make(map[string]int, len(capacity))
	for s, c := range capacity {
		left[s] = c
	}
	for v, s := range fixed {
		out[v] = s
		left[s]--
	}
	// Total traffic per VM, for ordering.
	vol := make(map[string]int64, len(vms))
	for e, b := range traffic {
		vol[e[0]] += b
		vol[e[1]] += b
	}
	order := append([]string(nil), vms...)
	sort.Slice(order, func(i, j int) bool {
		if vol[order[i]] != vol[order[j]] {
			return vol[order[i]] > vol[order[j]]
		}
		return order[i] < order[j]
	})
	affinity := func(v, site string) int64 {
		var a int64
		for other, s := range out {
			if s != site {
				continue
			}
			a += traffic[[2]string{v, other}] + traffic[[2]string{other, v}]
		}
		return a
	}
	for _, v := range order {
		if _, done := out[v]; done {
			continue
		}
		bestSite := ""
		var bestAff int64 = -1
		bestLeft := -1
		for _, s := range sites {
			if left[s] <= 0 {
				continue
			}
			a := affinity(v, s)
			// Prefer affinity; tie-break on most free capacity (spread),
			// then site name (determinism).
			if a > bestAff || (a == bestAff && left[s] > bestLeft) {
				bestSite, bestAff, bestLeft = s, a, left[s]
			}
		}
		if bestSite == "" {
			break // capacity exhausted
		}
		out[v] = bestSite
		left[bestSite]--
	}
	return out
}

// RefineKL performs a bounded Kernighan–Lin-style refinement pass: consider
// swapping pairs of VMs on different sites and apply swaps that reduce the
// cut, up to maxSwaps. Returns the improved assignment (in place) and the
// number of swaps applied.
func RefineKL(a Assignment, traffic netmon.Matrix, maxSwaps int) int {
	vms := make([]string, 0, len(a))
	for v := range a {
		vms = append(vms, v)
	}
	sort.Strings(vms)
	swaps := 0
	improved := true
	for improved && swaps < maxSwaps {
		improved = false
		base := CutBytes(a, traffic)
		for i := 0; i < len(vms) && swaps < maxSwaps; i++ {
			for j := i + 1; j < len(vms); j++ {
				vi, vj := vms[i], vms[j]
				if a[vi] == a[vj] {
					continue
				}
				a[vi], a[vj] = a[vj], a[vi]
				if c := CutBytes(a, traffic); c < base {
					base = c
					swaps++
					improved = true
					if swaps >= maxSwaps {
						break
					}
					continue
				}
				a[vi], a[vj] = a[vj], a[vi] // revert
			}
		}
	}
	return swaps
}
