package autonomic

import (
	"fmt"
	"sort"

	"repro/internal/netmon"
	"repro/internal/sim"
)

// State is the monitoring snapshot policies evaluate: per-site prices and
// free capacity, current VM placement, and the observed traffic matrix
// (from the netmon detector — this is where §III-C's two systems meet).
type State struct {
	Now       sim.Time
	Sites     []string
	Price     map[string]float64 // $/core-hour
	FreeCores map[string]int
	VMSite    Assignment
	VMCores   map[string]int
	Traffic   netmon.Matrix
	// Deadline pressure: predicted completion vs deadline per job (used by
	// the deadline policy; filled by the EMR service).
	PredictedLate map[string]sim.Time // job -> predicted overrun
}

// Action is a proposed relocation.
type Action struct {
	VM     string
	From   string
	To     string
	Reason string
}

func (a Action) String() string {
	return fmt.Sprintf("migrate %s: %s -> %s (%s)", a.VM, a.From, a.To, a.Reason)
}

// Policy proposes relocations from a monitoring snapshot.
type Policy interface {
	Name() string
	Evaluate(s *State) []Action
}

// CostPolicy migrates VMs away from sites whose price exceeds the cheapest
// alternative by more than Threshold (relative), up to the destination's
// free capacity. §III-C reason 2: "changes in resource cost".
type CostPolicy struct {
	// Threshold is the minimum relative saving to justify a move (e.g.
	// 0.3 = only move for a >=30% cheaper site, hysteresis against churn).
	Threshold float64
}

// Name implements Policy.
func (CostPolicy) Name() string { return "cost" }

// Evaluate implements Policy.
func (p CostPolicy) Evaluate(s *State) []Action {
	if len(s.Sites) < 2 {
		return nil
	}
	cheapest := s.Sites[0]
	for _, site := range s.Sites {
		if s.Price[site] < s.Price[cheapest] {
			cheapest = site
		}
	}
	free := s.FreeCores[cheapest]
	var acts []Action
	for _, v := range sortedVMs(s.VMSite) {
		site := s.VMSite[v]
		if site == cheapest {
			continue
		}
		if s.Price[site] <= 0 {
			continue
		}
		saving := 1 - s.Price[cheapest]/s.Price[site]
		if saving < p.Threshold {
			continue
		}
		cores := s.VMCores[v]
		if cores == 0 {
			cores = 1
		}
		if free < cores {
			continue
		}
		free -= cores
		acts = append(acts, Action{VM: v, From: site, To: cheapest,
			Reason: fmt.Sprintf("cost: %.0f%% cheaper at %s", saving*100, cheapest)})
	}
	return acts
}

// AvailabilityPolicy drains VMs from sites whose free capacity dropped
// below LowWatermark cores (the provider is reclaiming resources, or local
// demand grew), moving them to the site with the most headroom. §III-C
// reason 1: "changes in resource availability".
type AvailabilityPolicy struct {
	LowWatermark int
}

// Name implements Policy.
func (AvailabilityPolicy) Name() string { return "availability" }

// Evaluate implements Policy.
func (p AvailabilityPolicy) Evaluate(s *State) []Action {
	if len(s.Sites) < 2 {
		return nil
	}
	roomiest := s.Sites[0]
	for _, site := range s.Sites {
		if s.FreeCores[site] > s.FreeCores[roomiest] {
			roomiest = site
		}
	}
	free := s.FreeCores[roomiest]
	var acts []Action
	for _, v := range sortedVMs(s.VMSite) {
		site := s.VMSite[v]
		if site == roomiest || s.FreeCores[site] >= p.LowWatermark {
			continue
		}
		cores := s.VMCores[v]
		if cores == 0 {
			cores = 1
		}
		if free-cores < p.LowWatermark {
			continue // don't push the destination under water
		}
		free -= cores
		acts = append(acts, Action{VM: v, From: site, To: roomiest,
			Reason: fmt.Sprintf("availability: %s below %d free cores", site, p.LowWatermark)})
	}
	return acts
}

// CommunicationPolicy proposes moves that reduce cross-site traffic using
// the observed traffic matrix: it recomputes a communication-aware
// placement and emits the diff if the cut improves by at least MinGain
// bytes. This is the "relocating subsets of a virtual cluster ... taking
// into account communication patterns" mechanism.
type CommunicationPolicy struct {
	MinGain int64
}

// Name implements Policy.
func (CommunicationPolicy) Name() string { return "communication" }

// Evaluate implements Policy.
func (p CommunicationPolicy) Evaluate(s *State) []Action {
	if len(s.Sites) < 2 || len(s.Traffic) == 0 {
		return nil
	}
	capacity := make(map[string]int, len(s.Sites))
	for _, site := range s.Sites {
		capacity[site] = s.FreeCores[site]
	}
	// Current VMs occupy their cores: placement may keep them in place.
	for v, site := range s.VMSite {
		cores := s.VMCores[v]
		if cores == 0 {
			cores = 1
		}
		capacity[site] += cores
	}
	vms := sortedVMs(s.VMSite)
	proposed := PlaceCommunicationAware(vms, s.Traffic, s.Sites, capacity, nil)
	RefineKL(proposed, s.Traffic, 64)
	gain := CutBytes(s.VMSite, s.Traffic) - CutBytes(proposed, s.Traffic)
	if gain < p.MinGain {
		return nil
	}
	var acts []Action
	for _, v := range vms {
		if to, ok := proposed[v]; ok && to != s.VMSite[v] {
			acts = append(acts, Action{VM: v, From: s.VMSite[v], To: to,
				Reason: fmt.Sprintf("communication: cut -%d bytes", gain)})
		}
	}
	return acts
}

func sortedVMs(a Assignment) []string {
	out := make([]string, 0, len(a))
	for v := range a {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Engine periodically evaluates policies against a snapshot provider and
// hands actions to an executor (the federation layer, which performs the
// actual inter-cloud live migrations).
type Engine struct {
	Policies []Policy
	// Snapshot produces the current monitoring state.
	Snapshot func() *State
	// Execute performs one relocation; it returns false if the action was
	// rejected (e.g. destination filled up meanwhile).
	Execute func(Action) bool
	// Cooldown suppresses re-migrating the same VM too soon.
	Cooldown sim.Time

	k          *sim.Kernel
	lastMove   map[string]sim.Time
	cancelTick func()

	// Stats.
	Evaluations int
	Proposed    int
	Executed    int
	Rejected    int
}

// NewEngine builds an engine on the kernel. Call Start to begin the loop.
func NewEngine(k *sim.Kernel, snapshot func() *State, execute func(Action) bool, policies ...Policy) *Engine {
	return &Engine{
		Policies: policies,
		Snapshot: snapshot,
		Execute:  execute,
		Cooldown: 5 * sim.Minute,
		k:        k,
		lastMove: make(map[string]sim.Time),
	}
}

// Start launches periodic evaluation every interval.
func (e *Engine) Start(interval sim.Time) {
	if e.cancelTick != nil {
		return
	}
	e.cancelTick = e.k.Ticker(interval, e.Tick)
}

// Stop halts the loop.
func (e *Engine) Stop() {
	if e.cancelTick != nil {
		e.cancelTick()
		e.cancelTick = nil
	}
}

// Tick runs one evaluation round immediately.
func (e *Engine) Tick() {
	e.Evaluations++
	s := e.Snapshot()
	now := e.k.Now()
	for _, p := range e.Policies {
		for _, a := range p.Evaluate(s) {
			e.Proposed++
			if last, ok := e.lastMove[a.VM]; ok && now-last < e.Cooldown {
				e.Rejected++
				continue
			}
			if e.Execute(a) {
				e.Executed++
				e.lastMove[a.VM] = now
				// Keep the snapshot coherent for subsequent policies in
				// this round.
				s.VMSite[a.VM] = a.To
			} else {
				e.Rejected++
			}
		}
	}
}
