package autonomic

import (
	"testing"
	"testing/quick"

	"repro/internal/netmon"
	"repro/internal/sim"
)

// clusteredTraffic builds two chatty groups: a0..a3 talk among themselves,
// b0..b3 likewise; negligible cross-group chatter.
func clusteredTraffic() (vms []string, m netmon.Matrix) {
	m = make(netmon.Matrix)
	groupA := []string{"a0", "a1", "a2", "a3"}
	groupB := []string{"b0", "b1", "b2", "b3"}
	for _, g := range [][]string{groupA, groupB} {
		for _, x := range g {
			for _, y := range g {
				if x != y {
					m.Add(x, y, 1000)
				}
			}
		}
	}
	m.Add("a0", "b0", 1) // faint cross traffic
	return append(groupA, groupB...), m
}

func TestCommunicationAwareBeatsRoundRobin(t *testing.T) {
	vms, traffic := clusteredTraffic()
	sites := []string{"east", "west"}
	cap := map[string]int{"east": 4, "west": 4}
	rr := PlaceRoundRobin(vms, sites, cap)
	ca := PlaceCommunicationAware(vms, traffic, sites, cap, nil)
	RefineKL(ca, traffic, 100)
	cutRR := CutBytes(rr, traffic)
	cutCA := CutBytes(ca, traffic)
	if cutCA >= cutRR {
		t.Fatalf("comm-aware cut %d not below round-robin %d", cutCA, cutRR)
	}
	// Perfect split keeps only the faint cross edge: 1 byte.
	if cutCA > 2 {
		t.Fatalf("comm-aware cut %d, want <= 2", cutCA)
	}
}

func TestPlacementRespectsCapacity(t *testing.T) {
	vms, traffic := clusteredTraffic()
	sites := []string{"east", "west"}
	cap := map[string]int{"east": 3, "west": 5}
	a := PlaceCommunicationAware(vms, traffic, sites, cap, nil)
	counts := map[string]int{}
	for _, s := range a {
		counts[s]++
	}
	if counts["east"] > 3 || counts["west"] > 5 {
		t.Fatalf("capacity violated: %v", counts)
	}
	if len(a) != 8 {
		t.Fatalf("placed %d of 8", len(a))
	}
}

func TestPlacementHonoursPins(t *testing.T) {
	vms, traffic := clusteredTraffic()
	sites := []string{"east", "west"}
	cap := map[string]int{"east": 8, "west": 8}
	fixed := Assignment{"a0": "west"}
	a := PlaceCommunicationAware(vms, traffic, sites, cap, fixed)
	if a["a0"] != "west" {
		t.Fatal("pin ignored")
	}
	// Affinity should drag the rest of group A to west too.
	for _, v := range []string{"a1", "a2", "a3"} {
		if a[v] != "west" {
			t.Fatalf("%s placed at %s, away from its pinned group", v, a[v])
		}
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	a := PlaceRoundRobin([]string{"v1", "v2", "v3", "v4"}, []string{"s1", "s2"},
		map[string]int{"s1": 10, "s2": 10})
	counts := map[string]int{}
	for _, s := range a {
		counts[s]++
	}
	if counts["s1"] != 2 || counts["s2"] != 2 {
		t.Fatalf("uneven spread: %v", counts)
	}
}

func TestRefineKLImprovesBadAssignment(t *testing.T) {
	_, traffic := clusteredTraffic()
	// Deliberately interleaved (worst case) assignment.
	bad := Assignment{"a0": "east", "a1": "west", "a2": "east", "a3": "west",
		"b0": "east", "b1": "west", "b2": "east", "b3": "west"}
	before := CutBytes(bad, traffic)
	swaps := RefineKL(bad, traffic, 100)
	after := CutBytes(bad, traffic)
	if swaps == 0 || after >= before {
		t.Fatalf("KL refinement: swaps=%d cut %d -> %d", swaps, before, after)
	}
}

func TestCutBytesIgnoresUnknownVMs(t *testing.T) {
	m := netmon.Matrix{{"x", "y"}: 100}
	a := Assignment{"x": "east"} // y unplaced
	if CutBytes(a, m) != 0 {
		t.Fatal("cut counted an edge with an unplaced endpoint")
	}
}

func TestCostPolicyMovesToCheaper(t *testing.T) {
	s := &State{
		Sites:     []string{"east", "west"},
		Price:     map[string]float64{"east": 0.10, "west": 0.04},
		FreeCores: map[string]int{"east": 0, "west": 8},
		VMSite:    Assignment{"v1": "east", "v2": "east", "v3": "west"},
		VMCores:   map[string]int{"v1": 2, "v2": 2, "v3": 2},
	}
	acts := CostPolicy{Threshold: 0.3}.Evaluate(s)
	if len(acts) != 2 {
		t.Fatalf("actions %v", acts)
	}
	for _, a := range acts {
		if a.To != "west" || a.From != "east" {
			t.Fatalf("bad action %v", a)
		}
	}
}

func TestCostPolicyHysteresis(t *testing.T) {
	s := &State{
		Sites:     []string{"east", "west"},
		Price:     map[string]float64{"east": 0.10, "west": 0.09}, // only 10% cheaper
		FreeCores: map[string]int{"east": 0, "west": 8},
		VMSite:    Assignment{"v1": "east"},
		VMCores:   map[string]int{"v1": 1},
	}
	if acts := (CostPolicy{Threshold: 0.3}).Evaluate(s); len(acts) != 0 {
		t.Fatalf("hysteresis failed: %v", acts)
	}
}

func TestCostPolicyRespectsCapacity(t *testing.T) {
	s := &State{
		Sites:     []string{"east", "west"},
		Price:     map[string]float64{"east": 0.10, "west": 0.01},
		FreeCores: map[string]int{"east": 0, "west": 3},
		VMSite:    Assignment{"v1": "east", "v2": "east"},
		VMCores:   map[string]int{"v1": 2, "v2": 2},
	}
	acts := CostPolicy{Threshold: 0.1}.Evaluate(s)
	if len(acts) != 1 {
		t.Fatalf("capacity-bounded actions: %v", acts)
	}
}

func TestAvailabilityPolicyDrains(t *testing.T) {
	s := &State{
		Sites:     []string{"east", "west"},
		FreeCores: map[string]int{"east": 1, "west": 20},
		VMSite:    Assignment{"v1": "east", "v2": "west"},
		VMCores:   map[string]int{"v1": 2, "v2": 2},
	}
	acts := AvailabilityPolicy{LowWatermark: 4}.Evaluate(s)
	if len(acts) != 1 || acts[0].VM != "v1" || acts[0].To != "west" {
		t.Fatalf("actions %v", acts)
	}
}

func TestCommunicationPolicyProposesRegrouping(t *testing.T) {
	vms, traffic := clusteredTraffic()
	// Interleaved current placement.
	cur := Assignment{}
	for i, v := range vms {
		if i%2 == 0 {
			cur[v] = "east"
		} else {
			cur[v] = "west"
		}
	}
	s := &State{
		Sites:     []string{"east", "west"},
		FreeCores: map[string]int{"east": 0, "west": 0},
		VMSite:    cur,
		VMCores:   map[string]int{},
		Traffic:   traffic,
	}
	acts := CommunicationPolicy{MinGain: 1000}.Evaluate(s)
	if len(acts) == 0 {
		t.Fatal("no regrouping proposed for interleaved chatty groups")
	}
	// Applying the actions must reduce the cut.
	after := Assignment{}
	for v, site := range cur {
		after[v] = site
	}
	for _, a := range acts {
		after[a.VM] = a.To
	}
	if CutBytes(after, traffic) >= CutBytes(cur, traffic) {
		t.Fatal("proposed actions do not reduce the cut")
	}
}

func TestEngineExecutesAndCoolsDown(t *testing.T) {
	k := sim.NewKernel(1)
	price := map[string]float64{"east": 0.10, "west": 0.02}
	vmSite := Assignment{"v1": "east"}
	snapshot := func() *State {
		vs := Assignment{}
		for v, s := range vmSite {
			vs[v] = s
		}
		return &State{
			Sites: []string{"east", "west"}, Price: price,
			FreeCores: map[string]int{"east": 4, "west": 4},
			VMSite:    vs, VMCores: map[string]int{"v1": 1},
		}
	}
	moves := 0
	eng := NewEngine(k, snapshot, func(a Action) bool {
		moves++
		vmSite[a.VM] = a.To
		return true
	}, CostPolicy{Threshold: 0.3})
	eng.Cooldown = 10 * sim.Minute
	eng.Start(time30s)
	// After the move, flip prices so the policy wants to move back, but the
	// cooldown must hold it for 10 minutes.
	k.Schedule(2*sim.Minute, func() { price["east"], price["west"] = 0.02, 0.10 })
	k.RunUntil(5 * sim.Minute)
	eng.Stop()
	if moves != 1 {
		t.Fatalf("moves=%d within cooldown window, want 1", moves)
	}
	if eng.Rejected == 0 {
		t.Fatal("cooldown rejections not counted")
	}
	if eng.Evaluations == 0 || eng.Proposed < 2 {
		t.Fatalf("engine stats: %+v", eng)
	}
}

const time30s = 30 * sim.Second

func TestEngineExecuteRejection(t *testing.T) {
	k := sim.NewKernel(1)
	snapshot := func() *State {
		return &State{
			Sites:     []string{"east", "west"},
			Price:     map[string]float64{"east": 0.10, "west": 0.02},
			FreeCores: map[string]int{"east": 4, "west": 4},
			VMSite:    Assignment{"v1": "east"},
			VMCores:   map[string]int{"v1": 1},
		}
	}
	eng := NewEngine(k, snapshot, func(Action) bool { return false }, CostPolicy{Threshold: 0.3})
	eng.Tick()
	if eng.Executed != 0 || eng.Rejected != 1 {
		t.Fatalf("stats %+v", eng)
	}
}

// Property: communication-aware placement never produces a worse cut than
// round-robin on the same instance (with equal capacities).
func TestPropCommAwareNeverWorse(t *testing.T) {
	f := func(seedEdges []uint16) bool {
		vms := []string{"v0", "v1", "v2", "v3", "v4", "v5"}
		traffic := make(netmon.Matrix)
		for i, e := range seedEdges {
			if len(traffic) > 20 {
				break
			}
			a := vms[int(e)%len(vms)]
			b := vms[(int(e)/7)%len(vms)]
			if a != b {
				traffic.Add(a, b, int64(e%977)+1)
			}
			_ = i
		}
		sites := []string{"s1", "s2"}
		cap := map[string]int{"s1": 3, "s2": 3}
		rr := PlaceRoundRobin(vms, sites, cap)
		ca := PlaceCommunicationAware(vms, traffic, sites, cap, nil)
		RefineKL(ca, traffic, 50)
		return CutBytes(ca, traffic) <= CutBytes(rr, traffic)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
