// Package migration implements live virtual machine migration over the
// simulated network: the classic iterative pre-copy algorithm (Clark et al.
// NSDI'05, as shipped in KVM), the Shrinker variant that deduplicates page
// and disk content across the WAN using a destination-site content registry
// (§III-A of the paper), a suspend/resume baseline (Sapuntzakis et al.
// OSDI'02), and an orchestrator that migrates whole virtual clusters.
package migration

import (
	"fmt"

	"repro/internal/dedup"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vm"
)

// Options configures one migration.
type Options struct {
	// Registry enables Shrinker-style deduplication when non-nil: page
	// hashes are looked up at the destination; only misses ship page
	// bodies. The registry's scope (node vs site) is the A1 ablation.
	Registry *dedup.Registry

	// MigrateDisk transfers the VM's disk image as well (required for WAN
	// migrations without shared storage; §III intro lists this as why LAN
	// techniques fail over WANs).
	MigrateDisk bool

	// DedupDisk applies the registry to disk blocks too (Shrinker
	// exploits identical data "both in memory and on disk").
	DedupDisk bool

	// MaxRounds bounds pre-copy iterations before forcing stop-and-copy.
	// Zero means 30 (the KVM default era value).
	MaxRounds int

	// StopCopyPages: when the dirty set is at most this many pages, the VM
	// is paused and the remainder copied. Zero means 256 pages (1 MiB).
	StopCopyPages int

	// ActivationDelay models device re-attachment and guest resume at the
	// destination. Zero means 20 ms.
	ActivationDelay sim.Time

	// DedupPageOverhead is the per-page CPU cost of hashing, registry
	// lookup, and indexing when Registry is enabled. This is why the
	// paper's measured migration-*time* saving (~20%) trails its
	// bandwidth saving (30-40%). Zero means 8 µs/page.
	DedupPageOverhead sim.Time
}

func (o Options) withDefaults() Options {
	if o.MaxRounds == 0 {
		o.MaxRounds = 30
	}
	if o.StopCopyPages == 0 {
		o.StopCopyPages = 256
	}
	if o.ActivationDelay == 0 {
		o.ActivationDelay = 20 * sim.Millisecond
	}
	if o.DedupPageOverhead == 0 {
		o.DedupPageOverhead = 8 * sim.Microsecond
	}
	return o
}

// dedupDelay returns the hashing/lookup compute time for n items under the
// options (zero when dedup is off).
func (o Options) dedupDelay(n int) sim.Time {
	if o.Registry == nil {
		return 0
	}
	return o.DedupPageOverhead * sim.Time(n)
}

// Result reports one VM migration.
type Result struct {
	VM       string
	Workload string
	Method   string // "precopy", "shrinker", "suspend-resume"

	TotalTime sim.Time // request to resumed-at-destination
	Downtime  sim.Time // paused to resumed

	Rounds int

	// Byte accounting. RawBytes is what a dedup-free migration of the same
	// page/block stream would have shipped; WireBytes is what actually
	// crossed the network (hashes + missed bodies). The paper's
	// "30-40 % bandwidth reduction" compares these two.
	RawBytes  int64
	WireBytes int64

	PagesSent     int64 // page bodies shipped
	PagesDeduped  int64 // pages satisfied by hash alone
	BlocksSent    int64
	BlocksDeduped int64

	Err error
}

// BandwidthSaving returns 1 - WireBytes/RawBytes.
func (r Result) BandwidthSaving() float64 {
	if r.RawBytes == 0 {
		return 0
	}
	return 1 - float64(r.WireBytes)/float64(r.RawBytes)
}

func (r Result) String() string {
	return fmt.Sprintf("%s[%s/%s]: total=%v downtime=%v rounds=%d wire=%dMB raw=%dMB saving=%.1f%%",
		r.VM, r.Method, r.Workload, r.TotalTime, r.Downtime, r.Rounds,
		r.WireBytes>>20, r.RawBytes>>20, 100*r.BandwidthSaving())
}

// transferPlan prices a batch of contents: wire bytes with/without dedup.
type transferPlan struct {
	raw, wire     int64
	sent, deduped int64
	unit          int64
}

func planContents(contents []vm.ContentID, unit int64, reg *dedup.Registry) transferPlan {
	p := transferPlan{unit: unit}
	for _, c := range contents {
		p.raw += unit
		if reg == nil {
			p.wire += unit
			p.sent++
			continue
		}
		if reg.Lookup(c) {
			p.wire += vm.HashSize
			p.deduped++
		} else {
			p.wire += vm.HashSize + unit
			p.sent++
			reg.Register(c)
		}
	}
	return p
}

// Live performs an iterative pre-copy live migration of v from src to dst.
// The result arrives via onDone. The VM's attached workload keeps dirtying
// memory during pre-copy rounds and stops while the VM is paused.
func Live(net *simnet.Network, v *vm.VM, src, dst *simnet.Node, opts Options, onDone func(Result)) {
	opts = opts.withDefaults()
	k := net.K
	method := "precopy"
	if opts.Registry != nil {
		method = "shrinker"
	}
	res := Result{VM: v.Name, Method: method}
	if w := v.Workload(); w != nil {
		res.Workload = w.Name
	}
	start := k.Now()
	v.State = vm.StateMigrating

	finish := func() {
		v.State = vm.StateRunning
		v.HostID = dst.ID
		v.SiteName = dst.Site.Name
		res.TotalTime = k.Now() - start
		onDone(res)
	}

	// Phase 2+: iterative memory pre-copy.
	var round func(contents []vm.ContentID, prevSent int64)
	round = func(contents []vm.ContentID, prevSent int64) {
		res.Rounds++
		p := planContents(contents, vm.PageSize, opts.Registry)
		res.RawBytes += p.raw
		res.WireBytes += p.wire
		res.PagesSent += p.sent
		res.PagesDeduped += p.deduped
		v.Mem.ClearDirty()
		roundStart := k.Now()
		// Hashing and registry lookups cost CPU before bytes hit the wire.
		k.Schedule(opts.dedupDelay(len(contents)), func() {
			net.StartFlow(src, dst, p.wire, "migrate-mem:"+v.Name, func() {
				elapsed := (k.Now() - roundStart).Seconds()
				if w := v.Workload(); w != nil {
					w.ApplyDirtying(v.Mem, elapsed)
				}
				dirty := v.Mem.DirtyPages()
				nd := int64(len(dirty))
				converged := len(dirty) <= opts.StopCopyPages
				stalled := res.Rounds >= 3 && nd >= int64(len(contents)) // not shrinking
				if converged || stalled || res.Rounds >= opts.MaxRounds {
					// Stop-and-copy: pause, ship the remainder, activate.
					// The dedup compute on the remainder happens paused, so
					// it counts toward downtime.
					v.State = vm.StatePaused
					pauseAt := k.Now()
					sp := planContents(pageContents(v.Mem, dirty), vm.PageSize, opts.Registry)
					res.RawBytes += sp.raw
					res.WireBytes += sp.wire
					res.PagesSent += sp.sent
					res.PagesDeduped += sp.deduped
					v.Mem.ClearDirty()
					k.Schedule(opts.dedupDelay(len(dirty)), func() {
						net.StartFlow(src, dst, sp.wire, "migrate-stop:"+v.Name, func() {
							k.Schedule(opts.ActivationDelay, func() {
								res.Downtime = k.Now() - pauseAt
								finish()
							})
						})
					})
					return
				}
				round(pageContents(v.Mem, dirty), p.sent)
			})
		})
	}

	startMemory := func() {
		all := make([]vm.ContentID, v.Mem.NumPages())
		for i := range all {
			all[i] = v.Mem.Page(i)
		}
		round(all, 0)
	}

	// Phase 1: handshake (1 control RTT), then optional disk, then memory.
	net.SendMessage(src, dst, 4096, func() {
		net.SendMessage(dst, src, 4096, func() {
			if opts.MigrateDisk && v.Disk != nil {
				reg := opts.Registry
				if !opts.DedupDisk {
					reg = nil
				}
				dp := planContents(diskContents(v.Disk), v.Disk.BlockSize, reg)
				res.RawBytes += dp.raw
				res.WireBytes += dp.wire
				res.BlocksSent += dp.sent
				res.BlocksDeduped += dp.deduped
				roundStart := k.Now()
				var hashDelay sim.Time
				if reg != nil {
					hashDelay = opts.DedupPageOverhead * sim.Time(v.Disk.NumBlocks())
				}
				k.Schedule(hashDelay, func() {
					net.StartFlow(src, dst, dp.wire, "migrate-disk:"+v.Name, func() {
						// Guest kept running during disk copy.
						if w := v.Workload(); w != nil {
							w.ApplyDirtying(v.Mem, (k.Now() - roundStart).Seconds())
						}
						startMemory()
					})
				})
				return
			}
			startMemory()
		})
	})
}

// SuspendResume is the pre-live baseline: pause the VM, transfer everything,
// resume. Downtime equals the whole transfer.
func SuspendResume(net *simnet.Network, v *vm.VM, src, dst *simnet.Node, opts Options, onDone func(Result)) {
	opts = opts.withDefaults()
	k := net.K
	res := Result{VM: v.Name, Method: "suspend-resume"}
	if w := v.Workload(); w != nil {
		res.Workload = w.Name
	}
	start := k.Now()
	v.State = vm.StatePaused
	contents := make([]vm.ContentID, v.Mem.NumPages())
	for i := range contents {
		contents[i] = v.Mem.Page(i)
	}
	p := planContents(contents, vm.PageSize, opts.Registry)
	res.RawBytes += p.raw
	res.WireBytes += p.wire
	res.PagesSent += p.sent
	res.PagesDeduped += p.deduped
	if opts.MigrateDisk && v.Disk != nil {
		reg := opts.Registry
		if !opts.DedupDisk {
			reg = nil
		}
		dp := planContents(diskContents(v.Disk), v.Disk.BlockSize, reg)
		res.RawBytes += dp.raw
		res.WireBytes += dp.wire
		res.BlocksSent += dp.sent
		res.BlocksDeduped += dp.deduped
	}
	res.Rounds = 1
	items := int(res.PagesSent + res.PagesDeduped + res.BlocksSent + res.BlocksDeduped)
	k.Schedule(opts.dedupDelay(items), func() {
		net.StartFlow(src, dst, res.WireBytes, "migrate-sr:"+v.Name, func() {
			k.Schedule(opts.ActivationDelay, func() {
				res.Downtime = k.Now() - start
				res.TotalTime = res.Downtime
				v.State = vm.StateRunning
				v.HostID = dst.ID
				v.SiteName = dst.Site.Name
				onDone(res)
			})
		})
	})
}

func pageContents(m *vm.Memory, pages []int) []vm.ContentID {
	out := make([]vm.ContentID, len(pages))
	for i, p := range pages {
		out[i] = m.Page(p)
	}
	return out
}

func diskContents(d *vm.DiskImage) []vm.ContentID {
	out := make([]vm.ContentID, d.NumBlocks())
	for i := range out {
		out[i] = d.Read(i)
	}
	return out
}

// ClusterResult aggregates a whole-cluster migration.
type ClusterResult struct {
	Results     []Result
	TotalTime   sim.Time
	WireBytes   int64
	RawBytes    int64
	MaxDowntime sim.Time
}

// BandwidthSaving returns the cluster-wide saving.
func (c ClusterResult) BandwidthSaving() float64 {
	if c.RawBytes == 0 {
		return 0
	}
	return 1 - float64(c.WireBytes)/float64(c.RawBytes)
}

// Move pairs a VM with its source and destination hosts.
type Move struct {
	VM       *vm.VM
	Src, Dst *simnet.Node
}

// MigrateCluster live-migrates a set of VMs with the given concurrency
// (how many VM migrations run at once on the shared WAN). A shared registry
// in opts gives Shrinker its inter-VM deduplication: pages shipped for the
// first VM satisfy hash lookups for the rest.
func MigrateCluster(net *simnet.Network, moves []Move, opts Options, concurrency int, onDone func(ClusterResult)) {
	if concurrency < 1 {
		concurrency = 1
	}
	k := net.K
	start := k.Now()
	cres := ClusterResult{Results: make([]Result, len(moves))}
	next := 0
	inFlight := 0
	finished := 0
	var launch func()
	launch = func() {
		for inFlight < concurrency && next < len(moves) {
			i := next
			next++
			inFlight++
			mv := moves[i]
			Live(net, mv.VM, mv.Src, mv.Dst, opts, func(r Result) {
				cres.Results[i] = r
				cres.WireBytes += r.WireBytes
				cres.RawBytes += r.RawBytes
				if r.Downtime > cres.MaxDowntime {
					cres.MaxDowntime = r.Downtime
				}
				inFlight--
				finished++
				if finished == len(moves) {
					cres.TotalTime = k.Now() - start
					onDone(cres)
					return
				}
				launch()
			})
		}
	}
	if len(moves) == 0 {
		k.Schedule(0, func() { onDone(cres) })
		return
	}
	launch()
}
