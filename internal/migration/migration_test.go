package migration

import (
	"testing"

	"repro/internal/dedup"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vm"
)

const MB = 1 << 20

// wanPair builds two sites joined by a 125 MB/s, 50 ms WAN.
func wanPair() (*sim.Kernel, *simnet.Network, *simnet.Node, *simnet.Node) {
	k := sim.NewKernel(1)
	net := simnet.New(k)
	a := net.AddSite("src-cloud", 125*MB, 125*MB)
	b := net.AddSite("dst-cloud", 125*MB, 125*MB)
	net.SetSiteLatency("src-cloud", "dst-cloud", 50*sim.Millisecond)
	return k, net, a.AddNode("src-host", 1<<30), b.AddNode("dst-host", 1<<30)
}

// testVM builds a 64 MiB VM (16384 pages) with literature-typical content
// redundancy: 15% zero pages, 40% shared-pool pages.
func testVM(name string, seed int64) (*vm.VM, *vm.ContentModel) {
	m := vm.NewContentModel(seed, "debian", 0.15, 0.40, 4096)
	v := vm.New(name, "debian", 2, 16384, m, nil)
	return v, m
}

func TestPrecopyIdleConverges(t *testing.T) {
	k, net, src, dst := wanPair()
	v, m := testVM("vm0", 1)
	v.Attach(vm.IdleWorkload(m, 2))
	var res Result
	Live(net, v, src, dst, Options{}, func(r Result) { res = r })
	k.Run()
	if res.Method != "precopy" {
		t.Fatalf("method %q", res.Method)
	}
	// 64 MiB over 125 MB/s ≈ 0.54 s; idle dirtying converges fast.
	if res.TotalTime.Seconds() < 0.5 || res.TotalTime.Seconds() > 1.5 {
		t.Fatalf("total time %v out of range", res.TotalTime)
	}
	if res.Downtime > 300*sim.Millisecond {
		t.Fatalf("idle downtime %v too high", res.Downtime)
	}
	if res.Rounds < 1 {
		t.Fatalf("pre-copy did not run, rounds=%d", res.Rounds)
	}
	if v.State != vm.StateRunning || v.SiteName != "dst-cloud" {
		t.Fatalf("VM not relocated: state=%v site=%s", v.State, v.SiteName)
	}
}

func TestPrecopyRawEqualsWireWithoutDedup(t *testing.T) {
	k, net, src, dst := wanPair()
	v, m := testVM("vm0", 1)
	v.Attach(vm.IdleWorkload(m, 2))
	var res Result
	Live(net, v, src, dst, Options{}, func(r Result) { res = r })
	k.Run()
	if res.RawBytes != res.WireBytes {
		t.Fatalf("plain precopy raw=%d wire=%d must match", res.RawBytes, res.WireBytes)
	}
	if res.PagesDeduped != 0 {
		t.Fatal("plain precopy deduped pages")
	}
	if res.RawBytes < v.MemBytes() {
		t.Fatalf("raw bytes %d below memory size %d", res.RawBytes, v.MemBytes())
	}
}

func TestShrinkerSavesBandwidth(t *testing.T) {
	run := func(withReg bool) Result {
		k, net, src, dst := wanPair()
		v, m := testVM("vm0", 1)
		v.Attach(vm.WebServerWorkload(m, 2))
		opts := Options{}
		if withReg {
			opts.Registry = dedup.NewRegistry("site:dst")
		}
		var res Result
		Live(net, v, src, dst, opts, func(r Result) { res = r })
		k.Run()
		return res
	}
	plain := run(false)
	shr := run(true)
	if shr.Method != "shrinker" {
		t.Fatalf("method %q", shr.Method)
	}
	saving := 1 - float64(shr.WireBytes)/float64(plain.WireBytes)
	// The paper reports 30-40% WAN bandwidth reduction. With 15% zero +
	// 40% shared pages plus intra-VM duplicates the saving lands in that
	// band (self-dedup within one VM: zero pages + pool pages repeat).
	if saving < 0.25 || saving > 0.65 {
		t.Fatalf("Shrinker saving %.1f%%, want 25-65%%", 100*saving)
	}
	// Time saving trails bandwidth saving because hashing costs CPU
	// (DedupPageOverhead) — the same gap the paper reports (~20% time vs
	// 30-40% bandwidth).
	timeSaving := 1 - shr.TotalTime.Seconds()/plain.TotalTime.Seconds()
	if timeSaving < 0.03 {
		t.Fatalf("Shrinker time saving %.1f%%, want >= 3%%", 100*timeSaving)
	}
}

func TestShrinkerInterVMDedup(t *testing.T) {
	// Migrating a second same-image VM through the same registry should be
	// drastically cheaper: its shared pool is already registered.
	k, net, src, dst := wanPair()
	reg := dedup.NewRegistry("site:dst")
	v1, m1 := testVM("vm1", 1)
	v1.Attach(vm.IdleWorkload(m1, 2))
	v2, m2 := testVM("vm2", 7)
	v2.Attach(vm.IdleWorkload(m2, 8))
	var r1, r2 Result
	Live(net, v1, src, dst, Options{Registry: reg}, func(r Result) {
		r1 = r
		Live(net, v2, src, dst, Options{Registry: reg}, func(r Result) { r2 = r })
	})
	k.Run()
	if r2.WireBytes >= r1.WireBytes {
		t.Fatalf("second VM wire %d not below first %d (inter-VM dedup broken)",
			r2.WireBytes, r1.WireBytes)
	}
	if r2.PagesDeduped <= r1.PagesDeduped {
		t.Fatalf("second VM deduped %d <= first %d", r2.PagesDeduped, r1.PagesDeduped)
	}
}

func TestHighDirtyRateForcesStopCopy(t *testing.T) {
	k, net, src, dst := wanPair()
	v, m := testVM("vm0", 1)
	// Dirty faster than the WAN can ship: never converges, must cap rounds.
	v.Attach(vm.NewWorkload("hostile", 1e6, 1.0, 0, 0, m, 3))
	var res Result
	Live(net, v, src, dst, Options{MaxRounds: 5}, func(r Result) { res = r })
	k.Run()
	if res.Rounds > 5 {
		t.Fatalf("rounds %d exceeded MaxRounds", res.Rounds)
	}
	if res.Downtime < 100*sim.Millisecond {
		t.Fatalf("hostile workload downtime %v suspiciously low", res.Downtime)
	}
}

func TestMigrateDiskIncluded(t *testing.T) {
	k, net, src, dst := wanPair()
	m := vm.NewContentModel(1, "debian", 0.1, 0.5, 2048)
	disk := vm.NewDiskImage("debian", 4096, 65536, m) // 256 MiB
	v := vm.New("vm0", "debian", 2, 8192, m, disk)
	v.Attach(vm.IdleWorkload(m, 2))
	var withDisk, memOnly Result
	Live(net, v, src, dst, Options{MigrateDisk: true}, func(r Result) { withDisk = r })
	k.Run()
	k2, net2, src2, dst2 := wanPair()
	m2 := vm.NewContentModel(1, "debian", 0.1, 0.5, 2048)
	v2 := vm.New("vm0", "debian", 2, 8192, m2, vm.NewDiskImage("debian", 4096, 65536, m2))
	v2.Attach(vm.IdleWorkload(m2, 2))
	Live(net2, v2, src2, dst2, Options{}, func(r Result) { memOnly = r })
	k2.Run()
	if withDisk.RawBytes <= memOnly.RawBytes+255*MB {
		t.Fatalf("disk bytes missing: with=%d without=%d", withDisk.RawBytes, memOnly.RawBytes)
	}
	if withDisk.BlocksSent == 0 {
		t.Fatal("no blocks accounted")
	}
	_ = k
}

func TestDiskDedup(t *testing.T) {
	run := func(dedupDisk bool) Result {
		k, net, src, dst := wanPair()
		m := vm.NewContentModel(1, "debian", 0.05, 0.7, 1024)
		disk := vm.NewDiskImage("debian", 4096, 65536, m)
		v := vm.New("vm0", "debian", 2, 4096, m, disk)
		v.Attach(vm.IdleWorkload(m, 2))
		reg := dedup.NewRegistry("site:dst")
		// Seed the registry with the base image, as Shrinker does when the
		// destination cloud caches the same base image.
		reg.SeedFromDisk(disk)
		var res Result
		Live(net, v, src, dst, Options{Registry: reg, MigrateDisk: true, DedupDisk: dedupDisk},
			func(r Result) { res = r })
		k.Run()
		return res
	}
	with := run(true)
	without := run(false)
	if with.BlocksDeduped == 0 {
		t.Fatal("disk dedup found nothing despite seeded registry")
	}
	if with.WireBytes >= without.WireBytes {
		t.Fatalf("disk dedup did not reduce wire bytes: %d vs %d", with.WireBytes, without.WireBytes)
	}
}

func TestSuspendResume(t *testing.T) {
	k, net, src, dst := wanPair()
	v, m := testVM("vm0", 1)
	v.Attach(vm.WebServerWorkload(m, 2))
	var res Result
	SuspendResume(net, v, src, dst, Options{}, func(r Result) { res = r })
	k.Run()
	if res.Method != "suspend-resume" {
		t.Fatalf("method %q", res.Method)
	}
	if res.Downtime != res.TotalTime {
		t.Fatalf("suspend/resume downtime %v != total %v", res.Downtime, res.TotalTime)
	}
	// Whole memory crosses while paused: downtime ~ 0.54s.
	if res.Downtime < 400*sim.Millisecond {
		t.Fatalf("downtime %v implausibly low", res.Downtime)
	}
}

func TestLiveDowntimeFarBelowSuspendResume(t *testing.T) {
	k, net, src, dst := wanPair()
	v, m := testVM("a", 1)
	v.Attach(vm.IdleWorkload(m, 2))
	var live Result
	Live(net, v, src, dst, Options{}, func(r Result) { live = r })
	k.Run()
	k2, net2, src2, dst2 := wanPair()
	v2, m2 := testVM("b", 1)
	v2.Attach(vm.IdleWorkload(m2, 2))
	var sr Result
	SuspendResume(net2, v2, src2, dst2, Options{}, func(r Result) { sr = r })
	k2.Run()
	if live.Downtime*5 >= sr.Downtime {
		t.Fatalf("live downtime %v not far below suspend/resume %v", live.Downtime, sr.Downtime)
	}
}

func TestMigrateCluster(t *testing.T) {
	k, net, src, dst := wanPair()
	reg := dedup.NewRegistry("site:dst")
	var moves []Move
	for i := 0; i < 4; i++ {
		v, m := testVM("vm"+string(rune('0'+i)), int64(i+1))
		v.Attach(vm.IdleWorkload(m, int64(i+100)))
		moves = append(moves, Move{VM: v, Src: src, Dst: dst})
	}
	var cres ClusterResult
	MigrateCluster(net, moves, Options{Registry: reg}, 2, func(c ClusterResult) { cres = c })
	k.Run()
	if len(cres.Results) != 4 {
		t.Fatalf("results %d", len(cres.Results))
	}
	for i, r := range cres.Results {
		if r.TotalTime == 0 {
			t.Fatalf("VM %d never migrated", i)
		}
	}
	if cres.WireBytes >= cres.RawBytes {
		t.Fatal("cluster-wide dedup had no effect")
	}
	if cres.BandwidthSaving() < 0.25 {
		t.Fatalf("cluster saving %.1f%% below 25%%", 100*cres.BandwidthSaving())
	}
	if cres.MaxDowntime == 0 || cres.TotalTime == 0 {
		t.Fatal("missing aggregate metrics")
	}
}

func TestMigrateClusterEmpty(t *testing.T) {
	k, net, _, _ := wanPair()
	called := false
	MigrateCluster(net, nil, Options{}, 4, func(ClusterResult) { called = true })
	k.Run()
	if !called {
		t.Fatal("empty cluster migration must complete")
	}
}

func TestClusterConcurrencySerializesWhenOne(t *testing.T) {
	run := func(conc int) sim.Time {
		k, net, src, dst := wanPair()
		var moves []Move
		for i := 0; i < 3; i++ {
			v, m := testVM("vm"+string(rune('0'+i)), int64(i+1))
			v.Attach(vm.IdleWorkload(m, int64(i+50)))
			moves = append(moves, Move{VM: v, Src: src, Dst: dst})
		}
		var cres ClusterResult
		MigrateCluster(net, moves, Options{}, conc, func(c ClusterResult) { cres = c })
		k.Run()
		return cres.TotalTime
	}
	seq := run(1)
	par := run(3)
	// Parallel shares the same WAN, so total time is similar, but the
	// handshake latencies overlap: parallel should not be slower.
	if par > seq+sim.Second {
		t.Fatalf("parallel (%v) much slower than sequential (%v)", par, seq)
	}
}

func TestResultString(t *testing.T) {
	r := Result{VM: "vm0", Method: "shrinker", Workload: "idle",
		TotalTime: sim.Second, Downtime: 10 * sim.Millisecond,
		Rounds: 3, RawBytes: 100 * MB, WireBytes: 60 * MB}
	s := r.String()
	if s == "" || r.BandwidthSaving() < 0.39 || r.BandwidthSaving() > 0.41 {
		t.Fatalf("String/BandwidthSaving broken: %q %.3f", s, r.BandwidthSaving())
	}
}
