package netmon

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

const MB = 1 << 20

func testbed(n int) (*sim.Kernel, *simnet.Network, []*simnet.Node) {
	k := sim.NewKernel(1)
	net := simnet.New(k)
	s := net.AddSite("cloud", 125*MB, 125*MB)
	nodes := make([]*simnet.Node, n)
	for i := range nodes {
		nodes[i] = s.AddNode("n"+string(rune('0'+i)), 125*MB)
	}
	return k, net, nodes
}

func TestFullCaptureMatchesTruthExactly(t *testing.T) {
	k, net, nodes := testbed(4)
	mon := New(net, 1.0, 42, "app:")
	rec := NewRecorder()
	RunRing(net, PatternSpec{Nodes: nodes, BytesPerTransfer: 4 * MB,
		Interval: sim.Second, Waves: 5, Tag: "app:ring"}, rec, nil)
	k.Run()
	if c := Correlation(rec.Truth, mon.Matrix()); c < 0.9999 {
		t.Fatalf("full capture correlation %.6f, want ~1", c)
	}
	if e := NormalizedError(rec.Truth, mon.Matrix()); e > 1e-9 {
		t.Fatalf("full capture error %.6f", e)
	}
	// Ring over 4 nodes: exactly 4 directed edges.
	if len(mon.Matrix()) != 4 {
		t.Fatalf("ring edges %d, want 4", len(mon.Matrix()))
	}
}

func TestSampledCaptureHighCorrelation(t *testing.T) {
	k, net, nodes := testbed(6)
	mon := New(net, 0.05, 42, "app:") // 1-in-20 packet sampling
	rec := NewRecorder()
	RunAllToAll(net, PatternSpec{Nodes: nodes, BytesPerTransfer: 8 * MB,
		Interval: sim.Second, Waves: 3, Tag: "app:a2a"}, rec, nil)
	k.Run()
	c := Correlation(rec.Truth, mon.Matrix())
	if c < 0.95 {
		t.Fatalf("sampled correlation %.4f, want >= 0.95", c)
	}
	if e := NormalizedError(rec.Truth, mon.Matrix()); e > 0.10 {
		t.Fatalf("sampled relative error %.4f, want <= 10%%", e)
	}
}

func TestTagFilterIgnoresOtherTraffic(t *testing.T) {
	k, net, nodes := testbed(3)
	mon := New(net, 1.0, 1, "app:")
	// Background traffic with another tag must be invisible.
	net.StartFlow(nodes[0], nodes[1], 64*MB, "migrate:vm0", nil)
	RunRing(net, PatternSpec{Nodes: nodes, BytesPerTransfer: MB,
		Interval: sim.Second, Waves: 1, Tag: "app:r"}, nil, nil)
	k.Run()
	if got := mon.Matrix().Total(); got != 3*MB {
		t.Fatalf("filter leak: observed %d bytes, want %d", got, 3*MB)
	}
}

func TestMasterWorkerTopology(t *testing.T) {
	k, net, nodes := testbed(5)
	mon := New(net, 1.0, 1, "")
	rec := NewRecorder()
	RunMasterWorker(net, PatternSpec{Nodes: nodes, BytesPerTransfer: MB,
		Interval: sim.Second, Waves: 2, Tag: "mw"}, rec, nil)
	k.Run()
	// 4 workers x 2 directions = 8 edges, all touching the master.
	edges := mon.Matrix().Edges()
	if len(edges) != 8 {
		t.Fatalf("edges %d, want 8", len(edges))
	}
	for _, e := range edges {
		if e[0] != "n0" && e[1] != "n0" {
			t.Fatalf("edge %v does not touch the master", e)
		}
	}
}

func TestPrecisionRecallThreshold(t *testing.T) {
	truth := Matrix{{"a", "b"}: 100, {"b", "c"}: 5, {"c", "a"}: 80}
	obs := Matrix{{"a", "b"}: 95, {"c", "a"}: 85, {"x", "y"}: 90}
	p, r := PrecisionRecall(truth, obs, 50)
	// True edges >= 50: {a,b},{c,a}. Observed >= 50: {a,b},{c,a},{x,y}.
	if p < 0.66 || p > 0.67 {
		t.Fatalf("precision %.3f, want 2/3", p)
	}
	if r != 1.0 {
		t.Fatalf("recall %.3f, want 1", r)
	}
}

func TestPrecisionRecallEmpty(t *testing.T) {
	p, r := PrecisionRecall(Matrix{}, Matrix{}, 1)
	if p != 1 || r != 1 {
		t.Fatalf("empty/empty should be perfect: %v %v", p, r)
	}
	p, r = PrecisionRecall(Matrix{{"a", "b"}: 10}, Matrix{}, 1)
	if p != 0 || r != 0 {
		t.Fatalf("missing everything: p=%v r=%v", p, r)
	}
}

func TestCorrelationEdgeCases(t *testing.T) {
	if c := Correlation(Matrix{}, Matrix{}); c != 0 {
		t.Fatalf("empty correlation %v", c)
	}
	m := Matrix{{"a", "b"}: 5}
	if c := Correlation(m, m); c != 1 {
		t.Fatalf("single-edge self correlation %v", c)
	}
	// Disjoint matrices: orthogonal, similarity zero.
	a := Matrix{{"a", "b"}: 100, {"b", "c"}: 0}
	b := Matrix{{"a", "b"}: 0, {"b", "c"}: 100}
	if c := Correlation(a, b); c != 0 {
		t.Fatalf("disjoint similarity %v, want 0", c)
	}
}

func TestZeroSampleRateSeesNothing(t *testing.T) {
	k, net, nodes := testbed(2)
	mon := New(net, 0, 1, "")
	net.StartFlow(nodes[0], nodes[1], 10*MB, "x", nil)
	k.Run()
	if mon.Matrix().Total() != 0 {
		t.Fatal("zero sampling captured bytes")
	}
}

func TestReset(t *testing.T) {
	k, net, nodes := testbed(2)
	mon := New(net, 1.0, 1, "")
	net.StartFlow(nodes[0], nodes[1], MB, "x", nil)
	k.Run()
	mon.Reset()
	if mon.Matrix().Total() != 0 {
		t.Fatal("reset failed")
	}
}

func TestEdgesSortedByWeight(t *testing.T) {
	m := Matrix{{"a", "b"}: 10, {"c", "d"}: 30, {"e", "f"}: 20}
	e := m.Edges()
	if e[0] != [2]string{"c", "d"} || e[1] != [2]string{"e", "f"} || e[2] != [2]string{"a", "b"} {
		t.Fatalf("edges order wrong: %v", e)
	}
}
