// Package netmon implements §III-C's transparent communication-pattern
// detection: a monitor at each hypervisor's virtual switch observes the
// traffic of the VMs it hosts (packet capture, no guest cooperation) and
// builds the virtual cluster's traffic matrix. Its accuracy is evaluated
// against the "invasive" baseline — exact per-transfer accounting as a
// modified communication library would produce.
package netmon

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/simnet"
)

// Matrix is a traffic matrix: bytes exchanged per directed node pair.
type Matrix map[[2]string]int64

// Add accumulates bytes on an edge.
func (m Matrix) Add(src, dst string, bytes int64) { m[[2]string{src, dst}] += bytes }

// Total returns the sum over all edges.
func (m Matrix) Total() int64 {
	var t int64
	for _, v := range m {
		t += v
	}
	return t
}

// Edges returns the directed edges sorted by descending weight (ties by key).
func (m Matrix) Edges() [][2]string {
	out := make([][2]string, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if m[out[i]] != m[out[j]] {
			return m[out[i]] > m[out[j]]
		}
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Monitor passively captures flows at the hypervisor level.
type Monitor struct {
	// PacketBytes is the emulated packet size used for sampling (1500-byte
	// MTU frames).
	PacketBytes int64
	// SampleRate is the per-packet capture probability (sFlow-style
	// sampling; 1.0 captures everything with no estimation error).
	SampleRate float64

	observed Matrix
	rng      *rand.Rand
	filter   func(tag string) bool
}

// New attaches a monitor to the network's flow events. tagPrefix restricts
// capture to flows whose tag starts with the prefix (empty = everything);
// the real system would similarly filter by the vswitch ports of the
// monitored virtual cluster.
func New(net *simnet.Network, sampleRate float64, seed int64, tagPrefix string) *Monitor {
	m := &Monitor{
		PacketBytes: 1500,
		SampleRate:  sampleRate,
		observed:    make(Matrix),
		rng:         rand.New(rand.NewSource(seed)),
	}
	m.filter = func(tag string) bool {
		return tagPrefix == "" || strings.HasPrefix(tag, tagPrefix)
	}
	net.Observe(func(ev simnet.FlowEvent) {
		if ev.Start || ev.Bytes == 0 || !m.filter(ev.Tag) {
			return
		}
		m.capture(ev.Src.ID, ev.Dst.ID, ev.Bytes)
	})
	return m
}

// capture records a completed transfer, applying packet sampling: of the
// n packets composing the transfer, each is seen with probability
// SampleRate, and the byte count is estimated by inverse-probability
// scaling — exactly what sampled NetFlow/sFlow reports.
func (m *Monitor) capture(src, dst string, bytes int64) {
	if m.SampleRate >= 1 {
		m.observed.Add(src, dst, bytes)
		return
	}
	if m.SampleRate <= 0 {
		return
	}
	packets := bytes / m.PacketBytes
	if packets == 0 {
		packets = 1
	}
	// Binomial(packets, rate) via normal approximation for large counts,
	// exact sampling for small ones.
	var seen int64
	if packets > 1000 {
		mean := float64(packets) * m.SampleRate
		sd := math.Sqrt(mean * (1 - m.SampleRate))
		seen = int64(mean + m.rng.NormFloat64()*sd + 0.5)
		if seen < 0 {
			seen = 0
		}
		if seen > packets {
			seen = packets
		}
	} else {
		for i := int64(0); i < packets; i++ {
			if m.rng.Float64() < m.SampleRate {
				seen++
			}
		}
	}
	if seen == 0 {
		return
	}
	est := int64(float64(seen) / m.SampleRate * float64(m.PacketBytes))
	m.observed.Add(src, dst, est)
}

// Matrix returns the inferred traffic matrix (live view).
func (m *Monitor) Matrix() Matrix { return m.observed }

// Reset clears the observation window.
func (m *Monitor) Reset() { m.observed = make(Matrix) }

// Recorder is the invasive baseline: the application (or an instrumented
// communication library) reports every logical transfer exactly.
type Recorder struct{ Truth Matrix }

// NewRecorder returns an empty ground-truth recorder.
func NewRecorder() *Recorder { return &Recorder{Truth: make(Matrix)} }

// Record notes an exact transfer.
func (r *Recorder) Record(src, dst string, bytes int64) { r.Truth.Add(src, dst, bytes) }

// Correlation computes the cosine similarity between two matrices over the
// union of their edges — the standard similarity measure for traffic
// matrices (robust to the uniform-pattern case where Pearson degenerates).
// 1.0 means the passive inference reproduces the invasive tool's view
// exactly (the paper's claim: "communication traces similar to state of the
// art solutions that use more invasive techniques").
func Correlation(a, b Matrix) float64 {
	union := make(map[[2]string]bool, len(a)+len(b))
	for e := range a {
		union[e] = true
	}
	for e := range b {
		union[e] = true
	}
	if len(union) == 0 {
		return 0
	}
	var dot, na, nb float64
	for e := range union {
		va, vb := float64(a[e]), float64(b[e])
		dot += va * vb
		na += va * va
		nb += vb * vb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// PrecisionRecall evaluates edge detection: an edge "exists" when its
// weight is at least threshold. Returns precision and recall of the
// observed matrix against the truth.
func PrecisionRecall(truth, observed Matrix, threshold int64) (precision, recall float64) {
	trueEdges := make(map[[2]string]bool)
	for e, v := range truth {
		if v >= threshold {
			trueEdges[e] = true
		}
	}
	obsEdges := make(map[[2]string]bool)
	for e, v := range observed {
		if v >= threshold {
			obsEdges[e] = true
		}
	}
	if len(obsEdges) == 0 {
		if len(trueEdges) == 0 {
			return 1, 1
		}
		return 0, 0
	}
	tp := 0
	for e := range obsEdges {
		if trueEdges[e] {
			tp++
		}
	}
	precision = float64(tp) / float64(len(obsEdges))
	if len(trueEdges) == 0 {
		recall = 1
	} else {
		recall = float64(tp) / float64(len(trueEdges))
	}
	return precision, recall
}

// NormalizedError returns sum|a-b| / sum(truth), a relative L1 error.
func NormalizedError(truth, observed Matrix) float64 {
	union := make(map[[2]string]bool, len(truth)+len(observed))
	for e := range truth {
		union[e] = true
	}
	for e := range observed {
		union[e] = true
	}
	var diff, total float64
	for e := range union {
		diff += math.Abs(float64(truth[e]) - float64(observed[e]))
		total += float64(truth[e])
	}
	if total == 0 {
		return 0
	}
	return diff / total
}
