package netmon

import (
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Pattern generators drive synthetic application traffic with known
// structure, used to evaluate the detector against the invasive baseline
// (the paper's experiments compare inferred traces on applications with
// known communication patterns).

// PatternSpec drives a synthetic traffic generator.
type PatternSpec struct {
	// Nodes exchange traffic.
	Nodes []*simnet.Node
	// BytesPerTransfer per application-level message.
	BytesPerTransfer int64
	// Interval between transfer waves.
	Interval sim.Time
	// Waves is the number of rounds.
	Waves int
	// Tag marks generated flows for the monitor's filter.
	Tag string
}

// RunRing generates ring traffic: node i sends to node (i+1) mod n each
// wave. Every transfer is recorded in rec (the invasive ground truth).
func RunRing(net *simnet.Network, spec PatternSpec, rec *Recorder, onDone func()) {
	runWaves(net, spec, rec, onDone, func(wave int, emit func(src, dst *simnet.Node)) {
		n := len(spec.Nodes)
		for i, src := range spec.Nodes {
			emit(src, spec.Nodes[(i+1)%n])
		}
	})
}

// RunAllToAll generates full-mesh traffic each wave.
func RunAllToAll(net *simnet.Network, spec PatternSpec, rec *Recorder, onDone func()) {
	runWaves(net, spec, rec, onDone, func(wave int, emit func(src, dst *simnet.Node)) {
		for _, src := range spec.Nodes {
			for _, dst := range spec.Nodes {
				if src != dst {
					emit(src, dst)
				}
			}
		}
	})
}

// RunMasterWorker generates hub-and-spoke traffic: node 0 scatters to all
// others, which gather back.
func RunMasterWorker(net *simnet.Network, spec PatternSpec, rec *Recorder, onDone func()) {
	runWaves(net, spec, rec, onDone, func(wave int, emit func(src, dst *simnet.Node)) {
		master := spec.Nodes[0]
		for _, w := range spec.Nodes[1:] {
			emit(master, w)
			emit(w, master)
		}
	})
}

func runWaves(net *simnet.Network, spec PatternSpec, rec *Recorder, onDone func(),
	wave func(int, func(src, dst *simnet.Node))) {
	if spec.Waves <= 0 || len(spec.Nodes) == 0 {
		net.K.Schedule(0, onDone)
		return
	}
	outstanding := 0
	wavesLeft := spec.Waves
	var fire func()
	fire = func() {
		w := spec.Waves - wavesLeft
		wavesLeft--
		wave(w, func(src, dst *simnet.Node) {
			outstanding++
			if rec != nil {
				rec.Record(src.ID, dst.ID, spec.BytesPerTransfer)
			}
			net.StartFlow(src, dst, spec.BytesPerTransfer, spec.Tag, func() {
				outstanding--
				if outstanding == 0 && wavesLeft == 0 && onDone != nil {
					onDone()
				}
			})
		})
		if wavesLeft > 0 {
			net.K.Schedule(spec.Interval, fire)
		}
	}
	fire()
}
