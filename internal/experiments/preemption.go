package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/vm"
)

// E12Preemption evaluates revocable placement on the capacity ledger:
//
//   - E12a: a bursty backfill wave with optimistic estimates blocks a wide
//     head job far past its reservation; spot-priced preemption evicts the
//     cheapest subset of the backfilled jobs and the head's makespan
//     improves >= 2x over wait-for-release (the victims requeue with queue
//     position and progress credit and still complete);
//   - E12b: a gang spanning two clouds only because both were partially
//     busy consolidates onto one member when a co-tenant finishes
//     mid-run — live migration over the WAN, ledger cores retargeted —
//     and its cross-site shuffle fraction drops to 0.
func E12Preemption(seed int64) []*metrics.Table {
	preempt, preemptSnap := preemptVsWaitTable(seed)
	return []*metrics.Table{
		preempt,
		preemptSnap,
		consolidationCutTable(seed),
	}
}

// preemptFederation builds two 32-core clouds (4 x 8-core hosts) seeded
// with the debian image and the scheduler enabled under cfg.
func preemptFederation(seed int64, cfg sched.Config) (*core.Federation, *sched.Scheduler) {
	f := core.NewFederation(seed)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("cloud%d", i)
		cc := cloudConfig(name, 4, 0.08+0.04*float64(i), 1.0)
		cc.WANUp, cc.WANDown = 60*mb, 60*mb
		c := f.AddCloud(cc)
		m := vm.NewContentModel(seed+int64(i)*17, "debian", 0.1, 0.5, 2048)
		c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m))
	}
	f.SetWANLatency("cloud0", "cloud1", 60*sim.Millisecond)
	s := f.EnableScheduler(core.SchedulerOptions{Sched: cfg})
	return f, s
}

// preemptRun drives the E12a workload: two honest 16-core holders (one per
// cloud), a 48-core head job that must span both clouds, and a burst of
// four 8-core backfills whose 50 s estimates hide ~250 s of real map work.
// The head's reservation keeps slipping on their overdue releases; with
// preemption the eviction pass frees exactly enough of them for the gang
// to start.
func preemptRun(seed int64, cfg sched.Config) (head sched.JobInfo, evicted, forced, agings int, victimsDone bool, s *sched.Scheduler) {
	f, sc := preemptFederation(seed, cfg)
	sc.AddTenant("batch", 1)
	submit := func(name string, workers int, est float64, mr mapreduce.Job) string {
		id, err := sc.Submit(sched.JobSpec{Tenant: "batch", Name: name, Workers: workers,
			CoresPerWorker: 2, EstimateSeconds: est, MR: mr})
		if err != nil {
			panic(err)
		}
		return id
	}
	mrHold := mapreduce.Job{Name: "hold", NumMaps: 16, NumReduces: 1, MapCPU: 55, ReduceCPU: 1}
	submit("hold0", 8, 60, mrHold)
	submit("hold1", 8, 60, mrHold)
	headID := submit("head", 24, 60, mapreduce.Job{Name: "head", NumMaps: 48, NumReduces: 2,
		MapCPU: 45, ReduceCPU: 2, ShuffleBytesPerMapPerReduce: mb / 4})
	var liars []string
	for i := 0; i < 4; i++ {
		liars = append(liars, submit(fmt.Sprintf("burst%d", i), 4, 50,
			mapreduce.Job{Name: "burst", NumMaps: 16, NumReduces: 1, MapCPU: 120, ReduceCPU: 1}))
	}
	f.K.Run()
	hi, _ := sc.Poll(headID)
	victimsDone = true
	for _, id := range liars {
		ji, _ := sc.Poll(id)
		if ji.State != sched.Done {
			victimsDone = false
		}
	}
	return hi, sc.Preemptions(), sc.ForcedPreemptions(), sc.ReservationAgings(), victimsDone, sc
}

func preemptVsWaitTable(seed int64) (*metrics.Table, *metrics.Table) {
	t := metrics.NewTable(
		"E12a: blocked 48-core head vs 4 optimistic backfills (est 50 s, real ~250 s), 2 x 32-core clouds",
		"policy", "head start (s)", "head makespan (s)", "evicted (head+forced)", "agings", "victims finish", "vs wait")
	type row struct {
		label           string
		start           float64
		makespan        float64
		evicted, forced int
		agings          int
		done            bool
	}
	var rows []row
	var snap *metrics.Table
	for _, variant := range []struct {
		label string
		cfg   sched.Config
	}{
		{"wait-for-release", sched.Config{}},
		{"preempt", sched.Config{EnablePreemption: true}},
	} {
		hi, evicted, forced, agings, done, sc := preemptRun(seed, variant.cfg)
		if hi.State != sched.Done {
			panic(fmt.Sprintf("E12a: %s head state %v err %v", variant.label, hi.State, hi.Err))
		}
		rows = append(rows, row{variant.label, hi.Started.Seconds(),
			(hi.Finished - hi.Submitted).Seconds(), evicted, forced, agings, done})
		if variant.cfg.EnablePreemption {
			snap = schedSnapshot(sc, "E12a metrics snapshot (preempt run)")
		}
	}
	base := rows[0].makespan
	for _, r := range rows {
		t.AddRowf(r.label, fmt.Sprintf("%.1f", r.start), fmt.Sprintf("%.1f", r.makespan),
			fmt.Sprintf("%d+%d", r.evicted-r.forced, r.forced), r.agings, r.done,
			fmt.Sprintf("%.2fx", base/r.makespan))
	}
	return t, snap
}

// consolidationRun drives the E12b workload: fillers take 16 cores on each
// cloud, a 24-worker single-core gang spans cloud0:16 + cloud1:8, and
// cloud0's filler finishes during the gang's map phase — freeing enough of
// the gang's majority cloud for the minority slice to migrate home.
func consolidationRun(seed int64, cfg sched.Config) (sched.JobInfo, *core.Federation, *sched.Scheduler) {
	f, s := preemptFederation(seed, cfg)
	s.AddTenant("span", 1)
	mrFill := mapreduce.Job{Name: "fill", NumMaps: 16, NumReduces: 1, MapCPU: 40, ReduceCPU: 1}
	for _, n := range []string{"f0", "f1"} {
		if _, err := s.Submit(sched.JobSpec{Tenant: "span", Name: n, Workers: 8,
			CoresPerWorker: 2, EstimateSeconds: 45, MR: mrFill}); err != nil {
			panic(err)
		}
	}
	gang, err := s.Submit(sched.JobSpec{Tenant: "span", Name: "gang", Workers: 24,
		CoresPerWorker: 1, EstimateSeconds: 260,
		MR: mapreduce.Job{Name: "gang", NumMaps: 48, NumReduces: 4, MapCPU: 120,
			ReduceCPU: 2, ShuffleBytesPerMapPerReduce: mb}})
	if err != nil {
		panic(err)
	}
	f.K.Run()
	ji, _ := s.Poll(gang)
	return ji, f, s
}

func consolidationCutTable(seed int64) *metrics.Table {
	t := metrics.NewTable(
		"E12b: spanning gang (cloud0:16+cloud1:8) when cloud0 frees up mid-run — consolidation vs pinned",
		"policy", "final plan", "cross-site shuffle", "shuffle fraction", "makespan (s)", "migrations")
	for _, variant := range []struct {
		label string
		cfg   sched.Config
	}{
		{"pinned (off)", sched.Config{}},
		{"consolidate", sched.Config{EnableConsolidation: true}},
	} {
		ji, f, _ := consolidationRun(seed, variant.cfg)
		if ji.State != sched.Done {
			panic(fmt.Sprintf("E12b: %s gang state %v err %v", variant.label, ji.State, ji.Err))
		}
		frac := 0.0
		if ji.Result.ShuffleBytes > 0 {
			frac = float64(ji.Result.CrossSiteShuffleBytes) / float64(ji.Result.ShuffleBytes)
		}
		t.AddRowf(variant.label, ji.Plan.String(), metrics.FmtBytes(ji.Result.CrossSiteShuffleBytes),
			metrics.FmtPct(frac), fmt.Sprintf("%.1f", ji.Result.Makespan.Seconds()), f.Migrations)
	}
	return t
}
