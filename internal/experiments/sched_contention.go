package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/vm"
)

// E10SchedulerContention evaluates the federation-wide job scheduler under
// multi-tenant contention:
//
//   - E10a: two tenants with a 3:1 weight ratio saturate a two-cloud
//     federation with identical jobs (plus periodic wide jobs that block
//     and trigger backfilling); delivered core-second shares must converge
//     to the configured weights.
//   - E10b: data-resident jobs (input pinned at cloud0) run under the
//     locality-aware placement score and under the random baseline; the
//     locality-aware policy must win on mean makespan and WAN traffic.
func E10SchedulerContention(seed int64) []*metrics.Table {
	fair, fairSnap := schedFairShareTable(seed)
	return []*metrics.Table{
		fair,
		fairSnap,
		schedPlacementTable(seed),
	}
}

// schedSnapshot is the shared metrics view every scheduler experiment
// prints: the live registry counters, filtered to deterministic families
// (phase timings are wall-clock and excluded; the fault-transition
// counters are excluded too — these experiments inject no faults, so the
// rows would be constant zeros), so experiment tables cannot drift from
// what the scheduler actually counted.
func schedSnapshot(s *sched.Scheduler, title string) *metrics.Table {
	return obs.SnapshotTable(s.Obs(), title,
		"sky_sched_", "sky_capacity_", "!sky_sched_phase_seconds",
		"!sky_capacity_cloud_failures", "!sky_capacity_cloud_restores")
}

// schedFederation builds a small, contended federation: two clouds of
// 4 x 8-core hosts (32 cores each) behind 30 MB/s WAN links.
func schedFederation(seed int64, cfg sched.Config) (*core.Federation, *sched.Scheduler) {
	f := core.NewFederation(seed)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("cloud%d", i)
		cc := cloudConfig(name, 4, 0.08+0.04*float64(i), 1.0)
		cc.WANUp, cc.WANDown = 30*mb, 30*mb
		c := f.AddCloud(cc)
		m := vm.NewContentModel(seed+int64(i)*17, "debian", 0.1, 0.5, 2048)
		c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m))
	}
	f.SetWANLatency("cloud0", "cloud1", 60*sim.Millisecond)
	s := f.EnableScheduler(core.SchedulerOptions{Sched: cfg})
	return f, s
}

func schedFairShareTable(seed int64) (*metrics.Table, *metrics.Table) {
	f, s := schedFederation(seed, sched.Config{})
	s.AddTenant("gold", 3)
	s.AddTenant("silver", 1)
	job := mapreduce.Job{Name: "blast", NumMaps: 32, NumReduces: 1, MapCPU: 30, ReduceCPU: 2}
	ids := map[string][]string{}
	for i := 0; i < 60; i++ {
		for _, tenant := range []string{"gold", "silver"} {
			spec := sched.JobSpec{Tenant: tenant, Name: "j", Workers: 4, CoresPerWorker: 2, MR: job}
			if tenant == "gold" && i%5 == 4 {
				// Periodic wide job: 24 of a cloud's 32 cores — it blocks
				// when the cloud is busy, exercising the backfill path.
				spec.Workers = 12
			}
			id, err := s.Submit(spec)
			if err != nil {
				panic(err)
			}
			ids[tenant] = append(ids[tenant], id)
		}
	}
	// Measure while both tenants still hold a backlog.
	f.K.RunUntil(900 * sim.Second)
	shares := s.Shares()
	entitled := s.EntitledShares()
	t := metrics.NewTable(
		fmt.Sprintf("E10a: weighted fair share under contention, 2 clouds x 32 cores (backfills=%d, cycles=%d)",
			s.Backfills(), s.Cycles()),
		"tenant", "weight", "entitled share", "delivered share", "relative error", "mean wait (s)", "started")
	for _, tenant := range []string{"gold", "silver"} {
		var wait float64
		started := 0
		for _, id := range ids[tenant] {
			if ji, ok := s.Poll(id); ok && ji.State != sched.Queued {
				wait += ji.Wait.Seconds()
				started++
			}
		}
		if started > 0 {
			wait /= float64(started)
		}
		rel := 0.0
		if entitled[tenant] > 0 {
			rel = (shares[tenant] - entitled[tenant]) / entitled[tenant]
			if rel < 0 {
				rel = -rel
			}
		}
		weight := 3.0
		if tenant == "silver" {
			weight = 1.0
		}
		t.AddRowf(tenant, weight, metrics.FmtPct(entitled[tenant]), metrics.FmtPct(shares[tenant]),
			metrics.FmtPct(rel), wait, started)
	}
	return t, schedSnapshot(s, "E10a metrics snapshot (fair-share run)")
}

func schedPlacementTable(seed int64) *metrics.Table {
	t := metrics.NewTable(
		"E10b: locality-aware vs random placement, input resident at cloud0 (12 x 512 MiB-input jobs)",
		"placement", "mean makespan (s)", "on data cloud", "remote", "WAN bytes", "vs locality-aware")
	type row struct {
		label    string
		makespan float64
		local    int
		remote   int
		wan      int64
	}
	var rows []row
	for _, policy := range []sched.PlacementPolicy{sched.BestScore{}, sched.RandomPlacement{}} {
		f, s := schedFederation(seed, sched.Config{Placement: policy})
		s.AddTenant("data", 1)
		var ids []string
		// Jobs arrive every 45 s, so the data cloud usually has room and
		// the placement choice is real (a saturated federation forces the
		// same split under any policy).
		for i := 0; i < 12; i++ {
			f.K.At(sim.Time(i)*45*sim.Second, func() {
				id, err := s.Submit(sched.JobSpec{
					Tenant: "data", Name: "scan", Workers: 4, CoresPerWorker: 2,
					InputSite: "cloud0", InputBytes: 512 * mb,
					MR: mapreduce.Job{Name: "scan", NumMaps: 16, NumReduces: 1,
						MapCPU: 20, ReduceCPU: 2},
				})
				if err != nil {
					panic(err)
				}
				ids = append(ids, id)
			})
		}
		f.K.Run()
		r := row{label: policy.Name()}
		for _, id := range ids {
			ji, _ := s.Poll(id)
			if ji.State != sched.Done {
				panic(fmt.Sprintf("E10b: job %s state %v err %v", id, ji.State, ji.Err))
			}
			r.makespan += ji.Result.Makespan.Seconds()
			if ji.Cloud == "cloud0" {
				r.local++
			} else {
				r.remote++
			}
		}
		r.makespan /= float64(len(ids))
		r.wan = f.Net.TotalWANBytes()
		rows = append(rows, r)
	}
	base := rows[0].makespan
	for _, r := range rows {
		t.AddRowf(r.label, r.makespan, r.local, r.remote, metrics.FmtBytes(r.wan),
			fmt.Sprintf("%.2fx", r.makespan/base))
	}
	return t
}
