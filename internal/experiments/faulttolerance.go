package experiments

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workload"
)

// E14FaultTolerance replays one seeded heavy-tailed trace with a full
// outage storm injected — full crashes, partial host losses, flap
// episodes, transient deploy faults, WAN degradation — under two fault
// policies. The naive baseline requeues outage victims with zero progress
// credit and readmits flapping clouds immediately, so every crash replays
// the victim's full runtime and every flap cycle re-places gangs onto a
// cloud about to die again. Degraded-mode handling credits the work done
// before the crash, quarantines flappers behind jittered exponential
// backoff, and retries transiently failed launches in place — cutting the
// p99 wait and makespan while completing at least as many jobs.
func E14FaultTolerance(seed int64) []*metrics.Table {
	jobs := workload.Generate(workload.StandardConfig(seed, 6000))
	storm := faults.Generate(faults.Storm(seed, faults.Targets(workload.DefaultClouds())))
	tr := storm.InjectInto(jobs)
	t := metrics.NewTable(
		fmt.Sprintf("E14: %d-job heavy-tail replay under an outage storm (crashes, flaps, deploy faults, WAN degradation) — naive requeue vs degraded-mode", tr.Jobs()),
		"fault handling", "p50 wait (s)", "p99 wait (s)", "makespan (s)",
		"requeues", "quarantine", "retries", "done")
	for _, variant := range []struct {
		label string
		cfg   sched.Config
	}{
		{"naive requeue (zero credit, no quarantine)", sched.Config{EnablePreemption: true, NaiveFaultMode: true}},
		{"degraded-mode (credit+quarantine+retry)", sched.Config{EnablePreemption: true}},
	} {
		r, err := workload.Replay(tr, workload.ReplayConfig{
			Sched:        variant.cfg,
			OverrunSigma: 0.5,
		})
		if err != nil {
			panic(fmt.Sprintf("E14: %s: %v", variant.label, err))
		}
		t.AddRowf(variant.label,
			fmt.Sprintf("%.1f", r.P50WaitSeconds),
			fmt.Sprintf("%.1f", r.P99WaitSeconds),
			fmt.Sprintf("%.0f", r.MakespanSeconds),
			r.OutageRequeues, r.Quarantines, r.LaunchRetries,
			fmt.Sprintf("%d/%d", r.Completed, r.Jobs))
	}
	return []*metrics.Table{t}
}
