// Package experiments regenerates every table in EXPERIMENTS.md: one
// function per claim in the paper's evaluation narrative (the experiment
// index lives in DESIGN.md §4). Each function builds its own federation,
// runs deterministically from a seed, and returns paper-style tables.
// cmd/experiments prints them; bench_test.go wraps each in a testing.B.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/nimbus"
	"repro/internal/sim"
	"repro/internal/vm"
)

const (
	mb = 1 << 20
	gb = 1 << 30
)

// cloudConfig builds the standard experiment cloud: 8-core hosts with
// gigabit NICs behind a 1 Gb/s WAN uplink — the Grid'5000/FutureGrid class
// of hardware the paper used.
func cloudConfig(name string, hosts int, price, speed float64) nimbus.Config {
	return nimbus.Config{
		Name:             name,
		Hosts:            hosts,
		HostSpec:         nimbus.HostSpec{Cores: 8, MemPages: 64 * 16384, Speed: speed},
		NICBW:            125 * mb,
		WANUp:            125 * mb,
		WANDown:          125 * mb,
		PricePerCoreHour: price,
	}
}

// newFederation builds n clouds named cloud0.. with the debian image seeded
// and 60 ms inter-cloud latency (transatlantic, as in the paper's
// FutureGrid+Grid'5000 setup).
func newFederation(seed int64, n int) *core.Federation {
	f := core.NewFederation(seed)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("cloud%d", i)
		c := f.AddCloud(cloudConfig(names[i], 16, 0.08+0.04*float64(i), 1.0))
		m := vm.NewContentModel(seed+int64(i)*17, "debian", 0.1, 0.5, 2048)
		c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m)) // 64 MiB image
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			f.SetWANLatency(names[i], names[j], 60*sim.Millisecond)
		}
	}
	return f
}

func mustCluster(f *core.Federation, name string, dist map[string]int) *core.VirtualCluster {
	var vc *core.VirtualCluster
	var err error
	f.CreateCluster(name, core.ClusterSpec{
		Image: "debian", Cores: 2, MemPages: 8192, CoW: true,
		Distribution: dist,
	}, func(c *core.VirtualCluster, e error) { vc, err = c, e })
	f.K.Run()
	if err != nil {
		panic("experiments: cluster creation failed: " + err.Error())
	}
	return vc
}

// E1SkyComputingScaling reproduces §II's headline: virtual clusters
// spanning 1-3 clouds run BLAST (embarrassingly parallel) with near-linear
// speedup, while a shuffle-heavy job degrades when spread across clouds.
func E1SkyComputingScaling(seed int64) []*metrics.Table {
	t1 := metrics.NewTable("E1a: BLAST MapReduce on virtual clusters spanning clouds",
		"clouds", "VMs", "makespan (s)", "speedup vs 8 VMs", "cross-site shuffle")
	base := 0.0
	for _, cfg := range []struct {
		clouds, vms int
	}{{1, 8}, {1, 16}, {2, 16}, {2, 32}, {3, 48}} {
		f := newFederation(seed, cfg.clouds)
		dist := map[string]int{}
		per := cfg.vms / cfg.clouds
		for i := 0; i < cfg.clouds; i++ {
			dist[fmt.Sprintf("cloud%d", i)] = per
		}
		vc := mustCluster(f, "blast", dist)
		var res mapreduce.Result
		if err := vc.RunJob(mapreduce.BlastJob(256), func(r mapreduce.Result) { res = r }); err != nil {
			panic(err)
		}
		f.K.Run()
		if base == 0 {
			base = res.Makespan.Seconds()
		}
		t1.AddRowf(cfg.clouds, cfg.vms, res.Makespan.Seconds(),
			fmt.Sprintf("%.2fx", base/res.Makespan.Seconds()),
			metrics.FmtBytes(res.CrossSiteShuffleBytes))
	}
	t2 := metrics.NewTable("E1b: shuffle-heavy (sort) job, one cloud vs spread over three (200 Mb/s WAN)",
		"layout", "makespan (s)", "cross-site shuffle", "slowdown")
	single := 0.0
	for _, spread := range []int{1, 3} {
		// Realistic constrained inter-site links: 25 MB/s uplinks, so the
		// cross-cloud shuffle actually contends (the paper's point about
		// which applications suit distributed infrastructures).
		f := core.NewFederation(seed)
		for i := 0; i < spread; i++ {
			name := fmt.Sprintf("cloud%d", i)
			cfg := cloudConfig(name, 16, 0.08, 1.0)
			cfg.WANUp, cfg.WANDown = 25*mb, 25*mb
			c := f.AddCloud(cfg)
			m := vm.NewContentModel(seed+int64(i)*17, "debian", 0.1, 0.5, 2048)
			c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m))
		}
		for i := 0; i < spread; i++ {
			for j := i + 1; j < spread; j++ {
				f.SetWANLatency(fmt.Sprintf("cloud%d", i), fmt.Sprintf("cloud%d", j), 60*sim.Millisecond)
			}
		}
		dist := map[string]int{}
		for i := 0; i < spread; i++ {
			dist[fmt.Sprintf("cloud%d", i)] = 12 / spread
		}
		vc := mustCluster(f, "sort", dist)
		var res mapreduce.Result
		if err := vc.RunJob(mapreduce.SortJob(48, 12), func(r mapreduce.Result) { res = r }); err != nil {
			panic(err)
		}
		f.K.Run()
		if spread == 1 {
			single = res.Makespan.Seconds()
		}
		t2.AddRowf(fmt.Sprintf("%d cloud(s)", spread), res.Makespan.Seconds(),
			metrics.FmtBytes(res.CrossSiteShuffleBytes),
			fmt.Sprintf("%.2fx", res.Makespan.Seconds()/single))
	}
	return []*metrics.Table{t1, t2}
}

// E2ElasticCluster reproduces §II's dynamic cluster-size adjustment: adding
// workers mid-run shortens completion; removing them costs re-execution but
// the job still finishes.
func E2ElasticCluster(seed int64) []*metrics.Table {
	t := metrics.NewTable("E2: dynamic virtual cluster resizing (BLAST, 128 maps)",
		"scenario", "workers", "makespan (s)", "maps executed", "wasted maps")
	run := func(label string, action func(f *core.Federation, vc *core.VirtualCluster)) {
		f := newFederation(seed, 2)
		vc := mustCluster(f, "elastic", map[string]int{"cloud0": 4})
		var res mapreduce.Result
		if err := vc.RunJob(mapreduce.BlastJob(128), func(r mapreduce.Result) { res = r }); err != nil {
			panic(err)
		}
		if action != nil {
			action(f, vc)
		}
		f.K.Run()
		t.AddRowf(label, fmt.Sprintf("4 -> %d", res.PeakWorkers), res.Makespan.Seconds(),
			res.MapsExecuted, res.MapsExecuted-128)
	}
	run("static", nil)
	run("grow +12 @60s", func(f *core.Federation, vc *core.VirtualCluster) {
		f.K.Schedule(60*sim.Second, func() {
			vc.Grow("cloud1", 12, func(err error) {
				if err != nil {
					panic(err)
				}
			})
		})
	})
	run("grow +12 @60s, shrink -8 @150s", func(f *core.Federation, vc *core.VirtualCluster) {
		f.K.Schedule(60*sim.Second, func() {
			vc.Grow("cloud1", 12, func(error) {})
		})
		f.K.Schedule(150*sim.Second, func() { vc.Shrink("cloud1", 8) })
	})
	return []*metrics.Table{t}
}
