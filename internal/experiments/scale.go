package experiments

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workload"
)

// E13ScaleSurvival replays one seeded heavy-tailed trace (the scale
// harness's standard mix: diurnal peaks, burst episodes, Pareto runtimes,
// revocation storms) under increasingly aggressive policy bundles, with
// log-normal estimate mis-calibration (sigma 0.5) stretching the right
// tail at run time. The survival table shows which combinations hold the
// line as optimism compounds: backfill beats FIFO on p50 but inherits its
// tail — the wide science gangs stay blocked behind overrunning backfills;
// reservation aging alone drops the slipped holds (thousands of agings
// fire) yet moves no headline number, because with no elastic growth to
// unshade it is only preemption's trigger; preemption spends p50 (victims
// requeue) to cap the p99 wait and pull the makespan in; consolidation
// rides along, rewriting spanning gangs onto one cloud when churn frees
// their anchor.
func E13ScaleSurvival(seed int64) []*metrics.Table {
	tr := workload.Generate(workload.StandardConfig(seed, 6000))
	variants := []struct {
		label string
		cfg   sched.Config
	}{
		{"fifo (no backfill)", sched.Config{DisableBackfill: true}},
		{"backfill", sched.Config{}},
		{"backfill+aging", sched.Config{ReservationMaxSlips: 3}},
		{"backfill+preempt", sched.Config{EnablePreemption: true}},
		{"backfill+preempt+consolidate", sched.Config{EnablePreemption: true, EnableConsolidation: true}},
	}
	t := metrics.NewTable(
		fmt.Sprintf("E13: %d-job heavy-tail replay (4 tenants, 4x64-core clouds, log-normal overrun sigma=0.5) — policy survival", tr.Jobs()),
		"policy", "p50 wait (s)", "p99 wait (s)", "makespan (s)", "preempt", "backfills", "share err", "done")
	for _, variant := range variants {
		r, err := workload.Replay(tr, workload.ReplayConfig{
			Sched:        variant.cfg,
			OverrunSigma: 0.5,
		})
		if err != nil {
			panic(fmt.Sprintf("E13: %s: %v", variant.label, err))
		}
		t.AddRowf(variant.label,
			fmt.Sprintf("%.1f", r.P50WaitSeconds),
			fmt.Sprintf("%.1f", r.P99WaitSeconds),
			fmt.Sprintf("%.0f", r.MakespanSeconds),
			r.Preemptions, r.Backfills,
			fmt.Sprintf("%.3f", r.ShareErrorMax),
			fmt.Sprintf("%d/%d", r.Completed, r.Jobs))
	}

	// The same ladder with an outage storm injected: crashes, flaps, and
	// deploy faults hit every policy identically (same seed, same schedule),
	// so the delta against the clean table is pure fault-handling cost. The
	// fault columns replace preempt/backfill detail — under a storm the
	// interesting survival axes are requeue volume and tail damage.
	storm := faults.Generate(faults.Storm(seed, faults.Targets(workload.DefaultClouds())))
	str := storm.InjectInto(tr)
	ts := metrics.NewTable(
		fmt.Sprintf("E13 (storm): same %d-job ladder under an injected outage storm — requeue/quarantine/retry load and tail damage per policy", tr.Jobs()),
		"policy", "p50 wait (s)", "p99 wait (s)", "makespan (s)", "requeues", "retries", "share err", "done")
	for _, variant := range variants {
		r, err := workload.Replay(str, workload.ReplayConfig{
			Sched:        variant.cfg,
			OverrunSigma: 0.5,
		})
		if err != nil {
			panic(fmt.Sprintf("E13 storm: %s: %v", variant.label, err))
		}
		ts.AddRowf(variant.label,
			fmt.Sprintf("%.1f", r.P50WaitSeconds),
			fmt.Sprintf("%.1f", r.P99WaitSeconds),
			fmt.Sprintf("%.0f", r.MakespanSeconds),
			r.OutageRequeues, r.LaunchRetries,
			fmt.Sprintf("%.3f", r.ShareErrorMax),
			fmt.Sprintf("%d/%d", r.Completed, r.Jobs))
	}
	return []*metrics.Table{t, ts}
}
