package experiments

import (
	"fmt"

	"repro/internal/deploy"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// E1cDataLocality extends E1 with the DFS layer under the virtual Hadoop
// cluster: maps scheduled on replica holders read locally, everything else
// streams input over the (possibly inter-cloud) network — quantifying why
// the paper's BLAST runs keep input site-local.
func E1cDataLocality(seed int64) []*metrics.Table {
	t := metrics.NewTable("E1c: HDFS data locality under a 2-cloud MapReduce cluster (32 x 64 MiB splits)",
		"scheduling", "makespan (s)", "node-local", "site-local", "remote", "input over network")
	for _, locality := range []bool{true, false} {
		k := sim.NewKernel(seed)
		net := simnet.New(k)
		sites := []*simnet.Site{
			net.AddSite("east", 60*mb, 60*mb),
			net.AddSite("west", 60*mb, 60*mb),
		}
		net.SetSiteLatency("east", "west", 60*sim.Millisecond)
		var nodes []*simnet.Node
		for i := 0; i < 8; i++ {
			nodes = append(nodes, sites[i%2].AddNode(fmt.Sprintf("w%02d", i), 125*mb))
		}
		fs := hdfs.New(net, hdfs.Config{BlockSize: 64 * mb, Replication: 2}, nodes, seed+5)
		var file *hdfs.File
		// External loader (nil writer): replicas spread over all datanodes
		// on both sites, as after a balanced ingest.
		fs.Write("dataset", 32*64*mb, nil, func(f *hdfs.File, err error) {
			if err != nil {
				panic(err)
			}
			file = f
		})
		k.Run()
		cl := mapreduce.NewCluster(net)
		for i, n := range nodes {
			cl.AddWorker(fmt.Sprintf("w%02d", i), n, 1, 2)
		}
		job := mapreduce.Job{Name: "scan", NumMaps: len(file.Blocks), NumReduces: 1,
			MapCPU: 10, ReduceCPU: 2, ShuffleBytesPerMapPerReduce: 64 << 10}
		job.Splits = hdfs.MapSplits(file)
		job.IgnoreLocality = !locality
		var res mapreduce.Result
		if err := cl.Run(job, func(r mapreduce.Result) { res = r }); err != nil {
			panic(err)
		}
		k.Run()
		label := "locality-aware (Hadoop)"
		if !locality {
			label = "locality-oblivious"
		}
		t.AddRowf(label, res.Makespan.Seconds(), res.NodeLocalMaps, res.SiteLocalMaps,
			res.RemoteMaps, metrics.FmtBytes(res.InputNetworkBytes))
	}
	return []*metrics.Table{t}
}

// A3ChunkSize ablates the broadcast chain's pipeline granularity: tiny
// chunks waste per-hop latency, huge chunks destroy pipelining.
func A3ChunkSize(seed int64) []*metrics.Table {
	t := metrics.NewTable("A3: broadcast-chain chunk size, 1 GiB image to 32 hosts",
		"chunk", "propagation (s)", "vs best")
	best := 0.0
	type row struct {
		label string
		secs  float64
	}
	var rows []row
	for _, chunk := range []int64{2 * mb, 8 * mb, 32 * mb, 128 * mb, 512 * mb} {
		k := sim.NewKernel(seed)
		net := simnet.New(k)
		s := net.AddSite("cloud", 125*mb, 125*mb)
		repo := s.AddNode("repo", 125*mb)
		hosts := make([]*simnet.Node, 32)
		for i := range hosts {
			hosts[i] = s.AddNode(fmt.Sprintf("h%03d", i), 125*mb)
		}
		var res deploy.Result
		deploy.Chain{ChunkBytes: chunk}.Propagate(net, repo, hosts, 1*gb, func(r deploy.Result) { res = r })
		k.Run()
		secs := res.Elapsed().Seconds()
		if best == 0 || secs < best {
			best = secs
		}
		rows = append(rows, row{fmt.Sprintf("%d MiB", chunk/mb), secs})
	}
	for _, r := range rows {
		t.AddRowf(r.label, r.secs, fmt.Sprintf("%.2fx", r.secs/best))
	}
	return []*metrics.Table{t}
}
