package experiments

import (
	"fmt"

	"repro/internal/dedup"
	"repro/internal/deploy"
	"repro/internal/metrics"
	"repro/internal/migration"
	"repro/internal/nimbus"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vm"
)

// E3aBroadcastChain reproduces §II's image-deployment result: the Kastafior
// broadcast chain distributes a VM image to N hosts in near-constant time
// while unicast degrades linearly.
func E3aBroadcastChain(seed int64) []*metrics.Table {
	t := metrics.NewTable("E3a: 1 GiB image propagation, broadcast chain vs unicast",
		"hosts", "unicast (s)", "chain (s)", "speedup")
	for _, n := range []int{2, 8, 32, 128} {
		times := map[string]float64{}
		for _, strat := range []deploy.Strategy{deploy.Unicast{}, deploy.Chain{}} {
			k := sim.NewKernel(seed)
			net := simnet.New(k)
			s := net.AddSite("cloud", 125*mb, 125*mb)
			repo := s.AddNode("repo", 125*mb)
			hosts := make([]*simnet.Node, n)
			for i := range hosts {
				hosts[i] = s.AddNode(fmt.Sprintf("h%03d", i), 125*mb)
			}
			var res deploy.Result
			strat.Propagate(net, repo, hosts, 1*gb, func(r deploy.Result) { res = r })
			k.Run()
			times[strat.Name()] = res.Elapsed().Seconds()
		}
		t.AddRowf(n, times["unicast"], times["chain"],
			fmt.Sprintf("%.1fx", times["unicast"]/times["chain"]))
	}
	return []*metrics.Table{t}
}

// E3bCoWStartup reproduces §II's copy-on-write result: near-instant VM
// creation once the base image is cached.
func E3bCoWStartup(seed int64) []*metrics.Table {
	t := metrics.NewTable("E3b: 16-VM cluster startup, full-copy vs CoW images (1 GiB base)",
		"mode", "propagation (s)", "ready (s)")
	run := func(label string, cow, warm bool) {
		f := newFederation(seed, 1)
		c := f.Cloud("cloud0")
		m := vm.NewContentModel(seed, "big", 0.1, 0.5, 2048)
		c.PutImage(vm.NewDiskImage("big", 16384, 65536, m)) // 1 GiB
		deployOnce := func(onDone func(d nimbus.Deployment)) {
			c.Deploy(nimbus.DeployRequest{
				NamePrefix: "e3b-", Count: 16, Image: "big",
				Cores: 1, MemPages: 4096, CoW: cow,
			}, func(d nimbus.Deployment) {
				if d.Err != nil {
					panic(d.Err)
				}
				onDone(d)
			})
		}
		var prop, ready sim.Time
		if warm {
			deployOnce(func(d nimbus.Deployment) {
				// Free the hosts, then redeploy: the image is now cached
				// host-side so propagation is skipped entirely.
				for _, v := range d.VMs {
					c.Terminate(v)
				}
				deployOnce(func(d2 nimbus.Deployment) {
					prop, ready = d2.PropagationTime, d2.ReadyTime
				})
			})
		} else {
			deployOnce(func(d nimbus.Deployment) { prop, ready = d.PropagationTime, d.ReadyTime })
		}
		f.K.Run()
		t.AddRowf(label, prop.Seconds(), ready.Seconds())
	}
	run("full copy, cold cache", false, false)
	run("CoW, cold cache", true, false)
	run("CoW, warm cache", true, true)
	return []*metrics.Table{t}
}

// workloads for E4/A1/A2, matching the Shrinker report's evaluation set.
var migrationWorkloads = []struct {
	name string
	mk   func(m *vm.ContentModel, seed int64) *vm.Workload
}{
	{"idle", vm.IdleWorkload},
	{"webserver", vm.WebServerWorkload},
	{"kernelbuild", vm.KernelBuildWorkload},
}

// shrinkerCluster builds nVMs 64-MiB VMs with literature-typical content
// redundancy on a src/dst WAN pair and returns everything E4-style
// experiments need.
func shrinkerCluster(seed int64, nVMs int, workload func(*vm.ContentModel, int64) *vm.Workload) (
	*sim.Kernel, *simnet.Network, []migration.Move) {
	k := sim.NewKernel(seed)
	net := simnet.New(k)
	a := net.AddSite("src-cloud", 125*mb, 125*mb)
	b := net.AddSite("dst-cloud", 125*mb, 125*mb)
	net.SetSiteLatency("src-cloud", "dst-cloud", 60*sim.Millisecond)
	src := a.AddNode("src-host", 1*gb)
	dst := b.AddNode("dst-host", 1*gb)
	moves := make([]migration.Move, nVMs)
	for i := range moves {
		m := vm.NewContentModel(seed+int64(i)*31, "debian", 0.10, 0.35, 8192)
		v := vm.New(fmt.Sprintf("vm%02d", i), "debian", 2, 16384, m, nil)
		v.Attach(workload(m, seed+int64(i)*101))
		moves[i] = migration.Move{VM: v, Src: src, Dst: dst}
	}
	return k, net, moves
}

// E4Shrinker reproduces §III-A's headline numbers: Shrinker reduces
// migration time by ~20% and WAN bandwidth by 30-40% depending on workload,
// for live migration of an 8-VM virtual cluster over a WAN.
func E4Shrinker(seed int64) []*metrics.Table {
	t := metrics.NewTable("E4: 8-VM virtual cluster live migration over WAN, pre-copy vs Shrinker",
		"workload", "method", "total (s)", "max downtime (ms)", "WAN traffic", "bandwidth saving", "time saving")
	for _, w := range migrationWorkloads {
		var baseline migration.ClusterResult
		for _, useShrinker := range []bool{false, true} {
			k, net, moves := shrinkerCluster(seed, 8, w.mk)
			opts := migration.Options{MigrateDisk: false}
			method := "pre-copy"
			if useShrinker {
				opts.Registry = dedup.NewRegistry("site:dst-cloud")
				method = "Shrinker"
			}
			var cres migration.ClusterResult
			migration.MigrateCluster(net, moves, opts, 2, func(c migration.ClusterResult) { cres = c })
			k.Run()
			wan := net.WANBytes("src-cloud", "dst-cloud")
			if !useShrinker {
				baseline = cres
				t.AddRowf(w.name, method, cres.TotalTime.Seconds(),
					float64(cres.MaxDowntime)/float64(sim.Millisecond),
					metrics.FmtBytes(wan), "-", "-")
				continue
			}
			bwSave := 1 - float64(cres.WireBytes)/float64(baseline.WireBytes)
			timeSave := 1 - cres.TotalTime.Seconds()/baseline.TotalTime.Seconds()
			t.AddRowf(w.name, method, cres.TotalTime.Seconds(),
				float64(cres.MaxDowntime)/float64(sim.Millisecond),
				metrics.FmtBytes(wan), metrics.FmtPct(bwSave), metrics.FmtPct(timeSave))
		}
	}
	return []*metrics.Table{t}
}

// A1RegistryScope is the DESIGN.md ablation: Shrinker's site-wide registry
// (inter-VM dedup) vs a per-VM destination-node registry (the
// Sapuntzakis/Tolia-era approach) vs no dedup.
func A1RegistryScope(seed int64) []*metrics.Table {
	t := metrics.NewTable("A1: registry scope ablation, 8-VM cluster migration (webserver workload)",
		"registry scope", "WAN traffic", "bandwidth saving", "pages deduped")
	var baselineWire int64
	for _, scope := range []string{"none", "node (per-VM)", "site-wide (Shrinker)"} {
		k, net, moves := shrinkerCluster(seed, 8, vm.WebServerWorkload)
		var cres migration.ClusterResult
		switch scope {
		case "none":
			migration.MigrateCluster(net, moves, migration.Options{}, 2,
				func(c migration.ClusterResult) { cres = c })
			k.Run()
		case "node (per-VM)":
			// A fresh registry per VM: only intra-VM duplicates found.
			done := 0
			for i := range moves {
				i := i
				opts := migration.Options{Registry: dedup.NewRegistry(fmt.Sprintf("node:%d", i))}
				migration.Live(net, moves[i].VM, moves[i].Src, moves[i].Dst, opts,
					func(r migration.Result) {
						cres.Results = append(cres.Results, r)
						cres.WireBytes += r.WireBytes
						cres.RawBytes += r.RawBytes
						done++
					})
			}
			k.Run()
		default:
			migration.MigrateCluster(net, moves,
				migration.Options{Registry: dedup.NewRegistry("site:dst")}, 2,
				func(c migration.ClusterResult) { cres = c })
			k.Run()
		}
		var deduped int64
		for _, r := range cres.Results {
			deduped += r.PagesDeduped
		}
		if scope == "none" {
			baselineWire = cres.WireBytes
			t.AddRowf(scope, metrics.FmtBytes(cres.WireBytes), "-", deduped)
			continue
		}
		save := 1 - float64(cres.WireBytes)/float64(baselineWire)
		t.AddRowf(scope, metrics.FmtBytes(cres.WireBytes), metrics.FmtPct(save), deduped)
	}
	return []*metrics.Table{t}
}

// A2DirtyRateSweep is the convergence ablation: as the guest dirties pages
// faster, pre-copy degrades toward stop-and-copy and Shrinker's advantage
// shifts from time to downtime.
func A2DirtyRateSweep(seed int64) []*metrics.Table {
	t := metrics.NewTable("A2: dirty-rate sensitivity, single 64-MiB VM over WAN",
		"dirty rate (pages/s)", "precopy total (s)", "precopy downtime (ms)",
		"shrinker total (s)", "shrinker downtime (ms)", "time saving")
	for _, rate := range []float64{100, 1000, 5000, 20000, 60000} {
		var results [2]migration.Result
		for i, useReg := range []bool{false, true} {
			k := sim.NewKernel(seed)
			net := simnet.New(k)
			a := net.AddSite("s", 125*mb, 125*mb)
			b := net.AddSite("d", 125*mb, 125*mb)
			net.SetSiteLatency("s", "d", 60*sim.Millisecond)
			src := a.AddNode("sh", 1*gb)
			dst := b.AddNode("dh", 1*gb)
			m := vm.NewContentModel(seed, "debian", 0.15, 0.40, 4096)
			v := vm.New("vm0", "debian", 2, 16384, m, nil)
			v.Attach(vm.NewWorkload("sweep", rate, 0.3, 0.8, 0.3, m, seed+7))
			opts := migration.Options{}
			if useReg {
				opts.Registry = dedup.NewRegistry("site:d")
			}
			var res migration.Result
			migration.Live(net, v, src, dst, opts, func(r migration.Result) { res = r })
			k.Run()
			results[i] = res
		}
		p, s := results[0], results[1]
		t.AddRowf(int(rate), p.TotalTime.Seconds(),
			float64(p.Downtime)/float64(sim.Millisecond),
			s.TotalTime.Seconds(), float64(s.Downtime)/float64(sim.Millisecond),
			metrics.FmtPct(1-s.TotalTime.Seconds()/p.TotalTime.Seconds()))
	}
	return []*metrics.Table{t}
}
