package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsProduceTables smoke-runs every experiment at a fixed
// seed and checks each yields non-empty tables. Individual result *shapes*
// are asserted in the focused tests below.
func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are long; skipped in -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(7)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				s := tb.String()
				if len(strings.Split(strings.TrimSpace(s), "\n")) < 3 {
					t.Fatalf("%s table empty:\n%s", e.ID, s)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E4"); !ok {
		t.Fatal("E4 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown ID found")
	}
}

func TestE4ShrinkerShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := E4Shrinker(7)
	out := tables[0].String()
	// The table must contain both methods for all three workloads.
	for _, want := range []string{"idle", "webserver", "kernelbuild", "Shrinker", "pre-copy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E4 table missing %q:\n%s", want, out)
		}
	}
}

func TestE5SurvivalShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := E5NetworkTransparency(7)
	out := tables[0].String()
	if !strings.Contains(out, "off (state of the art)") || !strings.Contains(out, "on (§III-B)") {
		t.Fatalf("E5 table malformed:\n%s", out)
	}
}
