package experiments

import (
	"strings"
	"testing"

	"repro/internal/sched"
)

// TestAllExperimentsProduceTables smoke-runs every experiment at a fixed
// seed and checks each yields non-empty tables. Individual result *shapes*
// are asserted in the focused tests below.
func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are long; skipped in -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(7)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				s := tb.String()
				if len(strings.Split(strings.TrimSpace(s), "\n")) < 3 {
					t.Fatalf("%s table empty:\n%s", e.ID, s)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E4"); !ok {
		t.Fatal("E4 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown ID found")
	}
}

func TestE4ShrinkerShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := E4Shrinker(7)
	out := tables[0].String()
	// The table must contain both methods for all three workloads.
	for _, want := range []string{"idle", "webserver", "kernelbuild", "Shrinker", "pre-copy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E4 table missing %q:\n%s", want, out)
		}
	}
}

func TestE5SurvivalShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := E5NetworkTransparency(7)
	out := tables[0].String()
	if !strings.Contains(out, "off (state of the art)") || !strings.Contains(out, "on (§III-B)") {
		t.Fatalf("E5 table malformed:\n%s", out)
	}
}

// TestE11GangShape pins the gang-placement acceptance claims: (1) a job
// wider than any single cloud completes under a spanning plan while the
// single-cloud policy leaves it queued; (2) the shuffle-cost-aware scorer
// achieves strictly lower makespan than bandwidth-oblivious spanning on a
// heterogeneous-bandwidth topology.
func TestE11GangShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := E11GangPlacement(7)
	out := tables[0].String()
	for _, want := range []string{"best-score", "done", "random", "queued", "+"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E11a table missing %q:\n%s", want, out)
		}
	}
	aware, _ := gangShuffleRun(7, sched.Config{})
	oblivious, _ := gangShuffleRun(7, sched.Config{DisableShuffleCost: true})
	if !aware.Plan.Spanning() || !oblivious.Plan.Spanning() {
		t.Fatalf("plans not spanning: aware=%v oblivious=%v", aware.Plan, oblivious.Plan)
	}
	if aware.Plan.WorkersOn("thin") != 0 {
		t.Errorf("shuffle-aware plan %v used the thin pipe", aware.Plan)
	}
	if aware.Result.Makespan >= oblivious.Result.Makespan {
		t.Fatalf("shuffle-aware makespan %v not strictly below oblivious %v",
			aware.Result.Makespan, oblivious.Result.Makespan)
	}
}
