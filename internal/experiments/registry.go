package experiments

import "repro/internal/metrics"

// Experiment pairs an experiment ID (from DESIGN.md §4) with its runner.
type Experiment struct {
	ID    string
	Claim string
	Run   func(seed int64) []*metrics.Table
}

// All returns every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{"E1", "virtual clusters spanning clouds run BLAST efficiently; EP apps scale best (§II)", E1SkyComputingScaling},
		{"E1c", "HDFS data locality keeps MapReduce input off the WAN (§II substrate)", E1cDataLocality},
		{"E2", "dynamic cluster-size adjustment at run time (§II)", E2ElasticCluster},
		{"E3a", "broadcast chain distributes images efficiently (§II)", E3aBroadcastChain},
		{"E3b", "copy-on-write images give near-instant VM creation (§II)", E3bCoWStartup},
		{"E4", "Shrinker cuts migration time ~20%, WAN bytes 30-40% (§III-A)", E4Shrinker},
		{"E5", "ViNe reconfiguration keeps TCP connections across migration (§III-B)", E5NetworkTransparency},
		{"E6", "passive capture infers communication patterns like invasive tools (§III-C)", E6PatternDetection},
		{"E7", "autonomic adaptation relocates clusters; comm-aware placement limits WAN traffic (§III-C)", E7AutonomicAdaptation},
		{"E8", "Elastic MapReduce service meets deadlines via resource selection (§IV)", E8ElasticMapReduce},
		{"E9", "migratable spot instances preserve work under revocation (§IV)", E9MigratableSpot},
		{"E10", "federation scheduler: fair shares converge to weights; locality-aware placement beats random (§II+§IV synthesis)", E10SchedulerContention},
		{"E11", "gang placement: wider-than-any-cloud jobs span clouds; shuffle-cost-aware plans beat bandwidth-oblivious spanning (§II gang scheduling)", E11GangPlacement},
		{"E12", "revocable placement: spot-priced preemption starts a blocked head >=2x sooner than wait-for-release; consolidation zeroes a spanning gang's cross-site shuffle (§III-C adaptation + §IV synthesis)", E12Preemption},
		{"E13", "scale survival: under a heavy-tailed diurnal trace with mis-calibrated estimates, preemption (+aging, +consolidation) caps the p99 wait and fair-share drift that plain backfill lets blow up (§IV at scale)", E13ScaleSurvival},
		{"E14", "fault tolerance: under an outage storm, degraded-mode handling (progress credit + flap quarantine + launch retry) beats naive zero-credit requeue on p99 wait and goodput (§IV robustness)", E14FaultTolerance},
		{"A1", "ablation: Shrinker registry scope (site-wide vs per-VM vs none)", A1RegistryScope},
		{"A2", "ablation: dirty-rate sensitivity of pre-copy vs Shrinker", A2DirtyRateSweep},
		{"A3", "ablation: broadcast-chain chunk size (pipelining vs per-hop latency)", A3ChunkSize},
	}
}

// ByID returns one experiment, or a zero Experiment if unknown.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
