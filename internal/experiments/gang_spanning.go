package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/vm"
)

// E11GangPlacement evaluates plan-based gang placement (jobs spanning
// clouds over the overlay):
//
//   - E11a: a job needing 1.5x any single cloud's cores completes via a
//     two-cloud spanning plan, while the single-cloud baseline leaves it
//     queued forever;
//   - E11b: on a heterogeneous-bandwidth topology, the shuffle-cost-aware
//     scorer picks the fat-pipe partner and beats bandwidth-oblivious
//     spanning (which tie-breaks to the cheaper, thin-pipe cloud) on
//     makespan and WAN traffic.
func E11GangPlacement(seed int64) []*metrics.Table {
	span, spanSnap := gangSpanVsQueueTable(seed)
	return []*metrics.Table{
		span,
		spanSnap,
		gangShuffleAwareTable(seed),
	}
}

// gangFederation builds a federation for the gang experiments; wan maps
// cloud name to its WAN up/down capacity (heterogeneous pipes).
func gangFederation(seed int64, cfg sched.Config, prices map[string]float64, wan map[string]float64) (*core.Federation, *sched.Scheduler) {
	f := core.NewFederation(seed)
	names := make([]string, 0, len(prices))
	for name := range prices {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		cc := cloudConfig(name, 4, prices[name], 1.0)
		cc.WANUp, cc.WANDown = wan[name], wan[name]
		c := f.AddCloud(cc)
		m := vm.NewContentModel(seed+int64(i)*17, "debian", 0.1, 0.5, 2048)
		c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m))
	}
	s := f.EnableScheduler(core.SchedulerOptions{Sched: cfg})
	return f, s
}

func gangSpanVsQueueTable(seed int64) (*metrics.Table, *metrics.Table) {
	t := metrics.NewTable(
		"E11a: 48-core job on two 32-core clouds — gang placement vs single-cloud (horizon 2 h)",
		"placement", "state", "plan", "makespan (s)", "cross-site shuffle", "WAN bytes")
	var snap *metrics.Table
	for _, policy := range []sched.PlacementPolicy{sched.BestScore{}, sched.RandomPlacement{}} {
		f, s := gangFederation(seed, sched.Config{Placement: policy},
			map[string]float64{"cloud0": 0.08, "cloud1": 0.12},
			map[string]float64{"cloud0": 60 * mb, "cloud1": 60 * mb})
		id, err := s.Submit(sched.JobSpec{
			Tenant: "big", Name: "wide", Workers: 24, CoresPerWorker: 2,
			MR: mapreduce.Job{Name: "wide", NumMaps: 48, NumReduces: 2,
				MapCPU: 30, ReduceCPU: 2, ShuffleBytesPerMapPerReduce: mb},
		})
		if err != nil {
			panic(err)
		}
		f.K.RunUntil(2 * sim.Hour)
		ji, _ := s.Poll(id)
		makespan := "-"
		if ji.State == sched.Done {
			makespan = fmt.Sprintf("%.1f", ji.Result.Makespan.Seconds())
		}
		t.AddRowf(policy.Name(), ji.State.String(), ji.Plan.String(), makespan,
			metrics.FmtBytes(ji.Result.CrossSiteShuffleBytes), metrics.FmtBytes(f.Net.TotalWANBytes()))
		if snap == nil { // spanning (BestScore) run
			snap = schedSnapshot(s, "E11a metrics snapshot (gang-placement run)")
		}
	}
	return t, snap
}

// gangShuffleRun executes the E11b scenario — a 48-core job spanning from
// "anchor" with a fat-pipe and a cheap thin-pipe partner on offer — under
// the given scheduler config, returning the job view and WAN bytes.
func gangShuffleRun(seed int64, cfg sched.Config) (sched.JobInfo, int64) {
	f, s := gangFederation(seed, cfg,
		map[string]float64{"anchor": 0.08, "fat": 0.12, "thin": 0.05},
		map[string]float64{"anchor": 100 * mb, "fat": 100 * mb, "thin": 5 * mb})
	id, err := s.Submit(sched.JobSpec{
		Tenant: "span", Name: "sorty", Workers: 24, CoresPerWorker: 2,
		InputSite: "anchor", InputBytes: 256 * mb,
		MR: mapreduce.Job{Name: "sorty", NumMaps: 48, NumReduces: 8,
			MapCPU: 10, ReduceCPU: 4, ShuffleBytesPerMapPerReduce: 2 * mb},
	})
	if err != nil {
		panic(err)
	}
	f.K.Run()
	ji, _ := s.Poll(id)
	return ji, f.Net.TotalWANBytes()
}

func gangShuffleAwareTable(seed int64) *metrics.Table {
	t := metrics.NewTable(
		"E11b: spanning partner choice on heterogeneous pipes (anchor-fat 100 MB/s, anchor-thin 5 MB/s, thin cheapest)",
		"plan scorer", "plan", "makespan (s)", "cross-site shuffle", "WAN bytes", "vs shuffle-aware")
	type row struct {
		label    string
		plan     string
		makespan float64
		cross    int64
		wan      int64
	}
	var rows []row
	for _, variant := range []struct {
		label string
		cfg   sched.Config
	}{
		{"shuffle-aware", sched.Config{}},
		{"bandwidth-oblivious", sched.Config{DisableShuffleCost: true}},
	} {
		ji, wan := gangShuffleRun(seed, variant.cfg)
		if ji.State != sched.Done {
			panic(fmt.Sprintf("E11b: %s job state %v err %v", variant.label, ji.State, ji.Err))
		}
		rows = append(rows, row{variant.label, ji.Plan.String(),
			ji.Result.Makespan.Seconds(), ji.Result.CrossSiteShuffleBytes, wan})
	}
	base := rows[0].makespan
	for _, r := range rows {
		t.AddRowf(r.label, r.plan, r.makespan, metrics.FmtBytes(r.cross), metrics.FmtBytes(r.wan),
			fmt.Sprintf("%.2fx", r.makespan/base))
	}
	return t
}
