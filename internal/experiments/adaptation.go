package experiments

import (
	"fmt"

	"repro/internal/autonomic"
	"repro/internal/core"
	"repro/internal/emr"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/netmon"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vine"
	"repro/internal/vm"
)

// seedImages installs the debian base image on every cloud of a manually
// assembled federation.
func seedImages(f *core.Federation, seed int64) {
	for i, c := range f.Clouds() {
		m := vm.NewContentModel(seed+int64(i)*17, "debian", 0.1, 0.5, 2048)
		c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m))
	}
}

// E5NetworkTransparency reproduces §III-B: with ViNe reconfiguration, open
// TCP connections survive inter-cloud live migration; without it they
// break. Also reports the reconfiguration latency as overlay size grows.
func E5NetworkTransparency(seed int64) []*metrics.Table {
	t := metrics.NewTable("E5a: TCP connection survival across inter-cloud live migration",
		"overlay reconfig", "connections", "survived", "max outage (ms)")
	for _, reconfig := range []bool{false, true} {
		f := newFederation(seed, 2)
		vc := mustCluster(f, "e5", map[string]int{"cloud0": 4, "cloud1": 4})
		// Connections from every cloud1 VM to one cloud0 VM, then migrate it.
		target := f.VM(vc.VMsAt("cloud0")[0])
		var conns []*vine.Connection
		for _, peer := range vc.VMsAt("cloud1") {
			conns = append(conns, vine.NewConnection(f.Overlay,
				f.VM(peer).VirtualIP, target.VirtualIP, 30*sim.Second, 500*sim.Millisecond))
		}
		reconfig := reconfig
		f.K.Schedule(5*sim.Second, func() {
			f.MigrateVM(target.Name, "cloud1", core.MigrateOptions{
				Live: true, WithDisk: true, Reconfigure: reconfig,
			}, nil)
		})
		f.K.RunUntil(3 * sim.Minute)
		survived := 0
		var maxOutage sim.Time
		for _, c := range conns {
			if !c.Broken {
				survived++
			}
			if c.MaxOutage > maxOutage {
				maxOutage = c.MaxOutage
			}
			c.Close()
		}
		label := "off (state of the art)"
		outage := "∞ (broken)"
		if reconfig {
			label = "on (§III-B)"
			outage = fmt.Sprintf("%.0f", float64(maxOutage)/float64(sim.Millisecond))
		}
		t.AddRowf(label, len(conns), survived, outage)
	}
	t2 := metrics.NewTable("E5b: overlay reconfiguration latency vs federation size",
		"clouds (VRs)", "reconfig latency (ms)")
	for _, n := range []int{2, 4, 8} {
		f := newFederation(seed, n)
		vc := mustCluster(f, "e5b", map[string]int{"cloud0": 1, "cloud1": 1})
		name := vc.VMsAt("cloud0")[0]
		var lat sim.Time
		done := false
		f.MigrateVM(name, "cloud1", core.DefaultMigrate(), nil)
		// Measure a direct overlay reconfiguration after the migration.
		f.K.Run()
		v := f.VM(name)
		h := f.Cloud("cloud0").Hosts()[0]
		f.Cloud("cloud0").Adopt(v)
		f.Overlay.VMMoved(v.VirtualIP, h.Node, true, func(l sim.Time) { lat = l; done = true })
		f.K.Run()
		if !done {
			panic("reconfiguration never converged")
		}
		t2.AddRowf(n, float64(lat)/float64(sim.Millisecond))
	}
	return []*metrics.Table{t, t2}
}

// E6PatternDetection reproduces §III-C's detection result: the passive
// hypervisor-level monitor infers communication patterns matching the
// invasive (instrumented-library) ground truth, across synthetic patterns
// and a real MapReduce shuffle, at several packet-sampling rates.
func E6PatternDetection(seed int64) []*metrics.Table {
	t := metrics.NewTable("E6: passive traffic-matrix inference vs invasive ground truth",
		"pattern", "sampling", "correlation", "edge precision", "edge recall", "rel. L1 error")
	report := func(pattern string, rate float64, truth, obs netmon.Matrix) {
		corr := netmon.Correlation(truth, obs)
		p, r := netmon.PrecisionRecall(truth, obs, 4*mb)
		t.AddRow(pattern, fmt.Sprintf("1/%d", int(1/rate)),
			fmt.Sprintf("%.4f", corr), fmt.Sprintf("%.2f", p),
			fmt.Sprintf("%.2f", r), fmt.Sprintf("%.4f", netmon.NormalizedError(truth, obs)))
	}
	for _, pattern := range []string{"ring", "all-to-all", "master-worker"} {
		for _, rate := range []float64{1.0, 0.1, 0.01} {
			k := sim.NewKernel(seed)
			net := simnet.New(k)
			s := net.AddSite("cloud", 125*mb, 125*mb)
			var nodes []*simnet.Node
			for i := 0; i < 8; i++ {
				nodes = append(nodes, s.AddNode(fmt.Sprintf("vm%d", i), 125*mb))
			}
			mon := netmon.New(net, rate, seed+99, "app:")
			rec := netmon.NewRecorder()
			spec := netmon.PatternSpec{Nodes: nodes, BytesPerTransfer: 8 * mb,
				Interval: sim.Second, Waves: 5, Tag: "app:" + pattern}
			switch pattern {
			case "ring":
				netmon.RunRing(net, spec, rec, nil)
			case "all-to-all":
				netmon.RunAllToAll(net, spec, rec, nil)
			default:
				netmon.RunMasterWorker(net, spec, rec, nil)
			}
			k.Run()
			report(pattern, rate, rec.Truth, mon.Matrix())
		}
	}
	// Real application: MapReduce shuffle. The invasive baseline is exact
	// per-transfer accounting (full capture); the passive detector samples.
	for _, rate := range []float64{1.0, 0.1, 0.01} {
		f := newFederation(seed, 2)
		truthMon := netmon.New(f.Net, 1.0, seed+1, "shuffle:")
		mon := netmon.New(f.Net, rate, seed+2, "shuffle:")
		vc := mustCluster(f, "e6", map[string]int{"cloud0": 4, "cloud1": 4})
		if err := vc.RunJob(mapreduce.SortJob(32, 8), nil); err != nil {
			panic(err)
		}
		f.K.Run()
		report("mapreduce-shuffle", rate, truthMon.Matrix(), mon.Matrix())
	}
	return []*metrics.Table{t}
}

// E7AutonomicAdaptation reproduces §III-C's adaptation scenarios: the cost
// policy relocates a cluster when prices diverge, and communication-aware
// placement cuts inter-cloud traffic versus oblivious spreading.
func E7AutonomicAdaptation(seed int64) []*metrics.Table {
	t := metrics.NewTable("E7a: price-driven adaptation (3-VM cluster started on the 50%-pricier cloud)",
		"policy", "migrations", "final site", "compute cost ($)", "WAN traffic")
	for _, enabled := range []bool{false, true} {
		f := newFederation(seed, 2) // cloud0 $0.08, cloud1 $0.12
		vc := mustCluster(f, "e7", map[string]int{"cloud1": 3})
		if enabled {
			f.EnableAutonomic(30*sim.Second, autonomic.CostPolicy{Threshold: 0.2})
		}
		f.K.RunUntil(30 * sim.Minute)
		if f.Engine() != nil {
			f.Engine().Stop()
		}
		f.K.Run()
		cost := f.Cloud("cloud0").Cost() + f.Cloud("cloud1").Cost()
		site := "cloud1"
		if len(vc.VMsAt("cloud0")) == 3 {
			site = "cloud0"
		}
		label := "static"
		if enabled {
			label = "cost policy"
		}
		t.AddRowf(label, f.Migrations, site, cost, metrics.FmtBytes(f.Net.TotalWANBytes()))
	}

	t2 := metrics.NewTable("E7b: communication-aware placement of two chatty 4-VM groups",
		"placement", "cross-cloud traffic per round", "reduction")
	vms, traffic := chattyGroups()
	sites := []string{"cloud0", "cloud1"}
	capacity := map[string]int{"cloud0": 4, "cloud1": 4}
	rr := autonomic.PlaceRoundRobin(vms, sites, capacity)
	ca := autonomic.PlaceCommunicationAware(vms, traffic, sites, capacity, nil)
	autonomic.RefineKL(ca, traffic, 128)
	cutRR := autonomic.CutBytes(rr, traffic)
	cutCA := autonomic.CutBytes(ca, traffic)
	t2.AddRowf("round-robin (oblivious)", metrics.FmtBytes(cutRR), "-")
	t2.AddRowf("communication-aware", metrics.FmtBytes(cutCA),
		metrics.FmtPct(1-float64(cutCA)/float64(cutRR)))
	return []*metrics.Table{t, t2}
}

func chattyGroups() ([]string, netmon.Matrix) {
	m := make(netmon.Matrix)
	var vms []string
	for g := 0; g < 2; g++ {
		var group []string
		for i := 0; i < 4; i++ {
			group = append(group, fmt.Sprintf("g%d-vm%d", g, i))
		}
		for _, x := range group {
			for _, y := range group {
				if x != y {
					m.Add(x, y, 32*mb)
				}
			}
		}
		vms = append(vms, group...)
	}
	m.Add("g0-vm0", "g1-vm0", mb/4)
	return vms, m
}

// E8ElasticMapReduce reproduces §IV's Elastic MapReduce service: deadline
// jobs on federated clouds, static vs elastic provisioning under cheapest
// and fastest resource-selection policies.
func E8ElasticMapReduce(seed int64) []*metrics.Table {
	t := metrics.NewTable("E8: deadline MapReduce (128 maps x 20s), 4 initial workers, heterogeneous clouds",
		"provisioning", "deadline (s)", "finished (s)", "met?", "workers added", "cost ($)")
	job := mapreduce.Job{Name: "deadline", NumMaps: 128, NumReduces: 2,
		MapCPU: 20, ReduceCPU: 4, ShuffleBytesPerMapPerReduce: 256 << 10}
	deadline := 300 * sim.Second
	run := func(label string, elastic bool, policy emr.SelectionPolicy) {
		// Heterogeneous federation: cloud0 hosts the initial workers;
		// cloud1 is cheap and ordinary, cloud2 fast and expensive — so
		// cheapest and fastest selection genuinely diverge.
		f := core.NewFederation(seed)
		for i, d := range []struct {
			price, speed float64
		}{{0.08, 1.0}, {0.03, 1.0}, {0.25, 2.5}} {
			name := fmt.Sprintf("cloud%d", i)
			f.AddCloud(cloudConfig(name, 16, d.price, d.speed))
		}
		seedImages(f, seed)
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				f.SetWANLatency(fmt.Sprintf("cloud%d", i), fmt.Sprintf("cloud%d", j), 60*sim.Millisecond)
			}
		}
		vc := mustCluster(f, "e8", map[string]int{"cloud0": 4})
		var rep emr.Report
		var res mapreduce.Result
		if elastic {
			svc := emr.New(core.EMRAdapter{VC: vc}, policy)
			if err := svc.Submit(emr.JobSpec{Job: job, Deadline: deadline, SlotsPerWorker: 2},
				func(r emr.Report) { rep = r }); err != nil {
				panic(err)
			}
			f.K.Run()
			res = rep.Result
		} else {
			if err := vc.RunJob(job, func(r mapreduce.Result) { res = r }); err != nil {
				panic(err)
			}
			f.K.Run()
			rep.FinishedAt = f.K.Now()
			rep.MetDeadline = rep.FinishedAt <= deadline
		}
		var cost float64
		for _, c := range f.Clouds() {
			cost += c.Cost()
		}
		t.AddRowf(label, deadline.Seconds(), res.Makespan.Seconds(),
			fmt.Sprintf("%v", rep.MetDeadline), rep.WorkersAdded, cost)
	}
	run("static", false, emr.SelectCheapest)
	run("elastic / cheapest", true, emr.SelectCheapest)
	run("elastic / fastest", true, emr.SelectFastest)
	return []*metrics.Table{t}
}

// E9MigratableSpot reproduces §IV's migratable spot instances: when a price
// spike revokes spot VMs mid-job, killing loses completed map work while
// migrating preserves it.
func E9MigratableSpot(seed int64) []*metrics.Table {
	t := metrics.NewTable("E9: spot revocation during BLAST (96 maps), kill vs migrate",
		"revocation behaviour", "makespan (s)", "maps executed", "wasted maps", "spot events")
	run := func(label string, migrate bool) {
		f := core.NewFederation(seed)
		c0 := f.AddCloud(cloudConfig("cloud0", 16, 0.10, 1.0))
		c1 := f.AddCloud(cloudConfig("cloud1", 16, 0.10, 1.0))
		f.SetWANLatency("cloud0", "cloud1", 60*sim.Millisecond)
		seedImages(f, seed)
		_ = c1
		// Suppress random spikes: this experiment scripts its own price
		// spike so the comparison is controlled.
		c0.Spot.SpikeProb = 0
		var res mapreduce.Result
		f.CreateCluster("spot", core.ClusterSpec{
			Image: "debian", Cores: 2, MemPages: 8192, CoW: true,
			Spot: true, Bid: 0.05,
			Distribution: map[string]int{"cloud0": 6},
		}, func(vc *core.VirtualCluster, e error) {
			if e != nil {
				panic(e)
			}
			// Wire the revocation behaviour before the first market tick.
			if migrate {
				vc.WireSpotMigration("cloud0")
			} else {
				vc.WireSpotKill("cloud0")
			}
			if err := vc.RunJob(mapreduce.BlastJob(96), func(r mapreduce.Result) { res = r }); err != nil {
				panic(err)
			}
			// Price spike at t=+120s revokes all six spot VMs.
			f.K.Schedule(120*sim.Second, func() { c0.Spot.ForcePrice(0.50) })
			if !migrate {
				// The kill baseline must re-provision on-demand
				// replacements (as a user script would) or the job never
				// finishes.
				f.K.Schedule(150*sim.Second, func() {
					vc.GrowOnDemand("cloud1", 6, func(err error) {
						if err != nil {
							panic(err)
						}
					})
				})
			}
		})
		f.K.Run()
		events := fmt.Sprintf("%d migrations, %d kills", f.SpotMigrations, f.SpotKills)
		t.AddRowf(label, res.Makespan.Seconds(), res.MapsExecuted, res.MapsExecuted-96, events)
	}
	run("kill + restart elsewhere", false)
	run("migratable spot (§IV)", true)
	return []*metrics.Table{t}
}
