package capacity

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sim"
)

// viewOracleCompare asserts the view answers match the locked path exactly
// over every cloud and a grid of instants.
func viewOracleCompare(t *testing.T, l *Ledger, clouds []string, step string) {
	t.Helper()
	v := l.View()
	instants := []sim.Time{0, sim.FromSeconds(1), sim.FromSeconds(10), sim.FromSeconds(50),
		sim.FromSeconds(100), sim.FromSeconds(500), sim.FromSeconds(1000), sim.FromSeconds(5000)}
	for _, c := range append(append([]string(nil), clouds...), "no-such-cloud") {
		if got, want := v.Free(c), l.Free(c); got != want {
			t.Fatalf("%s: View.Free(%s) = %d, locked = %d", step, c, got, want)
		}
		for _, at := range instants {
			if got, want := v.Headroom(c, at), l.Headroom(c, at); got != want {
				t.Fatalf("%s: View.Headroom(%s, %v) = %d, locked = %d", step, c, at, got, want)
			}
			for _, n := range []int{-1, 0, 1, 4, 16, 64, 1000} {
				if got, want := v.Probe(c, n, at), l.Probe(c, n, at); got != want {
					t.Fatalf("%s: View.Probe(%s, %d, %v) = %v, locked = %v", step, c, n, at, got, want)
				}
			}
		}
	}
	if v.Generation() != l.Generation() {
		t.Fatalf("%s: View.Generation() = %d, locked = %d", step, v.Generation(), l.Generation())
	}
}

// TestViewMatchesLockedOracle drives a random lease lifecycle workload and
// cross-checks View() against the locked Free/Headroom/Probe path after
// every mutation — the bit-identity contract the parallel scheduler phases
// rely on.
func TestViewMatchesLockedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := New()
	clouds := []string{"a", "b", "c", "d"}
	for i, c := range clouds {
		l.AddCloud(c, 32+16*i)
	}
	var live []*Lease
	for op := 0; op < 2000; op++ {
		c := clouds[rng.Intn(len(clouds))]
		switch rng.Intn(10) {
		case 0, 1: // acquire, maybe with an estimated end
			var end sim.Time
			if rng.Intn(2) == 0 {
				end = sim.FromSeconds(float64(1 + rng.Intn(900)))
			}
			if le, err := l.AcquireUntil(c, 1+rng.Intn(8), end); err == nil {
				live = append(live, le)
			}
		case 2, 3: // reserve a future claim
			at := sim.FromSeconds(float64(1 + rng.Intn(900)))
			if le, err := l.Reserve(c, 1+rng.Intn(16), at); err == nil {
				live = append(live, le)
			}
		case 4: // commit a live lease
			if len(live) > 0 {
				i := rng.Intn(len(live))
				live[i].Commit()
				live = append(live[:i], live[i+1:]...)
			}
		case 5: // release a live lease
			if len(live) > 0 {
				i := rng.Intn(len(live))
				live[i].Release()
				live = append(live[:i], live[i+1:]...)
			}
		case 6: // evict a live lease into a shield reservation
			if len(live) > 0 {
				i := rng.Intn(len(live))
				shield, _ := l.Evict(live[i], sim.FromSeconds(float64(1+rng.Intn(900))))
				live = append(live[:i], live[i+1:]...)
				if shield != nil {
					live = append(live, shield)
				}
			}
		case 7: // uncommit some committed cores
			l.Uncommit(c, 1+rng.Intn(8))
		case 8: // fail, then sometimes restore
			l.FailCloud(c)
			// Drop leases the outage closed.
			kept := live[:0]
			for _, le := range live {
				if le.Active() {
					kept = append(kept, le)
				}
			}
			live = kept
			if rng.Intn(2) == 0 {
				l.RestoreCloud(c)
			}
		case 9: // retarget part of a live lease
			if len(live) > 0 {
				i := rng.Intn(len(live))
				le := live[i]
				if moved, err := le.Retarget(clouds[rng.Intn(len(clouds))], 1+rng.Intn(le.Cores)); err == nil && moved != le {
					if !le.Active() {
						live = append(live[:i], live[i+1:]...)
					}
					live = append(live, moved)
				}
			}
		}
		viewOracleCompare(t, l, clouds, fmt.Sprintf("op %d", op))
	}
}

// TestViewCachePublishes asserts the view cache is reused while the ledger
// is quiescent and replaced after any mutation.
func TestViewCachePublishes(t *testing.T) {
	l := New()
	l.AddCloud("a", 16)
	v1 := l.View()
	if v2 := l.View(); v1 != v2 {
		t.Fatalf("quiescent View() rebuilt the snapshot")
	}
	le, err := l.Acquire("a", 4)
	if err != nil {
		t.Fatal(err)
	}
	v3 := l.View()
	if v3 == v1 {
		t.Fatalf("View() returned the stale snapshot after a mutation")
	}
	if v1.Free("a") != 16 || v3.Free("a") != 12 {
		t.Fatalf("snapshot immutability broken: v1.Free=%d v3.Free=%d", v1.Free("a"), v3.Free("a"))
	}
	le.Release()
}

// TestViewRaceStress hammers View() readers against concurrent writers —
// the -race sanity check for the lock-free read path — then quiesces and
// cross-checks against the locked oracle. Readers assert only internal
// consistency invariants (a snapshot never yields a negative headroom or a
// probe disagreeing with its own headroom), since they race real writers.
func TestViewRaceStress(t *testing.T) {
	clouds := []string{"a", "b", "c", "d", "e", "f"}
	for round := 0; round < 4; round++ {
		l := New()
		for i, c := range clouds {
			l.AddCloud(c, 64+32*i)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					v := l.View()
					c := clouds[rng.Intn(len(clouds))]
					at := sim.FromSeconds(float64(rng.Intn(500)))
					head := v.Headroom(c, at)
					if head < 0 {
						t.Errorf("View.Headroom(%s) negative: %d", c, head)
						return
					}
					if head > 0 && !v.Probe(c, head, at) {
						t.Errorf("View.Probe(%s, %d) false with headroom %d", c, head, head)
						return
					}
					if v.Probe(c, head+1, at) {
						t.Errorf("View.Probe(%s, %d) true beyond headroom %d", c, head+1, head)
						return
					}
					_ = v.Free(c)
				}
			}(int64(100 + r))
		}
		var wwg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wwg.Add(1)
			go func(seed int64) {
				defer wwg.Done()
				rng := rand.New(rand.NewSource(seed))
				var mine []*Lease
				for op := 0; op < 3000; op++ {
					c := clouds[rng.Intn(len(clouds))]
					switch rng.Intn(8) {
					case 0, 1, 2:
						var end sim.Time
						if rng.Intn(2) == 0 {
							end = sim.FromSeconds(float64(1 + rng.Intn(400)))
						}
						if le, err := l.AcquireUntil(c, 1+rng.Intn(4), end); err == nil {
							mine = append(mine, le)
						}
					case 3:
						if le, err := l.Reserve(c, 1+rng.Intn(8), sim.FromSeconds(float64(1+rng.Intn(400)))); err == nil {
							mine = append(mine, le)
						}
					case 4, 5:
						if len(mine) > 0 {
							i := rng.Intn(len(mine))
							mine[i].Release()
							mine = append(mine[:i], mine[i+1:]...)
						}
					case 6:
						l.FailCloud(c)
					case 7:
						l.RestoreCloud(c)
					}
				}
				for _, le := range mine {
					le.Release()
				}
			}(int64(200 + w))
		}
		wwg.Wait()
		close(stop)
		wg.Wait()
		viewOracleCompare(t, l, clouds, fmt.Sprintf("round %d quiesced", round))
	}
}
