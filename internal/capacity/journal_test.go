package capacity

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// TestJournalReplayRoundTrip: a journal streamed through Sink survives a
// LoadJournal round trip, Replay rebuilds the recording ledger byte for byte
// (outage transitions included), and the recovered ledger resumes the lease
// id sequence where the dead one stopped.
func TestJournalReplayRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	jrn := NewJournal()
	jrn.Sink(&buf)
	l := New()
	l.Journal(jrn)
	l.AddCloud("a", 16)
	l.AddCloud("b", 8)

	la, err := l.AcquireUntil("a", 4, 100*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := la.Commit(); err != nil {
		t.Fatal(err)
	}
	lb, err := l.Acquire("b", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Reserve("a", 6, 50*sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := l.Retarget("a", "b", 2); err != nil { // 2 committed cores move a -> b
		t.Fatal(err)
	}
	lb.Release()
	if _, err := l.FailCloud("b"); err != nil {
		t.Fatal(err)
	}
	if err := l.RestoreCloud("b"); err != nil {
		t.Fatal(err)
	}

	recs, err := LoadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != jrn.Len() {
		t.Fatalf("sink stream has %d records, journal holds %d", len(recs), jrn.Len())
	}
	rl, err := Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(rl.Snapshot()), string(l.Snapshot()); got != want {
		t.Fatalf("replayed snapshot diverged:\nreplay:\n%s\nlive:\n%s", got, want)
	}
	// The id sequence is part of the recovered state: the next lease on
	// either ledger gets the same id.
	nl, err := l.Acquire("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := rl.Acquire("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if nl.id != nr.id {
		t.Fatalf("recovered ledger issued lease id %d, live issued %d", nr.id, nl.id)
	}
}

// TestFailCloudKeepsTotal: an outage zeroes free and headroom but keeps the
// total, so federation-wide "could this ever fit" checks still count the
// cloud as coming back — wide gangs wait for the restore instead of failing.
func TestFailCloudKeepsTotal(t *testing.T) {
	l := New()
	l.AddCloud("a", 16)
	le, err := l.Acquire("a", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := le.Commit(); err != nil {
		t.Fatal(err)
	}
	lost, err := l.FailCloud("a")
	if err != nil {
		t.Fatal(err)
	}
	if lost != 4 {
		t.Fatalf("outage lost %d cores, want 4", lost)
	}
	if l.Total("a") != 16 {
		t.Fatalf("total=%d after outage, want 16", l.Total("a"))
	}
	if l.Free("a") != 0 || l.Headroom("a", 0) != 0 {
		t.Fatalf("failed cloud reports free=%d headroom=%d, want 0/0", l.Free("a"), l.Headroom("a", 0))
	}
	if l.Probe("a", 1, 0) {
		t.Fatal("probe admitted on a failed cloud")
	}
	if _, err := l.Acquire("a", 1); err == nil {
		t.Fatal("acquire admitted on a failed cloud")
	}
	if _, err := l.Reserve("a", 1, 0); err == nil {
		t.Fatal("reserve admitted on a failed cloud")
	}
	if err := l.RestoreCloud("a"); err != nil {
		t.Fatal(err)
	}
	if l.Free("a") != 16 {
		t.Fatalf("free=%d after restore, want 16 (everything was evicted)", l.Free("a"))
	}
}
