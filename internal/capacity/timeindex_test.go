package capacity

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/sim"
)

// flatIndex is the brute-force oracle for timeIndex: an unordered slice.
type flatIndex []timedCores

func (f flatIndex) coresBy(t sim.Time) int {
	n := 0
	for _, e := range f {
		if e.at <= t {
			n += e.cores
		}
	}
	return n
}

func (f flatIndex) after(t sim.Time) []timedCores {
	var out []timedCores
	for _, e := range f {
		if e.at > t {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].at != out[j].at {
			return out[i].at < out[j].at
		}
		return out[i].id < out[j].id
	})
	return out
}

func checkIndex(t *testing.T, step int, x *timeIndex, f flatIndex, probes []sim.Time) {
	t.Helper()
	if x.size() != len(f) {
		t.Fatalf("step %d: size=%d, oracle has %d", step, x.size(), len(f))
	}
	// Structural invariants: buckets non-empty, bounded, globally sorted,
	// prefix sums exact.
	total, prev := 0, timedCores{at: -1 << 62}
	for bi, b := range x.buckets {
		if len(b.ents) == 0 || len(b.ents) > idxBucketMax {
			t.Fatalf("step %d: bucket %d has %d entries", step, bi, len(b.ents))
		}
		run := 0
		for j, e := range b.ents {
			if e.at < prev.at || (e.at == prev.at && e.id <= prev.id) {
				t.Fatalf("step %d: bucket %d entry %d out of order", step, bi, j)
			}
			prev = e
			run += e.cores
			if b.cum[j] != run {
				t.Fatalf("step %d: bucket %d cum[%d]=%d, want %d", step, bi, j, b.cum[j], run)
			}
		}
		total += run
		if x.bcum[bi] != total {
			t.Fatalf("step %d: bcum[%d]=%d, want %d", step, bi, x.bcum[bi], total)
		}
	}
	for _, at := range probes {
		if got, want := x.coresBy(at), f.coresBy(at); got != want {
			t.Fatalf("step %d: coresBy(%v)=%d, oracle %d", step, at, got, want)
		}
		want := f.after(at)
		it := x.iterAfter(at)
		for k := 0; ; k++ {
			e, ok := it.next()
			if !ok {
				if k != len(want) {
					t.Fatalf("step %d: iterAfter(%v) yielded %d entries, oracle %d", step, at, k, len(want))
				}
				break
			}
			if k >= len(want) || e != want[k] {
				t.Fatalf("step %d: iterAfter(%v)[%d]=%+v, oracle %+v", step, at, k, e, want[k])
			}
		}
	}
}

// TestTimeIndexRandomized drives thousands of inserts and removes — enough
// churn to force bucket splits and merges many times over — checking the
// bucket invariants, coresBy, and iterAfter against a flat-slice oracle
// after every step batch.
func TestTimeIndexRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var x timeIndex
	var f flatIndex
	id := 0
	probes := []sim.Time{0, 1, 100, 5000, 1 << 40}
	for step := 0; step < 4000; step++ {
		grow := len(f) < 64 || (rng.Intn(3) != 0 && len(f) < 900)
		if grow {
			id++
			at := sim.Time(rng.Intn(2000))
			if rng.Intn(8) == 0 {
				at = probes[rng.Intn(len(probes))] // collide with probe instants
			}
			cores := 1 + rng.Intn(32)
			x.add(at, id, cores)
			f = append(f, timedCores{at: at, id: id, cores: cores})
		} else {
			i := rng.Intn(len(f))
			e := f[i]
			x.remove(e.at, e.id)
			f = append(f[:i], f[i+1:]...)
		}
		if step%50 == 0 || step > 3900 {
			dyn := append(probes, sim.Time(rng.Intn(2200)))
			checkIndex(t, step, &x, f, dyn)
		}
	}
	// Drain completely: removal must collapse every bucket.
	for _, e := range f {
		x.remove(e.at, e.id)
	}
	if x.size() != 0 || len(x.buckets) != 0 {
		t.Fatalf("drained index: size=%d buckets=%d", x.size(), len(x.buckets))
	}
}

// TestTimeIndexRemoveMissing: removing an absent (at, id) pair — including
// one that orders past every bucket — must not disturb the index.
func TestTimeIndexRemoveMissing(t *testing.T) {
	var x timeIndex
	x.remove(5, 1) // empty index
	x.add(10, 1, 4)
	x.add(20, 2, 8)
	x.remove(10, 2)     // at exists, id does not
	x.remove(15, 3)     // between entries
	x.remove(99999, 42) // past the last bucket
	if x.size() != 2 || x.coresBy(20) != 12 {
		t.Fatalf("index disturbed: size=%d coresBy(20)=%d", x.size(), x.coresBy(20))
	}
}

// TestAcquireUntilGen: the generation-validated commit helper admits only
// when the ledger generation still matches the caller's speculation
// snapshot, and a forced transition in between yields ErrStaleGeneration
// without touching the account.
func TestAcquireUntilGen(t *testing.T) {
	l := ledger2()
	gen := l.Generation()
	le, err := l.AcquireUntilGen("a", 4, 0, gen)
	if err != nil || le == nil {
		t.Fatalf("AcquireUntilGen at current gen: %v", err)
	}
	// A forced transition moves the generation: the stale helper must
	// refuse, leaving free cores untouched.
	if _, err := l.Evict(le, 100*sim.Second); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if l.Generation() == gen {
		t.Fatal("Evict did not move the generation")
	}
	free := l.Free("a")
	if _, err := l.AcquireUntilGen("a", 2, 0, gen); err != ErrStaleGeneration {
		t.Fatalf("stale AcquireUntilGen err=%v, want ErrStaleGeneration", err)
	}
	if l.Free("a") != free {
		t.Fatalf("stale AcquireUntilGen changed free: %d -> %d", free, l.Free("a"))
	}
	// Rescoring against the current generation succeeds.
	if _, err := l.AcquireUntilGen("a", 2, 0, l.Generation()); err != nil {
		t.Fatalf("rescored AcquireUntilGen: %v", err)
	}
}

// TestLedgerConcurrentSmoke hammers the ledger from many goroutines under
// -race: mixed acquires/releases/probes/evictions on shared clouds. The
// assertions are the ledger's own invariants at the end; the point is that
// the instrumented lock makes interleavings safe at all.
func TestLedgerConcurrentSmoke(t *testing.T) {
	l := New()
	l.AddCloud("x", 256)
	l.AddCloud("y", 256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			clouds := []string{"x", "y"}
			var mine []*Lease
			for i := 0; i < 500; i++ {
				c := clouds[rng.Intn(2)]
				switch rng.Intn(5) {
				case 0, 1:
					if le, err := l.AcquireUntil(c, 1+rng.Intn(4), sim.Time(rng.Intn(1000))*sim.Second); err == nil {
						mine = append(mine, le)
					}
				case 2:
					if len(mine) > 0 {
						k := rng.Intn(len(mine))
						mine[k].Release()
						mine = append(mine[:k], mine[k+1:]...)
					}
				case 3:
					l.Probe(c, rng.Intn(16), sim.Time(rng.Intn(1000))*sim.Second)
					l.Headroom(c, 0)
					l.Generation()
				case 4:
					if len(mine) > 0 && rng.Intn(4) == 0 {
						k := rng.Intn(len(mine))
						if sh, err := l.Evict(mine[k], sim.Time(1000)*sim.Second); err == nil && sh != nil {
							mine[k] = sh
						}
					}
				}
			}
			for _, le := range mine {
				le.Release()
			}
		}(int64(w + 1))
	}
	wg.Wait()
	for _, c := range []string{"x", "y"} {
		if l.Held(c) != 0 || l.Reserved(c) != 0 {
			t.Fatalf("%s: held=%d reserved=%d after all releases", c, l.Held(c), l.Reserved(c))
		}
		if l.Free(c) != 256-l.Committed(c) {
			t.Fatalf("%s: free=%d committed=%d total=256", c, l.Free(c), l.Committed(c))
		}
	}
	if l.mu.Acquisitions() == 0 {
		t.Fatal("instrumented lock recorded no acquisitions")
	}
}
