package capacity

import (
	"sort"

	"repro/internal/sim"
)

// View is an immutable read snapshot of the ledger: per-cloud committed/held
// aggregates plus the two time indexes flattened into plain sorted slices
// with prefix sums. N score workers probing a View concurrently share
// nothing mutable, so the reads never contend on the ledger mutex — the
// lock-free read path the parallel scheduler phases (backfill scan,
// eviction what-if fits, elastic consolidation targeting) fan out over.
//
// Publication rule: writers bump an internal version counter on every state
// transition (lease create/commit/release, commit-aggregate moves, fail/
// restore, retargets, capacity changes); View() returns the cached snapshot
// while the version is unchanged and rebuilds under the read lock when it
// moved. A reader therefore sees one consistent ledger state — the one
// current at its View() call — until it asks for a new view; concurrent
// writers never mutate a published snapshot.
//
// Every arithmetic path mirrors the locked implementation exactly
// (free/loadAt/headroom/probe), so View answers are bit-identical to the
// locked ones against the same state — the property the view_test.go oracle
// and race stress lock in.
type View struct {
	l        *Ledger
	ver      uint64
	gen      uint64
	accounts map[string]*viewAccount
}

// viewAccount is one cloud's frozen state. The time indexes are flattened
// from the ledger's unrolled buckets into single sorted runs: the view is
// read-only, so the bucketed structure's cheap-insert property buys nothing
// and the flat form makes coresBy one binary search.
type viewAccount struct {
	total     int
	committed int
	held      int
	failed    bool
	heldEnds  viewIndex
	resvStart viewIndex
}

// viewIndex is a flattened timeIndex: entries in (at, id) order with a
// prefix sum of cores.
type viewIndex struct {
	ents []timedCores
	cum  []int
}

// flatten copies a timeIndex into flat sorted slices.
func flatten(x *timeIndex) viewIndex {
	if x.n == 0 {
		return viewIndex{}
	}
	f := viewIndex{
		ents: make([]timedCores, 0, x.n),
		cum:  make([]int, x.n),
	}
	for _, b := range x.buckets {
		f.ents = append(f.ents, b.ents...)
	}
	prev := 0
	for i, e := range f.ents {
		prev += e.cores
		f.cum[i] = prev
	}
	return f
}

// coresBy returns the total cores of entries with at <= t — the flat
// mirror of timeIndex.coresBy.
func (f *viewIndex) coresBy(t sim.Time) int {
	j := sort.Search(len(f.ents), func(i int) bool { return f.ents[i].at > t })
	if j == 0 {
		return 0
	}
	return f.cum[j-1]
}

// View returns the current read snapshot, building one only when the ledger
// has changed since the last published view. The fast path is two atomic
// loads; the rebuild path holds the read lock only while copying state. A
// racing pair of rebuilders may publish out of order — harmless, since any
// published view is internally consistent and a stale cache entry fails the
// version check on the next call.
func (l *Ledger) View() *View {
	if v := l.view.Load(); v != nil && v.ver == l.viewVer.Load() {
		return v
	}
	l.mu.RLock()
	v := &View{
		l:        l,
		ver:      l.viewVer.Load(), // stable: bumps happen under the write lock
		gen:      l.gen.Load(),
		accounts: make(map[string]*viewAccount, len(l.accounts)),
	}
	for name, a := range l.accounts {
		v.accounts[name] = &viewAccount{
			total:     a.total,
			committed: a.committed,
			held:      a.held,
			failed:    a.failed,
			heldEnds:  flatten(&a.heldEnds),
			resvStart: flatten(&a.resvStarts),
		}
	}
	l.mu.RUnlock()
	l.view.Store(v)
	return v
}

// Generation returns the ledger generation the view was built at — the value
// optimistic committers (AcquireUntilGen) validate against.
func (v *View) Generation() uint64 { return v.gen }

// Current reports whether the view still reflects the ledger's live state —
// no transition has committed since it was built. Two atomic loads, so
// callers holding a view across a mutation window can fall back to the
// locked path exactly when the snapshot went stale.
func (v *View) Current() bool { return v.ver == v.l.viewVer.Load() }

// Free mirrors Ledger.Free against the snapshot.
func (v *View) Free(cloud string) int {
	a := v.accounts[cloud]
	if a == nil || a.failed {
		return 0
	}
	return a.total - a.committed - a.held
}

// loadAt mirrors account.loadAt against the snapshot.
func (a *viewAccount) loadAt(t sim.Time) int {
	return a.committed + a.held - a.heldEnds.coresBy(t) + a.resvStart.coresBy(t)
}

// Headroom mirrors Ledger.Headroom against the snapshot: the load at `at`
// and at every later reservation start bounds the indefinite claim.
func (v *View) Headroom(cloud string, at sim.Time) int {
	a := v.accounts[cloud]
	if a == nil || a.failed {
		return 0
	}
	head := a.total - a.loadAt(at)
	ents := a.resvStart.ents
	for i := sort.Search(len(ents), func(k int) bool { return ents[k].at > at }); i < len(ents); i++ {
		if h := a.total - a.loadAt(ents[i].at); h < head {
			head = h
		}
	}
	if head < 0 {
		return 0
	}
	return head
}

// Probe mirrors Ledger.Probe against the snapshot. The probe counter is a
// registry atomic, so incrementing it from concurrent workers is safe.
func (v *View) Probe(cloud string, cores int, at sim.Time) bool {
	v.l.m.probes.Inc()
	if v.accounts[cloud] == nil {
		return false
	}
	if cores <= 0 {
		return true
	}
	return v.Headroom(cloud, at) >= cores
}
