package capacity

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func ledger2() *Ledger {
	l := New()
	l.AddCloud("a", 8)
	l.AddCloud("b", 16)
	return l
}

// rawLoadAt is the original O(leases) definition of account.loadAt, kept as
// the oracle the indexed implementation is checked against.
func rawLoadAt(a *account, t sim.Time) int {
	n := a.committed
	for _, le := range a.leases {
		if le.Kind == Reserved && le.At > t {
			continue
		}
		if le.End != 0 && le.End <= t {
			continue
		}
		n += le.Cores
	}
	return n
}

// rawHeadroom is the original O(reservations x leases) Headroom definition.
func rawHeadroom(l *Ledger, cloud string, at sim.Time) int {
	a := l.accounts[cloud]
	if a == nil || a.failed {
		return 0
	}
	head := a.total - rawLoadAt(a, at)
	for _, le := range a.leases {
		if le.Kind == Reserved && le.At > at {
			if h := a.total - rawLoadAt(a, le.At); h < head {
				head = h
			}
		}
	}
	if head < 0 {
		return 0
	}
	return head
}

// TestGeneration: the generation counter moves exactly on cloud-set or
// total-capacity changes — the invalidation signal for cached capacity
// views (the scheduler's federation-wide gang-slot cache).
func TestGeneration(t *testing.T) {
	l := New()
	g0 := l.Generation()
	l.AddCloud("a", 8)
	if l.Generation() == g0 {
		t.Fatal("AddCloud did not bump the generation")
	}
	g1 := l.Generation()
	l.AddCloud("a", 8) // re-add with the same total: no capacity change
	if l.Generation() != g1 {
		t.Fatal("re-adding an identical cloud bumped the generation")
	}
	l.SetTotal("a", 16)
	if l.Generation() == g1 {
		t.Fatal("SetTotal resize did not bump the generation")
	}
	g2 := l.Generation()
	le, _ := l.Acquire("a", 4)
	l.Reserve("a", 2, 100*sim.Second)
	le.Release()
	if l.Generation() != g2 {
		t.Fatal("lease churn bumped the generation (only totals should)")
	}
}

func TestAcquireRespectsCapacity(t *testing.T) {
	l := ledger2()
	le, err := l.Acquire("a", 6)
	if err != nil {
		t.Fatal(err)
	}
	if l.Free("a") != 2 || l.Held("a") != 6 {
		t.Fatalf("free=%d held=%d after acquire", l.Free("a"), l.Held("a"))
	}
	if _, err := l.Acquire("a", 3); err == nil {
		t.Fatal("acquire beyond capacity succeeded")
	}
	if err := le.Commit(); err != nil {
		t.Fatal(err)
	}
	if l.Free("a") != 2 || l.Held("a") != 0 || l.Committed("a") != 6 {
		t.Fatalf("free=%d held=%d committed=%d after commit", l.Free("a"), l.Held("a"), l.Committed("a"))
	}
	l.Uncommit("a", 6)
	if l.Free("a") != 8 {
		t.Fatalf("free=%d after uncommit", l.Free("a"))
	}
}

func TestReleaseIdempotent(t *testing.T) {
	l := ledger2()
	le, _ := l.Acquire("a", 4)
	le.Release()
	le.Release()
	le.Release()
	if l.Free("a") != 8 {
		t.Fatalf("double release minted capacity: free=%d", l.Free("a"))
	}
	// Release after Commit must not touch the committed aggregate.
	le2, _ := l.Acquire("a", 4)
	if err := le2.Commit(); err != nil {
		t.Fatal(err)
	}
	le2.Release()
	if l.Committed("a") != 4 || l.Free("a") != 4 {
		t.Fatalf("release after commit corrupted accounts: committed=%d free=%d",
			l.Committed("a"), l.Free("a"))
	}
}

// TestProbeSeesReservation: the grow-vs-reservation core case — a cloud
// with room today must refuse an indefinite claim that would eat cores a
// future reservation needs.
func TestProbeSeesReservation(t *testing.T) {
	l := ledger2()
	// 6 of 8 cores busy until t=200 (estimated), then an 8-core reservation
	// starts at t=200.
	running, _ := l.AcquireUntil("a", 6, 200*sim.Second)
	resv, _ := l.Reserve("a", 8, 200*sim.Second)
	// 2 cores are free right now, but an indefinite claim would still hold
	// them at t=200 when the reservation needs all 8.
	if l.Probe("a", 2, 0) {
		t.Fatal("probe admitted an indefinite claim across a full reservation")
	}
	// A claim on the other cloud is unaffected.
	if !l.Probe("b", 16, 0) {
		t.Fatal("probe denied an unrelated cloud")
	}
	// Once the reservation is released, the claim fits (running's estimated
	// end frees its cores for any probe at t >= 200).
	resv.Release()
	if !l.Probe("a", 2, 0) {
		t.Fatal("probe denied after reservation release")
	}
	running.Release()
}

// TestProbeHonorsEstimatedEnds: a held lease with an estimated end does not
// block claims probed at or after that end.
func TestProbeHonorsEstimatedEnds(t *testing.T) {
	l := ledger2()
	l.AcquireUntil("a", 8, 100*sim.Second)
	if l.Probe("a", 4, 50*sim.Second) {
		t.Fatal("probe admitted a claim overlapping a full cloud")
	}
	if !l.Probe("a", 8, 100*sim.Second) {
		t.Fatal("probe denied a claim starting at the estimated hand-back")
	}
}

// TestPickGrowTargetOverdueLease: a held lease whose estimated end has
// passed but which was never released still physically holds its cores, so
// the grow policy must not steer a grow onto that cloud (where Acquire
// would fail and abort the whole grow) — it spills to a cloud with real
// free cores instead.
func TestPickGrowTargetOverdueLease(t *testing.T) {
	l := ledger2()
	// 6 of a's 8 cores held with an estimate of t=100 — but the holder has
	// slipped: at t=100 the lease is still active.
	l.AcquireUntil("a", 6, 100*sim.Second)
	got := l.PickGrowTarget([]string{"a"}, []string{"b"}, 4, 100*sim.Second, nil)
	if got != "b" {
		t.Fatalf("grow target = %q, want spill to b (a's overdue lease still holds 6 cores)", got)
	}
	if _, err := l.Acquire(got, 4); err != nil {
		t.Fatalf("picked target not acquirable: %v", err)
	}
	// A worker small enough for a's genuinely free cores still extends in
	// place.
	if got := l.PickGrowTarget([]string{"a"}, []string{"b"}, 2, 100*sim.Second, nil); got != "a" {
		t.Fatalf("grow target = %q, want member a (2 cores genuinely free)", got)
	}
}

// TestProbePartialReservation: growth may take exactly the cores the
// reservation leaves over, and no more.
func TestProbePartialReservation(t *testing.T) {
	l := ledger2()
	l.Reserve("b", 10, 300*sim.Second)
	if !l.Probe("b", 6, 0) {
		t.Fatal("probe denied the cores the reservation leaves over")
	}
	if l.Probe("b", 7, 0) {
		t.Fatal("probe admitted into reserved cores")
	}
	if l.Headroom("b", 0) != 6 {
		t.Fatalf("headroom=%d, want 6", l.Headroom("b", 0))
	}
}

// TestCommitReservationChecksCapacity: a reservation can only convert to
// committed cores when the cloud physically has them.
func TestCommitReservationChecksCapacity(t *testing.T) {
	l := ledger2()
	held, _ := l.Acquire("a", 6)
	resv, _ := l.Reserve("a", 8, 100*sim.Second)
	if err := resv.Commit(); err == nil {
		t.Fatal("reservation committed over live cores")
	}
	held.Release()
	if err := resv.Commit(); err != nil {
		t.Fatalf("commit after release: %v", err)
	}
	if l.Committed("a") != 8 || l.Reserved("a") != 0 {
		t.Fatalf("committed=%d reserved=%d after reservation commit", l.Committed("a"), l.Reserved("a"))
	}
}

// TestEvictLease: evicting a held lease frees its cores and shields them
// with a reservation in the same transition — probes cannot slip a claim in
// between — and double-evict is an idempotent no-op.
func TestEvictLease(t *testing.T) {
	l := ledger2()
	victim, _ := l.AcquireUntil("a", 6, 500*sim.Second)
	g := l.Generation()
	shield, err := l.Evict(victim, 100*sim.Second)
	if err != nil || shield == nil {
		t.Fatalf("evict: shield=%v err=%v", shield, err)
	}
	if l.Generation() == g {
		t.Fatal("evict did not bump the generation")
	}
	if l.Held("a") != 0 || l.Free("a") != 8 || l.Reserved("a") != 6 {
		t.Fatalf("held=%d free=%d reserved=%d after evict", l.Held("a"), l.Free("a"), l.Reserved("a"))
	}
	// The shield shades probes from its start instant exactly like any
	// reservation: an indefinite claim overlapping t=100 is denied the cores.
	if l.Probe("a", 3, 0) {
		t.Fatal("probe took the evicted cores out from under the shield")
	}
	if !l.Probe("a", 2, 0) {
		t.Fatal("probe denied the cores the shield leaves over")
	}
	// Idempotent double-evict: the victim is closed, nothing changes.
	again, err := l.Evict(victim, 200*sim.Second)
	if again != nil || err != nil {
		t.Fatalf("double evict: shield=%v err=%v, want nil/nil", again, err)
	}
	if l.Reserved("a") != 6 || l.Evictions != 1 {
		t.Fatalf("double evict changed state: reserved=%d evictions=%d", l.Reserved("a"), l.Evictions)
	}
	shield.Release()
	if !l.Probe("a", 8, 0) {
		t.Fatal("probe denied after shield release")
	}
}

// TestEvictCommitted: committed cores (placed VMs) evict into a beneficiary
// reservation in one step; evicting more than is committed fails untouched.
func TestEvictCommitted(t *testing.T) {
	l := ledger2()
	if err := l.CommitNow("a", 6); err != nil {
		t.Fatal(err)
	}
	if _, err := l.EvictCommitted("a", 7, 0); err == nil {
		t.Fatal("evicted more cores than are committed")
	}
	if l.Committed("a") != 6 {
		t.Fatalf("failed evict touched the account: committed=%d", l.Committed("a"))
	}
	shield, err := l.EvictCommitted("a", 6, 50*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if l.Committed("a") != 0 || l.Free("a") != 8 || l.Reserved("a") != 6 {
		t.Fatalf("committed=%d free=%d reserved=%d after evict", l.Committed("a"), l.Free("a"), l.Reserved("a"))
	}
	if l.Probe("a", 3, 0) {
		t.Fatal("probe took evicted-committed cores from under the shield")
	}
	shield.Release()
}

// TestRetargetCommitted: the migration transition — committed cores move
// between clouds with the destination checked first, so a failed retarget
// leaves both accounts untouched.
func TestRetargetCommitted(t *testing.T) {
	l := ledger2()
	if err := l.CommitNow("a", 6); err != nil {
		t.Fatal(err)
	}
	l.Acquire("b", 12) // 4 free on b
	if err := l.Retarget("a", "b", 6); err == nil {
		t.Fatal("retarget into a cloud with 4 free cores succeeded")
	}
	if l.Committed("a") != 6 || l.Committed("b") != 0 {
		t.Fatalf("failed retarget moved cores: a=%d b=%d", l.Committed("a"), l.Committed("b"))
	}
	if err := l.Retarget("a", "b", 4); err != nil {
		t.Fatal(err)
	}
	if l.Committed("a") != 2 || l.Committed("b") != 4 || l.Free("b") != 0 {
		t.Fatalf("after retarget: a=%d b=%d freeB=%d", l.Committed("a"), l.Committed("b"), l.Free("b"))
	}
}

// TestLeaseRetarget: a held lease moves (partially) between clouds keeping
// its estimated end, so probes at the hand-back instant stay exact on both
// sides; a full move closes the source lease.
func TestLeaseRetarget(t *testing.T) {
	l := ledger2()
	le, _ := l.AcquireUntil("a", 6, 100*sim.Second)
	moved, err := le.Retarget("b", 4)
	if err != nil {
		t.Fatal(err)
	}
	if l.Held("a") != 2 || l.Held("b") != 4 {
		t.Fatalf("held a=%d b=%d after partial retarget", l.Held("a"), l.Held("b"))
	}
	if moved.End != 100*sim.Second || moved.Kind != Held {
		t.Fatalf("moved lease lost its shape: end=%v kind=%v", moved.End, moved.Kind)
	}
	if !l.Probe("b", 16, 100*sim.Second) {
		t.Fatal("probe at the moved lease's estimated end still sees its cores")
	}
	rest, err := le.Retarget("b", 2)
	if err != nil {
		t.Fatal(err)
	}
	if le.Active() {
		t.Fatal("full retarget left the source lease active")
	}
	if l.Held("a") != 0 || l.Held("b") != 6 {
		t.Fatalf("held a=%d b=%d after full retarget", l.Held("a"), l.Held("b"))
	}
	// Held retargets respect the destination's physical invariant.
	big, _ := l.Acquire("b", 10) // b full: 6 moved + 10
	if _, err := rest.Retarget("a", 2); err != nil {
		t.Fatalf("retarget back to an empty cloud: %v", err)
	}
	if _, err := big.Retarget("a", 10); err == nil {
		t.Fatal("retarget of 10 cores onto an 8-core cloud succeeded")
	}
	// Reservations move freely: they are advisory until committed.
	resv, _ := l.Reserve("b", 16, 300*sim.Second)
	if _, err := resv.Retarget("a", 16); err != nil {
		t.Fatalf("reservation retarget: %v", err)
	}
	if l.Reserved("a") != 16 || l.Reserved("b") != 0 {
		t.Fatalf("reserved a=%d b=%d after reservation retarget", l.Reserved("a"), l.Reserved("b"))
	}
}

// TestLedgerInvariantRandomized drives randomized sequences of
// Reserve/Acquire/Commit/Release — plus the forced transitions Evict,
// EvictCommitted, and Retarget — across clouds and checks, after every
// operation, that committed+held never exceeds TotalCores on any cloud,
// that releases and double-evicts (both idempotent) never mint capacity,
// and that the cached aggregates and time-indexed Headroom agree with raw
// lease walks.
func TestLedgerInvariantRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := New()
	// The journal observes every transition from the empty ledger onward;
	// the walk periodically asserts Replay(journal) reproduces the live
	// ledger byte for byte — the crash-recovery contract under the full op
	// mix, outages included.
	jrn := NewJournal()
	l.Journal(jrn)
	totals := map[string]int{}
	var names []string
	for c := 0; c < 4; c++ {
		name := fmt.Sprintf("cloud%d", c)
		total := 8 * (1 + rng.Intn(4))
		l.AddCloud(name, total)
		totals[name] = total
		names = append(names, name)
	}
	type entry struct {
		lease     *Lease
		committed bool   // survived a successful Commit (held kind)
		cloud     string // committed cores' current cloud (follows Retarget)
	}
	var live []*entry
	committedBy := map[string]int{} // our model of the committed aggregate
	check := func(step int) {
		t.Helper()
		for _, name := range names {
			c, h, r := l.Committed(name), l.Held(name), l.Reserved(name)
			// The cached held/reserved aggregates must match a raw walk of
			// the lease map.
			rawHeld, rawResv := 0, 0
			for _, le := range l.accounts[name].leases {
				if le.Kind == Reserved {
					rawResv += le.Cores
				} else {
					rawHeld += le.Cores
				}
			}
			if h != rawHeld || r != rawResv {
				t.Fatalf("step %d: %s cached held=%d reserved=%d, lease walk says %d/%d",
					step, name, h, r, rawHeld, rawResv)
			}
			if c+h > totals[name] {
				t.Fatalf("step %d: %s oversubscribed: committed=%d held=%d total=%d",
					step, name, c, h, totals[name])
			}
			if c != committedBy[name] {
				t.Fatalf("step %d: %s committed=%d, model says %d", step, name, c, committedBy[name])
			}
			if l.Failed(name) {
				if free := l.Free(name); free != 0 {
					t.Fatalf("step %d: failed %s reports free=%d, want 0", step, name, free)
				}
			} else if free := l.Free(name); free != totals[name]-c-h {
				t.Fatalf("step %d: %s free=%d, want total-committed-held=%d",
					step, name, free, totals[name]-c-h)
			}
			if free := l.Free(name); free < 0 {
				t.Fatalf("step %d: %s negative free=%d", step, name, free)
			}
			_ = r // reservations are advisory: no physical bound to assert
			// The time-indexed Headroom must agree with a brute-force lease
			// walk at several probe instants (the O(log n) prefix-sum path
			// vs the original O(leases) definition).
			for _, at := range []sim.Time{0, 250 * sim.Second, 500 * sim.Second, 1000 * sim.Second} {
				if got, want := l.Headroom(name, at), rawHeadroom(l, name, at); got != want {
					t.Fatalf("step %d: %s Headroom(%v)=%d, lease walk says %d", step, name, at, got, want)
				}
			}
		}
	}
	for step := 0; step < 5000; step++ {
		cloud := names[rng.Intn(len(names))]
		cores := 1 + rng.Intn(6)
		switch op := rng.Intn(16); {
		case op < 3: // acquire (sometimes with an estimated end)
			var end sim.Time
			if rng.Intn(2) == 0 {
				end = sim.Time(rng.Intn(1000)) * sim.Second
			}
			le, err := l.AcquireUntil(cloud, cores, end)
			if err == nil {
				live = append(live, &entry{lease: le})
			} else if l.Free(cloud) >= cores {
				t.Fatalf("step %d: acquire of %d denied with %d free", step, cores, l.Free(cloud))
			}
		case op < 5: // reserve a future claim
			le, err := l.Reserve(cloud, cores, sim.Time(rng.Intn(1000))*sim.Second)
			if err != nil {
				if !l.Failed(cloud) {
					t.Fatalf("step %d: reserve: %v", step, err)
				}
			} else {
				live = append(live, &entry{lease: le})
			}
		case op < 7 && len(live) > 0: // commit a random lease
			e := live[rng.Intn(len(live))]
			wasActive := e.lease.Active()
			if err := e.lease.Commit(); err == nil && wasActive && !e.committed {
				e.committed = true
				e.cloud = e.lease.Cloud
				committedBy[e.cloud] += e.lease.Cores
			}
		case op < 9 && len(live) > 0: // release (sometimes twice)
			e := live[rng.Intn(len(live))]
			e.lease.Release()
			if rng.Intn(3) == 0 {
				e.lease.Release()
			}
		case op < 10 && len(live) > 0: // evict a lease (sometimes twice)
			e := live[rng.Intn(len(live))]
			wasActive := e.lease.Active()
			shield, err := l.Evict(e.lease, sim.Time(rng.Intn(1000))*sim.Second)
			if err != nil {
				t.Fatalf("step %d: evict: %v", step, err)
			}
			if wasActive != (shield != nil) {
				t.Fatalf("step %d: evict of active=%v lease returned shield=%v", step, wasActive, shield)
			}
			if shield != nil {
				live = append(live, &entry{lease: shield})
			}
			if again, err := l.Evict(e.lease, 0); again != nil || err != nil {
				t.Fatalf("step %d: double evict not idempotent: shield=%v err=%v", step, again, err)
			}
		case op < 11: // evict committed cores into a beneficiary reservation
			for i, e := range live {
				if e.committed {
					shield, err := l.EvictCommitted(e.cloud, e.lease.Cores, sim.Time(rng.Intn(1000))*sim.Second)
					if err != nil {
						t.Fatalf("step %d: evict committed: %v", step, err)
					}
					committedBy[e.cloud] -= e.lease.Cores
					live = append(live[:i], live[i+1:]...)
					live = append(live, &entry{lease: shield})
					break
				}
			}
		case op < 12: // retarget committed cores to another cloud (migration)
			for _, e := range live {
				if e.committed {
					dst := names[rng.Intn(len(names))]
					err := l.Retarget(e.cloud, dst, e.lease.Cores)
					switch {
					case err == nil:
						committedBy[e.cloud] -= e.lease.Cores
						committedBy[dst] += e.lease.Cores
						e.cloud = dst
					case dst != e.cloud && l.Free(dst) >= e.lease.Cores:
						t.Fatalf("step %d: retarget of %d denied with %d free at %s: %v",
							step, e.lease.Cores, l.Free(dst), dst, err)
					}
					break
				}
			}
		case op < 13 && len(live) > 0: // retarget (part of) a live lease
			e := live[rng.Intn(len(live))]
			if !e.lease.Active() {
				break
			}
			dst := names[rng.Intn(len(names))]
			part := 1 + rng.Intn(e.lease.Cores)
			moved, err := e.lease.Retarget(dst, part)
			switch {
			case err == nil:
				if moved != e.lease {
					live = append(live, &entry{lease: moved})
				}
			case e.lease.Kind == Reserved && !l.Failed(dst):
				t.Fatalf("step %d: reservation retarget failed: %v", step, err)
			case l.Free(dst) >= part && dst != e.lease.Cloud:
				t.Fatalf("step %d: held retarget of %d denied with %d free at %s: %v",
					step, part, l.Free(dst), dst, err)
			}
		case op < 14: // uncommit a committed lease's cores (VM terminated)
			for i, e := range live {
				if e.committed {
					l.Uncommit(e.cloud, e.lease.Cores)
					committedBy[e.cloud] -= e.lease.Cores
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		case op < 15: // cloud outage (sometimes twice: must be idempotent)
			if _, err := l.FailCloud(cloud); err != nil {
				t.Fatalf("step %d: fail cloud: %v", step, err)
			}
			if rng.Intn(3) == 0 {
				if again, err := l.FailCloud(cloud); again != 0 || err != nil {
					t.Fatalf("step %d: double fail not idempotent: lost=%d err=%v", step, again, err)
				}
			}
			// The outage closed every lease and zeroed the committed
			// aggregate on the cloud; the model follows.
			committedBy[cloud] = 0
			for _, e := range live {
				if e.committed && e.cloud == cloud {
					e.committed = false
				}
			}
		default: // restore (idempotent on healthy clouds too)
			if err := l.RestoreCloud(cloud); err != nil {
				t.Fatalf("step %d: restore cloud: %v", step, err)
			}
		}
		check(step)
		if step%500 == 499 || step == 4999 {
			// Crash-recovery contract: replaying the journal into a fresh
			// ledger reproduces the live ledger's state byte for byte.
			rl, err := Replay(jrn.Recs())
			if err != nil {
				t.Fatalf("step %d: journal replay: %v", step, err)
			}
			if got, want := string(rl.Snapshot()), string(l.Snapshot()); got != want {
				t.Fatalf("step %d: journal replay diverged from live ledger:\nreplay:\n%s\nlive:\n%s",
					step, got, want)
			}
		}
	}
}

// TestProbeUnknownCloud: probing or acquiring on unknown clouds fails
// cleanly.
func TestProbeUnknownCloud(t *testing.T) {
	l := New()
	if l.Probe("ghost", 1, 0) {
		t.Fatal("probe admitted on an unknown cloud")
	}
	if _, err := l.Acquire("ghost", 1); err == nil {
		t.Fatal("acquire on an unknown cloud succeeded")
	}
	if _, err := l.Reserve("ghost", 1, 0); err == nil {
		t.Fatal("reserve on an unknown cloud succeeded")
	}
}
