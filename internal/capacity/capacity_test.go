package capacity

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func ledger2() *Ledger {
	l := New()
	l.AddCloud("a", 8)
	l.AddCloud("b", 16)
	return l
}

// rawLoadAt is the original O(leases) definition of account.loadAt, kept as
// the oracle the indexed implementation is checked against.
func rawLoadAt(a *account, t sim.Time) int {
	n := a.committed
	for _, le := range a.leases {
		if le.Kind == Reserved && le.At > t {
			continue
		}
		if le.End != 0 && le.End <= t {
			continue
		}
		n += le.Cores
	}
	return n
}

// rawHeadroom is the original O(reservations x leases) Headroom definition.
func rawHeadroom(l *Ledger, cloud string, at sim.Time) int {
	a := l.accounts[cloud]
	if a == nil {
		return 0
	}
	head := a.total - rawLoadAt(a, at)
	for _, le := range a.leases {
		if le.Kind == Reserved && le.At > at {
			if h := a.total - rawLoadAt(a, le.At); h < head {
				head = h
			}
		}
	}
	if head < 0 {
		return 0
	}
	return head
}

// TestGeneration: the generation counter moves exactly on cloud-set or
// total-capacity changes — the invalidation signal for cached capacity
// views (the scheduler's federation-wide gang-slot cache).
func TestGeneration(t *testing.T) {
	l := New()
	g0 := l.Generation()
	l.AddCloud("a", 8)
	if l.Generation() == g0 {
		t.Fatal("AddCloud did not bump the generation")
	}
	g1 := l.Generation()
	l.AddCloud("a", 8) // re-add with the same total: no capacity change
	if l.Generation() != g1 {
		t.Fatal("re-adding an identical cloud bumped the generation")
	}
	l.SetTotal("a", 16)
	if l.Generation() == g1 {
		t.Fatal("SetTotal resize did not bump the generation")
	}
	g2 := l.Generation()
	le, _ := l.Acquire("a", 4)
	l.Reserve("a", 2, 100*sim.Second)
	le.Release()
	if l.Generation() != g2 {
		t.Fatal("lease churn bumped the generation (only totals should)")
	}
}

func TestAcquireRespectsCapacity(t *testing.T) {
	l := ledger2()
	le, err := l.Acquire("a", 6)
	if err != nil {
		t.Fatal(err)
	}
	if l.Free("a") != 2 || l.Held("a") != 6 {
		t.Fatalf("free=%d held=%d after acquire", l.Free("a"), l.Held("a"))
	}
	if _, err := l.Acquire("a", 3); err == nil {
		t.Fatal("acquire beyond capacity succeeded")
	}
	if err := le.Commit(); err != nil {
		t.Fatal(err)
	}
	if l.Free("a") != 2 || l.Held("a") != 0 || l.Committed("a") != 6 {
		t.Fatalf("free=%d held=%d committed=%d after commit", l.Free("a"), l.Held("a"), l.Committed("a"))
	}
	l.Uncommit("a", 6)
	if l.Free("a") != 8 {
		t.Fatalf("free=%d after uncommit", l.Free("a"))
	}
}

func TestReleaseIdempotent(t *testing.T) {
	l := ledger2()
	le, _ := l.Acquire("a", 4)
	le.Release()
	le.Release()
	le.Release()
	if l.Free("a") != 8 {
		t.Fatalf("double release minted capacity: free=%d", l.Free("a"))
	}
	// Release after Commit must not touch the committed aggregate.
	le2, _ := l.Acquire("a", 4)
	if err := le2.Commit(); err != nil {
		t.Fatal(err)
	}
	le2.Release()
	if l.Committed("a") != 4 || l.Free("a") != 4 {
		t.Fatalf("release after commit corrupted accounts: committed=%d free=%d",
			l.Committed("a"), l.Free("a"))
	}
}

// TestProbeSeesReservation: the grow-vs-reservation core case — a cloud
// with room today must refuse an indefinite claim that would eat cores a
// future reservation needs.
func TestProbeSeesReservation(t *testing.T) {
	l := ledger2()
	// 6 of 8 cores busy until t=200 (estimated), then an 8-core reservation
	// starts at t=200.
	running, _ := l.AcquireUntil("a", 6, 200*sim.Second)
	resv, _ := l.Reserve("a", 8, 200*sim.Second)
	// 2 cores are free right now, but an indefinite claim would still hold
	// them at t=200 when the reservation needs all 8.
	if l.Probe("a", 2, 0) {
		t.Fatal("probe admitted an indefinite claim across a full reservation")
	}
	// A claim on the other cloud is unaffected.
	if !l.Probe("b", 16, 0) {
		t.Fatal("probe denied an unrelated cloud")
	}
	// Once the reservation is released, the claim fits (running's estimated
	// end frees its cores for any probe at t >= 200).
	resv.Release()
	if !l.Probe("a", 2, 0) {
		t.Fatal("probe denied after reservation release")
	}
	running.Release()
}

// TestProbeHonorsEstimatedEnds: a held lease with an estimated end does not
// block claims probed at or after that end.
func TestProbeHonorsEstimatedEnds(t *testing.T) {
	l := ledger2()
	l.AcquireUntil("a", 8, 100*sim.Second)
	if l.Probe("a", 4, 50*sim.Second) {
		t.Fatal("probe admitted a claim overlapping a full cloud")
	}
	if !l.Probe("a", 8, 100*sim.Second) {
		t.Fatal("probe denied a claim starting at the estimated hand-back")
	}
}

// TestPickGrowTargetOverdueLease: a held lease whose estimated end has
// passed but which was never released still physically holds its cores, so
// the grow policy must not steer a grow onto that cloud (where Acquire
// would fail and abort the whole grow) — it spills to a cloud with real
// free cores instead.
func TestPickGrowTargetOverdueLease(t *testing.T) {
	l := ledger2()
	// 6 of a's 8 cores held with an estimate of t=100 — but the holder has
	// slipped: at t=100 the lease is still active.
	l.AcquireUntil("a", 6, 100*sim.Second)
	got := l.PickGrowTarget([]string{"a"}, []string{"b"}, 4, 100*sim.Second, nil)
	if got != "b" {
		t.Fatalf("grow target = %q, want spill to b (a's overdue lease still holds 6 cores)", got)
	}
	if _, err := l.Acquire(got, 4); err != nil {
		t.Fatalf("picked target not acquirable: %v", err)
	}
	// A worker small enough for a's genuinely free cores still extends in
	// place.
	if got := l.PickGrowTarget([]string{"a"}, []string{"b"}, 2, 100*sim.Second, nil); got != "a" {
		t.Fatalf("grow target = %q, want member a (2 cores genuinely free)", got)
	}
}

// TestProbePartialReservation: growth may take exactly the cores the
// reservation leaves over, and no more.
func TestProbePartialReservation(t *testing.T) {
	l := ledger2()
	l.Reserve("b", 10, 300*sim.Second)
	if !l.Probe("b", 6, 0) {
		t.Fatal("probe denied the cores the reservation leaves over")
	}
	if l.Probe("b", 7, 0) {
		t.Fatal("probe admitted into reserved cores")
	}
	if l.Headroom("b", 0) != 6 {
		t.Fatalf("headroom=%d, want 6", l.Headroom("b", 0))
	}
}

// TestCommitReservationChecksCapacity: a reservation can only convert to
// committed cores when the cloud physically has them.
func TestCommitReservationChecksCapacity(t *testing.T) {
	l := ledger2()
	held, _ := l.Acquire("a", 6)
	resv, _ := l.Reserve("a", 8, 100*sim.Second)
	if err := resv.Commit(); err == nil {
		t.Fatal("reservation committed over live cores")
	}
	held.Release()
	if err := resv.Commit(); err != nil {
		t.Fatalf("commit after release: %v", err)
	}
	if l.Committed("a") != 8 || l.Reserved("a") != 0 {
		t.Fatalf("committed=%d reserved=%d after reservation commit", l.Committed("a"), l.Reserved("a"))
	}
}

// TestLedgerInvariantRandomized drives randomized sequences of
// Reserve/Acquire/Commit/Release across clouds and checks, after every
// operation, that committed+held never exceeds TotalCores on any cloud and
// that releases (including doubles) never mint capacity.
func TestLedgerInvariantRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := New()
	totals := map[string]int{}
	var names []string
	for c := 0; c < 4; c++ {
		name := fmt.Sprintf("cloud%d", c)
		total := 8 * (1 + rng.Intn(4))
		l.AddCloud(name, total)
		totals[name] = total
		names = append(names, name)
	}
	type entry struct {
		lease     *Lease
		committed bool // survived a successful Commit (held kind)
	}
	var live []*entry
	committedBy := map[string]int{} // our model of the committed aggregate
	check := func(step int) {
		t.Helper()
		for _, name := range names {
			c, h, r := l.Committed(name), l.Held(name), l.Reserved(name)
			// The cached held/reserved aggregates must match a raw walk of
			// the lease map.
			rawHeld, rawResv := 0, 0
			for _, le := range l.accounts[name].leases {
				if le.Kind == Reserved {
					rawResv += le.Cores
				} else {
					rawHeld += le.Cores
				}
			}
			if h != rawHeld || r != rawResv {
				t.Fatalf("step %d: %s cached held=%d reserved=%d, lease walk says %d/%d",
					step, name, h, r, rawHeld, rawResv)
			}
			if c+h > totals[name] {
				t.Fatalf("step %d: %s oversubscribed: committed=%d held=%d total=%d",
					step, name, c, h, totals[name])
			}
			if c != committedBy[name] {
				t.Fatalf("step %d: %s committed=%d, model says %d", step, name, c, committedBy[name])
			}
			if free := l.Free(name); free != totals[name]-c-h {
				t.Fatalf("step %d: %s free=%d, want total-committed-held=%d",
					step, name, free, totals[name]-c-h)
			}
			if free := l.Free(name); free < 0 {
				t.Fatalf("step %d: %s negative free=%d", step, name, free)
			}
			_ = r // reservations are advisory: no physical bound to assert
			// The time-indexed Headroom must agree with a brute-force lease
			// walk at several probe instants (the O(log n) prefix-sum path
			// vs the original O(leases) definition).
			for _, at := range []sim.Time{0, 250 * sim.Second, 500 * sim.Second, 1000 * sim.Second} {
				if got, want := l.Headroom(name, at), rawHeadroom(l, name, at); got != want {
					t.Fatalf("step %d: %s Headroom(%v)=%d, lease walk says %d", step, name, at, got, want)
				}
			}
		}
	}
	for step := 0; step < 5000; step++ {
		cloud := names[rng.Intn(len(names))]
		cores := 1 + rng.Intn(6)
		switch op := rng.Intn(10); {
		case op < 3: // acquire (sometimes with an estimated end)
			var end sim.Time
			if rng.Intn(2) == 0 {
				end = sim.Time(rng.Intn(1000)) * sim.Second
			}
			le, err := l.AcquireUntil(cloud, cores, end)
			if err == nil {
				live = append(live, &entry{lease: le})
			} else if l.Free(cloud) >= cores {
				t.Fatalf("step %d: acquire of %d denied with %d free", step, cores, l.Free(cloud))
			}
		case op < 5: // reserve a future claim
			le, err := l.Reserve(cloud, cores, sim.Time(rng.Intn(1000))*sim.Second)
			if err != nil {
				t.Fatalf("step %d: reserve: %v", step, err)
			}
			live = append(live, &entry{lease: le})
		case op < 7 && len(live) > 0: // commit a random lease
			e := live[rng.Intn(len(live))]
			wasActive := e.lease.Active()
			if err := e.lease.Commit(); err == nil && wasActive && !e.committed {
				e.committed = true
				committedBy[e.lease.Cloud] += e.lease.Cores
			}
		case op < 9 && len(live) > 0: // release (sometimes twice)
			e := live[rng.Intn(len(live))]
			e.lease.Release()
			if rng.Intn(3) == 0 {
				e.lease.Release()
			}
		default: // uncommit a committed lease's cores (VM terminated)
			for i, e := range live {
				if e.committed {
					l.Uncommit(e.lease.Cloud, e.lease.Cores)
					committedBy[e.lease.Cloud] -= e.lease.Cores
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		}
		check(step)
	}
}

// TestProbeUnknownCloud: probing or acquiring on unknown clouds fails
// cleanly.
func TestProbeUnknownCloud(t *testing.T) {
	l := New()
	if l.Probe("ghost", 1, 0) {
		t.Fatal("probe admitted on an unknown cloud")
	}
	if _, err := l.Acquire("ghost", 1); err == nil {
		t.Fatal("acquire on an unknown cloud succeeded")
	}
	if _, err := l.Reserve("ghost", 1, 0); err == nil {
		t.Fatal("reserve on an unknown cloud succeeded")
	}
}
