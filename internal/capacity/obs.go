package capacity

import "repro/internal/obs"

// Ledger observability: Instrument mirrors the ledger's transition counts
// into a registry and exports per-cloud core gauges. The public Evictions
// and Retargets ints stay (tests and stats surfaces read them directly);
// the registry counters are the scrape-facing copies. An uninstrumented
// ledger (SimBackend benchmarks, standalone uses) carries nil instrument
// pointers, and every obs method no-ops on nil — the hot path pays one nil
// check per transition.

// ledgerMetrics holds the ledger's resolved registry instruments.
type ledgerMetrics struct {
	acquires      *obs.Counter
	reserves      *obs.Counter
	probes        *obs.Counter
	evictions     *obs.Counter
	retargets     *obs.Counter
	cloudFailures *obs.Counter
	cloudRestores *obs.Counter
}

// Instrument registers the ledger's counters and per-cloud core gauges in
// reg. The gauges are collector-driven: each scrape walks the (sorted)
// account list and publishes committed/held/reserved/free cores per cloud,
// so the exposition always reflects the live ledger without per-transition
// gauge writes.
func (l *Ledger) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	l.m = ledgerMetrics{
		acquires:      reg.Counter("sky_capacity_acquires_total", "Successful held-lease admissions."),
		reserves:      reg.Counter("sky_capacity_reserves_total", "Future-start reservations created."),
		probes:        reg.Counter("sky_capacity_probes_total", "Reservation-aware capacity probes."),
		evictions:     reg.Counter("sky_capacity_evictions_total", "Forced lease-to-shield eviction transitions."),
		retargets:     reg.Counter("sky_capacity_retargets_total", "Lease retargets between clouds."),
		cloudFailures: reg.Counter("sky_capacity_cloud_failures_total", "FailCloud outage transitions."),
		cloudRestores: reg.Counter("sky_capacity_cloud_restores_total", "RestoreCloud recovery transitions."),
	}
	// The ledger's own lock joins the exposition: contended acquisitions
	// under a parallel scheduler (or an external API surface) show up as
	// sky_lock_contentions_total{lock="capacity_ledger"}.
	l.mu.Instrument(reg, "capacity_ledger")
	cores := reg.GaugeVec("sky_capacity_cores",
		"Cores per cloud by claim kind.", "cloud", "kind")
	reg.AddCollector(func() {
		l.mu.RLock()
		defer l.mu.RUnlock()
		for _, name := range l.order {
			a := l.accounts[name]
			cores.With(name, "committed").SetInt(int64(a.committed))
			cores.With(name, "held").SetInt(int64(a.held))
			cores.With(name, "reserved").SetInt(int64(a.reserved))
			cores.With(name, "free").SetInt(int64(a.total - a.committed - a.held))
		}
	})
}
