package capacity

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// The ledger journal is the crash-recovery substrate ROADMAP item 1
// (skyschedd) inherits: an append-only record of every primitive state
// transition the ledger performs, written under the same write lock that
// performs it, so replaying the records into a fresh ledger rebuilds the
// live ledger's capacity state byte-identically (see Snapshot). Records are
// primitive on purpose — composite transitions (Evict, FailCloud,
// Lease.Retarget) decompose into the lease create/close/shrink and
// committed-core moves they are made of, so Replay needs no knowledge of
// policy, only of state.
//
// A ledger with no journal attached pays one nil check per transition; the
// hot read paths (Probe, Free, Headroom) never journal.

// Journal op codes. One record's Op selects which of its fields are
// meaningful (see Rec).
const (
	// OpCloud registers a cloud or updates its total (Cloud, Cores=total).
	OpCloud = "cloud"
	// OpLease creates a lease (ID, Cloud, Cores, Kind, At, End).
	OpLease = "lease"
	// OpCommit retires lease ID into the committed aggregate.
	OpCommit = "commit"
	// OpRelease closes lease ID.
	OpRelease = "release"
	// OpShrink removes Cores from lease ID in place (partial retarget).
	OpShrink = "shrink"
	// OpUncommit returns Cores committed cores on Cloud to the pool.
	OpUncommit = "uncommit"
	// OpMove moves Cores committed cores from Cloud to To.
	OpMove = "move"
	// OpFail marks Cloud failed (its leases were closed by preceding
	// OpRelease records; its committed cores by a preceding OpUncommit).
	OpFail = "fail"
	// OpRestore clears Cloud's failed mark.
	OpRestore = "restore"
)

// Rec is one journal record. Field order is fixed so an encoded journal is
// byte-stable across save/load round trips.
type Rec struct {
	Op    string `json:"op"`
	Cloud string `json:"cloud,omitempty"`
	To    string `json:"to,omitempty"`
	ID    int    `json:"id,omitempty"`
	Cores int    `json:"cores,omitempty"`
	Kind  int    `json:"kind,omitempty"`
	At    int64  `json:"at,omitempty"`
	End   int64  `json:"end,omitempty"`
}

// Journal accumulates ledger transition records. Appends happen under the
// owning ledger's write lock (the ledger is the only writer), so the
// journal needs no lock of its own; read it only after detaching or once
// the writers are quiet.
type Journal struct {
	recs []Rec
	enc  *json.Encoder
}

// NewJournal returns an empty in-memory journal.
func NewJournal() *Journal { return &Journal{} }

// Sink additionally streams every future record to w as one JSON line per
// record — the durable form a daemon would fsync.
func (j *Journal) Sink(w io.Writer) { j.enc = json.NewEncoder(w) }

// Recs returns the accumulated records (not a copy).
func (j *Journal) Recs() []Rec { return j.recs }

// Len returns the number of accumulated records.
func (j *Journal) Len() int { return len(j.recs) }

func (j *Journal) append(r Rec) {
	j.recs = append(j.recs, r)
	if j.enc != nil {
		j.enc.Encode(r) // best-effort stream; recs stays authoritative
	}
}

// Journal attaches j as the ledger's transition journal (nil detaches).
// Attach before the first transition: the journal must observe every
// mutation from the empty ledger onward for Replay to reconstruct state.
func (l *Ledger) Journal(j *Journal) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.jrn = j
}

// jrec appends a record when a journal is attached. Callers hold l.mu.
func (l *Ledger) jrec(r Rec) {
	if l.jrn != nil {
		l.jrn.append(r)
	}
}

// LoadJournal reads records from a JSONL stream written by Sink.
func LoadJournal(r io.Reader) ([]Rec, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var recs []Rec
	line := 0
	for sc.Scan() {
		line++
		var rec Rec
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("capacity: journal line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// Replay rebuilds a ledger from a journal: applying the records in order to
// a fresh ledger reproduces the recording ledger's capacity state —
// accounts, committed aggregates, active leases with their original ids —
// byte-identically under Snapshot. Lease ids are restored exactly (the id
// sequence is part of the record stream), so a recovered scheduler adopts
// where the dead one left off.
func Replay(recs []Rec) (*Ledger, error) {
	l := New()
	leases := make(map[int]*Lease)
	for i, r := range recs {
		if err := l.apply(r, leases); err != nil {
			return nil, fmt.Errorf("capacity: journal record %d (%s): %w", i, r.Op, err)
		}
	}
	return l, nil
}

// apply replays one record.
func (l *Ledger) apply(r Rec, leases map[int]*Lease) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch r.Op {
	case OpCloud:
		l.addCloud(r.Cloud, r.Cores)
	case OpLease:
		a := l.accounts[r.Cloud]
		if a == nil {
			return fmt.Errorf("unknown cloud %q", r.Cloud)
		}
		if r.ID <= l.seq {
			return fmt.Errorf("lease id %d not past sequence %d", r.ID, l.seq)
		}
		l.seq = r.ID - 1 // newLease increments to exactly r.ID
		leases[r.ID] = l.newLease(a, r.Cores, Kind(r.Kind), sim.Time(r.At), sim.Time(r.End))
	case OpCommit:
		le := leases[r.ID]
		if le == nil {
			return fmt.Errorf("unknown lease %d", r.ID)
		}
		return le.commit()
	case OpRelease:
		le := leases[r.ID]
		if le == nil {
			return fmt.Errorf("unknown lease %d", r.ID)
		}
		le.release()
	case OpShrink:
		le := leases[r.ID]
		if le == nil || le.closed {
			return fmt.Errorf("shrinking closed or unknown lease %d", r.ID)
		}
		if r.Cores <= 0 || r.Cores >= le.Cores {
			return fmt.Errorf("shrinking %d of a %d-core lease", r.Cores, le.Cores)
		}
		a := le.acct
		a.index(le, false)
		le.Cores -= r.Cores
		*a.kindCores(le.Kind) -= r.Cores
		a.index(le, true)
	case OpUncommit:
		a := l.accounts[r.Cloud]
		if a == nil {
			return fmt.Errorf("unknown cloud %q", r.Cloud)
		}
		a.committed -= r.Cores
		if a.committed < 0 {
			a.committed = 0
		}
	case OpMove:
		src, dst := l.accounts[r.Cloud], l.accounts[r.To]
		if src == nil || dst == nil {
			return fmt.Errorf("unknown cloud in move %q -> %q", r.Cloud, r.To)
		}
		src.committed -= r.Cores
		dst.committed += r.Cores
	case OpFail:
		a := l.accounts[r.Cloud]
		if a == nil {
			return fmt.Errorf("unknown cloud %q", r.Cloud)
		}
		a.failed = true
	case OpRestore:
		a := l.accounts[r.Cloud]
		if a == nil {
			return fmt.Errorf("unknown cloud %q", r.Cloud)
		}
		a.failed = false
	default:
		return fmt.Errorf("unknown op")
	}
	return nil
}

// Snapshot renders the ledger's full capacity state deterministically:
// accounts in name order with their aggregates and failed marks, then every
// active lease in id order. Two ledgers with equal Snapshot bytes are
// equivalent for every capacity decision — the equality the kill-and-recover
// tests assert between a live ledger and its journal replay.
func (l *Ledger) Snapshot() []byte {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var b bytes.Buffer
	ids := make([]int, 0, 16)
	for _, name := range l.order {
		a := l.accounts[name]
		fmt.Fprintf(&b, "%s total=%d committed=%d held=%d reserved=%d failed=%t\n",
			name, a.total, a.committed, a.held, a.reserved, a.failed)
		ids = ids[:0]
		for id := range a.leases {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			le := a.leases[id]
			fmt.Fprintf(&b, "  lease %d kind=%s cores=%d at=%d end=%d\n",
				le.id, le.Kind, le.Cores, int64(le.At), int64(le.End))
		}
	}
	return b.Bytes()
}
