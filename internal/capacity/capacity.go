// Package capacity is the federation's unified core-accounting ledger: one
// per-cloud, time-indexed record of where cores are and where they are
// promised, shared by every layer that makes capacity decisions. Before it
// existed the repo answered "does this cloud have room?" in three
// disagreeing places — nimbus committed cores only when image propagation
// ended, the federation scheduler backend kept a private in-flight
// reservation map to paper over that window, and the scheduler's backfill
// rebuilt free-core vectors from scratch every cycle — which let an elastic
// grow race a reserved gang start. The ledger replaces all three with one
// account per cloud holding three kinds of claim:
//
//   - committed cores: placed VMs, held indefinitely until released
//     (nimbus host placement double-enters here);
//   - held leases: cores taken now by an in-flight admission or a running
//     job, optionally carrying an estimated release instant (backends with
//     runtime estimates set it, so future probes see the hand-back);
//   - reserved leases: future claims starting at a known instant — the
//     scheduler's backfill reservation lives here between cycles, visible
//     to every grower.
//
// Admission (Acquire) enforces the physical invariant committed + held ≤
// total; reservations are advisory claims that gate policy decisions
// through Probe, which answers "could an indefinite claim of n cores
// starting at t ever oversubscribe this cloud?" honoring held leases'
// estimated ends and reservations' start instants.
//
// The ledger is safe for concurrent use: every public method takes an
// instrumented reader/writer lock (contention is exported through
// Instrument as the sky_lock_* families), and Generation is a lock-free
// atomic read so hot-path cache-validity checks never serialize on the
// lock. The intended sharing shape is still read-mostly — the parallel
// scheduler's score workers read immutable snapshots and only the commit
// path writes — but nothing corrupts if an external surface (a metrics
// scrape, a daemon API) reads concurrently.
package capacity

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/lock"
	"repro/internal/sim"
)

// Kind distinguishes a lease's claim class.
type Kind int

const (
	// Held cores are taken now: an in-flight admission or a running job.
	Held Kind = iota
	// Reserved cores are a future claim starting at the lease's At instant.
	Reserved
)

func (k Kind) String() string {
	if k == Reserved {
		return "reserved"
	}
	return "held"
}

// ErrStaleGeneration is returned by the generation-validated commit helpers
// when the ledger moved under an optimistic caller: the capacity view the
// caller scored against is no longer the ledger's state, so the decision
// must be rescored rather than committed.
var ErrStaleGeneration = errors.New("capacity: ledger generation moved since speculation")

// Lease is one claim on a cloud's cores. Lifecycle: Acquire/Reserve creates
// it, Commit retires it into the committed aggregate (a held in-flight
// admission whose VMs landed, or a reservation whose gang is starting), and
// Release drops it. Both Commit and Release are terminal; Release is
// idempotent.
type Lease struct {
	l *Ledger
	// acct is the account the lease lives in — cached so the per-lease
	// lifecycle transitions (commit, release, retarget-out) skip the
	// accounts map hash on the scheduler's hot path.
	acct *account

	id    int
	Cloud string
	Cores int
	Kind  Kind
	// At is the reservation's future start instant (load-bearing: Probe
	// counts the reservation only from At onward). Always zero for held
	// leases, which claim cores from acquisition until release.
	At sim.Time
	// End is the estimated release instant (0 = unknown/indefinite). Probes
	// at t ≥ End treat the cores as handed back — estimates, not promises;
	// the holder still must Release.
	End sim.Time

	closed bool
}

// Active reports whether the lease still claims cores (not yet committed or
// released).
func (le *Lease) Active() bool {
	le.l.mu.RLock()
	defer le.l.mu.RUnlock()
	return !le.closed
}

// account is one cloud's ledger entry. held and reserved cache the active
// lease cores per kind (maintained at lease create/commit/release), so the
// hot-path aggregates (Free, every Acquire check) are O(1) instead of
// walking the lease map. heldEnds and resvStarts are sorted time indexes
// over the two time-dependent lease populations (held leases with estimated
// ends, reservations with future starts), so the Probe/Headroom path reads
// time-indexed aggregates in O(log n) instead of walking every lease per
// candidate.
type account struct {
	name      string
	total     int
	committed int
	held      int
	reserved  int
	// failed marks a cloud in outage: admission, reservation, probes, and
	// retargets onto it all refuse, and its free cores read as zero, until
	// RestoreCloud clears the mark. total is kept so federation-wide
	// fits-at-all checks still see the cloud coming back.
	failed bool
	leases map[int]*Lease
	// heldEnds indexes active held leases with a nonzero estimated end,
	// keyed by End; resvStarts indexes active reservations, keyed by At.
	heldEnds   timeIndex
	resvStarts timeIndex
}

func (a *account) kindCores(k Kind) *int {
	if k == Reserved {
		return &a.reserved
	}
	return &a.held
}

// timedCores is one time index entry: the cores a lease hands back (held
// ends) or claims (reservation starts) at instant at. Entries are ordered by
// (at, id); lease ids are unique, so the pair is a total order.
type timedCores struct {
	at    sim.Time
	id    int
	cores int
}

// idxBucketMax is the split threshold of a timeIndex bucket. Buckets merge
// back when a removal leaves one under a quarter of this and a neighbour
// has room, so the structure stays compact under churn.
const idxBucketMax = 128

// idxBucket is one node of the unrolled time index: a sorted run of entries
// plus a local prefix-sum of their cores, so a within-bucket "cores by t"
// read is one binary search and one array load.
type idxBucket struct {
	ents []timedCores
	cum  []int // cum[i] = Σ ents[:i+1].cores
}

func (b *idxBucket) sum() int {
	if len(b.cum) == 0 {
		return 0
	}
	return b.cum[len(b.cum)-1]
}

// search returns the index of the first entry ordered at or after (at, id).
func (b *idxBucket) search(at sim.Time, id int) int {
	return sort.Search(len(b.ents), func(i int) bool {
		e := b.ents[i]
		return e.at > at || (e.at == at && e.id >= id)
	})
}

// recum rebuilds the bucket's prefix sums from position i onward.
func (b *idxBucket) recum(i int) {
	prev := 0
	if i > 0 {
		prev = b.cum[i-1]
	}
	for ; i < len(b.ents); i++ {
		prev += b.ents[i].cores
		b.cum[i] = prev
	}
}

// timeIndex is an unrolled sorted list of timedCores: a slice of bounded
// buckets with per-bucket and per-index prefix sums. It answers "how many
// cores by instant t" in O(log n) like the flat prefix-summed slice it
// replaces, but inserts and removes touch one bucket (≤ idxBucketMax
// entries) plus the O(n/idxBucketMax) bucket summary — instead of an O(n)
// memmove over every entry — so the index stays cheap at the lease counts
// the trace-scale harness targets (ROADMAP item 3), not just at thousands.
type timeIndex struct {
	buckets []*idxBucket
	bcum    []int // bcum[i] = Σ buckets[:i+1].sum()
	n       int
	// spare caches the last dropped bucket for reuse: small indexes
	// oscillate between empty and one entry on every lease churn (one
	// held-end per launch/complete round trip), and without it each swing
	// re-allocates a bucket and both its arrays.
	spare *idxBucket
}

// len returns the number of entries (test/oracle surface).
func (x *timeIndex) size() int { return x.n }

// bucketFor returns the index of the bucket whose key range covers (at,
// id): the first bucket whose last entry orders at or after it, or
// len(buckets) when every bucket ends before it.
func (x *timeIndex) bucketFor(at sim.Time, id int) int {
	return sort.Search(len(x.buckets), func(i int) bool {
		b := x.buckets[i]
		e := b.ents[len(b.ents)-1]
		return e.at > at || (e.at == at && e.id >= id)
	})
}

// rebcum rebuilds the bucket-level prefix sums from bucket i onward — the
// slow path after a structural change (split, merge, bucket drop).
func (x *timeIndex) rebcum(i int) {
	prev := 0
	if i > 0 {
		prev = x.bcum[i-1]
	}
	for ; i < len(x.buckets); i++ {
		prev += x.buckets[i].sum()
		x.bcum[i] = prev
	}
}

// bcumShift applies a single-bucket core delta to the bucket prefix sums —
// the common path when an add/remove touched bucket i without changing the
// bucket set.
func (x *timeIndex) bcumShift(i, delta int) {
	for ; i < len(x.bcum); i++ {
		x.bcum[i] += delta
	}
}

// takeSpare returns the cached spare bucket (emptied, capacity retained)
// or a fresh one.
func (x *timeIndex) takeSpare() *idxBucket {
	b := x.spare
	if b == nil {
		return &idxBucket{}
	}
	x.spare = nil
	b.ents = b.ents[:0]
	b.cum = b.cum[:0]
	return b
}

func (x *timeIndex) add(at sim.Time, id, cores int) {
	x.n++
	if len(x.buckets) == 0 {
		b := x.takeSpare()
		b.ents = append(b.ents, timedCores{at: at, id: id, cores: cores})
		b.cum = append(b.cum, cores)
		x.buckets = append(x.buckets, b)
		x.bcum = append(x.bcum, cores)
		return
	}
	bi := x.bucketFor(at, id)
	if bi == len(x.buckets) {
		bi--
	}
	b := x.buckets[bi]
	j := b.search(at, id)
	b.ents = append(b.ents, timedCores{})
	copy(b.ents[j+1:], b.ents[j:])
	b.ents[j] = timedCores{at: at, id: id, cores: cores}
	b.cum = append(b.cum, 0)
	b.recum(j)
	if len(b.ents) > idxBucketMax {
		x.split(bi)
		x.rebcum(bi)
	} else {
		x.bcumShift(bi, cores)
	}
}

// split divides bucket bi in half; the caller fixes the bucket prefix sums.
func (x *timeIndex) split(bi int) {
	b := x.buckets[bi]
	half := len(b.ents) / 2
	nb := x.takeSpare()
	nb.ents = append(nb.ents, b.ents[half:]...)
	if n := len(b.ents) - half; cap(nb.cum) < n {
		nb.cum = make([]int, n)
	} else {
		nb.cum = nb.cum[:n]
	}
	nb.recum(0)
	b.ents = b.ents[:half]
	b.cum = b.cum[:half] // prefix property: the left half is already correct
	x.buckets = append(x.buckets, nil)
	copy(x.buckets[bi+2:], x.buckets[bi+1:])
	x.buckets[bi+1] = nb
	x.bcum = append(x.bcum, 0)
}

func (x *timeIndex) remove(at sim.Time, id int) {
	bi := x.bucketFor(at, id)
	if bi == len(x.buckets) {
		return
	}
	b := x.buckets[bi]
	j := b.search(at, id)
	if j >= len(b.ents) || b.ents[j].id != id || b.ents[j].at != at {
		return
	}
	cores := b.ents[j].cores
	copy(b.ents[j:], b.ents[j+1:])
	b.ents = b.ents[:len(b.ents)-1]
	b.cum = b.cum[:len(b.cum)-1]
	b.recum(j)
	x.n--
	switch {
	case len(b.ents) == 0:
		x.buckets = append(x.buckets[:bi], x.buckets[bi+1:]...)
		x.bcum = x.bcum[:len(x.bcum)-1]
		x.rebcum(bi)
		x.spare = b
	case len(b.ents) < idxBucketMax/4 && bi+1 < len(x.buckets) &&
		len(b.ents)+len(x.buckets[bi+1].ents) <= idxBucketMax*3/4:
		x.merge(bi)
		x.rebcum(bi)
	default:
		x.bcumShift(bi, -cores)
	}
}

// merge folds bucket bi+1 into bucket bi; the caller fixes the bucket
// prefix sums.
func (x *timeIndex) merge(bi int) {
	b, nb := x.buckets[bi], x.buckets[bi+1]
	at := len(b.ents)
	b.ents = append(b.ents, nb.ents...)
	b.cum = append(b.cum, nb.cum...)
	b.recum(at)
	x.buckets = append(x.buckets[:bi+1], x.buckets[bi+2:]...)
	x.bcum = x.bcum[:len(x.bcum)-1]
	x.spare = nb
}

// coresBy returns the total cores of entries with at <= t.
func (x *timeIndex) coresBy(t sim.Time) int {
	bi := sort.Search(len(x.buckets), func(i int) bool {
		b := x.buckets[i]
		return b.ents[len(b.ents)-1].at > t
	})
	total := 0
	if bi > 0 {
		total = x.bcum[bi-1]
	}
	if bi == len(x.buckets) {
		return total
	}
	b := x.buckets[bi]
	if j := sort.Search(len(b.ents), func(k int) bool { return b.ents[k].at > t }); j > 0 {
		total += b.cum[j-1]
	}
	return total
}

// idxIter walks index entries in (at, id) order. It is a value type so
// iteration allocates nothing; do not mutate the index mid-walk.
type idxIter struct {
	x  *timeIndex
	bi int
	j  int
}

// iterAfter positions an iterator at the first entry with at > t.
func (x *timeIndex) iterAfter(t sim.Time) idxIter {
	bi := sort.Search(len(x.buckets), func(i int) bool {
		b := x.buckets[i]
		return b.ents[len(b.ents)-1].at > t
	})
	it := idxIter{x: x, bi: bi}
	if bi < len(x.buckets) {
		b := x.buckets[bi]
		it.j = sort.Search(len(b.ents), func(k int) bool { return b.ents[k].at > t })
	}
	return it
}

// next returns the following entry, or false when the walk is done.
func (it *idxIter) next() (timedCores, bool) {
	for it.bi < len(it.x.buckets) {
		b := it.x.buckets[it.bi]
		if it.j < len(b.ents) {
			e := b.ents[it.j]
			it.j++
			return e, true
		}
		it.bi++
		it.j = 0
	}
	return timedCores{}, false
}

// Ledger is the shared capacity ledger. One instance spans a federation
// (every nimbus cloud plus the scheduler see the same accounts); backends
// without a federation (SimBackend, standalone nimbus clouds) own private
// instances with identical semantics.
type Ledger struct {
	// mu guards every account and counter below. It is an instrumented
	// lock (see internal/lock): once Instrument is called, contended
	// acquisitions surface as sky_lock_contentions_total{lock="capacity_ledger"}.
	mu lock.RWMutex

	seq      int
	accounts map[string]*account
	order    []string
	// orderAccts mirrors order as account pointers so the per-cycle bulk
	// reads (FreeTotals) walk a slice instead of hashing every name.
	orderAccts []*account
	// gen counts cloud-set and total-capacity changes plus forced
	// transitions (Evict/Retarget); callers cache capacity views derived
	// from the ledger keyed on it (the scheduler's federation-wide
	// gang-slot cache, the blocked-head reservation cache, the parallel
	// scheduler's speculative placement results). Atomic so the per-job
	// validity checks on the scheduler hot path never touch the lock.
	gen atomic.Uint64

	// Evictions and Retargets count forced transitions, for stats surfaces.
	Evictions int
	Retargets int
	// CloudFailures and CloudRestores count FailCloud/RestoreCloud
	// transitions (idempotent repeats excluded).
	CloudFailures int
	CloudRestores int

	// jrn, when attached, records every primitive state transition for
	// crash recovery (see journal.go). Nil when journaling is off — the
	// per-transition cost is then one nil check.
	jrn *Journal

	// viewVer counts every state transition (unlike gen, which only moves
	// on cloud-set/total changes and forced transitions); view caches the
	// snapshot published at the last View() call. Together they give
	// readers a lock-free consistent snapshot — see view.go.
	viewVer atomic.Uint64
	view    atomic.Pointer[View]

	// m mirrors transition counts into a registry when Instrument was
	// called; zero-value (nil instruments) otherwise.
	m ledgerMetrics
}

// New returns an empty ledger.
func New() *Ledger {
	return &Ledger{accounts: make(map[string]*account)}
}

// dirty marks the ledger state as moved since the last published read view.
// Called under the write lock at every state transition; multiple bumps in
// one critical section are harmless (readers only compare for equality).
func (l *Ledger) dirty() { l.viewVer.Add(1) }

// AddCloud registers a cloud's total core capacity. Re-adding an existing
// cloud only updates its total.
func (l *Ledger) AddCloud(name string, totalCores int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.addCloud(name, totalCores)
}

// addCloud is AddCloud without the lock.
func (l *Ledger) addCloud(name string, totalCores int) {
	if a, ok := l.accounts[name]; ok {
		if a.total != totalCores {
			a.total = totalCores
			l.jrec(Rec{Op: OpCloud, Cloud: name, Cores: totalCores})
			l.gen.Add(1)
			l.dirty()
		}
		return
	}
	l.accounts[name] = &account{name: name, total: totalCores, leases: make(map[int]*Lease)}
	l.order = append(l.order, name)
	sort.Strings(l.order)
	l.orderAccts = l.orderAccts[:0]
	for _, n := range l.order {
		l.orderAccts = append(l.orderAccts, l.accounts[n])
	}
	l.jrec(Rec{Op: OpCloud, Cloud: name, Cores: totalCores})
	l.gen.Add(1)
	l.dirty()
}

// Generation returns a counter bumped whenever the cloud set or any cloud's
// total capacity changes, and on every forced transition (Evict, Retarget)
// that moves claims behind normal acquire/release flow. Derived capacity
// views cached on it stay valid until it moves. Lock-free.
func (l *Ledger) Generation() uint64 { return l.gen.Load() }

// SetTotal updates a cloud's capacity (backends whose clouds resize).
func (l *Ledger) SetTotal(name string, totalCores int) { l.AddCloud(name, totalCores) }

// Clouds returns the registered cloud names, sorted.
func (l *Ledger) Clouds() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]string(nil), l.order...)
}

// Total returns a cloud's core capacity (0 for unknown clouds).
func (l *Ledger) Total(cloud string) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if a := l.accounts[cloud]; a != nil {
		return a.total
	}
	return 0
}

// Committed returns the cores of placed VMs on a cloud.
func (l *Ledger) Committed(cloud string) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if a := l.accounts[cloud]; a != nil {
		return a.committed
	}
	return 0
}

// Held returns the cores of active held leases on a cloud.
func (l *Ledger) Held(cloud string) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if a := l.accounts[cloud]; a != nil {
		return a.held
	}
	return 0
}

// Reserved returns the cores of active future reservations on a cloud.
func (l *Ledger) Reserved(cloud string) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if a := l.accounts[cloud]; a != nil {
		return a.reserved
	}
	return 0
}

// Free returns the cores available right now: total minus committed minus
// held. Future reservations do not reduce Free — they gate policy decisions
// through Probe, not physical admission.
func (l *Ledger) Free(cloud string) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.free(cloud)
}

// free is Free without the lock.
func (l *Ledger) free(cloud string) int {
	a := l.accounts[cloud]
	if a == nil || a.failed {
		return 0
	}
	return a.total - a.committed - a.held
}

// FreeTotals calls fn(name, free, total) for every registered cloud in name
// order under a single read lock — the bulk form of Free+Total for per-cycle
// snapshots, which would otherwise pay two lock round-trips per cloud.
func (l *Ledger) FreeTotals(fn func(name string, free, total int)) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, a := range l.orderAccts {
		free := a.total - a.committed - a.held
		if a.failed {
			free = 0
		}
		fn(a.name, free, a.total)
	}
}

// Headroom returns the cores a new indefinite claim could take at time
// `at` without ever oversubscribing the cloud — the largest n for which
// Probe(cloud, n, at) holds. Growers rank spill targets by it.
func (l *Ledger) Headroom(cloud string, at sim.Time) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.headroom(cloud, at)
}

// headroom is Headroom without the lock.
func (l *Ledger) headroom(cloud string, at sim.Time) int {
	a := l.accounts[cloud]
	if a == nil || a.failed {
		return 0
	}
	head := a.total - a.loadAt(at)
	it := a.resvStarts.iterAfter(at)
	for e, ok := it.next(); ok; e, ok = it.next() {
		if h := a.total - a.loadAt(e.at); h < head {
			head = h
		}
	}
	if head < 0 {
		return 0
	}
	return head
}

// PickGrowTarget chooses the cloud for one extra worker of `cores` cores —
// the grow-target policy shared by the federation backend (fedHandle) and
// SimBackend, so the two cannot drift: plan member clouds in order first
// (the gang extends in place), then the spill candidate with the most
// reservation-aware headroom (candidates must be pre-sorted; ties keep the
// earliest). Every choice is vetted with Probe at `at` — so growth is
// denied cores an outstanding reservation will need — AND against Free, so
// the pick is acquirable at the call instant: Probe trusts a held lease's
// estimated end, but an overdue lease (End ≤ at, holder hasn't released)
// still physically holds its cores, and without the Free gate a slipped
// estimate would steer the grow onto a cloud where Acquire must fail
// instead of spilling to one with real room. alloc counts cores already
// assigned per cloud by the same multi-worker grow but not yet acquired
// (nil when the caller acquires incrementally). Returns "" when no cloud
// qualifies.
func (l *Ledger) PickGrowTarget(members, spill []string, cores int, at sim.Time, alloc map[string]int) string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, m := range members {
		need := alloc[m] + cores
		if l.free(m) >= need && l.probe(m, need, at) {
			return m
		}
	}
	best, bestHead := "", 0
	for _, c := range spill {
		need := alloc[c] + cores
		if l.free(c) < need {
			continue
		}
		head := l.headroom(c, at) - alloc[c]
		if head < cores {
			continue
		}
		if best == "" || head > bestHead {
			best, bestHead = c, head
		}
	}
	return best
}

// loadAt returns the cores claimed at instant t: committed (indefinite),
// held leases not yet past their estimated end, and reservations whose
// start has arrived by t. Answered from the cached aggregates plus two
// O(log n) time-index reads — no lease walk: held cores minus the held
// leases whose estimated end has passed by t, plus the reservations whose
// start has arrived (reservations carry no end — Reserve never sets one).
func (a *account) loadAt(t sim.Time) int {
	return a.committed + a.held - a.heldEnds.coresBy(t) + a.resvStarts.coresBy(t)
}

// Probe reports whether a new indefinite claim of `cores` starting at `at`
// could be admitted without driving the cloud over capacity at any instant
// from `at` onward — exactly Headroom(cloud, at) ≥ cores. Held leases with
// estimated ends hand their cores back at those instants; reservations add
// theirs at their start instants — so an elastic grow probing "now" is
// denied when it would eat cores a backfill reservation needs at its future
// start, even though the cloud has room today.
func (l *Ledger) Probe(cloud string, cores int, at sim.Time) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.probe(cloud, cores, at)
}

// probe is Probe without the lock.
func (l *Ledger) probe(cloud string, cores int, at sim.Time) bool {
	l.m.probes.Inc()
	if l.accounts[cloud] == nil {
		return false
	}
	if cores <= 0 {
		return true
	}
	return l.headroom(cloud, at) >= cores
}

// Acquire claims cores held from now — the admission gate. Fails when the
// physical invariant committed + held + cores ≤ total would break. Future
// reservations do not block acquisition (a backfilled job legitimately
// starts "under" a reservation it will outlive-proof via Probe/backfill
// policy); policy layers must Probe first when their claim is indefinite.
func (l *Ledger) Acquire(cloud string, cores int) (*Lease, error) {
	return l.AcquireUntil(cloud, cores, 0)
}

// AcquireUntil is Acquire with an estimated release instant (0 = unknown),
// letting future probes see the hand-back.
func (l *Ledger) AcquireUntil(cloud string, cores int, end sim.Time) (*Lease, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acquireUntil(cloud, cores, end)
}

// AcquireUntilGen is the generation-validated commit helper for optimistic
// callers: it atomically re-checks that the ledger generation still equals
// `gen` — the value the caller read when it scored the decision it is now
// committing — and acquires only then. A mismatch returns
// ErrStaleGeneration without touching the account, telling the caller to
// rescore against current state instead of committing a plan built on a
// view a forced transition (Evict/Retarget) or capacity change has since
// invalidated.
func (l *Ledger) AcquireUntilGen(cloud string, cores int, end sim.Time, gen uint64) (*Lease, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.gen.Load() != gen {
		return nil, ErrStaleGeneration
	}
	return l.acquireUntil(cloud, cores, end)
}

// acquireUntil is AcquireUntil without the lock.
func (l *Ledger) acquireUntil(cloud string, cores int, end sim.Time) (*Lease, error) {
	a := l.accounts[cloud]
	if a == nil {
		return nil, fmt.Errorf("capacity: unknown cloud %q", cloud)
	}
	if cores < 0 {
		return nil, fmt.Errorf("capacity: negative acquisition of %d cores on %s", cores, cloud)
	}
	if a.failed {
		return nil, fmt.Errorf("capacity: acquiring on failed cloud %q", cloud)
	}
	if free := l.free(cloud); free < cores {
		return nil, fmt.Errorf("capacity: %s has %d free cores, need %d", cloud, free, cores)
	}
	l.m.acquires.Inc()
	return l.newLease(a, cores, Held, 0, end), nil
}

// Reserve records a future claim of cores starting at `at`. Reservations
// are advisory — they are not bounded by current free cores (the cloud
// being full now is exactly why a claim must wait for `at`) — but they are
// first-class ledger state: Probe charges them to every overlapping
// indefinite claim until the holder commits or releases.
func (l *Ledger) Reserve(cloud string, cores int, at sim.Time) (*Lease, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reserve(cloud, cores, at)
}

// reserve is Reserve without the lock.
func (l *Ledger) reserve(cloud string, cores int, at sim.Time) (*Lease, error) {
	a := l.accounts[cloud]
	if a == nil {
		return nil, fmt.Errorf("capacity: unknown cloud %q", cloud)
	}
	if cores < 0 {
		return nil, fmt.Errorf("capacity: negative reservation of %d cores on %s", cores, cloud)
	}
	if a.failed {
		return nil, fmt.Errorf("capacity: reserving on failed cloud %q", cloud)
	}
	l.m.reserves.Inc()
	return l.newLease(a, cores, Reserved, at, 0), nil
}

func (l *Ledger) newLease(a *account, cores int, k Kind, at, end sim.Time) *Lease {
	l.seq++
	le := &Lease{l: l, acct: a, id: l.seq, Cloud: a.name, Cores: cores, Kind: k, At: at, End: end}
	a.leases[le.id] = le
	*a.kindCores(k) += cores
	a.index(le, true)
	l.jrec(Rec{Op: OpLease, Cloud: a.name, ID: le.id, Cores: cores, Kind: int(k), At: int64(at), End: int64(end)})
	l.dirty()
	return le
}

// index adds or removes the lease's time-index entry: held leases with an
// estimated end are keyed by End (the instant their cores hand back),
// reservations by At (the instant their claim starts). Indefinite held
// leases live only in the O(1) held aggregate.
func (a *account) index(le *Lease, add bool) {
	var x *timeIndex
	var at sim.Time
	switch {
	case le.Kind == Reserved:
		x, at = &a.resvStarts, le.At
	case le.End != 0:
		x, at = &a.heldEnds, le.End
	default:
		return
	}
	if add {
		x.add(at, le.id, le.Cores)
	} else {
		x.remove(at, le.id)
	}
}

// Commit retires the lease into the committed aggregate: a held in-flight
// admission whose VMs have been placed, or a reservation whose gang starts
// now. Committing a reservation re-checks the physical invariant (the
// cores move from advisory to held-equivalent); committing a held lease
// cannot fail. Commit on a closed lease is a no-op.
func (le *Lease) Commit() error {
	le.l.mu.Lock()
	defer le.l.mu.Unlock()
	return le.commit()
}

// commit is Commit without the lock.
func (le *Lease) commit() error {
	if le.closed {
		return nil
	}
	a := le.acct
	if le.Kind == Reserved {
		if free := le.l.free(le.Cloud); free < le.Cores {
			return fmt.Errorf("capacity: committing reservation of %d cores on %s with %d free",
				le.Cores, le.Cloud, free)
		}
	}
	le.closed = true
	delete(a.leases, le.id)
	*a.kindCores(le.Kind) -= le.Cores
	a.index(le, false)
	a.committed += le.Cores
	le.l.jrec(Rec{Op: OpCommit, ID: le.id})
	le.l.dirty()
	return nil
}

// Release drops the lease's claim. Idempotent: releasing a committed or
// already-released lease does nothing (the committed cores are returned
// through Ledger.Uncommit when their VMs terminate).
func (le *Lease) Release() {
	le.l.mu.Lock()
	defer le.l.mu.Unlock()
	le.release()
}

// release is Release without the lock.
func (le *Lease) release() {
	if le.closed {
		return
	}
	le.closed = true
	a := le.acct
	delete(a.leases, le.id)
	*a.kindCores(le.Kind) -= le.Cores
	a.index(le, false)
	le.l.jrec(Rec{Op: OpRelease, ID: le.id})
	le.l.dirty()
}

// Uncommit returns committed cores to the pool (VM termination, shrink,
// revocation, migration away). Clamps at zero rather than going negative so
// double releases cannot mint capacity.
func (l *Ledger) Uncommit(cloud string, cores int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.accounts[cloud]
	if a == nil {
		return
	}
	a.committed -= cores
	if a.committed < 0 {
		a.committed = 0
	}
	l.jrec(Rec{Op: OpUncommit, Cloud: cloud, Cores: cores})
	l.dirty()
}

// CommitNow acquires and immediately commits cores — single-step admission
// for placements with no in-flight window (an inbound migrated VM).
func (l *Ledger) CommitNow(cloud string, cores int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	le, err := l.acquireUntil(cloud, cores, 0)
	if err != nil {
		return err
	}
	return le.commit()
}

// Evict is the preemption transition for leased claims: the victim lease
// (held or reserved) closes and a Reserved lease for the same cores on the
// same cloud, starting at `at`, is created in the same step — no instant
// exists where the cores are unclaimed for a third-party grow to probe and
// take ahead of the preemptor. The caller hands the returned shield lease
// to the beneficiary (the blocked head job), which releases it once its own
// acquisition lands. Idempotent: evicting an already-closed lease is a
// no-op returning (nil, nil).
func (l *Ledger) Evict(victim *Lease, at sim.Time) (*Lease, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if victim == nil || victim.closed {
		return nil, nil
	}
	if victim.l != l {
		return nil, fmt.Errorf("capacity: lease belongs to another ledger")
	}
	cloud, cores := victim.Cloud, victim.Cores
	victim.release()
	shield, err := l.reserve(cloud, cores, at)
	if err != nil {
		return nil, err
	}
	l.Evictions++
	l.m.evictions.Inc()
	l.gen.Add(1)
	return shield, nil
}

// EvictCommitted is Evict for committed cores (placed VMs carry no lease
// object): `cores` committed cores on `cloud` return to the pool and a
// Reserved lease for the beneficiary at `at` takes their place in one
// transition. The caller still tears the victim VMs down — through a path
// that must NOT Uncommit again (nimbus Cloud.ReleaseLedgered), since the
// ledger side of the eviction already happened here. Evicting more than is
// committed fails without touching anything.
func (l *Ledger) EvictCommitted(cloud string, cores int, at sim.Time) (*Lease, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.accounts[cloud]
	if a == nil {
		return nil, fmt.Errorf("capacity: unknown cloud %q", cloud)
	}
	if cores < 0 || cores > a.committed {
		return nil, fmt.Errorf("capacity: evicting %d committed cores on %s with %d committed",
			cores, cloud, a.committed)
	}
	a.committed -= cores
	l.jrec(Rec{Op: OpUncommit, Cloud: cloud, Cores: cores})
	shield := l.newLease(a, cores, Reserved, at, 0)
	l.Evictions++
	l.m.evictions.Inc()
	l.gen.Add(1)
	return shield, nil
}

// Retarget atomically moves committed cores between clouds — the migration
// transition for placed VMs. The destination's physical invariant is
// checked before the source account is touched, then the cores move
// committed→committed with no free instant in between, so a migration
// cannot lose its capacity to a concurrent acquire the way a
// release-then-adopt sequence could. Host-level bookkeeping moves through
// the ledger-skipping paths (nimbus ReleaseLedgered/AdoptLedgered).
func (l *Ledger) Retarget(from, to string, cores int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	src, dst := l.accounts[from], l.accounts[to]
	if src == nil {
		return fmt.Errorf("capacity: unknown cloud %q", from)
	}
	if dst == nil {
		return fmt.Errorf("capacity: unknown cloud %q", to)
	}
	if cores < 0 || cores > src.committed {
		return fmt.Errorf("capacity: retargeting %d committed cores from %s with %d committed",
			cores, from, src.committed)
	}
	if free := l.free(to); free < cores {
		return fmt.Errorf("capacity: %s has %d free cores, retarget needs %d", to, free, cores)
	}
	src.committed -= cores
	dst.committed += cores
	l.jrec(Rec{Op: OpMove, Cloud: from, To: to, Cores: cores})
	l.Retargets++
	l.m.retargets.Inc()
	l.gen.Add(1)
	l.dirty()
	return nil
}

// Retarget atomically moves `cores` of the lease's claim to another cloud,
// returning the lease now holding them there (the remainder, if any, stays
// behind on the source). Held claims re-check the destination's physical
// invariant; reservations move freely (they are advisory until committed).
// Kind, start, and estimated end carry over, so a consolidating gang
// member's hand-back estimate survives the move and future probes stay
// exact. Fails without touching either account when the destination lacks
// room or the lease is closed.
func (le *Lease) Retarget(to string, cores int) (*Lease, error) {
	l := le.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if le.closed {
		return nil, fmt.Errorf("capacity: retargeting a closed lease")
	}
	if cores <= 0 || cores > le.Cores {
		return nil, fmt.Errorf("capacity: retargeting %d of a %d-core lease", cores, le.Cores)
	}
	dst := l.accounts[to]
	if dst == nil {
		return nil, fmt.Errorf("capacity: unknown cloud %q", to)
	}
	if to == le.Cloud {
		return le, nil
	}
	if dst.failed {
		return nil, fmt.Errorf("capacity: retargeting onto failed cloud %q", to)
	}
	if le.Kind == Held {
		if free := l.free(to); free < cores {
			return nil, fmt.Errorf("capacity: %s has %d free cores, retarget needs %d", to, free, cores)
		}
	}
	src := le.acct
	if cores == le.Cores {
		delete(src.leases, le.id)
		*src.kindCores(le.Kind) -= le.Cores
		src.index(le, false)
		le.closed = true
		l.jrec(Rec{Op: OpRelease, ID: le.id})
	} else {
		// Shrink the source lease in place: re-key its time-index entry to
		// the reduced core count.
		src.index(le, false)
		le.Cores -= cores
		*src.kindCores(le.Kind) -= cores
		src.index(le, true)
		l.jrec(Rec{Op: OpShrink, ID: le.id, Cores: cores})
	}
	moved := l.newLease(dst, cores, le.Kind, le.At, le.End)
	l.Retargets++
	l.m.retargets.Inc()
	l.gen.Add(1)
	return moved, nil
}

// FailCloud is the outage transition: the cloud's every active lease (held
// and reserved) closes, its committed cores return to the pool, and the
// account is marked failed — all in one generation-bumped step, so no probe
// or optimistic commit can observe a half-dead cloud. While failed, the
// cloud admits nothing: Acquire/Reserve/Retarget-onto refuse, Free and
// Headroom read zero, Probe fails. Total capacity is kept so federation-wide
// "could this ever fit" checks still count the cloud as coming back.
// Idempotent: failing a failed cloud does nothing and returns 0. Returns the
// cores lost (lease + committed), for the caller's outage accounting.
func (l *Ledger) FailCloud(name string) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.accounts[name]
	if a == nil {
		return 0, fmt.Errorf("capacity: unknown cloud %q", name)
	}
	if a.failed {
		return 0, nil
	}
	lost := 0
	if len(a.leases) > 0 {
		// Close in id order: the journal (and any metrics side effects) must
		// not depend on map iteration order.
		ids := make([]int, 0, len(a.leases))
		for id := range a.leases {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			le := a.leases[id]
			lost += le.Cores
			le.release()
		}
	}
	if a.committed > 0 {
		lost += a.committed
		l.jrec(Rec{Op: OpUncommit, Cloud: name, Cores: a.committed})
		a.committed = 0
	}
	a.failed = true
	l.jrec(Rec{Op: OpFail, Cloud: name})
	l.CloudFailures++
	l.m.cloudFailures.Inc()
	l.gen.Add(1)
	l.dirty()
	return lost, nil
}

// RestoreCloud clears a cloud's failed mark: its full capacity is free
// again (everything on it was evicted at failure). Idempotent.
func (l *Ledger) RestoreCloud(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.accounts[name]
	if a == nil {
		return fmt.Errorf("capacity: unknown cloud %q", name)
	}
	if !a.failed {
		return nil
	}
	a.failed = false
	l.jrec(Rec{Op: OpRestore, Cloud: name})
	l.CloudRestores++
	l.m.cloudRestores.Inc()
	l.gen.Add(1)
	l.dirty()
	return nil
}

// Failed reports whether the cloud is in a FailCloud outage.
func (l *Ledger) Failed(name string) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	a := l.accounts[name]
	return a != nil && a.failed
}

// String renders one line per cloud for debugging and logs.
func (l *Ledger) String() string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := ""
	for _, name := range l.order {
		a := l.accounts[name]
		out += fmt.Sprintf("%s: total=%d committed=%d held=%d reserved=%d free=%d\n",
			name, a.total, a.committed, a.held, a.reserved, a.total-a.committed-a.held)
	}
	return out
}
