package mapreduce

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

const MB = 1 << 20

// cluster builds a single-site cluster with n workers, 2 slots each.
func cluster(n int) (*sim.Kernel, *simnet.Network, *Cluster) {
	k := sim.NewKernel(1)
	net := simnet.New(k)
	s := net.AddSite("cloud", 125*MB, 125*MB)
	c := NewCluster(net)
	for i := 0; i < n; i++ {
		id := workerID(i)
		c.AddWorker(id, s.AddNode(id, 125*MB), 1.0, 2)
	}
	return k, net, c
}

func workerID(i int) string { return string([]byte{'w', byte('0' + i/10), byte('0' + i%10)}) }

func TestSimpleJobCompletes(t *testing.T) {
	k, _, c := cluster(2)
	job := Job{Name: "j", NumMaps: 8, NumReduces: 2, MapCPU: 10, ReduceCPU: 5,
		ShuffleBytesPerMapPerReduce: MB}
	var res Result
	if err := c.Run(job, func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if res.Makespan == 0 {
		t.Fatal("job never finished")
	}
	if res.MapsExecuted != 8 || res.ReducesExecuted != 2 {
		t.Fatalf("executions maps=%d reduces=%d", res.MapsExecuted, res.ReducesExecuted)
	}
	// 8 maps x 10s over 4 slots = 20s + shuffle + 5s reduce.
	if res.Makespan.Seconds() < 25 || res.Makespan.Seconds() > 40 {
		t.Fatalf("makespan %v out of range", res.Makespan)
	}
	if res.ShuffleBytes != 8*2*MB {
		t.Fatalf("shuffle bytes %d", res.ShuffleBytes)
	}
}

func TestMapOnlyJob(t *testing.T) {
	k, _, c := cluster(2)
	var res Result
	if err := c.Run(Job{Name: "m", NumMaps: 4, MapCPU: 1}, func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if res.Makespan == 0 || res.ReducesExecuted != 0 {
		t.Fatalf("map-only job: %+v", res)
	}
}

func TestScalingNearLinearForEP(t *testing.T) {
	makespan := func(n int) float64 {
		k, _, c := cluster(n)
		var res Result
		if err := c.Run(BlastJob(64), func(r Result) { res = r }); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return res.Makespan.Seconds()
	}
	m2, m8 := makespan(2), makespan(8)
	speedup := m2 / m8
	// 4x the workers: embarrassingly parallel speedup should be near 4.
	if speedup < 3.0 {
		t.Fatalf("EP speedup %.2fx for 4x workers, want >= 3x", speedup)
	}
}

func TestRunErrors(t *testing.T) {
	k, _, c := cluster(1)
	if err := c.Run(Job{Name: "x"}, nil); err == nil {
		t.Fatal("zero-map job must be rejected")
	}
	if err := c.Run(Job{Name: "a", NumMaps: 4, MapCPU: 100}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(Job{Name: "b", NumMaps: 1, MapCPU: 1}, nil); err == nil {
		t.Fatal("concurrent job must be rejected")
	}
	k.Run()
	// After completion a new job is accepted.
	if err := c.Run(Job{Name: "c", NumMaps: 1, MapCPU: 1}, nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	kEmpty := sim.NewKernel(1)
	cEmpty := NewCluster(simnet.New(kEmpty))
	if err := cEmpty.Run(Job{Name: "d", NumMaps: 1, MapCPU: 1}, nil); err == nil {
		t.Fatal("no-worker job must be rejected")
	}
}

func TestDynamicAdditionShortensJob(t *testing.T) {
	run := func(addAt sim.Time, extra int) float64 {
		k, net, c := cluster(2)
		s := net.Site("cloud")
		var res Result
		if err := c.Run(BlastJob(64), func(r Result) { res = r }); err != nil {
			t.Fatal(err)
		}
		if extra > 0 {
			k.Schedule(addAt, func() {
				for i := 0; i < extra; i++ {
					id := workerID(10 + i)
					c.AddWorker(id, s.AddNode(id, 125*MB), 1.0, 2)
				}
			})
		}
		k.Run()
		return res.Makespan.Seconds()
	}
	static := run(0, 0)
	elastic := run(30*sim.Second, 6)
	if elastic >= static*0.8 {
		t.Fatalf("elastic %.1fs not much faster than static %.1fs", elastic, static)
	}
}

func TestDynamicRemovalRequeuesRunningMaps(t *testing.T) {
	k, _, c := cluster(4)
	var res Result
	if err := c.Run(Job{Name: "j", NumMaps: 16, NumReduces: 1, MapCPU: 10,
		ShuffleBytesPerMapPerReduce: 1024}, func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	// Remove two workers mid-map-phase.
	k.Schedule(5*sim.Second, func() {
		c.RemoveWorker("w00")
		c.RemoveWorker("w01")
	})
	k.Run()
	if res.Makespan == 0 {
		t.Fatal("job hung after worker removal")
	}
	if len(c.Workers()) != 2 {
		t.Fatalf("workers left: %v", c.Workers())
	}
	if res.MapsExecuted < 16 {
		t.Fatalf("maps executed %d < 16", res.MapsExecuted)
	}
}

func TestRemovalOfCompletedMapsForcesRerun(t *testing.T) {
	k, _, c := cluster(2)
	var res Result
	// Long maps; first batch completes on both workers, then one worker is
	// removed before shuffle: its outputs must re-run.
	if err := c.Run(Job{Name: "j", NumMaps: 8, NumReduces: 1, MapCPU: 10,
		ShuffleBytesPerMapPerReduce: MB}, func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	k.Schedule(15*sim.Second, func() { c.RemoveWorker("w00") }) // after ~4 maps done
	k.Run()
	if res.Makespan == 0 {
		t.Fatal("job hung")
	}
	if res.MapsExecuted <= 8 {
		t.Fatalf("expected re-executions, got %d total", res.MapsExecuted)
	}
}

func TestRemovalDuringReducePhase(t *testing.T) {
	k, _, c := cluster(3)
	var res Result
	if err := c.Run(Job{Name: "j", NumMaps: 6, NumReduces: 3, MapCPU: 2, ReduceCPU: 30,
		ShuffleBytesPerMapPerReduce: 4 * MB}, func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	// Maps finish ~4s (6 maps, 6 slots). Kill a worker during reduces.
	k.Schedule(10*sim.Second, func() { c.RemoveWorker("w02") })
	k.Run()
	if res.Makespan == 0 {
		t.Fatal("job hung after reduce-phase removal")
	}
	if res.ReducesExecuted != 3 {
		t.Fatalf("reduces executed %d", res.ReducesExecuted)
	}
}

func TestCrossSiteShuffleAccounting(t *testing.T) {
	k := sim.NewKernel(1)
	net := simnet.New(k)
	a := net.AddSite("east", 125*MB, 125*MB)
	b := net.AddSite("west", 125*MB, 125*MB)
	net.SetSiteLatency("east", "west", 50*sim.Millisecond)
	c := NewCluster(net)
	c.AddWorker("e0", a.AddNode("e0", 125*MB), 1, 2)
	c.AddWorker("w0", b.AddNode("w0", 125*MB), 1, 2)
	var res Result
	if err := c.Run(Job{Name: "j", NumMaps: 4, NumReduces: 2, MapCPU: 1,
		ShuffleBytesPerMapPerReduce: MB}, func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if res.CrossSiteShuffleBytes == 0 {
		t.Fatal("cross-site shuffle not accounted")
	}
	if res.CrossSiteShuffleBytes >= res.ShuffleBytes {
		t.Fatalf("cross-site %d >= total %d", res.CrossSiteShuffleBytes, res.ShuffleBytes)
	}
	if net.TotalWANBytes() == 0 {
		t.Fatal("shuffle never touched the WAN")
	}
}

func TestShuffleHeavyCrossCloudSlower(t *testing.T) {
	run := func(twoSites bool) float64 {
		k := sim.NewKernel(1)
		net := simnet.New(k)
		a := net.AddSite("east", 30*MB, 30*MB)
		var bSite = a
		if twoSites {
			bSite = net.AddSite("west", 30*MB, 30*MB)
			net.SetSiteLatency("east", "west", 70*sim.Millisecond)
		}
		c := NewCluster(net)
		for i := 0; i < 4; i++ {
			id := workerID(i)
			site := a
			if twoSites && i >= 2 {
				site = bSite
			}
			c.AddWorker(id, site.AddNode(id, 125*MB), 1, 2)
		}
		var res Result
		if err := c.Run(SortJob(16, 4), func(r Result) { res = r }); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return res.Makespan.Seconds()
	}
	single, dual := run(false), run(true)
	if dual <= single {
		t.Fatalf("shuffle-heavy job not slower across clouds: single=%.1fs dual=%.1fs", single, dual)
	}
}

func TestFasterWorkersFinishSooner(t *testing.T) {
	run := func(speed float64) float64 {
		k, net, c := cluster(0)
		s := net.Site("cloud")
		for i := 0; i < 2; i++ {
			id := workerID(i)
			c.AddWorker(id, s.AddNode(id, 125*MB), speed, 2)
		}
		var res Result
		if err := c.Run(Job{Name: "j", NumMaps: 8, MapCPU: 10}, func(r Result) { res = r }); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return res.Makespan.Seconds()
	}
	slow, fast := run(1.0), run(2.0)
	if fast >= slow*0.7 {
		t.Fatalf("2x CPU speed gave %.1fs vs %.1fs", fast, slow)
	}
}

func TestProgressReporting(t *testing.T) {
	k, _, c := cluster(2)
	if err := c.Run(Job{Name: "j", NumMaps: 8, NumReduces: 2, MapCPU: 10,
		ShuffleBytesPerMapPerReduce: 1024}, nil); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(15 * sim.Second)
	md, mt, _, rt := c.Progress()
	if mt != 8 || rt != 2 {
		t.Fatalf("totals %d %d", mt, rt)
	}
	if md == 0 || md == 8 {
		t.Fatalf("mid-job maps done %d should be partial", md)
	}
	if !c.Running() {
		t.Fatal("job should still be running")
	}
	k.Run()
	if c.Running() {
		t.Fatal("job should have finished")
	}
}

func TestDeterministicMakespan(t *testing.T) {
	run := func() sim.Time {
		k, _, c := cluster(3)
		var res Result
		if err := c.Run(SortJob(12, 3), func(r Result) { res = r }); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return res.Makespan
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic makespan: %v vs %v", a, b)
	}
}

func TestPeakWorkersTracked(t *testing.T) {
	k, net, c := cluster(2)
	var res Result
	if err := c.Run(BlastJob(32), func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	k.Schedule(20*sim.Second, func() {
		c.AddWorker("w99", net.Site("cloud").AddNode("w99", 125*MB), 1, 2)
	})
	k.Run()
	if res.PeakWorkers != 3 {
		t.Fatalf("peak workers %d, want 3", res.PeakWorkers)
	}
}

// TestReducePlacementPrefersMapOutputSite: on a spanning cluster the
// reduce lands on the site holding most of the map output, so only the
// minority site's output crosses the WAN. Worker IDs are chosen so the old
// least-loaded/lowest-ID pick would have chosen the minority site.
func TestReducePlacementPrefersMapOutputSite(t *testing.T) {
	k := sim.NewKernel(1)
	net := simnet.New(k)
	big := net.AddSite("big", 125*MB, 125*MB)
	small := net.AddSite("small", 125*MB, 125*MB)
	c := NewCluster(net)
	// IDs on the minority site sort first: a naive ID tie-break would put
	// the reduce there.
	c.AddWorker("a0", small.AddNode("a0", 125*MB), 1, 1)
	c.AddWorker("a1", small.AddNode("a1", 125*MB), 1, 1)
	for i := 0; i < 4; i++ {
		id := workerID(i)
		c.AddWorker(id, big.AddNode(id, 125*MB), 1, 1)
	}
	var res Result
	if err := c.Run(Job{Name: "j", NumMaps: 6, NumReduces: 1, MapCPU: 1, ReduceCPU: 1,
		ShuffleBytesPerMapPerReduce: MB}, func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	// 6 maps on 6 single-slot workers: 4 outputs on "big", 2 on "small".
	// The reduce must run on "big", shuffling exactly the 2 minority
	// outputs across sites.
	if res.CrossSiteShuffleBytes != 2*MB {
		t.Fatalf("cross-site shuffle %d bytes, want 2 MiB (reduce at the output-heavy site)", res.CrossSiteShuffleBytes)
	}
}
