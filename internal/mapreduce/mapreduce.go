// Package mapreduce is a Hadoop-like execution framework running on
// simulated VMs, built for §II of the paper: virtual Hadoop clusters
// spanning multiple clouds running MapReduce BLAST, with dynamic addition
// and removal of workers at run time ("execution frameworks supporting
// resource addition and removal at run time are suitable to take advantage
// of the dynamic nature of distributed cloud computing infrastructures").
//
// Fidelity notes (and deliberate simplifications, documented in DESIGN.md):
//   - Map outputs live on the worker that ran the map. Removing a worker
//     re-executes its completed maps unless every reduce already fetched
//     them — Hadoop's exact behaviour.
//   - Shuffle transfers are aggregated per (source worker, reduce) pair and
//     fetched with bounded parallelism, like Hadoop's copier threads.
//   - Reduces start when all maps are done (no slow-start overlap); task
//     heartbeat/control traffic is not modelled (negligible bytes).
package mapreduce

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// Job describes a MapReduce job. CPU costs are seconds on a speed-1.0 core.
type Job struct {
	Name       string
	NumMaps    int
	NumReduces int
	MapCPU     float64
	ReduceCPU  float64
	// MapInputBytes is read locally per map (adds MapInputBytes/DiskBW of
	// runtime; DiskBW fixed at 100 MB/s). Ignored when Splits is set.
	MapInputBytes int64
	// ShuffleBytesPerMapPerReduce is the intermediate data each map emits
	// for each reduce.
	ShuffleBytesPerMapPerReduce int64
	// Splits optionally binds each map task to a DFS input split with
	// replica locations (see hdfs.MapSplits). When set, len(Splits) must
	// equal NumMaps; the scheduler prefers node-local, then site-local
	// workers, and non-local maps stream their input over the network
	// before computing — Hadoop's locality-aware scheduling.
	Splits []Split
	// IgnoreLocality keeps the split-aware data path (non-local maps still
	// stream their input) but makes the scheduler assign tasks FIFO — the
	// locality-oblivious baseline.
	IgnoreLocality bool
}

// Split is one map task's input: size plus the nodes holding a replica.
type Split struct {
	Bytes     int64
	Preferred []*simnet.Node
}

// BlastJob returns an embarrassingly parallel BLAST-style job: heavy maps,
// negligible shuffle — the workload §II runs across clouds.
func BlastJob(nMaps int) Job {
	return Job{
		Name: "blast", NumMaps: nMaps, NumReduces: 1,
		MapCPU: 30, ReduceCPU: 2,
		MapInputBytes:               8 << 20,
		ShuffleBytesPerMapPerReduce: 16 << 10,
	}
}

// SortJob returns a shuffle-heavy job (the contrast workload: all map input
// crosses the network, so cross-cloud placement hurts).
func SortJob(nMaps, nReduces int) Job {
	return Job{
		Name: "sort", NumMaps: nMaps, NumReduces: nReduces,
		MapCPU: 4, ReduceCPU: 6,
		MapInputBytes:               64 << 20,
		ShuffleBytesPerMapPerReduce: (64 << 20) / int64(nReduces),
	}
}

const diskBW = 100 << 20 // local disk read bandwidth, bytes/sec

// MapTaskCost returns one map task's seconds on a speed-1 core, including
// the local input read. Shared by every layer that estimates job runtime
// (emr ETA prediction, scheduler reservations) so the cost model lives in
// one place.
func (j Job) MapTaskCost() float64 {
	return j.MapCPU + float64(j.MapInputBytes)/float64(diskBW)
}

// SerialWork returns the job's total task-seconds on a speed-1 core.
func (j Job) SerialWork() float64 {
	return float64(j.NumMaps)*j.MapTaskCost() + float64(j.NumReduces)*j.ReduceCPU
}

// Result reports a finished job.
type Result struct {
	Job      string
	Makespan sim.Time
	// MapsExecuted counts map task executions including re-runs after
	// worker removal (MapsExecuted - NumMaps = wasted work).
	MapsExecuted          int
	ReducesExecuted       int
	ShuffleBytes          int64
	CrossSiteShuffleBytes int64
	PeakWorkers           int
	// Locality accounting (populated when Job.Splits is set).
	NodeLocalMaps     int
	SiteLocalMaps     int
	RemoteMaps        int
	InputNetworkBytes int64
}

// Worker is a task-runner on one VM/node.
type Worker struct {
	ID    string
	Node  *simnet.Node
	Speed float64
	Slots int

	busy          int
	alive         bool
	completedMaps map[int]bool // map task id -> output held here
}

// Cluster is the JobTracker plus its TaskTrackers.
type Cluster struct {
	net     *simnet.Network
	workers map[string]*Worker

	exec *execution
}

// NewCluster returns an empty cluster.
func NewCluster(net *simnet.Network) *Cluster {
	return &Cluster{net: net, workers: make(map[string]*Worker)}
}

// AddWorker registers a worker (dynamic addition works mid-job) with the
// given relative CPU speed and task slots.
func (c *Cluster) AddWorker(id string, node *simnet.Node, speed float64, slots int) {
	if _, dup := c.workers[id]; dup {
		panic("mapreduce: duplicate worker " + id)
	}
	if speed <= 0 {
		speed = 1
	}
	if slots <= 0 {
		slots = 1
	}
	c.workers[id] = &Worker{ID: id, Node: node, Speed: speed, Slots: slots,
		alive: true, completedMaps: make(map[int]bool)}
	if c.exec != nil {
		if n := c.aliveCount(); n > c.exec.result.PeakWorkers {
			c.exec.result.PeakWorkers = n
		}
		c.pump()
	}
}

// RemoveWorker deregisters a worker (dynamic removal). Running tasks are
// requeued; completed map outputs that some unfinished reduce still needs
// are invalidated, forcing re-execution.
func (c *Cluster) RemoveWorker(id string) {
	w, ok := c.workers[id]
	if !ok {
		return
	}
	w.alive = false
	delete(c.workers, id)
	if c.exec != nil {
		c.exec.workerLost(w)
		c.pump()
	}
}

// MoveWorker rebinds a worker to a new network node — called after a live
// migration relocated the worker's VM. The worker keeps its tasks (live
// migration does not interrupt the guest); subsequent transfers use the new
// location.
func (c *Cluster) MoveWorker(id string, node *simnet.Node) {
	if w, ok := c.workers[id]; ok {
		w.Node = node
	}
}

// Workers returns alive worker IDs, sorted.
func (c *Cluster) Workers() []string {
	out := make([]string, 0, len(c.workers))
	for id := range c.workers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (c *Cluster) aliveCount() int { return len(c.workers) }

func (c *Cluster) sortedWorkers() []*Worker {
	out := make([]*Worker, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Running reports whether a job is in flight.
func (c *Cluster) Running() bool { return c.exec != nil && !c.exec.finished }

// Progress returns completed and total map counts for the running job.
func (c *Cluster) Progress() (mapsDone, mapsTotal, reducesDone, reducesTotal int) {
	if c.exec == nil {
		return 0, 0, 0, 0
	}
	e := c.exec
	return e.mapsDone, e.job.NumMaps, e.reducesDone, e.job.NumReduces
}

type taskState int

const (
	statePending taskState = iota
	stateRunning
	stateDone
)

type reduceExec struct {
	id     int
	state  taskState
	worker *Worker
	// counted[mapID] = this reduce has accounted (or fetched) that map's
	// output bytes.
	counted map[int]bool
	// pendingSources aggregates unfetched bytes per source worker id.
	pendingSources map[string]int64
	sourceNodes    map[string]*simnet.Node
	fetching       int
	computing      bool
}

type execution struct {
	c     *Cluster
	job   Job
	start sim.Time

	mapState []taskState
	mapQueue []int
	mapsDone int
	mapRunOn map[int]*Worker

	reduces     []*reduceExec
	reduceQueue []int
	reducesDone int

	result   Result
	onDone   func(Result)
	finished bool
}

// Run starts a job. Exactly one job may run at a time per cluster.
func (c *Cluster) Run(job Job, onDone func(Result)) error {
	if c.Running() {
		return fmt.Errorf("mapreduce: cluster already running %s", c.exec.job.Name)
	}
	if len(c.workers) == 0 {
		return fmt.Errorf("mapreduce: no workers")
	}
	if job.NumMaps <= 0 {
		return fmt.Errorf("mapreduce: job needs maps")
	}
	if job.Splits != nil && len(job.Splits) != job.NumMaps {
		return fmt.Errorf("mapreduce: %d splits for %d maps", len(job.Splits), job.NumMaps)
	}
	e := &execution{
		c:        c,
		job:      job,
		start:    c.net.K.Now(),
		mapState: make([]taskState, job.NumMaps),
		mapRunOn: make(map[int]*Worker),
		onDone:   onDone,
	}
	e.result.Job = job.Name
	e.result.PeakWorkers = c.aliveCount()
	for i := 0; i < job.NumMaps; i++ {
		e.mapQueue = append(e.mapQueue, i)
	}
	c.exec = e
	c.net.K.Schedule(0, c.pump)
	return nil
}

// pump is the scheduler: assigns pending work to free slots.
func (c *Cluster) pump() {
	e := c.exec
	if e == nil || e.finished {
		return
	}
	workers := c.sortedWorkers()
	// Map phase: each free slot takes the pending map with the best
	// locality for that worker (node-local > site-local > any), matching
	// Hadoop's scheduler when splits carry replica locations.
	for len(e.mapQueue) > 0 {
		w := freeWorker(workers)
		if w == nil {
			break
		}
		pick := 0
		if e.job.Splits != nil && !e.job.IgnoreLocality {
			bestRank := 3
			for qi, mapID := range e.mapQueue {
				r := e.localityRank(mapID, w)
				if r < bestRank {
					bestRank, pick = r, qi
					if r == 0 {
						break
					}
				}
			}
		}
		mapID := e.mapQueue[pick]
		e.mapQueue = append(e.mapQueue[:pick], e.mapQueue[pick+1:]...)
		e.startMap(mapID, w)
	}
	// Reduce phase: create reduce tasks once all maps are done.
	if e.mapsDone == e.job.NumMaps && e.reduces == nil {
		e.createReduces()
	}
	if e.reduces != nil {
		for len(e.reduceQueue) > 0 {
			rid := e.reduceQueue[0]
			w := freeWorkerForReduce(workers, e.reduces[rid])
			if w == nil {
				break
			}
			e.reduceQueue = e.reduceQueue[1:]
			e.startReduce(e.reduces[rid], w)
		}
	}
	e.maybeFinish()
}

func freeWorker(ws []*Worker) *Worker {
	// Least-loaded first for balance, ties by ID for determinism.
	var best *Worker
	for _, w := range ws {
		if !w.alive || w.busy >= w.Slots {
			continue
		}
		if best == nil || w.busy < best.busy {
			best = w
		}
	}
	return best
}

// freeWorkerForReduce places a reduce task shuffle-aware: among free
// workers, prefer the site holding the most of this reduce's unfetched
// map-output bytes, then the least-loaded worker; remaining ties keep the
// earliest entry of ws, which pump passes ID-sorted. On a cluster spanning
// clouds this keeps the bulk of the shuffle off the WAN, so spanning jobs
// pay only for the output that genuinely has to cross sites. Single-site
// clusters degrade to the plain least-loaded pick.
func freeWorkerForReduce(ws []*Worker, r *reduceExec) *Worker {
	siteBytes := make(map[*simnet.Site]int64, 2)
	for src, bytes := range r.pendingSources {
		if n := r.sourceNodes[src]; n != nil {
			siteBytes[n.Site] += bytes
		}
	}
	var best *Worker
	for _, w := range ws {
		if !w.alive || w.busy >= w.Slots {
			continue
		}
		if best == nil {
			best = w
			continue
		}
		wb, bb := siteBytes[w.Node.Site], siteBytes[best.Node.Site]
		if wb > bb || (wb == bb && w.busy < best.busy) {
			best = w
		}
	}
	return best
}

// localityRank scores a (map, worker) pair: 0 node-local, 1 site-local,
// 2 remote, 3 no split info.
func (e *execution) localityRank(mapID int, w *Worker) int {
	if e.job.Splits == nil || mapID >= len(e.job.Splits) {
		return 3
	}
	rank := 2
	for _, n := range e.job.Splits[mapID].Preferred {
		if n == w.Node {
			return 0
		}
		if n.Site == w.Node.Site {
			rank = 1
		}
	}
	return rank
}

func (e *execution) startMap(mapID int, w *Worker) {
	e.mapState[mapID] = stateRunning
	e.mapRunOn[mapID] = w
	w.busy++
	compute := func(inputDiskBytes int64) {
		dur := sim.FromSeconds(e.job.MapCPU/w.Speed + float64(inputDiskBytes)/diskBW)
		e.c.net.K.Schedule(dur, func() { e.mapDone(mapID, w) })
	}
	if e.job.Splits == nil || mapID >= len(e.job.Splits) {
		compute(e.job.MapInputBytes)
		return
	}
	split := e.job.Splits[mapID]
	switch e.localityRank(mapID, w) {
	case 0:
		e.result.NodeLocalMaps++
		compute(split.Bytes)
	default:
		if e.localityRank(mapID, w) == 1 {
			e.result.SiteLocalMaps++
		} else {
			e.result.RemoteMaps++
		}
		// Stream the split from the nearest replica before computing.
		src := bestSource(split.Preferred, w.Node)
		if src == nil {
			compute(split.Bytes)
			return
		}
		e.result.InputNetworkBytes += split.Bytes
		e.c.net.StartFlow(src, w.Node, split.Bytes, "input:"+e.job.Name, func() {
			if !w.alive || e.mapRunOn[mapID] != w || e.mapState[mapID] != stateRunning {
				return
			}
			compute(0)
		})
	}
}

// bestSource picks the replica closest to reader (same site first).
func bestSource(replicas []*simnet.Node, reader *simnet.Node) *simnet.Node {
	var any *simnet.Node
	for _, r := range replicas {
		if r == reader {
			continue
		}
		if r.Site == reader.Site {
			return r
		}
		if any == nil {
			any = r
		}
	}
	return any
}

func (e *execution) mapDone(mapID int, w *Worker) {
	if !w.alive || e.mapRunOn[mapID] != w || e.mapState[mapID] != stateRunning {
		return // task was requeued when the worker vanished
	}
	w.busy--
	e.mapState[mapID] = stateDone
	e.mapsDone++
	e.result.MapsExecuted++
	w.completedMaps[mapID] = true
	// Publish this map's output to every unfinished reduce.
	for _, r := range e.reduces {
		r.addSource(mapID, w, e.job.ShuffleBytesPerMapPerReduce)
	}
	e.c.pump()
}

func (e *execution) createReduces() {
	if e.job.NumReduces == 0 {
		return
	}
	e.reduces = make([]*reduceExec, e.job.NumReduces)
	for i := range e.reduces {
		r := &reduceExec{
			id:             i,
			counted:        make(map[int]bool),
			pendingSources: make(map[string]int64),
			sourceNodes:    make(map[string]*simnet.Node),
		}
		// Account every completed map.
		for _, w := range e.c.sortedWorkers() {
			for mapID := range w.completedMaps {
				r.addSource(mapID, w, e.job.ShuffleBytesPerMapPerReduce)
			}
		}
		e.reduces[i] = r
		e.reduceQueue = append(e.reduceQueue, i)
	}
}

func (r *reduceExec) addSource(mapID int, w *Worker, bytes int64) {
	if r.state == stateDone || r.computing || r.counted[mapID] {
		return
	}
	r.counted[mapID] = true
	r.pendingSources[w.ID] += bytes
	r.sourceNodes[w.ID] = w.Node
}

const fetchParallelism = 3 // Hadoop copier threads per reduce

func (e *execution) startReduce(r *reduceExec, w *Worker) {
	r.state = stateRunning
	r.worker = w
	w.busy++
	e.fetchMore(r)
}

func (e *execution) fetchMore(r *reduceExec) {
	if r.state != stateRunning || r.computing {
		return
	}
	// Launch fetches up to the parallelism bound, deterministic order.
	sources := make([]string, 0, len(r.pendingSources))
	for id := range r.pendingSources {
		sources = append(sources, id)
	}
	sort.Strings(sources)
	for _, src := range sources {
		if r.fetching >= fetchParallelism {
			return
		}
		bytes := r.pendingSources[src]
		node := r.sourceNodes[src]
		delete(r.pendingSources, src)
		if bytes == 0 || node == r.worker.Node {
			e.accountShuffle(node, r.worker.Node, bytes)
			continue // local data needs no network fetch
		}
		r.fetching++
		e.c.net.StartFlow(node, r.worker.Node, bytes, "shuffle:"+e.job.Name, func() {
			r.fetching--
			e.accountShuffle(node, r.worker.Node, bytes)
			e.fetchMore(r)
			e.maybeCompute(r)
		})
	}
	e.maybeCompute(r)
}

func (e *execution) accountShuffle(src, dst *simnet.Node, bytes int64) {
	e.result.ShuffleBytes += bytes
	if src != nil && dst != nil && src.Site != dst.Site {
		e.result.CrossSiteShuffleBytes += bytes
	}
}

// maybeCompute starts the reduce computation once every map output has been
// counted and fetched.
func (e *execution) maybeCompute(r *reduceExec) {
	if r.state != stateRunning || r.computing || r.fetching > 0 ||
		len(r.pendingSources) > 0 || e.mapsDone < e.job.NumMaps ||
		len(r.counted) < e.job.NumMaps {
		return
	}
	r.computing = true
	w := r.worker
	dur := sim.FromSeconds(e.job.ReduceCPU / w.Speed)
	e.c.net.K.Schedule(dur, func() {
		if r.state != stateRunning || r.worker != w || !w.alive {
			return
		}
		w.busy--
		r.state = stateDone
		e.reducesDone++
		e.result.ReducesExecuted++
		e.maybeFinish()
	})
}

func (e *execution) maybeFinish() {
	if e.finished {
		return
	}
	if e.mapsDone < e.job.NumMaps {
		return
	}
	if e.job.NumReduces > 0 && e.reducesDone < e.job.NumReduces {
		return
	}
	e.finished = true
	e.result.Makespan = e.c.net.K.Now() - e.start
	e.c.exec = nil
	if e.onDone != nil {
		e.onDone(e.result)
	}
}

// workerLost handles dynamic removal: requeue running tasks and invalidate
// map outputs still needed by some reduce.
func (e *execution) workerLost(w *Worker) {
	// Requeue running maps.
	for mapID, rw := range e.mapRunOn {
		if rw == w && e.mapState[mapID] == stateRunning {
			e.mapState[mapID] = statePending
			delete(e.mapRunOn, mapID)
			e.mapQueue = append(e.mapQueue, mapID)
		}
	}
	// Reset running reduces placed on the lost worker: all fetched data is
	// gone; rebuild sources from surviving map outputs.
	for _, r := range e.reduces {
		if r.state == stateRunning && r.worker == w {
			r.state = statePending
			r.worker = nil
			r.computing = false
			r.fetching = 0
			r.counted = make(map[int]bool)
			r.pendingSources = make(map[string]int64)
			r.sourceNodes = make(map[string]*simnet.Node)
			for _, sw := range e.c.sortedWorkers() {
				for mapID := range sw.completedMaps {
					r.addSource(mapID, sw, e.job.ShuffleBytesPerMapPerReduce)
				}
			}
			e.reduceQueue = append(e.reduceQueue, r.id)
		}
	}
	// Invalidate completed map outputs some unfinished consumer still needs.
	needed := func(mapID int) bool {
		if e.reduces == nil {
			return e.job.NumReduces > 0 // shuffle not started: outputs needed
		}
		for _, r := range e.reduces {
			if r.state != stateDone && !r.computing && !r.counted[mapID] {
				return true
			}
			// counted but pending fetch from this worker: bytes are in
			// pendingSources[w.ID]; those will never arrive.
			if r.state != stateDone && r.pendingSources[w.ID] > 0 {
				return true
			}
		}
		return false
	}
	var invalidated []int
	for mapID := range w.completedMaps {
		if e.mapState[mapID] == stateDone && needed(mapID) {
			invalidated = append(invalidated, mapID)
		}
	}
	sort.Ints(invalidated)
	if len(invalidated) > 0 {
		for _, r := range e.reduces {
			if r.state == stateDone || r.computing {
				continue
			}
			// Drop the dead source and uncount its maps so the re-runs
			// repopulate it.
			delete(r.pendingSources, w.ID)
			delete(r.sourceNodes, w.ID)
			for _, mapID := range invalidated {
				delete(r.counted, mapID)
			}
		}
		for _, mapID := range invalidated {
			e.mapState[mapID] = statePending
			e.mapsDone--
			delete(e.mapRunOn, mapID)
			e.mapQueue = append(e.mapQueue, mapID)
		}
	}
}
