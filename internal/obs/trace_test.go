package obs

import (
	"bytes"
	"testing"
)

// TestTraceJSONEncoding pins the hand-rolled encoder: fixed key order,
// deterministic zero-value omission, envelope fields always present.
func TestTraceJSONEncoding(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(TraceEvent{Kind: "dispatch", Tenant: "gold", Job: "J1", Cloud: "c0",
		Workers: 4, Cores: 8, Plan: "c0:4"})
	tr.Emit(TraceEvent{Cycle: 3, At: 1500000, Kind: "preempt", Tenant: "silver",
		Job: "J9", Price: 12.5})
	var buf bytes.Buffer
	tr.WriteJSONL(&buf)
	want := `{"cycle":0,"at":0,"kind":"dispatch","tenant":"gold","job":"J1","cloud":"c0","workers":4,"cores":8,"plan":"c0:4"}
{"cycle":3,"at":1500000,"kind":"preempt","tenant":"silver","job":"J9","price":12.5}
`
	if buf.String() != want {
		t.Errorf("encoding drifted:\n got: %q\nwant: %q", buf.String(), want)
	}
}

// TestTraceRingWrap: a full ring drops the oldest events and Events()
// returns the survivors oldest-first.
func TestTraceRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Emit(TraceEvent{Cycle: int64(i), Kind: "dispatch"})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(i + 2); ev.Cycle != want {
			t.Errorf("evs[%d].Cycle = %d, want %d", i, ev.Cycle, want)
		}
	}
	if tr.Len() != 6 {
		t.Errorf("Len = %d, want 6 (total emitted)", tr.Len())
	}
}

// TestTraceSinkMatchesRing: the streaming sink sees the same bytes a
// post-hoc WriteJSONL produces while the ring has not wrapped.
func TestTraceSinkMatchesRing(t *testing.T) {
	var sink bytes.Buffer
	tr := NewTracer(16)
	tr.SetSink(&sink)
	for i := 0; i < 5; i++ {
		tr.Emit(TraceEvent{Cycle: int64(i), At: int64(i) * 10, Kind: "wake", Job: "J"})
	}
	var ring bytes.Buffer
	tr.WriteJSONL(&ring)
	if !bytes.Equal(sink.Bytes(), ring.Bytes()) {
		t.Errorf("sink and ring renders differ:\nsink: %s\nring: %s", sink.Bytes(), ring.Bytes())
	}
}

// TestTracerNilSafety: a nil tracer absorbs every call.
func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Emit(TraceEvent{Kind: "dispatch"})
	tr.SetSink(&bytes.Buffer{})
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer must read empty")
	}
	var buf bytes.Buffer
	tr.WriteJSONL(&buf)
	if buf.Len() != 0 {
		t.Error("nil tracer must write nothing")
	}
}
