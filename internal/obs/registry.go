// Package obs is the federation's observability substrate: a
// dependency-free metrics registry (atomic counters, gauges, fixed-bucket
// histograms, labeled families, Prometheus text-format exposition) and a
// structured scheduler-decision tracer (trace.go). Every layer on the hot
// path — sched, capacity, core, nimbus — instruments through it, so the
// registry is built to cost ~nothing there: instruments are preallocated at
// registration, increments are single atomic ops, and every instrument
// method is nil-safe (an uninstrumented layer pays one nil check, no
// branches into locked structures).
//
// Metric names follow the `sky_<layer>_<what>[_total|_seconds|_bytes]`
// convention and must match ^sky_[a-z0-9_]+$ — registration panics
// otherwise, and cmd/metriclint enforces the same rule statically.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. All methods are safe on a
// nil receiver (no-ops reading zero), so uninstrumented code paths need no
// registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are dropped: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down, stored as float64 bits. Methods
// are nil-safe like Counter's.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(n int64) { g.Set(float64(n)) }

// Add applies a delta with a CAS loop.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Buckets are preallocated
// at registration; Observe is two atomic ops plus a linear bucket scan over
// a handful of bounds — no allocation, no lock.
type Histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	n      atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// sample is one labeled child of a family: exactly one of c/g/h is set.
type sample struct {
	labelVals []string
	c         *Counter
	g         *Gauge
	h         *Histogram
}

// family is one named metric with a fixed label schema.
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels []string
	bounds []float64 // histogram families only

	mu       sync.Mutex
	children map[string]*sample
}

const labelSep = "\xff"

func (f *family) child(labelVals []string) *sample {
	if len(labelVals) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labels), len(labelVals)))
	}
	key := strings.Join(labelVals, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s := f.children[key]; s != nil {
		return s
	}
	s := &sample{labelVals: append([]string(nil), labelVals...)}
	switch f.typ {
	case "counter":
		s.c = &Counter{}
	case "gauge":
		s.g = &Gauge{}
	case "histogram":
		s.h = &Histogram{
			bounds: f.bounds,
			counts: make([]atomic.Int64, len(f.bounds)+1),
		}
	}
	f.children[key] = s
	return s
}

// sortedChildren returns the family's samples ordered by label values.
func (f *family) sortedChildren() []*sample {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*sample, len(keys))
	for i, k := range keys {
		out[i] = f.children[k]
	}
	return out
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the child for the given label values, creating it on first
// use. Hot paths should cache the returned pointer.
func (v *CounterVec) With(labelVals ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(labelVals).c
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(labelVals).g
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(labelVals).h
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is idempotent: re-registering a name with
// the same type and label schema returns the existing instrument (so two
// layers sharing a registry can both declare the family), and panics on a
// conflicting redefinition or an invalid name.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	names      []string // sorted family names
	collectors []func()
	scrape     sync.Locker
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// ValidName reports whether name matches ^sky_[a-z0-9_]+$.
func ValidName(name string) bool {
	const prefix = "sky_"
	if !strings.HasPrefix(name, prefix) || len(name) == len(prefix) {
		return false
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help, typ string, labels []string, bounds []float64) *family {
	if !ValidName(name) {
		panic(fmt.Sprintf("obs: metric name %q does not match ^sky_[a-z0-9_]+$", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s(%d labels), was %s(%d labels)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with label %q, was %q", name, labels[i], f.labels[i]))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*sample),
	}
	r.families[name] = f
	i := sort.SearchStrings(r.names, name)
	r.names = append(r.names, "")
	copy(r.names[i+1:], r.names[i:])
	r.names[i] = name
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, "counter", nil, nil).child(nil).c
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, "counter", labels, nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, "gauge", nil, nil).child(nil).g
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, "gauge", labels, nil)}
}

// Histogram registers (or finds) an unlabeled histogram with the given
// ascending upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, "histogram", nil, bounds).child(nil).h
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, "histogram", labels, bounds)}
}

// AddCollector registers a function run at the start of every exposition
// (WriteTo, Snapshot, the HTTP handler) — the hook layers use to refresh
// gauges from live state (e.g. the capacity ledger's per-cloud cores)
// instead of writing them on every mutation.
func (r *Registry) AddCollector(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// SetScrapeLock installs a lock acquired around collectors and rendering.
// Surfaces that serve /metrics from a goroutine while the (single-threaded)
// simulation kernel runs share this lock with their kernel-stepping loop, so
// collectors never read model state mid-event.
func (r *Registry) SetScrapeLock(l sync.Locker) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.scrape = l
}

// collect runs the registered collectors and returns the sorted family list.
func (r *Registry) collect() []*family {
	r.mu.Lock()
	collectors := r.collectors
	fams := make([]*family, len(r.names))
	for i, n := range r.names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	for _, fn := range collectors {
		fn()
	}
	return fams
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// appendLabels renders {a="x",b="y"} from parallel name/value slices, with
// extra appended last (histogram le). Empty input renders nothing.
func appendLabels(b []byte, names, vals []string, extraName, extraVal string) []byte {
	if len(names) == 0 && extraName == "" {
		return b
	}
	b = append(b, '{')
	for i, n := range names {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, n...)
		b = append(b, '=', '"')
		b = append(b, escapeLabel(vals[i])...)
		b = append(b, '"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b = append(b, ',')
		}
		b = append(b, extraName...)
		b = append(b, '=', '"')
		b = append(b, extraVal...)
		b = append(b, '"')
	}
	b = append(b, '}')
	return b
}

// WriteTo renders the registry in Prometheus text exposition format
// (text/plain; version=0.0.4): families sorted by name, children by label
// values, floats in shortest-roundtrip form — the output is deterministic
// for a given registry state, so tests can golden-file it.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if l := r.scrapeLock(); l != nil {
		l.Lock()
		defer l.Unlock()
	}
	fams := r.collect()
	var buf []byte
	for _, f := range fams {
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.typ...)
		buf = append(buf, '\n')
		for _, s := range f.sortedChildren() {
			switch f.typ {
			case "counter":
				buf = append(buf, f.name...)
				buf = appendLabels(buf, f.labels, s.labelVals, "", "")
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, s.c.Value(), 10)
				buf = append(buf, '\n')
			case "gauge":
				buf = append(buf, f.name...)
				buf = appendLabels(buf, f.labels, s.labelVals, "", "")
				buf = append(buf, ' ')
				buf = append(buf, formatFloat(s.g.Value())...)
				buf = append(buf, '\n')
			case "histogram":
				cum := int64(0)
				counts := s.h.BucketCounts()
				for i, c := range counts {
					cum += c
					le := "+Inf"
					if i < len(s.h.bounds) {
						le = formatFloat(s.h.bounds[i])
					}
					buf = append(buf, f.name...)
					buf = append(buf, "_bucket"...)
					buf = appendLabels(buf, f.labels, s.labelVals, "le", le)
					buf = append(buf, ' ')
					buf = strconv.AppendInt(buf, cum, 10)
					buf = append(buf, '\n')
				}
				buf = append(buf, f.name...)
				buf = append(buf, "_sum"...)
				buf = appendLabels(buf, f.labels, s.labelVals, "", "")
				buf = append(buf, ' ')
				buf = append(buf, formatFloat(s.h.Sum())...)
				buf = append(buf, '\n')
				buf = append(buf, f.name...)
				buf = append(buf, "_count"...)
				buf = appendLabels(buf, f.labels, s.labelVals, "", "")
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, s.h.Count(), 10)
				buf = append(buf, '\n')
			}
		}
	}
	n, err := w.Write(buf)
	return int64(n), err
}

func (r *Registry) scrapeLock() sync.Locker {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scrape
}

// Handler serves the registry at /metrics in the text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}

// Snapshot returns every counter and gauge value (and each histogram's
// _count and _sum) keyed by rendered sample name — the one shared stats
// view surfaces and experiments read, so printed tables cannot drift from
// the live counters. Collectors run first, exactly as for an exposition.
func (r *Registry) Snapshot() map[string]float64 {
	if l := r.scrapeLock(); l != nil {
		l.Lock()
		defer l.Unlock()
	}
	out := make(map[string]float64)
	for _, f := range r.collect() {
		for _, s := range f.sortedChildren() {
			key := string(appendLabels([]byte(f.name), f.labels, s.labelVals, "", ""))
			switch f.typ {
			case "counter":
				out[key] = float64(s.c.Value())
			case "gauge":
				out[key] = s.g.Value()
			case "histogram":
				base := string(appendLabels(nil, f.labels, s.labelVals, "", ""))
				out[f.name+"_count"+base] = float64(s.h.Count())
				out[f.name+"_sum"+base] = s.h.Sum()
			}
		}
	}
	return out
}

// Value returns one counter or gauge sample's value (0 when absent) without
// running collectors — the cheap accessor hot tests poll.
func (r *Registry) Value(name string, labelVals ...string) float64 {
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil {
		return 0
	}
	key := strings.Join(labelVals, labelSep)
	f.mu.Lock()
	s := f.children[key]
	f.mu.Unlock()
	if s == nil {
		return 0
	}
	switch {
	case s.c != nil:
		return float64(s.c.Value())
	case s.g != nil:
		return s.g.Value()
	case s.h != nil:
		return float64(s.h.Count())
	}
	return 0
}
