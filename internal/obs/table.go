package obs

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// SnapshotTable renders a registry snapshot as an ASCII table, optionally
// filtered by name prefix: a plain prefix includes matching samples, a
// "!"-prefixed one excludes them (exclusions win, and with only exclusions
// everything else is included). This is the one shared stats view:
// experiments and skyctl print it instead of hand-recomputing numbers from
// scheduler fields, so their tables cannot drift from the live counters —
// callers exclude "!sky_sched_phase_seconds" to keep wall-clock phase sums
// out of deterministic output.
func SnapshotTable(r *Registry, title string, prefixes ...string) *metrics.Table {
	t := metrics.NewTable(title, "metric", "value")
	if r == nil {
		return t
	}
	var include, exclude []string
	for _, p := range prefixes {
		if strings.HasPrefix(p, "!") {
			exclude = append(exclude, p[1:])
		} else {
			include = append(include, p)
		}
	}
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
next:
	for k := range snap {
		for _, p := range exclude {
			if strings.HasPrefix(k, p) {
				continue next
			}
		}
		if len(include) > 0 {
			ok := false
			for _, p := range include {
				if strings.HasPrefix(k, p) {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.AddRow(k, strconv.FormatFloat(snap[k], 'g', -1, 64))
	}
	return t
}
