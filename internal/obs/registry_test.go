package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every instrument type, label
// escaping, and both histogram tails.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("sky_test_ops_total", "Operations performed.").Add(3)
	v := r.CounterVec("sky_test_labeled_total", "Labeled operations.", "cloud", "kind")
	v.With("c\"0\n\\", "x").Inc() // quote, newline, backslash all need escaping
	v.With("c1", "y").Add(2)
	r.Gauge("sky_test_level", "Current level.").Set(2.5)
	h := r.Histogram("sky_test_seconds", "Durations.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5) // +Inf bucket
	return r
}

// TestExpositionGolden pins the text exposition format byte-for-byte:
// family ordering, HELP/TYPE lines, label escaping, cumulative histogram
// buckets with the implicit +Inf, and shortest-roundtrip floats.
func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if _, err := goldenRegistry().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestExpositionDeterministic: two renders of the same registry are
// byte-identical (map iteration must never leak into the output).
func TestExpositionDeterministic(t *testing.T) {
	r := goldenRegistry()
	var a, b bytes.Buffer
	r.WriteTo(&a)
	r.WriteTo(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of one registry differ")
	}
}

// TestHistogramBuckets pins the boundary rule: a value equal to an upper
// bound lands in that bucket (le is <=), strictly above moves it up, and
// everything past the last bound lands in +Inf.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sky_test_bounds_seconds", "Boundary test.", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 5, 5.1, 100} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1, 2} // [<=1]=0.5,1  (1,2]=1.0000001,2  (2,5]=5  +Inf=5.1,100
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
	if sum := h.Sum(); sum < 114.6 || sum > 114.7 {
		t.Errorf("Sum = %v, want ~114.6", sum)
	}
}

// TestInvalidNamePanics: registration outside ^sky_[a-z0-9_]+$ must panic,
// the dynamic half of the rule cmd/metriclint enforces statically.
func TestInvalidNamePanics(t *testing.T) {
	for _, name := range []string{"ops_total", "sky_", "sky_Ops", "sky_ops-total", "sky_ops total"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("registering %q did not panic", name)
				}
			}()
			NewRegistry().Counter(name, "bad")
		}()
	}
}

// TestIdempotentRegistration: same name with the same schema returns the
// same instrument; a conflicting redefinition panics.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("sky_test_shared_total", "Shared.")
	b := r.Counter("sky_test_shared_total", "Shared.")
	a.Inc()
	if b.Value() != 1 {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("sky_test_shared_total", "Now a gauge.")
}

// TestNilSafety: every instrument method must no-op on a nil receiver, so
// uninstrumented layers carry nil pointers instead of branching.
func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.BucketCounts() != nil {
		t.Error("nil instruments must read zero")
	}
	if cv.With("x") != nil {
		t.Error("nil vec must return a nil child")
	}
}

// TestSnapshotAndValue: the snapshot map keys samples by rendered name and
// Value reads one sample without running collectors.
func TestSnapshotAndValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("sky_test_a_total", "A.").Add(7)
	r.CounterVec("sky_test_b_total", "B.", "cloud").With("c0").Add(2)
	collected := 0
	r.AddCollector(func() { collected++ })
	snap := r.Snapshot()
	if snap["sky_test_a_total"] != 7 {
		t.Errorf(`snapshot["sky_test_a_total"] = %v, want 7`, snap["sky_test_a_total"])
	}
	if snap[`sky_test_b_total{cloud="c0"}`] != 2 {
		t.Errorf("labeled snapshot key missing: %v", snap)
	}
	if collected != 1 {
		t.Errorf("collectors ran %d times during snapshot, want 1", collected)
	}
	if got := r.Value("sky_test_b_total", "c0"); got != 2 {
		t.Errorf("Value = %v, want 2", got)
	}
	if collected != 1 {
		t.Error("Value must not run collectors")
	}
}
