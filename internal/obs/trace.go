package obs

import (
	"io"
	"net/http"
	"strconv"
	"sync"
)

// TraceEvent is one scheduler decision. Every field is derived from
// deterministic simulation state — cycle number, virtual kernel timestamp,
// identities, plan membership — never from wall clock, so two identical
// seeded runs emit byte-identical traces.
type TraceEvent struct {
	Cycle   int64   // scheduler cycle number the decision happened in
	At      int64   // virtual kernel time, microseconds
	Kind    string  // dispatch, dispatch_backfill, reserve, block, wake, preempt, forced_preempt, consolidate, relocate, ...
	Tenant  string  // owning tenant, if any
	Job     string  // job ID, if any
	Cloud   string  // primary / target cloud
	From    string  // relocation source cloud
	To      string  // relocation target cloud
	Workers int     // workers involved (dispatch plan size, relocation move size)
	Cores   int     // cores involved
	Price   float64 // preemption: victim eviction price
	Start   int64   // reserve: reserved start instant, virtual microseconds
	Plan    string  // rendered plan members, e.g. "cloud-a:4+cloud-b:2"
}

// appendJSON renders the event as a single JSON object with fields in a
// fixed order, omitting zero values deterministically. Hand-rolled so the
// byte stream never depends on map iteration or encoder internals.
func (ev *TraceEvent) appendJSON(b []byte) []byte {
	b = append(b, `{"cycle":`...)
	b = strconv.AppendInt(b, ev.Cycle, 10)
	b = append(b, `,"at":`...)
	b = strconv.AppendInt(b, ev.At, 10)
	b = append(b, `,"kind":`...)
	b = strconv.AppendQuote(b, ev.Kind)
	if ev.Tenant != "" {
		b = append(b, `,"tenant":`...)
		b = strconv.AppendQuote(b, ev.Tenant)
	}
	if ev.Job != "" {
		b = append(b, `,"job":`...)
		b = strconv.AppendQuote(b, ev.Job)
	}
	if ev.Cloud != "" {
		b = append(b, `,"cloud":`...)
		b = strconv.AppendQuote(b, ev.Cloud)
	}
	if ev.From != "" {
		b = append(b, `,"from":`...)
		b = strconv.AppendQuote(b, ev.From)
	}
	if ev.To != "" {
		b = append(b, `,"to":`...)
		b = strconv.AppendQuote(b, ev.To)
	}
	if ev.Workers != 0 {
		b = append(b, `,"workers":`...)
		b = strconv.AppendInt(b, int64(ev.Workers), 10)
	}
	if ev.Cores != 0 {
		b = append(b, `,"cores":`...)
		b = strconv.AppendInt(b, int64(ev.Cores), 10)
	}
	if ev.Price != 0 {
		b = append(b, `,"price":`...)
		b = strconv.AppendFloat(b, ev.Price, 'g', -1, 64)
	}
	if ev.Start != 0 {
		b = append(b, `,"start":`...)
		b = strconv.AppendInt(b, ev.Start, 10)
	}
	if ev.Plan != "" {
		b = append(b, `,"plan":`...)
		b = strconv.AppendQuote(b, ev.Plan)
	}
	b = append(b, '}', '\n')
	return b
}

// Tracer records TraceEvents into a bounded ring and, when a sink is set,
// streams each event as one JSONL line. All methods are safe on a nil
// receiver, so untraced schedulers pay one nil check per decision point.
type Tracer struct {
	mu   sync.Mutex
	ring []TraceEvent
	next int
	full bool
	sink io.Writer
	buf  []byte
	n    int64
}

// NewTracer returns a tracer retaining the last `capacity` events
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]TraceEvent, capacity)}
}

// SetSink streams every subsequent event to w as JSONL (nil disables).
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = w
	t.mu.Unlock()
}

// Emit records one event.
func (t *Tracer) Emit(ev TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next, t.full = 0, true
	}
	t.n++
	if t.sink != nil {
		t.buf = ev.appendJSON(t.buf[:0])
		t.sink.Write(t.buf)
	}
	t.mu.Unlock()
}

// Len returns the total number of events emitted (including ones the ring
// has already dropped).
func (t *Tracer) Len() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]TraceEvent(nil), t.ring[:t.next]...)
	}
	out := make([]TraceEvent, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// WriteJSONL renders the retained events, oldest first, one JSON object per
// line.
func (t *Tracer) WriteJSONL(w io.Writer) (int64, error) {
	var b []byte
	for _, ev := range t.Events() {
		ev := ev
		b = ev.appendJSON(b)
	}
	n, err := w.Write(b)
	return int64(n), err
}

// Handler serves the retained trace as JSONL, for /debug/trace.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		t.WriteJSONL(w)
	})
}
