package emr

import (
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/sim"
	"repro/internal/simnet"
)

const MB = 1 << 20

// fakeProvider backs the service with a real mapreduce cluster on a
// synthetic two-cloud network, with scripted prices and speeds.
type fakeProvider struct {
	k       *sim.Kernel
	net     *simnet.Network
	cluster *mapreduce.Cluster
	sites   map[string]*simnet.Site
	price   map[string]float64
	speed   map[string]float64
	free    map[string]int
	slots   int
	seq     int
	grows   []string
}

func newFakeProvider(initial int) *fakeProvider {
	k := sim.NewKernel(1)
	net := simnet.New(k)
	p := &fakeProvider{
		k: k, net: net,
		cluster: mapreduce.NewCluster(net),
		sites:   map[string]*simnet.Site{},
		price:   map[string]float64{"cheap": 0.04, "fast": 0.20},
		speed:   map[string]float64{"cheap": 1.0, "fast": 2.0},
		free:    map[string]int{"cheap": 32, "fast": 32},
		slots:   2,
	}
	for name := range p.price {
		p.sites[name] = net.AddSite(name, 125*MB, 125*MB)
	}
	for i := 0; i < initial; i++ {
		p.addWorker("cheap")
	}
	return p
}

func (p *fakeProvider) addWorker(cloud string) {
	p.seq++
	id := cloud + "-w" + string(rune('a'+p.seq%26)) + string(rune('0'+p.seq/26))
	node := p.sites[cloud].AddNode(id, 125*MB)
	p.cluster.AddWorker(id, node, p.speed[cloud], p.slots)
	p.free[cloud] -= p.slots
}

func (p *fakeProvider) Clouds() []CloudInfo {
	var out []CloudInfo
	for name := range p.price {
		out = append(out, CloudInfo{Name: name, Price: p.price[name],
			Speed: p.speed[name], FreeCores: p.free[name]})
	}
	return out
}

func (p *fakeProvider) Grow(cloud string, n int, onDone func(error)) {
	p.grows = append(p.grows, cloud)
	// Provisioning takes 30s (propagation + boot).
	p.k.Schedule(30*sim.Second, func() {
		for i := 0; i < n; i++ {
			p.addWorker(cloud)
		}
		onDone(nil)
	})
}

func (p *fakeProvider) Shrink(cloud string, n int) int {
	removed := 0
	for _, id := range p.cluster.Workers() {
		if removed >= n {
			break
		}
		if len(id) >= len(cloud) && id[:len(cloud)] == cloud {
			p.cluster.RemoveWorker(id)
			p.free[cloud] += p.slots
			removed++
		}
	}
	return removed
}

func (p *fakeProvider) Cluster() *mapreduce.Cluster { return p.cluster }
func (p *fakeProvider) Kernel() *sim.Kernel         { return p.k }
func (p *fakeProvider) WorkerCapacity() float64 {
	var total float64
	for _, id := range p.cluster.Workers() {
		for cloud, sp := range p.speed {
			if len(id) >= len(cloud) && id[:len(cloud)] == cloud {
				total += float64(p.slots) * sp
			}
		}
	}
	return total
}

// deadlineJob: 128 maps x 20s = 2560 slot-seconds. Two workers (4 slots)
// would take ~640s.
func deadlineJob() mapreduce.Job {
	return mapreduce.Job{Name: "dl", NumMaps: 128, NumReduces: 1,
		MapCPU: 20, ReduceCPU: 1, ShuffleBytesPerMapPerReduce: 1024}
}

func TestStaticClusterMissesTightDeadline(t *testing.T) {
	p := newFakeProvider(2)
	var res mapreduce.Result
	if err := p.cluster.Run(deadlineJob(), func(r mapreduce.Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	p.k.Run()
	if res.Makespan < 300*sim.Second {
		t.Fatalf("static makespan %v suspiciously fast", res.Makespan)
	}
}

func TestElasticMeetsDeadline(t *testing.T) {
	p := newFakeProvider(2)
	svc := New(p, SelectCheapest)
	deadline := 300 * sim.Second
	var rep Report
	done := false
	if err := svc.Submit(JobSpec{Job: deadlineJob(), Deadline: deadline, SlotsPerWorker: 2},
		func(r Report) { rep = r; done = true }); err != nil {
		t.Fatal(err)
	}
	p.k.Run()
	if !done {
		t.Fatal("job never finished")
	}
	if !rep.MetDeadline {
		t.Fatalf("elastic service missed the deadline: finished %v > %v (added %d workers)",
			rep.FinishedAt, deadline, rep.WorkersAdded)
	}
	if rep.ScaleUps == 0 || rep.WorkersAdded == 0 {
		t.Fatalf("no scaling happened: %+v", rep)
	}
}

func TestCheapestPolicyPicksCheapCloud(t *testing.T) {
	p := newFakeProvider(2)
	svc := New(p, SelectCheapest)
	if err := svc.Submit(JobSpec{Job: deadlineJob(), Deadline: 300 * sim.Second},
		nil); err != nil {
		t.Fatal(err)
	}
	p.k.Run()
	if len(p.grows) == 0 {
		t.Fatal("no growth")
	}
	for _, c := range p.grows {
		if c != "cheap" {
			t.Fatalf("cheapest policy grew on %q", c)
		}
	}
}

func TestFastestPolicyPicksFastCloud(t *testing.T) {
	p := newFakeProvider(2)
	svc := New(p, SelectFastest)
	if err := svc.Submit(JobSpec{Job: deadlineJob(), Deadline: 300 * sim.Second},
		nil); err != nil {
		t.Fatal(err)
	}
	p.k.Run()
	if len(p.grows) == 0 {
		t.Fatal("no growth")
	}
	for _, c := range p.grows {
		if c != "fast" {
			t.Fatalf("fastest policy grew on %q", c)
		}
	}
}

func TestLooseDeadlineNoScaling(t *testing.T) {
	p := newFakeProvider(8)
	svc := New(p, SelectCheapest)
	var rep Report
	// 128 maps x 20s over 16 slots = 160s; deadline 20 min is loose.
	if err := svc.Submit(JobSpec{Job: deadlineJob(), Deadline: 20 * sim.Minute},
		func(r Report) { rep = r }); err != nil {
		t.Fatal(err)
	}
	p.k.Run()
	if !rep.MetDeadline {
		t.Fatal("loose deadline missed")
	}
	if rep.WorkersAdded != 0 {
		t.Fatalf("scaled %d workers with a loose deadline", rep.WorkersAdded)
	}
}

func TestMaxExtraWorkersBound(t *testing.T) {
	p := newFakeProvider(1)
	svc := New(p, SelectCheapest)
	var rep Report
	if err := svc.Submit(JobSpec{Job: deadlineJob(), Deadline: 200 * sim.Second,
		MaxExtraWorkers: 3}, func(r Report) { rep = r }); err != nil {
		t.Fatal(err)
	}
	p.k.Run()
	if rep.WorkersAdded > 3 {
		t.Fatalf("bound violated: added %d", rep.WorkersAdded)
	}
}

func TestReleaseExtrasPrefersExpensive(t *testing.T) {
	p := newFakeProvider(2)
	p.addWorker("fast")
	p.addWorker("fast")
	svc := New(p, SelectCheapest)
	released := svc.ReleaseExtras(2)
	if released != 2 {
		t.Fatalf("released %d", released)
	}
	for _, id := range p.cluster.Workers() {
		if id[:4] == "fast" {
			t.Fatalf("expensive worker %s kept while cheap ones exist", id)
		}
	}
}

func TestSubmitErrorPropagates(t *testing.T) {
	p := newFakeProvider(1)
	svc := New(p, SelectCheapest)
	if err := svc.Submit(JobSpec{Job: mapreduce.Job{Name: "bad"}}, nil); err == nil {
		t.Fatal("invalid job must error")
	}
}

func TestPolicyString(t *testing.T) {
	if SelectCheapest.String() != "cheapest" || SelectFastest.String() != "fastest" {
		t.Fatal("policy names wrong")
	}
}
