// Package emr implements §IV's Elastic MapReduce service over federated
// clouds: jobs carry deadlines; the service monitors progress, predicts the
// completion time, and when the prediction slips past the deadline it
// provisions additional workers on a cloud chosen by a resource-selection
// policy (cheapest or fastest), shrinking back after the job completes.
package emr

import (
	"math"
	"sort"

	"repro/internal/mapreduce"
	"repro/internal/sim"
)

// CloudInfo is what resource selection sees about one member cloud.
type CloudInfo struct {
	Name      string
	Price     float64 // $/core-hour (current signal, spot or on-demand)
	Speed     float64 // relative CPU speed of its hosts
	FreeCores int
}

// Provider is the provisioning backend (implemented by core.VirtualCluster
// via core.EMRAdapter).
type Provider interface {
	Clouds() []CloudInfo
	// Grow adds n workers on the named cloud.
	Grow(cloud string, n int, onDone func(error))
	// Shrink removes up to n workers from the named cloud, returning how
	// many were removed.
	Shrink(cloud string, n int) int
	// Cluster is the execution framework the workers join.
	Cluster() *mapreduce.Cluster
	// Kernel exposes the simulation clock.
	Kernel() *sim.Kernel
	// WorkerCapacity returns the cluster's aggregate slot-speed product
	// (sum over workers of Slots * Speed).
	WorkerCapacity() float64
}

// SelectionPolicy picks where extra workers come from.
type SelectionPolicy int

// Resource-selection policies (§IV: "policies for resource selection").
const (
	// SelectCheapest minimises $/core-hour.
	SelectCheapest SelectionPolicy = iota
	// SelectFastest maximises host speed.
	SelectFastest
)

func (p SelectionPolicy) String() string {
	if p == SelectFastest {
		return "fastest"
	}
	return "cheapest"
}

// JobSpec is a deadline job.
type JobSpec struct {
	Job mapreduce.Job
	// Deadline is absolute virtual time.
	Deadline sim.Time
	// MaxExtraWorkers bounds elastic growth (0 = unbounded).
	MaxExtraWorkers int
	// SlotsPerWorker mirrors the cluster's worker slot count, used by the
	// growth computation. Zero means 2.
	SlotsPerWorker int
}

// Report summarises one job run.
type Report struct {
	Job          string
	Result       mapreduce.Result
	Deadline     sim.Time
	FinishedAt   sim.Time
	MetDeadline  bool
	ScaleUps     int
	WorkersAdded int
	Policy       SelectionPolicy
	// Err is set when a gated job failed to start (gate-admitted jobs
	// cannot report errors synchronously).
	Err error
}

// Gate arbitrates when a job may start. Implemented by the federation
// scheduler (core.Federation.EMRGate): jobs admitted through a gate queue
// under the tenant's fair share instead of launching directly on their
// cluster. run is invoked when the job may start and must call release
// exactly once when the job finishes (with the start error, or nil).
type Gate interface {
	Admit(tenant, name string, cores int, estimate sim.Time, run func(release func(error)))
}

// Service is the elastic MapReduce front end.
type Service struct {
	Prov   Provider
	Policy SelectionPolicy
	// CheckInterval is the progress-monitoring period. Default 30 s.
	CheckInterval sim.Time
	// Margin is slack subtracted from the deadline when deciding to scale
	// (provisioning itself takes time). Default 90 s.
	Margin sim.Time
	// Gate, when set, routes jobs through the federation scheduler instead
	// of launching them directly; Tenant names whose share they charge.
	Gate   Gate
	Tenant string

	// Gated jobs are serialised: the cluster runs one job at a time, so an
	// admitted job whose predecessor is still running waits its turn here
	// instead of failing Cluster.Run.
	gateBusy  bool
	gateQueue []func()
}

// runGated executes start now if no gated job is in flight, else queues it.
func (s *Service) runGated(start func()) {
	if s.gateBusy {
		s.gateQueue = append(s.gateQueue, start)
		return
	}
	s.gateBusy = true
	start()
}

// gateDone hands the slot to the next queued gated job.
func (s *Service) gateDone() {
	if len(s.gateQueue) == 0 {
		s.gateBusy = false
		return
	}
	next := s.gateQueue[0]
	s.gateQueue = s.gateQueue[1:]
	next()
}

// New returns a service with default tuning.
func New(p Provider, policy SelectionPolicy) *Service {
	return &Service{Prov: p, Policy: policy, CheckInterval: 30 * sim.Second, Margin: 90 * sim.Second}
}

// Submit runs the job, scaling the cluster to chase the deadline. With a
// Gate set, the job flows through the federation scheduler first: it queues
// under the tenant's fair share and starts when admitted.
func (s *Service) Submit(spec JobSpec, onDone func(Report)) error {
	if spec.SlotsPerWorker <= 0 {
		spec.SlotsPerWorker = 2
	}
	if s.Gate == nil {
		return s.start(spec, onDone, func(error) {})
	}
	cores := len(s.Prov.Cluster().Workers()) * spec.SlotsPerWorker
	capacity := s.Prov.WorkerCapacity()
	if capacity <= 0 {
		capacity = 1
	}
	job := spec.Job
	est := sim.FromSeconds(job.SerialWork() / capacity)
	s.Gate.Admit(s.Tenant, job.Name, cores, est, func(release func(error)) {
		s.runGated(func() {
			done := func(err error) {
				s.gateDone()
				release(err)
			}
			if err := s.start(spec, onDone, done); err != nil {
				done(err)
				if onDone != nil {
					onDone(Report{Job: job.Name, Deadline: spec.Deadline, Policy: s.Policy, Err: err})
				}
			}
		})
	})
	return nil
}

// start launches the job immediately; release is invoked at completion
// (the gate's hand-back).
func (s *Service) start(spec JobSpec, onDone func(Report), release func(error)) error {
	k := s.Prov.Kernel()
	rep := Report{Job: spec.Job.Name, Deadline: spec.Deadline, Policy: s.Policy}
	finished := false
	err := s.Prov.Cluster().Run(spec.Job, func(r mapreduce.Result) {
		finished = true
		rep.Result = r
		rep.FinishedAt = k.Now()
		rep.MetDeadline = k.Now() <= spec.Deadline
		release(nil)
		if onDone != nil {
			onDone(rep)
		}
	})
	if err != nil {
		return err
	}
	growing := false
	var cancel func()
	cancel = k.Ticker(s.CheckInterval, func() {
		if finished {
			cancel()
			return
		}
		if growing {
			return
		}
		eta := s.predictETA(spec)
		if eta <= spec.Deadline-s.Margin {
			return
		}
		need := s.workersNeeded(spec, eta)
		if spec.MaxExtraWorkers > 0 && rep.WorkersAdded+need > spec.MaxExtraWorkers {
			need = spec.MaxExtraWorkers - rep.WorkersAdded
		}
		if need <= 0 {
			return
		}
		cloud, grant := s.selectCloud(need)
		if grant <= 0 {
			return
		}
		growing = true
		s.Prov.Grow(cloud, grant, func(err error) {
			growing = false
			if err == nil {
				rep.ScaleUps++
				rep.WorkersAdded += grant
			}
		})
	})
	return nil
}

// predictETA estimates job completion from current progress and capacity.
func (s *Service) predictETA(spec JobSpec) sim.Time {
	k := s.Prov.Kernel()
	mapsDone, mapsTotal, reducesDone, reducesTotal := s.Prov.Cluster().Progress()
	capacity := s.Prov.WorkerCapacity()
	if capacity <= 0 {
		return sim.Time(math.MaxInt64 / 2)
	}
	job := spec.Job
	mapWork := float64(mapsTotal-mapsDone) * job.MapTaskCost()
	reduceWork := float64(reducesTotal-reducesDone) * job.ReduceCPU
	// Shuffle adds a latency-ish tail we approximate with its serialised
	// volume over a conservative 10 MB/s effective per-reduce rate.
	shuffle := float64(job.NumMaps) * float64(job.ShuffleBytesPerMapPerReduce) / (10 << 20)
	eta := (mapWork + reduceWork) / capacity
	return k.Now() + sim.FromSeconds(eta+shuffle)
}

// workersNeeded sizes the growth so the remaining work fits before the
// deadline.
func (s *Service) workersNeeded(spec JobSpec, eta sim.Time) int {
	k := s.Prov.Kernel()
	timeLeft := (spec.Deadline - s.Margin - k.Now()).Seconds()
	if timeLeft <= 0 {
		timeLeft = s.CheckInterval.Seconds() // already late: grow aggressively
	}
	capacity := s.Prov.WorkerCapacity()
	workNeeded := (eta - k.Now()).Seconds() * capacity // slot-speed-seconds
	requiredCapacity := workNeeded / timeLeft
	deficit := requiredCapacity - capacity
	if deficit <= 0 {
		return 0
	}
	return int(math.Ceil(deficit / float64(spec.SlotsPerWorker)))
}

// selectCloud applies the resource-selection policy, returning the chosen
// cloud and how many workers it can actually take.
func (s *Service) selectCloud(want int) (string, int) {
	clouds := s.Prov.Clouds()
	sort.Slice(clouds, func(i, j int) bool {
		a, b := clouds[i], clouds[j]
		switch s.Policy {
		case SelectFastest:
			if a.Speed != b.Speed {
				return a.Speed > b.Speed
			}
		default:
			if a.Price != b.Price {
				return a.Price < b.Price
			}
		}
		return a.Name < b.Name
	})
	for _, c := range clouds {
		if c.FreeCores <= 0 {
			continue
		}
		grant := want
		if c.FreeCores < grant {
			grant = c.FreeCores
		}
		return c.Name, grant
	}
	return "", 0
}

// ReleaseExtras shrinks the cluster by n workers after job completion,
// preferring the most expensive cloud first.
func (s *Service) ReleaseExtras(n int) int {
	clouds := s.Prov.Clouds()
	sort.Slice(clouds, func(i, j int) bool {
		if clouds[i].Price != clouds[j].Price {
			return clouds[i].Price > clouds[j].Price
		}
		return clouds[i].Name < clouds[j].Name
	})
	released := 0
	for _, c := range clouds {
		if released >= n {
			break
		}
		released += s.Prov.Shrink(c.Name, n-released)
	}
	return released
}
