package secure

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

const MB = 1 << 20

func testbed() (*sim.Kernel, *simnet.Network, *simnet.Node, *simnet.Node) {
	k := sim.NewKernel(1)
	net := simnet.New(k)
	a := net.AddSite("alpha", 125*MB, 125*MB)
	b := net.AddSite("beta", 125*MB, 125*MB)
	net.SetSiteLatency("alpha", "beta", 50*sim.Millisecond)
	return k, net, a.AddNode("ha", 1<<30), b.AddNode("hb", 1<<30)
}

func TestIssueVerifyRevoke(t *testing.T) {
	auth := NewAuthority(1)
	c := auth.Issue("alpha")
	if !auth.Verify(c) {
		t.Fatal("fresh credential rejected")
	}
	forged := c
	forged.Token ^= 0xdead
	if auth.Verify(forged) {
		t.Fatal("forged token accepted")
	}
	wrongCloud := c
	wrongCloud.Cloud = "mallory"
	if auth.Verify(wrongCloud) {
		t.Fatal("credential accepted for wrong cloud")
	}
	auth.Revoke("alpha")
	if auth.Verify(c) {
		t.Fatal("revoked credential accepted")
	}
}

func TestReissueInvalidatesOld(t *testing.T) {
	auth := NewAuthority(1)
	old := auth.Issue("alpha")
	niu := auth.Issue("alpha")
	if auth.Verify(old) {
		t.Fatal("stale credential accepted after re-issue")
	}
	if !auth.Verify(niu) {
		t.Fatal("new credential rejected")
	}
}

func TestEstablishFullHandshake(t *testing.T) {
	k, net, ha, hb := testbed()
	auth := NewAuthority(1)
	ca, cb := auth.Issue("alpha"), auth.Issue("beta")
	br := NewBroker(net, auth, Config{})
	var ch *Channel
	br.Establish(ha, hb, ca, cb, func(c *Channel, err error) {
		if err != nil {
			t.Fatal(err)
		}
		ch = c
	})
	k.Run()
	if ch == nil || ch.Resumed {
		t.Fatalf("expected full handshake, got %+v", ch)
	}
	// 2 x 50ms hellos + 40ms key setup ≈ 140ms.
	if e := ch.EstablishedAt.Seconds(); e < 0.13 || e > 0.20 {
		t.Fatalf("handshake latency %.3fs out of range", e)
	}
	if br.Handshakes != 1 || br.Resumptions != 0 {
		t.Fatalf("stats %+v", br)
	}
}

func TestResumptionIsCheaper(t *testing.T) {
	k, net, ha, hb := testbed()
	auth := NewAuthority(1)
	ca, cb := auth.Issue("alpha"), auth.Issue("beta")
	br := NewBroker(net, auth, Config{})
	var first, second sim.Time
	br.Establish(ha, hb, ca, cb, func(c *Channel, err error) {
		first = k.Now()
		br.Establish(ha, hb, ca, cb, func(c2 *Channel, err error) {
			if err != nil {
				t.Fatal(err)
			}
			if !c2.Resumed {
				t.Fatal("second establishment should resume")
			}
			second = k.Now() - first
		})
	})
	k.Run()
	if second >= first {
		t.Fatalf("resumption (%v) not cheaper than full handshake (%v)", second, first)
	}
	if br.Resumptions != 1 {
		t.Fatalf("resumptions %d", br.Resumptions)
	}
}

func TestEstablishRejectsRevoked(t *testing.T) {
	k, net, ha, hb := testbed()
	auth := NewAuthority(1)
	ca, cb := auth.Issue("alpha"), auth.Issue("beta")
	auth.Revoke("beta")
	br := NewBroker(net, auth, Config{})
	var err error
	br.Establish(ha, hb, ca, cb, func(_ *Channel, e error) { err = e })
	k.Run()
	if err == nil {
		t.Fatal("revoked destination accepted")
	}
	if br.Rejections != 1 {
		t.Fatalf("rejections %d", br.Rejections)
	}
}

func TestInvalidateDropsCachedSessions(t *testing.T) {
	k, net, ha, hb := testbed()
	auth := NewAuthority(1)
	ca, cb := auth.Issue("alpha"), auth.Issue("beta")
	br := NewBroker(net, auth, Config{})
	br.Establish(ha, hb, ca, cb, func(*Channel, error) {})
	k.Run()
	br.Invalidate("beta")
	// Re-issue beta so verification passes, but the session must not resume.
	cb2 := auth.Issue("beta")
	var ch *Channel
	br.Establish(ha, hb, ca, cb2, func(c *Channel, err error) { ch = c })
	k.Run()
	if ch == nil || ch.Resumed {
		t.Fatal("invalidated session was resumed")
	}
	if br.Handshakes != 2 {
		t.Fatalf("handshakes %d", br.Handshakes)
	}
}
