// Package secure implements §IV's inter-cloud migration security: "the
// necessary authentication and ... a secure connection between hypervisors
// to allow live migration without intrusion in the destination cloud."
//
// A federation-wide Authority issues credentials to member clouds;
// hypervisors establish mutually authenticated channels (certificate
// exchange + key agreement) before any VM state crosses a cloud boundary.
// Channels between the same cloud pair are cached and resumed cheaply,
// mirroring TLS session resumption. Revoking a cloud's credential
// immediately blocks it as a migration destination.
package secure

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// Credential is a signed membership assertion for one cloud.
type Credential struct {
	Cloud  string
	Serial uint64
	// Token stands in for the authority's signature over (Cloud, Serial);
	// forgery is modelled as a token mismatch.
	Token uint64
}

// Authority is the federation's certificate authority.
type Authority struct {
	rng     *rand.Rand
	issued  map[string]Credential
	revoked map[uint64]bool
	serial  uint64
}

// NewAuthority creates an authority with a deterministic signing source.
func NewAuthority(seed int64) *Authority {
	return &Authority{
		rng:     rand.New(rand.NewSource(seed)),
		issued:  make(map[string]Credential),
		revoked: make(map[uint64]bool),
	}
}

// Issue creates (or re-issues) a credential for a cloud.
func (a *Authority) Issue(cloud string) Credential {
	a.serial++
	c := Credential{Cloud: cloud, Serial: a.serial, Token: a.rng.Uint64() | 1}
	a.issued[cloud] = c
	return c
}

// Revoke invalidates a cloud's current credential.
func (a *Authority) Revoke(cloud string) {
	if c, ok := a.issued[cloud]; ok {
		a.revoked[c.Serial] = true
		delete(a.issued, cloud)
	}
}

// Verify checks that a credential was issued by this authority, matches the
// claimed cloud, and has not been revoked.
func (a *Authority) Verify(c Credential) bool {
	if a.revoked[c.Serial] {
		return false
	}
	cur, ok := a.issued[c.Cloud]
	return ok && cur.Serial == c.Serial && cur.Token == c.Token
}

// Channel is an established secure connection between two hypervisor
// endpoints (identified by their clouds).
type Channel struct {
	CloudA, CloudB string
	EstablishedAt  sim.Time
	Resumed        bool
}

// Config tunes handshake costs.
type Config struct {
	// KeySetupDelay is the asymmetric-crypto cost per side. Zero = 40 ms.
	KeySetupDelay sim.Time
	// ResumeDelay is the session-resumption cost. Zero = 2 ms.
	ResumeDelay sim.Time
	// HelloBytes is the size of each handshake message. Zero = 4 KiB.
	HelloBytes int64
}

func (c Config) withDefaults() Config {
	if c.KeySetupDelay == 0 {
		c.KeySetupDelay = 40 * sim.Millisecond
	}
	if c.ResumeDelay == 0 {
		c.ResumeDelay = 2 * sim.Millisecond
	}
	if c.HelloBytes == 0 {
		c.HelloBytes = 4096
	}
	return c
}

// Broker establishes and caches channels between cloud pairs.
type Broker struct {
	Auth *Authority
	Cfg  Config

	net   *simnet.Network
	cache map[[2]string]*Channel

	// Stats.
	Handshakes  int
	Resumptions int
	Rejections  int
}

// NewBroker builds a broker over the network with the given authority.
func NewBroker(net *simnet.Network, auth *Authority, cfg Config) *Broker {
	return &Broker{Auth: auth, Cfg: cfg.withDefaults(), net: net,
		cache: make(map[[2]string]*Channel)}
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Establish sets up (or resumes) a mutually authenticated channel between
// hypervisors srcNode (of srcCred's cloud) and dstNode (of dstCred's
// cloud). onDone receives the channel or an authentication error.
//
// Full handshake: hello+credential each way, verification, then key setup
// on both sides (concurrent). Resumption: one round trip plus ResumeDelay.
func (b *Broker) Establish(srcNode, dstNode *simnet.Node, srcCred, dstCred Credential,
	onDone func(*Channel, error)) {
	k := b.net.K
	fail := func(format string, args ...any) {
		b.Rejections++
		err := fmt.Errorf(format, args...)
		k.Schedule(0, func() { onDone(nil, err) })
	}
	if !b.Auth.Verify(srcCred) {
		fail("secure: source cloud %q credential rejected", srcCred.Cloud)
		return
	}
	if !b.Auth.Verify(dstCred) {
		fail("secure: destination cloud %q credential rejected", dstCred.Cloud)
		return
	}
	key := pairKey(srcCred.Cloud, dstCred.Cloud)
	if ch, ok := b.cache[key]; ok {
		// Session resumption: one RTT + symmetric rekey.
		b.net.SendMessage(srcNode, dstNode, b.Cfg.HelloBytes/4, func() {
			k.Schedule(b.Cfg.ResumeDelay, func() {
				b.Resumptions++
				resumed := &Channel{CloudA: ch.CloudA, CloudB: ch.CloudB,
					EstablishedAt: k.Now(), Resumed: true}
				b.cache[key] = resumed
				onDone(resumed, nil)
			})
		})
		return
	}
	// Full handshake: src hello -> dst, dst hello -> src, key setup.
	b.net.SendMessage(srcNode, dstNode, b.Cfg.HelloBytes, func() {
		b.net.SendMessage(dstNode, srcNode, b.Cfg.HelloBytes, func() {
			k.Schedule(b.Cfg.KeySetupDelay, func() {
				b.Handshakes++
				ch := &Channel{CloudA: key[0], CloudB: key[1], EstablishedAt: k.Now()}
				b.cache[key] = ch
				onDone(ch, nil)
			})
		})
	})
}

// Invalidate drops any cached channel touching the named cloud (called on
// revocation so a banned cloud cannot ride an old session).
func (b *Broker) Invalidate(cloud string) {
	for key := range b.cache {
		if key[0] == cloud || key[1] == cloud {
			delete(b.cache, key)
		}
	}
}
