package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/nimbus"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/vm"
)

// runSched is the `skyctl sched` subcommand: build a federation, stand up
// the federation-wide job scheduler, flood it with per-tenant job streams,
// and report fair-share convergence, placement, and scheduler counters.
func runSched(args []string) {
	fs := flag.NewFlagSet("skyctl sched", flag.ExitOnError)
	var (
		seed      = fs.Int64("seed", 42, "simulation seed")
		nClouds   = fs.Int("clouds", 2, "number of clouds in the federation")
		hosts     = fs.Int("hosts", 4, "hosts per cloud (8 cores each)")
		tenants   = fs.String("tenants", "gold=3,silver=1", "tenant=weight list")
		jobs      = fs.Int("jobs", 40, "jobs submitted per tenant")
		workers   = fs.Int("workers", 4, "worker VMs per job")
		cores     = fs.Int("cores", 2, "cores per worker")
		maps      = fs.Int("maps", 32, "map tasks per job")
		inputSite = fs.String("input-site", "", "cloud holding job input (locality-aware placement)")
		inputMB   = fs.Int64("input-mb", 512, "input megabytes per job (with -input-site)")
		random    = fs.Bool("random", false, "random placement baseline instead of locality-aware")
		spot      = fs.Bool("spot", false, "spot workers with scheduler-driven replacement")
		spikeAt   = fs.Duration("spike-at", time.Minute, "spot price spike time (with -spot)")
		until     = fs.Duration("until", 15*time.Minute, "measurement horizon (virtual time)")
		wanMB     = fs.Int("wan-mb", 60, "inter-cloud link bandwidth, MB/s")
		scoreWork = fs.Int("score-workers", 0, "parallel scoring pool size (0/1 sequential, -1 = GOMAXPROCS); decisions identical at any setting")

		metricsAddr = fs.String("metrics-addr", "", "serve /metrics and /debug/trace on this address while the run steps")
		traceOut    = fs.String("trace-out", "", "append scheduler decision trace JSONL to this file")
		cpuProf     = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf     = fs.String("memprofile", "", "write a heap profile (taken at exit) to this file")
	)
	fs.Parse(args)
	stop := startProfiles(*cpuProf, *memProf)
	defer stop()

	weights, err := parseTenants(*tenants)
	if err != nil {
		log.Fatal(err)
	}
	f := core.NewFederation(*seed)
	names := make([]string, *nClouds)
	for i := range names {
		names[i] = fmt.Sprintf("cloud%d", i)
		c := f.AddCloud(nimbus.Config{
			Name: names[i], Hosts: *hosts,
			HostSpec: nimbus.HostSpec{Cores: 8, MemPages: 64 * 16384, Speed: 1.0},
			NICBW:    125 << 20,
			WANUp:    float64(*wanMB << 20), WANDown: float64(*wanMB << 20),
			PricePerCoreHour: 0.08 + 0.04*float64(i),
		})
		m := vm.NewContentModel(*seed+int64(i)*17, "debian", 0.1, 0.5, 2048)
		c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m))
	}
	cfg := sched.Config{ScoreWorkers: *scoreWork}
	if *random {
		cfg.Placement = sched.RandomPlacement{}
	}
	tracer := obs.NewTracer(4096)
	if *traceOut != "" || *metricsAddr != "" {
		cfg.Trace = tracer
	}
	var traceFile *os.File
	if *traceOut != "" {
		var err error
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer traceFile.Close()
		tracer.SetSink(traceFile)
	}
	s := f.EnableScheduler(core.SchedulerOptions{Sched: cfg})
	for name, w := range weights {
		s.AddTenant(name, w)
	}
	if *spot {
		for _, n := range names {
			f.WireSchedulerSpot(n)
		}
		f.K.Schedule(sim.FromSeconds(spikeAt.Seconds()), func() {
			fmt.Printf("t=%v spot price spike on every cloud\n", f.K.Now())
			for _, n := range names {
				f.Cloud(n).Spot.ForcePrice(1.0)
			}
		})
	}

	ids := map[string][]string{}
	for name := range weights {
		for i := 0; i < *jobs; i++ {
			id, err := s.Submit(sched.JobSpec{
				Tenant: name, Name: fmt.Sprintf("%s-%03d", name, i),
				Workers: *workers, CoresPerWorker: *cores,
				InputSite: *inputSite, InputBytes: *inputMB << 20,
				Spot: *spot, Bid: 0.05,
				MR: mapreduce.Job{Name: "blast", NumMaps: *maps, NumReduces: 1,
					MapCPU: 30, ReduceCPU: 2},
			})
			if err != nil {
				log.Fatal(err)
			}
			ids[name] = append(ids[name], id)
		}
	}

	horizon := sim.FromSeconds(until.Seconds())
	if *metricsAddr != "" {
		// Collectors read live model state, so scrapes must not interleave
		// with kernel events: the registry takes a lock around every scrape
		// and the run steps the kernel in one-virtual-second chunks under
		// the same lock. Virtual time is decoupled from wall time — the
		// server stays up only while the process runs.
		var mu sync.Mutex
		s.Obs().SetScrapeLock(&mu)
		mux := http.NewServeMux()
		mux.Handle("/metrics", s.Obs().Handler())
		mux.Handle("/debug/trace", tracer.Handler())
		srv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != http.ErrServerClosed {
				log.Fatal(err)
			}
		}()
		fmt.Printf("serving /metrics and /debug/trace on %s\n", *metricsAddr)
		// Pace virtual time: an unpaced run finishes in tens of wall
		// milliseconds, leaving no window for a scraper to connect.
		for now := sim.Time(0); now < horizon; now += sim.Second {
			mu.Lock()
			f.K.RunUntil(now + sim.Second)
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
		}
	} else {
		f.K.RunUntil(horizon)
	}

	shares := s.Shares()
	entitled := s.EntitledShares()
	t := metrics.NewTable(fmt.Sprintf("skyctl sched @ t=%v (placement: %s)",
		f.K.Now(), s.Config().Placement.Name()),
		"tenant", "weight", "entitled", "delivered", "rel err", "done", "running", "queued", "mean wait (s)")
	for _, name := range s.Tenants() {
		var wait float64
		done, running, started := 0, 0, 0
		for _, id := range ids[name] {
			ji, _ := s.Poll(id)
			switch ji.State {
			case sched.Done:
				done++
			case sched.Running:
				running++
			}
			if ji.State != sched.Queued {
				wait += ji.Wait.Seconds()
				started++
			}
		}
		if started > 0 {
			wait /= float64(started)
		}
		rel := 0.0
		if entitled[name] > 0 {
			rel = math.Abs(shares[name]-entitled[name]) / entitled[name]
		}
		t.AddRowf(name, weights[name], metrics.FmtPct(entitled[name]), metrics.FmtPct(shares[name]),
			metrics.FmtPct(rel), done, running, s.TenantQueueLen(name), wait)
	}
	fmt.Println(t)

	fmt.Println(obs.SnapshotTable(s.Obs(), "scheduler metrics",
		"sky_sched_", "sky_capacity_", "!sky_sched_phase_seconds"))

	st := metrics.NewTable("run totals", "metric", "value")
	st.AddRowf("WAN bytes", metrics.FmtBytes(f.Net.TotalWANBytes()))
	var cost float64
	for _, c := range f.Clouds() {
		cost += c.Cost()
	}
	st.AddRowf("compute cost ($)", cost)
	if *traceOut != "" {
		st.AddRowf("trace events", tracer.Len())
	}
	fmt.Println(st)
}

// parseTenants parses "gold=3,silver=1" into weights.
func parseTenants(spec string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("skyctl: bad tenant %q (want name=weight)", part)
		}
		w, err := strconv.ParseFloat(wstr, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("skyctl: bad weight in %q", part)
		}
		out[name] = w
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("skyctl: no tenants in %q", spec)
	}
	return out, nil
}
