package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// replayPolicies are the named scheduler-policy bundles a replay can be
// judged under; -policies takes a comma list of these.
var replayPolicies = []struct {
	name string
	cfg  sched.Config
}{
	{"fifo", sched.Config{DisableBackfill: true}},
	{"backfill", sched.Config{}},
	{"aging", sched.Config{ReservationMaxSlips: 3}},
	{"preempt", sched.Config{EnablePreemption: true}},
	{"preempt+consolidate", sched.Config{EnablePreemption: true, EnableConsolidation: true}},
}

// runReplay is the `skyctl replay` subcommand: generate (or load) a
// workload trace and stream it through the scheduler under one or more
// policy bundles, printing the survival table. The scale harness's CLI
// face:
//
//	skyctl replay -jobs 100000 -policies backfill,preempt
//	skyctl replay -gen-only -save trace.jsonl
//	skyctl replay -trace trace.jsonl -policies preempt -cpuprofile cpu.out
//	skyctl replay -jobs 100000 -faults storm
//	skyctl replay -trace trace.jsonl -faults storm.jsonl
func runReplay(args []string) {
	fs := flag.NewFlagSet("skyctl replay", flag.ExitOnError)
	var (
		seed     = fs.Int64("seed", 42, "trace generator seed (and default replay kernel seed)")
		jobs     = fs.Int("jobs", 100_000, "jobs in the generated trace (standard 4-tenant mix)")
		tracePth = fs.String("trace", "", "load this JSONL trace instead of generating")
		savePth  = fs.String("save", "", "save the trace to this path")
		genOnly  = fs.Bool("gen-only", false, "generate/save the trace and exit without replaying")
		policies = fs.String("policies", "preempt", "comma list of policy bundles: fifo, backfill, aging, preempt, preempt+consolidate")
		faultArg = fs.String("faults", "", "inject a fault schedule: 'storm' (seeded outage-storm preset) or a JSONL schedule path")
		sigma    = fs.Float64("overrun-sigma", 0.5, "log-normal estimate-error sigma (0 = exact estimates)")
		mu       = fs.Float64("overrun-mu", 0, "log-normal estimate-error mu")
		workers  = fs.Int("score-workers", 0, "parallel scoring pool size (0/1 sequential, -1 = GOMAXPROCS)")
		snapshot = fs.Bool("metrics", false, "print the scheduler metrics snapshot per policy")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the replay to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile (taken after the replay) to this file")
	)
	fs.Parse(args)

	var tr *workload.Trace
	if *tracePth != "" {
		var err error
		if tr, err = workload.LoadFile(*tracePth); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s: %d events, %d jobs, %d tenants\n",
			*tracePth, len(tr.Events), tr.Jobs(), len(tr.Header.Tenants))
	} else {
		tr = workload.Generate(workload.StandardConfig(*seed, *jobs))
		fmt.Printf("generated standard trace: %d events, %d jobs (seed %d)\n",
			len(tr.Events), tr.Jobs(), *seed)
	}
	if *faultArg != "" {
		var sch *faults.Schedule
		if *faultArg == "storm" {
			sch = faults.Generate(faults.Storm(*seed, faults.Targets(workload.DefaultClouds())))
		} else {
			var err error
			if sch, err = faults.LoadFile(*faultArg); err != nil {
				log.Fatal(err)
			}
		}
		tr = sch.InjectInto(tr)
		fmt.Printf("injected fault schedule %q: %d fault events (seed %d)\n",
			*faultArg, len(sch.Events), sch.Seed)
	}
	if *savePth != "" {
		if err := tr.SaveFile(*savePth); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved trace to %s\n", *savePth)
	}
	if *genOnly {
		return
	}

	stop := startProfiles(*cpuProf, *memProf)
	defer stop()

	cols := []string{"policy", "p50 wait (s)", "p99 wait (s)", "mean wait (s)", "makespan (s)",
		"preempt", "backfills", "revoked", "share err", "done"}
	if *faultArg != "" {
		// The survival table grows the fault axes when a schedule is injected.
		cols = append(cols, "outages", "requeues", "quarantine", "retries")
	}
	t := metrics.NewTable(
		fmt.Sprintf("skyctl replay: %d jobs, overrun sigma=%.2f", tr.Jobs(), *sigma),
		cols...)
	var snaps []*metrics.Table
	for _, name := range strings.Split(*policies, ",") {
		name = strings.TrimSpace(name)
		cfg, ok := sched.Config{}, false
		for _, p := range replayPolicies {
			if p.name == name {
				cfg, ok = p.cfg, true
				break
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "skyctl replay: unknown policy %q\n", name)
			os.Exit(2)
		}
		cfg.ScoreWorkers = *workers
		rc := workload.ReplayConfig{
			Sched:        cfg,
			OverrunMu:    *mu,
			OverrunSigma: *sigma,
		}
		if *snapshot {
			rc.OnFinish = func(s *sched.Scheduler, _ *sched.SimBackend) {
				snaps = append(snaps, obs.SnapshotTable(s.Obs(),
					fmt.Sprintf("scheduler metrics (%s)", name),
					"sky_sched_", "sky_capacity_", "!sky_sched_phase_seconds"))
			}
		}
		r, err := workload.Replay(tr, rc)
		if err != nil {
			log.Fatal(err)
		}
		row := []interface{}{name,
			fmt.Sprintf("%.1f", r.P50WaitSeconds),
			fmt.Sprintf("%.1f", r.P99WaitSeconds),
			fmt.Sprintf("%.1f", r.MeanWaitSeconds),
			fmt.Sprintf("%.0f", r.MakespanSeconds),
			r.Preemptions, r.Backfills, r.SpotRevocations,
			fmt.Sprintf("%.3f", r.ShareErrorMax),
			fmt.Sprintf("%d/%d", r.Completed, r.Jobs)}
		if *faultArg != "" {
			row = append(row, r.Outages, r.OutageRequeues, r.Quarantines, r.LaunchRetries)
		}
		t.AddRowf(row...)
	}
	fmt.Println(t)
	for _, s := range snaps {
		fmt.Println(s)
	}
}
