package main

import (
	"log"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles starts CPU profiling when cpuPath is set and returns a
// stop function that ends it and, when memPath is set, writes a heap
// profile (after a GC, so it reflects live state rather than garbage).
// Either path may be empty; the returned function is always safe to call
// once.
func startProfiles(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}
	}
}
