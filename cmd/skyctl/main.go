// Command skyctl runs ad-hoc sky-computing scenarios from flags: build a
// federation, launch a virtual cluster, optionally run a MapReduce job,
// migrate it mid-run, and report the outcome. It is the CLI face of the
// core library for quick what-if exploration.
//
// Examples:
//
//	skyctl -clouds 3 -vms 24 -job blast -maps 256
//	skyctl -clouds 2 -vms 8 -job sort -maps 64 -migrate-at 60s -migrate-to cloud1
//	skyctl -clouds 2 -vms 8 -spot -spike-at 2m
//
// The sched subcommand drives the federation-wide job scheduler instead
// (multi-tenant fair-share arbitration, backfill, locality-aware placement):
//
//	skyctl sched -clouds 2 -tenants gold=3,silver=1 -jobs 40 -until 15m
//	skyctl sched -tenants a=1,b=1 -input-site cloud0 -random
//
// The replay subcommand streams a workload trace (generated or loaded)
// through the scheduler and prints the per-policy survival table:
//
//	skyctl replay -jobs 100000 -policies backfill,preempt
//	skyctl replay -trace trace.jsonl -cpuprofile cpu.out
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/nimbus"
	"repro/internal/sim"
	"repro/internal/vm"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "sched" {
		runSched(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "replay" {
		runReplay(os.Args[2:])
		return
	}
	var (
		seed      = flag.Int64("seed", 42, "simulation seed")
		nClouds   = flag.Int("clouds", 2, "number of clouds in the federation")
		hosts     = flag.Int("hosts", 16, "hosts per cloud")
		vms       = flag.Int("vms", 16, "virtual cluster size (spread evenly)")
		jobName   = flag.String("job", "blast", "job type: blast | sort | none")
		maps      = flag.Int("maps", 128, "map task count")
		reduces   = flag.Int("reduces", 4, "reduce task count (sort only)")
		migrateAt = flag.Duration("migrate-at", 0, "migrate half the cluster at this time (0 = never)")
		migrateTo = flag.String("migrate-to", "cloud1", "destination cloud for -migrate-at")
		spot      = flag.Bool("spot", false, "use spot instances with migratable-spot enabled")
		spikeAt   = flag.Duration("spike-at", 2*time.Minute, "spot price spike time (with -spot)")
		wanMs     = flag.Int("wan-ms", 60, "inter-cloud one-way latency, ms")
	)
	flag.Parse()

	f := core.NewFederation(*seed)
	names := make([]string, *nClouds)
	for i := range names {
		names[i] = fmt.Sprintf("cloud%d", i)
		c := f.AddCloud(nimbus.Config{
			Name: names[i], Hosts: *hosts,
			HostSpec: nimbus.HostSpec{Cores: 8, MemPages: 64 * 16384, Speed: 1.0},
			NICBW:    125 << 20, WANUp: 125 << 20, WANDown: 125 << 20,
			PricePerCoreHour: 0.08 + 0.04*float64(i),
		})
		m := vm.NewContentModel(*seed+int64(i)*17, "debian", 0.1, 0.5, 2048)
		c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m))
	}
	for i := 0; i < *nClouds; i++ {
		for j := i + 1; j < *nClouds; j++ {
			f.SetWANLatency(names[i], names[j], sim.Time(*wanMs)*sim.Millisecond)
		}
	}

	dist := map[string]int{}
	per := *vms / *nClouds
	rem := *vms % *nClouds
	for i, n := range names {
		dist[n] = per
		if i < rem {
			dist[n]++
		}
	}

	f.CreateCluster("skyctl", core.ClusterSpec{
		Image: "debian", Cores: 2, MemPages: 8192, CoW: true,
		Spot: *spot, Bid: 0.05,
		Distribution: dist,
	}, func(vc *core.VirtualCluster, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%v cluster up: %d VMs over %d clouds\n", f.K.Now(), vc.Size(), *nClouds)
		if *spot {
			vc.WireSpotMigration(names[0])
			f.K.Schedule(sim.FromSeconds(spikeAt.Seconds()), func() {
				fmt.Printf("t=%v spot price spike on %s\n", f.K.Now(), names[0])
				f.Cloud(names[0]).Spot.ForcePrice(1.0)
			})
		}
		var job mapreduce.Job
		switch *jobName {
		case "blast":
			job = mapreduce.BlastJob(*maps)
		case "sort":
			job = mapreduce.SortJob(*maps, *reduces)
		case "none":
			return
		default:
			fmt.Fprintf(os.Stderr, "unknown job %q\n", *jobName)
			os.Exit(2)
		}
		err = vc.RunJob(job, func(res mapreduce.Result) {
			t := metrics.NewTable("skyctl run", "metric", "value")
			t.AddRowf("job", res.Job)
			t.AddRowf("makespan", res.Makespan.String())
			t.AddRowf("maps executed", res.MapsExecuted)
			t.AddRowf("wasted maps", res.MapsExecuted-*maps)
			t.AddRowf("cross-cloud shuffle", metrics.FmtBytes(res.CrossSiteShuffleBytes))
			t.AddRowf("WAN bytes", metrics.FmtBytes(f.Net.TotalWANBytes()))
			t.AddRowf("migrations", f.Migrations)
			t.AddRowf("spot migrations / kills", fmt.Sprintf("%d / %d", f.SpotMigrations, f.SpotKills))
			var cost float64
			for _, c := range f.Clouds() {
				cost += c.Cost()
			}
			t.AddRowf("compute cost ($)", cost)
			fmt.Println(t)
		})
		if err != nil {
			log.Fatal(err)
		}
		if *migrateAt > 0 {
			f.K.Schedule(sim.FromSeconds(migrateAt.Seconds()), func() {
				src := names[0]
				movers := vc.VMsAt(src)
				if len(movers) > 1 {
					movers = movers[:len(movers)/2]
				}
				fmt.Printf("t=%v migrating %d VMs %s -> %s\n", f.K.Now(), len(movers), src, *migrateTo)
				vc.MigrateWorkers(movers, *migrateTo, 2, nil)
			})
		}
	})
	f.K.Run()
}
