// Command experiments regenerates every table in EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-seed N] [-markdown] [-run E4]
//
// With no -run flag all experiments execute in DESIGN.md order. -markdown
// emits GitHub-flavoured tables (the format EXPERIMENTS.md records).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 42, "simulation seed (results are deterministic per seed)")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	runID := flag.String("run", "", "run a single experiment by ID (e.g. E4)")
	flag.Parse()

	exps := experiments.All()
	if *runID != "" {
		e, ok := experiments.ByID(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known:", *runID)
			for _, x := range exps {
				fmt.Fprintf(os.Stderr, " %s", x.ID)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
		exps = []experiments.Experiment{e}
	}
	for _, e := range exps {
		start := time.Now()
		tables := e.Run(*seed)
		elapsed := time.Since(start)
		fmt.Printf("## %s — %s\n\n", e.ID, e.Claim)
		for _, t := range tables {
			if *markdown {
				fmt.Println(t.Markdown())
			} else {
				fmt.Println(t.String())
			}
		}
		fmt.Printf("(regenerated in %.1fs wall-clock)\n\n", elapsed.Seconds())
	}
}
